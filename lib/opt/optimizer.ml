(* Beam-search I/O-schedule optimizer. The machine layer can *replay*
   fixed policies; this module *searches*: over compute orders and over
   per-eviction spill-vs-recompute decisions (Schedulers.run_hybrid),
   the space Theorem 1.1 quantifies over. The measured-to-bound ratios
   the registry reports are only as meaningful as the best schedule
   anyone found — the optimizer is the instrument that pushes the
   measured side down toward the bound.

   Structure of one search:
     seed beam  <- every (seed order x {lru, belady, remat}) that runs
     iterate    <- per beam entry, derive mutation seeds (Prng.derive),
                   generate candidates sequentially, evaluate them on
                   the Fmm_par pool (order-preserving), keep the best
                   [beam] distinct evaluations (elitist)
     oracle     <- every NEW beam entry replays through Cache_machine
                   and Fmm_analysis.Trace_check; any violation or
                   dead-load/redundant-store lint raises Illegal_schedule

   Determinism: mutation happens in the calling domain with seeds
   derived from (iteration, beam index, move index); the pool only
   evaluates. Reports are identical at every [jobs]. *)

module W = Fmm_machine.Workload
module Sch = Fmm_machine.Schedulers
module Tr = Fmm_machine.Trace
module CM = Fmm_machine.Cache_machine
module Seg = Fmm_machine.Segments
module Ord = Fmm_machine.Orders
module Tc = Fmm_analysis.Trace_check
module Diag = Fmm_analysis.Diagnostic
module D = Fmm_graph.Digraph
module Cd = Fmm_cdag.Cdag
module Prng = Fmm_util.Prng

type policy = Lru | Belady | Remat | Hybrid of bool array

let policy_name = function
  | Lru -> "lru"
  | Belady -> "belady"
  | Remat -> "remat"
  | Hybrid flags ->
    let k = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 flags in
    Printf.sprintf "hybrid(%d recompute)" k

type candidate = { order : int array; policy : policy; provenance : string }

type eval = { candidate : candidate; result : Sch.result; io : int }

type oracle_mode = Full_replay | Incremental

let oracle_mode_name = function
  | Full_replay -> "full-replay"
  | Incremental -> "incremental"

type report = {
  workload : string;
  cache_size : int;
  seed : int;
  beam_width : int;
  iterations : int;
  evaluated : int;
  rejected : int;
  accepted : int;
  best : eval;
  beam : eval list;
  history : int list;
  baselines : (string * int option) list;
  oracle_mode : oracle_mode;
  oracle_replayed : int;
  oracle_total : int;
}

exception Illegal_schedule of string

(* --- evaluation --- *)

let run_candidate work ~cache_size ~max_flops cand =
  let order = Array.to_list cand.order in
  match cand.policy with
  | Lru -> Sch.run_lru work ~cache_size order
  | Belady -> Sch.run_belady work ~cache_size order
  | Remat -> Sch.run_rematerialize ~max_flops work ~cache_size order
  | Hybrid flags ->
    Sch.run_hybrid ~max_flops work ~cache_size
      ~recompute:(fun v -> flags.(v))
      order

let evaluate work ~cache_size ~max_flops cand =
  match run_candidate work ~cache_size ~max_flops cand with
  | result -> Some { candidate = cand; result; io = Tr.io result.Sch.counters }
  | exception Failure _ -> None

(* The legality oracle: the checked trace must carry the exact I/O the
   scheduler claimed, with zero violations AND zero lint findings (a
   dead load or a redundant store would mean the optimizer "improved"
   I/O it never needed to spend).

   Two modes, identical verdicts (the differential fuzz suite holds
   them together):

   - Full_replay: the original debug reference — a Cache_machine
     replay plus a full Trace_check pass, both O(trace) per entrant.
   - Incremental: Trace_check.check_delta against the memoized run of
     the entrant's closest beam ancestor. A candidate's provenance is
     its ancestry string, and every move appends to it, so the longest
     provenance-prefix match among the memoized bases is the nearest
     ancestor; the delta check then costs O(mutated window). When no
     base matches (seeds) or the window covered most of the trace
     (policy flips), the entrant is re-memoized with check_cached so
     its own descendants diff against a close base. *)

let fail_candidate ev fmt =
  Printf.ksprintf
    (fun s ->
      raise
        (Illegal_schedule
           (Printf.sprintf "%s [candidate %s]" s ev.candidate.provenance)))
    fmt

let oracle_full work ~cache_size ev =
  let fail fmt = fail_candidate ev fmt in
  (match
     CM.replay { CM.cache_size; allow_recompute = true } work ev.result.Sch.trace
   with
  | c ->
    if Tr.io c <> ev.io then
      fail "replayed I/O %d disagrees with scheduler's %d" (Tr.io c) ev.io
  | exception CM.Illegal msg -> fail "Cache_machine: %s" msg);
  let r = Tc.check ~cache_size work ev.result.Sch.trace in
  let errs = Diag.n_errors r.Tc.report in
  if errs > 0 then fail "Trace_check: %d violation(s)" errs;
  if r.Tc.dead_loads > 0 then fail "Trace_check: %d dead load(s)" r.Tc.dead_loads;
  if r.Tc.redundant_stores > 0 then
    fail "Trace_check: %d redundant store(s)" r.Tc.redundant_stores

let check_verdict ev (v : Tc.verdict) =
  let fail fmt = fail_candidate ev fmt in
  if v.Tc.v_errors > 0 then fail "Trace_check: %d violation(s)" v.Tc.v_errors;
  if v.Tc.v_dead_loads > 0 then
    fail "Trace_check: %d dead load(s)" v.Tc.v_dead_loads;
  if v.Tc.v_redundant_stores > 0 then
    fail "Trace_check: %d redundant store(s)" v.Tc.v_redundant_stores;
  if Tr.io v.Tc.v_counters <> ev.io then
    fail "checked I/O %d disagrees with scheduler's %d"
      (Tr.io v.Tc.v_counters) ev.io

(* --- move helpers --- *)

let flags_of_policy work = function
  | Hybrid f -> Array.copy f
  | Lru | Belady -> Array.make (W.n_vertices work) false
  | Remat ->
    let is_input = W.is_input work and is_output = W.is_output work in
    Array.init (W.n_vertices work) (fun v ->
        (not (is_input v)) && not (is_output v))

(* Order position of every vertex: its index in the first-time compute
   sequence; -1 for inputs. *)
let positions work order =
  let pos = Array.make (W.n_vertices work) (-1) in
  Array.iteri (fun i v -> pos.(v) <- i) order;
  pos

(* Move 1: flip spill<->recompute for a few values. Flip-to-recompute
   targets values the trace actually spilled (a Store of a non-output);
   flip-to-spill targets values it actually recomputed. Anything else
   cannot change the schedule. *)
let flip_move rng work ev =
  let is_output = W.is_output work in
  let flags = flags_of_policy work ev.candidate.policy in
  let n = W.n_vertices work in
  let stores = Array.make n false and computes = Array.make n 0 in
  List.iter
    (function
      | Tr.Store v -> if not (is_output v) then stores.(v) <- true
      | Tr.Compute v -> computes.(v) <- computes.(v) + 1
      | Tr.Load _ | Tr.Evict _ -> ())
    ev.result.Sch.trace;
  let pool = ref [] in
  for v = n - 1 downto 0 do
    if (stores.(v) && not flags.(v)) || (computes.(v) > 1 && flags.(v)) then
      pool := v :: !pool
  done;
  let pool = Array.of_list !pool in
  if Array.length pool = 0 then None
  else begin
    let k = min (Array.length pool) (1 + Prng.int rng 4) in
    let picks = Prng.sample rng k (Array.length pool) in
    List.iter (fun i -> flags.(pool.(i)) <- not flags.(pool.(i))) picks;
    Some
      {
        order = ev.candidate.order;
        policy = Hybrid flags;
        provenance = Printf.sprintf "%s/flip%d" ev.candidate.provenance k;
      }
  end

(* Segment-local hot window: the contiguous run of order positions
   covered by the worst (max I/O) full segment of Segments.analyze.
   The boundaries are re-derived by replaying the trace with the same
   cutting rule the analyzer uses (quota-th first-time computations of
   V_out(SUB_H^{r x r})), while counting first-time computes of ANY
   vertex — which is the order position, since every scheduler emits
   first computes in order sequence. *)
let segment_window cdag ~cache_size work trace order_len =
  let size = Cd.size cdag in
  let base =
    let n0, _, _ = Fmm_bilinear.Algorithm.dims (Cd.base_algorithm cdag) in
    max 2 n0
  in
  let target = max base (2 * int_of_float (sqrt (float_of_int cache_size))) in
  let r = ref base in
  while !r * base <= size && !r * base <= target do
    r := !r * base
  done;
  let r = !r in
  if r > size then None
  else begin
    let a = Seg.analyze cdag ~cache_size ~r trace in
    match Seg.full_segments a with
    | [] -> None
    | fulls ->
      let worst =
        List.fold_left
          (fun acc s -> if s.Seg.io > acc.Seg.io then s else acc)
          (List.hd fulls) fulls
      in
      let is_sub = Array.make (W.n_vertices work) false in
      List.iter (fun v -> is_sub.(v) <- true) (Cd.sub_outputs cdag ~r);
      let computed = Array.make (W.n_vertices work) false in
      let boundaries = ref [] in
      let pos = ref 0 and sub_seen = ref 0 in
      List.iter
        (function
          | Tr.Compute v when not computed.(v) ->
            computed.(v) <- true;
            incr pos;
            if is_sub.(v) then begin
              incr sub_seen;
              if !sub_seen = a.Seg.quota then begin
                boundaries := !pos :: !boundaries;
                sub_seen := 0
              end
            end
          | _ -> ())
        trace;
      let bounds = Array.of_list (List.rev !boundaries) in
      if worst.Seg.index >= Array.length bounds then None
      else begin
        let hi = bounds.(worst.Seg.index) in
        let lo = if worst.Seg.index = 0 then 0 else bounds.(worst.Seg.index - 1) in
        if hi - lo >= 3 && hi <= order_len then Some (lo, hi) else None
      end
  end

(* Generic hot window: attribute each Load/Store to the order position
   of the latest first-time compute and take the fixed-width window
   with the most I/O. *)
let generic_window work trace order_len ~cache_size =
  let w = max 8 (min (4 * cache_size) (order_len / 4)) in
  if order_len < w || w < 3 then None
  else begin
    let io_at = Array.make order_len 0 in
    let computed = Array.make (W.n_vertices work) false in
    let pos = ref 0 in
    List.iter
      (fun e ->
        match e with
        | Tr.Compute v when not computed.(v) ->
          computed.(v) <- true;
          incr pos
        | Tr.Load _ | Tr.Store _ ->
          let p = min (max 0 (!pos - 1)) (order_len - 1) in
          io_at.(p) <- io_at.(p) + 1
        | _ -> ())
      trace;
    let sum = ref 0 in
    for i = 0 to w - 1 do
      sum := !sum + io_at.(i)
    done;
    let best_lo = ref 0 and best_sum = ref !sum in
    for lo = 1 to order_len - w do
      sum := !sum - io_at.(lo - 1) + io_at.(lo + w - 1);
      if !sum > !best_sum then begin
        best_sum := !sum;
        best_lo := lo
      end
    done;
    Some (!best_lo, !best_lo + w)
  end

(* Re-linearize the window with a seeded random topological order of
   its own vertices. Edges crossing the window boundary are untouched
   (everything before the window stays before, after stays after), so
   any internal-edge-respecting permutation keeps the whole order
   topological. *)
let reshuffle_window rng work order lo hi =
  let g = work.W.graph in
  let w = hi - lo in
  let verts = Array.sub order lo w in
  let local = Hashtbl.create (2 * w) in
  Array.iteri (fun i v -> Hashtbl.replace local v i) verts;
  let indeg = Array.make w 0 in
  Array.iter
    (fun v ->
      List.iter
        (fun p -> if Hashtbl.mem local p then indeg.(Hashtbl.find local v) <- indeg.(Hashtbl.find local v) + 1)
        (D.in_neighbors g v))
    verts;
  let ready = ref [] in
  for i = w - 1 downto 0 do
    if indeg.(i) = 0 then ready := i :: !ready
  done;
  let out = Array.make w (-1) in
  let filled = ref 0 in
  while !ready <> [] do
    let arr = Array.of_list !ready in
    let pick = arr.(Prng.int rng (Array.length arr)) in
    ready := List.filter (fun i -> i <> pick) !ready;
    out.(!filled) <- verts.(pick);
    incr filled;
    List.iter
      (fun s ->
        match Hashtbl.find_opt local s with
        | Some j ->
          indeg.(j) <- indeg.(j) - 1;
          if indeg.(j) = 0 then ready := j :: !ready
        | None -> ())
      (D.out_neighbors g verts.(pick))
  done;
  if !filled < w then None (* cannot happen on a DAG; defensive *)
  else if out = verts then None
  else begin
    let order' = Array.copy order in
    Array.blit out 0 order' lo w;
    Some order'
  end

(* Move 2: reorder within the hottest segment. *)
let reorder_move rng ?cdag ~cache_size work ev =
  let order = ev.candidate.order in
  let order_len = Array.length order in
  let window =
    match cdag with
    | Some c -> (
      match segment_window c ~cache_size work ev.result.Sch.trace order_len with
      | Some w -> Some w
      | None -> generic_window work ev.result.Sch.trace order_len ~cache_size)
    | None -> generic_window work ev.result.Sch.trace order_len ~cache_size
  in
  match window with
  | None -> None
  | Some (lo, hi) -> (
    match reshuffle_window rng work order lo hi with
    | None -> None
    | Some order' ->
      Some
        {
          order = order';
          policy = ev.candidate.policy;
          provenance =
            Printf.sprintf "%s/seg[%d,%d)" ev.candidate.provenance lo hi;
        })

(* Move 3: hoist a reload — a value the trace loads more than once (or
   re-loads after spilling) has consumers far apart; moving its last
   consumer as early as legality allows clusters the uses so one
   residency can serve them. *)
let hoist_move rng work ev =
  let is_input = W.is_input work in
  let g = work.W.graph in
  let n = W.n_vertices work in
  let order = ev.candidate.order in
  let pos = positions work order in
  let loads = Array.make n 0 in
  List.iter
    (function Tr.Load v -> loads.(v) <- loads.(v) + 1 | _ -> ())
    ev.result.Sch.trace;
  let pool = ref [] in
  for v = n - 1 downto 0 do
    if loads.(v) >= 2 || (loads.(v) >= 1 && not (is_input v)) then
      pool := v :: !pool
  done;
  let pool = Array.of_list !pool in
  if Array.length pool = 0 then None
  else begin
    let p = pool.(Prng.int rng (Array.length pool)) in
    let consumers =
      List.filter (fun c -> pos.(c) >= 0) (D.out_neighbors g p)
      |> List.sort (fun a b -> compare pos.(a) pos.(b))
    in
    match consumers with
    | [] | [ _ ] -> None
    | first :: rest ->
      let c = List.nth rest (List.length rest - 1) in
      let cpos = pos.(c) in
      let earliest =
        List.fold_left (fun acc q -> max acc (pos.(q) + 1)) 0 (D.in_neighbors g c)
      in
      let target = max earliest (pos.(first) + 1) in
      if target >= cpos then None
      else begin
        let order' = Array.copy order in
        (* slide [target, cpos) right by one, put c at target *)
        Array.blit order target order' (target + 1) (cpos - target);
        order'.(target) <- c;
        Some
          {
            order = order';
            policy = ev.candidate.policy;
            provenance =
              Printf.sprintf "%s/hoist%d@%d" ev.candidate.provenance c target;
          }
      end
  end

let moves_per_candidate = 6

let mutate ~seed ~it ~bi ~mi ?cdag ~cache_size work ev =
  let rng = Prng.create ~seed:(Prng.derive ~seed [ it; bi; mi ]) in
  match mi mod 3 with
  | 0 -> flip_move rng work ev
  | 1 -> reorder_move rng ?cdag ~cache_size work ev
  | _ -> hoist_move rng work ev

(* --- beam selection --- *)

let same_candidate a b =
  a.candidate.policy = b.candidate.policy && a.candidate.order = b.candidate.order

(* Best [width] distinct evaluations; stable in the input order on I/O
   ties, so selection is deterministic and elitist (current beam is
   listed first by the caller). *)
let take_beam width evals =
  let sorted = List.stable_sort (fun a b -> compare a.io b.io) evals in
  List.fold_left
    (fun acc ev ->
      if List.length acc >= width then acc
      else if List.exists (same_candidate ev) acc then acc
      else acc @ [ ev ])
    [] sorted

(* --- the search --- *)

let search ?(jobs = 1) ?(beam = 4) ?(iters = 4) ?(seed = 1)
    ?(max_flops = 200_000_000) ?(oracle_mode = Incremental) ?cdag work
    ~cache_size ~orders =
  if beam < 1 then invalid_arg "Optimizer.search: beam < 1";
  if iters < 0 then invalid_arg "Optimizer.search: iters < 0";
  if orders = [] then invalid_arg "Optimizer.search: no seed orders";
  List.iter
    (fun (name, o) ->
      if not (W.is_valid_order work o) then
        invalid_arg
          (Printf.sprintf "Optimizer.search: seed order %S is not a valid \
                           topological order of %s"
             name work.W.name))
    orders;
  let jobs = max 1 jobs in
  let evaluated = ref 0 and rejected = ref 0 and accepted = ref 0 in
  let eval_batch cands =
    evaluated := !evaluated + List.length cands;
    let results = Fmm_par.Pool.map ~jobs (evaluate work ~cache_size ~max_flops) cands in
    rejected := !rejected + List.length (List.filter Option.is_none results);
    List.filter_map Fun.id results
  in
  let seed_candidates =
    List.concat_map
      (fun (name, o) ->
        let order = Array.of_list o in
        List.map
          (fun policy ->
            { order; policy; provenance = name ^ "+" ^ policy_name policy })
          [ Lru; Belady; Remat ])
      orders
  in
  let seed_evals = eval_batch seed_candidates in
  if seed_evals = [] then
    failwith
      (Printf.sprintf
         "Optimizer.search: no seed candidate executed on %s at M=%d (cache \
          too small?)"
         work.W.name cache_size);
  let baselines =
    let first_name = fst (List.hd orders) in
    List.map
      (fun p ->
        let prov = first_name ^ "+" ^ policy_name p in
        ( policy_name p,
          List.find_opt (fun ev -> ev.candidate.provenance = prov) seed_evals
          |> Option.map (fun ev -> ev.io) ))
      [ Lru; Belady; Remat ]
  in
  (* oracle + accounting for every schedule entering a beam *)
  let oracle_replayed = ref 0 and oracle_total = ref 0 in
  (* Memoized check runs keyed by provenance, most-recent-first, capped
     so at most ~one base per beam lineage is alive. Everything here is
     driven only by provenance strings and admission order, both
     deterministic, so reports stay identical at every [jobs]. *)
  let bases : (string * Tc.cache) list ref = ref [] in
  let base_cap = beam + 2 in
  let store_base prov c =
    let rest = List.filter (fun (k, _) -> k <> prov) !bases in
    let rec take k = function
      | [] -> []
      | x :: tl -> if k <= 0 then [] else x :: take (k - 1) tl
    in
    bases := (prov, c) :: take (base_cap - 1) rest
  in
  (* Nearest memoized ancestor: the longest key that is a prefix of the
     entrant's provenance (moves only ever append "/move" suffixes). *)
  let find_base prov =
    let plen = String.length prov in
    List.fold_left
      (fun acc (k, c) ->
        let klen = String.length k in
        if klen <= plen && String.sub prov 0 klen = k then
          match acc with
          | Some (k0, _) when String.length k0 >= klen -> acc
          | _ -> Some (k, c)
        else acc)
      None !bases
  in
  let oracle_incremental ev =
    let trace = ev.result.Sch.trace in
    let prov = ev.candidate.provenance in
    let memoize () =
      let v, c = Tc.check_cached ~cache_size work trace in
      store_base prov c;
      v
    in
    let v =
      match find_base prov with
      | None -> memoize ()
      | Some (_, base) ->
        let v = Tc.check_delta ~base work trace in
        let total = v.Tc.reused_prefix + v.Tc.replayed + v.Tc.reused_suffix in
        (* The mutation window covered most of the trace (typically a
           policy flip): this lineage has drifted too far from its
           base, so pay one full pass now to give its descendants a
           close base again. The verdict [v] itself is already exact. *)
        if 2 * v.Tc.replayed > total then ignore (memoize ());
        v
    in
    oracle_replayed := !oracle_replayed + v.Tc.replayed;
    oracle_total :=
      !oracle_total + v.Tc.reused_prefix + v.Tc.replayed + v.Tc.reused_suffix;
    check_verdict ev v
  in
  let oracle ev =
    match oracle_mode with
    | Incremental -> oracle_incremental ev
    | Full_replay ->
      let t = List.length ev.result.Sch.trace in
      oracle_replayed := !oracle_replayed + t;
      oracle_total := !oracle_total + t;
      oracle_full work ~cache_size ev
  in
  let checked = ref [] in
  let admit evs =
    List.iter
      (fun ev ->
        if not (List.memq ev !checked) then begin
          oracle ev;
          incr accepted;
          checked := ev :: !checked
        end)
      evs
  in
  let current = ref (take_beam beam seed_evals) in
  admit !current;
  let best_io () = (List.hd !current).io in
  let history = ref [ best_io () ] in
  for it = 1 to iters do
    let neighbors =
      List.concat
        (List.mapi
           (fun bi ev ->
             List.filter_map
               (fun mi -> mutate ~seed ~it ~bi ~mi ?cdag ~cache_size work ev)
               (List.init moves_per_candidate Fun.id))
           !current)
    in
    let fresh = eval_batch neighbors in
    current := take_beam beam (!current @ fresh);
    admit !current;
    history := best_io () :: !history
  done;
  {
    workload = work.W.name;
    cache_size;
    seed;
    beam_width = beam;
    iterations = iters;
    evaluated = !evaluated;
    rejected = !rejected;
    accepted = !accepted;
    best = List.hd !current;
    beam = !current;
    history = List.rev !history;
    baselines;
    oracle_mode;
    oracle_replayed = !oracle_replayed;
    oracle_total = !oracle_total;
  }

let optimize_cdag ?jobs ?beam ?iters ?(seed = 1) ?max_flops ?oracle_mode cdag
    ~cache_size =
  let work = W.of_cdag cdag in
  let orders =
    [
      ("dfs", Ord.recursive_dfs cdag);
      ("naive", Ord.naive_topo cdag);
      ("random", Ord.random_topo ~seed:(Prng.derive ~seed [ 0x5eed ]) cdag);
    ]
  in
  search ?jobs ?beam ?iters ~seed ?max_flops ?oracle_mode ~cdag work ~cache_size
    ~orders
