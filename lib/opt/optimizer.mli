(** Beam-search I/O-schedule optimizer over the two-level machine: the
    search space is (compute order) x (per-value spill-vs-recompute
    decisions), i.e. exactly the schedules Theorem 1.1 quantifies over.
    The three fixed policies ({!Fmm_machine.Schedulers.run_lru},
    [run_belady], [run_rematerialize]) are degenerate points of the
    space and seed the beam, so the best found schedule is never worse
    than the best fixed policy on the seed orders — what the optimizer
    adds is the interior: {!Fmm_machine.Schedulers.run_hybrid}
    schedules reached by segment-local moves.

    Every schedule accepted into the beam passes the legality oracle
    (zero violations, zero dead-load / redundant-store lints, checked
    I/O equal to the scheduler's claim); a failure raises
    {!Illegal_schedule}, it is never silently kept. The oracle runs in
    one of two modes with identical verdicts and byte-identical search
    results:
    - {!Incremental} (default): {!Fmm_analysis.Trace_check.check_delta}
      against the memoized run of the entrant's nearest beam ancestor
      (longest provenance prefix), costing O(mutated window) instead of
      O(trace) per entrant;
    - {!Full_replay} (debug / differential reference): a full
      {!Fmm_machine.Cache_machine} replay plus a full
      {!Fmm_analysis.Trace_check.check} pass.

    Determinism contract: with a fixed [seed], the report is identical
    at every [jobs] — candidate generation is sequential and seeded by
    {!Fmm_util.Prng.derive} paths, only evaluation fans out on the
    order-preserving {!Fmm_par.Pool}. *)

type policy =
  | Lru  (** spill everything (no recomputation) *)
  | Belady  (** spill + offline-optimal replacement *)
  | Remat  (** store outputs only, recompute everything else *)
  | Hybrid of bool array
      (** per-vertex recompute flag, {!Fmm_machine.Schedulers.run_hybrid} *)

val policy_name : policy -> string

type candidate = {
  order : int array;  (** topological order of the non-input vertices *)
  policy : policy;
  provenance : string;  (** ancestry: seed order/policy + applied moves *)
}

type eval = {
  candidate : candidate;
  result : Fmm_machine.Schedulers.result;
  io : int;
}

type oracle_mode =
  | Full_replay  (** debug reference: Cache_machine + full Trace_check *)
  | Incremental  (** default: Trace_check.check_delta vs nearest ancestor *)

val oracle_mode_name : oracle_mode -> string
(** ["full-replay"] | ["incremental"] *)

type report = {
  workload : string;
  cache_size : int;
  seed : int;
  beam_width : int;
  iterations : int;
  evaluated : int;  (** candidates run through a scheduler *)
  rejected : int;  (** evaluations that raised (cache too small, flop cap) *)
  accepted : int;  (** distinct schedules that entered a beam (all oracle-checked) *)
  best : eval;
  beam : eval list;  (** final beam, best first *)
  history : int list;
      (** best I/O after seeding and after each iteration (length
          [iterations + 1], non-increasing) *)
  baselines : (string * int option) list;
      (** fixed-policy I/O on the first seed order: [("lru", _);
          ("belady", _); ("remat", _)] — [None] when that policy could
          not execute (e.g. rematerialization with a too-small cache) *)
  oracle_mode : oracle_mode;
  oracle_replayed : int;
      (** trace events the oracle actually re-interpreted across all
          admissions (in [Full_replay] mode this equals
          [oracle_total]) *)
  oracle_total : int;
      (** total trace events across all admitted schedules; the
          replayed/total ratio is the incremental oracle's work saving *)
}

exception Illegal_schedule of string
(** Raised when an accepted schedule fails the legality oracle — a bug
    in a scheduler or a move, never expected in normal operation. *)

val search :
  ?jobs:int ->
  ?beam:int ->
  ?iters:int ->
  ?seed:int ->
  ?max_flops:int ->
  ?oracle_mode:oracle_mode ->
  ?cdag:Fmm_cdag.Cdag.t ->
  Fmm_machine.Workload.t ->
  cache_size:int ->
  orders:(string * int list) list ->
  report
(** [search work ~cache_size ~orders] seeds the beam with every
    (order, fixed policy) pair from the named [orders], then runs
    [iters] rounds of segment-reorder / policy-flip / reload-hoist
    moves, keeping the [beam] best evaluations each round (elitist:
    the best found never regresses). [cdag], when given, lets the
    reorder move target the worst {!Fmm_machine.Segments} segment of
    the current best trace instead of a generic hot window. Raises
    [Invalid_argument] on an invalid seed order and [Failure] when no
    seed candidate executes at all. Defaults: [jobs 1], [beam 4],
    [iters 4], [seed 1], [max_flops] as the schedulers,
    [oracle_mode Incremental]. The search path is independent of
    [oracle_mode]: both modes admit or reject identically, so reports
    differ only in the [oracle_replayed] accounting. *)

val optimize_cdag :
  ?jobs:int ->
  ?beam:int ->
  ?iters:int ->
  ?seed:int ->
  ?max_flops:int ->
  ?oracle_mode:oracle_mode ->
  Fmm_cdag.Cdag.t ->
  cache_size:int ->
  report
(** {!search} on {!Fmm_machine.Workload.of_cdag} seeded with the
    {!Fmm_machine.Orders} trio — recursive DFS, naive topological
    (BFS-ish) and a seed-derived random topological order. *)
