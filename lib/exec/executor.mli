(** The numeric execution backend: interpret any replay-verified
    schedule ({!Fmm_machine.Trace.t}) against concrete storage and real
    matrix data, so the word-counting simulators are checked end to end
    — executed output = classical MM (bit-exact over the exact rings,
    within tolerance over float64) and executed counters = the
    scheduler's prediction, event for event. *)

exception Exec_error of string
(** Raised when the trace is illegal for the machine model: loading a
    value absent from slow memory, computing with a non-resident
    operand, exceeding the fast-memory word budget, or finishing with
    an output missing from slow memory. *)

(** CDAG vertex semantics, compiled once per run. *)
type op =
  | Op_input_a of int  (** index into vec(A) *)
  | Op_input_b of int
  | Op_linear of (int * int) array  (** (source vertex, coefficient) *)
  | Op_mult of int * int

val compile : Fmm_cdag.Cdag.t -> op array

(** Element storage: a slow memory indexed by vertex id and a fast
    memory limited to [cache_size] words. Legality is checked by the
    engine; backends only move data. *)
module type BACKEND = sig
  type elt
  type t

  val name : string
  val create : n_vertices:int -> cache_size:int -> t
  val set_slow : t -> int -> elt -> unit
  val slow_present : t -> int -> bool
  val get_slow : t -> int -> elt
  val fast_present : t -> int -> bool
  val occupancy : t -> int
  val load : t -> int -> unit
  val store : t -> int -> unit
  val evict : t -> int -> unit
  val compute : t -> int -> op -> unit
end

module Ring_backend (R : Fmm_ring.Sig_ring.S) : BACKEND with type elt = R.t
(** Exact-ring storage (vertex-indexed arrays): the bit-exact oracle. *)

module F64_backend : BACKEND with type elt = float
(** Float64 storage with a physical fast memory: a [cache_size]-word
    Bigarray arena, vertex -> slot table and free-slot stack, so the
    M-word bound holds by construction. *)

(** The trace interpreter over a storage backend. *)
module Engine (B : BACKEND) : sig
  type result = {
    outputs : B.elt array;  (** vec(C): values at the CDAG outputs *)
    counters : Fmm_machine.Trace.counters;
        (** recounted from the interpreted events *)
    peak_occupancy : int;
  }

  val run :
    Fmm_cdag.Cdag.t ->
    cache_size:int ->
    a:B.elt array ->
    b:B.elt array ->
    Fmm_machine.Trace.t ->
    result
  (** Execute the trace on vec(A), vec(B) (row-major, length n^2).
      Raises {!Exec_error} on any machine-model violation. *)
end

module F64 : sig
  type result = {
    outputs : float array;
    counters : Fmm_machine.Trace.counters;
    peak_occupancy : int;
  }

  val run :
    Fmm_cdag.Cdag.t ->
    cache_size:int ->
    a:float array ->
    b:float array ->
    Fmm_machine.Trace.t ->
    result
end

module Make_ring (R : Fmm_ring.Sig_ring.S) : sig
  type result = {
    outputs : R.t array;
    counters : Fmm_machine.Trace.counters;
    peak_occupancy : int;
  }

  val run :
    Fmm_cdag.Cdag.t ->
    cache_size:int ->
    a:R.t array ->
    b:R.t array ->
    Fmm_machine.Trace.t ->
    result
end

module Zp : module type of Make_ring (Fmm_ring.Zp.Z65537)
module Q : module type of Make_ring (Fmm_ring.Rat.Field)
module Big : module type of Make_ring (Fmm_ring.Sig_ring.Big)

val validate_config :
  ?cutoff:int -> Fmm_bilinear.Algorithm.t -> n:int -> (unit, string) result
(** Reject degenerate executor/census configurations with a diagnostic:
    rectangular base cases, 1 x 1 bases, n < 2, n not a power of the
    base dimension, and — for hybrid configurations — [cutoff < 1],
    [cutoff > n], or [cutoff] not a power of the base dimension
    ([cutoff] defaults to 1, the uniform fast CDAG, which is always
    accepted). The fmmlab CLI maps [Error] to exit code 2. *)

type policy = Lru | Belady | Remat

val all_policies : policy list
val policy_to_string : policy -> string
val policy_of_string : string -> policy option

val schedule :
  Fmm_cdag.Cdag.t -> cache_size:int -> policy -> Fmm_machine.Schedulers.result
(** [Workload.of_cdag] + [Orders.recursive_dfs] + the policy's
    scheduler. *)

type backend_report = {
  backend : string;
  exact : bool;  (** exact ring comparison vs float tolerance *)
  max_err : float;  (** 0 for exact backends *)
  result_ok : bool;  (** executed result = classical MM *)
  counters_ok : bool;  (** executed counters = scheduler's prediction *)
  executed : Fmm_machine.Trace.counters;
  peak_occupancy : int;
}

val report_ok : backend_report -> bool

type backend_kind = [ `F64 | `Zp | `Rat | `Big ]

val backend_kind_to_string : backend_kind -> string
val backend_kind_of_string : string -> backend_kind option

val run_backend :
  ?tol:float ->
  Fmm_cdag.Cdag.t ->
  cache_size:int ->
  sched:Fmm_machine.Schedulers.result ->
  seed:int ->
  backend_kind ->
  backend_report
(** Execute one schedule on one backend with seeded random operands
    (seed is split per backend via {!Fmm_util.Prng.derive}) and check
    the result against classical MM computed independently
    ({!Fmm_matrix.Matrix} over the rings, {!Kernel.naive_mul} over
    float64, tolerance [tol], default 1e-9). *)

type verification = {
  algorithm : string;
  n : int;
  cache_size : int;
  policy_name : string;
  predicted : Fmm_machine.Trace.counters;  (** the scheduler's counts *)
  reports : backend_report list;
}

val verification_ok : verification -> bool

val verify_sched :
  ?seed:int ->
  ?tol:float ->
  ?backends:backend_kind list ->
  Fmm_cdag.Cdag.t ->
  cache_size:int ->
  policy_name:string ->
  Fmm_machine.Schedulers.result ->
  verification
(** Execute an already-produced schedule (hybrid, optimizer-found, ...)
    on every requested backend (default float64 + Zp). *)

val verify :
  ?seed:int ->
  ?tol:float ->
  ?backends:backend_kind list ->
  ?cutoff:int ->
  Fmm_bilinear.Algorithm.t ->
  n:int ->
  cache_size:int ->
  policy:policy ->
  verification
(** Build the CDAG (hybrid when [cutoff > 1]), schedule under [policy],
    execute and check. Raises [Invalid_argument] on configurations
    {!validate_config} rejects. *)
