(* Dense float64 matrix kernels on Bigarray storage: the numeric
   substrate of the execution backend (ROADMAP item 2). Three
   multipliers, in increasing sophistication:

   - [naive_mul]: the textbook triple loop — the correctness reference
     every other path is compared against.
   - [blocked_mul]: cache-blocked with copy-in packing and MU x NU
     register micro-tiles, in the style of the hpmmm data-copying
     exemplar (SNIPPETS.md): NB-sized panels of A and B are copied
     into contiguous buffers (padded to full micro-tiles so the inner
     kernel needs no edge cases), and an MU=4 x NU=2 micro-kernel
     accumulates 8 scalars across the shared dimension.
   - [fast_mul]: recursive fast MM over a bilinear <n0,n0,n0;t>
     algorithm down to a cutoff, classical (blocked) below it — the
     wall-clock side of the Strassen-vs-classical crossover experiment
     (NE2). Its flop accounting mirrors Algorithm.Apply exactly, so
     the counts are differential-testable against the exact-ring
     recursion. *)

module A1 = Bigarray.Array1

type mat = {
  n : int;
  data : (float, Bigarray.float64_elt, Bigarray.c_layout) A1.t;
}

let create n =
  if n < 1 then invalid_arg "Kernel.create: n < 1";
  let data = A1.create Bigarray.float64 Bigarray.c_layout (n * n) in
  A1.fill data 0.0;
  { n; data }

let get m i j = A1.get m.data ((i * m.n) + j)
let set m i j x = A1.set m.data ((i * m.n) + j) x

let of_vec n v =
  if Array.length v <> n * n then invalid_arg "Kernel.of_vec: length mismatch";
  let m = create n in
  Array.iteri (fun idx x -> A1.unsafe_set m.data idx x) v;
  m

let to_vec m = Array.init (m.n * m.n) (fun idx -> A1.unsafe_get m.data idx)

(* Uniform in [-1, 1): keeps products O(1) so absolute and relative
   error scales stay comparable across n. *)
let random rng n =
  let m = create n in
  for idx = 0 to (n * n) - 1 do
    A1.unsafe_set m.data idx ((2. *. Fmm_util.Prng.float rng) -. 1.)
  done;
  m

let max_abs m =
  let acc = ref 0.0 in
  for idx = 0 to (m.n * m.n) - 1 do
    let x = Float.abs (A1.unsafe_get m.data idx) in
    if x > !acc then acc := x
  done;
  !acc

let max_abs_diff a b =
  if a.n <> b.n then invalid_arg "Kernel.max_abs_diff: dimension mismatch";
  let acc = ref 0.0 in
  for idx = 0 to (a.n * a.n) - 1 do
    let d = Float.abs (A1.unsafe_get a.data idx -. A1.unsafe_get b.data idx) in
    if d > !acc then acc := d
  done;
  !acc

(* Error relative to the reference's largest-magnitude entry (floored
   at 1 so all-zero references do not divide by zero) — the tolerance
   contract documented in DESIGN.md section 14. *)
let rel_err a ~reference = max_abs_diff a reference /. Float.max 1.0 (max_abs reference)

let naive_mul a b =
  if a.n <> b.n then invalid_arg "Kernel.naive_mul: dimension mismatch";
  let n = a.n in
  let c = create n in
  for i = 0 to n - 1 do
    for k = 0 to n - 1 do
      let aik = A1.unsafe_get a.data ((i * n) + k) in
      if aik <> 0.0 then
        for j = 0 to n - 1 do
          A1.unsafe_set c.data
            ((i * n) + j)
            (A1.unsafe_get c.data ((i * n) + j)
            +. (aik *. A1.unsafe_get b.data ((k * n) + j)))
        done
    done
  done;
  c

(* Blocking parameters (DESIGN.md section 14): NB x NB panels sized for
   L1/L2 residency, MU x NU register tile. The hpmmm exemplar's values. *)
let nb_default = 64
let mu = 4
let nu = 2

let blocked_mul ?(nb = nb_default) a b =
  if a.n <> b.n then invalid_arg "Kernel.blocked_mul: dimension mismatch";
  if nb < 1 then invalid_arg "Kernel.blocked_mul: nb < 1";
  let n = a.n in
  let c = create n in
  (* Packed panels, zero-padded to whole micro-tiles: the micro-kernel
     then runs full MU x NU tiles unconditionally and only the store
     filters edge rows/columns. *)
  let mstrips_max = (nb + mu - 1) / mu in
  let nstrips_max = (nb + nu - 1) / nu in
  let ap = A1.create Bigarray.float64 Bigarray.c_layout (mstrips_max * mu * nb) in
  let bp = A1.create Bigarray.float64 Bigarray.c_layout (nstrips_max * nu * nb) in
  let nblocks = (n + nb - 1) / nb in
  for jc = 0 to nblocks - 1 do
    let j0 = jc * nb in
    let jb = min nb (n - j0) in
    let nstrips = (jb + nu - 1) / nu in
    for pc = 0 to nblocks - 1 do
      let p0 = pc * nb in
      let pb = min nb (n - p0) in
      (* Copy-in B[p0..p0+pb) x [j0..j0+jb) as NU-wide column strips:
         bp.(strip * pb * nu + k * nu + cc). *)
      A1.fill bp 0.0;
      for t = 0 to nstrips - 1 do
        let base = t * pb * nu in
        let jlim = min nu (jb - (t * nu)) in
        for k = 0 to pb - 1 do
          for cc = 0 to jlim - 1 do
            A1.unsafe_set bp
              (base + (k * nu) + cc)
              (A1.unsafe_get b.data (((p0 + k) * n) + j0 + (t * nu) + cc))
          done
        done
      done;
      for ic = 0 to nblocks - 1 do
        let i0 = ic * nb in
        let ib = min nb (n - i0) in
        let mstrips = (ib + mu - 1) / mu in
        (* Copy-in A[i0..i0+ib) x [p0..p0+pb) as MU-tall row strips:
           ap.(strip * pb * mu + k * mu + r). *)
        A1.fill ap 0.0;
        for s = 0 to mstrips - 1 do
          let base = s * pb * mu in
          let ilim = min mu (ib - (s * mu)) in
          for r = 0 to ilim - 1 do
            let row = (i0 + (s * mu) + r) * n in
            for k = 0 to pb - 1 do
              A1.unsafe_set ap (base + (k * mu) + r) (A1.unsafe_get a.data (row + p0 + k))
            done
          done
        done;
        (* MU x NU register micro-kernel over the packed panels. *)
        for s = 0 to mstrips - 1 do
          let abase = s * pb * mu in
          for t = 0 to nstrips - 1 do
            let bbase = t * pb * nu in
            let c00 = ref 0.0 and c01 = ref 0.0 in
            let c10 = ref 0.0 and c11 = ref 0.0 in
            let c20 = ref 0.0 and c21 = ref 0.0 in
            let c30 = ref 0.0 and c31 = ref 0.0 in
            for k = 0 to pb - 1 do
              let ak = abase + (k * mu) and bk = bbase + (k * nu) in
              let a0 = A1.unsafe_get ap ak in
              let a1 = A1.unsafe_get ap (ak + 1) in
              let a2 = A1.unsafe_get ap (ak + 2) in
              let a3 = A1.unsafe_get ap (ak + 3) in
              let b0 = A1.unsafe_get bp bk in
              let b1 = A1.unsafe_get bp (bk + 1) in
              c00 := !c00 +. (a0 *. b0);
              c01 := !c01 +. (a0 *. b1);
              c10 := !c10 +. (a1 *. b0);
              c11 := !c11 +. (a1 *. b1);
              c20 := !c20 +. (a2 *. b0);
              c21 := !c21 +. (a2 *. b1);
              c30 := !c30 +. (a3 *. b0);
              c31 := !c31 +. (a3 *. b1)
            done;
            let store r cc v =
              let i = i0 + (s * mu) + r and j = j0 + (t * nu) + cc in
              if i < i0 + ib && j < j0 + jb then
                A1.unsafe_set c.data ((i * n) + j) (A1.unsafe_get c.data ((i * n) + j) +. v)
            in
            store 0 0 !c00;
            store 0 1 !c01;
            store 1 0 !c10;
            store 1 1 !c11;
            store 2 0 !c20;
            store 2 1 !c21;
            store 3 0 !c30;
            store 3 1 !c31
          done
        done
      done
    done
  done;
  c

(* --- recursive fast multiplication (the NE2 crossover machinery) --- *)

type flops = { mutable adds : int; mutable mults : int }

(* Cost model identical to Algorithm.Apply.classical_mul: n*m*k
   multiplications, n*(m-1)*k additions. *)
let classical_flops n = { adds = n * (n - 1) * n; mults = n * n * n }

let add_flops acc f =
  acc.adds <- acc.adds + f.adds;
  acc.mults <- acc.mults + f.mults

(* Linear combination of equal-size blocks, with Algorithm.Apply's
   exact cost accounting: z nonzero coefficients cost (z - 1) block
   additions, plus one block "addition" per |c| > 1 coefficient (the
   paper's models price all linear work uniformly); a leading +1 term
   is a free copy. *)
let combine fl coeffs (blocks : mat array) r =
  let block_cost = r * r in
  let acc = create r in
  let started = ref false in
  let apply c idx =
    let src = blocks.(idx) in
    let cf = float_of_int c in
    if not !started then begin
      started := true;
      if c = 1 then A1.blit src.data acc.data
      else begin
        fl.adds <- fl.adds + block_cost;
        for e = 0 to block_cost - 1 do
          A1.unsafe_set acc.data e (cf *. A1.unsafe_get src.data e)
        done
      end
    end
    else begin
      fl.adds <- fl.adds + block_cost;
      if c <> 1 && c <> -1 then fl.adds <- fl.adds + block_cost;
      for e = 0 to block_cost - 1 do
        A1.unsafe_set acc.data e
          (A1.unsafe_get acc.data e +. (cf *. A1.unsafe_get src.data e))
      done
    end
  in
  (* Mirror Apply.combine's term order: a +1 coefficient first (free
     copy), then the rest in index order. *)
  let ones = ref [] and others = ref [] in
  Array.iteri
    (fun idx c ->
      if c = 1 then ones := idx :: !ones
      else if c <> 0 then others := (c, idx) :: !others)
    coeffs;
  (match List.rev !ones with
  | first :: rest ->
    apply 1 first;
    List.iter (fun idx -> apply 1 idx) rest
  | [] -> ());
  List.iter (fun (c, idx) -> apply c idx) (List.rev !others);
  acc

let sub_block src ~i0 ~j0 ~r =
  let dst = create r in
  for i = 0 to r - 1 do
    for j = 0 to r - 1 do
      A1.unsafe_set dst.data ((i * r) + j)
        (A1.unsafe_get src.data (((i0 + i) * src.n) + j0 + j))
    done
  done;
  dst

let blit_block dst ~i0 ~j0 src =
  let r = src.n in
  for i = 0 to r - 1 do
    for j = 0 to r - 1 do
      A1.unsafe_set dst.data (((i0 + i) * dst.n) + j0 + j)
        (A1.unsafe_get src.data ((i * r) + j))
    done
  done

let fast_mul ?(cutoff = 1) ?(nb = nb_default) alg a b =
  let n0, m0, k0 = Fmm_bilinear.Algorithm.dims alg in
  if n0 <> m0 || m0 <> k0 then
    invalid_arg "Kernel.fast_mul: base case must be square";
  if a.n <> b.n then invalid_arg "Kernel.fast_mul: dimension mismatch";
  let u = Fmm_bilinear.Algorithm.u_matrix alg in
  let v = Fmm_bilinear.Algorithm.v_matrix alg in
  let w = Fmm_bilinear.Algorithm.w_matrix alg in
  let t = Fmm_bilinear.Algorithm.rank alg in
  let fl = { adds = 0; mults = 0 } in
  let rec go a b =
    let n = a.n in
    (* Same recursion guard as Algorithm.Apply.multiply, so the flop
       counters agree level for level. *)
    if n <= cutoff || n mod n0 <> 0 then begin
      add_flops fl (classical_flops n);
      blocked_mul ~nb a b
    end
    else begin
      let r = n / n0 in
      let a_blocks =
        Array.init (n0 * n0) (fun idx ->
            sub_block a ~i0:(idx / n0 * r) ~j0:(idx mod n0 * r) ~r)
      in
      let b_blocks =
        Array.init (n0 * n0) (fun idx ->
            sub_block b ~i0:(idx / n0 * r) ~j0:(idx mod n0 * r) ~r)
      in
      let products =
        Array.init t (fun l ->
            let ta = combine fl u.(l) a_blocks r in
            let tb = combine fl v.(l) b_blocks r in
            go ta tb)
      in
      let c = create n in
      for o = 0 to (n0 * n0) - 1 do
        let blk = combine fl w.(o) products r in
        blit_block c ~i0:(o / n0 * r) ~j0:(o mod n0 * r) blk
      done;
      c
    end
  in
  let c = go a b in
  (c, fl)
