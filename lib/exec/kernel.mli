(** Dense float64 matrix kernels on Bigarray storage: the numeric
    substrate of the execution backend. [blocked_mul] is a
    cache-blocked, register-tiled classical multiplier in the style of
    the hpmmm data-copying exemplar (NB-sized copy-in panels, MU x NU
    micro-tiles); [fast_mul] is the recursive fast-MM path of the
    Strassen-vs-classical wall-clock crossover experiment (NE2), with
    flop accounting identical to {!Fmm_bilinear.Algorithm.Apply}. *)

type mat = {
  n : int;
  data : (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t;
      (** row-major n x n *)
}

val create : int -> mat
(** Zero-filled n x n matrix. *)

val get : mat -> int -> int -> float
val set : mat -> int -> int -> float -> unit

val of_vec : int -> float array -> mat
(** [of_vec n v] reshapes a row-major length-n^2 vector. *)

val to_vec : mat -> float array

val random : Fmm_util.Prng.t -> int -> mat
(** Entries uniform in [-1, 1), drawn from the given deterministic
    stream. *)

val max_abs : mat -> float
val max_abs_diff : mat -> mat -> float

val rel_err : mat -> reference:mat -> float
(** Max absolute entry difference relative to the reference's
    largest-magnitude entry (floored at 1): the executor's float64
    tolerance contract. *)

val naive_mul : mat -> mat -> mat
(** Textbook triple loop — the correctness reference. *)

val nb_default : int
(** Panel edge (64 words). *)

val mu : int
(** Micro-tile rows (4). *)

val nu : int
(** Micro-tile columns (2). *)

val blocked_mul : ?nb:int -> mat -> mat -> mat
(** Cache-blocked classical multiply: NB x NB copy-in panels of both
    operands packed into contiguous buffers (zero-padded to whole
    micro-tiles), MU x NU register-resident micro-kernel. Same
    mathematical operation count as [naive_mul]; sums are reassociated,
    so results agree to rounding only. *)

type flops = { mutable adds : int; mutable mults : int }

val classical_flops : int -> flops
(** Cost of one classical n x n multiply under
    {!Fmm_bilinear.Algorithm.Apply}'s convention: n^3 mults,
    n^2 (n - 1) adds. *)

val fast_mul :
  ?cutoff:int -> ?nb:int -> Fmm_bilinear.Algorithm.t -> mat -> mat -> mat * flops
(** Recursive fast multiplication over a square-base bilinear
    algorithm.

    {b Unified cutoff rule} (shared verbatim with
    {!Fmm_bilinear.Algorithm.Apply.multiply}): a sub-problem recurses
    iff its size both {e exceeds} [cutoff] (default 1) and is divisible
    by the base dimension; otherwise the whole sub-problem — including
    any non-divisible intermediate reached mid-recursion — is computed
    classically ([blocked_mul] here), silently and without raising.
    Only CDAG construction ({!Fmm_cdag.Cdag.build} /
    [Executor.validate_config]), which needs the recursion to tile
    exactly, rejects sizes that are not powers of the base dimension.
    Because the guard is shared, the returned flop counters are
    exactly [Apply]'s for the same [cutoff] at every size, powers of
    the base dimension or not. Raises [Invalid_argument] on
    rectangular bases and mismatched operand sizes. *)
