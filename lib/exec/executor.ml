(* The numeric execution backend (ROADMAP item 2): take any
   replay-verified schedule — a Trace.t from run_lru / run_belady /
   run_rematerialize / run_hybrid / the optimizer — and EXECUTE it on
   real data, interpreting every event against concrete storage:

   - Load v   : copy v's value slow -> fast (v must be in slow memory,
                and the fast memory must have a free word);
   - Store v  : copy fast -> slow;
   - Evict v  : drop v's word from fast memory;
   - Compute v: evaluate v's operation (input fetch / linear
                combination / product, compiled once from the CDAG)
                reading operands from fast memory only, writing the
                result into a fast word.

   Two element backends behind one functor interface: Bigarray float64
   with a genuine cache_size-word fast-memory arena (slot allocation,
   vertex -> slot table), and the exact rings of lib/ring (Rat / Zp /
   Bigint) as bit-exact oracles. Executed counters are recomputed from
   the events actually interpreted, so comparing them against the
   scheduler's predicted counters checks the word-counting simulators
   event-for-event; comparing the output values against classical MM
   checks the semantics end to end. *)

module D = Fmm_graph.Digraph
module Cdag = Fmm_cdag.Cdag
module Trace = Fmm_machine.Trace
module Schedulers = Fmm_machine.Schedulers
module Workload = Fmm_machine.Workload
module Orders = Fmm_machine.Orders
module Prng = Fmm_util.Prng

exception Exec_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Exec_error s)) fmt

(* --- CDAG semantics, compiled once --- *)

type op =
  | Op_input_a of int (* index into vec(A) *)
  | Op_input_b of int
  | Op_linear of (int * int) array (* (source vertex, coefficient) *)
  | Op_mult of int * int

let compile cdag =
  let g = Cdag.graph cdag in
  Array.init (Cdag.n_vertices cdag) (fun v ->
      match Cdag.role cdag v with
      | Cdag.Input_a i -> Op_input_a i
      | Cdag.Input_b i -> Op_input_b i
      | Cdag.Enc_a | Cdag.Enc_b | Cdag.Dec ->
        Op_linear
          (Array.of_list
             (List.map
                (fun src ->
                  match Cdag.edge_coeff cdag src v with
                  | Some c -> (src, c)
                  | None -> err "Executor.compile: linear edge %d->%d without coefficient" src v)
                (D.in_neighbors g v)))
      | Cdag.Mult -> (
        match D.in_neighbors g v with
        | [ x; y ] -> Op_mult (x, y)
        | l -> err "Executor.compile: Mult vertex %d with %d operands" v (List.length l)))

(* --- storage backends --- *)

module type BACKEND = sig
  type elt
  type t

  val name : string
  val create : n_vertices:int -> cache_size:int -> t
  val set_slow : t -> int -> elt -> unit
  val slow_present : t -> int -> bool
  val get_slow : t -> int -> elt
  val fast_present : t -> int -> bool
  val occupancy : t -> int

  val load : t -> int -> unit
  (** slow -> fast; legality already checked by the engine. *)

  val store : t -> int -> unit
  val evict : t -> int -> unit

  val compute : t -> int -> op -> unit
  (** Evaluate [op] reading operands from fast memory, write the result
      into v's fast word (allocating it if absent). *)
end

(* Exact-ring backend: values held in vertex-indexed arrays, residency
   in flag arrays. The fast "memory" is bounded by the engine's
   occupancy accounting (the arena below makes the bound physical for
   float64). *)
module Ring_backend (R : Fmm_ring.Sig_ring.S) : BACKEND with type elt = R.t = struct
  type elt = R.t

  type t = {
    slow : elt array;
    slow_mem : bool array;
    fast : elt array;
    fast_mem : bool array;
    mutable occ : int;
  }

  let name = "ring"

  let create ~n_vertices ~cache_size:_ =
    {
      slow = Array.make n_vertices R.zero;
      slow_mem = Array.make n_vertices false;
      fast = Array.make n_vertices R.zero;
      fast_mem = Array.make n_vertices false;
      occ = 0;
    }

  let set_slow t v x =
    t.slow.(v) <- x;
    t.slow_mem.(v) <- true

  let slow_present t v = t.slow_mem.(v)
  let get_slow t v = t.slow.(v)
  let fast_present t v = t.fast_mem.(v)
  let occupancy t = t.occ

  let load t v =
    t.fast.(v) <- t.slow.(v);
    if not t.fast_mem.(v) then begin
      t.fast_mem.(v) <- true;
      t.occ <- t.occ + 1
    end

  let store t v =
    t.slow.(v) <- t.fast.(v);
    t.slow_mem.(v) <- true

  let evict t v =
    if t.fast_mem.(v) then begin
      t.fast_mem.(v) <- false;
      t.occ <- t.occ - 1
    end

  let compute t v op =
    let value =
      match op with
      | Op_input_a _ | Op_input_b _ -> err "Ring_backend: compute of an input"
      | Op_linear srcs ->
        Array.fold_left
          (fun acc (src, c) -> R.add acc (R.mul (R.of_int c) t.fast.(src)))
          R.zero srcs
      | Op_mult (x, y) -> R.mul t.fast.(x) t.fast.(y)
    in
    t.fast.(v) <- value;
    if not t.fast_mem.(v) then begin
      t.fast_mem.(v) <- true;
      t.occ <- t.occ + 1
    end
end

(* Float64 backend with a physical fast memory: a cache_size-word
   Bigarray arena plus a vertex -> slot table and a free-slot stack.
   Every resident value occupies exactly one of the M words, so the
   cache-size bound is enforced by construction, not just counted. *)
module F64_backend : BACKEND with type elt = float = struct
  module A1 = Bigarray.Array1

  type elt = float

  type t = {
    slow : (float, Bigarray.float64_elt, Bigarray.c_layout) A1.t;
    slow_mem : Bytes.t;
    arena : (float, Bigarray.float64_elt, Bigarray.c_layout) A1.t;
    slot_of : int array; (* vertex -> arena slot, -1 if not resident *)
    free : int array; (* free-slot stack *)
    mutable free_top : int;
  }

  let name = "float64"

  let bit_mem b i = Char.code (Bytes.unsafe_get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

  let bit_set b i =
    Bytes.unsafe_set b (i lsr 3)
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get b (i lsr 3)) lor (1 lsl (i land 7))))

  let create ~n_vertices ~cache_size =
    let slow = A1.create Bigarray.float64 Bigarray.c_layout n_vertices in
    A1.fill slow 0.0;
    let arena = A1.create Bigarray.float64 Bigarray.c_layout (max 1 cache_size) in
    A1.fill arena 0.0;
    {
      slow;
      slow_mem = Bytes.make ((n_vertices + 7) / 8) '\000';
      arena;
      slot_of = Array.make n_vertices (-1);
      free = Array.init (max 1 cache_size) (fun i -> i);
      free_top = max 1 cache_size;
    }

  let set_slow t v x =
    A1.set t.slow v x;
    bit_set t.slow_mem v

  let slow_present t v = bit_mem t.slow_mem v
  let get_slow t v = A1.get t.slow v
  let fast_present t v = t.slot_of.(v) >= 0
  let occupancy t = A1.dim t.arena - t.free_top

  let alloc_slot t v =
    if t.slot_of.(v) < 0 then begin
      if t.free_top = 0 then err "F64_backend: fast memory arena exhausted";
      t.free_top <- t.free_top - 1;
      t.slot_of.(v) <- t.free.(t.free_top)
    end;
    t.slot_of.(v)

  let load t v =
    let s = alloc_slot t v in
    A1.set t.arena s (A1.get t.slow v)

  let store t v =
    A1.set t.slow v (A1.get t.arena t.slot_of.(v));
    bit_set t.slow_mem v

  let evict t v =
    let s = t.slot_of.(v) in
    if s >= 0 then begin
      t.slot_of.(v) <- -1;
      t.free.(t.free_top) <- s;
      t.free_top <- t.free_top + 1
    end

  let compute t v op =
    let value =
      match op with
      | Op_input_a _ | Op_input_b _ -> err "F64_backend: compute of an input"
      | Op_linear srcs ->
        Array.fold_left
          (fun acc (src, c) ->
            acc +. (float_of_int c *. A1.get t.arena t.slot_of.(src)))
          0.0 srcs
      | Op_mult (x, y) -> A1.get t.arena t.slot_of.(x) *. A1.get t.arena t.slot_of.(y)
    in
    let s = alloc_slot t v in
    A1.set t.arena s value
end

(* --- the trace-interpreting engine --- *)

module Engine (B : BACKEND) = struct
  type result = {
    outputs : B.elt array; (* vec(C): values at the CDAG outputs *)
    counters : Trace.counters; (* recounted from the interpreted events *)
    peak_occupancy : int;
  }

  let run cdag ~cache_size ~(a : B.elt array) ~(b : B.elt array) (trace : Trace.t) =
    let nv = Cdag.n_vertices cdag in
    let n = Cdag.size cdag in
    if Array.length a <> n * n || Array.length b <> n * n then
      err "Executor.run: operand length mismatch (want %d)" (n * n);
    if cache_size < 1 then err "Executor.run: cache_size < 1";
    let ops = compile cdag in
    let st = B.create ~n_vertices:nv ~cache_size in
    Array.iteri
      (fun i op ->
        match op with
        | Op_input_a k -> B.set_slow st i a.(k)
        | Op_input_b k -> B.set_slow st i b.(k)
        | _ -> ())
      ops;
    let computed = Bytes.make ((nv + 7) / 8) '\000' in
    let was_computed v =
      Char.code (Bytes.get computed (v lsr 3)) land (1 lsl (v land 7)) <> 0
    in
    let mark_computed v =
      Bytes.set computed (v lsr 3)
        (Char.chr (Char.code (Bytes.get computed (v lsr 3)) lor (1 lsl (v land 7))))
    in
    let loads = ref 0 and stores = ref 0 in
    let computes = ref 0 and recomputes = ref 0 in
    let peak = ref 0 in
    let bump_peak () = if B.occupancy st > !peak then peak := B.occupancy st in
    let need_fast what v p =
      if not (B.fast_present st p) then
        err "Executor.run: %s of vertex %d needs %d in fast memory" what v p
    in
    Trace.iter
      (fun event ->
        match event with
        | Trace.Load v ->
          if not (B.slow_present st v) then
            err "Executor.run: load of vertex %d absent from slow memory" v;
          if B.fast_present st v then
            err "Executor.run: load of already-resident vertex %d" v;
          if B.occupancy st >= cache_size then
            err "Executor.run: fast memory full (%d words) at load of %d" cache_size v;
          B.load st v;
          incr loads;
          bump_peak ()
        | Trace.Store v ->
          need_fast "store" v v;
          B.store st v;
          incr stores
        | Trace.Evict v ->
          need_fast "evict" v v;
          B.evict st v
        | Trace.Compute v ->
          (match ops.(v) with
          | Op_input_a _ | Op_input_b _ ->
            err "Executor.run: compute of input vertex %d" v
          | Op_linear srcs -> Array.iter (fun (s, _) -> need_fast "compute" v s) srcs
          | Op_mult (x, y) ->
            need_fast "compute" v x;
            need_fast "compute" v y);
          if (not (B.fast_present st v)) && B.occupancy st >= cache_size then
            err "Executor.run: fast memory full (%d words) at compute of %d" cache_size v;
          B.compute st v ops.(v);
          incr computes;
          if was_computed v then incr recomputes else mark_computed v;
          bump_peak ())
      trace;
    let outputs =
      Array.map
        (fun v ->
          if not (B.slow_present st v) then
            err "Executor.run: output vertex %d not in slow memory at end of trace" v;
          B.get_slow st v)
        (Cdag.outputs cdag)
    in
    {
      outputs;
      counters =
        {
          Trace.loads = !loads;
          stores = !stores;
          computes = !computes;
          recomputes = !recomputes;
        };
      peak_occupancy = !peak;
    }
end

module F64 = Engine (F64_backend)
module Make_ring (R : Fmm_ring.Sig_ring.S) = Engine (Ring_backend (R))
module Zp = Make_ring (Fmm_ring.Zp.Z65537)
module Q = Make_ring (Fmm_ring.Rat.Field)
module Big = Make_ring (Fmm_ring.Sig_ring.Big)

(* --- configuration validation (shared with the fmmlab CLI) --- *)

(* Degenerate configurations are rejected up front with a diagnostic
   (the CLI turns this into exit code 2): n = 1 has no multiplication
   tree, rectangular bases have no square recursive CDAG, and n and the
   hybrid cutoff must be powers of the base dimension for the recursion
   to tile. *)
let validate_config ?(cutoff = 1) alg ~n =
  let n0, m0, k0 = Fmm_bilinear.Algorithm.dims alg in
  if n0 <> m0 || m0 <> k0 then
    Error
      (Printf.sprintf
         "algorithm %s has a rectangular <%d,%d,%d> base: the recursive CDAG \
          needs a square base case"
         (Fmm_bilinear.Algorithm.name alg)
         n0 m0 k0)
  else if n0 < 2 then
    Error
      (Printf.sprintf "algorithm %s has a degenerate 1x1 base case"
         (Fmm_bilinear.Algorithm.name alg))
  else if n < 2 then
    Error (Printf.sprintf "n = %d is degenerate: need n >= 2 (one real recursion level)" n)
  else begin
    let rec power x = x = 1 || (x mod n0 = 0 && power (x / n0)) in
    if not (power n) then
      Error
        (Printf.sprintf "n = %d is not a power of the base dimension %d" n n0)
    else if cutoff < 1 then
      Error
        (Printf.sprintf "cutoff = %d is degenerate: need cutoff >= 1" cutoff)
    else if cutoff > n then
      Error (Printf.sprintf "cutoff = %d exceeds n = %d" cutoff n)
    else if not (power cutoff) then
      Error
        (Printf.sprintf "cutoff = %d is not a power of the base dimension %d"
           cutoff n0)
    else Ok ()
  end

(* --- policies and end-to-end verification --- *)

type policy = Lru | Belady | Remat

let all_policies = [ Lru; Belady; Remat ]
let policy_to_string = function Lru -> "lru" | Belady -> "belady" | Remat -> "remat"

let policy_of_string = function
  | "lru" -> Some Lru
  | "belady" -> Some Belady
  | "remat" -> Some Remat
  | _ -> None

let schedule cdag ~cache_size policy =
  let work = Workload.of_cdag cdag in
  let order = Orders.recursive_dfs cdag in
  match policy with
  | Lru -> Schedulers.run_lru work ~cache_size order
  | Belady -> Schedulers.run_belady work ~cache_size order
  | Remat -> Schedulers.run_rematerialize work ~cache_size order

type backend_report = {
  backend : string;
  exact : bool; (* exact ring comparison vs float tolerance *)
  max_err : float; (* 0 for exact backends *)
  result_ok : bool; (* executed result = classical MM *)
  counters_ok : bool; (* executed counters = scheduler's prediction *)
  executed : Trace.counters;
  peak_occupancy : int;
}

let report_ok r = r.result_ok && r.counters_ok

(* Counter parity is checked two ways: the engine's recount of the
   events it interpreted must equal the scheduler's counters, and so
   must Trace.count of the raw trace (so the scheduler's counters
   honestly describe the trace it emitted). *)
let counters_match (sched : Schedulers.result) executed =
  executed = sched.Schedulers.counters
  && Trace.count sched.Schedulers.trace = sched.Schedulers.counters

module Check_ring (R : Fmm_ring.Sig_ring.S) = struct
  module E = Make_ring (R)
  module M = Fmm_matrix.Matrix.Make (R)

  let run cdag ~cache_size ~(sched : Schedulers.result) ~seed ~name =
    let n = Cdag.size cdag in
    let rng = Prng.create ~seed in
    let rand () = R.of_int (Prng.int_range rng (-50) 50) in
    let a = Array.init (n * n) (fun _ -> rand ()) in
    let b = Array.init (n * n) (fun _ -> rand ()) in
    let res = E.run cdag ~cache_size ~a ~b sched.Schedulers.trace in
    let expected = M.vec_of (M.mul (M.of_vec n n a) (M.of_vec n n b)) in
    let result_ok =
      Array.length res.E.outputs = Array.length expected
      && Array.for_all2 R.equal res.E.outputs expected
    in
    {
      backend = name;
      exact = true;
      max_err = 0.;
      result_ok;
      counters_ok = counters_match sched res.E.counters;
      executed = res.E.counters;
      peak_occupancy = res.E.peak_occupancy;
    }
end

module Check_zp = Check_ring (Fmm_ring.Zp.Z65537)
module Check_q = Check_ring (Fmm_ring.Rat.Field)
module Check_big = Check_ring (Fmm_ring.Sig_ring.Big)

let run_f64 ?(tol = 1e-9) cdag ~cache_size ~(sched : Schedulers.result) ~seed =
  let n = Cdag.size cdag in
  let rng = Prng.create ~seed in
  let ma = Kernel.random rng n in
  let mb = Kernel.random rng n in
  let res =
    F64.run cdag ~cache_size ~a:(Kernel.to_vec ma) ~b:(Kernel.to_vec mb)
      sched.Schedulers.trace
  in
  let reference = Kernel.naive_mul ma mb in
  let executed_mat = Kernel.of_vec n res.F64.outputs in
  let max_err = Kernel.rel_err executed_mat ~reference in
  {
    backend = "float64";
    exact = false;
    max_err;
    result_ok = max_err <= tol;
    counters_ok = counters_match sched res.F64.counters;
    executed = res.F64.counters;
    peak_occupancy = res.F64.peak_occupancy;
  }

type backend_kind = [ `F64 | `Zp | `Rat | `Big ]

let backend_kind_to_string = function
  | `F64 -> "float64"
  | `Zp -> "zp65537"
  | `Rat -> "rat"
  | `Big -> "bigint"

let backend_kind_of_string = function
  | "float64" | "f64" -> Some `F64
  | "zp65537" | "zp" -> Some `Zp
  | "rat" | "q" -> Some `Rat
  | "bigint" | "big" -> Some `Big
  | _ -> None

let run_backend ?(tol = 1e-9) cdag ~cache_size ~sched ~seed kind =
  let seed = Prng.derive ~seed [ Hashtbl.hash (backend_kind_to_string kind) ] in
  match kind with
  | `F64 -> run_f64 ~tol cdag ~cache_size ~sched ~seed
  | `Zp -> Check_zp.run cdag ~cache_size ~sched ~seed ~name:"zp65537"
  | `Rat -> Check_q.run cdag ~cache_size ~sched ~seed ~name:"rat"
  | `Big -> Check_big.run cdag ~cache_size ~sched ~seed ~name:"bigint"

type verification = {
  algorithm : string;
  n : int;
  cache_size : int;
  policy_name : string;
  predicted : Trace.counters; (* the scheduler's word counts *)
  reports : backend_report list;
}

let verification_ok v = v.reports <> [] && List.for_all report_ok v.reports

(* Execute an already-produced schedule on every requested backend. *)
let verify_sched ?(seed = 0) ?(tol = 1e-9) ?(backends = [ `F64; `Zp ]) cdag
    ~cache_size ~policy_name (sched : Schedulers.result) =
  {
    algorithm = Fmm_bilinear.Algorithm.name (Cdag.base_algorithm cdag);
    n = Cdag.size cdag;
    cache_size;
    policy_name;
    predicted = sched.Schedulers.counters;
    reports =
      List.map (fun k -> run_backend ~tol cdag ~cache_size ~sched ~seed k) backends;
  }

(* Build the (possibly hybrid) CDAG, run the policy's scheduler,
   execute and check. *)
let verify ?(seed = 0) ?(tol = 1e-9) ?(backends = [ `F64; `Zp ]) ?(cutoff = 1)
    alg ~n ~cache_size ~policy =
  (match validate_config ~cutoff alg ~n with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Executor.verify: " ^ msg));
  let cdag = Cdag.build ~cutoff alg ~n in
  let sched = schedule cdag ~cache_size policy in
  verify_sched ~seed ~tol ~backends cdag ~cache_size
    ~policy_name:(policy_to_string policy) sched
