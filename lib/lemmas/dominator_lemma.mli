(** Lemma 3.7, verified exactly: every dominator set of a size-r^2
    subset Z of V_out(SUB_H^{r x r}) has >= |Z|/2 vertices. The minimum
    dominator is computed exactly by max-flow
    ({!Fmm_graph.Vertex_cut.min_dominator}). *)

type sample_result = {
  r : int;
  z_size : int;
  min_dominator : int;
  bound : int;
  holds : bool;  (** 2 * min_dominator >= |Z| *)
}

val sample_one : Fmm_cdag.Cdag.t -> r:int -> seed:int -> sample_result
(** One random Z subset of size r^2 drawn from its own generator — the
    unit of work the {!Fmm_par} pool fans out. Raises when the CDAG has
    fewer than r^2 size-r sub-outputs. *)

val sample_min_dominators :
  ?jobs:int ->
  Fmm_cdag.Cdag.t -> r:int -> trials:int -> seed:int -> sample_result list
(** [trials] random Z subsets of size r^2, each sampled from a seed
    derived from [(seed, r, trial)] via {!Fmm_util.Prng.derive} — so
    the trials are decorrelated across configurations and independent
    of each other, and the result is the same at every [jobs]
    (default 1, sequential). Raises when the CDAG has fewer than r^2
    size-r sub-outputs. *)

val per_subproblem_min_dominators :
  Fmm_cdag.Cdag.t -> r:int -> sample_result list
(** The extremal natural choice: Z = the full output set of each size-r
    sub-CDAG. *)

val all_hold : sample_result list -> bool
