(* Orchestrates the full lemma battery for one algorithm and produces a
   printable report — the machine-checked analogue of Section III for
   each concrete 2x2-base algorithm (and any other square base). Used
   by the fig2_encoder bench, the `fmmlab verify` CLI command, and the
   lemma_tour example. *)

type report = {
  algorithm : string;
  encoder_checks : Encoder_lemmas.check_result list;
  hk_checks : Hopcroft_kerr.check list;
  brent_ok : bool;
  all_ok : bool;
}

let check_algorithm alg =
  let encoder_checks = Encoder_lemmas.check_algorithm alg in
  (* The Hopcroft-Kerr forbidden sets are linear forms over a 2x2
     operand; they only apply to 2x2-base algorithms. *)
  let hk_checks =
    match Fmm_bilinear.Algorithm.dims alg with
    | 2, 2, 2 -> Hopcroft_kerr.check_algorithm alg
    | _ -> []
  in
  let brent_ok = Fmm_bilinear.Algorithm.verify_brent alg in
  {
    algorithm = Fmm_bilinear.Algorithm.name alg;
    encoder_checks;
    hk_checks;
    brent_ok;
    all_ok =
      brent_ok
      && Encoder_lemmas.all_hold encoder_checks
      && Hopcroft_kerr.all_ok hk_checks;
  }

(* --- deep checks: the CDAG-level lemmas on a concrete H^{n x n} --- *)

type deep_report = {
  base : report;
  n : int;
  lemma_2_2_ok : bool;
  lemma_3_7 : Dominator_lemma.sample_result list;
  lemma_3_11 : Paths_lemma.sample_result list;
  deep_ok : bool;
}

(** Extended battery: build H^{n x n} and sample the dominator and
    disjoint-path lemmas on it (exact max-flow computations), plus the
    Lemma 2.2 census. Heavier than [check_algorithm]; n = 4 is
    instant, n = 8 takes seconds.

    Every sample draws from its own seed, derived from
    [(seed, lemma, r, z, gamma, trial)] — configurations are
    decorrelated (the old code fed the same fixed seed to every
    dominator call and every paths call) and mutually independent, so
    the whole battery fans out on [jobs] domains with a result that
    does not depend on [jobs]. *)
let deep_check_algorithm ?(n = 4) ?(trials = 5) ?(seed = 7) ?(jobs = 1) alg =
  let base = check_algorithm alg in
  let cdag = Fmm_cdag.Cdag.build alg ~n in
  let n0, _, _ = Fmm_bilinear.Algorithm.dims alg in
  let t_rank = Fmm_bilinear.Algorithm.rank alg in
  let levels =
    let rec go x acc = if x = 1 then acc else go (x / n0) (acc + 1) in
    go n 0
  in
  let lemma_2_2_ok =
    List.for_all
      (fun j ->
        let r = Fmm_util.Combinat.pow_int n0 j in
        List.length (Fmm_cdag.Cdag.sub_outputs cdag ~r)
        = Fmm_util.Combinat.pow_int t_rank (levels - j) * r * r)
      (List.init (levels + 1) (fun j -> j))
  in
  (* One flat task list across both lemmas: per-r dominator trials and
     the (z, gamma) paths configurations all land on the same pool, so
     a single map call load-balances the whole battery. *)
  let dominator_tasks =
    List.concat_map
      (fun r ->
        List.init trials (fun t ->
            `Dominator (r, Fmm_util.Prng.derive ~seed [ 37; r; t ])))
      (List.sort_uniq compare [ n0; n ])
  in
  (* A one-level instance (n = n0) has only n0^2 sub-outputs at r = n0,
     so the |Z| = 2 n0^2 configuration does not exist there — keep only
     the configurations the instance supports. *)
  let available = List.length (Fmm_cdag.Cdag.sub_outputs cdag ~r:n0) in
  let paths_tasks =
    List.filter_map
      (fun (z, g) ->
        if z > available then None
        else Some (`Paths (z, g, Fmm_util.Prng.derive ~seed [ 311; n0; z; g ])))
      [ (n0 * n0, 0); (2 * n0 * n0, n0 * n0 / 2) ]
  in
  let samples =
    Fmm_par.Pool.map ~jobs
      (function
        | `Dominator (r, s) -> `Dominator (Dominator_lemma.sample_one cdag ~r ~seed:s)
        | `Paths (z, g, s) ->
          `Paths (Paths_lemma.sample cdag ~r:n0 ~z_size:z ~gamma_size:g ~seed:s))
      (dominator_tasks @ paths_tasks)
  in
  let lemma_3_7 =
    List.filter_map (function `Dominator s -> Some s | `Paths _ -> None) samples
  in
  let lemma_3_11 =
    List.filter_map (function `Paths s -> Some s | `Dominator _ -> None) samples
  in
  {
    base;
    n;
    lemma_2_2_ok;
    lemma_3_7;
    lemma_3_11;
    deep_ok =
      base.all_ok && lemma_2_2_ok
      && Dominator_lemma.all_hold lemma_3_7
      && Paths_lemma.all_hold lemma_3_11;
  }



let pp_report fmt r =
  Format.fprintf fmt "@[<v>algorithm: %s@," r.algorithm;
  Format.fprintf fmt "  Brent equations: %s@," (if r.brent_ok then "ok" else "FAIL");
  List.iter
    (fun c ->
      Format.fprintf fmt "  Lemma %-14s [%s] %s (%s)@," c.Encoder_lemmas.lemma
        (if c.Encoder_lemmas.holds then "ok" else "FAIL")
        c.Encoder_lemmas.algorithm c.Encoder_lemmas.detail)
    r.encoder_checks;
  List.iter
    (fun c ->
      Format.fprintf fmt "  Hopcroft-Kerr %-7s [%s] %d operand(s), max %d@,"
        c.Hopcroft_kerr.set_name
        (if c.Hopcroft_kerr.ok then "ok" else "FAIL")
        c.Hopcroft_kerr.count c.Hopcroft_kerr.max_allowed)
    r.hk_checks;
  Format.fprintf fmt "  overall: %s@]" (if r.all_ok then "ALL OK" else "FAILURES")

let report_to_string r = Format.asprintf "%a" pp_report r

let pp_deep_report fmt d =
  Format.fprintf fmt "@[<v>%a@," pp_report d.base;
  Format.fprintf fmt "  deep checks on H^{%dx%d}:@," d.n d.n;
  Format.fprintf fmt "  Lemma 2.2 censuses: %s@,"
    (if d.lemma_2_2_ok then "ok" else "FAIL");
  List.iter
    (fun s ->
      Format.fprintf fmt "  Lemma 3.7 r=%d: min dominator %d >= %d [%s]@,"
        s.Dominator_lemma.r s.Dominator_lemma.min_dominator
        s.Dominator_lemma.bound
        (if s.Dominator_lemma.holds then "ok" else "FAIL"))
    d.lemma_3_7;
  List.iter
    (fun s ->
      Format.fprintf fmt
        "  Lemma 3.11 |Z|=%d |Gamma|=%d: %d paths >= %.1f [%s]@,"
        s.Paths_lemma.z_size s.Paths_lemma.gamma_size
        s.Paths_lemma.disjoint_paths s.Paths_lemma.bound
        (if s.Paths_lemma.holds then "ok" else "FAIL"))
    d.lemma_3_11;
  Format.fprintf fmt "  deep overall: %s@]"
    (if d.deep_ok then "ALL OK" else "FAILURES")

let deep_report_to_string d = Format.asprintf "%a" pp_deep_report d
