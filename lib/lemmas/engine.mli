(** Orchestrates the full lemma battery for one algorithm — the
    machine-checked analogue of Section III — and renders a report.
    Used by [fmmlab verify], the [fig2_encoder] bench, and the
    lemma_tour example. *)

type report = {
  algorithm : string;
  encoder_checks : Encoder_lemmas.check_result list;
  hk_checks : Hopcroft_kerr.check list;  (** empty for non-2x2 bases *)
  brent_ok : bool;
  all_ok : bool;
}

val check_algorithm : Fmm_bilinear.Algorithm.t -> report

val pp_report : Format.formatter -> report -> unit
val report_to_string : report -> string

(** Extended battery: the CDAG-level lemmas sampled on a concrete
    H^{n x n} (exact max-flow computations) on top of the encoder
    checks. Every sample draws from its own
    {!Fmm_util.Prng.derive}d seed, so configurations are decorrelated
    and the battery fans out on [jobs] domains ({!Fmm_par.Pool}) with
    a result independent of [jobs]. *)
type deep_report = {
  base : report;
  n : int;
  lemma_2_2_ok : bool;
  lemma_3_7 : Dominator_lemma.sample_result list;
  lemma_3_11 : Paths_lemma.sample_result list;
  deep_ok : bool;
}

val deep_check_algorithm :
  ?n:int ->
  ?trials:int ->
  ?seed:int ->
  ?jobs:int ->
  Fmm_bilinear.Algorithm.t ->
  deep_report
(** [jobs] (default 1) bounds the domains used for the max-flow
    samples; the report is byte-identical at every [jobs]. *)

val pp_deep_report : Format.formatter -> deep_report -> unit
val deep_report_to_string : deep_report -> string
