(* Lemma 3.7: for Z a subset of V_out(SUB_H^{r x r}) of size r^2, every
   dominator set of Z in H^{n x n} has size >= |Z| / 2 = r^2 / 2.

   We verify this exactly on concrete CDAGs: the minimum dominator set
   is a minimum vertex cut (Vertex_cut.min_dominator), computed by
   max-flow, and must come out >= r^2 / 2 for every sampled Z. For tiny
   instances the exhaustive dominator search cross-checks the flow
   result. *)

module Cd = Fmm_cdag.Cdag
module VC = Fmm_graph.Vertex_cut
module P = Fmm_util.Prng

type sample_result = {
  r : int;
  z_size : int;
  min_dominator : int;
  bound : int; (* ceil(|Z| / 2) is not claimed; the paper claims >= |Z|/2 *)
  holds : bool;
}

(** Sample ONE subset Z of V_out(SUB_H^{r x r}) of size r^2 from its
    own generator and compute its exact minimum dominator size. The
    unit of work the pool fans out. *)
let sample_one cdag ~r ~seed =
  let outputs = Array.of_list (Cd.sub_outputs cdag ~r) in
  let z_target = r * r in
  if Array.length outputs < z_target then
    invalid_arg "Dominator_lemma.sample_one: not enough outputs";
  let rng = P.create ~seed in
  let sources = Array.to_list (Cd.inputs cdag) in
  let idxs = P.sample rng z_target (Array.length outputs) in
  let z = List.map (fun i -> outputs.(i)) idxs in
  let res = VC.min_dominator (Cd.graph cdag) ~sources ~targets:z in
  {
    r;
    z_size = z_target;
    min_dominator = res.VC.size;
    bound = z_target / 2;
    holds = 2 * res.VC.size >= z_target;
  }

(** Sample [trials] subsets Z, each from a seed derived from
    [(seed, r, trial)] — trials are decorrelated across r and
    independent of each other, so they can run on [jobs] domains with a
    result that does not depend on [jobs]. *)
let sample_min_dominators ?(jobs = 1) cdag ~r ~trials ~seed =
  Fmm_par.Pool.map ~jobs
    (fun trial -> sample_one cdag ~r ~seed:(P.derive ~seed [ 37; r; trial ]))
    (List.init trials (fun t -> t))

(** Worst case over all single sub-problems: Z = the full output set of
    one size-r sub-CDAG (a natural extremal choice). *)
let per_subproblem_min_dominators cdag ~r =
  let sources = Array.to_list (Cd.inputs cdag) in
  List.map
    (fun node ->
      let z = Array.to_list node.Cd.out in
      let res = VC.min_dominator (Cd.graph cdag) ~sources ~targets:z in
      {
        r;
        z_size = List.length z;
        min_dominator = res.VC.size;
        bound = List.length z / 2;
        holds = 2 * res.VC.size >= List.length z;
      })
    (Cd.sub_nodes cdag ~r)

let all_hold results = List.for_all (fun s -> s.holds) results
