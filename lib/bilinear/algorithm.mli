(** Bilinear matrix-multiplication algorithms (Definition 2.6 of the
    paper): an <n,m,k;t> algorithm is given exactly by three integer
    coefficient matrices — [u] (t rows over vec(A)), [v] (t rows over
    vec(B)) and [w] (n*k rows over the t products). Correctness is the
    Brent equations, checked exactly by {!verify_brent}. *)

type t

val make :
  name:string ->
  n:int ->
  m:int ->
  k:int ->
  u:int array array ->
  v:int array array ->
  w:int array array ->
  t
(** Validates all dimensions. *)

val name : t -> string
val dims : t -> int * int * int
val rank : t -> int
(** The number of multiplications t. *)

val u_matrix : t -> int array array
(** Deep copies; callers cannot mutate the algorithm. *)

val v_matrix : t -> int array array
val w_matrix : t -> int array array

val nnz_u : t -> int
val nnz_v : t -> int
val nnz_w : t -> int

val fingerprint : t -> string
(** [name ^ "#" ^ hash] where the hash folds the dimensions and every
    U/V/W coefficient: a structural cache key under which two
    same-named but structurally different algorithms (basis-search
    variants, conjugates) never alias. *)

val additions_per_step : t -> int
(** Additions of one recursion step when every linear form is evaluated
    independently: sum over rows of (nonzeros - 1). *)

val verify_brent : t -> bool
(** Exact check of all n*m*m*k*n*k Brent equations over the integers —
    the correctness certificate for every registered algorithm. *)

(** Application over an arbitrary ring: recursive fast multiplication
    with exact operation counting. *)
module Apply (R : Fmm_ring.Sig_ring.S) : sig
  module M : module type of Fmm_matrix.Matrix.Make (R)

  type counters = { mutable adds : int; mutable mults : int }

  val fresh_counters : unit -> counters

  val combine : counters -> int array -> M.t array -> M.t
  (** Linear combination of equal-size blocks with integer
      coefficients; a row of z nonzero +-1 coefficients costs exactly
      z - 1 element-wise additions. *)

  val classical_mul : counters -> M.t -> M.t -> M.t

  val step : counters -> t -> mul_base:(M.t -> M.t -> M.t) -> M.t -> M.t -> M.t
  (** One recursion step with a caller-supplied block multiplier. *)

  val multiply : ?cutoff:int -> t -> M.t -> M.t -> M.t * counters
  (** Fully recursive multiply.

      {b Unified cutoff rule} (shared verbatim with
      [Fmm_exec.Kernel.fast_mul]): a sub-problem recurses iff every
      dimension both {e exceeds} [cutoff] (default 1) and is divisible
      by the corresponding base dimension; otherwise the whole
      sub-problem — including any non-divisible intermediate reached
      mid-recursion — is multiplied classically, silently and without
      raising. Only CDAG construction, which needs the recursion to
      tile exactly, rejects such shapes. The shared guard makes the
      counters differential-testable against [Kernel.fast_mul] at any
      size. *)

  val multiply_one_level : t -> M.t -> M.t -> M.t * counters
end

module Apply_q : module type of Apply (Fmm_ring.Rat.Field)
module Apply_int : module type of Apply (Fmm_ring.Sig_ring.Int)

val compose : t -> t -> t
(** Tensor (Kronecker) composition:
    <n1,m1,k1;t1> x <n2,m2,k2;t2> = <n1 n2, m1 m2, k1 k2; t1 t2>. *)

val transpose_alg : t -> t
(** The C = A.B => C^T = B^T.A^T symmetry: a <k,m,n;t> algorithm. *)

val conjugate_2x2 :
  ?name:string option -> t -> swap_x:bool -> swap_y:bool -> swap_z:bool -> t
(** de Groote symmetry for 2x2 algorithms: conjugation by permutation
    matrices X, Y, Z drawn from \{I, J\} (J = swap). Raises on non-2x2
    bases. *)

val conjugates_2x2 : t -> t list
(** All eight \{I,J\}-conjugates (including the identity one). *)

val classical : n:int -> m:int -> k:int -> t
(** The classical <n,m,k; n m k> algorithm. *)

val omega0 : t -> float
(** The exponent: log_{n0} t for square bases, 3 log_{nmk} t in
    general. *)

val pp : Format.formatter -> t -> unit
