(* Bilinear matrix-multiplication algorithms (Definition 2.6 of the
   paper): an <n,m,k;t> algorithm multiplies an n x m by an m x k matrix
   using t scalar (block) multiplications. It is given exactly by three
   integer coefficient matrices:

   - [u] : t rows, each of length n*m — row r encodes the r-th left
     multiplicand as a linear combination of vec(A) (row-major);
   - [v] : t rows, each of length m*k — the right multiplicands over
     vec(B);
   - [w] : n*k rows, each of length t — vec(C) = w . products.

   Correctness is exactly the Brent equations:
     for all (i,j), (j',l), (i',l'):
       sum_r u_r[(i,j)] * v_r[(j',l)] * w_[(i',l')][r]
         = [i = i'] * [j = j'] * [l = l']
   which [verify_brent] checks over exact integers. *)

type t = {
  name : string;
  n : int; (* A is n x m *)
  m : int;
  k : int; (* B is m x k, C is n x k *)
  u : int array array; (* t x (n*m) *)
  v : int array array; (* t x (m*k) *)
  w : int array array; (* (n*k) x t *)
}

let name a = a.name
let dims a = (a.n, a.m, a.k)
let rank a = Array.length a.u

(* Deep copies so callers cannot mutate the algorithm's data. *)
let u_matrix a = Array.map Array.copy a.u
let v_matrix a = Array.map Array.copy a.v
let w_matrix a = Array.map Array.copy a.w

let nnz_matrix rows = Array.fold_left (fun acc r ->
    Array.fold_left (fun acc c -> if c <> 0 then acc + 1 else acc) acc r)
    0 rows

let nnz_u a = nnz_matrix a.u
let nnz_v a = nnz_matrix a.v
let nnz_w a = nnz_matrix a.w

(* A structural fingerprint: dimensions, rank and EVERY coefficient of
   U/V/W folded into a 64-bit FNV-style hash, rendered beside the name.
   Two algorithms that share a display name but differ structurally
   (basis-search variants, conjugates) therefore never alias in caches
   keyed by this string, and [Hashtbl.hash]'s bounded traversal (which
   only inspects a prefix of a deep structure) is avoided on purpose. *)
let fingerprint a =
  let h = ref 0xcbf29ce484222325L in
  let mix x =
    h := Int64.mul (Int64.logxor !h (Int64.of_int x)) 0x100000001b3L
  in
  mix a.n;
  mix a.m;
  mix a.k;
  mix (Array.length a.u);
  Array.iter (Array.iter mix) a.u;
  Array.iter (Array.iter mix) a.v;
  Array.iter (Array.iter mix) a.w;
  Printf.sprintf "%s#%Lx" a.name !h

(** Additions performed by a single recursion step when every linear
    combination is evaluated directly (no common-subexpression reuse):
    a row with z nonzeros costs z-1 additions (z >= 1), and an all-zero
    row costs nothing. *)
let linear_additions rows =
  Array.fold_left
    (fun acc r ->
      let z = Array.fold_left (fun n c -> if c <> 0 then n + 1 else n) 0 r in
      acc + max 0 (z - 1))
    0 rows

let additions_per_step a =
  linear_additions a.u + linear_additions a.v + linear_additions a.w

let make ~name ~n ~m ~k ~u ~v ~w =
  let t = Array.length u in
  if Array.length v <> t then invalid_arg "Algorithm.make: |u| <> |v|";
  if Array.exists (fun r -> Array.length r <> n * m) u then
    invalid_arg "Algorithm.make: u row length <> n*m";
  if Array.exists (fun r -> Array.length r <> m * k) v then
    invalid_arg "Algorithm.make: v row length <> m*k";
  if Array.length w <> n * k then invalid_arg "Algorithm.make: |w| <> n*k";
  if Array.exists (fun r -> Array.length r <> t) w then
    invalid_arg "Algorithm.make: w row length <> t";
  { name; n; m; k; u; v; w }

(* --- correctness: exact Brent equations --- *)

let verify_brent a =
  let t = rank a in
  let ok = ref true in
  for i = 0 to a.n - 1 do
    for j = 0 to a.m - 1 do
      for j' = 0 to a.m - 1 do
        for l = 0 to a.k - 1 do
          for i' = 0 to a.n - 1 do
            for l' = 0 to a.k - 1 do
              let sum = ref 0 in
              for r = 0 to t - 1 do
                sum :=
                  !sum
                  + (a.u.(r).((i * a.m) + j)
                    * a.v.(r).((j' * a.k) + l)
                    * a.w.((i' * a.k) + l').(r))
              done;
              let expected =
                if i = i' && j = j' && l = l' then 1 else 0
              in
              if !sum <> expected then ok := false
            done
          done
        done
      done
    done
  done;
  !ok

(* --- application over an arbitrary ring --- *)

module Apply (R : Fmm_ring.Sig_ring.S) = struct
  module M = Fmm_matrix.Matrix.Make (R)

  type counters = { mutable adds : int; mutable mults : int }

  let fresh_counters () = { adds = 0; mults = 0 }

  (* Linear combination of equally-sized blocks with integer
     coefficients. Cost accounting follows the standard convention: a
     row with z nonzero +-1 coefficients costs exactly (z - 1)
     element-wise additions/subtractions — we start accumulation from a
     +1 term when one exists so leading minus signs fold into
     subtractions. Coefficients with |c| > 1 additionally cost one
     scalar multiplication per element (counted into [adds]: the
     paper's models price all linear work uniformly). *)
  let combine counters coeffs blocks =
    let rows = M.rows blocks.(0) and cols = M.cols blocks.(0) in
    let block_cost = rows * cols in
    let terms = ref [] in
    Array.iteri (fun idx c -> if c <> 0 then terms := (c, idx) :: !terms) coeffs;
    (* Prefer starting from a coefficient of exactly 1 (free copy). *)
    let ordered =
      match List.partition (fun (c, _) -> c = 1) (List.rev !terms) with
      | first :: rest_ones, others -> first :: (rest_ones @ others)
      | [], all -> all
    in
    match ordered with
    | [] -> M.zeros rows cols
    | (c0, i0) :: rest ->
      let start =
        if c0 = 1 then M.copy blocks.(i0)
        else begin
          counters.adds <- counters.adds + block_cost;
          if c0 = -1 then M.neg blocks.(i0)
          else M.scale (R.of_int c0) blocks.(i0)
        end
      in
      List.fold_left
        (fun acc (c, idx) ->
          counters.adds <- counters.adds + block_cost;
          if c = 1 then M.add acc blocks.(idx)
          else if c = -1 then M.sub acc blocks.(idx)
          else begin
            counters.adds <- counters.adds + block_cost;
            M.add acc (M.scale (R.of_int c) blocks.(idx))
          end)
        start rest

  (** One recursion step: treat [a]/[b] as grids of blocks. [mul_base]
      multiplies the sub-blocks (recursively or directly). *)
  let step counters alg ~mul_base a b =
    let ab = M.split ~gr:alg.n ~gc:alg.m a in
    let bb = M.split ~gr:alg.m ~gc:alg.k b in
    let a_flat = Array.init (alg.n * alg.m) (fun idx -> ab.(idx / alg.m).(idx mod alg.m)) in
    let b_flat = Array.init (alg.m * alg.k) (fun idx -> bb.(idx / alg.k).(idx mod alg.k)) in
    let t = rank alg in
    let products =
      Array.init t (fun r ->
          let left = combine counters alg.u.(r) a_flat in
          let right = combine counters alg.v.(r) b_flat in
          mul_base left right)
    in
    let c_blocks =
      Array.init alg.n (fun i ->
          Array.init alg.k (fun l -> combine counters alg.w.((i * alg.k) + l) products))
    in
    M.join c_blocks

  let classical_mul counters a b =
    let n = M.rows a and m = M.cols a and k = M.cols b in
    counters.mults <- counters.mults + (n * m * k);
    counters.adds <- counters.adds + (n * (m - 1) * k);
    M.mul a b

  (** Fully recursive multiply: recurse while the dimensions are
      divisible by the base case, falling back to classical at or below
      [cutoff] (default 1: recurse all the way down). Returns the result
      and the operation counters. *)
  let multiply ?(cutoff = 1) alg a b =
    let counters = fresh_counters () in
    let rec go a b =
      let n = M.rows a and m = M.cols a and k = M.cols b in
      if m <> M.rows b then invalid_arg "Apply.multiply: inner dim mismatch";
      if
        n <= cutoff || m <= cutoff || k <= cutoff
        || n mod alg.n <> 0 || m mod alg.m <> 0 || k mod alg.k <> 0
      then classical_mul counters a b
      else step counters alg ~mul_base:go a b
    in
    let c = go a b in
    (c, counters)

  (** One level of recursion only; sub-products multiplied classically.
      Used by tests to isolate the base case. *)
  let multiply_one_level alg a b =
    let counters = fresh_counters () in
    let c = step counters alg ~mul_base:(classical_mul counters) a b in
    (c, counters)
end

module Apply_q = Apply (Fmm_ring.Rat.Field)
module Apply_int = Apply (Fmm_ring.Sig_ring.Int)

(* --- structural transformations --- *)

(** Tensor (Kronecker) composition: <n1,m1,k1;t1> x <n2,m2,k2;t2> =
    <n1*n2, m1*m2, k1*k2; t1*t2>. Row-major index mapping: entry
    (i,j) of the composed A-operand with i = i1*n2 + i2, j = j1*m2 + j2
    corresponds to coefficient u1[(i1,j1)] * u2[(i2,j2)]. *)
let compose a1 a2 =
  let n = a1.n * a2.n and m = a1.m * a2.m and k = a1.k * a2.k in
  let t1 = rank a1 and t2 = rank a2 in
  let u =
    Array.init (t1 * t2) (fun r ->
        let r1 = r / t2 and r2 = r mod t2 in
        Array.init (n * m) (fun idx ->
            let i = idx / m and j = idx mod m in
            let i1 = i / a2.n and i2 = i mod a2.n in
            let j1 = j / a2.m and j2 = j mod a2.m in
            a1.u.(r1).((i1 * a1.m) + j1) * a2.u.(r2).((i2 * a2.m) + j2)))
  in
  let v =
    Array.init (t1 * t2) (fun r ->
        let r1 = r / t2 and r2 = r mod t2 in
        Array.init (m * k) (fun idx ->
            let j = idx / k and l = idx mod k in
            let j1 = j / a2.m and j2 = j mod a2.m in
            let l1 = l / a2.k and l2 = l mod a2.k in
            a1.v.(r1).((j1 * a1.k) + l1) * a2.v.(r2).((j2 * a2.k) + l2)))
  in
  let w =
    Array.init (n * k) (fun idx ->
        let i = idx / k and l = idx mod k in
        let i1 = i / a2.n and i2 = i mod a2.n in
        let l1 = l / a2.k and l2 = l mod a2.k in
        Array.init (t1 * t2) (fun r ->
            let r1 = r / t2 and r2 = r mod t2 in
            a1.w.((i1 * a1.k) + l1).(r1) * a2.w.((i2 * a2.k) + l2).(r2)))
  in
  make ~name:(a1.name ^ " (x) " ^ a2.name) ~n ~m ~k ~u ~v ~w

(** Transpose symmetry: from C = A.B derive C^T = B^T.A^T, giving a
    <k,m,n;t> algorithm. Left operands become the transposed-B
    combinations and vice versa. *)
let transpose_alg a =
  let t = rank a in
  (* New A' = B^T is k x m: entry (l,j) of A' = B[j,l]. *)
  let u' =
    Array.init t (fun r ->
        Array.init (a.k * a.m) (fun idx ->
            let l = idx / a.m and j = idx mod a.m in
            a.v.(r).((j * a.k) + l)))
  in
  (* New B' = A^T is m x n: entry (j,i) of B' = A[i,j]. *)
  let v' =
    Array.init t (fun r ->
        Array.init (a.m * a.n) (fun idx ->
            let j = idx / a.n and i = idx mod a.n in
            a.u.(r).((i * a.m) + j)))
  in
  (* New C' = C^T is k x n: entry (l,i) of C' = C[i,l]. *)
  let w' =
    Array.init (a.k * a.n) (fun idx ->
        let l = idx / a.n and i = idx mod a.n in
        Array.copy a.w.((i * a.k) + l))
  in
  make ~name:(a.name ^ "^T") ~n:a.k ~m:a.m ~k:a.n ~u:u' ~v:v' ~w:w'

(** de Groote symmetry: conjugate by invertible (here: permutation)
    matrices X, Y, Z — the transformation A -> X A Y^-1, B -> Y B Z^-1,
    C -> X C Z^-1 maps matrix-multiplication algorithms to
    matrix-multiplication algorithms. For the 2x2 case with X, Y, Z
    drawn from {I, J} (J = the swap), this generates up to 8 distinct
    7-multiplication variants of each algorithm, all of which must pass
    the Section III lemma battery — concrete witnesses of the paper's
    "any fast matrix multiplication algorithm with 2x2 base case".

    Implementation on the coefficient matrices: writing the vec
    permutation p_A of A -> X A Y^-1 etc., the conjugated algorithm has
    u'_r = u_r o p_A, v'_r = v_r o p_B, w'_(out) = w_(p_C out). *)
let conjugate_2x2 ?name:(name_opt = None) alg ~swap_x ~swap_y ~swap_z =
  let n, m, k = dims alg in
  if (n, m, k) <> (2, 2, 2) then invalid_arg "Algorithm.conjugate_2x2: 2x2 only";
  (* vec index (i,j) -> 2i + j. X A Y^-1 with X, Y in {I, J}: J on the
     left swaps rows, J^-1 = J on the right swaps columns. *)
  let perm ~row_swap ~col_swap idx =
    let i = idx / 2 and j = idx mod 2 in
    let i = if row_swap then 1 - i else i in
    let j = if col_swap then 1 - j else j in
    (2 * i) + j
  in
  let p_a = perm ~row_swap:swap_x ~col_swap:swap_y in
  let p_b = perm ~row_swap:swap_y ~col_swap:swap_z in
  let p_c = perm ~row_swap:swap_x ~col_swap:swap_z in
  let remap_rows p rows =
    Array.map (fun row -> Array.init 4 (fun idx -> row.(p idx))) rows
  in
  let u = remap_rows p_a alg.u in
  let v = remap_rows p_b alg.v in
  let w = Array.init 4 (fun out -> Array.copy alg.w.(p_c out)) in
  let name =
    match name_opt with
    | Some s -> s
    | None ->
      Printf.sprintf "%s[%s%s%s]" alg.name
        (if swap_x then "J" else "I")
        (if swap_y then "J" else "I")
        (if swap_z then "J" else "I")
  in
  make ~name ~n:2 ~m:2 ~k:2 ~u ~v ~w

(** All eight {I,J}-conjugates of a 2x2 algorithm (including the
    identity conjugation). *)
let conjugates_2x2 alg =
  List.concat_map
    (fun swap_x ->
      List.concat_map
        (fun swap_y ->
          List.map
            (fun swap_z -> conjugate_2x2 alg ~swap_x ~swap_y ~swap_z)
            [ false; true ])
        [ false; true ])
    [ false; true ]

(** Classical <n,m,k; n*m*k> algorithm: one multiplication per scalar
    product a[i,j] * b[j,l]. Used as the baseline and for the
    rectangular rows of Table I. *)
let classical ~n ~m ~k =
  let t = n * m * k in
  let prod_index i j l = (i * m * k) + (j * k) + l in
  let u =
    Array.init t (fun r ->
        let row = Array.make (n * m) 0 in
        let i = r / (m * k) and j = r mod (m * k) / k in
        row.((i * m) + j) <- 1;
        row)
  in
  let v =
    Array.init t (fun r ->
        let row = Array.make (m * k) 0 in
        let j = r mod (m * k) / k and l = r mod k in
        row.((j * k) + l) <- 1;
        row)
  in
  let w =
    Array.init (n * k) (fun idx ->
        let i = idx / k and l = idx mod k in
        let row = Array.make t 0 in
        for j = 0 to m - 1 do
          row.(prod_index i j l) <- 1
        done;
        row)
  in
  make
    ~name:(Printf.sprintf "classical <%d,%d,%d;%d>" n m k t)
    ~n ~m ~k ~u ~v ~w

(** omega_0 = log_{base dim} t for square base cases; for rectangular
    <n,m,k;t> returns 3 * log_{nmk} t (the standard normalisation). *)
let omega0 a =
  if a.n = a.m && a.m = a.k then log (float_of_int (rank a)) /. log (float_of_int a.n)
  else 3. *. log (float_of_int (rank a)) /. log (float_of_int (a.n * a.m * a.k))

let pp fmt a =
  Format.fprintf fmt "<%d,%d,%d;%d> %s (nnz u/v/w = %d/%d/%d, adds/step = %d)"
    a.n a.m a.k (rank a) a.name (nnz_u a) (nnz_v a) (nnz_w a)
    (additions_per_step a)
