(* COSMA-style schedule generation: contiguous splits of sequential
   orders and (p1, p2, p3) grid decompositions, both emitting
   Par_exec-compatible owner-computes assignments. The splitting
   objective is the executor's own charging rule — one word per
   (value, consuming processor) pair with consumer <> owner — kept
   exact at every step of the local search by an incremental census
   rather than re-measured per candidate move. *)

module W = Fmm_machine.Workload
module PE = Fmm_machine.Par_exec
module PM = Fmm_machine.Par_model
module DG = Fmm_graph.Digraph
module DF = Fmm_analysis.Dataflow
module PC = Fmm_analysis.Par_check
module Cd = Fmm_cdag.Cdag
module Im = Fmm_cdag.Implicit

type split = {
  procs : int;
  order : int array;
  cuts : int array;
  assignment : int array;
  crossing : int;
}

(* --- exact crossing census ---

   cnt maps (value u) * procs + (part q) to the number of u's consumers
   owned by q; the census is sum over u of |{q <> owner u : cnt > 0}|.
   Entries are only ever created for realized (u, q) pairs, so the
   table holds at most one entry per edge and in practice ~one per
   value. *)

let find cnt key = try Hashtbl.find cnt key with Not_found -> 0

let census w ~procs asg =
  let cnt = Hashtbl.create 4096 in
  let total = ref 0 in
  let g = w.W.graph in
  let is_input = W.is_input w in
  for v = 0 to W.n_vertices w - 1 do
    if not (is_input v) then
      List.iter
        (fun u ->
          let key = (u * procs) + asg.(v) in
          let c = find cnt key in
          if c = 0 && asg.(u) <> asg.(v) then incr total;
          Hashtbl.replace cnt key (c + 1))
        (DG.in_neighbors g v)
  done;
  (cnt, total)

(* Move non-input vertex [v] from part [src] to part [dst], updating the
   census in O(in-degree) hash operations; returns the census delta.
   Two effects: v's operand reads leave src and join dst, and v's own
   consumers now read from a dst-owned value. The move is its own
   inverse (apply with src/dst swapped), which is how rejected probes
   are undone. *)
let apply_move cnt total g ~procs asg v ~src ~dst =
  let delta = ref 0 in
  (* ownership change of v itself: src's consumers of v (if any) become
     foreign, dst's become local *)
  if find cnt ((v * procs) + src) > 0 then incr delta;
  if find cnt ((v * procs) + dst) > 0 then decr delta;
  List.iter
    (fun u ->
      let ks = (u * procs) + src and kd = (u * procs) + dst in
      let cs = find cnt ks in
      if cs = 1 then begin
        Hashtbl.remove cnt ks;
        if asg.(u) <> src then decr delta
      end
      else Hashtbl.replace cnt ks (cs - 1);
      let cd = find cnt kd in
      if cd = 0 && asg.(u) <> dst then incr delta;
      Hashtbl.replace cnt kd (cd + 1))
    (DG.in_neighbors g v);
  asg.(v) <- dst;
  total := !total + !delta;
  !delta

let split_order ?(rounds = 4) w ~procs order =
  if procs < 1 then invalid_arg "Generator.split_order: procs < 1";
  let live = DF.order_liveness w order in
  let g = w.W.graph in
  let len = Array.length order in
  let n = W.n_vertices w in
  (* seed each cut at the liveness minimum near the balanced position:
     few values resident across the boundary means few candidate
     crossing words *)
  let cuts = Array.make (procs + 1) 0 in
  cuts.(procs) <- len;
  let window = max 1 (len / (4 * procs)) in
  for k = 1 to procs - 1 do
    (* keep parts non-empty whenever len >= procs *)
    let lo0 = cuts.(k - 1) + (if len >= procs then 1 else 0) in
    let hi0 = if len >= procs then len - (procs - k) else len in
    let target = max lo0 (min (k * len / procs) hi0) in
    let lo = max lo0 (target - window) and hi = min hi0 (target + window) in
    let best = ref target and best_live = ref max_int in
    for c = lo to hi do
      let l = if c < len then live.DF.live_at.(c) else 0 in
      if l < !best_live then begin
        best_live := l;
        best := c
      end
    done;
    cuts.(k) <- !best
  done;
  let part_of_pos = Array.make (max len 1) 0 in
  let fill_parts () =
    for k = 0 to procs - 1 do
      for i = cuts.(k) to cuts.(k + 1) - 1 do
        part_of_pos.(i) <- k
      done
    done
  in
  fill_parts ();
  let asg = Array.make n 0 in
  Array.iteri (fun i v -> asg.(v) <- part_of_pos.(i)) order;
  let snap_inputs () =
    Array.iter
      (fun u ->
        let fu = live.DF.first_use.(u) in
        asg.(u) <- (if fu >= 0 then part_of_pos.(fu) else 0))
      w.W.inputs
  in
  snap_inputs ();
  let cnt, total = census w ~procs asg in
  (* boundary-shift local search: move one vertex across a cut, keep
     the move iff the exact census strictly drops. Input owners stay
     pinned during the search (re-snapped to their first consumer's
     part afterwards — which never increases the census, since any
     consuming part is an optimal owner). Strict improvement plus a
     hard move budget guarantees termination. *)
  (* a move at boundary k only re-shapes parts k-1 and k, so it can
     only unlock further moves at boundaries k-1, k, k+1: process a
     dirty-boundary worklist instead of re-sweeping every boundary
     after each accepted move (the sweep version was quadratic in the
     accepted-move count) *)
  let budget = ref (rounds * (len + 1)) in
  let on_queue = Array.make (procs + 1) false in
  let queue = Queue.create () in
  let push k =
    if k >= 1 && k <= procs - 1 && not on_queue.(k) then begin
      on_queue.(k) <- true;
      Queue.push k queue
    end
  in
  for k = 1 to procs - 1 do
    push k
  done;
  while (not (Queue.is_empty queue)) && !budget > 0 do
    let k = Queue.pop queue in
    on_queue.(k) <- false;
    let moving = ref true and moved_any = ref false in
    while !moving && !budget > 0 do
      moving := false;
      decr budget;
      (* grow part k-1 by the first vertex of part k *)
      if cuts.(k) + 1 < cuts.(k + 1) then begin
        let v = order.(cuts.(k)) in
        if apply_move cnt total g ~procs asg v ~src:k ~dst:(k - 1) < 0 then begin
          cuts.(k) <- cuts.(k) + 1;
          moving := true
        end
        else ignore (apply_move cnt total g ~procs asg v ~src:(k - 1) ~dst:k)
      end;
      (* grow part k by the last vertex of part k-1 *)
      if (not !moving) && cuts.(k) - 1 > cuts.(k - 1) then begin
        let v = order.(cuts.(k) - 1) in
        if apply_move cnt total g ~procs asg v ~src:(k - 1) ~dst:k < 0 then begin
          cuts.(k) <- cuts.(k) - 1;
          moving := true
        end
        else ignore (apply_move cnt total g ~procs asg v ~src:k ~dst:(k - 1))
      end;
      if !moving then moved_any := true
    done;
    if !moved_any then begin
      push (k - 1);
      push (k + 1)
    end
  done;
  fill_parts ();
  snap_inputs ();
  (* final exact census from scratch: the incremental total is only
     valid for the pinned input owners *)
  let _, crossing = census w ~procs asg in
  {
    procs;
    order = Array.copy order;
    cuts;
    assignment = asg;
    crossing = !crossing;
  }

let split_implicit imp ~procs =
  if procs < 1 || procs > 62 then
    invalid_arg "Generator.split_implicit: procs must be in [1, 62]";
  let nv = Im.n_vertices imp in
  let ni = Im.n_inputs imp in
  let len = nv - ni in
  (* ascending id is the canonical topological order; non-input ids are
     exactly [ni, nv), so equal-size contiguous parts are id ranges *)
  let cuts = Array.init (procs + 1) (fun k -> k * len / procs) in
  let part_of_pos i =
    (* binary search: largest k with cuts.(k) <= i *)
    let lo = ref 0 and hi = ref procs in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if cuts.(mid) <= i then lo := mid else hi := mid
    done;
    !lo
  in
  let asg = Array.make nv 0 in
  for v = ni to nv - 1 do
    asg.(v) <- part_of_pos (v - ni)
  done;
  (* one streamed sweep: per-value bitmask of consuming parts *)
  let mask = Array.make nv 0 in
  for v = ni to nv - 1 do
    let p = asg.(v) in
    Im.iter_preds imp v ~f:(fun u _ -> mask.(u) <- mask.(u) lor (1 lsl p))
  done;
  let popcount m =
    let c = ref 0 and m = ref m in
    while !m <> 0 do
      m := !m land (!m - 1);
      incr c
    done;
    !c
  in
  let lowest_bit m =
    let b = ref 0 in
    while m land (1 lsl !b) = 0 do
      incr b
    done;
    !b
  in
  let total = ref 0 in
  for u = 0 to nv - 1 do
    let m = mask.(u) in
    if m <> 0 then begin
      if u < ni then asg.(u) <- lowest_bit m;
      total := !total + popcount m - (if m land (1 lsl asg.(u)) <> 0 then 1 else 0)
    end
  done;
  {
    procs;
    order = Array.init len (fun i -> ni + i);
    cuts;
    assignment = asg;
    crossing = !total;
  }

let of_trace w trace =
  let n = W.n_vertices w in
  let seen = Array.make n false in
  let acc = ref [] in
  Fmm_machine.Trace.iter
    (function
      | Fmm_machine.Trace.Compute v when not seen.(v) ->
        seen.(v) <- true;
        acc := v :: !acc
      | _ -> ())
    trace;
  Array.of_list (List.rev !acc)

let exec_log w ~procs ~assignment =
  let g = w.W.graph in
  let topo =
    match DG.topo_sort g with
    | Some t -> t
    | None -> invalid_arg "Generator.exec_log: cyclic graph"
  in
  let sent = Hashtbl.create 1024 in
  let log = ref [] in
  let is_input = W.is_input w in
  List.iter
    (fun v ->
      if not (is_input v) then begin
        let p = assignment.(v) in
        List.iter
          (fun u ->
            let q = assignment.(u) in
            if q <> p then begin
              let key = (u * procs) + p in
              if not (Hashtbl.mem sent key) then begin
                Hashtbl.add sent key ();
                log := PC.Transfer { value = u; src = q; dst = p } :: !log
              end
            end)
          (DG.in_neighbors g v);
        log := PC.Compute { vertex = v; proc = p } :: !log
      end)
    topo;
  List.rev !log

let validate w ~procs ~assignment =
  PC.check_log w ~procs ~assignment ~log:(exec_log w ~procs ~assignment)

let memind_bound ?omega0 cdag ~procs =
  let omega0 =
    match omega0 with
    | Some o -> o
    | None -> Fmm_bilinear.Algorithm.omega0 (Cd.base_algorithm cdag)
  in
  Fmm_bounds.Bounds.fast_memind ~omega0 ~n:(Cd.size cdag) ~p:procs ()

(* --- (p1, p2, p3) grids --- *)

let grid_candidates ~p =
  if p < 1 then invalid_arg "Generator.grid_candidates: P < 1";
  let out = ref [] in
  for p1 = p downto 1 do
    if p mod p1 = 0 then begin
      let q = p / p1 in
      for p2 = q downto 1 do
        if q mod p2 = 0 then out := (p1, p2, q / p2) :: !out
      done
    end
  done;
  !out

let grid_assignment cdag ~procs ~grid:(p1, p2, p3) =
  let n = Cd.size cdag in
  if Cd.cutoff cdag <> n then
    invalid_arg
      "Generator.grid_assignment: CDAG must be pure classical (cutoff = n)";
  (* degenerate grids (product <> procs, factors < 1) are rejected here
     with Par_model's diagnostic *)
  ignore (PM.grid_3d ~n ~p:procs (p1, p2, p3));
  let nv = Cd.n_vertices cdag in
  let asg = Array.make nv 0 in
  if n > 1 then begin
    let blk i pk = i * pk / n in
    let proc c1 c2 c3 = ((c1 * p2) + c2) * p3 + c3 in
    let ni = n * n in
    for v = 0 to nv - 1 do
      if v < ni then begin
        (* A input (i, l): lives with its brick row, layer of l *)
        let i = v / n and l = v mod n in
        asg.(v) <- proc (blk i p1) 0 (blk l p3)
      end
      else if v < 2 * ni then begin
        (* B input (l, j) *)
        let r = v - ni in
        let l = r / n and j = r mod n in
        asg.(v) <- proc 0 (blk j p2) (blk l p3)
      end
      else begin
        (* classical root subtree: per output (i, j) row-major, n Mults
           (l = 0..n-1) then one Dec — the PR 9 leaf layout *)
        let rel = v - (2 * ni) in
        let opos = rel / (n + 1) and within = rel mod (n + 1) in
        let i = opos / n and j = opos mod n in
        if within < n then
          asg.(v) <- proc (blk i p1) (blk j p2) (blk within p3)
        else
          (* the reduction result: layer 0 of the (i, j) brick *)
          asg.(v) <- proc (blk i p1) (blk j p2) 0
      end
    done
  end;
  asg

let grid_search cdag ~procs =
  let w = W.of_cdag cdag in
  let n = Cd.size cdag in
  let best = ref None in
  List.iter
    (fun grid ->
      let cost = PM.grid_3d ~n ~p:procs grid in
      let asg = grid_assignment cdag ~procs ~grid in
      let r = PE.run w ~procs ~assignment:asg in
      match !best with
      | Some (_, _, (br : PE.result), _) when br.PE.total_words <= r.PE.total_words
        ->
        ()
      | _ -> best := Some (grid, cost, r, asg))
    (grid_candidates ~p:procs);
  match !best with
  | Some x -> x
  | None -> assert false
