(** COSMA-style communication-optimal schedule generation (DESIGN.md
    §16). Two routes from a CDAG to a [Fmm_machine.Par_exec]-compatible
    owner-computes assignment:

    {ol
    {- {!split_order}: split a proven {e sequential} schedule — any
       topological compute order a scheduler or the optimizer emits —
       into P contiguous parts. The objective is the exact crossing
       census the word-counting executor will charge (one word per
       (value, consuming processor) pair with consumer <> owner), not a
       proxy: cuts are seeded at liveness minima of
       [Fmm_analysis.Dataflow.order_liveness] and refined by a
       deterministic boundary-shift local search that maintains the
       census incrementally.}
    {- {!grid_search}: an exact-integer search over (p1, p2, p3)
       processor-grid decompositions of the classical iteration cube,
       ranked by {!Fmm_machine.Par_model.grid_3d} and decided by the
       measured {!Fmm_machine.Par_exec.run} census.}}

    Everything here is deterministic — identical output at any
    [--jobs] — and every emitted assignment replays cleanly through
    {!Fmm_analysis.Par_check.check_log} (see {!validate}). *)

(** A sequential order split into [procs] contiguous parts. *)
type split = {
  procs : int;
  order : int array;  (** the non-input compute order that was split *)
  cuts : int array;
      (** length [procs + 1], [cuts.(0) = 0],
          [cuts.(procs) = Array.length order]; part k owns order
          positions [cuts.(k), cuts.(k+1)) *)
  assignment : int array;
      (** per-vertex owner (inputs assigned to their first consumer's
          part), directly consumable by [Par_exec.run] *)
  crossing : int;
      (** exact crossing words of [assignment]: agrees with
          [(Par_exec.run w ~procs ~assignment).total_words] *)
}

val split_order :
  ?rounds:int -> Fmm_machine.Workload.t -> procs:int -> int array -> split
(** Split [order] (a topological permutation of the non-input vertices,
    the schedulers' contract — validated by the liveness pass) into
    [procs] contiguous parts minimizing crossing words. Seeds each cut
    at the minimum-liveness position within a window around the
    balanced position (ties to the smallest position), then runs up to
    [rounds] (default 4) deterministic sweeps of single-vertex boundary
    shifts, accepting strict improvements of the exact census. Raises
    [Invalid_argument] if [procs < 1] or the order is malformed. *)

val split_implicit : Fmm_cdag.Implicit.t -> procs:int -> split
(** The streamed variant for implicit CDAGs: splits the canonical
    ascending-id order at equal-size seed cuts (no liveness arrays, no
    local search) and counts crossing words exactly in one
    [iter_preds] sweep with a per-value consuming-part bitmask — O(V)
    words of state, never the edge list. Requires [procs <= 62] (the
    bitmask is one OCaml int). *)

val of_trace : Fmm_machine.Workload.t -> Fmm_machine.Trace.t -> int array
(** The first-compute order of a trace — the bridge from the
    sequential machine's output (LRU / Belady / rematerializing /
    optimizer-found) to {!split_order}'s input. Recomputations are
    ignored: only the first [Compute] of each vertex is kept. *)

val exec_log :
  Fmm_machine.Workload.t ->
  procs:int ->
  assignment:int array ->
  Fmm_analysis.Par_check.ev list
(** The event log of the owner-computes execution of [assignment]: in
    global topological order, each value is transferred from its owner
    to each consuming processor once (first use), then the consumer
    computes. Its transfer count equals [Par_exec.run]'s
    [total_words]. *)

val validate :
  Fmm_machine.Workload.t ->
  procs:int ->
  assignment:int array ->
  Fmm_analysis.Par_check.replay
(** [check_log] on {!exec_log}: a generated assignment is valid iff
    the replay has zero errors and zero lost outputs. *)

val memind_bound : ?omega0:float -> Fmm_cdag.Cdag.t -> procs:int -> float
(** The Theorem 4.1 memory-independent per-processor bound
    n^2 / P^{2/omega0}, with [omega0] defaulting to the CDAG's own base
    algorithm exponent ([Fmm_bilinear.Algorithm.omega0]) — the
    denominator every generated schedule is gated against. *)

(* --- (p1, p2, p3) processor grids over the classical iteration cube --- *)

val grid_candidates : p:int -> (int * int * int) list
(** All ordered factor triples with p1 * p2 * p3 = p exactly, in
    ascending lexicographic order. *)

val grid_assignment :
  Fmm_cdag.Cdag.t -> procs:int -> grid:int * int * int -> int array
(** Owner-computes assignment of a {e pure classical} CDAG
    ([Cdag.build ~cutoff:n], the cutoff = n end of the PR 9 hybrid
    family) under the (p1, p2, p3) brick decomposition: Mult (i, j, l)
    goes to processor (block i, block j, block l); each output's Dec
    and the C brick live on layer 0; A and B inputs live with their
    brick's first layer/column. Degenerate grids are rejected through
    {!Fmm_machine.Par_model.grid_3d}'s diagnostic; a non-classical
    CDAG raises [Invalid_argument]. *)

val grid_search :
  Fmm_cdag.Cdag.t ->
  procs:int ->
  (int * int * int) * Fmm_machine.Par_model.cost * Fmm_machine.Par_exec.result
  * int array
(** Try every candidate grid: model cost from
    [Par_model.grid_3d], measured census from [Par_exec.run] on the
    emitted assignment. Returns the measured-best (ties to the
    lexicographically smallest grid) with its model cost, measured
    result and assignment. *)
