(* Fault injection and recomputation-based recovery on the word-level
   distributed executor. The sweep mirrors Par_exec.run — owner
   computes, one transfer per (value, consumer) pair, unlimited local
   memory — and layers a crash/recovery state machine on top:

     crash p     wipe p's foreign-word cache; un-compute p's owned
                 non-input vertices (owned inputs are durable);
     recovery    on demand, when the sweep next needs a lost word —
                 re-derive at the owner (Recompute_local), pull from
                 the smallest-id surviving holder (Refetch_owner,
                 Replicate), or fall back to re-derivation when no
                 copy survives anywhere.

   Everything the simulator does is appended to an event log
   (Par_check.ev list) so the analysis layer can replay the recovered
   run independently: Par_check.check_log accepts the log iff every
   read had a live local copy at that event and every output survived
   to its owner — the read-before-send rule under failures. *)

module W = Fmm_machine.Workload
module D = Fmm_graph.Digraph
module PC = Fmm_analysis.Par_check

type policy = Recompute_local | Refetch_owner | Replicate of int

let policy_name = function
  | Recompute_local -> "recompute"
  | Refetch_owner -> "refetch"
  | Replicate k -> Printf.sprintf "replicate-%d" k

let policy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "recompute" | "recompute-local" | "recompute_local" -> Some Recompute_local
  | "refetch" | "refetch-owner" | "refetch_owner" -> Some Refetch_owner
  | s -> (
    let tail pfx =
      if String.length s > String.length pfx
         && String.sub s 0 (String.length pfx) = pfx
      then int_of_string_opt (String.sub s (String.length pfx)
                                (String.length s - String.length pfx))
      else None
    in
    match (tail "replicate-", tail "replicate:") with
    | Some k, _ | _, Some k -> Some (Replicate k)
    | None, None -> None)

type event = { proc : int; step : int }

type report = {
  procs : int;
  policy : policy;
  seed : int;
  assignment : int array;
  failures : event list;
  sent : int array;
  received : int array;
  total_words : int;
  max_words : int;
  replication_words : int;
  recovery_words : int;
  recomputed : int;
  baseline_total : int;
  baseline_max : int;
  overhead_total : float;
  overhead_max : float;
  bound : float option;
  bound_ratio : float option;
  log : PC.ev list;
}

(* Each crash event draws its (processor, step) from its own derived
   stream, so the schedule is a pure function of (seed, index) — it
   does not depend on procs/steps iteration order, and adding a
   failure never perturbs the earlier ones. *)
let derive_failures ~procs ~steps ~fail ~seed =
  if procs < 1 then invalid_arg "Fault.derive_failures: procs < 1";
  if fail < 0 then invalid_arg "Fault.derive_failures: fail < 0";
  if steps <= 0 then []
  else
    List.init fail (fun i ->
        let t =
          Fmm_util.Prng.create ~seed:(Fmm_util.Prng.derive ~seed [ 0xFA; i ])
        in
        let proc = Fmm_util.Prng.int t procs in
        let step = Fmm_util.Prng.int t steps in
        { proc; step })
    |> List.sort (fun a b -> compare (a.step, a.proc) (b.step, b.proc))

let run (work : W.t) ~procs ~assignment ~policy ~failures ?bound ?(seed = 0) ()
    =
  let g = work.W.graph in
  let n = W.n_vertices work in
  if procs < 1 then invalid_arg "Fault.run: procs < 1";
  if Array.length assignment <> n then
    invalid_arg "Fault.run: assignment length mismatch";
  Array.iter
    (fun p ->
      if p < 0 || p >= procs then invalid_arg "Fault.run: bad processor id")
    assignment;
  (match policy with
  | Replicate k when k < 1 || k > procs ->
    invalid_arg "Fault.run: Replicate k outside [1, procs]"
  | _ -> ());
  let is_input = W.is_input work in
  let order =
    match D.topo_sort g with
    | Some o -> List.filter (fun v -> not (is_input v)) o
    | None -> invalid_arg "Fault.run: not a DAG"
  in
  let steps = List.length order in
  List.iter
    (fun e ->
      if e.proc < 0 || e.proc >= procs then
        invalid_arg "Fault.run: failure names an invalid processor";
      if e.step < 0 || e.step >= steps then
        invalid_arg "Fault.run: failure step outside the sweep")
    failures;
  (* fault-free reference for the overhead ratios *)
  let baseline = Fmm_machine.Par_exec.run work ~procs ~assignment in
  let sent = Array.make procs 0 and received = Array.make procs 0 in
  let total = ref 0 in
  let replication_words = ref 0 and recovery_words = ref 0 in
  let recomputed = ref 0 in
  let log = ref [] in
  (* computed.(v): the OWNER currently holds non-input v (true from its
     computation until the owner's next crash, restored by recovery).
     cache.(p): foreign words p holds — received copies and replicas. *)
  let computed = Array.make n false in
  let cache : (int, unit) Hashtbl.t array =
    Array.init procs (fun _ -> Hashtbl.create 64)
  in
  let owned_nonirr = Array.make procs [] in
  Array.iteri
    (fun v p -> if not (is_input v) then owned_nonirr.(p) <- v :: owned_nonirr.(p))
    assignment;
  (* transfers made while a re-derivation is in flight are recovery
     traffic even when the (value, consumer) pair is fresh *)
  let recovery_depth = ref 0 in
  let replicas v =
    match policy with
    | Replicate k when k > 1 ->
      List.init (k - 1) (fun i -> (assignment.(v) + i + 1) mod procs)
    | _ -> []
  in
  let transfer ~kind src dst u =
    sent.(src) <- sent.(src) + 1;
    received.(dst) <- received.(dst) + 1;
    incr total;
    (match kind with
    | `Replication -> incr replication_words
    | `Recovery -> incr recovery_words
    | `Normal -> if !recovery_depth > 0 then incr recovery_words);
    if dst = assignment.(u) then computed.(u) <- true
    else Hashtbl.replace cache.(dst) u ();
    log := PC.Transfer { value = u; src; dst } :: !log
  in
  (* smallest-id survivor holding a live copy of a LOST value u: never
     the owner (it lost it) — a past consumer or a replica *)
  let surviving_holder u =
    let rec scan p =
      if p >= procs then None
      else if Hashtbl.mem cache.(p) u then Some p
      else scan (p + 1)
    in
    scan 0
  in
  let rec ensure p u =
    let ow = assignment.(u) in
    if ow = p then begin
      if (not (is_input u)) && not computed.(u) then recover_own p u
    end
    else if not (Hashtbl.mem cache.(p) u) then
      if is_input u || computed.(u) then transfer ~kind:`Normal ow p u
      else begin
        (* the owner lost u and a consumer needs it *)
        match policy with
        | Recompute_local ->
          rederive ow u;
          transfer ~kind:`Recovery ow p u
        | Refetch_owner | Replicate _ -> (
          match surviving_holder u with
          | Some q -> transfer ~kind:`Recovery q p u
          | None ->
            rederive ow u;
            transfer ~kind:`Recovery ow p u)
      end
  and recover_own p u =
    (* p needs its own lost value back *)
    match policy with
    | Recompute_local -> rederive p u
    | Refetch_owner | Replicate _ -> (
      match surviving_holder u with
      | Some q -> transfer ~kind:`Recovery q p u
      | None -> rederive p u)
  and rederive p u =
    (* recompute the lost value at its owner: free in words (the owner
       owns the computation), but every foreign operand the wiped cache
       no longer holds is a charged re-fetch — recursively, lost own
       operands re-derive first *)
    incr recovery_depth;
    List.iter (ensure p) (D.in_neighbors g u);
    computed.(u) <- true;
    incr recomputed;
    log := PC.Compute { vertex = u; proc = p } :: !log;
    decr recovery_depth
  in
  let crash p =
    Hashtbl.reset cache.(p);
    List.iter (fun v -> computed.(v) <- false) owned_nonirr.(p);
    log := PC.Crash { proc = p } :: !log
  in
  let failures_at = Array.make (max steps 1) [] in
  List.iter
    (fun e -> failures_at.(e.step) <- failures_at.(e.step) @ [ e.proc ])
    failures;
  List.iteri
    (fun i v ->
      List.iter crash failures_at.(i);
      let p = assignment.(v) in
      List.iter (ensure p) (D.in_neighbors g v);
      computed.(v) <- true;
      log := PC.Compute { vertex = v; proc = p } :: !log;
      List.iter (fun r -> transfer ~kind:`Replication p r v) (replicas v))
    order;
  (* a late crash can wipe outputs no later step demands; outputs must
     end resident at their owner, so close with a recovery pass *)
  Array.iter
    (fun v ->
      if (not (is_input v)) && not computed.(v) then
        recover_own assignment.(v) v)
    work.W.outputs;
  let max_words = ref 0 in
  for p = 0 to procs - 1 do
    max_words := max !max_words (sent.(p) + received.(p))
  done;
  let ratio meas base =
    if base > 0. then meas /. base else if meas > 0. then infinity else 1.0
  in
  let baseline_total = baseline.Fmm_machine.Par_exec.total_words in
  let baseline_max = baseline.Fmm_machine.Par_exec.max_words in
  {
    procs;
    policy;
    seed;
    assignment = Array.copy assignment;
    failures;
    sent;
    received;
    total_words = !total;
    max_words = !max_words;
    replication_words = !replication_words;
    recovery_words = !recovery_words;
    recomputed = !recomputed;
    baseline_total;
    baseline_max;
    overhead_total = ratio (float_of_int !total) (float_of_int baseline_total);
    overhead_max =
      ratio (float_of_int !max_words) (float_of_int baseline_max);
    bound;
    bound_ratio = Option.map (fun b -> float_of_int !max_words /. b) bound;
    log = List.rev !log;
  }

let simulate (work : W.t) ~procs ~assignment ~policy ~fail ~seed ?bound () =
  let steps =
    let is_input = W.is_input work in
    match D.topo_sort work.W.graph with
    | Some o -> List.length (List.filter (fun v -> not (is_input v)) o)
    | None -> invalid_arg "Fault.simulate: not a DAG"
  in
  let failures = derive_failures ~procs ~steps ~fail ~seed in
  run work ~procs ~assignment ~policy ~failures ?bound ~seed ()

let check (work : W.t) (r : report) =
  PC.check_log work ~procs:r.procs ~assignment:r.assignment ~log:r.log
