(** Deterministic fault injection and recovery on the distributed
    word-counting executor ({!Fmm_machine.Par_exec}).

    Recomputation — the paper's central object — is also the classic
    {e recovery} mechanism of distributed linear algebra: when a
    processor fails, its lost sub-CDAG can be re-derived instead of
    checkpointed. This simulator prices that resilience in the same
    currency as Theorem 1.1: words moved per processor. A seeded
    failure schedule kills processors at chosen points of the
    topological sweep — each crash wipes the victim's resident foreign
    words and un-computes its owned vertices (its own {e input} values
    are durable: initial operand data is re-readable, computed words
    are not) — and one of three recovery policies replays the run to
    completion:

    - {!Recompute_local}: the failed processor re-derives every lost
      value it or a consumer still needs, recursively, re-fetching the
      foreign operands its wiped cache no longer holds (recomputation
      is free in words, the re-fetches are not);
    - {!Refetch_owner}: a lost word is re-pulled from the
      smallest-id surviving holder — a consumer that fetched a copy
      earlier — charging that sender/receiver pair; re-derivation is
      the fallback when no copy survives;
    - {!Replicate k}: k-way ownership — every computed word is pushed
      to its [k - 1] replica processors {e up front} (proactive
      replication traffic, charged even on fault-free runs), and
      recovery pulls from a replica.

    Determinism contract: the failure schedule is derived from the
    seed alone ({!Fmm_util.Prng.derive}), the sweep is sequential, and
    nothing reads clocks or scheduler state — a (workload, assignment,
    policy, fail, seed) tuple yields a byte-identical report at any
    [--jobs]. With [fail = 0] (and [Replicate 1], which pushes no
    replicas) the counters reproduce {!Fmm_machine.Par_exec.run}
    exactly — the parity the FT1 experiment gates in CI. *)

type policy =
  | Recompute_local
  | Refetch_owner
  | Replicate of int
      (** [Replicate k]: owner plus [k - 1] replicas; requires
          [1 <= k <= procs]. [Replicate 1] is plain ownership. *)

val policy_name : policy -> string
(** ["recompute"], ["refetch"], ["replicate-k"]. *)

val policy_of_string : string -> policy option
(** Inverse of {!policy_name}; also accepts ["replicate:k"]. *)

type event = { proc : int; step : int }
(** Processor [proc] crashes immediately before the sweep executes the
    compute step at position [step] (an index into the topological
    order of non-input vertices). *)

type report = {
  procs : int;
  policy : policy;
  seed : int;
  assignment : int array;  (** the ownership map the run executed *)
  failures : event list;
  sent : int array;
  received : int array;
  total_words : int;
  max_words : int;  (** max over processors of sent + received *)
  replication_words : int;
      (** proactive replica pushes (only nonzero under [Replicate k],
          k > 1) *)
  recovery_words : int;
      (** transfers attributable to recovery: re-fetches of wiped
          copies, survivor pulls, and every fetch made while
          re-deriving a lost value *)
  recomputed : int;  (** vertices re-derived after a crash *)
  baseline_total : int;  (** fault-free {!Fmm_machine.Par_exec.run} *)
  baseline_max : int;
  overhead_total : float;
      (** [total_words / baseline_total] (1.0 when both are 0) *)
  overhead_max : float;
  bound : float option;
      (** the memory-independent Theorem 1.1 bound, when supplied *)
  bound_ratio : float option;  (** [max_words / bound] *)
  log : Fmm_analysis.Par_check.ev list;
      (** the full event log, validated by
          {!Fmm_analysis.Par_check.check_log} *)
}

val derive_failures :
  procs:int -> steps:int -> fail:int -> seed:int -> event list
(** [fail] crash events, each with processor and step drawn from an
    independent {!Fmm_util.Prng.derive}d stream, sorted by (step,
    proc). Pure in its arguments. Raises [Invalid_argument] on
    negative [fail] or nonpositive [procs]; empty when [steps = 0]. *)

val run :
  Fmm_machine.Workload.t ->
  procs:int ->
  assignment:int array ->
  policy:policy ->
  failures:event list ->
  ?bound:float ->
  ?seed:int ->
  unit ->
  report
(** Execute the workload under an explicit failure schedule. Raises
    [Invalid_argument] on shape errors (as {!Fmm_machine.Par_exec.run}),
    a [Replicate k] outside [1, procs], or an event outside the sweep.
    [seed] is recorded in the report only. *)

val simulate :
  Fmm_machine.Workload.t ->
  procs:int ->
  assignment:int array ->
  policy:policy ->
  fail:int ->
  seed:int ->
  ?bound:float ->
  unit ->
  report
(** {!derive_failures} composed with {!run}: the seeded entry point
    used by [fmmlab faults], the FT experiments and the tests. *)

val check : Fmm_machine.Workload.t -> report -> Fmm_analysis.Par_check.replay
(** Cross-validate a report's event log with
    {!Fmm_analysis.Par_check.check_log}: zero errors iff the recovered
    run still satisfies read-before-send at every event and every
    output survived to its owner. *)
