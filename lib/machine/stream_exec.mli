(** Streaming LRU execution of an implicit CDAG on the canonical
    ascending-id topological order — bit-exactly the trace
    [Schedulers.run_lru] emits for the same order on the explicit
    graph, but in O(V/8 + cache) space: events are pushed to a
    callback instead of materialized, adjacency is computed
    arithmetically, and the recency structure only tracks resident
    vertices. This is what lifts trace-level analysis (I/O counters,
    segment I/O, Lemma 3.6 checks) from n <= 16 to n = 256 and
    beyond. *)

val run_lru :
  Fmm_cdag.Implicit.t ->
  cache_size:int ->
  ?on_event:(Trace.event -> unit) ->
  unit ->
  Trace.counters
(** Execute all non-input vertices in ascending id order under LRU
    write-back spilling, with the same dead-first victim preference as
    [Schedulers.run_lru] — so at [cache_size >= MAXLIVE] of the
    canonical order the run is spill-free (no reload, no store of a
    non-output; asserted, raising [Failure] if violated). [cache_size]
    must exceed the maximum in-degree. [on_event] sees the exact event
    sequence [Schedulers.run_lru] would produce. *)

val run_lru_collect : Fmm_cdag.Implicit.t -> cache_size:int -> Schedulers.result
(** Materialize the full trace (small n only — the differential
    tests' entry point). *)
