(** A message-counting distributed executor — the paper's parallel
    machine at the word level. P processors own disjoint parts of the
    DAG (owner computes); every (value, consumer-processor) pair costs
    one word transfer, counted once (re-uses hit the consumer's cache).
    Unlike the closed-form models in {!Par_model}, this executes the
    actual DAG under an explicit assignment, giving the
    memory-independent bound n^2/P^{2/omega0} a measured counterpart. *)

type result = {
  procs : int;
  sent : int array;
  received : int array;
  total_words : int;
  max_words : int;  (** max over processors of sent + received *)
}

val run : Workload.t -> procs:int -> assignment:int array -> result
(** [assignment] maps every vertex to its owning processor. Raises on
    shape/id errors or cyclic graphs. *)

val run_limited :
  Workload.t -> procs:int -> assignment:int array -> local_memory:int -> result
(** The full Section II-B parallel model: each processor caches foreign
    words in an LRU local memory of [local_memory] words; evicted words
    must be re-fetched. [local_memory = max_int] degenerates to {!run};
    tight memory drives the traffic toward the memory-dependent regime
    of Theorem 1.1. *)

val bfs_assignment : Fmm_cdag.Cdag.t -> depth:int -> procs:int -> int array
(** BFS-style partition: the t^depth recursion subtrees (with their
    operand arrays) are dealt round-robin to the processors; vertices
    above the cut and the primary inputs are dealt round-robin by id.
    Ownership of shared vertices is first-claim: subtrees are visited
    in increasing [subtree_lo] order (range, then [a_in], then [b_in])
    and the first claimant wins, so the resulting census is a
    deterministic function of the CDAG — not of iteration order. *)

val bfs_assignment_implicit :
  Fmm_cdag.Implicit.t -> depth:int -> procs:int -> int array
(** Identical assignment computed from the implicit CDAG alone (no
    node list, no graph) — agrees with {!bfs_assignment} entry for
    entry. *)

val sequential_assignment : Workload.t -> int array

val strassen_bfs_experiment : Fmm_cdag.Cdag.t -> depth:int -> result
(** BFS partition at [depth] on t^depth processors. *)
