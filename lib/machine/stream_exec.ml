(* Streaming LRU execution of an implicit CDAG: the exact event
   sequence [Schedulers.run_lru] produces on the canonical ascending-id
   order, computed without ever materializing the graph or the trace.

   The graph is queried arithmetically ([Implicit.iter_preds] /
   [iter_succs]); residency is two bitsets plus an intrusive
   doubly-linked LRU list whose size is bounded by the cache, so the
   whole run is O(E log 1) time and O(V / 8 + M) space — n = 256
   (40M vertices) fits in a few tens of MB where the explicit
   machinery needs tens of GB.

   Equivalence notes (checked event-for-event by [test_implicit]):
   - [Digraph.in_neighbors] returns cons'd (reverse-insertion) order,
     so operands are visited in reverse [Implicit.iter_preds] order.
   - [remaining_uses.(w)] at the pre-compute phase of step v equals
     #{s in succs(w) | s >= v} because the order is ascending ids and
     each successor consumes each operand exactly once (the CDAG has
     no parallel edges); the post-compute dead test uses s > v.
   - The LRU victim (least-recently-touched unpinned DEAD resident if
     any, else least-recently-touched unpinned resident) is the tail
     of the matching linked list, skipping pinned entries — the same
     vertex [Schedulers]' time-keyed map minima select. Dead residents
     are appended to the dead list in last-touch order (a value dies in
     the post-compute phase of the step that touched it last, and the
     per-step processing order equals the per-step touch order), so the
     dead list's tail is the least-recently-touched dead resident. *)

module Im = Fmm_cdag.Implicit

(* Flat bitset over vertex ids; Bytes-backed so n = 1024 (2G vertices)
   costs 256MB only when such a run is actually attempted. *)
module Bits = struct
  let create n = Bytes.make ((n + 7) / 8) '\000'
  let mem b i = Char.code (Bytes.unsafe_get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

  let set b i =
    Bytes.unsafe_set b (i lsr 3)
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get b (i lsr 3)) lor (1 lsl (i land 7))))

  let clear b i =
    Bytes.unsafe_set b (i lsr 3)
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get b (i lsr 3)) land lnot (1 lsl (i land 7))))
end

(* Intrusive doubly-linked recency lists with cyclic sentinels:
   sentinel.next = most recent, sentinel.prev = least recent. A
   resident vertex's node lives on exactly one of the two lists — the
   live list (ordered by recency of touch) or the dead list (values
   past their last use, ordered by recency at death, which equals
   recency of touch since a value dies in the step of its last touch).
   Only resident vertices have nodes, so the table stays cache-sized. *)
type lnode = { v : int; mutable prev : lnode; mutable next : lnode }

type lru = {
  sentinel : lnode; (* live residents *)
  dead_sentinel : lnode; (* dead residents: preferred victims *)
  nodes : (int, lnode) Hashtbl.t;
}

let lru_create () =
  let rec s = { v = -1; prev = s; next = s } in
  let rec d = { v = -2; prev = d; next = d } in
  { sentinel = s; dead_sentinel = d; nodes = Hashtbl.create 1024 }

let unlink nd =
  nd.prev.next <- nd.next;
  nd.next.prev <- nd.prev

let push_front_of sentinel nd =
  nd.prev <- sentinel;
  nd.next <- sentinel.next;
  sentinel.next.prev <- nd;
  sentinel.next <- nd

let touch lru v =
  match Hashtbl.find_opt lru.nodes v with
  | Some nd ->
    unlink nd;
    push_front_of lru.sentinel nd
  | None ->
    let nd = { v; prev = lru.sentinel; next = lru.sentinel } in
    push_front_of lru.sentinel nd;
    Hashtbl.add lru.nodes v nd

(* Move a resident vertex to the dead list (its last use is behind
   us): it becomes a preferred eviction victim, mirroring
   [Schedulers.mark_dead]. *)
let mark_dead lru v =
  match Hashtbl.find_opt lru.nodes v with
  | Some nd ->
    unlink nd;
    push_front_of lru.dead_sentinel nd
  | None -> ()

let forget lru v =
  match Hashtbl.find_opt lru.nodes v with
  | Some nd ->
    unlink nd;
    Hashtbl.remove lru.nodes v
  | None -> ()

(* Least-recently-touched unpinned DEAD resident when one exists
   (evicting it can never cost a reload), otherwise the
   least-recently-touched unpinned live resident. *)
let victim lru ~pinned =
  let rec walk sentinel nd fallback =
    if nd == sentinel then
      match fallback with
      | Some (s, n) -> walk s n None
      | None -> failwith "Stream_exec: cache too small (everything pinned)"
    else if Bits.mem pinned nd.v then walk sentinel nd.prev fallback
    else nd.v
  in
  walk lru.dead_sentinel lru.dead_sentinel.prev
    (Some (lru.sentinel, lru.sentinel.prev))

let run_lru imp ~cache_size ?(on_event = fun (_ : Trace.event) -> ()) () =
  if cache_size < 1 then invalid_arg "Stream_exec.run_lru: cache_size < 1";
  let nv = Im.n_vertices imp in
  let n_inp = Im.n_inputs imp in
  let in_cache = Bits.create nv in
  let in_slow = Bits.create nv in
  let pinned = Bits.create nv in
  for i = 0 to n_inp - 1 do
    Bits.set in_slow i
  done;
  let lru = lru_create () in
  let occupancy = ref 0 in
  let loads = ref 0 and stores = ref 0 and computes = ref 0 in
  (* Spill-free invariant machinery, mirroring Schedulers.run_lru:
     live-set size per Dataflow's liveness, plus spill detectors. *)
  let ever_resident = Bits.create nv in
  let live = ref 0 and maxlive = ref 0 in
  let reloads = ref 0 and spill_stores = ref 0 in
  (* #{s in succs(w) | s >= from_}: the scheduler's remaining-uses
     counter, recovered arithmetically. *)
  let uses_from w ~from_ =
    let k = ref 0 in
    Im.iter_succs imp w ~f:(fun s -> if s >= from_ then incr k);
    !k
  in
  (* Current order vertex; evictions only happen while making room for
     it, so remaining uses are always counted from here. *)
  let cur = ref n_inp in
  let writeback w = uses_from w ~from_:!cur > 0 || Im.is_output imp w in
  let evict_one () =
    let w = victim lru ~pinned in
    if writeback w && not (Bits.mem in_slow w) then begin
      on_event (Trace.Store w);
      Bits.set in_slow w;
      incr stores;
      if not (Im.is_output imp w) then incr spill_stores
    end;
    on_event (Trace.Evict w);
    Bits.clear in_cache w;
    decr occupancy;
    forget lru w
  in
  let ensure_room () =
    while !occupancy >= cache_size do
      evict_one ()
    done
  in
  for v = n_inp to nv - 1 do
    cur := v;
    (* in_neighbors order = reverse builder insertion order. *)
    let preds = ref [] in
    Im.iter_preds imp v ~f:(fun p _ -> preds := p :: !preds);
    let preds = !preds in
    List.iter
      (fun p ->
        if not (Bits.mem in_cache p) then begin
          if not (Bits.mem in_slow p) then
            failwith
              (Printf.sprintf
                 "Stream_exec.run_lru: order step %d (vertex %d): operand %d lost"
                 (v - n_inp) v p);
          if p < n_inp && not (Bits.mem ever_resident p) then incr live;
          Bits.set pinned p;
          ensure_room ();
          on_event (Trace.Load p);
          Bits.set in_cache p;
          incr occupancy;
          incr loads;
          if Bits.mem ever_resident p then incr reloads;
          Bits.set ever_resident p;
          touch lru p
        end
        else begin
          Bits.set pinned p;
          touch lru p
        end)
      preds;
    ensure_room ();
    on_event (Trace.Compute v);
    Bits.set in_cache v;
    Bits.set ever_resident v;
    incr occupancy;
    incr computes;
    incr live;
    if !live > !maxlive then maxlive := !live;
    touch lru v;
    List.iter
      (fun p ->
        Bits.clear pinned p;
        if uses_from p ~from_:(v + 1) = 0 then begin
          decr live;
          if Bits.mem in_cache p then
            if Im.is_output imp p then mark_dead lru p
            else begin
              on_event (Trace.Evict p);
              Bits.clear in_cache p;
              decr occupancy;
              forget lru p
            end
        end)
      preds;
    if uses_from v ~from_:(v + 1) = 0 then begin
      decr live;
      mark_dead lru v
    end
  done;
  Array.iter
    (fun v ->
      if Bits.mem in_cache v && not (Bits.mem in_slow v) then begin
        on_event (Trace.Store v);
        Bits.set in_slow v;
        incr stores
      end)
    (Im.outputs imp);
  if cache_size >= !maxlive && (!reloads > 0 || !spill_stores > 0) then
    failwith
      (Printf.sprintf
         "Stream_exec.run_lru: spill-free invariant violated: cache_size=%d >= \
          maxlive=%d yet reloads=%d spill_stores=%d"
         cache_size !maxlive !reloads !spill_stores);
  { Trace.loads = !loads; stores = !stores; computes = !computes; recomputes = 0 }

(* Materializing variant for differential tests at small n. *)
let run_lru_collect imp ~cache_size =
  let events = ref [] in
  let counters =
    run_lru imp ~cache_size ~on_event:(fun e -> events := e :: !events) ()
  in
  ({ Schedulers.trace = List.rev !events; counters } : Schedulers.result)
