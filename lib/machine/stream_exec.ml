(* Streaming LRU execution of an implicit CDAG: the exact event
   sequence [Schedulers.run_lru] produces on the canonical ascending-id
   order, computed without ever materializing the graph or the trace.

   The graph is queried arithmetically ([Implicit.iter_preds] /
   [iter_succs]); residency is two bitsets plus an intrusive
   doubly-linked LRU list whose size is bounded by the cache, so the
   whole run is O(E log 1) time and O(V / 8 + M) space — n = 256
   (40M vertices) fits in a few tens of MB where the explicit
   machinery needs tens of GB.

   Equivalence notes (checked event-for-event by [test_implicit]):
   - [Digraph.in_neighbors] returns cons'd (reverse-insertion) order,
     so operands are visited in reverse [Implicit.iter_preds] order.
   - [remaining_uses.(w)] at the pre-compute phase of step v equals
     #{s in succs(w) | s >= v} because the order is ascending ids and
     each successor consumes each operand exactly once (the CDAG has
     no parallel edges); the post-compute dead test uses s > v.
   - The LRU victim (least-recently-touched unpinned resident) is the
     tail of the linked list, skipping pinned entries — the same
     vertex [Schedulers]' time-keyed map minimum selects. *)

module Im = Fmm_cdag.Implicit

(* Flat bitset over vertex ids; Bytes-backed so n = 1024 (2G vertices)
   costs 256MB only when such a run is actually attempted. *)
module Bits = struct
  let create n = Bytes.make ((n + 7) / 8) '\000'
  let mem b i = Char.code (Bytes.unsafe_get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

  let set b i =
    Bytes.unsafe_set b (i lsr 3)
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get b (i lsr 3)) lor (1 lsl (i land 7))))

  let clear b i =
    Bytes.unsafe_set b (i lsr 3)
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get b (i lsr 3)) land lnot (1 lsl (i land 7))))
end

(* Intrusive doubly-linked recency list with a cyclic sentinel:
   sentinel.next = most recent, sentinel.prev = least recent. Only
   resident vertices have nodes, so the table stays cache-sized. *)
type lnode = { v : int; mutable prev : lnode; mutable next : lnode }

type lru = { sentinel : lnode; nodes : (int, lnode) Hashtbl.t }

let lru_create () =
  let rec s = { v = -1; prev = s; next = s } in
  { sentinel = s; nodes = Hashtbl.create 1024 }

let unlink nd =
  nd.prev.next <- nd.next;
  nd.next.prev <- nd.prev

let push_front lru nd =
  nd.prev <- lru.sentinel;
  nd.next <- lru.sentinel.next;
  lru.sentinel.next.prev <- nd;
  lru.sentinel.next <- nd

let touch lru v =
  match Hashtbl.find_opt lru.nodes v with
  | Some nd ->
    unlink nd;
    push_front lru nd
  | None ->
    let nd = { v; prev = lru.sentinel; next = lru.sentinel } in
    push_front lru nd;
    Hashtbl.add lru.nodes v nd

let forget lru v =
  match Hashtbl.find_opt lru.nodes v with
  | Some nd ->
    unlink nd;
    Hashtbl.remove lru.nodes v
  | None -> ()

(* Least-recently-touched resident vertex that is not pinned. *)
let victim lru ~pinned =
  let rec walk nd =
    if nd == lru.sentinel then
      failwith "Stream_exec: cache too small (everything pinned)"
    else if Bits.mem pinned nd.v then walk nd.prev
    else nd.v
  in
  walk lru.sentinel.prev

let run_lru imp ~cache_size ?(on_event = fun (_ : Trace.event) -> ()) () =
  if cache_size < 1 then invalid_arg "Stream_exec.run_lru: cache_size < 1";
  let nv = Im.n_vertices imp in
  let n_inp = Im.n_inputs imp in
  let in_cache = Bits.create nv in
  let in_slow = Bits.create nv in
  let pinned = Bits.create nv in
  for i = 0 to n_inp - 1 do
    Bits.set in_slow i
  done;
  let lru = lru_create () in
  let occupancy = ref 0 in
  let loads = ref 0 and stores = ref 0 and computes = ref 0 in
  (* #{s in succs(w) | s >= from_}: the scheduler's remaining-uses
     counter, recovered arithmetically. *)
  let uses_from w ~from_ =
    let k = ref 0 in
    Im.iter_succs imp w ~f:(fun s -> if s >= from_ then incr k);
    !k
  in
  (* Current order vertex; evictions only happen while making room for
     it, so remaining uses are always counted from here. *)
  let cur = ref n_inp in
  let writeback w = uses_from w ~from_:!cur > 0 || Im.is_output imp w in
  let evict_one () =
    let w = victim lru ~pinned in
    if writeback w && not (Bits.mem in_slow w) then begin
      on_event (Trace.Store w);
      Bits.set in_slow w;
      incr stores
    end;
    on_event (Trace.Evict w);
    Bits.clear in_cache w;
    decr occupancy;
    forget lru w
  in
  let ensure_room () =
    while !occupancy >= cache_size do
      evict_one ()
    done
  in
  for v = n_inp to nv - 1 do
    cur := v;
    (* in_neighbors order = reverse builder insertion order. *)
    let preds = ref [] in
    Im.iter_preds imp v ~f:(fun p _ -> preds := p :: !preds);
    let preds = !preds in
    List.iter
      (fun p ->
        if not (Bits.mem in_cache p) then begin
          if not (Bits.mem in_slow p) then
            failwith
              (Printf.sprintf
                 "Stream_exec.run_lru: order step %d (vertex %d): operand %d lost"
                 (v - n_inp) v p);
          Bits.set pinned p;
          ensure_room ();
          on_event (Trace.Load p);
          Bits.set in_cache p;
          incr occupancy;
          incr loads;
          touch lru p
        end
        else begin
          Bits.set pinned p;
          touch lru p
        end)
      preds;
    ensure_room ();
    on_event (Trace.Compute v);
    Bits.set in_cache v;
    incr occupancy;
    incr computes;
    touch lru v;
    List.iter
      (fun p ->
        Bits.clear pinned p;
        if
          uses_from p ~from_:(v + 1) = 0
          && (not (Im.is_output imp p))
          && Bits.mem in_cache p
        then begin
          on_event (Trace.Evict p);
          Bits.clear in_cache p;
          decr occupancy;
          forget lru p
        end)
      preds
  done;
  Array.iter
    (fun v ->
      if Bits.mem in_cache v && not (Bits.mem in_slow v) then begin
        on_event (Trace.Store v);
        Bits.set in_slow v;
        incr stores
      end)
    (Im.outputs imp);
  { Trace.loads = !loads; stores = !stores; computes = !computes; recomputes = 0 }

(* Materializing variant for differential tests at small n. *)
let run_lru_collect imp ~cache_size =
  let events = ref [] in
  let counters =
    run_lru imp ~cache_size ~on_event:(fun e -> events := e :: !events) ()
  in
  ({ Schedulers.trace = List.rev !events; counters } : Schedulers.result)
