(** The sequential machine model of Section II-B: a fast memory of M
    words and an unbounded slow memory; inputs start slow, computations
    require resident operands, every Load/Store is one I/O. Acts as the
    legality oracle for every scheduler: any trace they emit must
    {!replay} cleanly.

    Recomputation is legal by default (a vertex may be computed many
    times) — exactly the freedom whose futility for fast MM the paper
    proves; [allow_recompute = false] turns the machine into the
    classical no-recomputation model. *)

exception Illegal of string

type config = { cache_size : int; allow_recompute : bool }

type state

val init : config -> Workload.t -> state
(** Fresh machine: inputs in slow memory, cache empty. *)

val apply : state -> Trace.event -> unit
(** One step. Raises {!Illegal} on any model violation (missing
    operand, cache overflow, load of an absent value, ...); the
    message names the offending 0-based trace step and vertex id. *)

val counters : state -> Trace.counters

val check_final : state -> unit
(** Every CDAG output must have been computed and stored. Raises one
    {!Illegal} listing {e all} unsatisfied outputs, each located as
    ["vertex %d: ..."] (the static analyzer's location convention). *)

val replay : config -> Workload.t -> Trace.t -> Trace.counters
(** [init], [apply] each event, [check_final]; the counters on
    success. *)
