(* Execution traces of the sequential machine model (Section II-B of
   the paper): a program is a sequence of loads, stores, evictions and
   computations over CDAG vertices. Traces are produced by the
   schedulers and consumed by the legality checker (Cache_machine) and
   the segment analyzer (Segments). *)

type event =
  | Load of int (* slow -> fast; one I/O read *)
  | Store of int (* fast -> slow; one I/O write *)
  | Evict of int (* drop from fast memory; free *)
  | Compute of int (* all predecessors must be in fast memory *)

type t = event list

let event_to_string = function
  | Load v -> Printf.sprintf "load %d" v
  | Store v -> Printf.sprintf "store %d" v
  | Evict v -> Printf.sprintf "evict %d" v
  | Compute v -> Printf.sprintf "compute %d" v

let iter f (t : t) = List.iter f t
let fold f init (t : t) = List.fold_left f init t
let length (t : t) = List.length t

type counters = {
  loads : int;
  stores : int;
  computes : int;
  recomputes : int; (* computations of an already-computed vertex *)
}

let io counters = counters.loads + counters.stores

(* Recount a trace from its events alone. A second Compute of the same
   vertex is a recomputation, which is the only counter that needs
   state; consumers (the numeric executor, the tests) use this to check
   that a scheduler's counters describe the trace it actually emitted. *)
let count (t : t) =
  let computed = Hashtbl.create 256 in
  fold
    (fun c e ->
      match e with
      | Load _ -> { c with loads = c.loads + 1 }
      | Store _ -> { c with stores = c.stores + 1 }
      | Evict _ -> c
      | Compute v ->
        let again = Hashtbl.mem computed v in
        if not again then Hashtbl.add computed v ();
        {
          c with
          computes = c.computes + 1;
          recomputes = (c.recomputes + if again then 1 else 0);
        })
    { loads = 0; stores = 0; computes = 0; recomputes = 0 }
    t

let pp_counters fmt c =
  Format.fprintf fmt "loads=%d stores=%d io=%d computes=%d recomputes=%d"
    c.loads c.stores (io c) c.computes c.recomputes
