(* Compute orders: the sequence in which a scheduler visits the CDAG's
   computable vertices (each exactly once, topologically sorted). The
   cache executor turns an order into a legal trace; locality of the
   order is what separates a naive schedule from the cache-oblivious
   recursive one. *)

module Cd = Fmm_cdag.Cdag
module D = Fmm_graph.Digraph

let is_input cdag v =
  match Cd.role cdag v with
  | Cd.Input_a _ | Cd.Input_b _ -> true
  | _ -> false

(** Plain topological order (Kahn), inputs removed. Level-ish order:
    poor temporal locality at scale — the pessimistic baseline. *)
let naive_topo cdag =
  match D.topo_sort (Cd.graph cdag) with
  | None -> failwith "Orders.naive_topo: CDAG not acyclic"
  | Some order -> List.filter (fun v -> not (is_input cdag v)) order

(** The depth-first recursive schedule of Algorithm 2: for each
    recursion node, per product tau: compute the encoded operands of
    child tau, recurse into it, and only then move to the next product;
    decode after all children. This is the cache-oblivious order whose
    I/O matches the upper bound O((n / sqrt M)^{omega0} M). *)
let recursive_dfs cdag =
  let g = Cd.graph cdag in
  let order = ref [] in
  let emitted = Array.make (Cd.n_vertices cdag) false in
  let emit v =
    if not (emitted.(v) || is_input cdag v) then begin
      emitted.(v) <- true;
      order := v :: !order
    end
  in
  (* Reconstruct the recursion tree: each node is indexed by its first
     a-operand vertex; the children of [nd] are found among the
     out-neighbors of nd's a-operands (the encoder vertices nd created
     feed its children). Children are visited in product order, which
     coincides with ascending operand vertex id (the builder creates
     them product by product). *)
  let nodes = Cd.nodes cdag in
  let node_by_first_operand = Hashtbl.create 256 in
  List.iter
    (fun nd ->
      if Array.length nd.Cd.a_in > 0 then
        Hashtbl.replace node_by_first_operand nd.Cd.a_in.(0) nd)
    nodes;
  let root =
    match List.find_opt (fun nd -> nd.Cd.depth = 0) nodes with
    | Some nd -> nd
    | None -> failwith "Orders.recursive_dfs: no root node"
  in
  let rec visit (nd : Cd.node) =
    if nd.Cd.r = 1 then emit nd.Cd.out.(0)
    else begin
      let seen_children = Hashtbl.create 8 in
      Array.iter
        (fun a ->
          List.iter
            (fun y ->
              match Hashtbl.find_opt node_by_first_operand y with
              | Some c when c.Cd.depth = nd.Cd.depth + 1 ->
                Hashtbl.replace seen_children c.Cd.a_in.(0) c
              | _ -> ())
            (D.out_neighbors g a))
        nd.Cd.a_in;
      let children =
        List.sort
          (fun (a : Cd.node) b -> compare a.Cd.a_in.(0) b.Cd.a_in.(0))
          (Hashtbl.fold (fun _ c acc -> c :: acc) seen_children [])
      in
      match children with
      | [] ->
        (* Classical triple-loop leaf of a hybrid (cutoff > 1) CDAG: no
           recursive children. Its subtree id range holds exactly its
           Mult and Dec vertices, allocated in topological order (the r
           products of an output followed by that output's decoder), so
           replaying the range is the depth-first leaf schedule. *)
        for v = nd.Cd.subtree_lo to nd.Cd.subtree_hi do
          emit v
        done
      | children ->
        List.iter
          (fun child ->
            Array.iter emit child.Cd.a_in;
            Array.iter emit child.Cd.b_in;
            visit child)
          children;
        Array.iter emit nd.Cd.out
    end
  in
  visit root;
  let result = List.rev !order in
  (* Safety: the order must be a permutation of all non-input vertices. *)
  let expected = Cd.n_vertices cdag - Array.length (Cd.inputs cdag) in
  if List.length result <> expected then
    failwith
      (Printf.sprintf "Orders.recursive_dfs: emitted %d of %d vertices"
         (List.length result) expected);
  result

(** Random (but valid) topological order: repeatedly pick a random
    ready vertex. Stresses the executor and gives a locality-free
    baseline. *)
let random_topo ~seed cdag =
  let g = Cd.graph cdag in
  let rng = Fmm_util.Prng.create ~seed in
  let n = Cd.n_vertices cdag in
  let indeg = Array.init n (fun v -> D.in_degree g v) in
  let ready = ref [] in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then ready := v :: !ready
  done;
  let order = ref [] in
  let rec go () =
    match !ready with
    | [] -> ()
    | l ->
      let arr = Array.of_list l in
      let pick = arr.(Fmm_util.Prng.int rng (Array.length arr)) in
      ready := List.filter (fun v -> v <> pick) l;
      if not (is_input cdag pick) then order := pick :: !order;
      List.iter
        (fun w ->
          indeg.(w) <- indeg.(w) - 1;
          if indeg.(w) = 0 then ready := w :: !ready)
        (D.out_neighbors g pick);
      go ()
  in
  go ();
  List.rev !order

(** Check that an order is a valid topological enumeration of the
    non-input vertices. *)
let is_valid_order cdag order =
  let g = Cd.graph cdag in
  let n = Cd.n_vertices cdag in
  let seen = Array.make n false in
  Array.iter (fun v -> seen.(v) <- true) (Cd.inputs cdag);
  let ok =
    List.for_all
      (fun v ->
        let ready = List.for_all (fun p -> seen.(p)) (D.in_neighbors g v) in
        seen.(v) <- true;
        ready && not (is_input cdag v))
      order
  in
  ok && Array.for_all (fun b -> b) seen
