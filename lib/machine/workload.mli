(** A workload is the machine model's view of a computation: a DAG, the
    input vertices (initially in slow memory) and the output vertices
    (must end in slow memory). Bilinear CDAGs, FFT butterflies and
    ad-hoc test DAGs all execute through this one interface. *)

type t = {
  graph : Fmm_graph.Digraph.t;
  inputs : int array;
  outputs : int array;
  name : string;
}

val make :
  ?name:string ->
  graph:Fmm_graph.Digraph.t ->
  inputs:int array ->
  outputs:int array ->
  unit ->
  t
(** Validates ids and that inputs have no predecessors. *)

val of_cdag : Fmm_cdag.Cdag.t -> t

val of_implicit : Fmm_cdag.Implicit.t -> t
(** Expand an implicit CDAG into an explicit workload (same graph,
    inputs, outputs and name as [of_cdag] on the equivalent explicit
    build). Small n only — this materializes the graph. *)

val n_vertices : t -> int

val is_input : t -> int -> bool
(** Membership predicate (O(1) after the first partial application). *)

val is_output : t -> int -> bool

val is_valid_order : t -> int list -> bool
(** Is the list a topological enumeration of exactly the non-input
    vertices? (The contract every scheduler input must satisfy.) *)
