(* Schedulers: turn a compute order into a legal trace for the
   two-level machine, under two opposite policies for values that fall
   out of cache:

   - [run_lru]: spill. A value still needed later is written back to
     slow memory before eviction and re-loaded on demand. No vertex is
     ever computed twice (the classical no-recomputation execution).

   - [run_rematerialize]: recompute. Intermediates are never written to
     slow memory; only CDAG outputs are stored. A missing operand is
     recursively recomputed from whatever is available (ultimately the
     inputs, which can always be re-loaded). This trades arithmetic for
     I/O as aggressively as possible — the strategy whose futility for
     fast MM is the paper's headline (Theorem 1.1 holds regardless of
     recomputation).

   Both produce traces replayable by Cache_machine, which is how the
   tests guarantee the schedulers only ever emit legal programs. *)

module W = Workload
module D = Fmm_graph.Digraph
module IntMap = Map.Make (Int)

type result = {
  trace : Trace.t; (* in execution order *)
  counters : Trace.counters;
}



(* Shared mutable machinery: an LRU cache over vertex ids, with a
   use-clock map for O(log n) victim selection, emitting trace events. *)
type core = {
  work : W.t;
  input_mask : int -> bool;
  cache_size : int;
  in_cache : bool array;
  in_slow : bool array;
  last_use : int array;
  mutable clock : int;
  mutable by_time : int IntMap.t; (* time -> vertex *)
  mutable dead_by_time : int IntMap.t; (* dead residents, same keys *)
  mutable occupancy : int;
  mutable events : Trace.event list; (* reversed *)
  mutable loads : int;
  mutable stores : int;
  mutable computes : int;
  mutable recomputes : int;
  mutable reloads : int; (* loads of a value that was resident before *)
  mutable spill_stores : int; (* stores of non-output victims *)
  ever_resident : bool array;
  pinned : bool array;
  output_pred : int -> bool;
}

let make_core work ~cache_size =
  let n = W.n_vertices work in
  let core =
    {
      work;
      input_mask = W.is_input work;
      cache_size;
      in_cache = Array.make n false;
      in_slow = Array.make n false;
      last_use = Array.make n (-1);
      clock = 0;
      by_time = IntMap.empty;
      dead_by_time = IntMap.empty;
      occupancy = 0;
      events = [];
      loads = 0;
      stores = 0;
      computes = 0;
      recomputes = 0;
      reloads = 0;
      spill_stores = 0;
      ever_resident = Array.make n false;
      pinned = Array.make n false;
      output_pred = W.is_output work;
    }
  in
  Array.iter (fun v -> core.in_slow.(v) <- true) work.W.inputs;
  core

let emit core e = core.events <- e :: core.events

let touch core v =
  if core.last_use.(v) >= 0 then begin
    core.by_time <- IntMap.remove core.last_use.(v) core.by_time;
    (* A dead value that is used again (hybrid recomputation re-demands
       it) is live for that consumer: it rejoins the plain LRU pool. *)
    core.dead_by_time <- IntMap.remove core.last_use.(v) core.dead_by_time
  end;
  core.clock <- core.clock + 1;
  core.last_use.(v) <- core.clock;
  core.by_time <- IntMap.add core.clock v core.by_time

let forget core v =
  if core.last_use.(v) >= 0 then begin
    core.by_time <- IntMap.remove core.last_use.(v) core.by_time;
    core.dead_by_time <- IntMap.remove core.last_use.(v) core.dead_by_time;
    core.last_use.(v) <- -1
  end

(* Mark a resident vertex as dead: its last use is behind us, so
   evicting it can never cost a reload. Dead residents are preferred
   victims — this is what makes the spill-free bound (io = inputs +
   outputs whenever the cache holds MAXLIVE words) hold for run_lru and
   run_hybrid, not just for Belady. *)
let mark_dead core v =
  if core.last_use.(v) >= 0 then
    core.dead_by_time <- IntMap.add core.last_use.(v) v core.dead_by_time

(* Evict a victim: the least-recently-used unpinned DEAD vertex when
   one is resident (free in the demand-paging sense — it can never be
   referenced again), otherwise the least-recently-used unpinned vertex
   overall. [writeback v] decides whether the victim must be stored
   first. *)
let evict_one core ~writeback =
  let rec pick_opt t =
    match IntMap.min_binding_opt t with
    | None -> None
    | Some (time, v) ->
      if core.pinned.(v) then pick_opt (IntMap.remove time t) else Some v
  in
  let victim =
    match pick_opt core.dead_by_time with
    | Some v -> v
    | None -> (
      match pick_opt core.by_time with
      | Some v -> v
      | None -> failwith "Schedulers: cache too small (everything pinned)")
  in
  if writeback victim && not core.in_slow.(victim) then begin
    emit core (Trace.Store victim);
    core.in_slow.(victim) <- true;
    core.stores <- core.stores + 1;
    if not (core.output_pred victim) then
      core.spill_stores <- core.spill_stores + 1
  end;
  emit core (Trace.Evict victim);
  core.in_cache.(victim) <- false;
  core.occupancy <- core.occupancy - 1;
  forget core victim

let ensure_room core ~writeback =
  while core.occupancy >= core.cache_size do
    evict_one core ~writeback
  done

let load core v ~writeback =
  ensure_room core ~writeback;
  emit core (Trace.Load v);
  core.in_cache.(v) <- true;
  core.occupancy <- core.occupancy + 1;
  core.loads <- core.loads + 1;
  if core.ever_resident.(v) then core.reloads <- core.reloads + 1;
  core.ever_resident.(v) <- true;
  touch core v

let result_of core =
  {
    trace = List.rev core.events;
    counters =
      {
        Trace.loads = core.loads;
        stores = core.stores;
        computes = core.computes;
        recomputes = core.recomputes;
      };
  }

(* --- LRU / spilling execution --- *)

(** Execute [order] (a valid topological order of non-input vertices)
    with LRU replacement (dead residents evicted first) and write-back
    spilling. [cache_size] must exceed the maximum in-degree. The run
    tracks the live-set size as it goes and enforces Dataflow's
    spill-free bound: when [cache_size >= MAXLIVE(order)] the trace
    must contain zero spills (no reload, no store of a non-output) —
    I/O is exactly compulsory. *)
let run_lru work ~cache_size order =
  let g = work.W.graph in
  let core = make_core work ~cache_size in
  let remaining_uses = Array.init (W.n_vertices work) (fun v -> D.out_degree g v) in
  (* Spill policy: write back anything still needed, and outputs. *)
  let writeback v = remaining_uses.(v) > 0 || core.output_pred v in
  (* Live-set size per Dataflow.order_liveness: an input is live from
     its first use, a computed value from its definition; both die at
     their last use (an unused value dies at its definition step). *)
  let live = ref 0 and maxlive = ref 0 in
  List.iteri
    (fun step v ->
      let preds = D.in_neighbors g v in
      (* Pin operands so making room for one cannot evict another. *)
      List.iter
        (fun p ->
          if not core.in_cache.(p) then begin
            if not core.in_slow.(p) then
              failwith
                (Printf.sprintf
                   "Schedulers.run_lru: order step %d (vertex %d): operand %d lost"
                   step v p);
            if core.input_mask p && not core.ever_resident.(p) then incr live;
            core.pinned.(p) <- true;
            load core p ~writeback
          end
          else begin
            core.pinned.(p) <- true;
            touch core p
          end)
        preds;
      ensure_room core ~writeback;
      emit core (Trace.Compute v);
      core.in_cache.(v) <- true;
      core.ever_resident.(v) <- true;
      core.occupancy <- core.occupancy + 1;
      core.computes <- core.computes + 1;
      incr live;
      if !live > !maxlive then maxlive := !live;
      touch core v;
      List.iter
        (fun p ->
          core.pinned.(p) <- false;
          remaining_uses.(p) <- remaining_uses.(p) - 1;
          if remaining_uses.(p) = 0 then begin
            decr live;
            if core.in_cache.(p) then
              if core.output_pred p then
                (* Unstored outputs stay resident but join the preferred-
                   victim pool: evicting one only pays its one mandatory
                   store early. *)
                mark_dead core p
              else begin
                (* Dead values leave the cache for free. *)
                emit core (Trace.Evict p);
                core.in_cache.(p) <- false;
                core.occupancy <- core.occupancy - 1;
                forget core p
              end
          end)
        preds;
      if remaining_uses.(v) = 0 then begin
        decr live;
        mark_dead core v
      end)
    order;
  (* Flush outputs still dirty in cache. *)
  Array.iter
    (fun v ->
      if core.in_cache.(v) && not core.in_slow.(v) then begin
        emit core (Trace.Store v);
        core.in_slow.(v) <- true;
        core.stores <- core.stores + 1
      end)
    work.W.outputs;
  if cache_size >= !maxlive && (core.reloads > 0 || core.spill_stores > 0) then
    failwith
      (Printf.sprintf
         "Schedulers.run_lru: spill-free invariant violated: cache_size=%d >= \
          maxlive=%d yet reloads=%d spill_stores=%d"
         cache_size !maxlive core.reloads core.spill_stores);
  result_of core

(* --- Belady / offline-optimal replacement --- *)

(** Execute [order] with Belady's MIN policy: given the whole future
    reference sequence, evict the resident value whose next use is
    farthest away (never-used-again values first). Offline-optimal for
    the replacement decision at a fixed compute order, so its I/O lower
    bounds every demand-paging execution of that order — the tightest
    schedule the no-recomputation machine can extract from an order
    without reordering. *)
let run_belady work ~cache_size order =
  let g = work.W.graph in
  let n = W.n_vertices work in
  let core = make_core work ~cache_size in
  let remaining_uses = Array.init n (fun v -> D.out_degree g v) in
  let writeback v = remaining_uses.(v) > 0 || core.output_pred v in
  (* Future reference positions per vertex: vertex v is referenced at
     step i when it is an operand of order[i] (and at its own compute
     step). Precompute queues of positions. *)
  let refs = Array.make n [] in
  List.iteri
    (fun i v ->
      refs.(v) <- i :: refs.(v);
      List.iter (fun p -> refs.(p) <- i :: refs.(p)) (D.in_neighbors g v))
    order;
  let future = Array.map (fun l -> ref (List.rev l)) refs in
  let next_use_after v now =
    let rec drop = function
      | t :: rest when t <= now ->
        future.(v) := rest;
        drop rest
      | l -> l
    in
    match drop !(future.(v)) with [] -> max_int | t :: _ -> t
  in
  (* Belady eviction: scan the residents (the recency map — at most
     cache_size entries, NOT the whole vertex set, which matters at
     n = 64 where the CDAG has ~10^6 vertices) for the farthest next
     use. Ties on the next-use distance are broken toward a CLEAN
     victim (already in slow memory, or dead so never written back):
     evicting it is free, while a dirty co-leader would cost a Store
     the clean choice avoids. Within the same cleanliness class the
     smallest vertex id wins; every clause is scan-order-independent,
     so the policy stays deterministic. *)
  let evict_belady now =
    let victim = ref (-1) and victim_next = ref (-1) in
    let victim_dirty = ref false in
    let is_dirty v = writeback v && not core.in_slow.(v) in
    IntMap.iter
      (fun _time v ->
        if not core.pinned.(v) then begin
          let nu = next_use_after v now in
          let dirty = is_dirty v in
          if
            nu > !victim_next
            || (nu = !victim_next
               && ((!victim_dirty && not dirty)
                  || (!victim_dirty = dirty && v < !victim)))
          then begin
            victim := v;
            victim_next := nu;
            victim_dirty := dirty
          end
        end)
      core.by_time;
    if !victim < 0 then failwith "Schedulers: cache too small (everything pinned)";
    let v = !victim in
    if writeback v && not core.in_slow.(v) then begin
      emit core (Trace.Store v);
      core.in_slow.(v) <- true;
      core.stores <- core.stores + 1
    end;
    emit core (Trace.Evict v);
    core.in_cache.(v) <- false;
    core.occupancy <- core.occupancy - 1;
    forget core v
  in
  let ensure_room_belady now =
    while core.occupancy >= core.cache_size do
      evict_belady now
    done
  in
  List.iteri
    (fun now v ->
      let preds = D.in_neighbors g v in
      List.iter
        (fun p ->
          if not core.in_cache.(p) then begin
            if not core.in_slow.(p) then
              failwith
                (Printf.sprintf
                   "Schedulers.run_belady: order step %d (vertex %d): operand %d lost"
                   now v p);
            core.pinned.(p) <- true;
            ensure_room_belady now;
            emit core (Trace.Load p);
            core.in_cache.(p) <- true;
            core.occupancy <- core.occupancy + 1;
            core.loads <- core.loads + 1;
            touch core p
          end
          else core.pinned.(p) <- true)
        preds;
      ensure_room_belady now;
      emit core (Trace.Compute v);
      core.in_cache.(v) <- true;
      core.occupancy <- core.occupancy + 1;
      core.computes <- core.computes + 1;
      touch core v;
      List.iter
        (fun p ->
          core.pinned.(p) <- false;
          remaining_uses.(p) <- remaining_uses.(p) - 1;
          if remaining_uses.(p) = 0 && not (core.output_pred p) && core.in_cache.(p)
          then begin
            emit core (Trace.Evict p);
            core.in_cache.(p) <- false;
            core.occupancy <- core.occupancy - 1;
            forget core p
          end)
        preds)
    order;
  Array.iter
    (fun v ->
      if core.in_cache.(v) && not core.in_slow.(v) then begin
        emit core (Trace.Store v);
        core.in_slow.(v) <- true;
        core.stores <- core.stores + 1
      end)
    work.W.outputs;
  result_of core

(* --- rematerializing execution --- *)

(** Execute with recomputation instead of spilling: only outputs are
    ever stored; a missing operand is recomputed recursively (inputs
    are re-loaded). [max_flops] aborts pathological blow-ups. *)
let run_rematerialize ?(max_flops = 200_000_000) work ~cache_size order =
  let g = work.W.graph in
  let core = make_core work ~cache_size in
  let computed_once = Array.make (W.n_vertices work) false in
  (* Never write back: intermediates are recomputable, inputs are
     already in slow memory, outputs are stored at first compute. *)
  let writeback _ = false in
  let flops = ref 0 in
  (* The flop cap is charged BEFORE each compute, deep inside the
     recursive descent: the run aborts at the exact step that would
     exceed the budget, so a failed run never performs more than
     [max_flops] computations (the cap cannot be overshot while a
     recomputation subtree drains). *)
  let charge_flop v =
    if !flops >= max_flops then
      failwith
        (Printf.sprintf
           "Schedulers.run_rematerialize: flop budget exceeded (cap %d) at \
            compute of vertex %d"
           max_flops v);
    incr flops
  in
  let rec materialize v =
    if core.in_cache.(v) then touch core v
    else if core.input_mask v then begin
      core.pinned.(v) <- true;
      load core v ~writeback
    end
    else begin
      let preds = D.in_neighbors g v in
      List.iter materialize preds;
      (* Re-pin operands: deep recursion may have unpinned them. *)
      List.iter
        (fun p ->
          if not core.in_cache.(p) then materialize p;
          core.pinned.(p) <- true)
        preds;
      charge_flop v;
      ensure_room core ~writeback;
      emit core (Trace.Compute v);
      if computed_once.(v) then core.recomputes <- core.recomputes + 1;
      computed_once.(v) <- true;
      core.in_cache.(v) <- true;
      core.occupancy <- core.occupancy + 1;
      core.computes <- core.computes + 1;
      core.pinned.(v) <- true;
      touch core v;
      List.iter (fun p -> core.pinned.(p) <- false) preds;
      if core.output_pred v && not core.in_slow.(v) then begin
        emit core (Trace.Store v);
        core.in_slow.(v) <- true;
        core.stores <- core.stores + 1
      end
    end
  in
  List.iter
    (fun v ->
      materialize v;
      core.pinned.(v) <- false)
    order;
  result_of core

(* --- hybrid execution: per-value spill-vs-recompute --- *)

(** Execute [order] with LRU victim selection but a per-value policy
    for what eviction of a live value does: [recompute v = false]
    spills it (write back, reload on demand, exactly run_lru's rule)
    while [recompute v = true] drops it and rebuilds it recursively
    when next needed (run_rematerialize's rule). The two fixed policies
    are the constant functions; everything in between is the search
    space of Fmm_opt. *)
let run_hybrid ?(max_flops = 200_000_000) work ~cache_size ~recompute order =
  let g = work.W.graph in
  let core = make_core work ~cache_size in
  let n = W.n_vertices work in
  let remaining_uses = Array.init n (fun v -> D.out_degree g v) in
  let computed_once = Array.make n false in
  (* A victim is written back when it is still live (a first-time use
     remains, or it is an output not yet saved) and the policy says
     spill. Outputs always spill: dropping one only defers a store it
     must eventually pay anyway, plus the recompute. *)
  let writeback v =
    (remaining_uses.(v) > 0 || core.output_pred v)
    && (core.output_pred v || not (recompute v))
  in
  let flops = ref 0 in
  (* Same cap discipline as run_rematerialize: charged before the
     compute, so the budget is never overshot. *)
  let charge_flop v =
    if !flops >= max_flops then
      failwith
        (Printf.sprintf
           "Schedulers.run_hybrid: flop budget exceeded (cap %d) at compute \
            of vertex %d"
           max_flops v);
    incr flops
  in
  let rec materialize v =
    if core.in_cache.(v) then touch core v
    else if core.in_slow.(v) then begin
      (* inputs, spilled values, stored outputs: reload *)
      core.pinned.(v) <- true;
      load core v ~writeback
    end
    else begin
      (* dropped under the recompute policy (or freed when dead and
         re-demanded by a later recomputation): rebuild it *)
      let preds = D.in_neighbors g v in
      List.iter materialize preds;
      List.iter
        (fun p ->
          if not core.in_cache.(p) then materialize p;
          core.pinned.(p) <- true)
        preds;
      charge_flop v;
      ensure_room core ~writeback;
      emit core (Trace.Compute v);
      if computed_once.(v) then core.recomputes <- core.recomputes + 1;
      computed_once.(v) <- true;
      core.in_cache.(v) <- true;
      core.occupancy <- core.occupancy + 1;
      core.computes <- core.computes + 1;
      core.pinned.(v) <- true;
      touch core v;
      List.iter (fun p -> core.pinned.(p) <- false) preds
    end
  in
  List.iteri
    (fun step v ->
      if core.in_cache.(v) || computed_once.(v) then
        failwith
          (Printf.sprintf
             "Schedulers.run_hybrid: order step %d recomputes vertex %d" step v);
      let preds = D.in_neighbors g v in
      List.iter
        (fun p ->
          if core.in_cache.(p) then touch core p else materialize p;
          core.pinned.(p) <- true)
        preds;
      charge_flop v;
      ensure_room core ~writeback;
      emit core (Trace.Compute v);
      computed_once.(v) <- true;
      core.in_cache.(v) <- true;
      core.occupancy <- core.occupancy + 1;
      core.computes <- core.computes + 1;
      touch core v;
      List.iter
        (fun p ->
          core.pinned.(p) <- false;
          remaining_uses.(p) <- remaining_uses.(p) - 1;
          (* Dead values leave the cache for free; a later recompute
             that re-demands one rebuilds it through [materialize].
             Dead unstored outputs become preferred victims instead,
             exactly as in run_lru. *)
          if remaining_uses.(p) = 0 && core.in_cache.(p) then
            if core.output_pred p then mark_dead core p
            else begin
              emit core (Trace.Evict p);
              core.in_cache.(p) <- false;
              core.occupancy <- core.occupancy - 1;
              forget core p
            end)
        preds;
      if remaining_uses.(v) = 0 then mark_dead core v)
    order;
  Array.iter
    (fun v ->
      if core.in_cache.(v) && not core.in_slow.(v) then begin
        emit core (Trace.Store v);
        core.in_slow.(v) <- true;
        core.stores <- core.stores + 1
      end)
    work.W.outputs;
  result_of core
