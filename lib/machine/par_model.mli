(** Distributed-memory cost models for the paper's parallel machine
    (P processors, local memory M, every exchanged word one I/O).
    Communication is accumulated from each algorithm's actual loop /
    recursion structure, not quoted as a closed form. *)

type cost = {
  algorithm : string;
  n : int;
  p : int;
  m : int option;
  words_per_proc : float;
  flops_per_proc : float;
  rounds : int;
}

val cannon_2d : n:int -> p:int -> cost
(** Cannon's algorithm on a sqrt(P) x sqrt(P) grid;
    words = Theta(n^2/sqrt P). Raises [Invalid_argument] unless P is a
    perfect square (decided by exact integer root extraction —
    [Fmm_util.Combinat.iroot] — never float rounding) whose root
    divides n. A non-square P is an error, not a round-down: costing a
    truncated grid would silently under-count the model's traffic. *)

val classical_3d : n:int -> p:int -> cost
(** 3D classical with P^{1/3} replication; words = Theta(n^2/P^{2/3}).
    Raises [Invalid_argument] unless P is a perfect cube (exact integer
    cube root, same contract as {!cannon_2d}) with P^{2/3} | n^2. *)

val grid_3d : n:int -> p:int -> int * int * int -> cost
(** COSMA-style (p1, p2, p3) decomposition of the classical n^3
    iteration cube. Per-processor traffic is the exact brick footprint:
    one ceil(n/p1) x ceil(n/p3) A brick, one ceil(n/p3) x ceil(n/p2)
    B brick, and the ceil(n/p1) x ceil(n/p2) C partial (counted twice
    when p3 > 1, for the cross-layer reduction). Raises
    [Invalid_argument] with a diagnostic naming the offending factors
    when p1 * p2 * p3 <> p or any factor is < 1 — a degenerate grid is
    an error, never silently re-tiled. *)

type caps_step = BFS | DFS

val caps : n:int -> p:int -> m:int -> cost * caps_step list
(** CAPS-style parallel Strassen: BFS steps split the 7 sub-problems
    among 7 processor groups when memory allows, DFS steps serialize
    them otherwise. All-BFS reproduces the memory-independent regime
    n^2/P^{2/omega0}; a DFS prefix reproduces the memory-dependent one —
    the two regimes of Theorem 1.1. *)

val caps_words : n:int -> p:int -> m:int -> float

val caps_schedule : n:int -> p:int -> m:int -> int * int
(** (BFS count, DFS count) of the chosen schedule. *)
