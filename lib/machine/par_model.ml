(* Distributed-memory cost models (the paper's parallel machine: P
   processors, local memories of size M, every exchanged word is one
   I/O operation). Three algorithm families are simulated round by
   round — communication is accumulated from the actual loop structure
   of each algorithm, not just quoted as a closed form:

   - 2D classical (Cannon): sqrt(P) x sqrt(P) grid, sqrt(P) shift
     rounds, words/proc = Theta(n^2 / sqrt P);
   - 3D classical: P^{1/3} replication, words/proc = Theta(n^2/P^{2/3});
   - CAPS-style parallel Strassen: BFS steps divide the 7 sub-problems
     among 7 processor groups (communication Theta(n^2/P) per step),
     DFS steps recurse on all processors sequentially when memory is
     too tight for BFS. With ample memory the schedule is all-BFS and
     matches the memory-independent bound n^2/P^{2/omega0}; with tight
     memory the DFS prefix reproduces the memory-dependent bound
     (n/sqrt M)^{omega0} M/P — the two regimes of Theorem 1.1. *)

type cost = {
  algorithm : string;
  n : int;
  p : int;
  m : int option; (* local memory, when the model is memory-aware *)
  words_per_proc : float; (* inter-processor I/O per processor *)
  flops_per_proc : float;
  rounds : int;
}

(* Grid sizes must be EXACT integer roots: the former float-based
   [int_of_float (Float.round (float p ** (1. /. 3.)))] mis-identified
   perfect powers once rounding bit (large p), silently mis-tiling the
   2.5D/SUMMA-style models. [Combinat.iroot] brackets the root with
   integer arithmetic only; a remainder means p is not a perfect power
   and the model raises the documented [Invalid_argument] rather than
   costing a grid that does not exist. *)
let int_cbrt p = if p < 1 then None else Fmm_util.Combinat.iroot_exact ~k:3 p

let int_sqrt p = if p < 1 then None else Fmm_util.Combinat.iroot_exact ~k:2 p

(** Cannon's algorithm on a sqrt(P) x sqrt(P) grid. Requires square P
    dividing n. *)
let cannon_2d ~n ~p =
  match int_sqrt p with
  | None -> invalid_arg "Par_model.cannon_2d: P must be a perfect square"
  | Some s ->
    if n mod s <> 0 then invalid_arg "Par_model.cannon_2d: sqrt(P) must divide n";
    let block = n / s in
    let words = ref 0.0 and flops = ref 0.0 and rounds = ref 0 in
    (* initial skew: one shift of A and one of B per processor *)
    words := !words +. float_of_int (2 * block * block);
    (* s-1 shift rounds; each processor receives one A and one B block
       and multiplies-accumulates a block pair. *)
    for _round = 1 to s do
      flops := !flops +. (2.0 *. float_of_int (block * block * block));
      incr rounds;
      if !rounds < s then words := !words +. float_of_int (2 * block * block)
    done;
    {
      algorithm = "cannon-2d";
      n;
      p;
      m = None;
      words_per_proc = !words;
      flops_per_proc = !flops;
      rounds = !rounds;
    }

(** 3D classical: c = P^{1/3}; A and B replicated across layers, C
    reduced across layers. *)
let classical_3d ~n ~p =
  match int_cbrt p with
  | None -> invalid_arg "Par_model.classical_3d: P must be a perfect cube"
  | Some c ->
    if n mod (c * c) <> 0 then
      invalid_arg "Par_model.classical_3d: P^{2/3} must divide n^2";
    let tile = n * n / (c * c) in
    (* each processor: receives its A tile and B tile replica (2 tiles),
       sends/reduces its C contribution (1 tile): 3 tiles of n^2/c^2. *)
    let words = float_of_int (3 * tile) in
    let flops = float_of_int n ** 3. /. float_of_int p *. 2.0 in
    {
      algorithm = "classical-3d";
      n;
      p;
      m = None;
      words_per_proc = words;
      flops_per_proc = flops;
      rounds = 2 + c;
    }

(** COSMA-style (p1, p2, p3) decomposition of the classical n^3
    iteration cube: p1 splits the rows of C, p2 its columns, p3 the
    summation dimension. Each processor holds one A brick of
    ceil(n/p1) * ceil(n/p3) words, one B brick of
    ceil(n/p3) * ceil(n/p2), and produces one C partial of
    ceil(n/p1) * ceil(n/p2) that is reduced across the p3 layers —
    all tile sizes are exact integer ceilings, never float roots.
    A grid whose factors do not multiply back to p is degenerate
    (processors would idle or overlap) and is rejected outright. *)
let grid_3d ~n ~p (p1, p2, p3) =
  if p1 < 1 || p2 < 1 || p3 < 1 then
    invalid_arg
      (Printf.sprintf "Par_model.grid_3d: grid (%d, %d, %d) has a factor < 1"
         p1 p2 p3);
  if p1 * p2 * p3 <> p then
    invalid_arg
      (Printf.sprintf
         "Par_model.grid_3d: degenerate grid (%d, %d, %d): product %d <> P = %d"
         p1 p2 p3 (p1 * p2 * p3) p);
  let ceil_div a b = (a + b - 1) / b in
  let bi = ceil_div n p1 and bj = ceil_div n p2 and bl = ceil_div n p3 in
  let a_tile = bi * bl and b_tile = bl * bj and c_tile = bi * bj in
  (* receive the A and B bricks; if the reduction dimension is split,
     the C partial is sent and the reduced tile received back. *)
  let c_words = if p3 > 1 then 2 * c_tile else c_tile in
  let words = float_of_int (a_tile + b_tile + c_words) in
  let flops = 2.0 *. float_of_int (bi * bj) *. float_of_int n in
  {
    algorithm = Printf.sprintf "grid-3d-%dx%dx%d" p1 p2 p3;
    n;
    p;
    m = None;
    words_per_proc = words;
    flops_per_proc = flops;
    rounds = (if p3 > 1 then 3 else 2);
  }

type caps_step = BFS | DFS

(** CAPS-style parallel Strassen. At problem size [n] on [p] procs with
    [m] words of local memory:
    - p = 1: run locally (no further communication; local I/O is the
      sequential story, measured elsewhere);
    - BFS step (needs p >= 7 and memory for a 7/4-denser working set):
      redistribute so each of 7 groups of p/7 procs owns one
      sub-problem: ~3 (n/2)^2 * 7 words spread over p procs move;
    - DFS step: solve the 7 half-size sub-problems one after another on
      all p procs; per sub-problem the operands' shares move once:
      ~3 (n/2)^2 / p words each.
    Returns the accumulated words/proc and the step sequence. *)
let caps ~n ~p ~m =
  if p < 1 then invalid_arg "Par_model.caps: P < 1";
  let steps = ref [] in
  let rec go n p =
    if p <= 1 then 0.0
    else begin
      let bfs_memory_need = 21 * (n / 2) * (n / 2) / p in
      if p >= 7 && p mod 7 = 0 && n mod 2 = 0 && bfs_memory_need <= m then begin
        steps := BFS :: !steps;
        (* all 7 sub-operands redistributed across the p processors *)
        (float_of_int (21 * (n / 2) * (n / 2)) /. float_of_int p)
        +. go (n / 2) (p / 7)
      end
      else if n mod 2 = 0 then begin
        steps := DFS :: !steps;
        (* 7 sequential sub-problems, each executed by all p procs:
           operands move once per sub-problem, and each sub-problem's
           own recursive communication is paid 7 times. *)
        (7.0 *. float_of_int (3 * (n / 2) * (n / 2)) /. float_of_int p)
        +. (7.0 *. go (n / 2) p)
      end
      else
        (* odd size with p > 1: fall back to a 2D-style exchange *)
        float_of_int (2 * n * n) /. sqrt (float_of_int p)
    end
  in
  let words = ref (go n p) in
  let flops = float_of_int n ** (log 7. /. log 2.) /. float_of_int p in
  ( {
      algorithm = "caps-strassen";
      n;
      p;
      m = Some m;
      words_per_proc = !words;
      flops_per_proc = flops;
      rounds = List.length !steps;
    },
    List.rev !steps )

let caps_words ~n ~p ~m = (fst (caps ~n ~p ~m)).words_per_proc

(** Count BFS/DFS steps (the schedule shape: DFS prefix length grows as
    memory shrinks). *)
let caps_schedule ~n ~p ~m =
  let _, steps = caps ~n ~p ~m in
  let bfs = List.length (List.filter (fun s -> s = BFS) steps) in
  let dfs = List.length (List.filter (fun s -> s = DFS) steps) in
  (bfs, dfs)
