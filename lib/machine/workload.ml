(* A workload is the machine model's view of a computation: a DAG, its
   input vertices (initially in slow memory) and its output vertices
   (must end up in slow memory). Bilinear CDAGs, FFT butterflies and
   ad-hoc test DAGs all execute through this one interface. *)

type t = {
  graph : Fmm_graph.Digraph.t;
  inputs : int array;
  outputs : int array;
  name : string;
}

let make ?(name = "workload") ~graph ~inputs ~outputs () =
  let n = Fmm_graph.Digraph.n_vertices graph in
  let check v =
    if v < 0 || v >= n then invalid_arg "Workload.make: vertex out of range"
  in
  Array.iter check inputs;
  Array.iter check outputs;
  Array.iter
    (fun v ->
      if Fmm_graph.Digraph.in_degree graph v <> 0 then
        invalid_arg "Workload.make: input vertex has predecessors")
    inputs;
  { graph; inputs; outputs; name }

let of_cdag cdag =
  {
    graph = Fmm_cdag.Cdag.graph cdag;
    inputs = Fmm_cdag.Cdag.inputs cdag;
    outputs = Fmm_cdag.Cdag.outputs cdag;
    name =
      Printf.sprintf "%s H^{%dx%d}"
        (Fmm_bilinear.Algorithm.name (Fmm_cdag.Cdag.base_algorithm cdag))
        (Fmm_cdag.Cdag.size cdag) (Fmm_cdag.Cdag.size cdag);
  }

(* Expands the graph (use only where an explicit workload is wanted
   anyway — e.g. cross-validating against the streaming path); the
   name matches [of_cdag] so downstream reports are indistinguishable. *)
let of_implicit imp =
  let n = Fmm_cdag.Implicit.size imp in
  {
    graph = Fmm_cdag.Implicit.to_digraph imp;
    inputs =
      Array.append
        (Fmm_cdag.Implicit.a_inputs imp)
        (Fmm_cdag.Implicit.b_inputs imp);
    outputs = Fmm_cdag.Implicit.outputs imp;
    name =
      Printf.sprintf "%s H^{%dx%d}"
        (Fmm_bilinear.Algorithm.name (Fmm_cdag.Implicit.base_algorithm imp))
        n n;
  }

let n_vertices t = Fmm_graph.Digraph.n_vertices t.graph

let is_input t =
  let n = n_vertices t in
  let mask = Array.make (max n 1) false in
  Array.iter (fun v -> mask.(v) <- true) t.inputs;
  fun v -> mask.(v)

let is_output t =
  let n = n_vertices t in
  let mask = Array.make (max n 1) false in
  Array.iter (fun v -> mask.(v) <- true) t.outputs;
  fun v -> mask.(v)

(** Is [order] a topological enumeration of exactly the non-input
    vertices? (The contract every scheduler input must satisfy.) *)
let is_valid_order t order =
  let n = n_vertices t in
  let seen = Array.make (max n 1) false in
  Array.iter (fun v -> seen.(v) <- true) t.inputs;
  let input = is_input t in
  let ok =
    List.for_all
      (fun v ->
        let ready =
          List.for_all (fun p -> seen.(p)) (Fmm_graph.Digraph.in_neighbors t.graph v)
        in
        seen.(v) <- true;
        ready && not (input v))
      order
  in
  ok && Array.for_all (fun b -> b) seen
