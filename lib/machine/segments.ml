(* The segment analysis of Lemma 3.6 / Theorem 1.1, applied to concrete
   execution traces. The proof partitions a schedule into segments each
   containing Q first-time computations of V_out(SUB_H^{r x r}) (with
   r = 2 sqrt(M) and Q = 4M in the theorem) and shows every segment
   performs at least r^2/2 - n_init >= M I/O operations.

   [analyze] replays a trace, cuts it into such segments, and reports
   the I/O of each — the benches compare the minimum observed segment
   I/O against the bound, which is how the abstract counting argument
   becomes a measurable property of real schedules. *)

module Cd = Fmm_cdag.Cdag

type segment = {
  index : int;
  output_computations : int; (* first-time computes of SUB outputs *)
  io : int;
  loads : int;
  stores : int;
}

type analysis = {
  r : int;
  quota : int;
  segments : segment list;
  bound : int; (* the Lemma 3.6 per-segment bound r^2/2 - M *)
  cache_size : int;
}

(** The shared fold: cut an event stream into segments of [quota]
    first-time computations of V_out(SUB_H^{r x r}) and count the I/O
    in each. The final partial segment is included (callers typically
    exclude it from minima, as the theorem does). [iter] drives the
    fold — a trace list for the explicit path, a live streaming
    execution for the implicit one — and [is_sub_output] is a
    predicate, so membership can be an array lookup or O(log n)
    arithmetic. First-time-ness is tracked in a bitset (V/8 bytes). *)
let analyze_events ~n_vertices ~is_sub_output ~cache_size ~r ?quota iter =
  let quota =
    match quota with Some q -> q | None -> max 1 (4 * cache_size)
  in
  let computed = Bytes.make ((n_vertices + 7) / 8) '\000' in
  let computed_mem v =
    Char.code (Bytes.unsafe_get computed (v lsr 3)) land (1 lsl (v land 7)) <> 0
  in
  let computed_set v =
    Bytes.unsafe_set computed (v lsr 3)
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get computed (v lsr 3)) lor (1 lsl (v land 7))))
  in
  let segments = ref [] in
  let seg_outputs = ref 0 and seg_loads = ref 0 and seg_stores = ref 0 in
  let seg_index = ref 0 in
  let close_segment () =
    segments :=
      {
        index = !seg_index;
        output_computations = !seg_outputs;
        io = !seg_loads + !seg_stores;
        loads = !seg_loads;
        stores = !seg_stores;
      }
      :: !segments;
    incr seg_index;
    seg_outputs := 0;
    seg_loads := 0;
    seg_stores := 0
  in
  iter (fun event ->
      match event with
      | Trace.Load _ -> incr seg_loads
      | Trace.Store _ -> incr seg_stores
      | Trace.Evict _ -> ()
      | Trace.Compute v ->
        if is_sub_output v && not (computed_mem v) then begin
          computed_set v;
          incr seg_outputs;
          if !seg_outputs = quota then close_segment ()
        end);
  if !seg_outputs > 0 || !seg_loads + !seg_stores > 0 then close_segment ();
  {
    r;
    quota;
    segments = List.rev !segments;
    (* ceil(r^2 / 2): truncating division silently weakened the check
       by one for odd r *)
    bound = ((r * r) + 1) / 2 - cache_size;
    cache_size;
  }

let analyze cdag ~cache_size ~r ?quota (trace : Trace.t) =
  let is_sub_output = Array.make (Cd.n_vertices cdag) false in
  List.iter (fun v -> is_sub_output.(v) <- true) (Cd.sub_outputs cdag ~r);
  analyze_events ~n_vertices:(Cd.n_vertices cdag)
    ~is_sub_output:(fun v -> is_sub_output.(v))
    ~cache_size ~r ?quota
    (fun f -> List.iter f trace)

(** Segment analysis of the canonical LRU execution of an implicit
    CDAG: the streaming executor feeds the fold event-by-event, so no
    trace is ever materialized. Returns the executor's counters
    alongside. *)
let analyze_implicit imp ~cache_size ~r ?quota () =
  let module Im = Fmm_cdag.Implicit in
  let result = ref None in
  let analysis =
    analyze_events ~n_vertices:(Im.n_vertices imp)
      ~is_sub_output:(fun v -> Im.is_sub_output imp ~r v)
      ~cache_size ~r ?quota
      (fun f -> result := Some (Stream_exec.run_lru imp ~cache_size ~on_event:f ()))
  in
  match !result with
  | Some counters -> (analysis, counters)
  | None -> assert false

(** Full segments only (the theorem's counting excludes the last,
    possibly partial, one). *)
let full_segments a = List.filter (fun s -> s.output_computations = a.quota) a.segments

let min_io_full_segments a =
  match full_segments a with
  | [] -> None
  | l -> Some (List.fold_left (fun acc s -> min acc s.io) max_int l)

(** Does every full segment respect the Lemma 3.6 bound? (Trivially yes
    when the bound is <= 0 — the lemma only bites once r^2/2 > M.) *)
let lemma_3_6_holds a =
  List.for_all (fun s -> s.io >= a.bound) (full_segments a)
