(* The sequential machine model of Section II-B: a fast memory of M
   words and an unbounded slow memory. Inputs start in slow memory;
   computations require every operand in fast memory and leave their
   result in fast memory; each Load/Store is one I/O operation.

   [replay] validates a trace against the model (the legality oracle
   every scheduler is tested against) and returns the I/O counters.
   Recomputation is legal: a vertex may be Computed any number of
   times, each time its operands are resident — this is precisely the
   freedom whose uselessness (for fast MM) the paper proves. *)

exception Illegal of string

type config = {
  cache_size : int;
  allow_recompute : bool; (* when false, a second Compute of a vertex is rejected *)
}

type state = {
  cfg : config;
  work : Workload.t;
  input_mask : int -> bool;
  in_cache : bool array;
  in_slow : bool array;
  computed : bool array;
  mutable occupancy : int;
  mutable step : int; (* 0-based index of the event being applied *)
  mutable loads : int;
  mutable stores : int;
  mutable computes : int;
  mutable recomputes : int;
}

let illegal fmt = Printf.ksprintf (fun s -> raise (Illegal s)) fmt

(* Every violation names the offending trace step and vertex, so a
   failed replay is directly actionable (and greppable against the
   static checker's step-located diagnostics). *)
let illegal_at st fmt =
  Printf.ksprintf
    (fun s -> raise (Illegal (Printf.sprintf "step %d: %s" st.step s)))
    fmt

let init cfg work =
  if cfg.cache_size <= 0 then invalid_arg "Cache_machine: cache_size <= 0";
  let n = Workload.n_vertices work in
  let st =
    {
      cfg;
      work;
      input_mask = Workload.is_input work;
      in_cache = Array.make n false;
      in_slow = Array.make n false;
      computed = Array.make n false;
      occupancy = 0;
      step = 0;
      loads = 0;
      stores = 0;
      computes = 0;
      recomputes = 0;
    }
  in
  Array.iter (fun v -> st.in_slow.(v) <- true) work.Workload.inputs;
  st

let is_input st v = st.input_mask v

let apply st event =
  (match event with
  | Trace.Load v ->
    if not st.in_slow.(v) then illegal_at st "load of vertex %d: not in slow memory" v;
    if st.in_cache.(v) then illegal_at st "load of vertex %d: already in cache" v;
    if st.occupancy >= st.cfg.cache_size then
      illegal_at st "load of vertex %d: cache full (M = %d)" v st.cfg.cache_size;
    st.in_cache.(v) <- true;
    st.occupancy <- st.occupancy + 1;
    st.loads <- st.loads + 1
  | Trace.Store v ->
    if not st.in_cache.(v) then illegal_at st "store of vertex %d: not in cache" v;
    st.in_slow.(v) <- true;
    st.stores <- st.stores + 1
  | Trace.Evict v ->
    if not st.in_cache.(v) then illegal_at st "evict of vertex %d: not in cache" v;
    st.in_cache.(v) <- false;
    st.occupancy <- st.occupancy - 1
  | Trace.Compute v ->
    if is_input st v then
      illegal_at st "compute of vertex %d: inputs are not computable" v;
    if st.computed.(v) && not st.cfg.allow_recompute then
      illegal_at st "compute of vertex %d: recomputation disabled" v;
    List.iter
      (fun p ->
        if not st.in_cache.(p) then
          illegal_at st "compute of vertex %d: operand %d not in cache" v p)
      (Fmm_graph.Digraph.in_neighbors st.work.Workload.graph v);
    if not st.in_cache.(v) then begin
      if st.occupancy >= st.cfg.cache_size then
        illegal_at st "compute of vertex %d: cache full (M = %d)" v st.cfg.cache_size;
      st.in_cache.(v) <- true;
      st.occupancy <- st.occupancy + 1
    end;
    if st.computed.(v) then st.recomputes <- st.recomputes + 1;
    st.computed.(v) <- true;
    st.computes <- st.computes + 1);
  st.step <- st.step + 1

let counters st =
  {
    Trace.loads = st.loads;
    stores = st.stores;
    computes = st.computes;
    recomputes = st.recomputes;
  }

(** Validate the final state: every CDAG output must have been computed
    and be available in slow memory. Unlike [apply] (which stops at the
    event that broke the model), the final check has no single offending
    step, so it collects EVERY unsatisfied output and reports them all
    in one [Illegal], each located "vertex %d: ..." in the same
    convention the static analyzer's diagnostics use — a failed run
    names the complete set of missing results, not just the first. *)
let check_final st =
  let bad =
    Array.to_list st.work.Workload.outputs
    |> List.filter_map (fun v ->
           (* an output that is itself an input (e.g. LU's untouched
              first row of U) is available in slow memory from the
              start *)
           if is_input st v then None
           else if not st.computed.(v) then
             Some (Printf.sprintf "vertex %d: never computed" v)
           else if not st.in_slow.(v) then
             Some (Printf.sprintf "vertex %d: computed but never stored to slow memory" v)
           else None)
  in
  match bad with
  | [] -> ()
  | fails ->
    illegal "final state: %d unsatisfied output(s): %s" (List.length fails)
      (String.concat "; " fails)

(** Replay a full trace and return the counters; raises [Illegal] on
    any model violation. *)
let replay cfg work (trace : Trace.t) =
  let st = init cfg work in
  List.iter (apply st) trace;
  check_final st;
  counters st
