(** Schedulers: turn a compute order into a legal machine trace, under
    the two opposite policies for values that fall out of cache —
    spill (write back and reload) or recompute. Every trace they
    produce replays cleanly through {!Cache_machine} (enforced by the
    test suite). *)

type result = {
  trace : Trace.t;  (** in execution order *)
  counters : Trace.counters;
}

val run_lru : Workload.t -> cache_size:int -> int list -> result
(** LRU replacement with write-back spilling; no vertex is ever
    computed twice. Dead residents (values past their last use —
    in practice unstored outputs) are preferred victims, evicted in
    least-recently-touched order before any live value; this makes the
    spill-free bound exact: whenever [cache_size >= MAXLIVE(order)]
    (per [Dataflow.order_liveness]) the trace contains zero spills —
    no reload and no store of a non-output, so io = compulsory
    inputs + outputs. That invariant is asserted at the end of every
    run (raises [Failure] if violated). [cache_size] must exceed the
    maximum in-degree (raises [Failure] otherwise). *)

val run_belady : Workload.t -> cache_size:int -> int list -> result
(** Offline-optimal (MIN) replacement for the given order: evict the
    resident value whose next use is farthest away. Its I/O lower
    bounds every demand-paging execution of the same order, so
    belady <= lru pointwise — and it still cannot beat the Theorem 1.1
    bound. *)

val run_rematerialize :
  ?max_flops:int -> Workload.t -> cache_size:int -> int list -> result
(** Recompute instead of spilling: only CDAG outputs are ever stored;
    a missing operand is recursively recomputed from whatever is
    available (ultimately re-loaded inputs). Trades arithmetic for I/O
    as aggressively as possible — the strategy whose futility for fast
    MM is the paper's headline. Needs a cache a few times the DAG
    depth (operand pinning along the recursion path); raises [Failure]
    when the cache is too small or when the run would exceed
    [max_flops]. The cap is charged before each compute, deep inside
    the recursive descent, so a failed run never performs more than
    [max_flops] computations. *)

val run_hybrid :
  ?max_flops:int ->
  Workload.t ->
  cache_size:int ->
  recompute:(int -> bool) ->
  int list ->
  result
(** Per-value mix of the two policies, with the same dead-first LRU
    victim selection as {!run_lru}: evicting a live value [v] spills it
    (write back + reload on demand) when [recompute v] is false, and
    drops it (rebuild recursively when next needed) when true. Inputs
    and outputs ignore
    the flag — inputs are always in slow memory, outputs always spill.
    [recompute = fun _ -> false] reproduces {!run_lru}'s trace
    exactly; this is the schedule space {!Fmm_opt.Optimizer} searches.
    Raises [Failure] like the fixed policies; same [max_flops]
    discipline as {!run_rematerialize}. *)
