(* A message-counting distributed executor — the paper's parallel
   machine (Section II-B) at the word level: P processors own disjoint
   parts of the CDAG ("owner computes"); whenever a processor needs an
   operand computed (or initially held) by another, that word is
   transferred once and cached (re-uses are free). Per-processor
   sent/received word counts are the model's I/O.

   Unlike the closed-form cost models in {!Par_model}, this executes
   the actual DAG under an explicit vertex-to-processor assignment, so
   the measured communication of a BFS-partitioned Strassen run can be
   compared directly against the memory-independent lower bound
   n^2 / P^{2/omega0} of Theorem 1.1 ([1]'s bound, which holds
   regardless of recomputation by this paper). *)

type result = {
  procs : int;
  sent : int array; (* words sent per processor *)
  received : int array;
  total_words : int; (* total transfers (= sum sent = sum received) *)
  max_words : int; (* max over processors of (sent + received) *)
}

(** Execute a workload under [assignment] (vertex -> processor).
    Inputs are "computed" where assigned (they start in their owner's
    memory). Each (value, consumer-processor) pair costs one transfer,
    counted once. *)
let run (work : Workload.t) ~procs ~assignment =
  let g = work.Workload.graph in
  let n = Workload.n_vertices work in
  if Array.length assignment <> n then
    invalid_arg "Par_exec.run: assignment length mismatch";
  Array.iter
    (fun p -> if p < 0 || p >= procs then invalid_arg "Par_exec.run: bad processor id")
    assignment;
  let sent = Array.make procs 0 and received = Array.make procs 0 in
  (* transferred.(v) = bitset over processor ids already holding v,
     allocated lazily on v's first transfer. The former [int list] made
     every probe O(|holders|), so broadcast-hot values (depth-0 operand
     arrays read by every processor) turned the census superlinear at
     high P; the bitset probe is O(1) and the memory is one byte per 8
     processors per actually-shared value. *)
  let transferred = Array.make n Bytes.empty in
  let holds value consumer =
    let b = transferred.(value) in
    Bytes.length b > 0
    && Char.code (Bytes.unsafe_get b (consumer lsr 3)) land (1 lsl (consumer land 7)) <> 0
  in
  let mark value consumer =
    if Bytes.length transferred.(value) = 0 then
      transferred.(value) <- Bytes.make ((procs + 7) / 8) '\000';
    let b = transferred.(value) in
    let i = consumer lsr 3 in
    Bytes.unsafe_set b i
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get b i) lor (1 lsl (consumer land 7))))
  in
  let order =
    match Fmm_graph.Digraph.topo_sort g with
    | Some o -> o
    | None -> invalid_arg "Par_exec.run: not a DAG"
  in
  let total = ref 0 in
  let fetch value consumer =
    let owner = assignment.(value) in
    if owner <> consumer && not (holds value consumer) then begin
      mark value consumer;
      sent.(owner) <- sent.(owner) + 1;
      received.(consumer) <- received.(consumer) + 1;
      incr total
    end
  in
  (* hoisted: [Workload.is_input work] builds its mask once per call *)
  let is_input = Workload.is_input work in
  List.iter
    (fun v ->
      if not (is_input v) then begin
        let p = assignment.(v) in
        List.iter (fun q -> fetch q p) (Fmm_graph.Digraph.in_neighbors g v)
      end)
    order;
  let max_words = ref 0 in
  for p = 0 to procs - 1 do
    max_words := max !max_words (sent.(p) + received.(p))
  done;
  { procs; sent; received; total_words = !total; max_words = !max_words }

(** The full parallel model of Section II-B: each processor has a local
    memory of [local_memory] words managed LRU; a received or computed
    word may be evicted and must then be re-fetched from its owner (the
    owner re-derives it for free locally — it owns the computation).
    With [local_memory = max_int] this degenerates to {!run}; with
    tight memory the measured traffic rises toward the memory-DEPENDENT
    regime of Theorem 1.1. Owners pin their own values' liveness: an
    owner hitting capacity just re-computes locally at zero word cost
    (communication, not arithmetic, is what this model counts). *)
let run_limited (work : Workload.t) ~procs ~assignment ~local_memory =
  if local_memory < 2 then invalid_arg "Par_exec.run_limited: memory < 2";
  let g = work.Workload.graph in
  let n = Workload.n_vertices work in
  if Array.length assignment <> n then
    invalid_arg "Par_exec.run_limited: assignment length mismatch";
  let sent = Array.make procs 0 and received = Array.make procs 0 in
  let total = ref 0 in
  (* Per-processor LRU over foreign words: a time -> value map gives the
     victim in O(log residents); a per-processor value -> time table
     (int-keyed: no tuple allocation per probe) gives residency in O(1);
     an explicit occupancy counter replaces [IntMap.cardinal], which
     made every fetch O(residents) and the whole run quadratic in
     transfers. *)
  let module IntMap = Map.Make (Int) in
  let present = Array.make procs IntMap.empty in
  let time_of : (int, int) Hashtbl.t array =
    Array.init procs (fun _ -> Hashtbl.create 64)
  in
  let occupancy = Array.make procs 0 in
  let clock = ref 0 in
  let touch p v =
    (match Hashtbl.find_opt time_of.(p) v with
    | Some t -> present.(p) <- IntMap.remove t present.(p)
    | None -> occupancy.(p) <- occupancy.(p) + 1);
    incr clock;
    Hashtbl.replace time_of.(p) v !clock;
    present.(p) <- IntMap.add !clock v present.(p)
  in
  let resident p v = Hashtbl.mem time_of.(p) v in
  let evict_lru p =
    match IntMap.min_binding_opt present.(p) with
    | None -> ()
    | Some (t, v) ->
      present.(p) <- IntMap.remove t present.(p);
      Hashtbl.remove time_of.(p) v;
      occupancy.(p) <- occupancy.(p) - 1
  in
  let fetch value consumer =
    let owner = assignment.(value) in
    if owner <> consumer then begin
      if not (resident consumer value) then begin
        sent.(owner) <- sent.(owner) + 1;
        received.(consumer) <- received.(consumer) + 1;
        incr total;
        while occupancy.(consumer) >= local_memory do
          evict_lru consumer
        done;
        touch consumer value
      end
      else touch consumer value
    end
  in
  let order =
    match Fmm_graph.Digraph.topo_sort g with
    | Some o -> o
    | None -> invalid_arg "Par_exec.run_limited: not a DAG"
  in
  let is_input = Workload.is_input work in
  List.iter
    (fun v ->
      if not (is_input v) then begin
        let p = assignment.(v) in
        List.iter (fun q -> fetch q p) (Fmm_graph.Digraph.in_neighbors g v)
      end)
    order;
  let max_words = ref 0 in
  for p = 0 to procs - 1 do
    max_words := max !max_words (sent.(p) + received.(p))
  done;
  { procs; sent; received; total_words = !total; max_words = !max_words }

(* --- assignments --- *)

(** BFS-style partition of a bilinear CDAG: the 7^k sub-trees at
    recursion depth [depth] are dealt round-robin to [procs]
    processors (each subtree's operand arrays travel with it); vertices
    above the cut (upper encoders/decoders) and the primary inputs are
    dealt round-robin by id — the "redistribution" traffic of a
    BFS-parallel Strassen.

    Ownership is FIRST-CLAIM and therefore deterministic: subtrees are
    visited in increasing [subtree_lo] order, each claiming first its
    contiguous vertex range, then its [a_in], then its [b_in] array; a
    vertex already claimed by an earlier subtree keeps its first owner
    (operand vertices shared between subtrees — e.g. at depth 0, or
    where an operand array falls inside another subtree's id range —
    previously went last-writer-wins, so the sent/received census
    depended on iteration order). Vertices no subtree claims keep the
    round-robin-by-id default. *)
let bfs_assignment cdag ~depth ~procs =
  let n = Fmm_cdag.Cdag.n_vertices cdag in
  let assignment = Array.init n (fun v -> v mod procs) in
  let claimed = Array.make n false in
  let claim p v =
    if not claimed.(v) then begin
      claimed.(v) <- true;
      assignment.(v) <- p
    end
  in
  (* the depth-bucket index already yields ascending subtree_lo order *)
  let subtrees = Fmm_cdag.Cdag.nodes_at_depth cdag ~depth in
  List.iteri
    (fun idx nd ->
      let p = idx mod procs in
      for v = nd.Fmm_cdag.Cdag.subtree_lo to nd.Fmm_cdag.Cdag.subtree_hi do
        claim p v
      done;
      Array.iter (claim p) nd.Fmm_cdag.Cdag.a_in;
      Array.iter (claim p) nd.Fmm_cdag.Cdag.b_in)
    subtrees;
  assignment

(** [bfs_assignment] computed from the implicit CDAG alone: the same
    round-robin default, the same first-claim sweep over depth-[depth]
    nodes in ascending subtree order — identical output by
    construction (operand arrays are contiguous id blocks in the
    implicit indexing). *)
let bfs_assignment_implicit imp ~depth ~procs =
  let module Im = Fmm_cdag.Implicit in
  let n = Im.n_vertices imp in
  let assignment = Array.init n (fun v -> v mod procs) in
  let claimed = Bytes.make ((n + 7) / 8) '\000' in
  let claim p v =
    if Char.code (Bytes.get claimed (v lsr 3)) land (1 lsl (v land 7)) = 0 then begin
      Bytes.set claimed (v lsr 3)
        (Char.chr (Char.code (Bytes.get claimed (v lsr 3)) lor (1 lsl (v land 7))));
      assignment.(v) <- p
    end
  in
  let idx = ref 0 in
  Im.iter_nodes_at_depth imp ~depth ~f:(fun nd ->
      let p = !idx mod procs in
      incr idx;
      for v = nd.Im.lo to nd.Im.hi do
        claim p v
      done;
      let r2 = nd.Im.r * nd.Im.r in
      for i = 0 to r2 - 1 do
        claim p (nd.Im.a_base + i)
      done;
      for i = 0 to r2 - 1 do
        claim p (nd.Im.b_base + i)
      done);
  assignment

(** Single-processor baseline: everything local, zero communication. *)
let sequential_assignment work = Array.make (Workload.n_vertices work) 0

(** Run a BFS-partitioned Strassen-family CDAG on procs = t^depth
    processors and report words/proc beside the memory-independent
    bound. *)
let strassen_bfs_experiment cdag ~depth =
  let t_rank = Fmm_bilinear.Algorithm.rank (Fmm_cdag.Cdag.base_algorithm cdag) in
  let procs = Fmm_util.Combinat.pow_int t_rank depth in
  let work = Workload.of_cdag cdag in
  let assignment = bfs_assignment cdag ~depth ~procs in
  run work ~procs ~assignment
