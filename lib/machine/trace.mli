(** Execution traces of the sequential machine model (Section II-B of
    the paper): a program is a sequence of loads, stores, evictions and
    computations over CDAG vertices. *)

type event =
  | Load of int  (** slow -> fast; one I/O read *)
  | Store of int  (** fast -> slow; one I/O write *)
  | Evict of int  (** drop from fast memory; free *)
  | Compute of int  (** all predecessors must be in fast memory *)

type t = event list

val event_to_string : event -> string

val iter : (event -> unit) -> t -> unit
(** Consume the trace in execution order (the numeric executor's entry
    point). *)

val fold : ('a -> event -> 'a) -> 'a -> t -> 'a
val length : t -> int

type counters = {
  loads : int;
  stores : int;
  computes : int;
  recomputes : int;  (** computations of an already-computed vertex *)
}

val io : counters -> int
(** loads + stores — the model's communication cost. *)

val count : t -> counters
(** Recount a trace from its events alone (a Compute of an
    already-computed vertex is a recomputation). For every scheduler
    result [r], [count r.trace = r.counters]. *)

val pp_counters : Format.formatter -> counters -> unit
