(** The segment analysis of Lemma 3.6 / Theorem 1.1 applied to concrete
    execution traces: cut a schedule into segments of [quota] first-time
    computations of V_out(SUB_H^{r x r}) and compare each segment's I/O
    against the bound r^2/2 - M. This is how the abstract counting
    argument becomes a measurable property of real schedules —
    recomputation-proof, because only first computations count. *)

type segment = {
  index : int;
  output_computations : int;
  io : int;
  loads : int;
  stores : int;
}

type analysis = {
  r : int;
  quota : int;
  segments : segment list;
  bound : int;  (** ceil(r^2/2) - M; may be nonpositive (vacuous) *)
  cache_size : int;
}

val analyze :
  Fmm_cdag.Cdag.t -> cache_size:int -> r:int -> ?quota:int -> Trace.t -> analysis
(** [quota] defaults to [4 * cache_size], the theorem's choice. *)

val analyze_events :
  n_vertices:int ->
  is_sub_output:(int -> bool) ->
  cache_size:int ->
  r:int ->
  ?quota:int ->
  ((Trace.event -> unit) -> unit) ->
  analysis
(** The shared fold under [analyze]: segment an event stream driven by
    the given iterator, with V_out membership as a predicate. *)

val analyze_implicit :
  Fmm_cdag.Implicit.t ->
  cache_size:int ->
  r:int ->
  ?quota:int ->
  unit ->
  analysis * Trace.counters
(** Segment the canonical streaming LRU execution
    ({!Stream_exec.run_lru}) of an implicit CDAG without materializing
    the trace; also returns the execution's I/O counters. Agrees with
    [analyze] over [Schedulers.run_lru] on the ascending order. *)

val full_segments : analysis -> segment list
(** Segments that reached the quota (the theorem's counting excludes
    the final partial one). *)

val min_io_full_segments : analysis -> int option

val lemma_3_6_holds : analysis -> bool
