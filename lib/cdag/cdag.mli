(** The computational DAG (Definition 2.1 of the paper) of a recursive
    bilinear algorithm: H^{n x n}. Construction mirrors the three
    phases of each recursion step — encode (copies of the Figure 2
    encoder graph), recurse (t sub-CDAGs, Mult vertices at the leaves),
    decode. Every recursion node's operand/result vertex ids are kept,
    so analyses can select V_out(SUB_H^{r x r}) and V_inp(SUB_H^{r x r})
    for any sub-problem size r (Lemmas 2.2, 3.7, 3.11). *)

type role =
  | Input_a of int  (** index into vec(A) of the full problem *)
  | Input_b of int
  | Enc_a  (** encoded-operand vertex (output of an A-side encoder) *)
  | Enc_b
  | Mult  (** leaf scalar multiplication *)
  | Dec  (** decoder linear-combination vertex *)

val role_to_string : role -> string

type node = {
  r : int;  (** sub-problem size: multiplies two r x r blocks *)
  depth : int;
  a_in : int array;  (** r^2 operand vertex ids, row-major *)
  b_in : int array;
  out : int array;  (** r^2 result vertex ids *)
  subtree_lo : int;
      (** vertices allocated by this node's recursion (its encoders,
          children, decoders — not its own operand arrays) occupy the
          contiguous id range [subtree_lo, subtree_hi] *)
  subtree_hi : int;
}

type t

val build : ?cutoff:int -> Fmm_bilinear.Algorithm.t -> n:int -> t
(** Build H^{n x n}. The base case must be square and [n] a power of
    its dimension. [cutoff] (default 1) is the hybrid threshold n0 of
    De Stefani 2019: the fast recursion is expanded only while the
    sub-problem size exceeds [cutoff]; at size [cutoff] a classical
    triple-loop sub-CDAG is emplaced (one Mult per elementary product,
    one Dec per output summing its [cutoff] products with
    coefficient 1). Must satisfy [1 <= cutoff <= n] with [cutoff] a
    power of the base dimension. [cutoff = 1] is node-for-node the
    uniform fast CDAG; [cutoff = n] is the pure classical CDAG. *)

val of_parts :
  ?cutoff:int ->
  graph:Fmm_graph.Digraph.t ->
  roles:role array ->
  n:int ->
  base:Fmm_bilinear.Algorithm.t ->
  a_inputs:int array ->
  b_inputs:int array ->
  outputs:int array ->
  nodes:node list ->
  coeffs:(int * int, int) Hashtbl.t ->
  unit ->
  t
(** Bridge constructor used by [Implicit.to_explicit]; trusts the
    caller to supply a well-formed CDAG. [cutoff] defaults to 1 (the
    uniform fast CDAG — the only shape the implicit core emits). *)

val graph : t -> Fmm_graph.Digraph.t
val role : t -> int -> role
val size : t -> int
val base_algorithm : t -> Fmm_bilinear.Algorithm.t

val cutoff : t -> int
(** The hybrid cutoff this CDAG was built with (1 = uniform fast). *)

val a_inputs : t -> int array
val b_inputs : t -> int array
val inputs : t -> int array
val outputs : t -> int array
val nodes : t -> node list
val n_vertices : t -> int
val n_edges : t -> int

val sub_nodes : t -> r:int -> node list
(** Size-r recursion nodes in ascending [subtree_lo] order, via the
    depth-bucket index (no list scan). *)

val nodes_at_depth : t -> depth:int -> node list
(** Depth-d recursion nodes in ascending [subtree_lo] order; [] when
    out of range. *)

val enclosing_node : t -> int -> node option
(** Innermost recursion node whose subtree id interval contains the
    vertex ([None] for the true inputs, which lie outside every
    subtree). Binary search over the sorted interval index plus a
    parent-chain climb — O(log #nodes + depth). *)

val sub_outputs : t -> r:int -> int list
(** V_out(SUB_H^{r x r}); Lemma 2.2: (n/r)^{log_{n0} t} r^2 elements. *)

val sub_inputs : t -> r:int -> int list
(** V_inp(SUB_H^{r x r}): the operand vertices feeding size-r
    sub-problems. *)

val edge_coeff : t -> int -> int -> int option
(** Coefficient of a linear edge; [None] on Mult operand edges. *)

val stats : t -> (string * int) list
(** Vertex/edge censuses by role. *)

(** Evaluate the CDAG as an arithmetic circuit over any ring; the
    outputs must equal vec(A . B) — the integration test that the graph
    faithfully encodes the algorithm. *)
module Eval (R : Fmm_ring.Sig_ring.S) : sig
  val run : t -> R.t array -> R.t array -> R.t array
end

module Eval_q : sig
  val run : t -> Fmm_ring.Rat.t array -> Fmm_ring.Rat.t array -> Fmm_ring.Rat.t array
end

module Eval_int : sig
  val run : t -> int array -> int array -> int array
end

val to_dot : t -> string
