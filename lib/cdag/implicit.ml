(* The recursion-indexed CDAG. See the .mli for the id layout; the
   short version is that a vertex id is decoded by walking the
   recursion tables (subtree sizes S(r), per-child chunk sizes C(r))
   from the root, peeling one tau digit per level, until the id falls
   in an encoder block, a decoder block, or a leaf Mult. Predecessors
   and successors then come straight out of the base algorithm's U/V/W
   rows and columns — the graph is never stored.

   Everything here must reproduce Cdag.build's allocation order
   bit-exactly: encA block then encB block then child subtree per tau,
   decoders last, decoder vertices in (p, q, i, j) loop order while the
   out array is row-major (a computable permutation between the two). *)

module A = Fmm_bilinear.Algorithm

type t = {
  base : A.t;
  n : int;
  levels : int; (* L: n = cutoff * n0^L *)
  cutoff : int; (* hybrid leaf size c: classical triple-loop leaves at r = c *)
  n0 : int;
  m0 : int;
  k0 : int;
  t_rank : int;
  u : int array array;
  v : int array array;
  w : int array array;
  size_at : int array; (* size_at.(d) = n / n0^d, d in 0..L; size_at.(L) = cutoff *)
  sub_size : int array; (* S(size_at.(d)): vertex count of a depth-d subtree *)
  chunk : int array; (* per-child chunk 2 h^2 + S(h) at depth d, d < L *)
  dec_off : int array; (* t_rank * chunk.(d): decoder block offset, d < L *)
  n2 : int;
  root_lo : int; (* 2 n^2 *)
  nv : int;
  ne : int;
}

let nnz_matrix m =
  Array.fold_left
    (fun acc row ->
      Array.fold_left (fun k c -> if c <> 0 then k + 1 else k) acc row)
    0 m

let create ?(cutoff = 1) (alg : A.t) ~n =
  let n0, m0, k0 = A.dims alg in
  if n0 <> m0 || m0 <> k0 then
    invalid_arg "Implicit.create: base case must be square";
  if not (Fmm_util.Combinat.is_power_of ~base:n0 n) then
    invalid_arg "Implicit.create: n must be a power of the base dimension";
  if cutoff < 1 then invalid_arg "Implicit.create: cutoff must be >= 1";
  if cutoff > n then invalid_arg "Implicit.create: cutoff must be <= n";
  if not (Fmm_util.Combinat.is_power_of ~base:n0 cutoff) then
    invalid_arg "Implicit.create: cutoff must be a power of the base dimension";
  let t_rank = A.rank alg in
  let u = A.u_matrix alg and v = A.v_matrix alg and w = A.w_matrix alg in
  let levels =
    let rec go l r = if r = cutoff then l else go (l + 1) (r / n0) in
    go 0 n
  in
  let size_at = Array.init (levels + 1) (fun d -> n / Fmm_util.Combinat.pow_int n0 d) in
  (* a leaf subtree is one Mult (cutoff 1) or a classical triple-loop
     block: per output (i, j), cutoff Mults then one Dec — c^2 (c + 1)
     vertices allocated in that interleaved order *)
  let leaf_size = if cutoff = 1 then 1 else cutoff * cutoff * (cutoff + 1) in
  let sub_size = Array.make (levels + 1) leaf_size in
  let chunk = Array.make (max levels 1) 0 in
  let dec_off = Array.make (max levels 1) 0 in
  for d = levels - 1 downto 0 do
    let r = size_at.(d) and h = size_at.(d + 1) in
    chunk.(d) <- (2 * h * h) + sub_size.(d + 1);
    dec_off.(d) <- t_rank * chunk.(d);
    sub_size.(d) <- dec_off.(d) + (r * r)
  done;
  let n2 = n * n in
  let nv = (2 * n2) + sub_size.(0) in
  (* E(leaf) = 2 for a Mult leaf; 3 c^3 for a classical leaf (2 operand
     edges per Mult, c weighted edges per Dec) *)
  let leaf_edges = if cutoff = 1 then 2 else 3 * cutoff * cutoff * cutoff in
  let ne =
    if levels = 0 then leaf_edges
    else begin
      let per_node = nnz_matrix u + nnz_matrix v + nnz_matrix w in
      let e = ref leaf_edges in
      (* E(r) = h^2 (nnz U + nnz V + nnz W) + t E(h) *)
      for d = levels - 1 downto 0 do
        let h = size_at.(d + 1) in
        e := (h * h * per_node) + (t_rank * !e)
      done;
      !e
    end
  in
  {
    base = alg;
    n;
    levels;
    cutoff;
    n0;
    m0;
    k0;
    t_rank;
    u;
    v;
    w;
    size_at;
    sub_size;
    chunk;
    dec_off;
    n2;
    root_lo = 2 * n2;
    nv;
    ne;
  }

(* the cutoff must travel with the view: dropping it silently re-read a
   hybrid CDAG as the uniform fast one, so every id past the first
   classical leaf decoded wrong (the PR 10 differential test pins this) *)
let of_cdag cdag =
  create ~cutoff:(Cdag.cutoff cdag) (Cdag.base_algorithm cdag)
    ~n:(Cdag.size cdag)

let cutoff t = t.cutoff
let size t = t.n
let base_algorithm t = t.base
let levels t = t.levels
let n_vertices t = t.nv
let n_edges t = t.ne
let n_inputs t = 2 * t.n2
let a_inputs t = Array.init t.n2 (fun i -> i)
let b_inputs t = Array.init t.n2 (fun i -> t.n2 + i)
let is_input t id = id >= 0 && id < 2 * t.n2

let is_output t id =
  if t.levels = 0 && t.cutoff > 1 then
    (* pure classical CDAG: the root IS a classical leaf, whose out
       vertices (the Decs) are interleaved with the Mults *)
    id >= t.root_lo && id < t.nv
    && (id - t.root_lo) mod (t.cutoff + 1) = t.cutoff
  else
    (* the root's out vertices are the last n^2 allocated ids (the out
       ARRAY is a permutation of them, but as a set they are the tail) *)
    id >= t.nv - t.n2 && id < t.nv

(* --- id decoding --- *)

type ctx = {
  d : int; (* depth of the node *)
  lo : int; (* subtree_lo *)
  a_base : int; (* a_in.(i) = a_base + i *)
  b_base : int;
  p_lo : int; (* parent's subtree_lo; -1 at the root *)
  tau_in : int; (* index of this node in its parent; -1 at the root *)
}

type loc =
  | L_inp_a of int
  | L_inp_b of int
  | L_enc of bool * ctx * int * int * int (* a-side?, creating node, tau, i, j *)
  | L_mult of ctx
  | L_dec of ctx * int * int * int * int (* node, p, q, i, j *)
  | L_lmult of ctx * int * int * int (* classical-leaf Mult: node, i, j, l *)
  | L_ldec of ctx * int * int (* classical-leaf Dec: node, i, j *)

let decode t id =
  if id < 0 || id >= t.nv then
    invalid_arg (Printf.sprintf "Implicit: vertex id %d out of range" id);
  if id < t.n2 then L_inp_a id
  else if id < 2 * t.n2 then L_inp_b (id - t.n2)
  else begin
    let rec go d lo a_base b_base p_lo tau_in =
      let ctx = { d; lo; a_base; b_base; p_lo; tau_in } in
      if d = t.levels then begin
        if t.cutoff = 1 then L_mult ctx
        else begin
          (* classical leaf: output (i, j)'s c Mults then its Dec *)
          let c = t.cutoff in
          let rel = id - lo in
          let opos = rel / (c + 1) and within = rel mod (c + 1) in
          let i = opos / c and j = opos mod c in
          if within < c then L_lmult (ctx, i, j, within) else L_ldec (ctx, i, j)
        end
      end
      else begin
        let rel = id - lo in
        if rel >= t.dec_off.(d) then begin
          let h = t.size_at.(d + 1) in
          let alloc = rel - t.dec_off.(d) in
          let j = alloc mod h in
          let rest = alloc / h in
          let i = rest mod h in
          let pq = rest / h in
          L_dec (ctx, pq / t.k0, pq mod t.k0, i, j)
        end
        else begin
          let c = t.chunk.(d) in
          let tau = rel / c and rem = rel mod c in
          let h = t.size_at.(d + 1) in
          let h2 = h * h in
          if rem < h2 then L_enc (true, ctx, tau, rem / h, rem mod h)
          else if rem < 2 * h2 then begin
            let rem = rem - h2 in
            L_enc (false, ctx, tau, rem / h, rem mod h)
          end
          else begin
            let child_a = lo + (tau * c) in
            go (d + 1) (child_a + (2 * h2)) child_a (child_a + h2) lo tau
          end
        end
      end
    in
    go 0 t.root_lo 0 t.n2 (-1) (-1)
  end

let role t id =
  match decode t id with
  | L_inp_a i -> Cdag.Input_a i
  | L_inp_b i -> Cdag.Input_b i
  | L_enc (true, _, _, _, _) -> Cdag.Enc_a
  | L_enc (false, _, _, _, _) -> Cdag.Enc_b
  | L_mult _ | L_lmult _ -> Cdag.Mult
  | L_dec _ | L_ldec _ -> Cdag.Dec

(* id of out-array entry [pos] (row-major) of the node at (d, lo) *)
let out_entry_id t ~d ~lo pos =
  if d = t.levels then
    if t.cutoff = 1 then lo else lo + (pos * (t.cutoff + 1)) + t.cutoff
  else begin
    let r = t.size_at.(d) and h = t.size_at.(d + 1) in
    let row = pos / r and col = pos mod r in
    let p = row / h and i = row mod h in
    let q = col / h and j = col mod h in
    lo + t.dec_off.(d) + ((((((p * t.k0) + q) * h) + i) * h) + j)
  end

(* --- predecessors --- *)

let iter_preds t id ~f =
  match decode t id with
  | L_inp_a _ | L_inp_b _ -> ()
  | L_mult ctx ->
    f ctx.a_base None;
    f ctx.b_base None
  | L_lmult (ctx, i, j, l) ->
    (* a_{il} then b_{lj}, the explicit builder's operand order *)
    let c = t.cutoff in
    f (ctx.a_base + (i * c) + l) None;
    f (ctx.b_base + (l * c) + j) None
  | L_ldec (ctx, i, j) ->
    let c = t.cutoff in
    let base = ctx.lo + ((((i * c) + j) * (c + 1))) in
    for l = 0 to c - 1 do
      f (base + l) (Some 1)
    done
  | L_enc (is_a, ctx, tau, i, j) ->
    let r = t.size_at.(ctx.d) and h = t.size_at.(ctx.d + 1) in
    let rows = if is_a then t.u else t.v in
    let cols0 = if is_a then t.m0 else t.k0 in
    let base = if is_a then ctx.a_base else ctx.b_base in
    Array.iteri
      (fun b c ->
        if c <> 0 then begin
          let row = ((b / cols0) * h) + i and col = ((b mod cols0) * h) + j in
          f (base + (row * r) + col) (Some c)
        end)
      rows.(tau)
  | L_dec (ctx, p, q, i, j) ->
    let h = t.size_at.(ctx.d + 1) in
    Array.iteri
      (fun tau c ->
        if c <> 0 then begin
          let child_lo = ctx.lo + (tau * t.chunk.(ctx.d)) + (2 * h * h) in
          f (out_entry_id t ~d:(ctx.d + 1) ~lo:child_lo ((i * h) + j)) (Some c)
        end)
      t.w.((p * t.k0) + q)

let preds t id =
  let acc = ref [] in
  iter_preds t id ~f:(fun p c -> acc := (p, c) :: !acc);
  List.rev !acc

let in_degree t id =
  let k = ref 0 in
  iter_preds t id ~f:(fun _ _ -> incr k);
  !k

let edge_coeff t src dst =
  let found = ref None in
  iter_preds t dst ~f:(fun p c -> if p = src then found := c);
  !found

(* --- successors --- *)

(* consumers of operand-array entry [pos] of the node at (d, lo):
   the node's encoder vertices whose U (A side) / V (B side) row has a
   nonzero coefficient at this entry's base-case block — or the Mult
   itself at a leaf *)
let iter_operand_succs t ~is_a ~d ~lo pos ~f =
  if d = t.levels then begin
    if t.cutoff = 1 then f lo
    else begin
      (* classical leaf: a-entry (i, l) feeds Mult (i, j, l) for every
         j; b-entry (l, j) feeds Mult (i, j, l) for every i — ascending
         consumer id either way, the builder's insertion order *)
      let c = t.cutoff in
      if is_a then begin
        let i = pos / c and l = pos mod c in
        for j = 0 to c - 1 do
          f (lo + (((i * c) + j) * (c + 1)) + l)
        done
      end
      else begin
        let l = pos / c and j = pos mod c in
        for i = 0 to c - 1 do
          f (lo + (((i * c) + j) * (c + 1)) + l)
        done
      end
    end
  end
  else begin
    let r = t.size_at.(d) and h = t.size_at.(d + 1) in
    let row = pos / r and col = pos mod r in
    let p = row / h and i = row mod h in
    let q = col / h and j = col mod h in
    let cols0 = if is_a then t.m0 else t.k0 in
    let rows = if is_a then t.u else t.v in
    let b = (p * cols0) + q in
    let off = (if is_a then 0 else h * h) + (i * h) + j in
    for tau = 0 to t.t_rank - 1 do
      if rows.(tau).(b) <> 0 then f (lo + (tau * t.chunk.(d)) + off)
    done
  end

(* consumers of out-array entry [pos] of the node at depth d whose
   parent subtree starts at p_lo: the parent's decoders with a nonzero
   W coefficient at column tau_in. Root out entries have none. *)
let iter_out_succs t ~d ~p_lo ~tau_in pos ~f =
  if d > 0 then begin
    let rc = t.size_at.(d) in
    let i = pos / rc and j = pos mod rc in
    let dec_base = p_lo + t.dec_off.(d - 1) in
    for p = 0 to t.n0 - 1 do
      for q = 0 to t.k0 - 1 do
        if t.w.((p * t.k0) + q).(tau_in) <> 0 then
          f (dec_base + (((((p * t.k0) + q) * rc) + i) * rc) + j)
      done
    done
  end

let iter_succs t id ~f =
  match decode t id with
  | L_inp_a idx -> iter_operand_succs t ~is_a:true ~d:0 ~lo:t.root_lo idx ~f
  | L_inp_b idx -> iter_operand_succs t ~is_a:false ~d:0 ~lo:t.root_lo idx ~f
  | L_enc (is_a, ctx, tau, i, j) ->
    (* this vertex is operand entry (i, j) of child [tau] *)
    let h = t.size_at.(ctx.d + 1) in
    let child_lo = ctx.lo + (tau * t.chunk.(ctx.d)) + (2 * h * h) in
    iter_operand_succs t ~is_a ~d:(ctx.d + 1) ~lo:child_lo ((i * h) + j) ~f
  | L_mult ctx -> iter_out_succs t ~d:ctx.d ~p_lo:ctx.p_lo ~tau_in:ctx.tau_in 0 ~f
  | L_lmult (ctx, i, j, _) ->
    (* sole consumer: the leaf Dec of output (i, j) *)
    let c = t.cutoff in
    f (ctx.lo + (((i * c) + j) * (c + 1)) + c)
  | L_ldec (ctx, i, j) ->
    iter_out_succs t ~d:ctx.d ~p_lo:ctx.p_lo ~tau_in:ctx.tau_in
      ((i * t.cutoff) + j) ~f
  | L_dec (ctx, p, q, i, j) ->
    let r = t.size_at.(ctx.d) and h = t.size_at.(ctx.d + 1) in
    let pos = (((p * h) + i) * r) + ((q * h) + j) in
    iter_out_succs t ~d:ctx.d ~p_lo:ctx.p_lo ~tau_in:ctx.tau_in pos ~f

let succs t id =
  let acc = ref [] in
  iter_succs t id ~f:(fun s -> acc := s :: !acc);
  List.rev !acc

let out_degree t id =
  let k = ref 0 in
  iter_succs t id ~f:(fun _ -> incr k);
  !k

let outputs t =
  Array.init t.n2 (fun pos -> out_entry_id t ~d:0 ~lo:t.root_lo pos)

(* --- recursion nodes --- *)

type node_info = {
  depth : int;
  r : int;
  lo : int;
  hi : int;
  a_base : int;
  b_base : int;
}

let depth_of_r t ~r =
  let rec go d =
    if d > t.levels then None
    else if t.size_at.(d) = r then Some d
    else go (d + 1)
  in
  if r >= 1 then go 0 else None

let node_count_at_depth t ~depth =
  if depth < 0 || depth > t.levels then
    invalid_arg "Implicit.node_count_at_depth: bad depth";
  Fmm_util.Combinat.pow_int t.t_rank depth

let node_info_at t ~d ~lo ~a_base ~b_base =
  {
    depth = d;
    r = t.size_at.(d);
    lo;
    hi = lo + t.sub_size.(d) - 1;
    a_base;
    b_base;
  }

let iter_nodes_at_depth t ~depth ~f =
  if depth < 0 || depth > t.levels then
    invalid_arg "Implicit.iter_nodes_at_depth: bad depth";
  let rec go d lo a_base b_base =
    if d = depth then f (node_info_at t ~d ~lo ~a_base ~b_base)
    else begin
      let h = t.size_at.(d + 1) in
      let h2 = h * h in
      for tau = 0 to t.t_rank - 1 do
        let child_a = lo + (tau * t.chunk.(d)) in
        go (d + 1) (child_a + (2 * h2)) child_a (child_a + h2)
      done
    end
  in
  go 0 t.root_lo 0 t.n2

let node_of_path t path =
  let depth = Array.length path in
  if depth > t.levels then invalid_arg "Implicit.node_of_path: path too deep";
  let d = ref 0 and lo = ref t.root_lo and a_base = ref 0 and b_base = ref t.n2 in
  Array.iter
    (fun tau ->
      if tau < 0 || tau >= t.t_rank then
        invalid_arg "Implicit.node_of_path: tau digit out of range";
      let h = t.size_at.(!d + 1) in
      let child_a = !lo + (tau * t.chunk.(!d)) in
      a_base := child_a;
      b_base := child_a + (h * h);
      lo := child_a + (2 * h * h);
      incr d)
    path;
  node_info_at t ~d:!d ~lo:!lo ~a_base:!a_base ~b_base:!b_base

let out_entry t nd pos = out_entry_id t ~d:nd.depth ~lo:nd.lo pos

let sub_node_count t ~r =
  match depth_of_r t ~r with
  | None -> 0
  | Some d -> node_count_at_depth t ~depth:d

let sub_output_count t ~r = sub_node_count t ~r * r * r
let sub_input_count t ~r = 2 * sub_output_count t ~r

let sub_outputs t ~r =
  match depth_of_r t ~r with
  | None -> []
  | Some depth ->
    let acc = ref [] in
    iter_nodes_at_depth t ~depth ~f:(fun nd ->
        for pos = (r * r) - 1 downto 0 do
          acc := out_entry t nd pos :: !acc
        done);
    List.rev !acc

let sub_inputs t ~r =
  match depth_of_r t ~r with
  | None -> []
  | Some depth ->
    let acc = ref [] in
    iter_nodes_at_depth t ~depth ~f:(fun nd ->
        for pos = (r * r) - 1 downto 0 do
          acc := (nd.b_base + pos) :: !acc
        done;
        for pos = (r * r) - 1 downto 0 do
          acc := (nd.a_base + pos) :: !acc
        done);
    List.rev !acc

let is_sub_output t ~r id =
  match decode t id with
  | L_mult _ -> r = 1
  | L_dec (ctx, _, _, _, _) -> t.size_at.(ctx.d) = r
  | L_ldec (ctx, _, _) -> t.size_at.(ctx.d) = r
  | _ -> false

(* --- censuses --- *)

let stats t =
  let pow = Fmm_util.Combinat.pow_int in
  let enc_each = ref 0 and dec = ref 0 in
  for d = 0 to t.levels - 1 do
    let h = t.size_at.(d + 1) and r = t.size_at.(d) in
    enc_each := !enc_each + (pow t.t_rank (d + 1) * h * h);
    dec := !dec + (pow t.t_rank d * r * r)
  done;
  let leaves = pow t.t_rank t.levels in
  let c = t.cutoff in
  let mult = leaves * (if c = 1 then 1 else c * c * c) in
  let dec = !dec + if c = 1 then 0 else leaves * c * c in
  [
    ("vertices", t.nv);
    ("edges", t.ne);
    ("inputs", 2 * t.n2);
    ("enc_a", !enc_each);
    ("enc_b", !enc_each);
    ("mult", mult);
    ("dec", dec);
    ("outputs", t.n2);
  ]

(* --- CSR expansion --- *)

type csr = {
  lo : int;
  hi : int;
  row_off : int array;
  cols : int array;
  weights : int array;
}

let csr_preds t ~lo ~hi =
  if lo < 0 || hi > t.nv || lo > hi then
    invalid_arg "Implicit.csr_preds: bad id range";
  let rows = hi - lo in
  let row_off = Array.make (rows + 1) 0 in
  for id = lo to hi - 1 do
    row_off.(id - lo + 1) <- row_off.(id - lo) + in_degree t id
  done;
  let total = row_off.(rows) in
  let cols = Array.make total 0 and weights = Array.make total 0 in
  let cursor = ref 0 in
  for id = lo to hi - 1 do
    iter_preds t id ~f:(fun p c ->
        cols.(!cursor) <- p;
        weights.(!cursor) <- (match c with Some c -> c | None -> 0);
        incr cursor)
  done;
  { lo; hi; row_off; cols; weights }

(* --- bridges to the explicit representation --- *)

let to_digraph t =
  let g = Fmm_graph.Digraph.create ~capacity:(max t.nv 1) () in
  ignore (Fmm_graph.Digraph.add_vertices g t.nv);
  (* ascending consumer id, predecessors in builder operand order:
     reproduces the explicit builder's global edge-insertion order, so
     both cons'd adjacency directions come out identical *)
  for id = 0 to t.nv - 1 do
    iter_preds t id ~f:(fun p _ -> Fmm_graph.Digraph.add_edge g p id)
  done;
  g

let to_explicit t =
  let g = Fmm_graph.Digraph.create ~capacity:(max t.nv 1) () in
  ignore (Fmm_graph.Digraph.add_vertices g t.nv);
  let coeffs = Hashtbl.create 1024 in
  for id = 0 to t.nv - 1 do
    iter_preds t id ~f:(fun p c ->
        Fmm_graph.Digraph.add_edge g p id;
        match c with Some c -> Hashtbl.replace coeffs (p, id) c | None -> ())
  done;
  let roles = Array.init t.nv (fun id -> role t id) in
  (* nodes in the builder's list order: each node is prepended at
     completion (children before parent), so replay the same DFS *)
  let nodes = ref [] in
  let rec build_node d lo a_base b_base =
    let r = t.size_at.(d) in
    (if d < t.levels then begin
       let h = t.size_at.(d + 1) in
       let h2 = h * h in
       for tau = 0 to t.t_rank - 1 do
         let child_a = lo + (tau * t.chunk.(d)) in
         build_node (d + 1) (child_a + (2 * h2)) child_a (child_a + h2)
       done
     end);
    let node =
      {
        Cdag.r;
        depth = d;
        a_in = Array.init (r * r) (fun i -> a_base + i);
        b_in = Array.init (r * r) (fun i -> b_base + i);
        out = Array.init (r * r) (fun pos -> out_entry_id t ~d ~lo pos);
        subtree_lo = lo;
        subtree_hi = lo + t.sub_size.(d) - 1;
      }
    in
    nodes := node :: !nodes
  in
  build_node 0 t.root_lo 0 t.n2;
  Cdag.of_parts ~cutoff:t.cutoff ~graph:g ~roles ~n:t.n ~base:t.base
    ~a_inputs:(a_inputs t)
    ~b_inputs:(b_inputs t) ~outputs:(outputs t) ~nodes:!nodes ~coeffs ()
