(* The computational DAG (Definition 2.1) of a recursive bilinear
   algorithm: H^{n x n} in the paper's notation. Construction mirrors
   the three phases of each recursion step:

   - an encoding stage creating, for each of the t products, the block
     entries of the encoded operands (one vertex per entry, in-edges
     from the operand block entries with nonzero U/V coefficients —
     (half)^2 parallel copies of the base encoder graph of Figure 2);
   - t recursive sub-CDAGs (at the leaves, a single Mult vertex);
   - a decoding stage producing the result block entries from the
     children's outputs via the W coefficients.

   Every recursion node is recorded with its operand/result vertex ids,
   so the analyses can select V_out(SUB_H^{r x r}) and
   V_inp(SUB_H^{r x r}) for any sub-problem size r (Lemma 2.2,
   Lemma 3.7, Lemma 3.11). *)

type role =
  | Input_a of int (* index into vec(A) of the full problem *)
  | Input_b of int
  | Enc_a (* encoded-operand vertex (an output of an A-side encoder) *)
  | Enc_b
  | Mult (* leaf scalar multiplication *)
  | Dec (* decoder linear-combination vertex *)

let role_to_string = function
  | Input_a i -> Printf.sprintf "A[%d]" i
  | Input_b i -> Printf.sprintf "B[%d]" i
  | Enc_a -> "encA"
  | Enc_b -> "encB"
  | Mult -> "mult"
  | Dec -> "dec"

type node = {
  r : int; (* sub-problem size: multiplies two r x r blocks *)
  depth : int;
  a_in : int array; (* r^2 vertex ids, row-major *)
  b_in : int array;
  out : int array; (* r^2 result vertex ids *)
  subtree_lo : int; (* vertices allocated by this node's recursion ... *)
  subtree_hi : int; (* ... occupy ids [subtree_lo, subtree_hi] *)
}

(* Interval index over the recursion nodes. Subtree id ranges form a
   laminar family, so one ascending-lo stack sweep recovers the parent
   relation, and per-subproblem selection becomes an array lookup
   instead of a scan of the full node list. *)
type node_index = {
  by_lo : node array; (* all nodes, sorted by subtree_lo *)
  parent : int array; (* index into by_lo of the enclosing node; -1 at root *)
  by_depth : node array array; (* by_depth.(d): depth-d nodes, lo-ascending *)
}

let index_nodes nodes =
  let by_lo = Array.of_list nodes in
  Array.sort (fun a b -> compare a.subtree_lo b.subtree_lo) by_lo;
  let k = Array.length by_lo in
  let parent = Array.make k (-1) in
  let stack = ref [] in
  Array.iteri
    (fun i nd ->
      let rec pop () =
        match !stack with
        | j :: rest when by_lo.(j).subtree_hi < nd.subtree_lo ->
          stack := rest;
          pop ()
        | _ -> ()
      in
      pop ();
      (match !stack with j :: _ -> parent.(i) <- j | [] -> ());
      stack := i :: !stack)
    by_lo;
  let max_depth = Array.fold_left (fun acc nd -> max acc nd.depth) 0 by_lo in
  let by_depth =
    Array.init (max_depth + 1) (fun d ->
        Array.of_seq (Seq.filter (fun nd -> nd.depth = d) (Array.to_seq by_lo)))
  in
  { by_lo; parent; by_depth }

type t = {
  graph : Fmm_graph.Digraph.t;
  roles : role array;
  n : int;
  base : Fmm_bilinear.Algorithm.t;
  cutoff : int; (* hybrid cutoff n0: fast recursion stops at r = cutoff *)
  a_inputs : int array; (* n^2 ids *)
  b_inputs : int array;
  outputs : int array; (* n^2 ids *)
  nodes : node list; (* every recursion node, all depths *)
  coeffs : (int * int, int) Hashtbl.t; (* (src, dst) -> edge coefficient *)
  index : node_index;
}

let graph t = t.graph
let role t v = t.roles.(v)
let size t = t.n
let base_algorithm t = t.base
let cutoff t = t.cutoff
let a_inputs t = t.a_inputs
let b_inputs t = t.b_inputs
let inputs t = Array.append t.a_inputs t.b_inputs
let outputs t = t.outputs
let nodes t = t.nodes

let n_vertices t = Fmm_graph.Digraph.n_vertices t.graph
let n_edges t = Fmm_graph.Digraph.n_edges t.graph

(** Build H^{n x n} for a square-base algorithm. [n] must be a power of
    the base dimension. [cutoff] is the hybrid threshold n0 of
    De Stefani 2019: the fast recursion is expanded only while the
    sub-problem size exceeds [cutoff]; at size [cutoff] a classical
    triple-loop sub-CDAG is emplaced instead (one Mult per elementary
    product a_{il} b_{lj}, one Dec per output summing its r products
    with coefficient 1). [cutoff = 1] (the default) is exactly the
    uniform fast CDAG; [cutoff = n] is the pure classical CDAG. *)
let build ?(cutoff = 1) (alg : Fmm_bilinear.Algorithm.t) ~n =
  let n0, m0, k0 = Fmm_bilinear.Algorithm.dims alg in
  if n0 <> m0 || m0 <> k0 then
    invalid_arg "Cdag.build: base case must be square";
  if not (Fmm_util.Combinat.is_power_of ~base:n0 n) then
    invalid_arg "Cdag.build: n must be a power of the base dimension";
  if cutoff < 1 then invalid_arg "Cdag.build: cutoff must be >= 1";
  if cutoff > n then invalid_arg "Cdag.build: cutoff must be <= n";
  if not (Fmm_util.Combinat.is_power_of ~base:n0 cutoff) then
    invalid_arg "Cdag.build: cutoff must be a power of the base dimension";
  let t_rank = Fmm_bilinear.Algorithm.rank alg in
  let u = Fmm_bilinear.Algorithm.u_matrix alg in
  let v = Fmm_bilinear.Algorithm.v_matrix alg in
  let w = Fmm_bilinear.Algorithm.w_matrix alg in
  let g = Fmm_graph.Digraph.create ~capacity:1024 () in
  let roles = Fmm_util.Vec.create ~dummy:Mult in
  let nodes = ref [] in
  let coeffs = Hashtbl.create 1024 in
  let new_vertex role =
    let id = Fmm_graph.Digraph.add_vertex g in
    Fmm_util.Vec.push roles role;
    id
  in
  let add_weighted_edge src dst c =
    Fmm_graph.Digraph.add_edge g src dst;
    Hashtbl.replace coeffs (src, dst) c
  in
  (* Block (p,q) entry (i,j) of a row-major r x r id array. *)
  let block_entry ids r half p q i j = ids.(((p * half) + i) * r + ((q * half) + j)) in
  let rec build_node depth r a_in b_in =
    let subtree_lo = Fmm_graph.Digraph.n_vertices g in
    if r = 1 then begin
      let m = new_vertex Mult in
      Fmm_graph.Digraph.add_edge g a_in.(0) m;
      Fmm_graph.Digraph.add_edge g b_in.(0) m;
      let node =
        { r; depth; a_in; b_in; out = [| m |]; subtree_lo; subtree_hi = m }
      in
      nodes := node :: !nodes;
      node
    end
    else if r <= cutoff then begin
      (* Classical triple-loop leaf (the hybrid base case): the block
         product is the plain bilinear form c_{ij} = sum_l a_{il}
         b_{lj}. Allocation order — the r Mult vertices of an output
         followed by its Dec — is topological, which the recursive DFS
         relies on when replaying a leaf as an id range. *)
      let out = Array.make (r * r) (-1) in
      for i = 0 to r - 1 do
        for j = 0 to r - 1 do
          let prods =
            Array.init r (fun l ->
                let m = new_vertex Mult in
                Fmm_graph.Digraph.add_edge g a_in.((i * r) + l) m;
                Fmm_graph.Digraph.add_edge g b_in.((l * r) + j) m;
                m)
          in
          let vtx = new_vertex Dec in
          Array.iter (fun m -> add_weighted_edge m vtx 1) prods;
          out.((i * r) + j) <- vtx
        done
      done;
      let node =
        {
          r;
          depth;
          a_in;
          b_in;
          out;
          subtree_lo;
          subtree_hi = Fmm_graph.Digraph.n_vertices g - 1;
        }
      in
      nodes := node :: !nodes;
      node
    end
    else begin
      let half = r / n0 in
      let children =
        Array.init t_rank (fun tau ->
            let enc_a =
              Array.init (half * half) (fun idx ->
                  let i = idx / half and j = idx mod half in
                  let vtx = new_vertex Enc_a in
                  Array.iteri
                    (fun b c ->
                      if c <> 0 then
                        add_weighted_edge
                          (block_entry a_in r half (b / m0) (b mod m0) i j)
                          vtx c)
                    u.(tau);
                  vtx)
            in
            let enc_b =
              Array.init (half * half) (fun idx ->
                  let i = idx / half and j = idx mod half in
                  let vtx = new_vertex Enc_b in
                  Array.iteri
                    (fun b c ->
                      if c <> 0 then
                        add_weighted_edge
                          (block_entry b_in r half (b / k0) (b mod k0) i j)
                          vtx c)
                    v.(tau);
                  vtx)
            in
            build_node (depth + 1) half enc_a enc_b)
      in
      let out = Array.make (r * r) (-1) in
      for p = 0 to n0 - 1 do
        for q = 0 to k0 - 1 do
          for i = 0 to half - 1 do
            for j = 0 to half - 1 do
              let vtx = new_vertex Dec in
              Array.iteri
                (fun tau c ->
                  if c <> 0 then
                    add_weighted_edge
                      (children.(tau).out.((i * half) + j))
                      vtx c)
                w.((p * k0) + q);
              out.(((p * half) + i) * r + ((q * half) + j)) <- vtx
            done
          done
        done
      done;
      let node =
        {
          r;
          depth;
          a_in;
          b_in;
          out;
          subtree_lo;
          subtree_hi = Fmm_graph.Digraph.n_vertices g - 1;
        }
      in
      nodes := node :: !nodes;
      node
    end
  in
  let a_inputs = Array.init (n * n) (fun i -> new_vertex (Input_a i)) in
  let b_inputs = Array.init (n * n) (fun i -> new_vertex (Input_b i)) in
  let root = build_node 0 n a_inputs b_inputs in
  {
    graph = g;
    roles = Fmm_util.Vec.to_array roles;
    n;
    base = alg;
    cutoff;
    a_inputs;
    b_inputs;
    outputs = root.out;
    nodes = !nodes;
    coeffs;
    index = index_nodes !nodes;
  }

(** Bridge constructor for [Implicit.to_explicit]: assembles a [t] from
    parts produced by implicit arithmetic. Trusts the caller to supply
    a well-formed CDAG (the differential tests compare the result with
    [build] field by field). *)
let of_parts ?(cutoff = 1) ~graph ~roles ~n ~base ~a_inputs ~b_inputs
    ~outputs ~nodes ~coeffs () =
  {
    graph;
    roles;
    n;
    base;
    cutoff;
    a_inputs;
    b_inputs;
    outputs;
    nodes;
    coeffs;
    index = index_nodes nodes;
  }

(* --- sub-CDAG selectors (SUB_H^{r x r}) --- *)

(** Depth-d recursion nodes in ascending [subtree_lo] order; [] when
    out of range. O(1) bucket lookup. *)
let nodes_at_depth t ~depth =
  if depth < 0 || depth >= Array.length t.index.by_depth then []
  else Array.to_list t.index.by_depth.(depth)

(* All nodes at one depth share the same r, so size-r selection is the
   depth-bucket lookup (previously a linear scan of the full list). *)
let sub_nodes t ~r =
  let buckets = t.index.by_depth in
  let rec go d =
    if d >= Array.length buckets then []
    else if Array.length buckets.(d) > 0 && buckets.(d).(0).r = r then
      Array.to_list buckets.(d)
    else go (d + 1)
  in
  go 0

(** Innermost recursion node whose subtree interval contains [v], or
    [None] (true inputs lie outside every subtree). Binary search for
    the greatest [subtree_lo <= v], then — if that node's interval ends
    before [v] — climb the parent links: laminarity puts [v] inside an
    ancestor whenever it is inside anything. O(log #nodes + depth). *)
let enclosing_node t v =
  let by_lo = t.index.by_lo in
  let k = Array.length by_lo in
  if k = 0 || v < by_lo.(0).subtree_lo then None
  else begin
    (* greatest index with subtree_lo <= v *)
    let lo = ref 0 and hi = ref (k - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if by_lo.(mid).subtree_lo <= v then lo := mid else hi := mid - 1
    done;
    let rec climb i =
      if i < 0 then None
      else if by_lo.(i).subtree_hi >= v then Some by_lo.(i)
      else climb t.index.parent.(i)
    in
    climb !lo
  end

(** V_out(SUB_H^{r x r}): all output vertices of size-r sub-problems.
    Lemma 2.2: this has (n/r)^{log_{n0} t} * r^2 elements. *)
let sub_outputs t ~r =
  List.concat_map (fun nd -> Array.to_list nd.out) (sub_nodes t ~r)

(** V_inp(SUB_H^{r x r}): the operand vertices feeding size-r
    sub-problems (encoded block entries, or the true inputs at r = n). *)
let sub_inputs t ~r =
  List.concat_map
    (fun nd -> Array.to_list nd.a_in @ Array.to_list nd.b_in)
    (sub_nodes t ~r)

(** Edge coefficient of a linear edge (None on the operand edges into
    Mult vertices, which carry no coefficient). *)
let edge_coeff t src dst = Hashtbl.find_opt t.coeffs (src, dst)

let count_role t role_pred =
  Array.fold_left (fun acc r -> if role_pred r then acc + 1 else acc) 0 t.roles

let stats t =
  let count p = count_role t p in
  [
    ("vertices", n_vertices t);
    ("edges", n_edges t);
    ("inputs", count (function Input_a _ | Input_b _ -> true | _ -> false));
    ("enc_a", count (function Enc_a -> true | _ -> false));
    ("enc_b", count (function Enc_b -> true | _ -> false));
    ("mult", count (function Mult -> true | _ -> false));
    ("dec", count (function Dec -> true | _ -> false));
    ("outputs", Array.length t.outputs);
  ]

(* --- semantic evaluation --- *)

module Eval (R : Fmm_ring.Sig_ring.S) = struct
  (** Evaluate the CDAG as an arithmetic circuit: inputs from vec(A) /
      vec(B), linear vertices sum coefficient-weighted in-edges, Mult
      vertices multiply their two operands. Returns the values at the
      output vertices, which must equal vec(A . B) — the integration
      test that the graph faithfully encodes the algorithm. *)
  let run t (a_vals : R.t array) (b_vals : R.t array) =
    if Array.length a_vals <> t.n * t.n || Array.length b_vals <> t.n * t.n
    then invalid_arg "Cdag.Eval.run: input length mismatch";
    let order =
      match Fmm_graph.Digraph.topo_sort t.graph with
      | Some o -> o
      | None -> failwith "Cdag.Eval.run: CDAG has a cycle"
    in
    let values = Array.make (n_vertices t) R.zero in
    List.iter
      (fun vtx ->
        match t.roles.(vtx) with
        | Input_a i -> values.(vtx) <- a_vals.(i)
        | Input_b i -> values.(vtx) <- b_vals.(i)
        | Enc_a | Enc_b | Dec ->
          let acc = ref R.zero in
          List.iter
            (fun src ->
              let c = Hashtbl.find t.coeffs (src, vtx) in
              acc := R.add !acc (R.mul (R.of_int c) values.(src)))
            (Fmm_graph.Digraph.in_neighbors t.graph vtx);
          values.(vtx) <- !acc
        | Mult -> (
          match Fmm_graph.Digraph.in_neighbors t.graph vtx with
          | [ x; y ] -> values.(vtx) <- R.mul values.(x) values.(y)
          | _ -> failwith "Cdag.Eval.run: Mult vertex without 2 operands"))
      order;
    Array.map (fun vtx -> values.(vtx)) t.outputs
end

module Eval_q = Eval (Fmm_ring.Rat.Field)
module Eval_int = Eval (Fmm_ring.Sig_ring.Int)

let to_dot t =
  let label v = Printf.sprintf "%d:%s" v (role_to_string t.roles.(v)) in
  let attrs v =
    match t.roles.(v) with
    | Input_a _ -> "shape=box, style=filled, fillcolor=lightblue"
    | Input_b _ -> "shape=box, style=filled, fillcolor=lightgreen"
    | Enc_a | Enc_b -> "shape=ellipse"
    | Mult -> "shape=diamond, style=filled, fillcolor=gold"
    | Dec -> "shape=ellipse, style=filled, fillcolor=salmon"
  in
  Fmm_graph.Digraph.to_dot ~name:"H" ~label ~attrs t.graph
