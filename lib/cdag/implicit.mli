(** The recursion-indexed (implicit) CDAG of a recursive bilinear
    algorithm: the same graph H^{n x n} that [Cdag.build] materializes,
    represented by arithmetic alone. A vertex is a plain [int] — its id
    in the explicit builder's DFS allocation order — and decoding that
    int recovers (role, digit path through the recursion levels,
    base-case position), from which predecessors and successors are
    computed out of the base algorithm's U/V/W coefficient structure.
    Nothing adjacency-shaped is ever stored; only caller-requested id
    ranges are expanded into flat CSR arrays.

    Equivalence contract: for every [alg] and [n], vertex ids, roles,
    edges (with coefficients and per-vertex operand order), recursion
    nodes and input/output arrays agree bit-exactly with
    [Cdag.build alg ~n]. The differential suite in [test_implicit]
    checks this for every registered square-base algorithm at all
    feasible sizes; the closed-form censuses make the same queries
    answerable at n = 256..1024 where the explicit graph (~40M..2G
    vertices) cannot be built.

    Id layout (the explicit builder's allocation order):
    - ids [0, n^2): [Input_a], row-major;
    - ids [n^2, 2 n^2): [Input_b];
    - the root subtree. A node of size r > 1 with subtree base [lo]
      lays out, for tau = 0..t-1, a chunk of C(r) = 2 (r/n0)^2 + S(r/n0)
      ids — encA block (row-major), encB block, child subtree — and
      then its r^2 decoder vertices, allocated in (p, q, i, j) loop
      order (NOT out-array row-major order; the out-array position
      (p h + i) r + (q h + j) maps to allocation index
      ((p k0 + q) h + i) h + j). A node of size 1 is a single Mult.

    Ascending id order is a topological order of the graph (every edge
    goes from a lower to a higher id), which the streaming analyses in
    [Fmm_machine.Stream_exec] and [Fmm_analysis.Dataflow] exploit as a
    canonical schedule. *)

type t

val create : ?cutoff:int -> Fmm_bilinear.Algorithm.t -> n:int -> t
(** Same preconditions as [Cdag.build]: square base, [n] a power of the
    base dimension, [cutoff] a power of the base dimension in [1, n].
    O(log n) time and space. With [cutoff = c > 1] the fast recursion
    stops at size-c nodes and each leaf is the classical triple-loop
    sub-CDAG of [Cdag.build ~cutoff]: per output (i, j) in row-major
    order, c Mult vertices (l = 0..c-1, operands a_{il}, b_{lj}) then
    one Dec summing them with coefficient 1 — c^2 (c + 1) ids per leaf
    in that interleaved allocation order. *)

val of_cdag : Cdag.t -> t
(** The implicit view of an explicitly built CDAG (same base, same n,
    same hybrid cutoff). *)

val cutoff : t -> int
(** The hybrid leaf size (1 = uniform fast CDAG). *)

val size : t -> int
val base_algorithm : t -> Fmm_bilinear.Algorithm.t

val levels : t -> int
(** L with n = n0^L. *)

val n_vertices : t -> int
val n_edges : t -> int

val n_inputs : t -> int
(** 2 n^2; input ids are exactly [0, n_inputs). *)

val a_inputs : t -> int array
val b_inputs : t -> int array

val outputs : t -> int array
(** In out-array (row-major result) order, like [Cdag.outputs]. *)

val is_input : t -> int -> bool
val is_output : t -> int -> bool

val role : t -> int -> Cdag.role

val in_degree : t -> int -> int
val out_degree : t -> int -> int

val iter_preds : t -> int -> f:(int -> int option -> unit) -> unit
(** Predecessors with edge coefficients ([None] on Mult operand edges),
    in the explicit builder's insertion order (ascending base-matrix
    column / ascending tau; Mult: A operand then B operand). Note
    [Digraph.in_neighbors] of the explicit graph shows the reverse. *)

val preds : t -> int -> (int * int option) list

val iter_succs : t -> int -> f:(int -> unit) -> unit
(** Successors, in the explicit builder's edge-insertion order
    (ascending consumer id). *)

val succs : t -> int -> int list

val edge_coeff : t -> int -> int -> int option
(** Coefficient of edge (src, dst); [None] for Mult operand edges and
    for non-edges — the same observable behaviour as
    [Cdag.edge_coeff]. *)

(* --- recursion nodes (SUB_H^{r x r} selection) --- *)

type node_info = {
  depth : int;
  r : int;
  lo : int;  (** subtree ids occupy [lo, hi], as in [Cdag.node] *)
  hi : int;
  a_base : int;  (** operand arrays are contiguous: a_in.(i) = a_base + i *)
  b_base : int;
}

val depth_of_r : t -> r:int -> int option
(** The recursion depth whose nodes have size [r], if any. *)

val node_count_at_depth : t -> depth:int -> int
(** t^depth. *)

val iter_nodes_at_depth : t -> depth:int -> f:(node_info -> unit) -> unit
(** Nodes at [depth] in ascending [lo] (digit-path lexicographic)
    order. *)

val node_of_path : t -> int array -> node_info
(** The node reached by the given tau digits from the root ([ [||] ] is
    the root). Raises [Invalid_argument] on a bad path. *)

val out_entry : t -> node_info -> int -> int
(** [out_entry t nd pos] is the id of entry [pos] (row-major) of the
    node's out array; [a_base + pos] / [b_base + pos] are the operand
    entries. *)

val sub_node_count : t -> r:int -> int
val sub_output_count : t -> r:int -> int
(** |V_out(SUB_H^{r x r})| = t^d r^2 (Lemma 2.2). 0 for invalid r. *)

val sub_input_count : t -> r:int -> int
(** |V_inp(SUB_H^{r x r})| = 2 t^d r^2. 0 for invalid r. *)

val sub_outputs : t -> r:int -> int list
(** Enumerated (ascending node lo, then out-array position); equals
    [Cdag.sub_outputs] as a set. Only sensible when the count is
    small. *)

val sub_inputs : t -> r:int -> int list

val is_sub_output : t -> r:int -> int -> bool
(** O(log n) membership test in V_out(SUB_H^{r x r}) — the predicate
    the streaming segment analysis runs on. *)

(* --- censuses --- *)

val stats : t -> (string * int) list
(** Same key set and values as [Cdag.stats], from closed-form
    recurrences (O(log n)). *)

(* --- CSR expansion of requested levels --- *)

type csr = {
  lo : int;  (** rows cover ids [lo, hi) *)
  hi : int;
  row_off : int array;  (** length hi - lo + 1 *)
  cols : int array;  (** predecessor ids, builder operand order *)
  weights : int array;  (** edge coefficients; 0 on Mult operand edges *)
}

val csr_preds : t -> lo:int -> hi:int -> csr
(** Flat-array predecessor adjacency for ids in [lo, hi). A recursion
    node's subtree is a contiguous id range, so expanding a level means
    expanding the ranges from [iter_nodes_at_depth]. *)

(* --- bridges --- *)

val to_digraph : t -> Fmm_graph.Digraph.t
(** Full expansion; edge insertion order matches the explicit builder
    exactly (so both adjacency list directions agree). *)

val to_explicit : t -> Cdag.t
(** Reconstruct the explicit [Cdag.t] from implicit arithmetic alone
    (not via [Cdag.build]) — the differential tests compare the two. *)
