(* Encoder and decoder bipartite graphs of a bilinear algorithm — the
   objects of Lemmas 3.1-3.3 and Figure 2. For the A-side encoder of a
   2x2-base algorithm, X is the 4 input arguments and Y the 7 encoded
   operands; (x, y) is an edge iff operand y uses input x with a
   nonzero coefficient. *)

type side = A_side | B_side

(** The encoder bipartite graph of [alg] for the chosen operand side.
    X = input entries (n*m or m*k of them), Y = the t encoded operands. *)
let encoder_bipartite (alg : Fmm_bilinear.Algorithm.t) side =
  let rows =
    match side with
    | A_side -> Fmm_bilinear.Algorithm.u_matrix alg
    | B_side -> Fmm_bilinear.Algorithm.v_matrix alg
  in
  let t = Array.length rows in
  let nx = Array.length rows.(0) in
  let edges = ref [] in
  Array.iteri
    (fun y row ->
      Array.iteri (fun x c -> if c <> 0 then edges := (x, y) :: !edges) row)
    rows;
  Fmm_graph.Matching.make_bipartite ~nx ~ny:t !edges

(** The decoder bipartite graph: X = the t products, Y = the n*k
    outputs; (p, o) is an edge iff output o uses product p. *)
let decoder_bipartite (alg : Fmm_bilinear.Algorithm.t) =
  let w = Fmm_bilinear.Algorithm.w_matrix alg in
  let ny = Array.length w in
  let t = Array.length w.(0) in
  let edges = ref [] in
  Array.iteri
    (fun o row ->
      Array.iteri (fun p c -> if c <> 0 then edges := (p, o) :: !edges) row)
    w;
  (* X = products, Y = outputs: build with nx = t. *)
  Fmm_graph.Matching.make_bipartite ~nx:t ~ny !edges

(** Inverse adjacency of a bipartite graph: for every y, the sorted set
    of X-side neighbors. One O(nx + E) sweep — the bipartite structure
    only stores adjacency by x, and testing [List.mem y ys] per x
    (the previous implementation) cost O(E) per queried y, quadratic
    over all ys on dense encoder rows. *)
let neighbors_by_y (g : Fmm_graph.Matching.bipartite) =
  let acc = Array.make (max g.Fmm_graph.Matching.ny 1) [] in
  Array.iteri
    (fun x ys -> List.iter (fun y -> acc.(y) <- x :: acc.(y)) ys)
    g.Fmm_graph.Matching.adj;
  Array.map (List.sort_uniq compare) acc

(** Neighbor set of encoded operand [y] (paper's N(y)): the input
    entries it depends on. *)
let neighbors_of_y (g : Fmm_graph.Matching.bipartite) y = (neighbors_by_y g).(y)

(** Neighbor sets for a set of Y vertices (union). The inverse
    adjacency is built once and shared across the queried ys. *)
let neighbors_of_ys g ys =
  let inv = neighbors_by_y g in
  List.sort_uniq compare (List.concat_map (fun y -> inv.(y)) ys)

(** The encoder as a standalone 2-layer digraph (for DOT export /
    Figure 2 rendering): vertex ids 0..nx-1 are X, nx..nx+ny-1 are Y. *)
let encoder_digraph (alg : Fmm_bilinear.Algorithm.t) side =
  let bip = encoder_bipartite alg side in
  let g = Fmm_graph.Digraph.create () in
  let nx = bip.Fmm_graph.Matching.nx and ny = bip.Fmm_graph.Matching.ny in
  ignore (Fmm_graph.Digraph.add_vertices g (nx + ny));
  Array.iteri
    (fun x ys ->
      List.iter (fun y -> Fmm_graph.Digraph.add_edge g x (nx + y)) ys)
    bip.Fmm_graph.Matching.adj;
  g
