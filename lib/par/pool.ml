(* A fixed-size Domain work pool over the stdlib only (no domainslib).
   The repo's unit of parallelism is an *independent deterministic
   task* — a lemma sample, a registry experiment, an algorithm's
   battery — so the one primitive everything shares is an order-
   preserving parallel [map]. Tasks are claimed from a shared atomic
   counter (work stealing degenerates to striping for uniform work),
   results land in their input slot, and exceptions are re-raised in
   input order, so callers observe exactly the sequential semantics:
   [map ~jobs:1] and [map ~jobs:64] return (or raise) the same thing.

   Determinism contract: [f] must not communicate between tasks. Under
   that contract the result is independent of [jobs] and of the OS
   schedule, which is what lets `fmmlab bench --jobs N` emit
   byte-identical reports at any N. *)

type 'b slot = Done of 'b | Failed of exn * Printexc.raw_backtrace | Pending

(* A task may classify its own failure as retryable by raising
   [Transient]: the worker that claimed it re-runs it in place, up to
   [retries] extra attempts, before the failure is recorded for the
   usual smallest-index re-raise. Retries are per task, immediate, and
   happen inside the claiming worker, so they change neither result
   order nor the determinism contract: a task that deterministically
   raises [Transient] fails identically at every [jobs]. *)
exception Transient of string

let with_retries ~retries f x =
  let rec attempt k =
    match f x with
    | v -> v
    | exception Transient _ when k < retries -> attempt (k + 1)
  in
  attempt 0

let sequential_map f xs =
  (* explicit left-to-right evaluation: the jobs = 1 path must raise the
     first exception by index, same as the pool path *)
  List.rev (List.fold_left (fun acc x -> f x :: acc) [] xs)

let map ?(retries = 0) ~jobs f xs =
  if jobs < 1 then invalid_arg "Fmm_par.Pool.map: jobs < 1";
  if retries < 0 then invalid_arg "Fmm_par.Pool.map: retries < 0";
  let f = if retries = 0 then f else with_retries ~retries f in
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when jobs = 1 -> sequential_map f xs
  | _ ->
    let items = Array.of_list xs in
    let n = Array.length items in
    let results = Array.make n Pending in
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (results.(i) <-
          (match f items.(i) with
          | v -> Done v
          | exception e -> Failed (e, Printexc.get_raw_backtrace ())));
        worker ()
      end
    in
    (* the calling domain is worker #1; spawn the rest *)
    let domains = List.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    Array.to_list
      (Array.map
         (function
           | Done v -> v
           | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
           | Pending -> assert false (* every index < n was claimed *))
         results)

let jobs_from_env ?(var = "FMMLAB_JOBS") ?(default = 1) () =
  match Sys.getenv_opt var with
  | None -> default
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> j
    | _ -> default)
