(* A fixed-size Domain work pool over the stdlib only (no domainslib).
   The repo's unit of parallelism is an *independent deterministic
   task* — a lemma sample, a registry experiment, an algorithm's
   battery — so the one primitive everything shares is an order-
   preserving parallel [map]. Tasks are claimed from a shared atomic
   counter (work stealing degenerates to striping for uniform work),
   results land in their input slot, and exceptions are re-raised in
   input order, so callers observe exactly the sequential semantics:
   [map ~jobs:1] and [map ~jobs:64] return (or raise) the same thing.

   Determinism contract: [f] must not communicate between tasks. Under
   that contract the result is independent of [jobs] and of the OS
   schedule, which is what lets `fmmlab bench --jobs N` emit
   byte-identical reports at any N. *)

type 'b slot = Done of 'b | Failed of exn * Printexc.raw_backtrace | Pending

let sequential_map f xs =
  (* explicit left-to-right evaluation: the jobs = 1 path must raise the
     first exception by index, same as the pool path *)
  List.rev (List.fold_left (fun acc x -> f x :: acc) [] xs)

let map ~jobs f xs =
  if jobs < 1 then invalid_arg "Fmm_par.Pool.map: jobs < 1";
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when jobs = 1 -> sequential_map f xs
  | _ ->
    let items = Array.of_list xs in
    let n = Array.length items in
    let results = Array.make n Pending in
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (results.(i) <-
          (match f items.(i) with
          | v -> Done v
          | exception e -> Failed (e, Printexc.get_raw_backtrace ())));
        worker ()
      end
    in
    (* the calling domain is worker #1; spawn the rest *)
    let domains = List.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    Array.to_list
      (Array.map
         (function
           | Done v -> v
           | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
           | Pending -> assert false (* every index < n was claimed *))
         results)

let jobs_from_env ?(var = "FMMLAB_JOBS") ?(default = 1) () =
  match Sys.getenv_opt var with
  | None -> default
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> j
    | _ -> default)
