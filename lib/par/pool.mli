(** A fixed-size [Domain] work pool (stdlib only) whose single
    primitive is an order-preserving parallel map. Tasks must be
    independent — no communication between invocations of [f] — and
    under that contract the observable behaviour is identical at every
    [jobs], which is the foundation of the repo-wide guarantee that
    reports are byte-identical at any [--jobs]. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] applies [f] to every element of [xs] on at most
    [jobs] domains (the calling domain included) and returns the
    results in input order. If any task raises, the exception of the
    *smallest failing index* is re-raised with its original backtrace
    — exactly what sequential left-to-right [List.map] would have
    raised first. [jobs = 1] runs plain sequential code with no domain
    spawned. Raises [Invalid_argument] on [jobs < 1]. [jobs] beyond
    [List.length xs] is harmless: surplus workers exit immediately. *)

val jobs_from_env : ?var:string -> ?default:int -> unit -> int
(** Parallelism level from the environment ([FMMLAB_JOBS] by default):
    the variable's value if it parses as an int >= 1, else [default]
    (itself defaulting to 1, sequential). *)
