(** A fixed-size [Domain] work pool (stdlib only) whose single
    primitive is an order-preserving parallel map. Tasks must be
    independent — no communication between invocations of [f] — and
    under that contract the observable behaviour is identical at every
    [jobs], which is the foundation of the repo-wide guarantee that
    reports are byte-identical at any [--jobs]. *)

exception Transient of string
(** A task raises [Transient] to mark its failure as retryable (a
    simulated crash, a flaky external resource). Any other exception is
    final immediately. *)

val map : ?retries:int -> jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] applies [f] to every element of [xs] on at most
    [jobs] domains (the calling domain included) and returns the
    results in input order. If any task raises, the exception of the
    *smallest failing index* is re-raised with its original backtrace
    — exactly what sequential left-to-right [List.map] would have
    raised first. [jobs = 1] runs plain sequential code with no domain
    spawned. Raises [Invalid_argument] on [jobs < 1] or [retries < 0].
    [jobs] beyond [List.length xs] is harmless: surplus workers exit
    immediately.

    [retries] (default 0) bounds per-task crash recovery: a task that
    raises {!Transient} is re-run immediately, in the worker that
    claimed it, up to [retries] extra attempts; only the attempt that
    exhausts the budget records the failure. Retried tasks keep their
    input slot, so results stay in input order and the smallest-index
    re-raise rule is unchanged — deterministic at every [jobs]. *)

val jobs_from_env : ?var:string -> ?default:int -> unit -> int
(** Parallelism level from the environment ([FMMLAB_JOBS] by default):
    the variable's value if it parses as an int >= 1, else [default]
    (itself defaulting to 1, sequential). *)
