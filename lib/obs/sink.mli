(** Sinks for experiment outcomes: ASCII tables (through
    {!Fmm_util.Table}, the classic bench output), the machine-readable
    [BENCH_*.json] report, and the baseline regression diff. Outcomes
    are pure data; every formatting decision lives here. *)

val tables_of_outcome : Experiment.outcome -> Fmm_util.Table.t list
(** One table per row section (first-appearance order): columns are the
    union of param keys then metric keys, string/bool columns
    left-aligned, missing cells rendered ["-"]. *)

val print_outcome : ?wall:bool -> Experiment.outcome -> unit
(** Section banner, tables, notes; [wall] appends the run time. *)

val schema_version : int

val strip_volatile : Experiment.outcome -> Experiment.outcome
(** Zero the wall clock and drop the [_s]-suffixed timer scalars — the
    only report fields that legitimately differ between two runs of
    the same experiment. What remains is deterministic at any
    [--jobs]: the differential determinism suite compares reports of
    stripped outcomes byte-for-byte. *)

val report_to_json :
  ?generator:string -> created:float -> Experiment.outcome list -> Json.t
(** The [BENCH_*.json] document: [schema_version], [generator],
    [created_unix], and per experiment its id, title, wall clock,
    scalars, rows (section/params/metrics) and notes. *)

val outcomes_of_json : Json.t -> (Experiment.outcome list, string) result
(** Load a report back (for baseline diffing). Rejects missing or
    mismatched [schema_version]. *)

(** The result of diffing two runs. *)
type diff = {
  lines : string list;
  n_compared : int;
  n_regressions : int;
  n_improvements : int;
  n_unmatched : int;
}

val diff :
  tolerance:float ->
  ?time_tolerance:float ->
  baseline:Experiment.outcome list ->
  current:Experiment.outcome list ->
  unit ->
  diff
(** Rows are matched on (experiment id, section, sorted params) and
    their ["ratio"] metrics compared: current above baseline by more
    than [tolerance] (relative) is a regression, below it an
    improvement. Per-experiment wall clocks are gated only when
    [time_tolerance] is given — wall clocks are load-sensitive, ratios
    are not. *)
