(* Named experiments: the unit of the bench harness. Each experiment
   owns an id (T1, RC, PERF, ...), a human title, and a body that
   writes rows/notes/scalars into a fresh Metrics registry. Running one
   yields an [outcome] — structured data with no formatting decisions
   taken — which the sinks render as ASCII tables, JSON, or a baseline
   diff. The registry preserves registration order, so "run everything"
   reproduces the bench suite in its canonical sequence. *)

type t = {
  id : string;
  title : string;
  doc : string;
  body : Metrics.t -> unit;
}

type outcome = {
  id : string;
  title : string;
  rows : Metrics.row list;
  notes : string list;
  scalars : (string * float) list;
  wall_s : float;
}

let define ~id ~title ?(doc = "") body = { id; title; doc; body }

let id (e : t) = e.id
let title (e : t) = e.title
let doc (e : t) = e.doc

let run e =
  let m = Metrics.create () in
  let t0 = Unix.gettimeofday () in
  e.body m;
  let wall_s = Unix.gettimeofday () -. t0 in
  {
    id = e.id;
    title = e.title;
    rows = Metrics.rows m;
    notes = Metrics.notes m;
    scalars = Metrics.snapshot m;
    wall_s;
  }

(* Experiments are mutually independent by construction — each [run]
   allocates a fresh Metrics registry, so bodies never share collector
   state — which is what lets the bench registry execute on the domain
   pool. Outcomes come back in input order, so every sink downstream
   (tables, JSON report, baseline diff) emits the same bytes at any
   [jobs]. *)
let run_all ?(jobs = 1) es = Fmm_par.Pool.map ~jobs run es

module Registry = struct
  type experiment = t

  type nonrec t = { mutable rev : experiment list }

  let create () = { rev = [] }

  let register reg (e : experiment) =
    if List.exists (fun (e' : experiment) -> e'.id = e.id) reg.rev then
      invalid_arg (Printf.sprintf "Experiment.Registry.register: duplicate id %S" e.id);
    reg.rev <- e :: reg.rev

  let define reg ~id ~title ?doc body =
    let e = define ~id ~title ?doc body in
    register reg e;
    e

  let all reg = List.rev reg.rev

  let ids reg = List.map (fun (e : experiment) -> e.id) (all reg)

  let find reg id = List.find_opt (fun (e : experiment) -> e.id = id) reg.rev

  (* Select by id, preserving REGISTRATION order regardless of the
     filter's order, erroring on unknown ids AND on a selection that
     matches nothing (a typo in --filter must not silently run nothing
     and exit 0 — a CI smoke gate would pass vacuously). *)
  let select reg = function
    | None -> Ok (all reg)
    | Some wanted -> (
      let unknown = List.filter (fun id -> find reg id = None) wanted in
      if unknown <> [] then
        Error
          (Printf.sprintf "unknown experiment id(s): %s (known: %s)"
             (String.concat ", " unknown)
             (String.concat ", " (ids reg)))
      else
        match List.filter (fun (e : experiment) -> List.mem e.id wanted) (all reg) with
        | [] ->
          Error
            (Printf.sprintf "empty experiment selection (known: %s)"
               (String.concat ", " (ids reg)))
        | selected -> Ok selected)
end
