(** Named experiments — the unit of the bench harness. An experiment's
    body writes rows, notes and scalars into a fresh {!Metrics}
    registry; {!run} times it and returns a structured {!outcome} with
    no formatting decisions taken (see {!Sink} for rendering). *)

type t

type outcome = {
  id : string;
  title : string;
  rows : Metrics.row list;
  notes : string list;
  scalars : (string * float) list;  (** {!Metrics.snapshot} of the run *)
  wall_s : float;  (** wall-clock of the body *)
}

val define : id:string -> title:string -> ?doc:string -> (Metrics.t -> unit) -> t

val id : t -> string
val title : t -> string
val doc : t -> string

val run : t -> outcome

(** An ordered, duplicate-free collection of experiments. *)
module Registry : sig
  type experiment = t
  type t

  val create : unit -> t

  val register : t -> experiment -> unit
  (** Raises [Invalid_argument] on a duplicate id. *)

  val define :
    t -> id:string -> title:string -> ?doc:string -> (Metrics.t -> unit) -> experiment
  (** {!Experiment.define} followed by {!register}. *)

  val all : t -> experiment list
  (** In registration order. *)

  val ids : t -> string list
  val find : t -> string -> experiment option

  val select : t -> string list option -> (experiment list, string) result
  (** [select reg (Some ids)] keeps the named experiments in
      registration order; [Error] names any unknown id. [None] selects
      everything. *)
end
