(** Named experiments — the unit of the bench harness. An experiment's
    body writes rows, notes and scalars into a fresh {!Metrics}
    registry; {!run} times it and returns a structured {!outcome} with
    no formatting decisions taken (see {!Sink} for rendering). *)

type t

type outcome = {
  id : string;
  title : string;
  rows : Metrics.row list;
  notes : string list;
  scalars : (string * float) list;  (** {!Metrics.snapshot} of the run *)
  wall_s : float;  (** wall-clock of the body *)
}

val define : id:string -> title:string -> ?doc:string -> (Metrics.t -> unit) -> t

val id : t -> string
val title : t -> string
val doc : t -> string

val run : t -> outcome

val run_all : ?jobs:int -> t list -> outcome list
(** Run every experiment on an {!Fmm_par.Pool} of [jobs] domains
    (default 1, sequential), returning outcomes in input order. Safe
    because each {!run} allocates its own {!Metrics} registry —
    experiment bodies share no collector state — so the outcome list
    (and every report derived from it) is identical at any [jobs],
    modulo the measured wall clocks. *)

(** An ordered, duplicate-free collection of experiments. *)
module Registry : sig
  type experiment = t
  type t

  val create : unit -> t

  val register : t -> experiment -> unit
  (** Raises [Invalid_argument] on a duplicate id. *)

  val define :
    t -> id:string -> title:string -> ?doc:string -> (Metrics.t -> unit) -> experiment
  (** {!Experiment.define} followed by {!register}. *)

  val all : t -> experiment list
  (** In registration order. *)

  val ids : t -> string list
  val find : t -> string -> experiment option

  val select : t -> string list option -> (experiment list, string) result
  (** [select reg (Some ids)] keeps the named experiments in
      registration order; [Error] names any unknown id, and an empty
      selection is also an [Error] listing the known ids (a typo must
      not silently select nothing). [None] selects everything. *)
end
