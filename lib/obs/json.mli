(** A minimal self-contained JSON tree — emitter and strict parser —
    for the benchmark reports ([BENCH_*.json]) and their baseline
    diffs. Object fields preserve insertion order; emission is
    deterministic, so identical runs produce byte-identical files. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : ?indent:int -> t -> string
(** Pretty-printed standard JSON. Non-finite floats emit as [null]
    (JSON has no representation for them); finite floats use the
    shortest literal that round-trips. *)

val of_string : string -> t
(** Strict parse of one JSON document. Raises {!Parse_error} (with a
    byte offset) on malformed input or trailing garbage. Numbers
    without [./e/E] parse as [Int] (falling back to [Float] on
    overflow). *)

val member : string -> t -> t option
(** Field lookup; [None] on missing keys and non-objects. *)

val to_list_opt : t -> t list option
val to_str_opt : t -> string option

val to_float_opt : t -> float option
(** Accepts both [Float] and [Int]. *)

val to_int_opt : t -> int option

val of_file : string -> t
val to_file : string -> t -> unit
(** Writes {!to_string} plus a trailing newline. *)
