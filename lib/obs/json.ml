(* A minimal self-contained JSON tree: enough to emit the benchmark
   reports and to read them back for baseline diffing. No external
   dependency on purpose — the container ships no yojson, and the
   schema we exchange (BENCH_*.json) is small and fully under our
   control. Emission is deterministic (object fields keep insertion
   order); parsing is a plain recursive descent that accepts exactly
   standard JSON. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* --- emission --- *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* Shortest float form that round-trips; non-finite values have no JSON
   representation and emit as null. *)
let float_literal x =
  if not (Float.is_finite x) then "null"
  else
    let s = Printf.sprintf "%.12g" x in
    let s = if float_of_string s = x then s else Printf.sprintf "%.17g" x in
    (* keep the literal lexically a float ("3.0", not "3") so a Float
       reparses as a Float — the schema roundtrips type-faithfully *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

let to_string ?(indent = 2) t =
  let buf = Buffer.create 1024 in
  let pad depth = Buffer.add_string buf (String.make (depth * indent) ' ') in
  let rec go depth t =
    match t with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float x -> Buffer.add_string buf (float_literal x)
    | Str s -> Buffer.add_string buf (escape_string s)
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (depth + 1);
          go (depth + 1) item)
        items;
      Buffer.add_char buf '\n';
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (depth + 1);
          Buffer.add_string buf (escape_string k);
          Buffer.add_string buf ": ";
          go (depth + 1) v)
        fields;
      Buffer.add_char buf '\n';
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

(* --- parsing --- *)

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt =
    Printf.ksprintf
      (fun msg -> raise (Parse_error (Printf.sprintf "at byte %d: %s" !pos msg)))
      fmt
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "expected %c, found %c" c c'
    | None -> fail "expected %c, found end of input" c
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail "invalid literal"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        match e with
        | '"' | '\\' | '/' ->
          Buffer.add_char buf e;
          go ()
        | 'n' ->
          Buffer.add_char buf '\n';
          go ()
        | 't' ->
          Buffer.add_char buf '\t';
          go ()
        | 'r' ->
          Buffer.add_char buf '\r';
          go ()
        | 'b' ->
          Buffer.add_char buf '\b';
          go ()
        | 'f' ->
          Buffer.add_char buf '\012';
          go ()
        | 'u' ->
          if !pos + 4 > n then fail "truncated \\u escape";
          let code =
            try int_of_string ("0x" ^ String.sub s !pos 4)
            with _ -> fail "bad \\u escape"
          in
          pos := !pos + 4;
          (* encode the BMP code point as UTF-8 *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
          end;
          go ()
        | c -> fail "bad escape \\%c" c)
      | c ->
        Buffer.add_char buf c;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_number_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_number_char s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    (* JSON grammar: no leading zeros ("01"), no leading '+' *)
    let digits = if String.length lit > 0 && lit.[0] = '-' then String.sub lit 1 (String.length lit - 1) else lit in
    if String.length digits >= 2 && digits.[0] = '0' && digits.[1] >= '0' && digits.[1] <= '9'
    then fail "bad number %S" lit;
    if String.length lit > 0 && lit.[0] = '+' then fail "bad number %S" lit;
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') lit then
      match float_of_string_opt lit with
      | Some x -> Float x
      | None -> fail "bad number %S" lit
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt lit with
        | Some x -> Float x
        | None -> fail "bad number %S" lit)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ] in array"
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let rec fields acc =
          let f = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (f :: acc)
          | Some '}' ->
            advance ();
            List.rev (f :: acc)
          | _ -> fail "expected , or } in object"
        in
        Obj (fields [])
      end
    | Some c when c = '-' || (c >= '0' && c <= '9') -> parse_number ()
    | Some c -> fail "unexpected character %c" c
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* --- accessors --- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list_opt = function List l -> Some l | _ -> None
let to_str_opt = function Str s -> Some s | _ -> None

let to_float_opt = function
  | Float x -> Some x
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let to_file path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_string t);
      output_char oc '\n')
