(** The metrics registry every experiment writes through: named
    counters, gauges, wall-clock timers, and tagged result rows — the
    structured replacement for printf tables. A {!row}'s [params]
    identify the data point (algorithm, n, M, P, ...); its [metrics]
    carry what was measured (I/O, bound, ratio, ...). Baseline diffs
    match rows on (section, params) and compare metrics. *)

type value = Int of int | Float of float | Str of string | Bool of bool

val value_to_cell : value -> string
(** Rendering for one table cell. *)

val value_to_json : value -> Json.t
val value_of_json : Json.t -> value option

type row = {
  section : string;  (** which sub-table of the experiment *)
  params : (string * value) list;  (** identity, in display order *)
  metrics : (string * value) list;  (** measurements, in display order *)
}

val row : section:string -> ?params:(string * value) list -> (string * value) list -> row

val find_metric : row -> string -> value option
val find_param : row -> string -> value option

val ratio : row -> float option
(** The ["ratio"] metric as a float, if present — the measured/bound
    quantity baseline diffs gate on. *)

type t

val create : unit -> t
(** Domain-safety contract: a [t] is an unsynchronized collector owned
    by the single experiment body writing through it — it must stay
    confined to the domain running that body. Cross-experiment
    parallelism gets its safety from each {!Experiment.run} allocating
    a fresh [t], never from locking here; anything genuinely shared
    between experiment bodies (e.g. memoized CDAG caches) must be
    mutex-guarded by its owner. *)

val incr : ?by:int -> t -> string -> unit
val gauge : t -> string -> float -> unit

val time : t -> string -> (unit -> 'a) -> 'a
(** Runs the thunk, accumulating its wall-clock seconds under the
    given timer name (exception-safe). *)

val add_row : t -> row -> unit

val rowf :
  t -> section:string -> ?params:(string * value) list -> (string * value) list -> unit
(** [add_row] composed with {!row}. *)

val note : t -> string -> unit
(** Free-text commentary attached to the experiment (the former
    explanatory [print_endline] lines). *)

val rows : t -> row list
(** In emission order. *)

val notes : t -> string list

val snapshot : t -> (string * float) list
(** All scalars as one flat name -> value view: counters and gauges
    verbatim, timers suffixed [_s]. *)
