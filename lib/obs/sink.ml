(* Sinks for experiment outcomes. The outcome is pure data; this module
   holds every formatting decision:

   - [tables_of_outcome] / [print_outcome]: the classic bench output —
     rows grouped by section into Fmm_util.Table boxes, notes after.
   - [report_to_json] / [outcomes_of_json]: the machine-readable
     BENCH_*.json schema (schema_version 1) and its loader.
   - [diff]: the regression gate — match rows of two runs on
     (experiment, section, params), compare their "ratio" metrics
     within a tolerance, and optionally the per-experiment wall
     clocks. The caller turns [n_regressions > 0] into an exit code. *)

module T = Fmm_util.Table

(* --- tables --- *)

(* Group rows by section, preserving first-appearance order. *)
let sections rows =
  let rec go seen = function
    | [] -> []
    | r :: rest ->
      if List.mem r.Metrics.section seen then go seen rest
      else
        let s = r.Metrics.section in
        (s, List.filter (fun r' -> r'.Metrics.section = s) rows)
        :: go (s :: seen) rest
  in
  go [] rows

(* Header = union of param keys then metric keys, each in
   first-appearance order across the section's rows. *)
let keys_of project rows =
  List.fold_left
    (fun acc r ->
      List.fold_left
        (fun acc (k, _) -> if List.mem k acc then acc else acc @ [ k ])
        acc (project r))
    [] rows

let table_of_section ~title (section, rows) =
  let param_keys = keys_of (fun r -> r.Metrics.params) rows in
  let metric_keys = keys_of (fun r -> r.Metrics.metrics) rows in
  let headers = param_keys @ metric_keys in
  let cell find r k =
    match find r k with Some v -> Metrics.value_to_cell v | None -> "-"
  in
  let first_value k =
    List.find_map
      (fun r ->
        match Metrics.find_param r k with
        | Some v -> Some v
        | None -> Metrics.find_metric r k)
      rows
  in
  let aligns =
    List.map
      (fun k ->
        match first_value k with
        | Some (Metrics.Str _) | Some (Metrics.Bool _) -> T.Left
        | _ -> T.Right)
      headers
  in
  T.of_cells
    ~title:(if section = "" then title else section)
    ~headers ~aligns
    (List.map
       (fun r ->
         List.map (cell Metrics.find_param r) param_keys
         @ List.map (cell Metrics.find_metric r) metric_keys)
       rows)

let tables_of_outcome (o : Experiment.outcome) =
  List.map (table_of_section ~title:o.Experiment.title) (sections o.Experiment.rows)

let print_outcome ?(wall = false) (o : Experiment.outcome) =
  Printf.printf "\n########## %s: %s ##########\n\n" o.Experiment.id
    o.Experiment.title;
  List.iter T.print (tables_of_outcome o);
  List.iter print_endline o.Experiment.notes;
  if wall then Printf.printf "[%s: %.2f s]\n" o.Experiment.id o.Experiment.wall_s

(* --- JSON report --- *)

let schema_version = 1

(* The only report fields that legitimately differ between two runs of
   the same experiment: the wall clock and the [_s]-suffixed timer
   scalars of Metrics.snapshot. Everything left is deterministic at any
   --jobs; the differential determinism suite strips outcomes and
   compares the resulting reports byte-for-byte. *)
let strip_volatile (o : Experiment.outcome) =
  {
    o with
    Experiment.wall_s = 0.;
    scalars =
      List.filter
        (fun (k, _) -> not (String.ends_with ~suffix:"_s" k))
        o.Experiment.scalars;
  }

let fields_to_json fields =
  Json.Obj (List.map (fun (k, v) -> (k, Metrics.value_to_json v)) fields)

let row_to_json (r : Metrics.row) =
  Json.Obj
    [
      ("section", Json.Str r.Metrics.section);
      ("params", fields_to_json r.Metrics.params);
      ("metrics", fields_to_json r.Metrics.metrics);
    ]

let outcome_to_json (o : Experiment.outcome) =
  Json.Obj
    [
      ("id", Json.Str o.Experiment.id);
      ("title", Json.Str o.Experiment.title);
      ("wall_s", Json.Float o.Experiment.wall_s);
      ("scalars", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) o.Experiment.scalars));
      ("rows", Json.List (List.map row_to_json o.Experiment.rows));
      ("notes", Json.List (List.map (fun s -> Json.Str s) o.Experiment.notes));
    ]

let report_to_json ?(generator = "fmmlab bench") ~created outcomes =
  Json.Obj
    [
      ("schema_version", Json.Int schema_version);
      ("generator", Json.Str generator);
      ("created_unix", Json.Float created);
      ("experiments", Json.List (List.map outcome_to_json outcomes));
    ]

(* --- loading a report back --- *)

let fields_of_json j =
  match j with
  | Json.Obj fields ->
    List.filter_map
      (fun (k, v) ->
        match Metrics.value_of_json v with Some v -> Some (k, v) | None -> None)
      fields
  | _ -> []

let row_of_json j =
  let section =
    Option.bind (Json.member "section" j) Json.to_str_opt |> Option.value ~default:""
  in
  {
    Metrics.section;
    params = (match Json.member "params" j with Some p -> fields_of_json p | None -> []);
    metrics = (match Json.member "metrics" j with Some m -> fields_of_json m | None -> []);
  }

let outcome_of_json j : Experiment.outcome option =
  match Option.bind (Json.member "id" j) Json.to_str_opt with
  | None -> None
  | Some id ->
    Some
      {
        Experiment.id;
        title =
          Option.bind (Json.member "title" j) Json.to_str_opt
          |> Option.value ~default:id;
        wall_s =
          Option.bind (Json.member "wall_s" j) Json.to_float_opt
          |> Option.value ~default:0.;
        scalars =
          (match Json.member "scalars" j with
          | Some (Json.Obj fields) ->
            List.filter_map
              (fun (k, v) ->
                match Json.to_float_opt v with Some x -> Some (k, x) | None -> None)
              fields
          | _ -> []);
        rows =
          (match Option.bind (Json.member "rows" j) Json.to_list_opt with
          | Some rows -> List.map row_of_json rows
          | None -> []);
        notes =
          (match Option.bind (Json.member "notes" j) Json.to_list_opt with
          | Some notes -> List.filter_map Json.to_str_opt notes
          | None -> []);
      }

let outcomes_of_json j =
  match Json.member "schema_version" j with
  | Some (Json.Int v) when v = schema_version -> (
    match Option.bind (Json.member "experiments" j) Json.to_list_opt with
    | Some exps -> Ok (List.filter_map outcome_of_json exps)
    | None -> Error "report has no \"experiments\" array")
  | Some (Json.Int v) ->
    Error (Printf.sprintf "unsupported schema_version %d (expected %d)" v schema_version)
  | _ -> Error "missing schema_version: not a bench report"

(* --- baseline diff --- *)

type diff = {
  lines : string list;  (** human-readable findings, emission order *)
  n_compared : int;  (** rows with a ratio present in both runs *)
  n_regressions : int;
  n_improvements : int;
  n_unmatched : int;  (** current rows with a ratio the baseline lacks *)
}

let row_key (o : Experiment.outcome) (r : Metrics.row) =
  let part (k, v) = k ^ "=" ^ Metrics.value_to_cell v in
  String.concat "|"
    (o.Experiment.id :: r.Metrics.section
    :: List.map part
         (List.sort (fun (a, _) (b, _) -> compare a b) r.Metrics.params))

let diff ~tolerance ?time_tolerance ~baseline ~current () =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun (o : Experiment.outcome) ->
      List.iter
        (fun r ->
          match Metrics.ratio r with
          | Some x -> Hashtbl.replace tbl (row_key o r) x
          | None -> ())
        o.Experiment.rows)
    baseline;
  let base_wall =
    List.map (fun (o : Experiment.outcome) -> (o.Experiment.id, o.Experiment.wall_s)) baseline
  in
  let lines = ref [] in
  let emit fmt = Printf.ksprintf (fun s -> lines := s :: !lines) fmt in
  let compared = ref 0 and regs = ref 0 and imps = ref 0 and unmatched = ref 0 in
  List.iter
    (fun (o : Experiment.outcome) ->
      List.iter
        (fun r ->
          match Metrics.ratio r with
          | None -> ()
          | Some cur -> (
            let key = row_key o r in
            match Hashtbl.find_opt tbl key with
            | None ->
              incr unmatched;
              emit "  new      %s: ratio %.3f (no baseline row)" key cur
            | Some base ->
              incr compared;
              if cur > base *. (1. +. tolerance) then begin
                incr regs;
                emit "  REGRESSION %s: ratio %.3f -> %.3f (+%.1f%% > %.0f%% tolerance)"
                  key base cur
                  ((cur /. base -. 1.) *. 100.)
                  (tolerance *. 100.)
              end
              else if cur < base *. (1. -. tolerance) then begin
                incr imps;
                emit "  improved %s: ratio %.3f -> %.3f (%.1f%%)" key base cur
                  ((cur /. base -. 1.) *. 100.)
              end))
        o.Experiment.rows;
      (* wall-clock: gated only when a time tolerance is given — wall
         clocks are load-sensitive, ratios are not *)
      match (time_tolerance, List.assoc_opt o.Experiment.id base_wall) with
      | Some tt, Some bw when bw > 0. ->
        let cw = o.Experiment.wall_s in
        if cw > bw *. (1. +. tt) then begin
          incr regs;
          emit "  REGRESSION %s: wall %.2fs -> %.2fs (+%.0f%% > %.0f%% tolerance)"
            o.Experiment.id bw cw
            ((cw /. bw -. 1.) *. 100.)
            (tt *. 100.)
        end
      | _ -> ())
    current;
  {
    lines = List.rev !lines;
    n_compared = !compared;
    n_regressions = !regs;
    n_improvements = !imps;
    n_unmatched = !unmatched;
  }
