(* The metrics registry every experiment writes through: named
   counters, gauges, wall-clock timers and tagged result rows. A row is
   the structured replacement for one printed table line — its [params]
   identify the data point (algorithm, n, M, P, ...) and its [metrics]
   carry what was measured (I/O, bound, ratio, ...). The split is what
   makes baseline diffing well-defined: two runs match rows on
   (section, params) and compare metrics. *)

type value = Int of int | Float of float | Str of string | Bool of bool

let value_to_cell = function
  | Int i -> string_of_int i
  | Float x ->
    if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
    else Printf.sprintf "%.4g" x
  | Str s -> s
  | Bool b -> if b then "yes" else "no"

let value_to_json = function
  | Int i -> Json.Int i
  | Float x -> Json.Float x
  | Str s -> Json.Str s
  | Bool b -> Json.Bool b

let value_of_json = function
  | Json.Int i -> Some (Int i)
  | Json.Float x -> Some (Float x)
  | Json.Str s -> Some (Str s)
  | Json.Bool b -> Some (Bool b)
  | Json.Null | Json.List _ | Json.Obj _ -> None

type row = {
  section : string;
  params : (string * value) list;
  metrics : (string * value) list;
}

let row ~section ?(params = []) metrics = { section; params; metrics }

let find_metric r key = List.assoc_opt key r.metrics
let find_param r key = List.assoc_opt key r.params

let ratio r =
  match find_metric r "ratio" with
  | Some (Float x) -> Some x
  | Some (Int i) -> Some (float_of_int i)
  | _ -> None

type t = {
  mutable counters : (string * int) list; (* reversed insertion order *)
  mutable gauges : (string * float) list;
  mutable timers : (string * float) list; (* accumulated seconds *)
  mutable rows : row list; (* reversed *)
  mutable notes : string list; (* reversed *)
}

let create () = { counters = []; gauges = []; timers = []; rows = []; notes = [] }

let update assoc key f default =
  let rec go = function
    | [] -> [ (key, f default) ]
    | (k, v) :: rest when k = key -> (k, f v) :: rest
    | kv :: rest -> kv :: go rest
  in
  go assoc

let incr ?(by = 1) t name = t.counters <- update t.counters name (fun v -> v + by) 0

let gauge t name x = t.gauges <- update t.gauges name (fun _ -> x) x

let time t name f =
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      let dt = Unix.gettimeofday () -. t0 in
      t.timers <- update t.timers name (fun acc -> acc +. dt) 0.)
    f

let add_row t r = t.rows <- r :: t.rows

let rowf t ~section ?params metrics = add_row t (row ~section ?params metrics)

let note t s = t.notes <- s :: t.notes

let rows t = List.rev t.rows
let notes t = List.rev t.notes

(** Everything scalar the registry accumulated, as one flat name ->
    float view: counters verbatim, gauges verbatim, timers suffixed
    [_s]. Names are unique by construction within each family; a
    clashing counter/gauge name yields both entries. *)
let snapshot t =
  List.rev_map (fun (k, v) -> (k, float_of_int v)) t.counters
  @ List.rev_map (fun (k, v) -> (k, v)) t.gauges
  @ List.rev_map (fun (k, v) -> (k ^ "_s", v)) t.timers
