(** Static trace checking (pass 2 of the analyzer): a symbolic
    resident-set interpreter over {!Fmm_machine.Trace.t}.

    Where {!Fmm_machine.Cache_machine.apply} raises [Illegal] on the
    first violation, this pass replays the whole trace, {e recovers}
    after each defect and reports every violation with its trace step
    and vertex: use of a never-computed operand, non-resident operand,
    cache overflow against [cache_size], load of a value absent from
    slow memory, double loads, computing an input, recomputation when
    disabled, and missing final computes/stores of the outputs.

    It also emits lint-grade findings the dynamic oracle cannot
    express: dead loads (loaded, then evicted or dropped at trace end
    without ever being read), redundant stores (the value is already
    in slow memory — stores never change a value in this model), and a
    per-vertex attribution of recomputation events. Dead loads and
    redundant stores carry {!Diagnostic.severity} [Lint]: they never
    make a trace illegal, but the optimizer's oracle still rejects
    them (wasted I/O an "optimal" schedule must not contain).

    The interpreter itself runs on {!Dataflow.Bitset} abstract state.
    {!check_cached} additionally memoizes the whole run — per-step
    cumulative counters, Zobrist state hashes and periodic bitset
    checkpoints — into a {!cache}, and {!check_delta} then verifies a
    {e mutated} trace in time proportional to the affected window: it
    restores the checkpoint preceding the first divergence, replays
    until the hashed abstract state reconverges with the base run on a
    common suffix, and splices the memoized remainder. This is the
    optimizer's incremental legality oracle. *)

type result = {
  report : Diagnostic.report;
  counters : Fmm_machine.Trace.counters;
      (** best-effort counters (as if every defect were patched over) *)
  recomputed : (int * int) list;
      (** (vertex, number of re-computations beyond the first), for
          every vertex computed more than once, ascending vertex id *)
  dead_loads : int;
  redundant_stores : int;
  peak_occupancy : int;
}

val check :
  cache_size:int ->
  ?allow_recompute:bool ->
  Fmm_machine.Workload.t ->
  Fmm_machine.Trace.t ->
  result
(** Steps are numbered from 0. [allow_recompute] defaults to [true]
    (the paper's model); recomputations are then counted and
    attributed, not flagged as errors. *)

val clean :
  cache_size:int ->
  ?allow_recompute:bool ->
  Fmm_machine.Workload.t ->
  Fmm_machine.Trace.t ->
  bool
(** [true] iff {!check} reports zero errors. *)

(** The incremental oracle's verdict: the same legality summary
    {!check} computes (no diagnostics — counts only), plus how much of
    the base run was reused. [reused_prefix + replayed + reused_suffix]
    is the checked trace's length. *)
type verdict = {
  v_counters : Fmm_machine.Trace.counters;
  v_errors : int;
  v_dead_loads : int;
  v_redundant_stores : int;
  v_peak_occupancy : int;
  reused_prefix : int;
  replayed : int;
  reused_suffix : int;
}

type cache
(** A memoized {!check} run over one (workload, cache_size, trace):
    per-step cumulative counters, double-Zobrist state hashes and
    periodic bitset checkpoints. *)

val check_cached :
  cache_size:int ->
  ?allow_recompute:bool ->
  Fmm_machine.Workload.t ->
  Fmm_machine.Trace.t ->
  verdict * cache
(** One full silent check (same verdict as {!check}, field for field)
    plus the memoization that makes {!check_delta} incremental. *)

val check_delta : base:cache -> Fmm_machine.Workload.t -> Fmm_machine.Trace.t -> verdict
(** Verdict for a trace that (typically) shares a long prefix and/or
    suffix with [base]'s trace. Equal to running {!check_cached} from
    scratch on the new trace — enforced by the differential fuzz suite
    — but costs O(window between the first divergence and abstract-
    state reconvergence) instead of O(trace). Convergence detection is
    probabilistic (two independent 62-bit Zobrist hashes plus the
    occupancy must all match), so a false splice needs a double
    collision. Raises [Invalid_argument] when [work] has a different
    vertex count than the base. *)

val cache_verdict : cache -> verdict
(** The base trace's own verdict (what {!check_cached} returned). *)

val cache_trace_length : cache -> int
