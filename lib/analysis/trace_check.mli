(** Static trace checking (pass 2 of the analyzer): a symbolic
    resident-set interpreter over {!Fmm_machine.Trace.t}.

    Where {!Fmm_machine.Cache_machine.apply} raises [Illegal] on the
    first violation, this pass replays the whole trace, {e recovers}
    after each defect and reports every violation with its trace step
    and vertex: use of a never-computed operand, non-resident operand,
    cache overflow against [cache_size], load of a value absent from
    slow memory, double loads, computing an input, recomputation when
    disabled, and missing final computes/stores of the outputs.

    It also emits lint-grade findings the dynamic oracle cannot
    express: dead loads (loaded, then evicted or dropped at trace end
    without ever being read), redundant stores (the value is already
    in slow memory — stores never change a value in this model), and a
    per-vertex attribution of recomputation events. *)

type result = {
  report : Diagnostic.report;
  counters : Fmm_machine.Trace.counters;
      (** best-effort counters (as if every defect were patched over) *)
  recomputed : (int * int) list;
      (** (vertex, number of re-computations beyond the first), for
          every vertex computed more than once, ascending vertex id *)
  dead_loads : int;
  redundant_stores : int;
  peak_occupancy : int;
}

val check :
  cache_size:int ->
  ?allow_recompute:bool ->
  Fmm_machine.Workload.t ->
  Fmm_machine.Trace.t ->
  result
(** Steps are numbered from 0. [allow_recompute] defaults to [true]
    (the paper's model); recomputations are then counted and
    attributed, not flagged as errors. *)

val clean :
  cache_size:int ->
  ?allow_recompute:bool ->
  Fmm_machine.Workload.t ->
  Fmm_machine.Trace.t ->
  bool
(** [true] iff {!check} reports zero errors. *)
