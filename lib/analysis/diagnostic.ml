(* Shared diagnostics core for the static analyzer. Each pass emits
   located, severity-graded findings through a Collector; reports
   render human- or machine-readable and can be merged across passes.
   The contract with the passes: emission order is preserved, nothing
   is deduplicated — a corrupted artifact with k independent
   violations yields k diagnostics, unlike the first-failure dynamic
   oracle. *)

type severity = Error | Warning | Lint | Info

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Lint -> "lint"
  | Info -> "info"

let severity_of_string = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "lint" -> Some Lint
  | "info" -> Some Info
  | _ -> None

type location =
  | Vertex of int
  | Step of { step : int; vertex : int option }
  | Processor of int
  | Edge of { src : int; dst : int }
  | Global

let location_to_string = function
  | Vertex v -> Printf.sprintf "vertex %d" v
  | Step { step; vertex = Some v } -> Printf.sprintf "step %d (vertex %d)" step v
  | Step { step; vertex = None } -> Printf.sprintf "step %d" step
  | Processor p -> Printf.sprintf "processor %d" p
  | Edge { src; dst } -> Printf.sprintf "edge %d -> %d" src dst
  | Global -> "global"

type t = {
  severity : severity;
  pass : string;
  code : string;
  loc : location;
  message : string;
}

let to_string d =
  Printf.sprintf "%s[%s/%s] @ %s: %s"
    (severity_to_string d.severity)
    d.pass d.code
    (location_to_string d.loc)
    d.message

(* Stable tab-separated form: severity, pass, code, loc-kind,
   loc-fields, message. Absent numeric fields print as "-". *)
let to_machine_string d =
  let kind, f1, f2 =
    match d.loc with
    | Vertex v -> ("vertex", string_of_int v, "-")
    | Step { step; vertex } ->
      ( "step",
        string_of_int step,
        match vertex with Some v -> string_of_int v | None -> "-" )
    | Processor p -> ("proc", string_of_int p, "-")
    | Edge { src; dst } -> ("edge", string_of_int src, string_of_int dst)
    | Global -> ("global", "-", "-")
  in
  String.concat "\t"
    [ severity_to_string d.severity; d.pass; d.code; kind; f1; f2; d.message ]

type report = { title : string; diags : t list }

let count sev r =
  List.fold_left (fun acc d -> if d.severity = sev then acc + 1 else acc) 0 r.diags

let n_errors = count Error
let n_warnings = count Warning
let n_lints = count Lint
let n_infos = count Info
let is_clean r = n_errors r = 0
let is_silent r = r.diags = []
let errors r = List.filter (fun d -> d.severity = Error) r.diags
let warnings r = List.filter (fun d -> d.severity = Warning) r.diags
let lints r = List.filter (fun d -> d.severity = Lint) r.diags

let merge ~title reports =
  { title; diags = List.concat_map (fun r -> r.diags) reports }

let render ?(machine = false) ?(limit = max_int) r =
  if machine then
    String.concat "\n" (List.map to_machine_string r.diags)
  else begin
    let buf = Buffer.create 256 in
    Buffer.add_string buf (Printf.sprintf "== %s ==\n" r.title);
    let by sev = List.filter (fun d -> d.severity = sev) r.diags in
    let ordered = by Error @ by Warning @ by Lint @ by Info in
    List.iteri
      (fun i d ->
        if i < limit then begin
          Buffer.add_string buf ("  " ^ to_string d);
          Buffer.add_char buf '\n'
        end
        else if i = limit then
          Buffer.add_string buf
            (Printf.sprintf "  ... (%d more)\n" (List.length ordered - limit)))
      ordered;
    Buffer.add_string buf
      (Printf.sprintf "  %d error(s), %d warning(s), %d lint(s), %d info(s)%s"
         (n_errors r) (n_warnings r) (n_lints r) (n_infos r)
         (if is_silent r then " — clean" else ""));
    Buffer.contents buf
  end

module Collector = struct
  type c = {
    pass : string;
    title : string;
    mutable rev : t list;
    mutable errs : int;
  }

  let create ~pass ~title = { pass; title; rev = []; errs = 0 }

  let add c severity ~code loc message =
    if severity = Error then c.errs <- c.errs + 1;
    c.rev <- { severity; pass = c.pass; code; loc; message } :: c.rev

  let addf c severity ~code loc fmt =
    Printf.ksprintf (add c severity ~code loc) fmt

  let error_count c = c.errs
  let report c = { title = c.title; diags = List.rev c.rev }
end
