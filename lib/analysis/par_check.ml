(* Pass 3: the parallel race detector.

   An owner-computes execution is described by (assignment, order):
   every vertex is computed by its owner, at its position in the
   global order; a cross-processor edge u -> v is a message from
   owner(u), sent when u is computed. The pass checks the whole
   description statically:

   - assignment shape: length, unowned (negative) and out-of-range
     processor ids;
   - order shape: exactly the non-input vertices, no duplicates;
   - dependences: an edge whose consumer precedes its producer is a
     use-before-compute when both ends share a processor, and a
     read-before-send RACE when they do not — the consumer would read
     a word its owner has not yet sent;
   - capacity lint: ownership imbalance and the hottest
     owner->consumer channel of the communication matrix (whose word
     counts replicate Par_exec.run's dedup rule: one word per distinct
     (value, consumer) pair). *)

module W = Fmm_machine.Workload
module D = Fmm_graph.Digraph
module Dg = Diagnostic

type result = {
  report : Dg.report;
  owned : int array;
  words : int array array;
  total_words : int;
  races : int;
}

let pass = "par-check"

let phased_order (work : W.t) ~procs ~assignment =
  let g = work.W.graph in
  let is_input = W.is_input work in
  let topo =
    match D.topo_sort g with
    | Some o -> o
    | None -> List.init (W.n_vertices work) (fun v -> v)
  in
  let computable = List.filter (fun v -> not (is_input v)) topo in
  let bucket p v =
    Array.length assignment > v && assignment.(v) = p
  in
  let phases =
    List.concat_map
      (fun p -> List.filter (bucket p) computable)
      (List.init procs (fun p -> p))
  in
  let stragglers =
    List.filter
      (fun v ->
        v >= Array.length assignment
        || assignment.(v) < 0
        || assignment.(v) >= procs)
      computable
  in
  phases @ stragglers

let check ?order (work : W.t) ~procs ~assignment =
  let c = Dg.Collector.create ~pass ~title:"parallel race check" in
  let err ~code loc fmt = Dg.Collector.addf c Dg.Error ~code loc fmt in
  let warn ~code loc fmt = Dg.Collector.addf c Dg.Warning ~code loc fmt in
  let info ~code loc fmt = Dg.Collector.addf c Dg.Info ~code loc fmt in
  let g = work.W.graph in
  let n = W.n_vertices work in
  let is_input = W.is_input work in
  let procs = max procs 0 in
  if procs = 0 then err ~code:"no-procs" Dg.Global "processor count is zero";
  if Array.length assignment <> n then
    err ~code:"shape" Dg.Global
      "assignment length %d does not match the %d workload vertices"
      (Array.length assignment) n;
  let owner v =
    if v < Array.length assignment then Some assignment.(v) else None
  in
  let owned = Array.make (max procs 1) 0 in
  for v = 0 to n - 1 do
    match owner v with
    | None ->
      err ~code:"unowned" (Dg.Vertex v) "vertex %d has no owning processor" v
    | Some p when p < 0 ->
      err ~code:"unowned" (Dg.Vertex v)
        "vertex %d is unowned (processor id %d)" v p
    | Some p when p >= procs ->
      err ~code:"out-of-range" (Dg.Vertex v)
        "vertex %d assigned to processor %d, but only %d processor(s) exist"
        v p procs
    | Some p -> owned.(p) <- owned.(p) + 1
  done;
  (* order shape: exactly the non-input vertices, once each *)
  let order =
    match order with
    | Some o -> o
    | None -> (
      match D.topo_sort g with
      | Some o -> List.filter (fun v -> not (is_input v)) o
      | None ->
        err ~code:"cycle" Dg.Global
          "workload graph is cyclic; no execution order exists";
        [])
  in
  let pos = Array.make n (-1) in
  List.iteri
    (fun i v ->
      if v < 0 || v >= n then
        err ~code:"bad-vertex" (Dg.Step { step = i; vertex = Some v })
          "order position %d references vertex %d outside [0, %d)" i v n
      else begin
        if pos.(v) >= 0 then
          err ~code:"duplicate-schedule" (Dg.Step { step = i; vertex = Some v })
            "vertex %d scheduled twice (positions %d and %d)" v pos.(v) i;
        if is_input v then
          err ~code:"schedule-input" (Dg.Step { step = i; vertex = Some v })
            "input vertex %d appears in the compute order" v;
        pos.(v) <- i
      end)
    order;
  for v = 0 to n - 1 do
    if (not (is_input v)) && pos.(v) < 0 then
      err ~code:"never-scheduled" (Dg.Vertex v)
        "vertex %d is never scheduled" v
  done;
  (* dependence / race scan + communication census *)
  let valid_proc p = p >= 0 && p < procs in
  let words = Array.make_matrix (max procs 1) (max procs 1) 0 in
  let total_words = ref 0 in
  let races = ref 0 in
  let seen_transfer = Hashtbl.create 1024 in
  for v = 0 to n - 1 do
    if not (is_input v) then
      List.iter
        (fun u ->
          let pu = owner u and pv = owner v in
          (match (pu, pv) with
          | Some pu, Some pv
            when valid_proc pu && valid_proc pv && pu <> pv ->
            if not (Hashtbl.mem seen_transfer (u, pv)) then begin
              Hashtbl.add seen_transfer (u, pv) ();
              words.(pu).(pv) <- words.(pu).(pv) + 1;
              incr total_words
            end
          | _ -> ());
          (* an input is available at its owner from the start *)
          if (not (is_input u)) && pos.(v) >= 0 then
            if pos.(u) < 0 || pos.(u) >= pos.(v) then begin
              let cross =
                match (pu, pv) with
                | Some pu, Some pv -> pu <> pv
                | _ -> false
              in
              if cross then begin
                incr races;
                let pu = Option.get pu and pv = Option.get pv in
                if pos.(u) < 0 then
                  err ~code:"race" (Dg.Edge { src = u; dst = v })
                    "read-before-send: processor %d reads vertex %d to \
                     compute vertex %d (position %d) but owner processor %d \
                     never computes it"
                    pv u v pos.(v) pu
                else
                  err ~code:"race" (Dg.Edge { src = u; dst = v })
                    "read-before-send: processor %d reads vertex %d at \
                     position %d (computing vertex %d) before owner \
                     processor %d computes it at position %d"
                    pv u pos.(v) v pu pos.(u)
              end
              else
                err ~code:"use-before-compute" (Dg.Edge { src = u; dst = v })
                  "vertex %d (position %d) uses vertex %d which is %s" v
                  pos.(v) u
                  (if pos.(u) < 0 then "never computed"
                   else Printf.sprintf "only computed at position %d" pos.(u))
            end)
        (D.in_neighbors g v)
  done;
  (* ownership imbalance *)
  if procs > 1 && Array.length assignment = n && n >= procs then begin
    let maxp = ref 0 in
    Array.iteri (fun p k -> if k > owned.(!maxp) then maxp := p) owned;
    let mean = float_of_int n /. float_of_int procs in
    let mx = float_of_int owned.(!maxp) in
    if mx > 1.5 *. mean && owned.(!maxp) - (n / procs) > 1 then
      warn ~code:"ownership-imbalance" (Dg.Processor !maxp)
        "processor %d owns %d of %d vertices (%.1fx the mean %.1f)" !maxp
        owned.(!maxp) n (mx /. mean) mean
  end;
  (* hottest communication channel *)
  if !total_words > 0 then begin
    let hp = ref 0 and hq = ref 0 in
    for p = 0 to procs - 1 do
      for q = 0 to procs - 1 do
        if words.(p).(q) > words.(!hp).(!hq) then begin
          hp := p;
          hq := q
        end
      done
    done;
    info ~code:"comm-hotspot" (Dg.Processor !hp)
      "hottest channel: processor %d -> %d carries %d of %d words (%.0f%%)"
      !hp !hq
      words.(!hp).(!hq)
      !total_words
      (100. *. float_of_int words.(!hp).(!hq) /. float_of_int !total_words)
  end;
  {
    report = Dg.Collector.report c;
    owned;
    words;
    total_words = !total_words;
    races = !races;
  }

(* --- fault-aware replay validation --- *)

(* The static [check] above validates a fault-free (assignment, order)
   description, where "u was computed before v" is the whole story. A
   recovered execution is richer: processors crash (losing every word
   they hold except their own durable inputs), values are re-computed
   and re-sent, and a read is legal iff a live copy is present at the
   reader AT THAT EVENT — position comparison cannot express this.
   [check_log] therefore replays the executor's own event log against
   per-processor holdings: the read-before-send rule under failures. *)

type ev =
  | Compute of { vertex : int; proc : int }
  | Transfer of { value : int; src : int; dst : int }
  | Crash of { proc : int }

type replay = {
  report : Dg.report;
  computes : int;
  transfers : int;
  crashes : int;
  lost_outputs : int;
}

let replay_pass = "par-replay"

let check_log (work : W.t) ~procs ~assignment ~log =
  let c = Dg.Collector.create ~pass:replay_pass ~title:"fault replay check" in
  let err ~code loc fmt = Dg.Collector.addf c Dg.Error ~code loc fmt in
  let g = work.W.graph in
  let n = W.n_vertices work in
  let is_input = W.is_input work in
  let procs = max procs 0 in
  if procs = 0 then err ~code:"no-procs" Dg.Global "processor count is zero";
  if Array.length assignment <> n then
    err ~code:"shape" Dg.Global
      "assignment length %d does not match the %d workload vertices"
      (Array.length assignment) n;
  let valid_proc p = p >= 0 && p < procs in
  let owner v =
    if v >= 0 && v < Array.length assignment then Some assignment.(v) else None
  in
  (* holds.(p) = values processor p currently has a live copy of.
     Owners hold their own input values durably: initial operand data
     survives a crash (it is re-readable), unlike computed words. *)
  let holds : (int, unit) Hashtbl.t array =
    Array.init (max procs 1) (fun _ -> Hashtbl.create 64)
  in
  let own_inputs = Array.make (max procs 1) [] in
  Array.iter
    (fun v ->
      match owner v with
      | Some p when valid_proc p ->
        own_inputs.(p) <- v :: own_inputs.(p);
        Hashtbl.replace holds.(p) v ()
      | _ -> ())
    work.W.inputs;
  let ever_computed = Array.make (max n 1) false in
  let computes = ref 0 and transfers = ref 0 and crashes = ref 0 in
  List.iteri
    (fun step ev ->
      match ev with
      | Compute { vertex = v; proc = p } -> (
        incr computes;
        if v < 0 || v >= n then
          err ~code:"bad-vertex" (Dg.Step { step; vertex = Some v })
            "compute event references vertex %d outside [0, %d)" v n
        else if not (valid_proc p) then
          err ~code:"bad-proc" (Dg.Step { step; vertex = Some v })
            "vertex %d computed on invalid processor %d" v p
        else if is_input v then
          err ~code:"compute-input" (Dg.Step { step; vertex = Some v })
            "input vertex %d appears as a compute event" v
        else
          match owner v with
          | Some ow when ow <> p ->
            err ~code:"not-owner" (Dg.Step { step; vertex = Some v })
              "vertex %d computed on processor %d, but owner-computes \
               assigns it to %d"
              v p ow
          | _ ->
            List.iter
              (fun u ->
                if not (Hashtbl.mem holds.(p) u) then
                  err ~code:"race" (Dg.Edge { src = u; dst = v })
                    "read-before-send: processor %d computes vertex %d at \
                     event %d without a live copy of operand %d (owner %d)"
                    p v step u
                    (match owner u with Some q -> q | None -> -1))
              (D.in_neighbors g v);
            Hashtbl.replace holds.(p) v ();
            ever_computed.(v) <- true)
      | Transfer { value = u; src; dst } ->
        incr transfers;
        if u < 0 || u >= n then
          err ~code:"bad-vertex" (Dg.Step { step; vertex = Some u })
            "transfer event references vertex %d outside [0, %d)" u n
        else if not (valid_proc src && valid_proc dst) then
          err ~code:"bad-proc" (Dg.Step { step; vertex = Some u })
            "transfer of vertex %d between invalid processors %d -> %d" u src
            dst
        else if src = dst then
          err ~code:"self-transfer" (Dg.Step { step; vertex = Some u })
            "processor %d transfers vertex %d to itself" src u
        else begin
          if not (Hashtbl.mem holds.(src) u) then
            err ~code:"send-unheld" (Dg.Step { step; vertex = Some u })
              "processor %d sends vertex %d it does not hold (lost in a \
               crash, or never computed/received)"
              src u;
          Hashtbl.replace holds.(dst) u ()
        end
      | Crash { proc = p } ->
        incr crashes;
        if not (valid_proc p) then
          err ~code:"bad-proc" (Dg.Step { step; vertex = None })
            "crash event names invalid processor %d" p
        else begin
          Hashtbl.reset holds.(p);
          List.iter (fun v -> Hashtbl.replace holds.(p) v ()) own_inputs.(p)
        end)
    log;
  for v = 0 to n - 1 do
    if (not (is_input v)) && not ever_computed.(v) then
      err ~code:"never-computed" (Dg.Vertex v)
        "vertex %d is never computed by any event" v
  done;
  let lost = ref 0 in
  Array.iter
    (fun v ->
      match owner v with
      | Some p when valid_proc p ->
        if not (Hashtbl.mem holds.(p) v) then begin
          incr lost;
          err ~code:"lost-output" (Dg.Vertex v)
            "output vertex %d is not held by its owner %d when the log ends \
             (lost in a crash and never recovered)"
            v p
        end
      | _ -> ())
    work.W.outputs;
  {
    report = Dg.Collector.report c;
    computes = !computes;
    transfers = !transfers;
    crashes = !crashes;
    lost_outputs = !lost;
  }
