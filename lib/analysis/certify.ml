(* The certifier: runs the static analyses of Dataflow against the
   dynamic evidence of the schedulers and reports any disagreement as
   an error diagnostic. Four cross-checks per workload/order:

     1. MAXLIVE / min-cache: Dataflow.trace_profile's peak occupancy
        (the smallest M for which the trace is legal) must equal
        Trace_check.check's dynamically tracked peak_occupancy on
        every policy's trace.
     2. Static I/O lower bound: io_lower_bound (interval liveness of
        the order) must be <= the measured I/O of every
        no-recomputation policy (LRU, Belady). Rematerialization is
        exempt — escaping this bound is exactly what recomputation
        buys, and the sandwich row makes that visible.
     3. Legality: every scheduler trace checks clean (zero errors).
     4. Lemma 3.6 (optional, CDAG only): the segment bound holds on
        the LRU trace.

   Everything here is deterministic and clock-free; the parallel path
   only fans the three policy runs over Fmm_par.Pool, which is
   order-preserving, so reports are identical at any [jobs]. *)

module W = Fmm_machine.Workload
module Tr = Fmm_machine.Trace
module Sch = Fmm_machine.Schedulers
module Seg = Fmm_machine.Segments
module Cd = Fmm_cdag.Cdag
module Dg = Diagnostic
module Tc = Trace_check
module Df = Dataflow

let pass = "certify"

type policy_row = {
  policy : string;
  feasible : bool;
  io : int;  (** -1 when infeasible *)
  peak_occupancy : int;
  min_cache : int;  (** static: Dataflow.trace_profile's peak *)
  dead_loads : int;
  redundant_stores : int;
  recomputes : int;
  agree : bool;  (** static min_cache = dynamic peak_occupancy *)
}

type t = {
  workload : string;
  cache_size : int;
  order_len : int;
  maxlive : int;
  inputs_used : int;
  outputs_stored : int;
  io_lower_bound : int;
  segment_r : int option;
  segment_bound : int option;
  segment_min_io : int option;
  rows : policy_row list;
  report : Dg.report;
}

(* The segment granularity the optimizer's reorder move targets: the
   largest power of the base dimension with r <= max(n0, 2 sqrt M). *)
let default_segment_r cdag ~cache_size =
  let size = Cd.size cdag in
  let base =
    let n0, _, _ = Fmm_bilinear.Algorithm.dims (Cd.base_algorithm cdag) in
    max 2 n0
  in
  let target = max base (2 * int_of_float (sqrt (float_of_int cache_size))) in
  let r = ref base in
  while !r * base <= size && !r * base <= target do
    r := !r * base
  done;
  if !r > size then None else Some !r

let infeasible name =
  {
    policy = name;
    feasible = false;
    io = -1;
    peak_occupancy = 0;
    min_cache = 0;
    dead_loads = 0;
    redundant_stores = 0;
    recomputes = 0;
    agree = true;
  }

let run ?(jobs = 1) ?cdag ?segment_r ?max_flops ~cache_size (work : W.t)
    ~(order : int list) =
  let c = Dg.Collector.create ~pass ~title:"certifier" in
  let err ~code loc fmt = Dg.Collector.addf c Dg.Error ~code loc fmt in
  let info ~code loc fmt = Dg.Collector.addf c Dg.Info ~code loc fmt in
  let lv = Df.order_liveness work (Array.of_list order) in
  let lb = Df.io_lower_bound lv ~cache_size in
  let policies =
    [
      ("lru", fun () -> Sch.run_lru work ~cache_size order);
      ("belady", fun () -> Sch.run_belady work ~cache_size order);
      ( "remat",
        fun () -> Sch.run_rematerialize ?max_flops work ~cache_size order );
    ]
  in
  let runs =
    Fmm_par.Pool.map ~jobs:(max 1 jobs)
      (fun (name, run) ->
        match run () with
        | r ->
          let chk = Tc.check ~cache_size work r.Sch.trace in
          let prof = Df.trace_profile work r.Sch.trace in
          (name, Some (r, chk, prof))
        | exception Failure _ -> (name, None))
      policies
  in
  let lru_trace = ref None in
  let rows =
    List.map
      (fun (name, outcome) ->
        match outcome with
        | None -> infeasible name
        | Some ((r : Sch.result), (chk : Tc.result), (prof : Df.profile)) ->
          if name = "lru" then lru_trace := Some r.Sch.trace;
          let io = Tr.io r.Sch.counters in
          let agree = prof.Df.min_cache = chk.Tc.peak_occupancy in
          if not agree then
            err ~code:"maxlive-mismatch" Dg.Global
              "%s: static min-cache %d disagrees with dynamic peak occupancy \
               %d"
              name prof.Df.min_cache chk.Tc.peak_occupancy;
          if Dg.n_errors chk.Tc.report > 0 then
            err ~code:"illegal-trace" Dg.Global
              "%s: scheduler trace has %d violation(s)" name
              (Dg.n_errors chk.Tc.report);
          if chk.Tc.peak_occupancy > cache_size then
            err ~code:"peak-exceeds-cache" Dg.Global
              "%s: peak occupancy %d exceeds the declared cache size %d" name
              chk.Tc.peak_occupancy cache_size;
          if chk.Tc.counters.Tr.recomputes = 0 && io < lb then
            err ~code:"lb-violated" Dg.Global
              "%s: measured I/O %d beats the static lower bound %d — the \
               bound (or the scheduler) is unsound"
              name io lb;
          {
            policy = name;
            feasible = true;
            io;
            peak_occupancy = chk.Tc.peak_occupancy;
            min_cache = prof.Df.min_cache;
            dead_loads = chk.Tc.dead_loads;
            redundant_stores = chk.Tc.redundant_stores;
            recomputes = chk.Tc.counters.Tr.recomputes;
            agree;
          })
      runs
  in
  if List.for_all (fun r -> not r.feasible) rows then
    err ~code:"no-policy-ran" Dg.Global
      "no fixed policy executed at M=%d (cache too small?)" cache_size;
  if lv.Df.maxlive <= cache_size then
    info ~code:"spill-free" Dg.Global
      "MAXLIVE %d <= M=%d: this order admits a spill-free schedule (I/O = %d)"
      lv.Df.maxlive cache_size
      (lv.Df.inputs_used + lv.Df.outputs_stored);
  let segment_r, segment_bound, segment_min_io =
    match cdag with
    | None -> (None, None, None)
    | Some cdag -> (
      let r =
        match segment_r with
        | Some r -> Some r
        | None -> default_segment_r cdag ~cache_size
      in
      match (r, !lru_trace) with
      | Some r, Some trace ->
        let a = Seg.analyze cdag ~cache_size ~r trace in
        if not (Seg.lemma_3_6_holds a) then
          err ~code:"segment-bound" Dg.Global
            "Lemma 3.6 violated at r=%d: some full segment moves fewer than \
             ceil(r^2/2) - M = %d words"
            r a.Seg.bound;
        (Some r, Some a.Seg.bound, Seg.min_io_full_segments a)
      | _ -> (None, None, None))
  in
  {
    workload = work.W.name;
    cache_size;
    order_len = List.length order;
    maxlive = lv.Df.maxlive;
    inputs_used = lv.Df.inputs_used;
    outputs_stored = lv.Df.outputs_stored;
    io_lower_bound = lb;
    segment_r;
    segment_bound;
    segment_min_io;
    rows;
    report = Dg.Collector.report c;
  }

let certified t = Dg.is_clean t.report
