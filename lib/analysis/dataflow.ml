(* The dataflow core every static pass runs on: flat-array bitsets,
   a deterministic worklist fixpoint over Digraph, Zobrist state
   hashing for the incremental trace oracle, and the schedule-level
   liveness analyses (MAXLIVE, static I/O lower bound, trace
   occupancy/live profiles).

   Determinism is the design constraint that shapes everything here:
   the worklist is a flat int ring seeded in id order with dedup, the
   Zobrist tables are Prng-derived, the profiles are single passes in
   trace order — no Hashtbl, no physical-equality hashing, identical
   results in every process and at every --jobs. *)

module W = Fmm_machine.Workload
module Tr = Fmm_machine.Trace
module D = Fmm_graph.Digraph
module Prng = Fmm_util.Prng

module Bitset = struct
  (* 32 ids per word: [lsr 5]/[land 31] index math keeps membership a
     couple of instructions, and an int word still popcounts fast. *)
  type t = { words : int array; n : int }

  let create n =
    if n < 0 then invalid_arg "Bitset.create: negative capacity";
    { words = Array.make ((n + 31) / 32) 0; n }

  let capacity t = t.n

  let mem t v = t.words.(v lsr 5) land (1 lsl (v land 31)) <> 0

  let add t v = t.words.(v lsr 5) <- t.words.(v lsr 5) lor (1 lsl (v land 31))

  let remove t v =
    t.words.(v lsr 5) <- t.words.(v lsr 5) land lnot (1 lsl (v land 31))

  let copy t = { t with words = Array.copy t.words }

  let blit ~src ~dst =
    if src.n <> dst.n then invalid_arg "Bitset.blit: capacity mismatch";
    Array.blit src.words 0 dst.words 0 (Array.length src.words)

  let popcount w =
    let rec go acc w = if w = 0 then acc else go (acc + 1) (w land (w - 1)) in
    go 0 w

  let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

  let equal a b = a.n = b.n && a.words = b.words

  let iter f t =
    for v = 0 to t.n - 1 do
      if mem t v then f v
    done

  let to_list t =
    let acc = ref [] in
    for v = t.n - 1 downto 0 do
      if mem t v then acc := v :: !acc
    done;
    !acc
end

module Zobrist = struct
  type t = { keys : int array; props : int }

  (* 62-bit nonnegative keys so xor-accumulated hashes stay positive
     native ints on 64-bit platforms. *)
  let mask = (1 lsl 62) - 1

  let create ~seed ~n ~props =
    if n < 0 || props <= 0 then invalid_arg "Zobrist.create";
    let rng = Prng.create ~seed in
    let keys =
      Array.init (n * props) (fun _ -> Int64.to_int (Prng.next_int64 rng) land mask)
    in
    { keys; props }

  let key t v ~prop = t.keys.((v * t.props) + prop)
end

module type DOMAIN = sig
  type fact

  val equal : fact -> fact -> bool
  val join : fact -> fact -> fact
end

module Fixpoint (Dom : DOMAIN) = struct
  let solve g ~direction ~init ~transfer =
    let n = D.n_vertices g in
    let deps, succs =
      match direction with
      | `Forward -> (D.in_neighbors g, D.out_neighbors g)
      | `Backward -> (D.out_neighbors g, D.in_neighbors g)
    in
    let out = Array.init n init in
    if n > 0 then begin
      (* flat ring queue; on_queue dedup bounds residency to n *)
      let queue = Array.make n 0 in
      let on_queue = Array.make n false in
      let head = ref 0 and tail = ref 0 and filled = ref 0 in
      let push v =
        if not on_queue.(v) then begin
          on_queue.(v) <- true;
          queue.(!tail) <- v;
          tail := (!tail + 1) mod n;
          incr filled
        end
      in
      (match direction with
      | `Forward -> for v = 0 to n - 1 do push v done
      | `Backward -> for v = n - 1 downto 0 do push v done);
      while !filled > 0 do
        let v = queue.(!head) in
        head := (!head + 1) mod n;
        decr filled;
        on_queue.(v) <- false;
        let fact =
          List.fold_left (fun acc p -> Dom.join acc out.(p)) (init v) (deps v)
        in
        let fresh = transfer v fact in
        if not (Dom.equal fresh out.(v)) then begin
          out.(v) <- fresh;
          List.iter push (succs v)
        end
      done
    end;
    out
end

module Bool_fix = Fixpoint (struct
  type fact = bool

  let equal = Bool.equal
  let join = ( || )
end)

let reach_bits g seeds ~direction =
  let n = D.n_vertices g in
  let seed_set = Bitset.create n in
  List.iter
    (fun v -> if v >= 0 && v < n then Bitset.add seed_set v)
    seeds;
  let out =
    Bool_fix.solve g ~direction
      ~init:(fun v -> Bitset.mem seed_set v)
      ~transfer:(fun _ f -> f)
  in
  let bits = Bitset.create n in
  Array.iteri (fun v b -> if b then Bitset.add bits v) out;
  bits

let reachable g seeds = reach_bits g seeds ~direction:`Forward
let needed g seeds = reach_bits g seeds ~direction:`Backward

(* --- interval liveness of a compute order (MAXLIVE) --- *)

type liveness = {
  order : int array;
  def_pos : int array;
  first_use : int array;
  last_use : int array;
  live_at : int array;
  maxlive : int;
  inputs_used : int;
  outputs_stored : int;
}

let order_liveness work order =
  let n = W.n_vertices work in
  let g = work.W.graph in
  let is_input = W.is_input work in
  let len = Array.length order in
  let def_pos = Array.make n (-1) in
  Array.iteri
    (fun i v ->
      if v < 0 || v >= n then
        invalid_arg (Printf.sprintf "order_liveness: vertex %d out of range" v);
      if is_input v then
        invalid_arg (Printf.sprintf "order_liveness: input %d in order" v);
      if def_pos.(v) >= 0 then
        invalid_arg (Printf.sprintf "order_liveness: vertex %d repeated" v);
      def_pos.(v) <- i)
    order;
  let first_use = Array.make n (-1) and last_use = Array.make n (-1) in
  Array.iteri
    (fun i v ->
      List.iter
        (fun p ->
          if first_use.(p) < 0 then first_use.(p) <- i;
          last_use.(p) <- max last_use.(p) i)
        (D.in_neighbors g v))
    order;
  (* a value is live on [start..stop]: inputs from their first use,
     computed values from their definition, both through their last
     use (a defined-but-unused value still occupies its own slot at
     its definition instant) *)
  let diff = Array.make (len + 1) 0 in
  let inputs_used = ref 0 in
  for v = 0 to n - 1 do
    let start, stop =
      if is_input v then begin
        if first_use.(v) >= 0 then incr inputs_used;
        (first_use.(v), last_use.(v))
      end
      else if def_pos.(v) >= 0 then (def_pos.(v), max def_pos.(v) last_use.(v))
      else (-1, -1)
    in
    if start >= 0 then begin
      diff.(start) <- diff.(start) + 1;
      diff.(stop + 1) <- diff.(stop + 1) - 1
    end
  done;
  let live_at = Array.make len 0 in
  let running = ref 0 in
  for i = 0 to len - 1 do
    running := !running + diff.(i);
    live_at.(i) <- !running
  done;
  let maxlive = Array.fold_left max 0 live_at in
  let outputs_stored =
    Array.fold_left
      (fun acc v -> if is_input v then acc else acc + 1)
      0 work.W.outputs
  in
  {
    order;
    def_pos;
    first_use;
    last_use;
    live_at;
    maxlive;
    inputs_used = !inputs_used;
    outputs_stored;
  }

let io_lower_bound lv ~cache_size =
  let excess =
    Array.fold_left (fun acc l -> max acc (l - cache_size)) 0 lv.live_at
  in
  lv.inputs_used + lv.outputs_stored + excess

(* --- streaming MAXLIVE of an implicit CDAG's canonical order --- *)

module Streamed = struct
  type t = {
    length : int;
    maxlive : int;
    inputs_used : int;
    outputs_stored : int;
  }
end

(** [order_liveness] of the ascending-id order, computed as a single
    sweep over positions with a min-heap of interval stop positions —
    O(maxlive) live state instead of O(V) position arrays. An interval
    opens at a vertex's definition (or an input's first use, detected
    as "this consumer is my minimum successor") and closes after its
    last use; the running count at each position is the liveness. *)
let implicit_order_liveness imp =
  let module Im = Fmm_cdag.Implicit in
  let n_inp = Im.n_inputs imp in
  let len = Im.n_vertices imp - n_inp in
  (* binary min-heap of stop positions *)
  let heap = ref (Array.make 1024 0) in
  let hn = ref 0 in
  let swap a i j =
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  in
  let push x =
    if !hn = Array.length !heap then begin
      let bigger = Array.make (2 * !hn) 0 in
      Array.blit !heap 0 bigger 0 !hn;
      heap := bigger
    end;
    let a = !heap in
    a.(!hn) <- x;
    let i = ref !hn in
    incr hn;
    while !i > 0 && a.((!i - 1) / 2) > a.(!i) do
      swap a ((!i - 1) / 2) !i;
      i := (!i - 1) / 2
    done
  in
  let pop () =
    let a = !heap in
    decr hn;
    a.(0) <- a.(!hn);
    let i = ref 0 in
    let break = ref false in
    while not !break do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let m = ref !i in
      if l < !hn && a.(l) < a.(!m) then m := l;
      if r < !hn && a.(r) < a.(!m) then m := r;
      if !m = !i then break := true
      else begin
        swap a !i !m;
        i := !m
      end
    done
  in
  let running = ref 0 and maxlive = ref 0 and inputs_used = ref 0 in
  for i = 0 to len - 1 do
    let v = n_inp + i in
    while !hn > 0 && !heap.(0) < i do
      pop ();
      decr running
    done;
    (* v is live from its definition through its last use *)
    let stop = ref i in
    Im.iter_succs imp v ~f:(fun s -> if s - n_inp > !stop then stop := s - n_inp);
    push !stop;
    incr running;
    (* an input's interval opens at its first use: v is that first use
       iff v is the input's minimum successor *)
    Im.iter_preds imp v ~f:(fun p _ ->
        if p < n_inp then begin
          let mn = ref max_int and mx = ref (-1) in
          Im.iter_succs imp p ~f:(fun s ->
              if s < !mn then mn := s;
              if s > !mx then mx := s);
          if !mn = v then begin
            incr inputs_used;
            push (!mx - n_inp);
            incr running
          end
        end);
    if !running > !maxlive then maxlive := !running
  done;
  {
    Streamed.length = len;
    maxlive = !maxlive;
    inputs_used = !inputs_used;
    (* CDAG outputs are Mult/Dec vertices, never inputs *)
    outputs_stored = Array.length (Fmm_cdag.Implicit.outputs imp);
  }

let streamed_io_lower_bound (s : Streamed.t) ~cache_size =
  s.Streamed.inputs_used + s.Streamed.outputs_stored
  + max 0 (s.Streamed.maxlive - cache_size)

(* --- per-position profile of a concrete trace --- *)

type profile = {
  occupancy_at : int array;
  live_at_event : int array;
  peak_occupancy : int;
  peak_live : int;
  min_cache : int;
}

(* Access kinds in per-vertex access streams. *)
let k_def = 0 (* Load v / Compute v: (re)materializes v in cache *)
let k_read = 1 (* Store v / operand read: residency serves a use *)
let k_drop = 2 (* Evict v *)

let trace_profile work trace =
  let n = W.n_vertices work in
  let g = work.W.graph in
  let events = Array.of_list trace in
  let t_len = Array.length events in
  let in_range v = v >= 0 && v < n in
  (* pass 1: per-vertex access counts (operands of a compute are one
     access each; out-of-range vertices are skipped — the tolerant
     discipline of Trace_check) *)
  let cnt = Array.make n 0 in
  let tally v = if in_range v then cnt.(v) <- cnt.(v) + 1 in
  Array.iter
    (fun e ->
      match e with
      | Tr.Load v | Tr.Store v | Tr.Evict v -> tally v
      | Tr.Compute v ->
        if in_range v then begin
          List.iter tally (D.in_neighbors g v);
          tally v
        end)
    events;
  let off = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    off.(v + 1) <- off.(v) + cnt.(v)
  done;
  let kinds = Array.make (max 1 off.(n)) 0 in
  let cursor = Array.copy off in
  let record v k =
    if in_range v then begin
      kinds.(cursor.(v)) <- k;
      cursor.(v) <- cursor.(v) + 1
    end
  in
  Array.iter
    (fun e ->
      match e with
      | Tr.Load v -> record v k_def
      | Tr.Store v -> record v k_read
      | Tr.Evict v -> record v k_drop
      | Tr.Compute v ->
        if in_range v then begin
          List.iter (fun p -> record p k_read) (D.in_neighbors g v);
          record v k_def
        end)
    events;
  (* pass 2: replay residency; a resident value is *live* when its
     next access (before any eviction) is a read *)
  let ptr = Array.sub off 0 n in
  let resident = Bitset.create n in
  let live = Bitset.create n in
  let occ = ref 0 and live_n = ref 0 in
  let peak_occ = ref 0 and peak_live = ref 0 in
  let occupancy_at = Array.make t_len 0 in
  let live_at_event = Array.make t_len 0 in
  let touch v k =
    if in_range v then begin
      ptr.(v) <- ptr.(v) + 1;
      (if k = k_def then begin
         if not (Bitset.mem resident v) then begin
           Bitset.add resident v;
           incr occ;
           if !occ > !peak_occ then peak_occ := !occ
         end
       end
       else if k = k_drop then
         if Bitset.mem resident v then begin
           Bitset.remove resident v;
           decr occ
         end);
      let now_live =
        Bitset.mem resident v
        && ptr.(v) < off.(v + 1)
        && kinds.(ptr.(v)) = k_read
      in
      if now_live <> Bitset.mem live v then
        if now_live then begin
          Bitset.add live v;
          incr live_n;
          if !live_n > !peak_live then peak_live := !live_n
        end
        else begin
          Bitset.remove live v;
          decr live_n
        end
    end
  in
  Array.iteri
    (fun t e ->
      (match e with
      | Tr.Load v -> touch v k_def
      | Tr.Store v -> touch v k_read
      | Tr.Evict v -> touch v k_drop
      | Tr.Compute v ->
        if in_range v then begin
          List.iter (fun p -> touch p k_read) (D.in_neighbors g v);
          touch v k_def
        end);
      occupancy_at.(t) <- !occ;
      live_at_event.(t) <- !live_n)
    events;
  {
    occupancy_at;
    live_at_event;
    peak_occupancy = !peak_occ;
    peak_live = !peak_live;
    min_cache = !peak_occ;
  }
