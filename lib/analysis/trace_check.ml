(* Pass 2: the symbolic trace checker.

   A resident-set interpreter over Trace.t with the same semantics as
   Cache_machine but a different failure discipline: every violation
   is recorded as a located diagnostic and the interpreter *recovers*
   (patches the state as if the event had been legal) so that one
   defect does not cascade into a wall of spurious downstream errors.
   On a legal trace the counters agree exactly with
   Cache_machine.replay — enforced by the test suite.

   Beyond legality it tracks provenance of every resident value
   (loaded at step s / computed) and whether it has been read since
   arrival, which yields the lint-grade findings the dynamic oracle
   cannot express: dead loads, redundant stores, and per-vertex
   recomputation attribution.

   The interpreter runs on Dataflow.Bitset abstract state (cache /
   slow / computed / unread-load sets) and can optionally maintain a
   pair of Zobrist hashes over that state. That is what makes the
   incremental oracle possible: check_cached memoizes per-step
   cumulative counters, state hashes and periodic bitset checkpoints,
   and check_delta re-verifies a mutated trace by restoring the
   checkpoint before the first divergence, replaying only the affected
   window, and splicing the memoized suffix back in as soon as the
   hashed abstract state reconverges with the base run. *)

module W = Fmm_machine.Workload
module Tr = Fmm_machine.Trace
module D = Fmm_graph.Digraph
module Dg = Diagnostic
module Bs = Dataflow.Bitset
module Z = Dataflow.Zobrist

type result = {
  report : Dg.report;
  counters : Tr.counters;
  recomputed : (int * int) list;
  dead_loads : int;
  redundant_stores : int;
  peak_occupancy : int;
}

let pass = "trace-check"

(* --- the engine --- *)

(* Diagnostics leave the engine through a sink so the same interpreter
   powers the full reporting pass (collector sink) and the silent
   incremental/fuzz paths; message formatting only ever runs on defect
   paths, so the silent modes pay nothing on clean traces. *)
type sink = Dg.severity -> code:string -> Dg.location -> string -> unit

let silent : sink = fun _ ~code:_ _ _ -> ()

(* Zobrist properties of a vertex (one key pair per (vertex, prop)). *)
let p_cache = 0
let p_slow = 1
let p_comp = 2
let p_unread = 3

type state = {
  n : int;
  cache_size : int;
  allow_recompute : bool;
  graph : D.t;
  is_input : int -> bool;
  cache : Bs.t;
  slow : Bs.t;
  comp : Bs.t;
  unread : Bs.t;
      (* resident values loaded and never read since: exactly the
         candidates for a dead-load lint, and the canonical fourth
         hash property (always a subset of [cache]) *)
  load_step : int array;
  last_evict : int array;
  recompute_count : int array;
  mutable occupancy : int;
  mutable peak : int;
  mutable loads : int;
  mutable stores : int;
  mutable computes : int;
  mutable recomputes : int;
  mutable dead_loads : int;
  mutable redundant_stores : int;
  mutable errors : int;
  zob : (Z.t * Z.t) option;
  mutable h1 : int;
  mutable h2 : int;
}

let flip st prop v =
  match st.zob with
  | None -> ()
  | Some (z1, z2) ->
    st.h1 <- st.h1 lxor Z.key z1 v ~prop;
    st.h2 <- st.h2 lxor Z.key z2 v ~prop

let init_state ?zob ~cache_size ~allow_recompute (work : W.t) =
  let n = W.n_vertices work in
  let st =
    {
      n;
      cache_size;
      allow_recompute;
      graph = work.W.graph;
      is_input = W.is_input work;
      cache = Bs.create n;
      slow = Bs.create n;
      comp = Bs.create n;
      unread = Bs.create n;
      load_step = Array.make n (-1);
      last_evict = Array.make n (-1);
      recompute_count = Array.make n 0;
      occupancy = 0;
      peak = 0;
      loads = 0;
      stores = 0;
      computes = 0;
      recomputes = 0;
      dead_loads = 0;
      redundant_stores = 0;
      errors = 0;
      zob;
      h1 = 0;
      h2 = 0;
    }
  in
  Array.iter
    (fun v ->
      Bs.add st.slow v;
      flip st p_slow v)
    work.W.inputs;
  st

let at step v = Dg.Step { step; vertex = Some v }

let error st (emit : sink) ~code loc msg =
  st.errors <- st.errors + 1;
  emit Dg.Error ~code loc msg

(* Read of a resident value: clears the unread-load mark. *)
let mark_read st v =
  if Bs.mem st.unread v then begin
    Bs.remove st.unread v;
    flip st p_unread v
  end

let insert st emit step v ~by_load =
  if st.occupancy >= st.cache_size then
    error st emit ~code:"cache-overflow" (at step v)
      (Printf.sprintf
         "%s of vertex %d overflows fast memory (occupancy %d = M)"
         (if by_load then "load" else "compute")
         v st.occupancy);
  Bs.add st.cache v;
  flip st p_cache v;
  st.occupancy <- st.occupancy + 1;
  if st.occupancy > st.peak then st.peak <- st.occupancy;
  if by_load then begin
    st.load_step.(v) <- step;
    Bs.add st.unread v;
    flip st p_unread v
  end
  else st.load_step.(v) <- -1

let flag_if_dead_load st emit step v =
  if Bs.mem st.unread v then begin
    st.dead_loads <- st.dead_loads + 1;
    let l = st.load_step.(v) in
    if step >= 0 then
      emit Dg.Lint ~code:"dead-load" (at l v)
        (Printf.sprintf
           "vertex %d loaded at step %d is evicted at step %d without ever \
            being read"
           v l step)
    else
      emit Dg.Lint ~code:"dead-load" (at l v)
        (Printf.sprintf "vertex %d loaded at step %d is never read" v l)
  end

let step st emit t event =
  let v =
    match event with
    | Tr.Load v | Tr.Store v | Tr.Evict v | Tr.Compute v -> v
  in
  if v < 0 || v >= st.n then
    error st emit ~code:"bad-vertex" (at t v)
      (Printf.sprintf "event references vertex %d outside [0, %d)" v st.n)
  else
    match event with
    | Tr.Load v ->
      if not (Bs.mem st.slow v) then
        error st emit ~code:"load-absent" (at t v)
          (Printf.sprintf "load of vertex %d: value not in slow memory%s" v
             (if Bs.mem st.comp v then " (computed but never stored)"
              else if st.is_input v then ""
              else " (never computed or stored)"));
      if Bs.mem st.cache v then
        error st emit ~code:"double-load" (at t v)
          (Printf.sprintf
             "load of vertex %d: value already resident in fast memory" v)
      else insert st emit t v ~by_load:true;
      st.loads <- st.loads + 1
    | Tr.Store v ->
      if not (Bs.mem st.cache v) then
        error st emit ~code:"store-absent" (at t v)
          (Printf.sprintf
             "store of vertex %d: value not resident in fast memory" v)
      else begin
        if Bs.mem st.slow v then begin
          st.redundant_stores <- st.redundant_stores + 1;
          emit Dg.Lint ~code:"redundant-store" (at t v)
            (Printf.sprintf
               "store of vertex %d: value already in slow memory (values are \
                immutable — this I/O is wasted)"
               v)
        end;
        mark_read st v
      end;
      if not (Bs.mem st.slow v) then begin
        Bs.add st.slow v;
        flip st p_slow v
      end;
      st.stores <- st.stores + 1
    | Tr.Evict v ->
      if not (Bs.mem st.cache v) then
        error st emit ~code:"evict-absent" (at t v)
          (Printf.sprintf
             "evict of vertex %d: value not resident in fast memory" v)
      else begin
        flag_if_dead_load st emit t v;
        mark_read st v;
        Bs.remove st.cache v;
        flip st p_cache v;
        st.occupancy <- st.occupancy - 1;
        st.last_evict.(v) <- t
      end
    | Tr.Compute v ->
      if st.is_input v then
        error st emit ~code:"compute-input" (at t v)
          (Printf.sprintf "compute of vertex %d: inputs are not computable" v);
      if Bs.mem st.comp v && not st.allow_recompute then
        error st emit ~code:"recompute-disabled" (at t v)
          (Printf.sprintf
             "compute of vertex %d: already computed and recomputation is \
              disabled"
             v);
      List.iter
        (fun p ->
          if Bs.mem st.cache p then mark_read st p
          else if Bs.mem st.comp p || st.is_input p then
            error st emit ~code:"operand-missing" (at t v)
              (Printf.sprintf "compute of vertex %d: operand %d not resident%s"
                 v p
                 (if st.last_evict.(p) >= 0 then
                    Printf.sprintf " (evicted at step %d)" st.last_evict.(p)
                  else if st.is_input p then " (input never loaded)"
                  else " (never loaded)"))
          else
            error st emit ~code:"use-before-compute" (at t v)
              (Printf.sprintf
                 "compute of vertex %d: operand %d has never been computed" v p))
        (D.in_neighbors st.graph v);
      if not (Bs.mem st.cache v) then insert st emit t v ~by_load:false
      else begin
        (* redefined in place by the compute: the copy is no longer a
           load, so it can no longer be a dead load *)
        st.load_step.(v) <- -1;
        mark_read st v
      end;
      if Bs.mem st.comp v then begin
        st.recompute_count.(v) <- st.recompute_count.(v) + 1;
        st.recomputes <- st.recomputes + 1
      end
      else begin
        Bs.add st.comp v;
        flip st p_comp v
      end;
      st.computes <- st.computes + 1

(* Final-state obligations: every output computed and in slow memory;
   loads still resident at trace end that were never read. *)
let finish st emit (work : W.t) =
  Array.iter
    (fun v ->
      if not (st.is_input v) then begin
        if not (Bs.mem st.comp v) then
          error st emit ~code:"output-not-computed" (Dg.Vertex v)
            (Printf.sprintf "output vertex %d is never computed" v)
        else if not (Bs.mem st.slow v) then
          error st emit ~code:"missing-final-store" (Dg.Vertex v)
            (Printf.sprintf
               "output vertex %d computed but never stored to slow memory" v)
      end)
    work.W.outputs;
  for v = 0 to st.n - 1 do
    if Bs.mem st.cache v then flag_if_dead_load st emit (-1) v
  done

let counters st =
  {
    Tr.loads = st.loads;
    stores = st.stores;
    computes = st.computes;
    recomputes = st.recomputes;
  }

(* --- the full reporting pass --- *)

let check ~cache_size ?(allow_recompute = true) (work : W.t) (trace : Tr.t) =
  let c = Dg.Collector.create ~pass ~title:"trace check" in
  let emit sev ~code loc msg = Dg.Collector.add c sev ~code loc msg in
  let st = init_state ~cache_size ~allow_recompute work in
  List.iteri (fun t event -> step st emit t event) trace;
  finish st emit work;
  let recomputed = ref [] in
  for v = st.n - 1 downto 0 do
    if st.recompute_count.(v) > 0 then
      recomputed := (v, st.recompute_count.(v)) :: !recomputed
  done;
  (match !recomputed with
  | [] -> ()
  | l ->
    let worst_v, worst_k =
      List.fold_left
        (fun (bv, bk) (v, k) -> if k > bk then (v, k) else (bv, bk))
        (-1, 0) l
    in
    emit Dg.Info ~code:"recomputation" Dg.Global
      (Printf.sprintf
         "%d recomputation event(s) across %d vertex(es); most recomputed: \
          vertex %d (%d extra time(s))"
         st.recomputes (List.length l) worst_v worst_k));
  {
    report = Dg.Collector.report c;
    counters = counters st;
    recomputed = !recomputed;
    dead_loads = st.dead_loads;
    redundant_stores = st.redundant_stores;
    peak_occupancy = st.peak;
  }

let clean ~cache_size ?allow_recompute work trace =
  Dg.is_clean (check ~cache_size ?allow_recompute work trace).report

(* --- the incremental oracle --- *)

type verdict = {
  v_counters : Tr.counters;
  v_errors : int;
  v_dead_loads : int;
  v_redundant_stores : int;
  v_peak_occupancy : int;
  reused_prefix : int;
  replayed : int;
  reused_suffix : int;
}

type ckpt = { k_cache : Bs.t; k_slow : Bs.t; k_comp : Bs.t; k_unread : Bs.t }

type cache = {
  c_cache_size : int;
  c_allow_recompute : bool;
  c_n : int;
  events : Tr.event array;
  (* cumulative engine state after k events, k = 0..T *)
  c_loads : int array;
  c_stores : int array;
  c_computes : int array;
  c_recomputes : int array;
  c_errors : int array;
  c_dead : int array;
  c_redundant : int array;
  c_occ : int array;
  c_peak : int array;
  h1s : int array;
  h2s : int array;
  suf_peak : int array;  (* suf_peak.(k) = max occupancy over events k..T *)
  k_every : int;
  ckpts : ckpt array;  (* bitset snapshots after j * k_every events *)
  zob : Z.t * Z.t;
  end_errors : int;  (* contribution of the final-obligation sweep *)
  end_dead : int;
  total : verdict;
}

let snapshot st =
  {
    k_cache = Bs.copy st.cache;
    k_slow = Bs.copy st.slow;
    k_comp = Bs.copy st.comp;
    k_unread = Bs.copy st.unread;
  }

(* The key tables are derived from fixed coordinates, so every process
   (and every check_cached call at the same n) hashes identically. *)
let zobrist_pair n =
  ( Z.create ~seed:(Fmm_util.Prng.derive ~seed:0x7ab1e [ n; 1 ]) ~n ~props:4,
    Z.create ~seed:(Fmm_util.Prng.derive ~seed:0x7ab1e [ n; 2 ]) ~n ~props:4 )

let check_cached ~cache_size ?(allow_recompute = true) (work : W.t)
    (trace : Tr.t) =
  let events = Array.of_list trace in
  let t_len = Array.length events in
  let n = W.n_vertices work in
  let zob = zobrist_pair n in
  let st = init_state ~zob ~cache_size ~allow_recompute work in
  let mk () = Array.make (t_len + 1) 0 in
  let c_loads = mk () and c_stores = mk () in
  let c_computes = mk () and c_recomputes = mk () in
  let c_errors = mk () and c_dead = mk () and c_redundant = mk () in
  let c_occ = mk () and c_peak = mk () in
  let h1s = mk () and h2s = mk () in
  let k_every = max 32 (t_len / 64) in
  let ckpts = Array.make ((t_len / k_every) + 1) (snapshot st) in
  let record k =
    c_loads.(k) <- st.loads;
    c_stores.(k) <- st.stores;
    c_computes.(k) <- st.computes;
    c_recomputes.(k) <- st.recomputes;
    c_errors.(k) <- st.errors;
    c_dead.(k) <- st.dead_loads;
    c_redundant.(k) <- st.redundant_stores;
    c_occ.(k) <- st.occupancy;
    c_peak.(k) <- st.peak;
    h1s.(k) <- st.h1;
    h2s.(k) <- st.h2;
    if k mod k_every = 0 && k > 0 then ckpts.(k / k_every) <- snapshot st
  in
  record 0;
  Array.iteri
    (fun t event ->
      step st silent t event;
      record (t + 1))
    events;
  let errors_before = st.errors and dead_before = st.dead_loads in
  finish st silent work;
  let end_errors = st.errors - errors_before in
  let end_dead = st.dead_loads - dead_before in
  let total =
    {
      v_counters = counters st;
      v_errors = st.errors;
      v_dead_loads = st.dead_loads;
      v_redundant_stores = st.redundant_stores;
      v_peak_occupancy = st.peak;
      reused_prefix = 0;
      replayed = t_len;
      reused_suffix = 0;
    }
  in
  let suf_peak = Array.make (t_len + 1) 0 in
  suf_peak.(t_len) <- c_occ.(t_len);
  for k = t_len - 1 downto 0 do
    suf_peak.(k) <- max c_occ.(k) suf_peak.(k + 1)
  done;
  ( total,
    {
      c_cache_size = cache_size;
      c_allow_recompute = allow_recompute;
      c_n = n;
      events;
      c_loads;
      c_stores;
      c_computes;
      c_recomputes;
      c_errors;
      c_dead;
      c_redundant;
      c_occ;
      c_peak;
      h1s;
      h2s;
      suf_peak;
      k_every;
      ckpts;
      zob;
      end_errors;
      end_dead;
      total;
    } )

let restore base (work : W.t) k =
  let st =
    init_state ~zob:base.zob ~cache_size:base.c_cache_size
      ~allow_recompute:base.c_allow_recompute work
  in
  let ck = base.ckpts.(k / base.k_every) in
  Bs.blit ~src:ck.k_cache ~dst:st.cache;
  Bs.blit ~src:ck.k_slow ~dst:st.slow;
  Bs.blit ~src:ck.k_comp ~dst:st.comp;
  Bs.blit ~src:ck.k_unread ~dst:st.unread;
  st.occupancy <- base.c_occ.(k);
  st.peak <- base.c_peak.(k);
  st.loads <- base.c_loads.(k);
  st.stores <- base.c_stores.(k);
  st.computes <- base.c_computes.(k);
  st.recomputes <- base.c_recomputes.(k);
  st.errors <- base.c_errors.(k);
  st.dead_loads <- base.c_dead.(k);
  st.redundant_stores <- base.c_redundant.(k);
  st.h1 <- base.h1s.(k);
  st.h2 <- base.h2s.(k);
  st

let check_delta ~base (work : W.t) (trace : Tr.t) =
  if W.n_vertices work <> base.c_n then
    invalid_arg "Trace_check.check_delta: workload does not match the base";
  let events' = Array.of_list trace in
  let t_len = Array.length base.events and t_len' = Array.length events' in
  let lim = min t_len t_len' in
  (* longest common prefix / suffix of the two event sequences *)
  let d = ref 0 in
  while !d < lim && events'.(!d) = base.events.(!d) do
    incr d
  done;
  let d = !d in
  let cs = ref 0 in
  while
    !cs < lim && events'.(t_len' - 1 - !cs) = base.events.(t_len - 1 - !cs)
  do
    incr cs
  done;
  let cs = !cs in
  let start = d / base.k_every * base.k_every in
  let st = restore base work start in
  let t = ref start in
  let converged = ref (-1) in
  while !converged < 0 && !t < t_len' do
    let remaining = t_len' - !t in
    (if !t >= d && remaining <= cs then begin
       (* the tail of trace' equals the tail of the base; if the
          hashed abstract state matches the base's at the aligned
          position, the rest of the run is the memoized suffix *)
       let q = t_len - remaining in
       if
         st.h1 = base.h1s.(q)
         && st.h2 = base.h2s.(q)
         && st.occupancy = base.c_occ.(q)
       then converged := q
     end);
    if !converged < 0 then begin
      step st silent !t events'.(!t);
      incr t
    end
  done;
  if !converged >= 0 then begin
    let q = !converged in
    let splice cum now = now + (cum.(t_len) - cum.(q)) in
    {
      v_counters =
        {
          Tr.loads = splice base.c_loads st.loads;
          stores = splice base.c_stores st.stores;
          computes = splice base.c_computes st.computes;
          recomputes = splice base.c_recomputes st.recomputes;
        };
      v_errors = splice base.c_errors st.errors + base.end_errors;
      v_dead_loads = splice base.c_dead st.dead_loads + base.end_dead;
      v_redundant_stores = splice base.c_redundant st.redundant_stores;
      v_peak_occupancy = max st.peak base.suf_peak.(q);
      reused_prefix = start;
      replayed = !t - start;
      reused_suffix = t_len' - !t;
    }
  end
  else begin
    finish st silent work;
    {
      v_counters = counters st;
      v_errors = st.errors;
      v_dead_loads = st.dead_loads;
      v_redundant_stores = st.redundant_stores;
      v_peak_occupancy = st.peak;
      reused_prefix = start;
      replayed = t_len' - start;
      reused_suffix = 0;
    }
  end

let cache_verdict base = base.total
let cache_trace_length base = Array.length base.events
