(* Pass 2: the symbolic trace checker.

   A resident-set interpreter over Trace.t with the same semantics as
   Cache_machine but a different failure discipline: every violation
   is recorded as a located diagnostic and the interpreter *recovers*
   (patches the state as if the event had been legal) so that one
   defect does not cascade into a wall of spurious downstream errors.
   On a legal trace the counters agree exactly with
   Cache_machine.replay — enforced by the test suite.

   Beyond legality it tracks provenance of every resident value
   (loaded at step s / computed) and whether it has been read since
   arrival, which yields the lint-grade findings the dynamic oracle
   cannot express: dead loads, redundant stores, and per-vertex
   recomputation attribution. *)

module W = Fmm_machine.Workload
module Tr = Fmm_machine.Trace
module D = Fmm_graph.Digraph
module Dg = Diagnostic

type result = {
  report : Dg.report;
  counters : Tr.counters;
  recomputed : (int * int) list;
  dead_loads : int;
  redundant_stores : int;
  peak_occupancy : int;
}

type origin = By_load of int | By_compute

let pass = "trace-check"

let check ~cache_size ?(allow_recompute = true) (work : W.t) (trace : Tr.t) =
  let c = Dg.Collector.create ~pass ~title:"trace check" in
  let err ~code loc fmt = Dg.Collector.addf c Dg.Error ~code loc fmt in
  let warn ~code loc fmt = Dg.Collector.addf c Dg.Warning ~code loc fmt in
  let info ~code loc fmt = Dg.Collector.addf c Dg.Info ~code loc fmt in
  let n = W.n_vertices work in
  let g = work.W.graph in
  let is_input = W.is_input work in
  let in_cache = Array.make n false in
  let in_slow = Array.make n false in
  let computed = Array.make n false in
  let origin = Array.make n By_compute in
  let read_since = Array.make n true in
  let last_evict = Array.make n (-1) in
  let recompute_count = Array.make n 0 in
  let occupancy = ref 0 in
  let peak = ref 0 in
  let loads = ref 0 and stores = ref 0 in
  let computes = ref 0 and recomputes = ref 0 in
  let dead_loads = ref 0 and redundant_stores = ref 0 in
  Array.iter (fun v -> in_slow.(v) <- true) work.W.inputs;
  let at step v = Dg.Step { step; vertex = Some v } in
  let insert step v how =
    if !occupancy >= cache_size then
      err ~code:"cache-overflow" (at step v)
        "%s of vertex %d overflows fast memory (occupancy %d = M)"
        (match how with By_load _ -> "load" | By_compute -> "compute")
        v !occupancy;
    in_cache.(v) <- true;
    incr occupancy;
    peak := max !peak !occupancy;
    origin.(v) <- how;
    read_since.(v) <- false
  in
  let flag_if_dead_load step v =
    match origin.(v) with
    | By_load l when not read_since.(v) ->
      incr dead_loads;
      if step >= 0 then
        warn ~code:"dead-load" (at l v)
          "vertex %d loaded at step %d is evicted at step %d without ever \
           being read"
          v l step
      else
        warn ~code:"dead-load" (at l v)
          "vertex %d loaded at step %d is never read" v l
    | _ -> ()
  in
  List.iteri
    (fun step event ->
      let v =
        match event with
        | Tr.Load v | Tr.Store v | Tr.Evict v | Tr.Compute v -> v
      in
      if v < 0 || v >= n then
        err ~code:"bad-vertex" (at step v)
          "event references vertex %d outside [0, %d)" v n
      else
        match event with
        | Tr.Load v ->
          if not in_slow.(v) then
            err ~code:"load-absent" (at step v)
              "load of vertex %d: value not in slow memory%s" v
              (if computed.(v) then " (computed but never stored)"
               else if is_input v then ""
               else " (never computed or stored)");
          if in_cache.(v) then
            err ~code:"double-load" (at step v)
              "load of vertex %d: value already resident in fast memory" v
          else insert step v (By_load step);
          incr loads
        | Tr.Store v ->
          if not in_cache.(v) then
            err ~code:"store-absent" (at step v)
              "store of vertex %d: value not resident in fast memory" v
          else begin
            if in_slow.(v) then begin
              incr redundant_stores;
              warn ~code:"redundant-store" (at step v)
                "store of vertex %d: value already in slow memory \
                 (values are immutable — this I/O is wasted)"
                v
            end;
            read_since.(v) <- true
          end;
          in_slow.(v) <- true;
          incr stores
        | Tr.Evict v ->
          if not in_cache.(v) then
            err ~code:"evict-absent" (at step v)
              "evict of vertex %d: value not resident in fast memory" v
          else begin
            flag_if_dead_load step v;
            in_cache.(v) <- false;
            decr occupancy;
            last_evict.(v) <- step
          end
        | Tr.Compute v ->
          if is_input v then
            err ~code:"compute-input" (at step v)
              "compute of vertex %d: inputs are not computable" v;
          if computed.(v) && not allow_recompute then
            err ~code:"recompute-disabled" (at step v)
              "compute of vertex %d: already computed and recomputation is \
               disabled"
              v;
          List.iter
            (fun p ->
              if in_cache.(p) then read_since.(p) <- true
              else if computed.(p) || is_input p then
                err ~code:"operand-missing" (at step v)
                  "compute of vertex %d: operand %d not resident%s" v p
                  (if last_evict.(p) >= 0 then
                     Printf.sprintf " (evicted at step %d)" last_evict.(p)
                   else if is_input p then " (input never loaded)"
                   else " (never loaded)")
              else
                err ~code:"use-before-compute" (at step v)
                  "compute of vertex %d: operand %d has never been computed"
                  v p)
            (D.in_neighbors g v);
          if not in_cache.(v) then insert step v By_compute
          else origin.(v) <- By_compute;
          if computed.(v) then begin
            recompute_count.(v) <- recompute_count.(v) + 1;
            incr recomputes
          end;
          computed.(v) <- true;
          incr computes)
    trace;
  (* final-state obligations: every output computed and in slow memory *)
  Array.iter
    (fun v ->
      if not (is_input v) then begin
        if not computed.(v) then
          err ~code:"output-not-computed" (Dg.Vertex v)
            "output vertex %d is never computed" v
        else if not in_slow.(v) then
          err ~code:"missing-final-store" (Dg.Vertex v)
            "output vertex %d computed but never stored to slow memory" v
      end)
    work.W.outputs;
  (* loads still resident at trace end that were never read *)
  for v = 0 to n - 1 do
    if in_cache.(v) then flag_if_dead_load (-1) v
  done;
  let recomputed = ref [] in
  for v = n - 1 downto 0 do
    if recompute_count.(v) > 0 then
      recomputed := (v, recompute_count.(v)) :: !recomputed
  done;
  (match !recomputed with
  | [] -> ()
  | l ->
    let worst_v, worst_k =
      List.fold_left
        (fun (bv, bk) (v, k) -> if k > bk then (v, k) else (bv, bk))
        (-1, 0) l
    in
    info ~code:"recomputation" Dg.Global
      "%d recomputation event(s) across %d vertex(es); most recomputed: \
       vertex %d (%d extra time(s))"
      !recomputes (List.length l) worst_v worst_k);
  {
    report = Dg.Collector.report c;
    counters =
      {
        Tr.loads = !loads;
        stores = !stores;
        computes = !computes;
        recomputes = !recomputes;
      };
    recomputed = !recomputed;
    dead_loads = !dead_loads;
    redundant_stores = !redundant_stores;
    peak_occupancy = !peak;
  }

let clean ~cache_size ?allow_recompute work trace =
  Dg.is_clean (check ~cache_size ?allow_recompute work trace).report
