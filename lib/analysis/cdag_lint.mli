(** Static structural lint of bilinear CDAGs (pass 1 of the analyzer).

    Verifies the invariants that Definition 2.1 and Fact 2.1 of the
    paper promise of every H^{n x n}: acyclicity, per-role in-degree
    bounds derived from the base algorithm's U/V/W sparsity (a
    2x2-base encoder row touches at most the 4 base entries, a Mult
    has exactly its two encoded operands, a decoder at most t
    products), role-consistent edges (inputs feed encoders, encoders
    feed encoders/mults, mults feed decoders, decoders feed decoders),
    and reachability hygiene (no vertex unreachable from the inputs,
    no vertex that feeds no output). *)

val lint : Fmm_cdag.Cdag.t -> Diagnostic.report
(** Lint a CDAG as built by {!Fmm_cdag.Cdag.build}, including hybrid
    (cutoff > 1) CDAGs: the decoder in-degree bound is widened to
    [max (W sparsity) cutoff] — the Fact 2.1 instantiation for a
    classical leaf whose decoder sums the cutoff elementary products
    of one output entry. *)

val lint_graph :
  ?dec_leaf:int ->
  graph:Fmm_graph.Digraph.t ->
  role:(int -> Fmm_cdag.Cdag.role) ->
  inputs:int array ->
  outputs:int array ->
  base:Fmm_bilinear.Algorithm.t ->
  unit ->
  Diagnostic.report
(** Same checks over an explicit (graph, role, inputs, outputs) view —
    the entry point for linting {e corrupted} copies of a CDAG's graph
    (the append-only {!Fmm_graph.Digraph} cannot delete edges, so
    corruption tests rebuild the graph minus an edge). [dec_leaf]
    (default 1) is the hybrid cutoff; it widens the decoder in-degree
    bound to [max (W sparsity) dec_leaf]. *)

val lint_implicit : ?samples:int -> Fmm_cdag.Implicit.t -> Diagnostic.report
(** Lint an implicit CDAG: global closed-form census identities plus
    the Fact 2.1 / role-edge / reciprocity / ascending-id checks on an
    id-stride sample of [samples] vertices (default 4096) and the
    layout boundary ids. Runs at any n the arithmetic supports. *)

val lint_workload : Fmm_machine.Workload.t -> Diagnostic.report
(** Role-free DAG hygiene for arbitrary workloads and pebbling
    instances: acyclic, inputs are sources, non-inputs have operands,
    every vertex reachable from the inputs, every vertex feeds some
    output, outputs exist. *)
