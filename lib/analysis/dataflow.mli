(** The generic dataflow / abstract-interpretation substrate of the
    static analyzer (DESIGN.md §12). Three layers:

    {ol
    {- {!Bitset}: flat int-array bitsets — the abstract domain every
       analysis here stores vertex sets in, and the state
       representation {!Trace_check}'s interpreter runs on.}
    {- {!Fixpoint}: a worklist fixpoint solver over
       {!Fmm_graph.Digraph.t} with a deterministic iteration order
       (flat int-array ring queue, ascending seed order), direction
       forward (facts flow along edges) or backward (against them).
       {!reachable}/{!needed} are its boolean instances and what
       {!Cdag_lint} runs its hygiene sweep on.}
    {- Schedule analyses: {!order_liveness} (interval liveness of a
       compute order — MAXLIVE, the spill-free minimum cache),
       {!io_lower_bound} (a policy-independent static I/O lower bound
       for every no-recomputation schedule of a given order), and
       {!trace_profile} (per-position occupancy/live profile of a
       concrete trace — its peak is the minimum cache size for which
       the trace is legal).}}

    Everything is deterministic: no hashing of boxed values, no
    [Hashtbl] iteration order, identical output at any [--jobs]. *)

(** Fixed-capacity bitsets over vertex ids [0..n-1], packed into an
    [int array] (32 bits per word). *)
module Bitset : sig
  type t

  val create : int -> t
  (** All-zero set with capacity for ids [0..n-1]. *)

  val capacity : t -> int
  val mem : t -> int -> bool
  val add : t -> int -> unit
  val remove : t -> int -> unit
  val copy : t -> t

  val blit : src:t -> dst:t -> unit
  (** Overwrite [dst] with [src]'s contents (same capacity required). *)

  val cardinal : t -> int
  val equal : t -> t -> bool

  val iter : (int -> unit) -> t -> unit
  (** Ascending id order. *)

  val to_list : t -> int list
  (** Ascending. *)
end

(** Deterministic Zobrist key tables: one key per (vertex, property)
    pair, drawn from {!Fmm_util.Prng} so every process derives the
    identical table. Used by {!Trace_check}'s incremental oracle to
    hash abstract machine states in O(1) per transition. *)
module Zobrist : sig
  type t

  val create : seed:int -> n:int -> props:int -> t
  val key : t -> int -> prop:int -> int
  (** A 62-bit nonnegative key for [(vertex, prop)]; [prop] in
      [0..props-1]. *)
end

(** The fixpoint solver, parameterized by the abstract domain. *)
module type DOMAIN = sig
  type fact

  val equal : fact -> fact -> bool
  val join : fact -> fact -> fact
end

module Fixpoint (Dom : DOMAIN) : sig
  val solve :
    Fmm_graph.Digraph.t ->
    direction:[ `Forward | `Backward ] ->
    init:(int -> Dom.fact) ->
    transfer:(int -> Dom.fact -> Dom.fact) ->
    Dom.fact array
  (** [solve g ~direction ~init ~transfer] computes the least fixpoint
      of [out(v) = transfer v (join (init v) (join over dependency
      out-facts))], where the dependencies are in-neighbors
      ([`Forward]) or out-neighbors ([`Backward]). The worklist is a
      flat int ring seeded with every vertex ascending ([`Forward]) or
      descending ([`Backward]); re-queueing is deduplicated, so the
      iteration order — and on non-monotone domains the result — is a
      deterministic function of the graph alone. *)
end

val reachable : Fmm_graph.Digraph.t -> int list -> Bitset.t
(** Vertices reachable from the seed set following edges forward — the
    boolean forward instance of {!Fixpoint}. *)

val needed : Fmm_graph.Digraph.t -> int list -> Bitset.t
(** Vertices from which the seed set is reachable (backward
    reachability): everything an evaluation of the seeds needs. *)

(** Interval liveness of a compute order (inputs live from first use,
    computed values from their definition, both until last use). *)
type liveness = {
  order : int array;
  def_pos : int array;
      (** order position of each vertex's (first) compute; -1 for
          inputs and unscheduled vertices *)
  first_use : int array;  (** earliest order position reading v; -1 if none *)
  last_use : int array;  (** latest order position reading v; -1 if none *)
  live_at : int array;
      (** [live_at.(i)]: values that must be simultaneously resident
          at the instant [order.(i)] is computed, in any schedule of
          this order that never spills and never recomputes *)
  maxlive : int;  (** [max_i live_at.(i)] — the spill-free minimum cache *)
  inputs_used : int;  (** inputs with at least one scheduled consumer *)
  outputs_stored : int;  (** output vertices that are not inputs *)
}

val order_liveness : Fmm_machine.Workload.t -> int array -> liveness
(** The order must be a permutation of the non-input vertices
    (schedulers' contract); raises [Invalid_argument] on out-of-range
    ids or duplicates. MAXLIVE semantics: with [cache_size >= maxlive]
    the order admits a schedule with exactly one load per used input,
    one store per non-input output and no other I/O; below [maxlive]
    every no-recomputation schedule of the order must spill. *)

val io_lower_bound : liveness -> cache_size:int -> int
(** [inputs_used + outputs_stored + max_i (live_at.(i) - cache_size)+]:
    a lower bound on loads+stores for {e every} legal no-recomputation
    trace whose first-compute sequence is this order. Each used input
    costs one load and each non-input output one store; at the
    position of peak liveness, each of the [live - M] live values that
    cannot be resident must either be an input loaded a second time or
    a computed value stored and reloaded — at least one extra I/O
    each. Policy-independent: LRU, Belady and every hybrid without
    recomputation are all bound by it (recomputation escapes it, which
    is the paper's point). *)

(** Summary of {!order_liveness} computable by streaming (no
    per-position arrays). *)
module Streamed : sig
  type t = {
    length : int;  (** number of scheduled (non-input) vertices *)
    maxlive : int;
    inputs_used : int;
    outputs_stored : int;
  }
end

val implicit_order_liveness : Fmm_cdag.Implicit.t -> Streamed.t
(** MAXLIVE of the canonical ascending-id order of an implicit CDAG,
    via a position sweep with a min-heap of interval stops. Agrees
    with [order_liveness] on the same order wherever the explicit
    graph fits in memory; runs at n = 256+ where it does not. *)

val streamed_io_lower_bound : Streamed.t -> cache_size:int -> int
(** The {!io_lower_bound} formula on a streamed summary. *)

(** Per-position cache profile of a concrete trace. *)
type profile = {
  occupancy_at : int array;
      (** residency count after each event (length = trace length) *)
  live_at_event : int array;
      (** after each event: resident values whose next access before
          leaving cache is a read (they are serving a future use) *)
  peak_occupancy : int;
  peak_live : int;
  min_cache : int;
      (** smallest cache size for which this trace is legal — equal to
          [peak_occupancy]: occupancy is cache-size-independent, so the
          trace replays iff M >= its peak *)
}

val trace_profile : Fmm_machine.Workload.t -> Fmm_machine.Trace.t -> profile
(** Tolerant on illegal traces (ignores loads of resident values and
    evictions of absent ones — same recovery discipline as
    {!Trace_check}); on legal traces [peak_occupancy] equals
    {!Trace_check.check}'s [peak_occupancy] exactly (enforced by the
    test suite on every registry trace). *)
