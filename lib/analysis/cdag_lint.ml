(* Pass 1: structural lint of bilinear CDAGs.

   The invariants checked are exactly the ones the paper's arguments
   lean on: Definition 2.1 (three-phase encode/recurse/decode
   structure, reflected here as role-consistent edges), Fact 2.1
   (bounded in-degrees — every vertex of H^{n x n} depends on at most
   max(nnz-row) predecessors, with Mult vertices on exactly their two
   encoded operands), and the hygiene conditions (acyclic, no vertex
   unreachable from the inputs, no vertex that feeds no output) that
   make dominator/segment arguments over sub-CDAGs sound.

   A clean CDAG produces an empty report; every violation is a
   separate located diagnostic, so a corrupted graph with k
   independent defects yields k findings. *)

module D = Fmm_graph.Digraph
module Cd = Fmm_cdag.Cdag
module A = Fmm_bilinear.Algorithm
module Dg = Diagnostic

let pass = "cdag-lint"

let max_row_nnz rows =
  Array.fold_left
    (fun acc row ->
      max acc
        (Array.fold_left (fun k c -> if c <> 0 then k + 1 else k) 0 row))
    0 rows

let role_name = Cd.role_to_string

let lint_graph ?(dec_leaf = 1) ~graph ~role ~inputs ~outputs ~base () =
  let c = Dg.Collector.create ~pass ~title:"CDAG lint" in
  let err ~code loc fmt = Dg.Collector.addf c Dg.Error ~code loc fmt in
  let warn ~code loc fmt = Dg.Collector.addf c Dg.Warning ~code loc fmt in
  let n = D.n_vertices graph in
  if not (D.is_dag graph) then
    err ~code:"cycle" Dg.Global "graph contains a cycle";
  if Array.length outputs = 0 then
    err ~code:"no-outputs" Dg.Global "CDAG has no output vertices";
  (* Fact 2.1 in-degree bounds, instantiated from the base algorithm's
     U/V/W sparsity (for a 2x2 base: encoders <= 4, decoders <= t). *)
  let enc_a_max = max_row_nnz (A.u_matrix base) in
  let enc_b_max = max_row_nnz (A.v_matrix base) in
  (* Hybrid instantiation of Fact 2.1: a classical leaf's decoder sums
     the [dec_leaf] elementary products of one output entry, so the
     decoder bound is the max of the base W sparsity and the cutoff. *)
  let dec_max = max (max_row_nnz (A.w_matrix base)) dec_leaf in
  let is_input = Array.make n false in
  Array.iter
    (fun v -> if v >= 0 && v < n then is_input.(v) <- true)
    inputs;
  let side_a = function Cd.Input_a _ | Cd.Enc_a -> true | _ -> false in
  let side_b = function Cd.Input_b _ | Cd.Enc_b -> true | _ -> false in
  let check_preds v allowed =
    List.iter
      (fun p ->
        if not (allowed (role p)) then
          err ~code:"role-edge" (Dg.Edge { src = p; dst = v })
            "illegal edge: %s may not feed %s" (role_name (role p))
            (role_name (role v)))
      (D.in_neighbors graph v)
  in
  for v = 0 to n - 1 do
    let indeg = D.in_degree graph v in
    match role v with
    | Cd.Input_a _ | Cd.Input_b _ ->
      if indeg > 0 then
        err ~code:"input-with-preds" (Dg.Vertex v)
          "input vertex has %d in-edge(s); inputs must be sources" indeg;
      if not is_input.(v) then
        err ~code:"role-mismatch" (Dg.Vertex v)
          "vertex has input role but is not in the declared input set"
    | Cd.Enc_a ->
      if indeg = 0 then
        err ~code:"orphan-encoder" (Dg.Vertex v)
          "encoder vertex has no operands";
      if indeg > enc_a_max then
        err ~code:"degree-bound" (Dg.Vertex v)
          "Fact 2.1: encA in-degree %d exceeds the base-row bound %d" indeg
          enc_a_max;
      check_preds v (function Cd.Input_a _ | Cd.Enc_a -> true | _ -> false)
    | Cd.Enc_b ->
      if indeg = 0 then
        err ~code:"orphan-encoder" (Dg.Vertex v)
          "encoder vertex has no operands";
      if indeg > enc_b_max then
        err ~code:"degree-bound" (Dg.Vertex v)
          "Fact 2.1: encB in-degree %d exceeds the base-row bound %d" indeg
          enc_b_max;
      check_preds v (function Cd.Input_b _ | Cd.Enc_b -> true | _ -> false)
    | Cd.Mult ->
      if indeg <> 2 then
        err ~code:"degree-bound" (Dg.Vertex v)
          "Fact 2.1: Mult vertex has %d operand(s), expected exactly 2"
          indeg
      else begin
        let preds = D.in_neighbors graph v in
        let a_ops = List.length (List.filter (fun p -> side_a (role p)) preds) in
        let b_ops = List.length (List.filter (fun p -> side_b (role p)) preds) in
        if a_ops <> 1 || b_ops <> 1 then
          err ~code:"role-edge" (Dg.Vertex v)
            "Mult operands must be one A-side and one B-side vertex (got %d/%d)"
            a_ops b_ops
      end
    | Cd.Dec ->
      if indeg = 0 then
        err ~code:"orphan-decoder" (Dg.Vertex v)
          "decoder vertex has no operands";
      if indeg > dec_max then
        err ~code:"degree-bound" (Dg.Vertex v)
          "Fact 2.1: decoder in-degree %d exceeds the base-row bound %d"
          indeg dec_max;
      check_preds v (function Cd.Mult | Cd.Dec -> true | _ -> false)
  done;
  Array.iter
    (fun v ->
      match role v with
      | Cd.Input_a _ | Cd.Input_b _ -> ()
      | r ->
        err ~code:"role-mismatch" (Dg.Vertex v)
          "declared input has non-input role %s" (role_name r))
    inputs;
  Array.iter
    (fun v ->
      match role v with
      | Cd.Dec | Cd.Mult -> ()
      | r ->
        err ~code:"output-role" (Dg.Vertex v)
          "output vertex has role %s; outputs must be decoders (or the \
           Mult of a degenerate 1x1 problem)"
          (role_name r))
    outputs;
  (* reachability hygiene: sound sub-CDAG selection (Lemmas 2.2/3.7)
     needs every vertex on an input-to-output path — the boolean
     forward/backward instances of the Dataflow fixpoint *)
  let reach = Dataflow.reachable graph (Array.to_list inputs) in
  let coreach = Dataflow.needed graph (Array.to_list outputs) in
  for v = 0 to n - 1 do
    if not (Dataflow.Bitset.mem reach v) then
      err ~code:"unreachable" (Dg.Vertex v)
        "%s vertex unreachable from the inputs" (role_name (role v));
    if not (Dataflow.Bitset.mem coreach v) then
      warn ~code:"dead-vertex" (Dg.Vertex v)
        "%s vertex feeds no output" (role_name (role v))
  done;
  Dg.Collector.report c

let lint cdag =
  lint_graph ~dec_leaf:(Cd.cutoff cdag) ~graph:(Cd.graph cdag)
    ~role:(Cd.role cdag) ~inputs:(Cd.inputs cdag) ~outputs:(Cd.outputs cdag)
    ~base:(Cd.base_algorithm cdag) ()

(* Sampled structural lint of an implicit CDAG. A full sweep is the
   point of lint_graph and impossible at n = 256+ (40M+ vertices), so
   this pass checks (a) the closed-form census identities that must
   hold globally, and (b) the per-vertex invariants of Fact 2.1 /
   Definition 2.1 on an id-stride sample plus the layout boundary ids,
   including adjacency reciprocity and the ascending-id topological
   property (acyclicity witness: every edge goes low -> high, so no
   cycle can exist through a checked vertex). *)
let lint_implicit ?(samples = 4096) imp =
  let module Im = Fmm_cdag.Implicit in
  let c = Dg.Collector.create ~pass ~title:"implicit CDAG lint" in
  let err ~code loc fmt = Dg.Collector.addf c Dg.Error ~code loc fmt in
  let base = Im.base_algorithm imp in
  let enc_a_max = max_row_nnz (A.u_matrix base) in
  let enc_b_max = max_row_nnz (A.v_matrix base) in
  let dec_max = max_row_nnz (A.w_matrix base) in
  let nv = Im.n_vertices imp in
  let n_inp = Im.n_inputs imp in
  let n2 = n_inp / 2 in
  (* global census identities *)
  let st = Im.stats imp in
  let get k = match List.assoc_opt k st with Some v -> v | None -> -1 in
  if
    get "inputs" + get "enc_a" + get "enc_b" + get "mult" + get "dec"
    <> get "vertices"
  then err ~code:"census" Dg.Global "role censuses do not sum to the vertex count";
  if get "inputs" <> n_inp then
    err ~code:"census" Dg.Global "input census %d <> 2 n^2 = %d" (get "inputs")
      n_inp;
  if get "outputs" <> n2 then
    err ~code:"census" Dg.Global "output census %d <> n^2 = %d" (get "outputs") n2;
  if Im.sub_output_count imp ~r:(Im.size imp) <> n2 then
    err ~code:"census" Dg.Global "root V_out count is not n^2";
  (* sampled per-vertex checks *)
  let side_a = function Cd.Input_a _ | Cd.Enc_a -> true | _ -> false in
  let side_b = function Cd.Input_b _ | Cd.Enc_b -> true | _ -> false in
  let check_vertex v =
    let role = Im.role imp v in
    let preds = Im.preds imp v in
    let indeg = List.length preds in
    if indeg <> Im.in_degree imp v then
      err ~code:"degree" (Dg.Vertex v) "in_degree disagrees with enumerated preds";
    (* ascending-id topological property + reciprocity *)
    List.iter
      (fun (p, _) ->
        if p >= v then
          err ~code:"order" (Dg.Edge { src = p; dst = v })
            "edge does not go from a lower to a higher id";
        if not (List.mem v (Im.succs imp p)) then
          err ~code:"reciprocity" (Dg.Edge { src = p; dst = v })
            "pred edge not mirrored in succs")
      preds;
    List.iter
      (fun s ->
        if s <= v then
          err ~code:"order" (Dg.Edge { src = v; dst = s })
            "edge does not go from a lower to a higher id";
        if not (List.exists (fun (p, _) -> p = v) (Im.preds imp s)) then
          err ~code:"reciprocity" (Dg.Edge { src = v; dst = s })
            "succ edge not mirrored in preds")
      (Im.succs imp v);
    (* Fact 2.1 / Definition 2.1 *)
    (match role with
    | Cd.Input_a _ | Cd.Input_b _ ->
      if indeg > 0 then
        err ~code:"input-with-preds" (Dg.Vertex v)
          "input vertex has %d in-edge(s); inputs must be sources" indeg;
      if not (Im.is_input imp v) then
        err ~code:"role-mismatch" (Dg.Vertex v)
          "vertex has input role but is not in the input id range"
    | Cd.Enc_a ->
      if indeg = 0 || indeg > enc_a_max then
        err ~code:"degree-bound" (Dg.Vertex v)
          "Fact 2.1: encA in-degree %d outside [1, %d]" indeg enc_a_max;
      List.iter
        (fun (p, _) ->
          match Im.role imp p with
          | Cd.Input_a _ | Cd.Enc_a -> ()
          | r ->
            err ~code:"role-edge" (Dg.Edge { src = p; dst = v })
              "illegal edge: %s may not feed Enc_a" (role_name r))
        preds
    | Cd.Enc_b ->
      if indeg = 0 || indeg > enc_b_max then
        err ~code:"degree-bound" (Dg.Vertex v)
          "Fact 2.1: encB in-degree %d outside [1, %d]" indeg enc_b_max;
      List.iter
        (fun (p, _) ->
          match Im.role imp p with
          | Cd.Input_b _ | Cd.Enc_b -> ()
          | r ->
            err ~code:"role-edge" (Dg.Edge { src = p; dst = v })
              "illegal edge: %s may not feed Enc_b" (role_name r))
        preds
    | Cd.Mult ->
      if indeg <> 2 then
        err ~code:"degree-bound" (Dg.Vertex v)
          "Fact 2.1: Mult vertex has %d operand(s), expected exactly 2" indeg
      else begin
        let roles = List.map (fun (p, _) -> Im.role imp p) preds in
        let a_ops = List.length (List.filter side_a roles) in
        let b_ops = List.length (List.filter side_b roles) in
        if a_ops <> 1 || b_ops <> 1 then
          err ~code:"role-edge" (Dg.Vertex v)
            "Mult operands must be one A-side and one B-side vertex (got %d/%d)"
            a_ops b_ops
      end
    | Cd.Dec ->
      if indeg = 0 || indeg > dec_max then
        err ~code:"degree-bound" (Dg.Vertex v)
          "Fact 2.1: decoder in-degree %d outside [1, %d]" indeg dec_max;
      List.iter
        (fun (p, _) ->
          match Im.role imp p with
          | Cd.Mult | Cd.Dec -> ()
          | r ->
            err ~code:"role-edge" (Dg.Edge { src = p; dst = v })
              "illegal edge: %s may not feed Dec" (role_name r))
        preds);
    if Im.is_output imp v then
      match role with
      | Cd.Dec | Cd.Mult -> ()
      | r ->
        err ~code:"output-role" (Dg.Vertex v)
          "output vertex has role %s; outputs must be decoders (or the Mult \
           of a degenerate 1x1 problem)"
          (role_name r)
  in
  let stride = max 1 (nv / max 1 samples) in
  let v = ref 0 in
  while !v < nv do
    check_vertex !v;
    v := !v + stride
  done;
  (* layout boundaries: first/last of each input block, the root
     subtree base, the output range start, the last vertex *)
  List.iter
    (fun v -> if v >= 0 && v < nv then check_vertex v)
    [ 0; n2 - 1; n2; n_inp - 1; n_inp; nv - n2; nv - 1 ];
  Dg.Collector.report c

(* Role-free hygiene for arbitrary workloads (pebbling instances,
   butterflies, random layered DAGs). *)
let lint_workload (work : Fmm_machine.Workload.t) =
  let c = Dg.Collector.create ~pass ~title:"workload lint" in
  let err ~code loc fmt = Dg.Collector.addf c Dg.Error ~code loc fmt in
  let warn ~code loc fmt = Dg.Collector.addf c Dg.Warning ~code loc fmt in
  let g = work.Fmm_machine.Workload.graph in
  let n = D.n_vertices g in
  if not (D.is_dag g) then err ~code:"cycle" Dg.Global "graph contains a cycle";
  if Array.length work.Fmm_machine.Workload.outputs = 0 then
    err ~code:"no-outputs" Dg.Global "workload has no outputs";
  let is_input = Fmm_machine.Workload.is_input work in
  for v = 0 to n - 1 do
    let indeg = D.in_degree g v in
    if is_input v then begin
      if indeg > 0 then
        err ~code:"input-with-preds" (Dg.Vertex v)
          "input vertex has %d in-edge(s)" indeg
    end
    else if indeg = 0 then
      warn ~code:"computable-source" (Dg.Vertex v)
        "non-input vertex has no operands (free constant?)"
  done;
  let reach =
    Dataflow.reachable g (Array.to_list work.Fmm_machine.Workload.inputs)
  in
  let coreach =
    Dataflow.needed g (Array.to_list work.Fmm_machine.Workload.outputs)
  in
  for v = 0 to n - 1 do
    if (not (Dataflow.Bitset.mem reach v)) && not (is_input v) then
      warn ~code:"disconnected" (Dg.Vertex v)
        "vertex unreachable from the inputs";
    if not (Dataflow.Bitset.mem coreach v) then
      warn ~code:"dead-vertex" (Dg.Vertex v) "vertex feeds no output"
  done;
  Dg.Collector.report c
