(** Static checking of parallel assignments (pass 3 of the analyzer).

    Validates a {!Fmm_machine.Par_exec}-style owner-computes execution
    {e before} running it: the assignment maps every vertex to a real
    processor (unowned / out-of-range vertices are errors), and the
    proposed global compute ordering respects every dependence.  An
    ordering violation on a {e cross-processor} edge is a race — the
    consumer reads the word before its owner has computed (sent) it;
    on an intra-processor edge it is a plain use-before-compute.

    On top of the hard errors the pass reports capacity findings:
    ownership imbalance (a processor owning far more vertices than the
    mean) and the per-processor-pair communication matrix with its
    hottest channel — the word counts agree exactly with
    {!Fmm_machine.Par_exec.run} on clean instances (enforced by the
    test suite). *)

type result = {
  report : Diagnostic.report;
  owned : int array;  (** vertices owned per processor *)
  words : int array array;
      (** [words.(p).(q)] = distinct values processor [q] must receive
          from owner [p] (the per-edge communication census) *)
  total_words : int;
  races : int;  (** cross-processor read-before-send hazards *)
}

val check :
  ?order:int list ->
  Fmm_machine.Workload.t ->
  procs:int ->
  assignment:int array ->
  result
(** [order] is the global compute order the execution will follow
    (non-input vertices, each exactly once); it defaults to a
    topological order, which is race-free by construction — pass the
    schedule you actually intend to run to get hazard detection.
    Positions in diagnostics are indices into [order]. *)

(** {2 Fault-aware replay validation}

    {!check} validates a fault-free description, where "computed at an
    earlier position" is the whole availability story. Under failures
    it is not: a crash wipes copies that positions alone would call
    live. [check_log] replays an executor's full event log against
    per-processor holdings instead — the read-before-send rule at
    event granularity, crash-aware. {!Fmm_fault.Sim} emits exactly
    this log; the test suite cross-validates every recovered run. *)

(** One event of a distributed execution, in occurrence order. *)
type ev =
  | Compute of { vertex : int; proc : int }
      (** [proc] derives [vertex] locally (initial computation or a
          recovery re-derivation) *)
  | Transfer of { value : int; src : int; dst : int }
      (** one word moves [src] -> [dst] ([dst] may be the owner,
          restoring a copy lost in a crash) *)
  | Crash of { proc : int }
      (** [proc] loses every held word except its own durable inputs *)

type replay = {
  report : Diagnostic.report;
  computes : int;
  transfers : int;
  crashes : int;
  lost_outputs : int;
      (** output vertices not held by their owner when the log ends *)
}

val check_log :
  Fmm_machine.Workload.t ->
  procs:int ->
  assignment:int array ->
  log:ev list ->
  replay
(** Replay [log] and report every violation: a compute whose operand
    has no live copy at the reader ([race]), a send of an unheld word
    ([send-unheld]), owner-computes violations, vertices never
    computed, and outputs lost to an unrecovered crash. A log is a
    valid recovered execution iff the report has zero errors. *)

val phased_order : Fmm_machine.Workload.t -> procs:int -> assignment:int array -> int list
(** The processor-phased order: processor 0's vertices first, then
    processor 1's, ... (each processor's program in locally
    topological order). This is the execution a naive "run each owner
    in turn" driver performs; {!check} under it reveals exactly the
    cross-phase dependences that would deadlock or race a concurrent
    run. Vertices with invalid owners are appended last. *)
