(** Static checking of parallel assignments (pass 3 of the analyzer).

    Validates a {!Fmm_machine.Par_exec}-style owner-computes execution
    {e before} running it: the assignment maps every vertex to a real
    processor (unowned / out-of-range vertices are errors), and the
    proposed global compute ordering respects every dependence.  An
    ordering violation on a {e cross-processor} edge is a race — the
    consumer reads the word before its owner has computed (sent) it;
    on an intra-processor edge it is a plain use-before-compute.

    On top of the hard errors the pass reports capacity findings:
    ownership imbalance (a processor owning far more vertices than the
    mean) and the per-processor-pair communication matrix with its
    hottest channel — the word counts agree exactly with
    {!Fmm_machine.Par_exec.run} on clean instances (enforced by the
    test suite). *)

type result = {
  report : Diagnostic.report;
  owned : int array;  (** vertices owned per processor *)
  words : int array array;
      (** [words.(p).(q)] = distinct values processor [q] must receive
          from owner [p] (the per-edge communication census) *)
  total_words : int;
  races : int;  (** cross-processor read-before-send hazards *)
}

val check :
  ?order:int list ->
  Fmm_machine.Workload.t ->
  procs:int ->
  assignment:int array ->
  result
(** [order] is the global compute order the execution will follow
    (non-input vertices, each exactly once); it defaults to a
    topological order, which is race-free by construction — pass the
    schedule you actually intend to run to get hazard detection.
    Positions in diagnostics are indices into [order]. *)

val phased_order : Fmm_machine.Workload.t -> procs:int -> assignment:int array -> int list
(** The processor-phased order: processor 0's vertices first, then
    processor 1's, ... (each processor's program in locally
    topological order). This is the execution a naive "run each owner
    in turn" driver performs; {!check} under it reveals exactly the
    cross-phase dependences that would deadlock or race a concurrent
    run. Vertices with invalid owners are appended last. *)
