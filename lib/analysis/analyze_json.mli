(** The [fmm-analyze/v1] report schema: a typed, deterministic JSON
    form of one [fmmlab analyze] run — its pass diagnostics and the
    optional {!Certify} summary. Same conventions as [fmm-faults/v1]:
    ["schema"] first, clock-free, byte-identical at any [--jobs].
    {!to_json} and {!of_json} are exact inverses; the parser is strict
    (unknown or missing fields, type mismatches, and summary counts
    that disagree with the listed diagnostics all reject). *)

val schema : string
(** ["fmm-analyze/v1"] *)

type pass = { title : string; diags : Diagnostic.t list }

type certify_summary = {
  workload : string;
  order_len : int;
  maxlive : int;
  inputs_used : int;
  outputs_stored : int;
  io_lower_bound : int;
  segment_r : int option;
  segment_bound : int option;
  segment_min_io : int option;
  policies : Certify.policy_row list;
}

type t = {
  algorithm : string;
  n : int;
  cache_size : int;
  order : string;
  depth : int;
  procs : int;
  corrupt : string;
  passes : pass list;
  certify : certify_summary option;
}

val certify_of_result : Certify.t -> certify_summary
(** Everything from a {!Certify.t} except its report (which travels as
    one of the [passes]). *)

val to_json : t -> Fmm_obs.Json.t

val of_json : Fmm_obs.Json.t -> (t, string) result
(** Strict parse; the error message names the offending field path. *)
