(** The certifier pass ([fmmlab analyze --certify]): cross-checks the
    static analyses of {!Dataflow} against the dynamic evidence of the
    schedulers, on one workload and compute order.

    Checks, each a located [Error] diagnostic on failure:
    - {b maxlive-mismatch}: {!Dataflow.trace_profile}'s static
      min-cache must equal {!Trace_check.check}'s dynamic
      [peak_occupancy] on every policy trace;
    - {b illegal-trace}: every scheduler trace checks clean;
    - {b peak-exceeds-cache}: no trace's peak exceeds the declared M;
    - {b lb-violated}: no recomputation-free policy's measured I/O
      beats the static {!Dataflow.io_lower_bound} for the order
      (rematerialization is exempt — beating this bound is what
      recomputation is {e for}, and the report rows expose the
      sandwich [static lb <= belady <= lru] next to remat);
    - {b segment-bound} (CDAG runs): Lemma 3.6 holds for the LRU trace
      at the default (or given) segment granularity [r].

    Deterministic and clock-free; [jobs] only fans the three policy
    runs over the order-preserving {!Fmm_par.Pool}. *)

type policy_row = {
  policy : string;  (** ["lru"] | ["belady"] | ["remat"] *)
  feasible : bool;  (** the scheduler executed at this [cache_size] *)
  io : int;  (** loads + stores; -1 when infeasible *)
  peak_occupancy : int;  (** dynamic, from {!Trace_check} *)
  min_cache : int;  (** static, from {!Dataflow.trace_profile} *)
  dead_loads : int;
  redundant_stores : int;
  recomputes : int;
  agree : bool;  (** [min_cache = peak_occupancy] *)
}

type t = {
  workload : string;
  cache_size : int;
  order_len : int;
  maxlive : int;  (** spill-free minimum cache of the order *)
  inputs_used : int;
  outputs_stored : int;
  io_lower_bound : int;  (** {!Dataflow.io_lower_bound} at [cache_size] *)
  segment_r : int option;
  segment_bound : int option;  (** ceil(r^2/2) - M *)
  segment_min_io : int option;  (** min measured I/O over full segments *)
  rows : policy_row list;
  report : Diagnostic.report;
}

val run :
  ?jobs:int ->
  ?cdag:Fmm_cdag.Cdag.t ->
  ?segment_r:int ->
  ?max_flops:int ->
  cache_size:int ->
  Fmm_machine.Workload.t ->
  order:int list ->
  t
(** [order] must be a valid topological order of the non-input
    vertices (the schedulers' contract). [cdag], when given, enables
    the Lemma 3.6 segment check ([segment_r] overrides the default
    granularity — the largest power of the base dimension within
    [2 sqrt M]). *)

val certified : t -> bool
(** No error diagnostics: every static/dynamic cross-check agreed. *)

val default_segment_r : Fmm_cdag.Cdag.t -> cache_size:int -> int option
