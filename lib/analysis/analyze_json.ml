(* fmm-analyze/v1: the deterministic JSON form of an `fmmlab analyze`
   run. Same conventions as fmm-faults/v1: "schema" is the first
   field, no wall clocks or other volatile values anywhere, so a fixed
   (algorithm, n, M, order, depth, corrupt) tuple serializes
   byte-identically at any --jobs and in every process.

   The parser is strict: unknown fields, missing fields, type
   mismatches and summary counts that disagree with the diagnostics
   all reject with a located message. to_json/of_json are exact
   inverses (round-trip enforced by the test suite). *)

module Json = Fmm_obs.Json
module Dg = Diagnostic

let schema = "fmm-analyze/v1"

type pass = { title : string; diags : Dg.t list }

type certify_summary = {
  workload : string;
  order_len : int;
  maxlive : int;
  inputs_used : int;
  outputs_stored : int;
  io_lower_bound : int;
  segment_r : int option;
  segment_bound : int option;
  segment_min_io : int option;
  policies : Certify.policy_row list;
}

type t = {
  algorithm : string;
  n : int;
  cache_size : int;
  order : string;
  depth : int;
  procs : int;
  corrupt : string;
  passes : pass list;
  certify : certify_summary option;
}

let certify_of_result (c : Certify.t) =
  {
    workload = c.Certify.workload;
    order_len = c.Certify.order_len;
    maxlive = c.Certify.maxlive;
    inputs_used = c.Certify.inputs_used;
    outputs_stored = c.Certify.outputs_stored;
    io_lower_bound = c.Certify.io_lower_bound;
    segment_r = c.Certify.segment_r;
    segment_bound = c.Certify.segment_bound;
    segment_min_io = c.Certify.segment_min_io;
    policies = c.Certify.rows;
  }

(* --- emission --- *)

let opt_int = function Some i -> Json.Int i | None -> Json.Null

let loc_to_json = function
  | Dg.Vertex v -> Json.Obj [ ("kind", Json.Str "vertex"); ("vertex", Json.Int v) ]
  | Dg.Step { step; vertex } ->
    Json.Obj
      [
        ("kind", Json.Str "step");
        ("step", Json.Int step);
        ("vertex", opt_int vertex);
      ]
  | Dg.Processor p -> Json.Obj [ ("kind", Json.Str "proc"); ("proc", Json.Int p) ]
  | Dg.Edge { src; dst } ->
    Json.Obj
      [ ("kind", Json.Str "edge"); ("src", Json.Int src); ("dst", Json.Int dst) ]
  | Dg.Global -> Json.Obj [ ("kind", Json.Str "global") ]

let diag_to_json (d : Dg.t) =
  Json.Obj
    [
      ("severity", Json.Str (Dg.severity_to_string d.Dg.severity));
      ("pass", Json.Str d.Dg.pass);
      ("code", Json.Str d.Dg.code);
      ("loc", loc_to_json d.Dg.loc);
      ("message", Json.Str d.Dg.message);
    ]

let count sev diags =
  List.length (List.filter (fun d -> d.Dg.severity = sev) diags)

let pass_to_json p =
  Json.Obj
    [
      ("title", Json.Str p.title);
      ("errors", Json.Int (count Dg.Error p.diags));
      ("warnings", Json.Int (count Dg.Warning p.diags));
      ("lints", Json.Int (count Dg.Lint p.diags));
      ("infos", Json.Int (count Dg.Info p.diags));
      ("diagnostics", Json.List (List.map diag_to_json p.diags));
    ]

let policy_to_json (r : Certify.policy_row) =
  Json.Obj
    [
      ("policy", Json.Str r.Certify.policy);
      ("feasible", Json.Bool r.Certify.feasible);
      ("io", Json.Int r.Certify.io);
      ("peak_occupancy", Json.Int r.Certify.peak_occupancy);
      ("min_cache", Json.Int r.Certify.min_cache);
      ("dead_loads", Json.Int r.Certify.dead_loads);
      ("redundant_stores", Json.Int r.Certify.redundant_stores);
      ("recomputes", Json.Int r.Certify.recomputes);
      ("agree", Json.Bool r.Certify.agree);
    ]

let certify_to_json c =
  Json.Obj
    [
      ("workload", Json.Str c.workload);
      ("order_len", Json.Int c.order_len);
      ("maxlive", Json.Int c.maxlive);
      ("inputs_used", Json.Int c.inputs_used);
      ("outputs_stored", Json.Int c.outputs_stored);
      ("io_lower_bound", Json.Int c.io_lower_bound);
      ("segment_r", opt_int c.segment_r);
      ("segment_bound", opt_int c.segment_bound);
      ("segment_min_io", opt_int c.segment_min_io);
      ("policies", Json.List (List.map policy_to_json c.policies));
    ]

let to_json t =
  let all = List.concat_map (fun p -> p.diags) t.passes in
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("algorithm", Json.Str t.algorithm);
      ("n", Json.Int t.n);
      ("cache_size", Json.Int t.cache_size);
      ("order", Json.Str t.order);
      ("depth", Json.Int t.depth);
      ("procs", Json.Int t.procs);
      ("corrupt", Json.Str t.corrupt);
      ( "summary",
        Json.Obj
          [
            ("errors", Json.Int (count Dg.Error all));
            ("warnings", Json.Int (count Dg.Warning all));
            ("lints", Json.Int (count Dg.Lint all));
            ("infos", Json.Int (count Dg.Info all));
          ] );
      ("passes", Json.List (List.map pass_to_json t.passes));
      ( "certify",
        match t.certify with None -> Json.Null | Some c -> certify_to_json c );
    ]

(* --- strict parsing --- *)

exception Reject of string

let rejectf fmt = Printf.ksprintf (fun s -> raise (Reject s)) fmt

(* Every object is destructured through [fields]: the field list must
   match the expected names exactly (order-insensitive, no extras). *)
let fields ctx expected j =
  match j with
  | Json.Obj kvs ->
    let names = List.map fst kvs in
    List.iter
      (fun name ->
        if not (List.mem name expected) then
          rejectf "%s: unknown field %S" ctx name)
      names;
    List.iter
      (fun name ->
        if not (List.mem name names) then
          rejectf "%s: missing field %S" ctx name)
      expected;
    fun name ->
      (match List.assoc_opt name kvs with
      | Some v -> v
      | None -> rejectf "%s: missing field %S" ctx name)
  | _ -> rejectf "%s: expected an object" ctx

let str ctx = function
  | Json.Str s -> s
  | _ -> rejectf "%s: expected a string" ctx

let int ctx = function
  | Json.Int i -> i
  | _ -> rejectf "%s: expected an integer" ctx

let boolean ctx = function
  | Json.Bool b -> b
  | _ -> rejectf "%s: expected a boolean" ctx

let opt_int_of ctx = function
  | Json.Null -> None
  | Json.Int i -> Some i
  | _ -> rejectf "%s: expected an integer or null" ctx

let list ctx = function
  | Json.List l -> l
  | _ -> rejectf "%s: expected a list" ctx

let loc_of_json ctx j =
  let kind =
    match Json.member "kind" j with
    | Some (Json.Str k) -> k
    | _ -> rejectf "%s.loc: missing kind" ctx
  in
  match kind with
  | "vertex" ->
    let f = fields (ctx ^ ".loc") [ "kind"; "vertex" ] j in
    Dg.Vertex (int (ctx ^ ".loc.vertex") (f "vertex"))
  | "step" ->
    let f = fields (ctx ^ ".loc") [ "kind"; "step"; "vertex" ] j in
    Dg.Step
      {
        step = int (ctx ^ ".loc.step") (f "step");
        vertex = opt_int_of (ctx ^ ".loc.vertex") (f "vertex");
      }
  | "proc" ->
    let f = fields (ctx ^ ".loc") [ "kind"; "proc" ] j in
    Dg.Processor (int (ctx ^ ".loc.proc") (f "proc"))
  | "edge" ->
    let f = fields (ctx ^ ".loc") [ "kind"; "src"; "dst" ] j in
    Dg.Edge
      {
        src = int (ctx ^ ".loc.src") (f "src");
        dst = int (ctx ^ ".loc.dst") (f "dst");
      }
  | "global" ->
    ignore (fields (ctx ^ ".loc") [ "kind" ] j : string -> Json.t);
    Dg.Global
  | k -> rejectf "%s.loc: unknown kind %S" ctx k

let diag_of_json ctx j =
  let f = fields ctx [ "severity"; "pass"; "code"; "loc"; "message" ] j in
  let sev_name = str (ctx ^ ".severity") (f "severity") in
  let severity =
    match Dg.severity_of_string sev_name with
    | Some s -> s
    | None -> rejectf "%s: unknown severity %S" ctx sev_name
  in
  {
    Dg.severity;
    pass = str (ctx ^ ".pass") (f "pass");
    code = str (ctx ^ ".code") (f "code");
    loc = loc_of_json ctx (f "loc");
    message = str (ctx ^ ".message") (f "message");
  }

let check_counts ctx f diags =
  List.iter
    (fun (name, sev) ->
      let claimed = int (ctx ^ "." ^ name) (f name) in
      let actual = count sev diags in
      if claimed <> actual then
        rejectf "%s: %s count %d disagrees with the %d diagnostic(s)" ctx name
          claimed actual)
    [
      ("errors", Dg.Error);
      ("warnings", Dg.Warning);
      ("lints", Dg.Lint);
      ("infos", Dg.Info);
    ]

let pass_of_json i j =
  let ctx = Printf.sprintf "passes[%d]" i in
  let f =
    fields ctx
      [ "title"; "errors"; "warnings"; "lints"; "infos"; "diagnostics" ]
      j
  in
  let diags =
    List.mapi
      (fun k d -> diag_of_json (Printf.sprintf "%s.diagnostics[%d]" ctx k) d)
      (list (ctx ^ ".diagnostics") (f "diagnostics"))
  in
  check_counts ctx f diags;
  { title = str (ctx ^ ".title") (f "title"); diags }

let policy_of_json i j =
  let ctx = Printf.sprintf "certify.policies[%d]" i in
  let f =
    fields ctx
      [
        "policy"; "feasible"; "io"; "peak_occupancy"; "min_cache"; "dead_loads";
        "redundant_stores"; "recomputes"; "agree";
      ]
      j
  in
  {
    Certify.policy = str (ctx ^ ".policy") (f "policy");
    feasible = boolean (ctx ^ ".feasible") (f "feasible");
    io = int (ctx ^ ".io") (f "io");
    peak_occupancy = int (ctx ^ ".peak_occupancy") (f "peak_occupancy");
    min_cache = int (ctx ^ ".min_cache") (f "min_cache");
    dead_loads = int (ctx ^ ".dead_loads") (f "dead_loads");
    redundant_stores = int (ctx ^ ".redundant_stores") (f "redundant_stores");
    recomputes = int (ctx ^ ".recomputes") (f "recomputes");
    agree = boolean (ctx ^ ".agree") (f "agree");
  }

let certify_of_json j =
  let ctx = "certify" in
  let f =
    fields ctx
      [
        "workload"; "order_len"; "maxlive"; "inputs_used"; "outputs_stored";
        "io_lower_bound"; "segment_r"; "segment_bound"; "segment_min_io";
        "policies";
      ]
      j
  in
  {
    workload = str (ctx ^ ".workload") (f "workload");
    order_len = int (ctx ^ ".order_len") (f "order_len");
    maxlive = int (ctx ^ ".maxlive") (f "maxlive");
    inputs_used = int (ctx ^ ".inputs_used") (f "inputs_used");
    outputs_stored = int (ctx ^ ".outputs_stored") (f "outputs_stored");
    io_lower_bound = int (ctx ^ ".io_lower_bound") (f "io_lower_bound");
    segment_r = opt_int_of (ctx ^ ".segment_r") (f "segment_r");
    segment_bound = opt_int_of (ctx ^ ".segment_bound") (f "segment_bound");
    segment_min_io = opt_int_of (ctx ^ ".segment_min_io") (f "segment_min_io");
    policies =
      List.mapi policy_of_json (list (ctx ^ ".policies") (f "policies"));
  }

let of_json j =
  match
    let f =
      fields "report"
        [
          "schema"; "algorithm"; "n"; "cache_size"; "order"; "depth"; "procs";
          "corrupt"; "summary"; "passes"; "certify";
        ]
        j
    in
    let s = str "schema" (f "schema") in
    if s <> schema then rejectf "schema: expected %S, got %S" schema s;
    let passes = List.mapi pass_of_json (list "passes" (f "passes")) in
    let sf =
      fields "summary" [ "errors"; "warnings"; "lints"; "infos" ] (f "summary")
    in
    check_counts "summary" sf (List.concat_map (fun p -> p.diags) passes);
    {
      algorithm = str "algorithm" (f "algorithm");
      n = int "n" (f "n");
      cache_size = int "cache_size" (f "cache_size");
      order = str "order" (f "order");
      depth = int "depth" (f "depth");
      procs = int "procs" (f "procs");
      corrupt = str "corrupt" (f "corrupt");
      passes;
      certify =
        (match f "certify" with
        | Json.Null -> None
        | c -> Some (certify_of_json c));
    }
  with
  | t -> Ok t
  | exception Reject msg -> Error msg
