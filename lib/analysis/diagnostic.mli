(** The shared diagnostics core of the static analyzer: every pass
    ({!Cdag_lint}, {!Trace_check}, {!Par_check}) reports its findings
    as a list of located, severity-graded diagnostics collected into a
    {!report}. Unlike the dynamic oracle ({!Fmm_machine.Cache_machine}),
    which raises on the first violation, a report holds {e all} of them
    and renders both human- and machine-readable. *)

(** Severity grades, strongest first. [Error] is a legality violation
    (the artifact is wrong); [Warning] is a suspicious-but-legal
    structure worth a human look; [Lint] is a mechanical hygiene
    finding (wasted work such as a dead load or redundant store) that
    tools may gate on but that never makes a trace illegal; [Info] is
    commentary. The {!val:Fmm_analysis} CLI exit-code contract:
    [fmmlab analyze] exits 1 iff a report contains errors — warnings
    and lints only affect the exit code under [--max-warnings N]. *)
type severity = Error | Warning | Lint | Info

val severity_to_string : severity -> string

val severity_of_string : string -> severity option
(** Inverse of {!severity_to_string}; [None] on unknown names. *)

(** Where a diagnostic points: a CDAG vertex, a step of a machine
    trace (optionally with the vertex the event touches), a processor
    of the parallel model, a DAG edge, or the whole artifact. *)
type location =
  | Vertex of int
  | Step of { step : int; vertex : int option }
  | Processor of int
  | Edge of { src : int; dst : int }
  | Global

val location_to_string : location -> string

type t = {
  severity : severity;
  pass : string;  (** the emitting pass, e.g. ["cdag-lint"] *)
  code : string;  (** stable machine-readable kind, e.g. ["cache-overflow"] *)
  loc : location;
  message : string;
}

val to_string : t -> string
(** One human-readable line: [severity[pass/code] @ loc: message]. *)

val to_machine_string : t -> string
(** One tab-separated line: [severity], [pass], [code], location
    fields, [message] — greppable / parseable output for tooling. *)

(** A pass's findings, in emission order. *)
type report = { title : string; diags : t list }

val n_errors : report -> int
val n_warnings : report -> int
val n_lints : report -> int
val n_infos : report -> int

val is_clean : report -> bool
(** No [Error]-severity diagnostics (warnings and infos permitted). *)

val is_silent : report -> bool
(** No diagnostics at all. *)

val errors : report -> t list
val warnings : report -> t list
val lints : report -> t list

val merge : title:string -> report list -> report
(** Concatenate several passes' findings under one title. *)

val render : ?machine:bool -> ?limit:int -> report -> string
(** Full report: header, every diagnostic (errors first, then
    warnings, lints, infos — emission order preserved within a
    severity), summary line. [machine] selects
    {!to_machine_string} lines with no header/summary; [limit] caps
    the printed diagnostics (an ellipsis line reports the rest). *)

(** Mutable collector used by the passes to accumulate diagnostics in
    emission order. *)
module Collector : sig
  type c

  val create : pass:string -> title:string -> c

  val add : c -> severity -> code:string -> location -> string -> unit

  val addf :
    c ->
    severity ->
    code:string ->
    location ->
    ('a, unit, string, unit) format4 ->
    'a
  (** [Printf]-style {!add}. *)

  val error_count : c -> int
  val report : c -> report
end
