(* Combinatorial helpers used by the lemma-verification engine: subset
   enumeration over small universes (encoder graphs have |Y| = 7, so
   exhaustive enumeration is the proof technique), binomials, and integer
   helpers shared across the libraries. *)

let rec fold_range ~lo ~hi ~init ~f =
  if lo >= hi then init else fold_range ~lo:(lo + 1) ~hi ~init:(f init lo) ~f

(** [subsets_of_size n k] enumerates all [k]-element subsets of
    [0..n-1], each as a sorted list. *)
let subsets_of_size n k =
  if k < 0 || k > n then []
  else begin
    let acc = ref [] in
    let rec go start chosen remaining =
      if remaining = 0 then acc := List.rev chosen :: !acc
      else
        for i = start to n - remaining do
          go (i + 1) (i :: chosen) (remaining - 1)
        done
    in
    go 0 [] k;
    List.rev !acc
  end

(** [all_subsets n] enumerates every subset of [0..n-1] (including the
    empty set) as sorted lists, in bitmask order. Only sensible for
    small [n]; raises [Invalid_argument] for [n > 20]. *)
let all_subsets n =
  if n < 0 || n > 20 then invalid_arg "Combinat.all_subsets: n out of range";
  let mask_to_list mask =
    let rec bits i acc =
      if i < 0 then acc
      else bits (i - 1) (if mask land (1 lsl i) <> 0 then i :: acc else acc)
    in
    bits (n - 1) []
  in
  List.init (1 lsl n) mask_to_list

(** Nonempty subsets of [0..n-1]. *)
let nonempty_subsets n = List.filter (fun s -> s <> []) (all_subsets n)

let binomial n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let num = ref 1 in
    for i = 0 to k - 1 do
      num := !num * (n - i) / (i + 1)
    done;
    !num
  end

let rec pow_int base exp =
  if exp < 0 then invalid_arg "Combinat.pow_int: negative exponent"
  else if exp = 0 then 1
  else
    let half = pow_int base (exp / 2) in
    if exp mod 2 = 0 then half * half else half * half * base

(** Integer ceiling division, for nonnegative [b]. *)
let ceil_div a b =
  if b <= 0 then invalid_arg "Combinat.ceil_div: nonpositive divisor";
  if a >= 0 then (a + b - 1) / b else a / b

(** [iroot ~k n] is the floor of the [k]-th root of [n], computed with
    exact integer arithmetic (overflow-safe bracketed binary search) —
    never through [Float.( ** )], whose rounding mis-identifies perfect
    powers once they exceed 2^53. Raises [Invalid_argument] on
    [k < 1] or [n < 0]. *)
let iroot ~k n =
  if k < 1 then invalid_arg "Combinat.iroot: k < 1";
  if n < 0 then invalid_arg "Combinat.iroot: n < 0";
  if n <= 1 || k = 1 then n
  else begin
    (* r^k <= n without ever overflowing: bail as soon as the partial
       product would exceed n on the next multiply *)
    let pow_leq r =
      r <= 1
      ||
      let rec go acc i =
        if i = 0 then true else if acc > n / r then false else go (acc * r) (i - 1)
      in
      go 1 k
    in
    let lo = ref 1 and hi = ref 2 in
    while pow_leq !hi do
      lo := !hi;
      hi := !hi * 2
    done;
    (* invariant: pow_leq lo && not (pow_leq hi) *)
    while !hi - !lo > 1 do
      let mid = !lo + ((!hi - !lo) / 2) in
      if pow_leq mid then lo := mid else hi := mid
    done;
    !lo
  end

(** [iroot_exact ~k n] is [Some r] iff [r{^k} = n] exactly. *)
let iroot_exact ~k n =
  let r = iroot ~k n in
  if pow_int r k = n then Some r else None

let is_power_of ~base n =
  if base < 2 then invalid_arg "Combinat.is_power_of: base < 2";
  let rec go n = n = 1 || (n mod base = 0 && go (n / base)) in
  n >= 1 && go n

(** Smallest power of [base] that is >= [n] (for padding matrices up to
    a recursive block size). *)
let next_power_of ~base n =
  if n < 1 then invalid_arg "Combinat.next_power_of: n < 1";
  let rec go p = if p >= n then p else go (p * base) in
  go 1

let log2_exact n =
  if not (is_power_of ~base:2 n) then
    invalid_arg "Combinat.log2_exact: not a power of two";
  let rec go n acc = if n = 1 then acc else go (n / 2) (acc + 1) in
  go n 0

(** Cartesian product of a list of lists, in lexicographic order. *)
let rec cartesian = function
  | [] -> [ [] ]
  | xs :: rest ->
    let tails = cartesian rest in
    List.concat_map (fun x -> List.map (fun t -> x :: t) tails) xs

(** All permutations of a list. Only for small inputs. *)
let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y <> x) l in
        List.map (fun p -> x :: p) (permutations rest))
      l
