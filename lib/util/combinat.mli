(** Combinatorial helpers for the lemma-verification engine and the
    recursion-size arithmetic of fast matrix multiplication. *)

val fold_range : lo:int -> hi:int -> init:'a -> f:('a -> int -> 'a) -> 'a
(** [fold_range ~lo ~hi ~init ~f] folds [f] over [lo, hi). *)

val subsets_of_size : int -> int -> int list list
(** [subsets_of_size n k] enumerates all [k]-element subsets of
    [0..n-1], each as a sorted list, in lexicographic order. Empty for
    [k < 0] or [k > n]. *)

val all_subsets : int -> int list list
(** Every subset of [0..n-1] (including the empty set) as sorted lists,
    in bitmask order. Raises [Invalid_argument] for [n > 20]. *)

val nonempty_subsets : int -> int list list
(** [all_subsets n] minus the empty set. *)

val binomial : int -> int -> int
(** Binomial coefficient; 0 outside the triangle. *)

val pow_int : int -> int -> int
(** [pow_int b e] is [b{^e}] over native ints.
    Raises [Invalid_argument] on negative exponents. *)

val ceil_div : int -> int -> int
(** Integer ceiling division. Raises on nonpositive divisor. *)

val iroot : k:int -> int -> int
(** [iroot ~k n] is the floor of the [k]-th root of [n], by exact
    integer arithmetic (no float detour, so perfect powers are never
    mis-identified by rounding). Raises [Invalid_argument] on [k < 1]
    or [n < 0]. *)

val iroot_exact : k:int -> int -> int option
(** [iroot_exact ~k n] is [Some r] iff [r{^k} = n] exactly, [None]
    otherwise (the caller decides whether a remainder is an error or a
    round-down). *)

val is_power_of : base:int -> int -> bool
(** [is_power_of ~base n] holds iff [n = base{^k}] for some [k >= 0]. *)

val next_power_of : base:int -> int -> int
(** Smallest power of [base] >= [n] (for padding matrices up to a
    recursive block size). *)

val log2_exact : int -> int
(** [log2_exact n] for [n] an exact power of two; raises otherwise. *)

val cartesian : 'a list list -> 'a list list
(** Cartesian product of a list of lists, lexicographic. *)

val permutations : 'a list -> 'a list list
(** All permutations; only for small inputs. *)
