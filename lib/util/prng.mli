(** Deterministic pseudo-random streams (splitmix64). Everything in the
    repository that samples — random matrices, the (Z, Gamma) subsets of
    the Lemma 3.7/3.11 experiments, Grigoriev witnesses — draws from an
    explicitly seeded [t], so every experiment and every test is
    reproducible bit-for-bit. *)

type t

val create : seed:int -> t
val copy : t -> t

val next_int64 : t -> int64
(** The raw 64-bit stream. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Raises on [bound <= 0]. *)

val int_range : t -> int -> int -> int
(** [int_range t lo hi] is uniform in [lo, hi] inclusive. *)

val bool : t -> bool

val float : t -> float
(** Uniform in [0, 1). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample : t -> int -> int -> int list
(** [sample t k n] draws a sorted [k]-element subset of [0..n-1]
    without replacement. *)

val choose : t -> 'a list -> 'a
(** Uniform element of a nonempty list. *)

val derive : seed:int -> int list -> int
(** [derive ~seed path] deterministically maps a master seed plus a
    list of configuration coordinates (lemma tag, r, z, gamma, trial
    index, ...) to a fresh nonnegative seed. Distinct paths give
    decorrelated streams; the same path always gives the same seed.
    This is how the lemma battery hands every sample its own
    independent generator (and how those samples can then run on the
    {!Fmm_par} pool without sharing PRNG state). *)
