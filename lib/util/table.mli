(** Plain-text table rendering. Every reproduced table and figure prints
    through this module so the output of [bench/main.exe] lines up
    visually with the paper's tables. *)

type align = Left | Right

type t

val create :
  title:string -> headers:string list -> ?aligns:align list -> unit -> t
(** A new table. [aligns] defaults to all-[Right]; its length must match
    [headers]. *)

val add_row : t -> string list -> unit
(** Appends a row. Raises [Invalid_argument] on width mismatch. *)

val add_rows : t -> string list list -> unit

val of_cells :
  title:string -> headers:string list -> ?aligns:align list -> string list list -> t
(** [create] followed by [add_rows] — a table in one expression, as the
    generic row sinks build them. *)

val n_rows : t -> int

val render : t -> string
(** The table as a boxed ASCII string, rows in insertion order. *)

val print : t -> unit

(** {2 Numeric cell formatting} *)

val fmt_float : ?digits:int -> float -> string
val fmt_sci : float -> string
val fmt_ratio : float -> string
val fmt_int : int -> string
