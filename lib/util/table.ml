(* Plain-text table rendering for the benchmark harness: every
   reproduced table/figure prints through this module so the output of
   [bench/main.exe] lines up visually with the paper's tables. *)

type align = Left | Right

type t = {
  title : string;
  headers : string list;
  aligns : align list;
  mutable rows : string list list; (* stored reversed *)
}

let create ~title ~headers ?aligns () =
  let aligns =
    match aligns with
    | Some a ->
      if List.length a <> List.length headers then
        invalid_arg "Table.create: aligns/headers length mismatch";
      a
    | None -> List.map (fun _ -> Right) headers
  in
  { title; headers; aligns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Table.add_row: row width mismatch";
  t.rows <- row :: t.rows

let add_rows t rows = List.iter (add_row t) rows

let of_cells ~title ~headers ?aligns rows =
  let t = create ~title ~headers ?aligns () in
  add_rows t rows;
  t

let n_rows t = List.length t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.fold_left
      (fun acc row -> List.map2 (fun w s -> max w (String.length s)) acc row)
      (List.map String.length t.headers)
      rows
  in
  let hline =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths)
    ^ "+"
  in
  let render_row row =
    let cells =
      List.map2
        (fun (a, w) s -> " " ^ pad a w s ^ " ")
        (List.combine t.aligns widths)
        row
    in
    "|" ^ String.concat "|" cells ^ "|"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (hline ^ "\n");
  Buffer.add_string buf (render_row t.headers ^ "\n");
  Buffer.add_string buf (hline ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (render_row r ^ "\n")) rows;
  Buffer.add_string buf (hline ^ "\n");
  Buffer.contents buf

let print t = print_string (render t)

(* Numeric formatting helpers shared by benches. *)

let fmt_float ?(digits = 3) x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.*g" (digits + 3) x

let fmt_sci x = Printf.sprintf "%.3e" x

let fmt_ratio x = Printf.sprintf "%.3f" x

let fmt_int = string_of_int
