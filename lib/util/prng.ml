(* Deterministic pseudo-random streams. Everything in the repo that
   samples (random matrices, random subsets Z/Gamma for the Lemma 3.11
   experiments, Grigoriev witnesses) goes through a [Prng.t] seeded
   explicitly, so every experiment and test is reproducible bit-for-bit.

   The generator is splitmix64, small enough to own and fast enough for
   the simulators. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform int in [0, bound). Requires [bound > 0]. *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound <= 0";
  (* Keep 62 bits so the value stays nonnegative in a 63-bit native int. *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

(** Uniform int in [lo, hi] inclusive. *)
let int_range t lo hi =
  if hi < lo then invalid_arg "Prng.int_range: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t =
  (* 53 random bits mapped to [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits /. 9007199254740992.0

(** Fisher-Yates shuffle of an array, in place. *)
let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(** [sample t k n] draws a sorted k-element subset of [0..n-1] without
    replacement. *)
let sample t k n =
  if k < 0 || k > n then invalid_arg "Prng.sample: k out of range";
  let arr = Array.init n (fun i -> i) in
  shuffle t arr;
  let chosen = Array.sub arr 0 k in
  Array.sort compare chosen;
  Array.to_list chosen

(** Pick one element of a nonempty list. *)
let choose t = function
  | [] -> invalid_arg "Prng.choose: empty list"
  | l -> List.nth l (int t (List.length l))

(** [derive ~seed path] folds the integers of [path] into the splitmix
    state one by one (xor with a golden-ratio multiple, then one
    finalizer round) and returns a nonnegative seed. Distinct paths
    yield independent streams, so samplers that run many configurations
    from one master seed can give every configuration its own
    decorrelated generator — and every sample can run in parallel
    without sharing a stream. *)
let derive ~seed path =
  let t = create ~seed in
  ignore (next_int64 t);
  List.iter
    (fun c ->
      t.state <- Int64.logxor t.state (Int64.mul golden (Int64.of_int c));
      ignore (next_int64 t))
    path;
  Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)
