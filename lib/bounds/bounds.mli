(** Every lower bound of Table I as executable code, plus the Theorem
    1.1 / 4.1 forms. Omega-expressions are evaluated without hidden
    constants; benches report measured-to-bound ratios, which absorb
    them — the exponents are what the theory fixes.

    Parameters: [n] matrix dimension, [m] fast/local memory words,
    [p] processors. All raise [Invalid_argument] on nonpositive
    values. *)

val omega_strassen : float
(** log2 7. *)

(** {2 Classical matrix multiplication (Table I row 1)} *)

val classical_memdep : n:int -> m:int -> p:int -> float
(** (n/sqrt M)^3 M / P [2]. *)

val classical_memind : n:int -> p:int -> float
(** n^2 / P^{2/3} [1]; exact (integer-root) when P is a perfect
    cube. *)

val classical_crossover_p : n:int -> m:int -> int
(** Smallest P with classical_memind >= classical_memdep, decided in
    exact big-integer arithmetic (P^2 M^3 >= n^6) — immune to the
    float mis-ranking near the boundary once n^6 exceeds 2^53. With
    M = s^2 this is exactly ceil((n/s)^3). *)

(** {2 Fast matrix multiplication (rows 2-4; Theorem 1.1)} *)

val fast_memdep : ?omega0:float -> n:int -> m:int -> p:int -> unit -> float
(** (n/sqrt M)^{omega0} M / P; with the default omega0 = log2 7 this is
    the bound the paper proves recomputation-proof for every 2x2-base
    algorithm. *)

val fast_memind : ?omega0:float -> n:int -> p:int -> unit -> float
(** n^2 / P^{2/omega0}. *)

val fast_parallel : ?omega0:float -> n:int -> m:int -> p:int -> unit -> float
(** The Theorem 1.1 parallel form: max of the two regimes. *)

val fast_sequential : ?omega0:float -> n:int -> m:int -> unit -> float
(** The sequential bound (P = 1). *)

val crossover_p : ?omega0:float -> n:int -> m:int -> unit -> int
(** Smallest P at which the memory-independent bound overtakes the
    memory-dependent one (growing-bracket binary search; 1 when it has
    already crossed at P = 1, e.g. at the n <= sqrt M boundary).
    At [omega0 = 3.] it delegates to the exact
    {!classical_crossover_p}. Total: when no crossover exists — the
    ratio memind/memdep is non-increasing for omega0 <= 2, or the
    bracket would pass 2^60 — it raises [Invalid_argument] instead of
    returning a wrong P. *)

(** {2 Hybrid fast/classical MM (De Stefani 2019, PAPERS.md)}

    Bounds for the algorithm class that runs the fast recursion down to
    sub-problems of size n0 = [cutoff] and finishes them with classical
    MM — the class the new hybrid CDAG builder
    ({!Fmm_cdag.Cdag.build}[ ~cutoff]) constructs. All three raise
    [Invalid_argument] unless [1 <= cutoff <= n]. The n0-limit
    identities are {e float-exact by construction} (structural
    delegation, not formula evaluation): [cutoff = 1] reproduces the
    [fast_*] bounds verbatim and [cutoff = n] the [classical_*]
    bounds verbatim. *)

val hybrid_memdep :
  ?omega0:float -> n:int -> m:int -> p:int -> cutoff:int -> unit -> float
(** Omega((n / max(sqrt M, n0))^{omega0} max(sqrt M, n0)^3 /
    (sqrt M P)): the uniform fast bound while the classical leaves fit
    in fast memory (n0^2 <= M), and (n/n0)^{omega0} copies of the
    classical leaf bound beyond it. Exact integer leaf counts when
    omega0 = log2 t and n/n0 is a power of two. *)

val hybrid_memind :
  ?omega0:float -> n:int -> p:int -> cutoff:int -> unit -> float
(** max((leaves/P)^{2/3} n0^2, n^2 / P^{2/omega0}) with
    leaves = (n/n0)^{omega0}: the classical memory-independent bound
    over the leaves vs the fast bound for the encode/decode part.
    Exact integer route when the leaf count is a perfect cube. *)

val hybrid_crossover_p :
  ?omega0:float -> n:int -> m:int -> cutoff:int -> unit -> int
(** Smallest P with hybrid_memind >= hybrid_memdep; same
    growing-bracket search and no-crossover [Invalid_argument]
    contract as {!crossover_p}. [cutoff = 1] delegates to
    {!crossover_p}, [cutoff = n] to the exact
    {!classical_crossover_p}. *)

(** {2 Rectangular fast MM (row 5, [22])} *)

val rectangular : m0:int -> p0:int -> q:int -> t:int -> m:int -> p:int -> float
(** Omega(q^t / (P M^{log_{m0 p0} q - 1})) for a <m0,n0,p0;q> base run
    for [t] recursion levels. *)

(** {2 FFT (row 6)} *)

val fft_memdep : n:int -> m:int -> p:int -> float
(** n log2 n / (P log2 M); the logs are exact at powers of two. *)

val fft_memind : n:int -> p:int -> float
(** n log2 n / (P log2 (n/P)); 0 when n <= P. Exact logs whenever
    P divides n and both quotient and n are powers of two. *)

(** {2 Table I as data} *)

type recomputation_status =
  | Not_relevant
  | Proven_here
  | Proven_prior of string
  | Open_

type row = {
  algorithm : string;
  memdep : n:int -> m:int -> p:int -> float;
  memind : n:int -> p:int -> float;
  omega0 : float;
  no_recomp_citations : string;
  with_recomp : recomputation_status;
}

val table1_rows : row list
val recomputation_status_string : recomputation_status -> string

(** {2 Leading coefficients (paper Sections I and IV)} *)

val arithmetic_leading_coefficients : (string * float) list
(** Strassen 7, Winograd 6, Karstadt-Schwartz 5 (times n^{log2 7}). *)

val io_leading_coefficients : (string * float) list
(** Winograd 10.5, Karstadt-Schwartz 9. *)

val leading_coefficient_of_adds : adds_per_step:int -> float
(** Closed-form total-operation leading coefficient of the recurrence
    T(n) = 7 T(n/2) + s (n/2)^2 with T(1) = 1: c = 1 + s/3. Yields
    7, 6, 5 for s = 18, 15, 12. *)
