(* Every lower bound of Table I as executable code, plus the Theorem
   1.1 / 4.1 forms. The Omega-expressions are evaluated without hidden
   constants (the benches report measured-I/O-to-bound ratios, which
   absorb the constants; what the theory fixes is the exponent).

   n = matrix dimension, M = fast/local memory words, P = processors.
   Sequential bounds are the parallel memory-dependent ones at P = 1. *)

let check_params ?(need_m = true) ~n ~m ~p () =
  if n <= 0 then invalid_arg "Bounds: n must be positive";
  if need_m && m <= 0 then invalid_arg "Bounds: M must be positive";
  if p <= 0 then invalid_arg "Bounds: P must be positive"

let log2 x = log x /. log 2.

(* log2 of an integer, exact (an integer float) at powers of two —
   [log2 (float 2^k)] is already exact in binary floating point, but
   routing through [Combinat.log2_exact] makes the intent checkable
   and keeps the exactness independent of libm. *)
let log2_int x =
  if Fmm_util.Combinat.is_power_of ~base:2 x then
    float_of_int (Fmm_util.Combinat.log2_exact x)
  else log2 (float_of_int x)

(** omega_0 of Strassen-like algorithms: log2 7. *)
let omega_strassen = log2 7.

(* t^e in native ints, None on overflow — the guard that keeps the
   exact integer paths below honest at 2^20-scale inputs without
   silently wrapping at 2^62. *)
let ipow_opt t e =
  let rec go acc e =
    if e = 0 then Some acc
    else if acc > max_int / t then None
    else go (acc * t) (e - 1)
  in
  if t <= 0 || e < 0 then None else go 1 e

(* [omega0] values that are exactly log2 of an integer rank-per-level
   [t] (log2 7 for Strassen-like, 3. = log2 8 for classical): the
   detection recomputes log2 t through the same expression that
   produced [omega0], so it is bit-exact, and [None] for transcendental
   or tuned exponents (e.g. the 2.85 row) falls back to floats. *)
let rank_of_omega0 omega0 =
  let t = int_of_float (Float.round (2. ** omega0)) in
  if t >= 2 && log2_int t = omega0 then Some t else None

(* Exponent e with base^e = x, for integer base >= 2. *)
let log_of ~base x =
  let rec go acc e =
    if acc = x then Some e
    else if acc > x / base then None
    else go (acc * base) (e + 1)
  in
  if base < 2 || x < 1 then None else go 1 0

(* --- row 1: classical matrix multiplication [2], [1] --- *)

let classical_memdep ~n ~m ~p =
  check_params ~n ~m ~p ();
  let nf = float_of_int n and mf = float_of_int m and pf = float_of_int p in
  (nf /. sqrt mf) ** 3. *. mf /. pf

let classical_memind ~n ~p =
  check_params ~n ~m:1 ~p ();
  (* P^{2/3} is exact when P is a perfect cube; [x ** (2. /. 3.)]
     is not even then (e.g. 8^(2/3) <> 4 in floats), so take the
     integer root first. *)
  match Fmm_util.Combinat.iroot_exact ~k:3 p with
  | Some c -> float_of_int (n * n) /. float_of_int (c * c)
  | None -> float_of_int (n * n) /. (float_of_int p ** (2. /. 3.))

(** Smallest P with classical_memind >= classical_memdep, decided in
    exact integer arithmetic: n^2 / P^{2/3} >= n^3 / (M^{1/2} P)
    <=> P^{1/3} M^{1/2} >= n <=> P^2 M^3 >= n^6. The float pipeline
    this replaces mis-ranked the two sides near the boundary once
    n^6 left the 53-bit mantissa (n >= ~500). *)
let classical_crossover_p ~n ~m =
  check_params ~n ~m ~p:1 ();
  let module B = Fmm_ring.Bigint in
  let n6 = B.pow (B.of_int n) 6 in
  let m3 = B.pow (B.of_int m) 3 in
  let crossed p = B.compare (B.mul (B.mul (B.of_int p) (B.of_int p)) m3) n6 >= 0 in
  let rec grow hi = if crossed hi then hi else grow (2 * hi) in
  let rec search lo hi =
    (* invariant: not (crossed lo) && crossed hi *)
    if hi - lo <= 1 then hi
    else begin
      let mid = lo + ((hi - lo) / 2) in
      if crossed mid then search lo mid else search mid hi
    end
  in
  if crossed 1 then 1
  else begin
    let hi = grow 2 in
    search (hi / 2) hi
  end

(* --- rows 2-4: fast matrix multiplication (Theorem 1.1) --- *)

(** Memory-dependent bound (n / sqrt M)^omega0 * M / P — the Theorem 1.1
    form, valid for any fast MM with a 2x2 base case *regardless of
    recomputation* (the paper's contribution), and for general square
    bases without recomputation [8]-[10]. *)
let fast_memdep ?(omega0 = omega_strassen) ~n ~m ~p () =
  check_params ~n ~m ~p ();
  (* Exact integer route at the boundaries the experiments actually
     probe: omega0 = log2 t, M a perfect square whose root divides n
     with a power-of-two quotient. Then (n / sqrt M)^omega0 * M =
     t^log2(n/s) * M exactly, where the float pipeline below drifts by
     ulps as soon as (n/s)^omega0 leaves the mantissa (mirrors the
     classical_crossover_p fix). *)
  let exact =
    match rank_of_omega0 omega0 with
    | None -> None
    | Some t -> (
      match Fmm_util.Combinat.iroot_exact ~k:2 m with
      | Some s
        when s > 0 && n mod s = 0 && Fmm_util.Combinat.is_power_of ~base:2 (n / s)
        -> (
        let e = Fmm_util.Combinat.log2_exact (n / s) in
        match ipow_opt t e with
        | Some te when te <= max_int / m ->
          Some (float_of_int (te * m) /. float_of_int p)
        | _ -> None)
      | _ -> None)
  in
  match exact with
  | Some v -> v
  | None ->
    let nf = float_of_int n and mf = float_of_int m and pf = float_of_int p in
    (nf /. sqrt mf) ** omega0 *. mf /. pf

(** Memory-independent bound n^2 / P^{2/omega0} [1]. Exact when
    omega0 = log2 t and P = t^k (then P^{2/omega0} = 4^k in integers);
    omega0 = 3 delegates to {!classical_memind}'s perfect-cube route.
    The float fallback [p ** (2. /. omega0)] is wrong in the last ulps
    even at exact powers (e.g. 7^(2 / log2 7) <> 4 in floats). *)
let fast_memind ?(omega0 = omega_strassen) ~n ~p () =
  check_params ~n ~m:1 ~p ();
  if omega0 = 3. then classical_memind ~n ~p
  else
    let exact =
      match rank_of_omega0 omega0 with
      | None -> None
      | Some t -> (
        match log_of ~base:t p with
        | Some k -> (
          match ipow_opt 4 k with
          | Some p_pow when n * n mod p_pow = 0 ->
            Some (float_of_int (n * n / p_pow))
          | Some p_pow -> Some (float_of_int (n * n) /. float_of_int p_pow)
          | None -> None)
        | None -> None)
    in
    (match exact with
    | Some v -> v
    | None -> float_of_int (n * n) /. (float_of_int p ** (2. /. omega0)))

(** Theorem 1.1 parallel bound: the max of the two regimes. *)
let fast_parallel ?(omega0 = omega_strassen) ~n ~m ~p () =
  Float.max (fast_memdep ~omega0 ~n ~m ~p ()) (fast_memind ~omega0 ~n ~p ())

let fast_sequential ?(omega0 = omega_strassen) ~n ~m () =
  fast_memdep ~omega0 ~n ~m ~p:1 ()

(** The crossover processor count P* where the memory-independent bound
    overtakes the memory-dependent one (found numerically; the closed
    form is P* = (n^omega0 / (n^2 M^{omega0/2 - 1}))^{omega0/(omega0-2)}
    up to constants). Returns the smallest P with memind >= memdep.

    Total: the bracket starts at [1, 2] and doubles until it contains
    the crossover, so the answer never silently saturates at an
    arbitrary upper limit. memind/memdep ~ P^{1 - 2/omega0} decreases
    in P whenever omega0 < 2, so if P = 1 has not crossed yet no P ever
    will — that case (and any bracket past 2^60, unreachable for the
    omega0 > 2 regime the bound describes) raises [Invalid_argument]
    instead of returning a wrong P. *)
let crossover_p ?(omega0 = omega_strassen) ~n ~m () =
  check_params ~n ~m ~p:1 ();
  if omega0 = 3. then classical_crossover_p ~n ~m
  else
  let crossed p = fast_memind ~omega0 ~n ~p () >= fast_memdep ~omega0 ~n ~m ~p () in
  let no_crossover () =
    invalid_arg
      (Printf.sprintf
         "Bounds.crossover_p: memory-independent bound never overtakes the \
          memory-dependent one (omega0 = %g, n = %d, M = %d)"
         omega0 n m)
  in
  let max_hi = 1 lsl 60 in
  let rec grow hi =
    if crossed hi then hi
    else if hi >= max_hi then no_crossover ()
    else grow (2 * hi)
  in
  let rec search lo hi =
    (* invariant: not (crossed lo) && crossed hi *)
    if hi - lo <= 1 then hi
    else begin
      let mid = lo + ((hi - lo) / 2) in
      if crossed mid then search lo mid else search mid hi
    end
  in
  if crossed 1 then 1
  else if omega0 <= 2. then
    (* the ratio is non-increasing in P: P = 1 already decided it *)
    no_crossover ()
  else
    let hi = grow 2 in
    search (hi / 2) hi

(* --- hybrid fast/classical MM (De Stefani 2019, PAPERS.md) --- *)

let check_cutoff ~fn ~n cutoff =
  if cutoff < 1 || cutoff > n then
    invalid_arg
      (Printf.sprintf "Bounds.%s: cutoff must satisfy 1 <= cutoff <= n" fn)

(** Memory-dependent bound for the hybrid algorithm that runs the fast
    recursion down to sub-problems of size n0 = [cutoff] and finishes
    them classically (De Stefani 2019):

      Omega((n / max(sqrt M, n0))^omega0 * max(sqrt M, n0)^3 / (sqrt M * P))

    When n0 <= sqrt M the classical leaves fit in fast memory and the
    expression collapses to the uniform fast bound; when n0 > sqrt M
    each of the (n/n0)^omega0 classical leaves pays its own classical
    memory-dependent bound. The reductions are structural so the
    n0-limit identities are float-exact: [cutoff = 1] (indeed any
    cutoff with cutoff^2 <= M) returns {!fast_memdep} verbatim, and
    [cutoff = n] returns {!classical_memdep} verbatim (the hybrid at
    cutoff n {e is} classical MM). In between, the leaf-count factor
    (n/n0)^omega0 takes the exact integer route of {!fast_memdep}
    (omega0 = log2 t, power-of-two n/n0) before falling back to
    floats. *)
let hybrid_memdep ?(omega0 = omega_strassen) ~n ~m ~p ~cutoff () =
  check_params ~n ~m ~p ();
  check_cutoff ~fn:"hybrid_memdep" ~n cutoff;
  if cutoff = n then classical_memdep ~n ~m ~p
  else if cutoff * cutoff <= m then fast_memdep ~omega0 ~n ~m ~p ()
  else begin
    (* (n / cutoff)^omega0 classical leaves, each of size cutoff *)
    let leaves =
      match rank_of_omega0 omega0 with
      | Some t
        when n mod cutoff = 0
             && Fmm_util.Combinat.is_power_of ~base:2 (n / cutoff) -> (
        match ipow_opt t (Fmm_util.Combinat.log2_exact (n / cutoff)) with
        | Some l -> float_of_int l
        | None -> (float_of_int n /. float_of_int cutoff) ** omega0)
      | _ -> (float_of_int n /. float_of_int cutoff) ** omega0
    in
    leaves *. classical_memdep ~n:cutoff ~m ~p
  end

(** Memory-independent bound for the hybrid algorithm: the larger of
    the classical bound over the (n/n0)^omega0 leaves,
    (leaves / P)^{2/3} n0^2, and the fast bound n^2 / P^{2/omega0} for
    the encoder/decoder part. [cutoff = 1] returns {!fast_memind}
    verbatim; at [cutoff = n] the leaf factor is exactly 1 and
    [Float.max] selects {!classical_memind} (the fast term is
    pointwise smaller for omega0 < 3), so both n0-limit identities are
    float-exact. The leaf factor leaves^{2/3} takes an exact integer
    route when the leaf count is a perfect cube. *)
let hybrid_memind ?(omega0 = omega_strassen) ~n ~p ~cutoff () =
  check_params ~n ~m:1 ~p ();
  check_cutoff ~fn:"hybrid_memind" ~n cutoff;
  if cutoff = 1 then fast_memind ~omega0 ~n ~p ()
  else begin
    let leaves_23 =
      (* leaves^{2/3} with leaves = (n/cutoff)^omega0 *)
      let float_route () =
        (float_of_int n /. float_of_int cutoff) ** (2. *. omega0 /. 3.)
      in
      match rank_of_omega0 omega0 with
      | Some t
        when n mod cutoff = 0
             && Fmm_util.Combinat.is_power_of ~base:2 (n / cutoff) -> (
        match ipow_opt t (Fmm_util.Combinat.log2_exact (n / cutoff)) with
        | Some l -> (
          match Fmm_util.Combinat.iroot_exact ~k:3 l with
          | Some c -> float_of_int (c * c)
          | None -> float_of_int l ** (2. /. 3.))
        | None -> float_route ())
      | _ -> float_route ()
    in
    Float.max
      (leaves_23 *. classical_memind ~n:cutoff ~p)
      (fast_memind ~omega0 ~n ~p ())
  end

(** Smallest P where the hybrid memory-independent bound overtakes the
    hybrid memory-dependent one; same growing-bracket search and
    [Invalid_argument] contract as {!crossover_p}. The n0 limits
    delegate structurally: [cutoff = 1] to {!crossover_p} and
    [cutoff = n] to {!classical_crossover_p} (exact integer
    arithmetic). *)
let hybrid_crossover_p ?(omega0 = omega_strassen) ~n ~m ~cutoff () =
  check_params ~n ~m ~p:1 ();
  check_cutoff ~fn:"hybrid_crossover_p" ~n cutoff;
  if cutoff = 1 then crossover_p ~omega0 ~n ~m ()
  else if cutoff = n then classical_crossover_p ~n ~m
  else begin
    let crossed p =
      hybrid_memind ~omega0 ~n ~p ~cutoff ()
      >= hybrid_memdep ~omega0 ~n ~m ~p ~cutoff ()
    in
    let no_crossover () =
      invalid_arg
        (Printf.sprintf
           "Bounds.hybrid_crossover_p: memory-independent bound never \
            overtakes the memory-dependent one (omega0 = %g, n = %d, M = \
            %d, cutoff = %d)"
           omega0 n m cutoff)
    in
    let max_hi = 1 lsl 60 in
    let rec grow hi =
      if crossed hi then hi
      else if hi >= max_hi then no_crossover ()
      else grow (2 * hi)
    in
    let rec search lo hi =
      (* invariant: not (crossed lo) && crossed hi *)
      if hi - lo <= 1 then hi
      else begin
        let mid = lo + ((hi - lo) / 2) in
        if crossed mid then search lo mid else search mid hi
      end
    in
    if crossed 1 then 1
    else begin
      let hi = grow 2 in
      search (hi / 2) hi
    end
  end

(* --- row 5: rectangular fast matrix multiplication [22] --- *)

(** Bound for a <m0,n0,p0; q> base case run for [t] recursion levels:
    Omega(q^t / (P * M^{log_{m0 p0} q - 1})). *)
let rectangular ~m0 ~p0 ~q ~t ~m ~p =
  if m0 < 1 || p0 < 1 || q < 1 || t < 0 then invalid_arg "Bounds.rectangular";
  check_params ~n:1 ~m ~p ();
  (* Exact route at power-of-two boundaries: q = 2^a, m0*p0 = 2^b,
     M = 2^j with b | j*(a-b) gives q^t / M^(a/b - 1) = 2^(a*t - j*(a-b)/b)
     — a pure ldexp, where the float log ratio puts the exponent off by
     an ulp and the power off by much more. *)
  let exact =
    match (log_of ~base:2 q, log_of ~base:2 (m0 * p0), log_of ~base:2 m) with
    | Some a, Some b, Some j when b > 0 && j * (a - b) mod b = 0 ->
      Some (Float.ldexp 1.0 ((a * t) - (j * (a - b) / b)) /. float_of_int p)
    | _ -> None
  in
  match exact with
  | Some v -> v
  | None ->
    let exponent = (log (float_of_int q) /. log (float_of_int (m0 * p0))) -. 1. in
    (* q^t itself is integral: route it through integers when it fits
       so the numerator at least is exactly rounded. *)
    let qt =
      match ipow_opt q t with
      | Some v -> float_of_int v
      | None -> float_of_int q ** float_of_int t
    in
    qt /. (float_of_int p *. (float_of_int m ** exponent))

(* --- row 6: fast Fourier transform [12], [5], [11], [13] --- *)

let fft_memdep ~n ~m ~p =
  check_params ~n ~m ~p ();
  (* exact logs at powers of two — the only sizes the butterfly
     workloads actually use *)
  float_of_int n *. log2_int n /. (float_of_int p *. log2_int m)

let fft_memind ~n ~p =
  check_params ~n ~m:1 ~p ();
  if n <= p then 0.
  else if n mod p = 0 then
    float_of_int n *. log2_int n /. (float_of_int p *. log2_int (n / p))
  else begin
    let nf = float_of_int n and pf = float_of_int p in
    nf *. log2 nf /. (pf *. log2 (nf /. pf))
  end

(* --- Table I as data: used by the table1 bench to print the rows --- *)

type recomputation_status =
  | Not_relevant (* classical: intermediates used once *)
  | Proven_here (* this paper: bound holds with recomputation *)
  | Proven_prior of string (* earlier work covers recomputation *)
  | Open_ (* no recomputation-aware bound known *)

type row = {
  algorithm : string;
  memdep : n:int -> m:int -> p:int -> float;
  memind : n:int -> p:int -> float;
  omega0 : float;
  no_recomp_citations : string;
  with_recomp : recomputation_status;
}

let table1_rows =
  [
    {
      algorithm = "Classical MM";
      memdep = (fun ~n ~m ~p -> classical_memdep ~n ~m ~p);
      memind = (fun ~n ~p -> classical_memind ~n ~p);
      omega0 = 3.;
      no_recomp_citations = "[2],[1]";
      with_recomp = Not_relevant;
    };
    {
      algorithm = "Strassen";
      memdep = (fun ~n ~m ~p -> fast_memdep ~n ~m ~p ());
      memind = (fun ~n ~p -> fast_memind ~n ~p ());
      omega0 = omega_strassen;
      no_recomp_citations = "[8]-[10],[1]";
      with_recomp = Proven_prior "[10] + here";
    };
    {
      algorithm = "Other fast MM, 2x2 base";
      memdep = (fun ~n ~m ~p -> fast_memdep ~n ~m ~p ());
      memind = (fun ~n ~p -> fast_memind ~n ~p ());
      omega0 = omega_strassen;
      no_recomp_citations = "[8]-[10],[1]";
      with_recomp = Proven_here;
    };
    {
      algorithm = "Fast MM, general base (omega0)";
      memdep = (fun ~n ~m ~p -> fast_memdep ~omega0:2.85 ~n ~m ~p ());
      memind = (fun ~n ~p -> fast_memind ~omega0:2.85 ~n ~p ());
      omega0 = 2.85;
      no_recomp_citations = "[8]-[10],[1]";
      with_recomp = Open_;
    };
  ]

let recomputation_status_string = function
  | Not_relevant -> "not relevant"
  | Proven_here -> "[here]"
  | Proven_prior s -> s
  | Open_ -> "open"

(* --- leading-coefficient data from the paper (Sections I, IV) --- *)

(** Arithmetic leading coefficients quoted in the introduction:
    Strassen 7, Winograd 6, Karstadt-Schwartz 5 (all x n^{log2 7}).
    The opcount benches re-derive these from measured counts. *)
let arithmetic_leading_coefficients =
  [ ("Strassen", 7.); ("Winograd", 6.); ("Karstadt-Schwartz", 5.) ]

(** I/O leading coefficients quoted in Section IV (Winograd-style
    recursion): 10.5 before, 9 after the basis change. *)
let io_leading_coefficients = [ ("Winograd", 10.5); ("Karstadt-Schwartz", 9.) ]

(** Closed-form leading coefficient of the direct-evaluation arithmetic
    recurrence T(n) = t T(n/2) + s (n/2)^2, T(1) = 1, for a 2x2 base
    with t = 7: T(n) = c n^{log2 7} + d n^2 with d = -s/3 and
    c = 1 + s/3. Matches the 6 n^w - 5 n^2 form for Winograd (s = 15)
    and 5 n^w - 4 n^2 for KS (s = 12). *)
let leading_coefficient_of_adds ~adds_per_step =
  1. +. (float_of_int adds_per_step /. 3.)
