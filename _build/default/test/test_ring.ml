(* Tests for the exact-arithmetic substrate: Bigint, Rat, Zp.
   Bigint is validated against native int arithmetic on ranges where
   both are exact, plus targeted big-value cases; Rat and Zp are
   checked against field axioms with qcheck. *)

module B = Fmm_ring.Bigint
module Q = Fmm_ring.Rat
module Z7 = Fmm_ring.Zp.Z7
module Z101 = Fmm_ring.Zp.Z101

let bigint = Alcotest.testable B.pp B.equal
let rat = Alcotest.testable Q.pp Q.equal

(* --- Bigint unit tests --- *)

let test_of_to_int () =
  List.iter
    (fun n ->
      Alcotest.(check (option int))
        (Printf.sprintf "roundtrip %d" n)
        (Some n)
        (B.to_int_opt (B.of_int n)))
    [ 0; 1; -1; 42; -42; 32767; 32768; -32768; 123456789; max_int / 2 ]

let test_to_string () =
  Alcotest.(check string) "zero" "0" (B.to_string B.zero);
  Alcotest.(check string) "small" "12345" (B.to_string (B.of_int 12345));
  Alcotest.(check string) "negative" "-987654321" (B.to_string (B.of_int (-987654321)));
  (* 2^100 = 1267650600228229401496703205376 *)
  Alcotest.(check string)
    "2^100" "1267650600228229401496703205376"
    (B.to_string (B.pow (B.of_int 2) 100))

let test_of_string () =
  Alcotest.check bigint "parse small" (B.of_int 451) (B.of_string "451");
  Alcotest.check bigint "parse neg" (B.of_int (-999)) (B.of_string "-999");
  Alcotest.check bigint "parse plus" (B.of_int 7) (B.of_string "+7");
  Alcotest.check bigint "roundtrip big"
    (B.pow (B.of_int 3) 80)
    (B.of_string (B.to_string (B.pow (B.of_int 3) 80)));
  Alcotest.check_raises "empty" (Invalid_argument "Bigint.of_string: empty")
    (fun () -> ignore (B.of_string "  "));
  Alcotest.check_raises "junk" (Invalid_argument "Bigint.of_string: bad digit")
    (fun () -> ignore (B.of_string "12x4"))

let test_add_sub_mul_small () =
  let pairs = [ (0, 0); (1, 1); (5, -3); (-5, 3); (-5, -3); (32767, 1); (100000, 99999) ] in
  List.iter
    (fun (a, b) ->
      Alcotest.check bigint "add" (B.of_int (a + b)) (B.add (B.of_int a) (B.of_int b));
      Alcotest.check bigint "sub" (B.of_int (a - b)) (B.sub (B.of_int a) (B.of_int b));
      Alcotest.check bigint "mul" (B.of_int (a * b)) (B.mul (B.of_int a) (B.of_int b)))
    pairs

let test_big_multiplication () =
  (* (2^64 + 1)^2 = 2^128 + 2^65 + 1 *)
  let x = B.add (B.pow (B.of_int 2) 64) B.one in
  let expected =
    B.add (B.pow (B.of_int 2) 128) (B.add (B.pow (B.of_int 2) 65) B.one)
  in
  Alcotest.check bigint "(2^64+1)^2" expected (B.mul x x)

let test_divmod () =
  let cases = [ (17, 5); (-17, 5); (17, -5); (-17, -5); (100, 1); (0, 7); (32768, 3) ] in
  List.iter
    (fun (a, b) ->
      let q, r = B.divmod (B.of_int a) (B.of_int b) in
      Alcotest.check bigint (Printf.sprintf "q %d/%d" a b) (B.of_int (a / b)) q;
      Alcotest.check bigint (Printf.sprintf "r %d/%d" a b) (B.of_int (a mod b)) r)
    cases;
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (B.divmod B.one B.zero))

let test_divmod_big () =
  (* Check a = q*b + r and 0 <= |r| < |b| on multi-limb values. *)
  let a = B.pow (B.of_int 7) 50 in
  let b = B.pow (B.of_int 3) 21 in
  let q, r = B.divmod a b in
  Alcotest.check bigint "reconstruct" a (B.add (B.mul q b) r);
  Alcotest.(check bool) "remainder bound" true (B.compare (B.abs r) (B.abs b) < 0)

let test_gcd () =
  Alcotest.check bigint "gcd(12,18)" (B.of_int 6) (B.gcd (B.of_int 12) (B.of_int 18));
  Alcotest.check bigint "gcd(-12,18)" (B.of_int 6) (B.gcd (B.of_int (-12)) (B.of_int 18));
  Alcotest.check bigint "gcd(0,5)" (B.of_int 5) (B.gcd B.zero (B.of_int 5));
  Alcotest.check bigint "gcd coprime" B.one (B.gcd (B.of_int 35) (B.of_int 64))

let test_pow () =
  Alcotest.check bigint "x^0" B.one (B.pow (B.of_int 9) 0);
  Alcotest.check bigint "2^15" (B.of_int 32768) (B.pow (B.of_int 2) 15);
  Alcotest.check bigint "(-2)^3" (B.of_int (-8)) (B.pow (B.of_int (-2)) 3);
  Alcotest.check_raises "neg exp" (Invalid_argument "Bigint.pow: negative exponent")
    (fun () -> ignore (B.pow B.one (-1)))

let test_bit_length () =
  Alcotest.(check int) "0" 0 (B.bit_length B.zero);
  Alcotest.(check int) "1" 1 (B.bit_length B.one);
  Alcotest.(check int) "255" 8 (B.bit_length (B.of_int 255));
  Alcotest.(check int) "256" 9 (B.bit_length (B.of_int 256));
  Alcotest.(check int) "2^100" 101 (B.bit_length (B.pow (B.of_int 2) 100))

let test_compare () =
  let vals = [ -100000; -1; 0; 1; 32768; 100000 ] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Alcotest.(check int)
            (Printf.sprintf "compare %d %d" a b)
            (compare a b)
            (B.compare (B.of_int a) (B.of_int b)))
        vals)
    vals

(* --- Bigint properties vs native ints --- *)

let int_gen = QCheck2.Gen.int_range (-1_000_000) 1_000_000

let prop_ring_matches_int =
  QCheck2.Test.make ~name:"bigint ring ops match int" ~count:500
    QCheck2.Gen.(triple int_gen int_gen int_gen)
    (fun (a, b, c) ->
      let ba = B.of_int a and bb = B.of_int b and bc = B.of_int c in
      B.to_int_exn (B.add ba bb) = a + b
      && B.to_int_exn (B.sub ba bb) = a - b
      && B.to_int_exn (B.mul ba bb) = a * b
      && B.to_int_exn (B.add (B.mul ba bb) bc) = (a * b) + c)

let prop_divmod_matches_int =
  QCheck2.Test.make ~name:"bigint divmod matches int" ~count:500
    QCheck2.Gen.(pair int_gen (int_range 1 100_000))
    (fun (a, b) ->
      let q, r = B.divmod (B.of_int a) (B.of_int b) in
      B.to_int_exn q = a / b && B.to_int_exn r = a mod b)

let prop_mul_assoc_big =
  QCheck2.Test.make ~name:"bigint mul associative on big values" ~count:100
    QCheck2.Gen.(triple int_gen int_gen int_gen)
    (fun (a, b, c) ->
      let big x = B.mul (B.of_int x) (B.pow (B.of_int 2) 70) in
      let ba = big a and bb = big b and bc = big c in
      B.equal (B.mul (B.mul ba bb) bc) (B.mul ba (B.mul bb bc)))

let prop_string_roundtrip =
  QCheck2.Test.make ~name:"bigint to_string/of_string roundtrip" ~count:200
    QCheck2.Gen.(pair int_gen (int_range 0 4))
    (fun (a, e) ->
      let x = B.pow (B.of_int a) (e + 1) in
      B.equal x (B.of_string (B.to_string x)))

(* --- Rat --- *)

let test_rat_basics () =
  Alcotest.check rat "1/2 + 1/3" (Q.of_ints 5 6) (Q.add (Q.of_ints 1 2) (Q.of_ints 1 3));
  Alcotest.check rat "normalization" (Q.of_ints 1 2) (Q.of_ints 3 6);
  Alcotest.check rat "negative den" (Q.of_ints (-1) 2) (Q.of_ints 1 (-2));
  Alcotest.check rat "mul" (Q.of_ints 1 3) (Q.mul (Q.of_ints 2 3) (Q.of_ints 1 2));
  Alcotest.check rat "div" (Q.of_ints 4 3) (Q.div (Q.of_ints 2 3) (Q.of_ints 1 2));
  Alcotest.(check string) "print int" "5" (Q.to_string (Q.of_int 5));
  Alcotest.(check string) "print frac" "-2/3" (Q.to_string (Q.of_ints 2 (-3)));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Q.inv Q.zero))

let test_rat_compare () =
  Alcotest.(check bool) "1/3 < 1/2" true (Q.compare (Q.of_ints 1 3) (Q.of_ints 1 2) < 0);
  Alcotest.(check bool) "-1/2 < 1/3" true (Q.compare (Q.of_ints (-1) 2) (Q.of_ints 1 3) < 0);
  Alcotest.(check int) "equal" 0 (Q.compare (Q.of_ints 2 4) (Q.of_ints 1 2))

let test_rat_pow () =
  Alcotest.check rat "(2/3)^3" (Q.of_ints 8 27) (Q.pow (Q.of_ints 2 3) 3);
  Alcotest.check rat "(2/3)^-2" (Q.of_ints 9 4) (Q.pow (Q.of_ints 2 3) (-2));
  Alcotest.check rat "x^0" Q.one (Q.pow (Q.of_ints 7 5) 0)

let rat_gen =
  QCheck2.Gen.(
    map
      (fun (n, d) -> Q.of_ints n (if d = 0 then 1 else d))
      (pair (int_range (-1000) 1000) (int_range (-1000) 1000)))

let prop_rat_field_axioms =
  QCheck2.Test.make ~name:"rat field axioms" ~count:300
    QCheck2.Gen.(triple rat_gen rat_gen rat_gen)
    (fun (a, b, c) ->
      Q.equal (Q.add a b) (Q.add b a)
      && Q.equal (Q.add (Q.add a b) c) (Q.add a (Q.add b c))
      && Q.equal (Q.mul a b) (Q.mul b a)
      && Q.equal (Q.mul (Q.mul a b) c) (Q.mul a (Q.mul b c))
      && Q.equal (Q.mul a (Q.add b c)) (Q.add (Q.mul a b) (Q.mul a c))
      && Q.equal (Q.add a (Q.neg a)) Q.zero
      && (Q.is_zero a || Q.equal (Q.mul a (Q.inv a)) Q.one))

let prop_rat_sub_div =
  QCheck2.Test.make ~name:"rat sub/div consistent" ~count:300
    QCheck2.Gen.(pair rat_gen rat_gen)
    (fun (a, b) ->
      Q.equal (Q.sub a b) (Q.add a (Q.neg b))
      && (Q.is_zero b || Q.equal (Q.mul (Q.div a b) b) a))

(* --- Zp --- *)

let test_zp_basics () =
  Alcotest.(check int) "3+5 mod 7" 1 (Z7.add (Z7.of_int 3) (Z7.of_int 5));
  Alcotest.(check int) "neg" 4 (Z7.neg (Z7.of_int 3));
  Alcotest.(check int) "of_int negative" 5 (Z7.of_int (-2));
  Alcotest.(check int) "3*5 mod 7" 1 (Z7.mul (Z7.of_int 3) (Z7.of_int 5));
  Alcotest.check_raises "inv 0" Division_by_zero (fun () -> ignore (Z7.inv 0))

let test_zp_inverse_all () =
  List.iter
    (fun x ->
      if x <> 0 then
        Alcotest.(check int)
          (Printf.sprintf "inv %d" x)
          1
          (Z101.mul x (Z101.inv x)))
    (Z101.all ())

let test_zp_bad_modulus () =
  Alcotest.check_raises "composite" (Invalid_argument "Zp.Make: modulus not prime")
    (fun () ->
      let module Bad = Fmm_ring.Zp.Make (struct
        let p = 9
      end) in
      ignore Bad.one)

let prop_zp_field =
  QCheck2.Test.make ~name:"Z101 field axioms" ~count:300
    QCheck2.Gen.(triple (int_range 0 100) (int_range 0 100) (int_range 0 100))
    (fun (a, b, c) ->
      Z101.equal (Z101.add a b) (Z101.add b a)
      && Z101.equal (Z101.mul (Z101.mul a b) c) (Z101.mul a (Z101.mul b c))
      && Z101.equal (Z101.mul a (Z101.add b c))
           (Z101.add (Z101.mul a b) (Z101.mul a c))
      && (a = 0 || Z101.equal (Z101.mul a (Z101.inv a)) Z101.one))

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "fmm_ring"
    [
      ( "bigint",
        [
          Alcotest.test_case "of/to int" `Quick test_of_to_int;
          Alcotest.test_case "to_string" `Quick test_to_string;
          Alcotest.test_case "of_string" `Quick test_of_string;
          Alcotest.test_case "add/sub/mul small" `Quick test_add_sub_mul_small;
          Alcotest.test_case "big multiplication" `Quick test_big_multiplication;
          Alcotest.test_case "divmod" `Quick test_divmod;
          Alcotest.test_case "divmod big" `Quick test_divmod_big;
          Alcotest.test_case "gcd" `Quick test_gcd;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "bit_length" `Quick test_bit_length;
          Alcotest.test_case "compare" `Quick test_compare;
          qc prop_ring_matches_int;
          qc prop_divmod_matches_int;
          qc prop_mul_assoc_big;
          qc prop_string_roundtrip;
        ] );
      ( "rat",
        [
          Alcotest.test_case "basics" `Quick test_rat_basics;
          Alcotest.test_case "compare" `Quick test_rat_compare;
          Alcotest.test_case "pow" `Quick test_rat_pow;
          qc prop_rat_field_axioms;
          qc prop_rat_sub_div;
        ] );
      ( "zp",
        [
          Alcotest.test_case "basics" `Quick test_zp_basics;
          Alcotest.test_case "all inverses" `Quick test_zp_inverse_all;
          Alcotest.test_case "bad modulus" `Quick test_zp_bad_modulus;
          qc prop_zp_field;
        ] );
    ]
