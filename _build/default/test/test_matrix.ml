(* Tests for fmm_matrix: dense matrix algebra over several rings and the
   exact linear algebra (rref/inverse/det) over Q. *)

module MI = Fmm_matrix.Matrix.I
module MQ = Fmm_matrix.Matrix.Q
module LQ = Fmm_matrix.Linalg.Q
module Q = Fmm_ring.Rat
module P = Fmm_util.Prng

let mi = Alcotest.testable (fun fmt m -> MI.pp fmt m) MI.equal
let mq = Alcotest.testable (fun fmt m -> MQ.pp fmt m) MQ.equal
let rat = Alcotest.testable Q.pp Q.equal

let test_construction () =
  let m = MI.of_int_rows [ [ 1; 2 ]; [ 3; 4 ] ] in
  Alcotest.(check (pair int int)) "dims" (2, 2) (MI.dims m);
  Alcotest.(check int) "get" 3 (MI.get m 1 0);
  Alcotest.check_raises "oob" (Invalid_argument "Matrix.get: index out of bounds")
    (fun () -> ignore (MI.get m 2 0));
  Alcotest.check_raises "ragged" (Invalid_argument "Matrix.of_rows: ragged rows")
    (fun () -> ignore (MI.of_int_rows [ [ 1 ]; [ 2; 3 ] ]));
  Alcotest.check mi "identity"
    (MI.of_int_rows [ [ 1; 0 ]; [ 0; 1 ] ])
    (MI.identity 2)

let test_add_sub_scale () =
  let a = MI.of_int_rows [ [ 1; 2 ]; [ 3; 4 ] ] in
  let b = MI.of_int_rows [ [ 5; 6 ]; [ 7; 8 ] ] in
  Alcotest.check mi "add" (MI.of_int_rows [ [ 6; 8 ]; [ 10; 12 ] ]) (MI.add a b);
  Alcotest.check mi "sub" (MI.of_int_rows [ [ -4; -4 ]; [ -4; -4 ] ]) (MI.sub a b);
  Alcotest.check mi "neg" (MI.of_int_rows [ [ -1; -2 ]; [ -3; -4 ] ]) (MI.neg a);
  Alcotest.check mi "scale" (MI.of_int_rows [ [ 2; 4 ]; [ 6; 8 ] ]) (MI.scale 2 a);
  Alcotest.check_raises "dim mismatch"
    (Invalid_argument "Matrix.map2: dimension mismatch") (fun () ->
      ignore (MI.add a (MI.zeros 3 3)))

let test_mul () =
  let a = MI.of_int_rows [ [ 1; 2 ]; [ 3; 4 ] ] in
  let b = MI.of_int_rows [ [ 5; 6 ]; [ 7; 8 ] ] in
  Alcotest.check mi "2x2 product"
    (MI.of_int_rows [ [ 19; 22 ]; [ 43; 50 ] ])
    (MI.mul a b);
  (* rectangular *)
  let c = MI.of_int_rows [ [ 1; 0; 2 ]; [ 0; 1; 1 ] ] in
  let d = MI.of_int_rows [ [ 1 ]; [ 2 ]; [ 3 ] ] in
  Alcotest.check mi "2x3 * 3x1" (MI.of_int_rows [ [ 7 ]; [ 5 ] ]) (MI.mul c d);
  Alcotest.check mi "identity is neutral" a (MI.mul a (MI.identity 2));
  Alcotest.check_raises "inner mismatch"
    (Invalid_argument "Matrix.mul: dimension mismatch") (fun () ->
      ignore (MI.mul a d))

let test_transpose () =
  let a = MI.of_int_rows [ [ 1; 2; 3 ]; [ 4; 5; 6 ] ] in
  Alcotest.check mi "transpose"
    (MI.of_int_rows [ [ 1; 4 ]; [ 2; 5 ]; [ 3; 6 ] ])
    (MI.transpose a);
  Alcotest.check mi "involution" a (MI.transpose (MI.transpose a))

let test_split_join () =
  let a = MI.init 4 4 (fun i j -> (i * 4) + j) in
  let blocks = MI.split ~gr:2 ~gc:2 a in
  Alcotest.check mi "block 00" (MI.of_int_rows [ [ 0; 1 ]; [ 4; 5 ] ]) blocks.(0).(0);
  Alcotest.check mi "block 11" (MI.of_int_rows [ [ 10; 11 ]; [ 14; 15 ] ]) blocks.(1).(1);
  Alcotest.check mi "join inverse" a (MI.join blocks);
  Alcotest.check_raises "bad grid"
    (Invalid_argument "Matrix.split: grid does not divide dimensions") (fun () ->
      ignore (MI.split ~gr:3 ~gc:2 a))

let test_pad_unpad () =
  let a = MI.of_int_rows [ [ 1; 2 ]; [ 3; 4 ] ] in
  let p = MI.pad a ~rows:4 ~cols:3 in
  Alcotest.(check (pair int int)) "padded dims" (4, 3) (MI.dims p);
  Alcotest.(check int) "zero fill" 0 (MI.get p 3 2);
  Alcotest.check mi "unpad roundtrip" a (MI.unpad p ~rows:2 ~cols:2);
  Alcotest.check_raises "shrink" (Invalid_argument "Matrix.pad: shrinking")
    (fun () -> ignore (MI.pad a ~rows:1 ~cols:1))

let test_vec_roundtrip () =
  let a = MI.of_int_rows [ [ 1; 2; 3 ]; [ 4; 5; 6 ] ] in
  Alcotest.check mi "of_vec . vec_of" a (MI.of_vec 2 3 (MI.vec_of a));
  Alcotest.(check (array int)) "row major" [| 1; 2; 3; 4; 5; 6 |] (MI.vec_of a)

let test_mul_vec () =
  let a = MI.of_int_rows [ [ 1; 2 ]; [ 3; 4 ] ] in
  Alcotest.(check (array int)) "mat-vec" [| 5; 11 |] (MI.mul_vec a [| 1; 2 |])

let test_kronecker () =
  let a = MI.of_int_rows [ [ 1; 2 ]; [ 3; 4 ] ] in
  let b = MI.of_int_rows [ [ 0; 1 ]; [ 1; 0 ] ] in
  let k = MI.kronecker a b in
  Alcotest.(check (pair int int)) "dims" (4, 4) (MI.dims k);
  Alcotest.(check int) "(0,1) = a00*b01" 1 (MI.get k 0 1);
  Alcotest.(check int) "(2,3) = a11*b01" 4 (MI.get k 2 3);
  (* (A (x) B)(C (x) D) = AC (x) BD *)
  let c = MI.of_int_rows [ [ 2; 0 ]; [ 1; 1 ] ] in
  let d = MI.of_int_rows [ [ 1; 1 ]; [ 0; 2 ] ] in
  Alcotest.check mi "mixed product property"
    (MI.kronecker (MI.mul a c) (MI.mul b d))
    (MI.mul (MI.kronecker a b) (MI.kronecker c d))

let test_trace_is_zero () =
  let a = MI.of_int_rows [ [ 1; 2 ]; [ 3; 4 ] ] in
  Alcotest.(check int) "trace" 5 (MI.trace a);
  Alcotest.(check bool) "not zero" false (MI.is_zero a);
  Alcotest.(check bool) "zeros" true (MI.is_zero (MI.zeros 3 3));
  Alcotest.check_raises "trace non-square"
    (Invalid_argument "Matrix.trace: not square") (fun () ->
      ignore (MI.trace (MI.zeros 2 3)))

(* --- linear algebra over Q --- *)

let q_of_rows rows = MQ.of_int_rows rows

let test_rref_rank () =
  let m = q_of_rows [ [ 1; 2; 3 ]; [ 2; 4; 6 ]; [ 1; 0; 1 ] ] in
  Alcotest.(check int) "rank 2" 2 (LQ.rank m);
  Alcotest.(check int) "rank full" 2 (LQ.rank (q_of_rows [ [ 1; 0 ]; [ 0; 1 ] ]));
  Alcotest.(check int) "rank zero" 0 (LQ.rank (MQ.zeros 3 3));
  let r, rank, pivots = LQ.rref (q_of_rows [ [ 0; 2 ]; [ 1; 1 ] ]) in
  Alcotest.(check int) "rref rank" 2 rank;
  Alcotest.(check (list int)) "pivot cols" [ 0; 1 ] pivots;
  Alcotest.check mq "rref is identity" (MQ.identity 2) r

let test_det () =
  Alcotest.check rat "det 2x2" (Q.of_int (-2))
    (LQ.det (q_of_rows [ [ 1; 2 ]; [ 3; 4 ] ]));
  Alcotest.check rat "det singular" Q.zero
    (LQ.det (q_of_rows [ [ 1; 2 ]; [ 2; 4 ] ]));
  Alcotest.check rat "det identity" Q.one (LQ.det (MQ.identity 4));
  (* det of permutation = sign *)
  Alcotest.check rat "det swap" (Q.of_int (-1))
    (LQ.det (q_of_rows [ [ 0; 1 ]; [ 1; 0 ] ]))

let test_inverse () =
  let m = q_of_rows [ [ 1; 2 ]; [ 3; 4 ] ] in
  let inv = LQ.inverse m in
  Alcotest.check mq "m * m^-1 = I" (MQ.identity 2) (MQ.mul m inv);
  Alcotest.check mq "m^-1 * m = I" (MQ.identity 2) (MQ.mul inv m);
  Alcotest.(check bool) "singular raises" true
    (try
       ignore (LQ.inverse (q_of_rows [ [ 1; 2 ]; [ 2; 4 ] ]));
       false
     with Failure _ -> true)

let test_solve () =
  let m = q_of_rows [ [ 2; 1 ]; [ 1; 3 ] ] in
  let b = [| Q.of_int 5; Q.of_int 10 |] in
  (match LQ.solve m b with
  | None -> Alcotest.fail "expected solution"
  | Some x ->
    Alcotest.check rat "x0" (Q.of_int 1) x.(0);
    Alcotest.check rat "x1" (Q.of_int 3) x.(1));
  (* inconsistent system *)
  let m2 = q_of_rows [ [ 1; 1 ]; [ 1; 1 ] ] in
  (match LQ.solve m2 [| Q.of_int 1; Q.of_int 2 |] with
  | None -> ()
  | Some _ -> Alcotest.fail "expected inconsistency")

(* --- qcheck properties --- *)

let rand_mi rng n range =
  MI.init n n (fun _ _ -> P.int_range rng (-range) range)

let prop_mul_associative =
  QCheck2.Test.make ~name:"matrix mul associative" ~count:50
    (QCheck2.Gen.int_range 1 6) (fun n ->
      let rng = P.create ~seed:(n * 7919) in
      let a = rand_mi rng n 10 and b = rand_mi rng n 10 and c = rand_mi rng n 10 in
      MI.equal (MI.mul (MI.mul a b) c) (MI.mul a (MI.mul b c)))

let prop_mul_distributive =
  QCheck2.Test.make ~name:"matrix mul distributes over add" ~count:50
    (QCheck2.Gen.int_range 1 6) (fun n ->
      let rng = P.create ~seed:(n * 104729) in
      let a = rand_mi rng n 10 and b = rand_mi rng n 10 and c = rand_mi rng n 10 in
      MI.equal (MI.mul a (MI.add b c)) (MI.add (MI.mul a b) (MI.mul a c)))

let prop_transpose_antihom =
  QCheck2.Test.make ~name:"(AB)^T = B^T A^T" ~count:50
    (QCheck2.Gen.int_range 1 6) (fun n ->
      let rng = P.create ~seed:(n * 31) in
      let a = rand_mi rng n 10 and b = rand_mi rng n 10 in
      MI.equal (MI.transpose (MI.mul a b))
        (MI.mul (MI.transpose b) (MI.transpose a)))

let prop_split_join_roundtrip =
  QCheck2.Test.make ~name:"join . split = id" ~count:50
    (QCheck2.Gen.int_range 1 4) (fun g ->
      let n = g * 6 in
      let rng = P.create ~seed:n in
      let a = rand_mi rng n 5 in
      List.for_all
        (fun (gr, gc) -> MI.equal a (MI.join (MI.split ~gr ~gc a)))
        [ (2, 2); (3, 3); (2, 3); (g, g); (1, 1); (n, n) ])

let prop_inverse_roundtrip =
  QCheck2.Test.make ~name:"random invertible Q matrix inverse" ~count:30
    (QCheck2.Gen.int_range 1 5) (fun n ->
      let rng = P.create ~seed:(n * 13) in
      (* build an invertible matrix as product of elementary ops on I *)
      let m = ref (MQ.identity n) in
      for _ = 1 to 3 * n do
        let i = P.int rng n and j = P.int rng n in
        if i <> j then begin
          let e = MQ.identity n in
          MQ.set e i j (Q.of_int (P.int_range rng (-3) 3));
          m := MQ.mul e !m
        end
      done;
      let inv = LQ.inverse !m in
      MQ.equal (MQ.identity n) (MQ.mul !m inv))

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "fmm_matrix"
    [
      ( "matrix",
        [
          Alcotest.test_case "construction" `Quick test_construction;
          Alcotest.test_case "add/sub/scale" `Quick test_add_sub_scale;
          Alcotest.test_case "mul" `Quick test_mul;
          Alcotest.test_case "transpose" `Quick test_transpose;
          Alcotest.test_case "split/join" `Quick test_split_join;
          Alcotest.test_case "pad/unpad" `Quick test_pad_unpad;
          Alcotest.test_case "vec roundtrip" `Quick test_vec_roundtrip;
          Alcotest.test_case "mul_vec" `Quick test_mul_vec;
          Alcotest.test_case "kronecker" `Quick test_kronecker;
          Alcotest.test_case "trace/is_zero" `Quick test_trace_is_zero;
          qc prop_mul_associative;
          qc prop_mul_distributive;
          qc prop_transpose_antihom;
          qc prop_split_join_roundtrip;
        ] );
      ( "linalg",
        [
          Alcotest.test_case "rref/rank" `Quick test_rref_rank;
          Alcotest.test_case "det" `Quick test_det;
          Alcotest.test_case "inverse" `Quick test_inverse;
          Alcotest.test_case "solve" `Quick test_solve;
          qc prop_inverse_roundtrip;
        ] );
    ]
