(* Tests for fmm_lu: the LU-factorization CDAG (the paper's Section V
   conjecture testbed). Structure, semantics (L U = A over exact
   rationals), machine execution vs the direct-linear-algebra bound,
   and the recomputation comparison. *)

module Lu = Fmm_lu.Lu_cdag
module MQ = Fmm_matrix.Matrix.Q
module Q = Fmm_ring.Rat
module D = Fmm_graph.Digraph
module W = Fmm_machine.Workload
module Sch = Fmm_machine.Schedulers
module CM = Fmm_machine.Cache_machine
module Tr = Fmm_machine.Trace
module Pb = Fmm_pebble.Pebble
module P = Fmm_util.Prng

let test_structure () =
  List.iter
    (fun n ->
      let t = Lu.build ~n in
      Alcotest.(check bool) "is DAG" true (D.is_dag t.Lu.graph);
      (* vertices: n^2 inputs + sum_k (n-1-k) multipliers + (n-1-k)^2 updates *)
      let expected =
        let acc = ref (n * n) in
        for k = 0 to n - 2 do
          let w = n - 1 - k in
          acc := !acc + w + (w * w)
        done;
        !acc
      in
      Alcotest.(check int)
        (Printf.sprintf "vertex census n=%d" n)
        expected (Lu.n_vertices t);
      Alcotest.(check int) "outputs = n^2" (n * n) (Array.length t.Lu.outputs))
    [ 2; 3; 4; 8 ]

let test_build_rejects_small () =
  Alcotest.check_raises "n=1" (Invalid_argument "Lu_cdag.build: n must be >= 2")
    (fun () -> ignore (Lu.build ~n:1))

(* a random matrix with nonzero leading minors (diagonally dominant) *)
let dominant_matrix rng n =
  MQ.init n n (fun i j ->
      if i = j then Q.of_int (20 + P.int rng 10)
      else Q.of_int (P.int_range rng (-3) 3))

let test_lu_factorizes () =
  List.iter
    (fun n ->
      let rng = P.create ~seed:(900 + n) in
      let a = dominant_matrix rng n in
      let t = Lu.build ~n in
      let l, u = Lu.Eval_q.run t a in
      Alcotest.(check bool)
        (Printf.sprintf "L U = A (n=%d)" n)
        true
        (MQ.equal (MQ.mul l u) a);
      (* L unit lower, U upper *)
      for i = 0 to n - 1 do
        Alcotest.(check bool) "unit diagonal" true (Q.equal (MQ.get l i i) Q.one);
        for j = i + 1 to n - 1 do
          Alcotest.(check bool) "L upper zero" true (Q.is_zero (MQ.get l i j))
        done
      done)
    [ 2; 3; 5; 8 ]

let test_machine_execution () =
  let t = Lu.build ~n:8 in
  let w = Lu.workload t in
  let order = Lu.elimination_order t in
  Alcotest.(check bool) "order valid" true (W.is_valid_order w order);
  List.iter
    (fun m ->
      let res = Sch.run_lru w ~cache_size:m order in
      let c = CM.replay { CM.cache_size = m; allow_recompute = false } w res.Sch.trace in
      Alcotest.(check int) "replay agrees" (Tr.io res.Sch.counters) (Tr.io c))
    [ 8; 32 ]

let test_io_vs_bound_shape () =
  (* measured I/O >= the Omega(n^3/sqrt M) form with a generous 1/8
     constant, and decreases with memory *)
  let t = Lu.build ~n:12 in
  let w = Lu.workload t in
  let order = Lu.elimination_order t in
  let io m = Tr.io (Sch.run_lru w ~cache_size:m order).Sch.counters in
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (Printf.sprintf "M=%d above bound/8" m)
        true
        (float_of_int (io m) >= Lu.io_lower_bound ~n:12 ~m /. 8.))
    [ 8; 16; 64 ];
  Alcotest.(check bool) "monotone" true (io 8 >= io 64)

let test_recomputation_on_lu () =
  (* the Section V conjecture, on the smallest instance: exact optima
     with and without recomputation coincide on LU(2) and LU(3) *)
  (* update vertices have in-degree 3, so red_limit >= 4 is needed *)
  List.iter
    (fun (n, red) ->
      let game = Lu.pebble_game ~n ~red_limit:red in
      match Pb.compare_recomputation ~max_states:3_000_000 game with
      | Some w_rc, Some wo_rc ->
        Alcotest.(check int)
          (Printf.sprintf "LU(%d) optima equal (R=%d)" n red)
          wo_rc w_rc
      | _ -> Alcotest.fail "exhausted")
    [ (2, 4); (3, 4) ]

let test_remat_trades_like_mm () =
  let t = Lu.build ~n:8 in
  let w = Lu.workload t in
  let order = Lu.elimination_order t in
  let lru = Sch.run_lru w ~cache_size:16 order in
  let rem = Sch.run_rematerialize w ~cache_size:16 order in
  Alcotest.(check bool) "remat stores only outputs" true
    (rem.Sch.counters.Tr.stores <= Array.length t.Lu.outputs);
  Alcotest.(check bool) "remat costs more compute" true
    (rem.Sch.counters.Tr.computes >= lru.Sch.counters.Tr.computes)

let () =
  Alcotest.run "fmm_lu"
    [
      ( "lu_cdag",
        [
          Alcotest.test_case "structure" `Quick test_structure;
          Alcotest.test_case "rejects small" `Quick test_build_rejects_small;
          Alcotest.test_case "factorizes" `Quick test_lu_factorizes;
          Alcotest.test_case "machine execution" `Quick test_machine_execution;
          Alcotest.test_case "io vs bound" `Quick test_io_vs_bound_shape;
          Alcotest.test_case "recomputation" `Slow test_recomputation_on_lu;
          Alcotest.test_case "remat trade" `Quick test_remat_trades_like_mm;
        ] );
    ]
