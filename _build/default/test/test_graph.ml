(* Tests for fmm_graph: digraph basics, Hopcroft-Karp vs brute-force
   matching, Dinic max-flow vs hand-computed values, min vertex
   cut / dominator duality, disjoint path counting. *)

module D = Fmm_graph.Digraph
module M = Fmm_graph.Matching
module F = Fmm_graph.Maxflow
module VC = Fmm_graph.Vertex_cut
module DP = Fmm_graph.Disjoint_paths
module P = Fmm_util.Prng

(* --- digraph --- *)

let diamond () =
  (* 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 *)
  let g = D.create () in
  ignore (D.add_vertices g 4);
  D.add_edge g 0 1;
  D.add_edge g 0 2;
  D.add_edge g 1 3;
  D.add_edge g 2 3;
  g

let test_digraph_basics () =
  let g = diamond () in
  Alcotest.(check int) "vertices" 4 (D.n_vertices g);
  Alcotest.(check int) "edges" 4 (D.n_edges g);
  Alcotest.(check int) "out degree 0" 2 (D.out_degree g 0);
  Alcotest.(check int) "in degree 3" 2 (D.in_degree g 3);
  Alcotest.(check (list int)) "sources" [ 0 ] (D.sources g);
  Alcotest.(check (list int)) "sinks" [ 3 ] (D.sinks g);
  Alcotest.check_raises "bad vertex" (Invalid_argument "Digraph: vertex id out of range")
    (fun () -> D.add_edge g 0 9)

let test_topo_sort () =
  let g = diamond () in
  (match D.topo_sort g with
  | None -> Alcotest.fail "diamond is a DAG"
  | Some order ->
    let pos = Array.make 4 0 in
    List.iteri (fun i v -> pos.(v) <- i) order;
    Alcotest.(check bool) "0 before 1" true (pos.(0) < pos.(1));
    Alcotest.(check bool) "1 before 3" true (pos.(1) < pos.(3));
    Alcotest.(check bool) "2 before 3" true (pos.(2) < pos.(3)));
  let cyclic = D.create () in
  ignore (D.add_vertices cyclic 2);
  D.add_edge cyclic 0 1;
  D.add_edge cyclic 1 0;
  Alcotest.(check bool) "cycle detected" false (D.is_dag cyclic)

let test_reachability () =
  let g = diamond () in
  let r = D.reachable g [ 0 ] in
  Alcotest.(check bool) "0 reaches 3" true r.(3);
  let blocked = D.reachable g [ 0 ] ~blocked:(fun v -> v = 1 || v = 2) in
  Alcotest.(check bool) "cut blocks" false blocked.(3);
  Alcotest.(check bool) "path exists" true (D.has_path g ~from_:[ 0 ] ~to_:[ 3 ]);
  Alcotest.(check bool) "no reverse path" false (D.has_path g ~from_:[ 3 ] ~to_:[ 0 ]);
  let co = D.coreachable g [ 3 ] in
  Alcotest.(check bool) "coreachable hits source" true co.(0)

let test_longest_path () =
  let g = diamond () in
  Alcotest.(check int) "diamond longest" 2 (D.longest_path_length g);
  let chain = D.create () in
  ignore (D.add_vertices chain 5);
  for i = 0 to 3 do
    D.add_edge chain i (i + 1)
  done;
  Alcotest.(check int) "chain longest" 4 (D.longest_path_length chain)

let test_dot_export () =
  let g = diamond () in
  let dot = D.to_dot g in
  Alcotest.(check bool) "has header" true (String.length dot > 10);
  Alcotest.(check bool) "mentions edge" true
    (let rec contains i =
       i + 12 <= String.length dot
       && (String.sub dot i 12 = "  v0 -> v1;\n" || contains (i + 1))
     in
     contains 0)

(* --- matching --- *)

let test_matching_simple () =
  (* perfect matching on K_{3,3} *)
  let edges = List.concat_map (fun x -> List.map (fun y -> (x, y)) [ 0; 1; 2 ]) [ 0; 1; 2 ] in
  let g = M.make_bipartite ~nx:3 ~ny:3 edges in
  Alcotest.(check int) "K33 matching" 3 (M.max_matching_size g);
  (* star: one X connected to many Y, others isolated *)
  let star = M.make_bipartite ~nx:3 ~ny:3 [ (0, 0); (0, 1); (0, 2) ] in
  Alcotest.(check int) "star matching" 1 (M.max_matching_size star);
  let empty = M.make_bipartite ~nx:2 ~ny:2 [] in
  Alcotest.(check int) "empty" 0 (M.max_matching_size empty)

let test_matching_restrict () =
  let g = M.make_bipartite ~nx:4 ~ny:4 [ (0, 0); (1, 1); (2, 2); (3, 3) ] in
  let r = M.restrict g ~xs:[ 0; 1 ] ~ys:[ 1; 2; 3 ] in
  Alcotest.(check int) "restricted" 1 (M.max_matching_size r)

let test_hall_violation () =
  (* X = {0,1,2} all pointing to the single y=0: any 2-subset violates *)
  let g = M.make_bipartite ~nx:3 ~ny:2 [ (0, 0); (1, 0); (2, 0) ] in
  (match M.hall_violation g [ 0; 1; 2 ] with
  | None -> Alcotest.fail "expected a Hall violation"
  | Some (w, nbrs) ->
    Alcotest.(check bool) "|N(W)| < |W|" true (List.length nbrs < List.length w));
  let ok = M.make_bipartite ~nx:2 ~ny:2 [ (0, 0); (1, 1) ] in
  Alcotest.(check bool) "no violation" true (M.hall_violation ok [ 0; 1 ] = None)

let random_bipartite rng nx ny density =
  let edges = ref [] in
  for x = 0 to nx - 1 do
    for y = 0 to ny - 1 do
      if P.float rng < density then edges := (x, y) :: !edges
    done
  done;
  M.make_bipartite ~nx ~ny !edges

let prop_hk_equals_kuhn =
  QCheck2.Test.make ~name:"hopcroft-karp = kuhn on random graphs" ~count:200
    (QCheck2.Gen.int_range 0 100_000) (fun seed ->
      let rng = P.create ~seed in
      let nx = 1 + P.int rng 8 and ny = 1 + P.int rng 8 in
      let g = random_bipartite rng nx ny (P.float rng) in
      M.max_matching_size g = M.kuhn g)

let prop_matching_bounds =
  QCheck2.Test.make ~name:"matching size bounds" ~count:200
    (QCheck2.Gen.int_range 0 100_000) (fun seed ->
      let rng = P.create ~seed in
      let nx = 1 + P.int rng 8 and ny = 1 + P.int rng 8 in
      let g = random_bipartite rng nx ny 0.4 in
      let s = M.max_matching_size g in
      s >= 0 && s <= min nx ny)

(* --- max flow --- *)

let test_maxflow_simple () =
  (* classic: s=0, t=3; 0->1 (3), 0->2 (2), 1->2 (5), 1->3 (2), 2->3 (3) *)
  let f = F.create 4 in
  F.add_edge f 0 1 3;
  F.add_edge f 0 2 2;
  F.add_edge f 1 2 5;
  F.add_edge f 1 3 2;
  F.add_edge f 2 3 3;
  Alcotest.(check int) "max flow" 5 (F.max_flow f ~source:0 ~sink:3)

let test_maxflow_disconnected () =
  let f = F.create 4 in
  F.add_edge f 0 1 10;
  F.add_edge f 2 3 10;
  Alcotest.(check int) "no path" 0 (F.max_flow f ~source:0 ~sink:3)

let test_maxflow_parallel_paths () =
  let f = F.create 6 in
  (* two disjoint unit paths s -> a -> t, s -> b -> t *)
  F.add_edge f 0 1 1;
  F.add_edge f 1 5 1;
  F.add_edge f 0 2 1;
  F.add_edge f 2 5 1;
  Alcotest.(check int) "two unit paths" 2 (F.max_flow f ~source:0 ~sink:5)

let test_min_cut_side () =
  let f = F.create 4 in
  F.add_edge f 0 1 1;
  F.add_edge f 1 2 1;
  F.add_edge f 2 3 5;
  ignore (F.max_flow f ~source:0 ~sink:3);
  let side = F.min_cut_source_side f ~source:0 in
  Alcotest.(check bool) "source in side" true side.(0);
  Alcotest.(check bool) "sink not in side" false side.(3)

(* --- vertex cut / dominator --- *)

let test_min_dominator_diamond () =
  let g = diamond () in
  (* dominate {3} from {0}: min cut is 1 (either {0}, {3}) *)
  let r = VC.min_dominator g ~sources:[ 0 ] ~targets:[ 3 ] in
  Alcotest.(check int) "diamond dominator size" 1 r.VC.size;
  Alcotest.(check bool) "witness dominates" true
    (VC.is_dominator g ~sources:[ 0 ] ~targets:[ 3 ] ~gamma:r.VC.cut)

let test_min_dominator_two_paths () =
  (* 0->1->3, 0->2->3 plus direct 0->3: only {0} or {3} dominate => size 1.
     Without the direct edge and with distinct sources it grows. *)
  let g = D.create () in
  ignore (D.add_vertices g 6);
  (* sources 0,1; middle 2,3; targets 4,5; edges 0->2->4, 1->3->5 *)
  D.add_edge g 0 2;
  D.add_edge g 2 4;
  D.add_edge g 1 3;
  D.add_edge g 3 5;
  let r = VC.min_dominator g ~sources:[ 0; 1 ] ~targets:[ 4; 5 ] in
  Alcotest.(check int) "two chains need 2" 2 r.VC.size;
  Alcotest.(check bool) "witness ok" true
    (VC.is_dominator g ~sources:[ 0; 1 ] ~targets:[ 4; 5 ] ~gamma:r.VC.cut)

let test_is_dominator_negative () =
  let g = diamond () in
  Alcotest.(check bool) "1 alone does not dominate 3" false
    (VC.is_dominator g ~sources:[ 0 ] ~targets:[ 3 ] ~gamma:[ 1 ]);
  Alcotest.(check bool) "1,2 dominate 3" true
    (VC.is_dominator g ~sources:[ 0 ] ~targets:[ 3 ] ~gamma:[ 1; 2 ]);
  Alcotest.(check bool) "empty set fails" false
    (VC.is_dominator g ~sources:[ 0 ] ~targets:[ 3 ] ~gamma:[])

let test_brute_matches_flow () =
  let rng = P.create ~seed:2024 in
  for _ = 1 to 30 do
    (* random layered DAG with 3 layers *)
    let g = D.create () in
    let l0 = Array.to_list (D.add_vertices g 3) in
    let l1 = Array.to_list (D.add_vertices g 4) in
    let l2 = Array.to_list (D.add_vertices g 3) in
    List.iter
      (fun a -> List.iter (fun b -> if P.float rng < 0.5 then D.add_edge g a b) l1)
      l0;
    List.iter
      (fun b -> List.iter (fun c -> if P.float rng < 0.5 then D.add_edge g b c) l2)
      l1;
    let flow = VC.min_dominator g ~sources:l0 ~targets:l2 in
    let candidates = l0 @ l1 @ l2 in
    match VC.min_dominator_brute g ~sources:l0 ~targets:l2 ~candidates with
    | None -> Alcotest.fail "brute force found no dominator"
    | Some brute ->
      Alcotest.(check int) "flow = brute" (List.length brute) flow.VC.size
  done

(* --- disjoint paths --- *)

let test_disjoint_paths_basic () =
  let g = diamond () in
  Alcotest.(check int) "diamond: 1 disjoint path (0 shared)" 1
    (DP.max_disjoint_paths g { sources = [ 0 ]; targets = [ 3 ]; forbidden = [] });
  let g2 = D.create () in
  ignore (D.add_vertices g2 6);
  D.add_edge g2 0 2;
  D.add_edge g2 2 4;
  D.add_edge g2 1 3;
  D.add_edge g2 3 5;
  Alcotest.(check int) "two chains: 2 disjoint" 2
    (DP.max_disjoint_paths g2
       { sources = [ 0; 1 ]; targets = [ 4; 5 ]; forbidden = [] });
  Alcotest.(check int) "forbidding middle kills one" 1
    (DP.max_disjoint_paths g2
       { sources = [ 0; 1 ]; targets = [ 4; 5 ]; forbidden = [ 2 ] })

let test_disjoint_paths_menger () =
  (* Menger duality: disjoint paths = min dominator size, on random DAGs *)
  let rng = P.create ~seed:7 in
  for _ = 1 to 30 do
    let g = D.create () in
    let l0 = Array.to_list (D.add_vertices g 3) in
    let l1 = Array.to_list (D.add_vertices g 5) in
    let l2 = Array.to_list (D.add_vertices g 3) in
    List.iter
      (fun a -> List.iter (fun b -> if P.float rng < 0.45 then D.add_edge g a b) l1)
      l0;
    List.iter
      (fun b -> List.iter (fun c -> if P.float rng < 0.45 then D.add_edge g b c) l2)
      l1;
    let paths =
      DP.max_disjoint_paths g { sources = l0; targets = l2; forbidden = [] }
    in
    let cut = VC.min_dominator g ~sources:l0 ~targets:l2 in
    Alcotest.(check int) "Menger duality" cut.VC.size paths
  done

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "fmm_graph"
    [
      ( "digraph",
        [
          Alcotest.test_case "basics" `Quick test_digraph_basics;
          Alcotest.test_case "topo sort" `Quick test_topo_sort;
          Alcotest.test_case "reachability" `Quick test_reachability;
          Alcotest.test_case "longest path" `Quick test_longest_path;
          Alcotest.test_case "dot export" `Quick test_dot_export;
        ] );
      ( "matching",
        [
          Alcotest.test_case "simple" `Quick test_matching_simple;
          Alcotest.test_case "restrict" `Quick test_matching_restrict;
          Alcotest.test_case "hall violation" `Quick test_hall_violation;
          qc prop_hk_equals_kuhn;
          qc prop_matching_bounds;
        ] );
      ( "maxflow",
        [
          Alcotest.test_case "simple" `Quick test_maxflow_simple;
          Alcotest.test_case "disconnected" `Quick test_maxflow_disconnected;
          Alcotest.test_case "parallel paths" `Quick test_maxflow_parallel_paths;
          Alcotest.test_case "min cut side" `Quick test_min_cut_side;
        ] );
      ( "dominator",
        [
          Alcotest.test_case "diamond" `Quick test_min_dominator_diamond;
          Alcotest.test_case "two chains" `Quick test_min_dominator_two_paths;
          Alcotest.test_case "negative" `Quick test_is_dominator_negative;
          Alcotest.test_case "brute = flow" `Quick test_brute_matches_flow;
        ] );
      ( "disjoint_paths",
        [
          Alcotest.test_case "basic" `Quick test_disjoint_paths_basic;
          Alcotest.test_case "menger duality" `Quick test_disjoint_paths_menger;
        ] );
    ]
