(* Tests for fmm_fft: butterfly-DAG structure, the NTT (against the
   naive DFT), the DAG/NTT correspondence, machine-model I/O against
   the Table I FFT bound, and the pebbling comparison mirroring [13]
   (recomputation does not help the FFT either). *)

module Bf = Fmm_fft.Butterfly
module Ntt = Fmm_fft.Ntt
module F = Fmm_ring.Zp.Z65537
module D = Fmm_graph.Digraph
module W = Fmm_machine.Workload
module Sch = Fmm_machine.Schedulers
module Tr = Fmm_machine.Trace
module CM = Fmm_machine.Cache_machine
module B = Fmm_bounds.Bounds
module Pb = Fmm_pebble.Pebble
module P = Fmm_util.Prng

(* --- butterfly structure --- *)

let test_butterfly_censuses () =
  List.iter
    (fun n ->
      let bf = Bf.build ~n in
      let levels = Fmm_util.Combinat.log2_exact n in
      Alcotest.(check int)
        (Printf.sprintf "vertices n=%d" n)
        (n * (levels + 1))
        (Bf.n_vertices bf);
      Alcotest.(check int) "edges = 2 n log n" (2 * n * levels)
        (D.n_edges bf.Bf.graph);
      Alcotest.(check bool) "is DAG" true (D.is_dag bf.Bf.graph);
      (* every non-input vertex has in-degree exactly 2 *)
      Array.iter
        (fun v -> Alcotest.(check int) "in-degree 2" 2 (D.in_degree bf.Bf.graph v))
        (Bf.outputs bf);
      Alcotest.(check int) "longest path" levels
        (D.longest_path_length bf.Bf.graph))
    [ 2; 4; 8; 16; 64 ]

let test_butterfly_rejects_bad_n () =
  Alcotest.check_raises "n=3"
    (Invalid_argument "Butterfly.build: n must be a power of two >= 2")
    (fun () -> ignore (Bf.build ~n:3));
  Alcotest.check_raises "n=1"
    (Invalid_argument "Butterfly.build: n must be a power of two >= 2")
    (fun () -> ignore (Bf.build ~n:1))

let test_orders_valid () =
  List.iter
    (fun n ->
      let bf = Bf.build ~n in
      let w = Bf.workload bf in
      Alcotest.(check bool) "level order valid" true
        (W.is_valid_order w (Bf.level_order bf));
      List.iter
        (fun block ->
          Alcotest.(check bool)
            (Printf.sprintf "blocked order valid (n=%d, b=%d)" n block)
            true
            (W.is_valid_order w (Bf.blocked_order bf ~block)))
        [ 2; 4; n ])
    [ 4; 16; 64 ]

(* --- NTT semantics --- *)

let random_vec rng n = Array.init n (fun _ -> F.random rng)

let test_roots_of_unity () =
  List.iter
    (fun n ->
      let w = Ntt.root_of_unity n in
      Alcotest.(check int) (Printf.sprintf "w^%d = 1" n) 1 (Ntt.pow_mod w n);
      if n > 1 then
        Alcotest.(check bool) "w^(n/2) <> 1" true (Ntt.pow_mod w (n / 2) <> 1))
    [ 1; 2; 4; 8; 256; 65536 ]

let test_ntt_matches_naive_dft () =
  let rng = P.create ~seed:42 in
  List.iter
    (fun n ->
      let a = random_vec rng n in
      Alcotest.(check (array int))
        (Printf.sprintf "ntt = dft (n=%d)" n)
        (Ntt.dft_naive a) (Ntt.ntt a))
    [ 1; 2; 4; 8; 16; 64 ]

let test_intt_roundtrip () =
  let rng = P.create ~seed:7 in
  List.iter
    (fun n ->
      let a = random_vec rng n in
      Alcotest.(check (array int))
        (Printf.sprintf "intt . ntt = id (n=%d)" n)
        a
        (Ntt.intt (Ntt.ntt a)))
    [ 2; 8; 32; 128 ]

let test_convolution () =
  let rng = P.create ~seed:13 in
  List.iter
    (fun n ->
      let a = random_vec rng n and b = random_vec rng n in
      Alcotest.(check (array int))
        (Printf.sprintf "convolution (n=%d)" n)
        (Ntt.convolve_naive a b) (Ntt.convolve a b))
    [ 2; 4; 16; 64 ]

let test_butterfly_evaluation_is_ntt () =
  let rng = P.create ~seed:99 in
  List.iter
    (fun n ->
      let bf = Bf.build ~n in
      let a = random_vec rng n in
      Alcotest.(check (array int))
        (Printf.sprintf "DAG evaluation = ntt (n=%d)" n)
        (Ntt.ntt a)
        (Ntt.evaluate_butterfly bf a))
    [ 2; 4; 8; 32; 128 ]

(* --- machine model on the butterfly --- *)

let test_fft_lru_legal () =
  let bf = Bf.build ~n:64 in
  let w = Bf.workload bf in
  List.iter
    (fun m ->
      let res = Sch.run_lru w ~cache_size:m (Bf.blocked_order bf ~block:8) in
      let c = CM.replay { CM.cache_size = m; allow_recompute = false } w res.Sch.trace in
      Alcotest.(check int) "replay agrees" (Tr.io res.Sch.counters) (Tr.io c))
    [ 8; 16; 64 ]

let test_fft_blocked_beats_level_order () =
  let bf = Bf.build ~n:256 in
  let w = Bf.workload bf in
  let io order = Tr.io (Sch.run_lru w ~cache_size:16 order).Sch.counters in
  Alcotest.(check bool) "blocked <= level order" true
    (io (Bf.blocked_order bf ~block:16) <= io (Bf.level_order bf))

let test_fft_io_vs_bound () =
  (* measured I/O >= the Table I FFT bound n log n / log M (constant 1). *)
  List.iter
    (fun (n, m) ->
      let bf = Bf.build ~n in
      let w = Bf.workload bf in
      let io =
        Tr.io (Sch.run_lru w ~cache_size:m (Bf.blocked_order bf ~block:m)).Sch.counters
      in
      let bound = B.fft_memdep ~n ~m ~p:1 in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d M=%d: %d >= %.0f" n m io bound)
        true
        (float_of_int io >= bound))
    [ (64, 8); (256, 8); (256, 16) ]

let test_fft_io_decreases_with_memory () =
  (* fixed schedule, growing cache: LRU I/O is monotone. (Choosing
     block = M would change the schedule too — a block that overflows
     the cache thrashes, so block is kept a quarter of the cache.) *)
  let bf = Bf.build ~n:256 in
  let w = Bf.workload bf in
  let io m =
    let block = max 2 (m / 4) in
    Tr.io (Sch.run_lru w ~cache_size:m (Bf.blocked_order bf ~block)).Sch.counters
  in
  Alcotest.(check bool) "io(8) >= io(32)" true (io 8 >= io 32);
  Alcotest.(check bool) "io(32) >= io(128)" true (io 32 >= io 128)

(* --- pebbling: recomputation does not help the FFT either [13] --- *)

let test_fft_pebbling_no_separation () =
  List.iter
    (fun red_limit ->
      let game = Bf.pebble_game ~n:4 ~red_limit in
      match Pb.compare_recomputation ~max_states:1_000_000 game with
      | Some w, Some wo ->
        Alcotest.(check int)
          (Printf.sprintf "FFT-4 optima equal (R=%d)" red_limit)
          wo w
      | _ -> Alcotest.fail "exhausted")
    [ 3; 4; 6 ]

let test_fft_rematerialize_respects_bound () =
  let bf = Bf.build ~n:64 in
  let w = Bf.workload bf in
  let res = Sch.run_rematerialize w ~cache_size:24 (Bf.blocked_order bf ~block:8) in
  let bound = B.fft_memdep ~n:64 ~m:24 ~p:1 in
  Alcotest.(check bool) "remat io >= bound" true
    (float_of_int (Tr.io res.Sch.counters) >= bound)

let () =
  Alcotest.run "fmm_fft"
    [
      ( "butterfly",
        [
          Alcotest.test_case "censuses" `Quick test_butterfly_censuses;
          Alcotest.test_case "bad n" `Quick test_butterfly_rejects_bad_n;
          Alcotest.test_case "orders valid" `Quick test_orders_valid;
        ] );
      ( "ntt",
        [
          Alcotest.test_case "roots of unity" `Quick test_roots_of_unity;
          Alcotest.test_case "matches naive dft" `Quick test_ntt_matches_naive_dft;
          Alcotest.test_case "inverse roundtrip" `Quick test_intt_roundtrip;
          Alcotest.test_case "convolution" `Quick test_convolution;
          Alcotest.test_case "DAG evaluation = ntt" `Quick
            test_butterfly_evaluation_is_ntt;
        ] );
      ( "machine",
        [
          Alcotest.test_case "lru legal" `Quick test_fft_lru_legal;
          Alcotest.test_case "blocked locality" `Quick test_fft_blocked_beats_level_order;
          Alcotest.test_case "io vs bound" `Quick test_fft_io_vs_bound;
          Alcotest.test_case "io vs memory" `Quick test_fft_io_decreases_with_memory;
        ] );
      ( "pebbling",
        [
          Alcotest.test_case "no separation" `Slow test_fft_pebbling_no_separation;
          Alcotest.test_case "remat >= bound" `Quick
            test_fft_rematerialize_respects_bound;
        ] );
    ]
