test/test_lu.ml: Alcotest Array Fmm_graph Fmm_lu Fmm_machine Fmm_matrix Fmm_pebble Fmm_ring Fmm_util List Printf
