test/test_lu.mli:
