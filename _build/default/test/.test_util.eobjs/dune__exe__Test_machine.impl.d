test/test_machine.ml: Alcotest Array Fmm_bilinear Fmm_bounds Fmm_cdag Fmm_graph Fmm_machine Fmm_pebble Fmm_util List Printf QCheck2 QCheck_alcotest
