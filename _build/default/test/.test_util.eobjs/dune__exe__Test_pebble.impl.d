test/test_pebble.ml: Alcotest Array Fmm_bilinear Fmm_cdag Fmm_graph Fmm_pebble List Printf
