test/test_ring.ml: Alcotest Fmm_ring List Printf QCheck2 QCheck_alcotest
