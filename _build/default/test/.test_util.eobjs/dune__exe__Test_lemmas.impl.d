test/test_lemmas.ml: Alcotest Array Fmm_bilinear Fmm_cdag Fmm_graph Fmm_lemmas Fmm_ring List Printf String
