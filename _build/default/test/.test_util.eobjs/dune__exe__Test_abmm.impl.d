test/test_abmm.ml: Alcotest Array Float Fmm_abmm Fmm_bilinear Fmm_graph Fmm_machine Fmm_matrix Fmm_ring Fmm_util List Printf
