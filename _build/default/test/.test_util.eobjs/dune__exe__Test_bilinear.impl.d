test/test_bilinear.ml: Alcotest Array Float Fmm_bilinear Fmm_matrix Fmm_ring Fmm_util List Printf QCheck2 QCheck_alcotest
