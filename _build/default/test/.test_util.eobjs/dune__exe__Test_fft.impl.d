test/test_fft.ml: Alcotest Array Fmm_bounds Fmm_fft Fmm_graph Fmm_machine Fmm_pebble Fmm_ring Fmm_util List Printf
