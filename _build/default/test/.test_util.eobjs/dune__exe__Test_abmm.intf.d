test/test_abmm.mli:
