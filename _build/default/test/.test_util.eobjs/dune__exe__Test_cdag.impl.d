test/test_cdag.ml: Alcotest Array Fmm_bilinear Fmm_cdag Fmm_graph Fmm_matrix Fmm_ring Fmm_util List Printf QCheck2 QCheck_alcotest String
