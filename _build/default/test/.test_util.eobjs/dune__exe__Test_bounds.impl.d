test/test_bounds.ml: Alcotest Float Fmm_bounds List
