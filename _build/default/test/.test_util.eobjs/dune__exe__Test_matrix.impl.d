test/test_matrix.ml: Alcotest Array Fmm_matrix Fmm_ring Fmm_util List QCheck2 QCheck_alcotest
