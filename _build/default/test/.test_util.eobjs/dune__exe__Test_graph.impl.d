test/test_graph.ml: Alcotest Array Fmm_graph Fmm_util List QCheck2 QCheck_alcotest String
