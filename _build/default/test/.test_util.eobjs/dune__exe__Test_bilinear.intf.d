test/test_bilinear.mli:
