test/test_util.ml: Alcotest Array Fmm_util List Printf QCheck2 QCheck_alcotest String
