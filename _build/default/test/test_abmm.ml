(* Tests for fmm_abmm: the full alternative-basis pipeline CDAG
   (Algorithm 1 as one graph). Structure, exact semantic evaluation
   against the matrix product, legality of machine execution, and the
   measured Theorem 4.1 stage shares. *)

module Ab = Fmm_abmm.Abmm_cdag
module AB = Fmm_bilinear.Alt_basis
module MQ = Fmm_matrix.Matrix.Q
module Q = Fmm_ring.Rat
module D = Fmm_graph.Digraph
module W = Fmm_machine.Workload
module Sch = Fmm_machine.Schedulers
module CM = Fmm_machine.Cache_machine
module Tr = Fmm_machine.Trace
module P = Fmm_util.Prng
module C = Fmm_util.Combinat

let build n = Ab.build AB.ks_winograd ~n

let test_structure () =
  let t = build 4 in
  Alcotest.(check bool) "is DAG" true (D.is_dag t.Ab.graph);
  Alcotest.(check int) "a inputs" 16 (Array.length t.Ab.a_inputs);
  Alcotest.(check int) "outputs" 16 (Array.length t.Ab.outputs);
  (* transform stages: log2(4) = 2 levels of 16 vertices each, per side
     and for nu-inv *)
  let census = Ab.stage_census t in
  Alcotest.(check int) "phi vertices" 32 (List.assoc "phi" census);
  Alcotest.(check int) "psi vertices" 32 (List.assoc "psi" census);
  Alcotest.(check int) "nu-inv vertices" 32 (List.assoc "nu-inv" census);
  Alcotest.(check bool) "core dominates" true
    (List.assoc "core" census > List.assoc "phi" census)

let test_rejects_bad_sizes () =
  Alcotest.check_raises "n not a power of two"
    (Invalid_argument "Abmm_cdag.build: n must be a power of two") (fun () ->
      ignore (build 6))

let test_evaluates_to_product () =
  List.iter
    (fun n ->
      let rng = P.create ~seed:(800 + n) in
      let a = MQ.random ~rng ~rows:n ~cols:n ~range:9 in
      let b = MQ.random ~rng ~rows:n ~cols:n ~range:9 in
      let t = build n in
      let got = Ab.Eval_q.run t (MQ.vec_of a) (MQ.vec_of b) in
      Alcotest.(check bool)
        (Printf.sprintf "ABMM CDAG evaluates to A.B (n=%d)" n)
        true
        (Array.for_all2 Q.equal (MQ.vec_of (MQ.mul a b)) got))
    [ 2; 4; 8 ]

let test_machine_execution_legal () =
  let t = build 4 in
  let w = Ab.workload t in
  let order =
    match D.topo_sort t.Ab.graph with
    | Some o -> List.filter (fun v -> not t.Ab.is_primary_input.(v)) o
    | None -> Alcotest.fail "cycle"
  in
  Alcotest.(check bool) "order valid" true (W.is_valid_order w order);
  List.iter
    (fun m ->
      let res = Sch.run_lru w ~cache_size:m order in
      let c = CM.replay { CM.cache_size = m; allow_recompute = false } w res.Sch.trace in
      Alcotest.(check int) "replay agrees" (Tr.io res.Sch.counters) (Tr.io c))
    [ 16; 64 ]

let test_stage_shares_shrink () =
  (* Theorem 4.1 premise measured on executed schedules: the transform
     stages' share of Compute events falls as n grows. *)
  let share n =
    let t = build n in
    let w = Ab.workload t in
    let order =
      match D.topo_sort t.Ab.graph with
      | Some o -> List.filter (fun v -> not t.Ab.is_primary_input.(v)) o
      | None -> Alcotest.fail "cycle"
    in
    let res = Sch.run_lru w ~cache_size:(8 * n) order in
    let shares = Ab.stage_compute_shares t res.Sch.trace in
    let get s = match List.find (fun (name, _, _) -> name = s) shares with
      | _, _, f -> f
    in
    get "phi" +. get "psi" +. get "nu-inv"
  in
  let s4 = share 4 and s16 = share 16 in
  Alcotest.(check bool)
    (Printf.sprintf "transform share %.3f (n=16) < %.3f (n=4)" s16 s4)
    true (s16 < s4)

let test_stage_shares_sum_to_one () =
  let t = build 4 in
  let w = Ab.workload t in
  let order =
    match D.topo_sort t.Ab.graph with
    | Some o -> List.filter (fun v -> not t.Ab.is_primary_input.(v)) o
    | None -> Alcotest.fail "cycle"
  in
  let res = Sch.run_lru w ~cache_size:32 order in
  let shares = Ab.stage_compute_shares t res.Sch.trace in
  let total = List.fold_left (fun acc (_, _, f) -> acc +. f) 0. shares in
  Alcotest.(check bool) "shares sum to 1" true (Float.abs (total -. 1.) < 1e-9)

let () =
  Alcotest.run "fmm_abmm"
    [
      ( "abmm_cdag",
        [
          Alcotest.test_case "structure" `Quick test_structure;
          Alcotest.test_case "bad sizes" `Quick test_rejects_bad_sizes;
          Alcotest.test_case "evaluates to product" `Quick test_evaluates_to_product;
          Alcotest.test_case "machine legal" `Quick test_machine_execution_legal;
          Alcotest.test_case "transform share shrinks" `Quick test_stage_shares_shrink;
          Alcotest.test_case "shares sum to one" `Quick test_stage_shares_sum_to_one;
        ] );
    ]
