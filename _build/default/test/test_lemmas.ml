(* Tests for fmm_lemmas: the machine-checked versions of the paper's
   Lemmas 3.1-3.4 / Corollary 3.5 (encoder combinatorics and
   Hopcroft-Kerr), Lemma 3.7 (dominator bound), Lemma 3.8 (Grigoriev
   flow), and Lemma 3.11 (disjoint-path construction). Strassen and
   Winograd must pass everything; the classical algorithm is the
   negative control (it is not a 7-multiplication algorithm, and
   Lemmas 3.1/3.3 do fail on its encoder). *)

module EL = Fmm_lemmas.Encoder_lemmas
module HK = Fmm_lemmas.Hopcroft_kerr
module GR = Fmm_lemmas.Grigoriev
module DL = Fmm_lemmas.Dominator_lemma
module PL = Fmm_lemmas.Paths_lemma
module Eng = Fmm_lemmas.Engine
module Enc = Fmm_cdag.Encoder
module Cd = Fmm_cdag.Cdag
module S = Fmm_bilinear.Strassen
module AB = Fmm_bilinear.Alt_basis
module A = Fmm_bilinear.Algorithm
module M = Fmm_graph.Matching
module Q = Fmm_ring.Rat

let fast_algorithms = [ S.strassen; S.winograd; S.winograd_transposed; AB.ks_core ]

(* --- Lemma 3.1 --- *)

let test_matching_bound_values () =
  (* 1 + ceil((k-1)/2) for k = 1..7: 1,2,2,3,3,4,4 *)
  Alcotest.(check (list int)) "bound table" [ 1; 2; 2; 3; 3; 4; 4 ]
    (List.map EL.matching_bound [ 1; 2; 3; 4; 5; 6; 7 ])

let test_lemma_3_1_fast_algorithms () =
  List.iter
    (fun alg ->
      List.iter
        (fun side ->
          let g = Enc.encoder_bipartite alg side in
          let r = EL.check_lemma_3_1 ~name:(A.name alg) g in
          Alcotest.(check bool)
            (Printf.sprintf "3.1 holds for %s (%s)" (A.name alg)
               (match side with Enc.A_side -> "A" | Enc.B_side -> "B"))
            true r.EL.holds)
        [ Enc.A_side; Enc.B_side ])
    fast_algorithms

let test_lemma_3_1_fails_for_classical () =
  (* classical 2x2 has two products sharing each A input entry with
     identical A-side neighbor sets; matching bound breaks at |Y'|=3. *)
  let g = Enc.encoder_bipartite S.classical_2x2 Enc.A_side in
  let r = EL.check_lemma_3_1 ~name:"classical" g in
  Alcotest.(check bool) "3.1 fails on classical encoder" false r.EL.holds

let test_lemma_3_1_sampled_agrees () =
  List.iter
    (fun alg ->
      let g = Enc.encoder_bipartite alg Enc.A_side in
      let exact = EL.check_lemma_3_1 ~name:"x" g in
      let sampled = EL.check_lemma_3_1_sampled ~name:"x" ~trials:300 ~seed:3 g in
      Alcotest.(check bool)
        (A.name alg ^ ": sampled agrees with exact")
        exact.EL.holds sampled.EL.holds)
    (S.strassen :: [ S.classical_2x2 ])

let test_lemma_3_1_strassen_squared_sampled () =
  (* The Lemma 3.1 bound is specific to 2x2 base cases: for <4,4,4;49>
     a subset Y' of size 49 would demand a matching of size 25 > |X| =
     16, so the bound must fail — and the sampled checker must detect
     that, not silently pass. *)
  let g = Enc.encoder_bipartite S.strassen_squared Enc.A_side in
  let r = EL.check_lemma_3_1_sampled ~name:"strassen^2" ~trials:200 ~seed:5 g in
  Alcotest.(check bool) "2x2-specific bound correctly fails on <4,4,4;49>"
    false r.EL.holds

(* --- Lemmas 3.2 / 3.3 --- *)

let test_lemma_3_2 () =
  List.iter
    (fun alg ->
      List.iter
        (fun side ->
          let g = Enc.encoder_bipartite alg side in
          let r = EL.check_lemma_3_2 ~name:(A.name alg) g in
          Alcotest.(check bool) ("3.2 " ^ A.name alg) true r.EL.holds)
        [ Enc.A_side; Enc.B_side ])
    fast_algorithms

let test_lemma_3_3 () =
  List.iter
    (fun alg ->
      let g = Enc.encoder_bipartite alg Enc.A_side in
      let r = EL.check_lemma_3_3 ~name:(A.name alg) g in
      Alcotest.(check bool) ("3.3 " ^ A.name alg) true r.EL.holds)
    fast_algorithms;
  let g = Enc.encoder_bipartite S.classical_2x2 Enc.A_side in
  let r = EL.check_lemma_3_3 ~name:"classical" g in
  Alcotest.(check bool) "3.3 fails on classical" false r.EL.holds

let test_neighbor_count_equiv_matching () =
  (* By Hall's theorem the two routes must agree on every encoder. *)
  List.iter
    (fun alg ->
      let g = Enc.encoder_bipartite alg Enc.A_side in
      let m = EL.check_lemma_3_1 ~name:"x" g in
      let nb = EL.check_neighbor_count_bound ~name:"x" g in
      Alcotest.(check bool) (A.name alg ^ " routes agree") m.EL.holds nb.EL.holds)
    (S.classical_2x2 :: fast_algorithms)

(* --- Hopcroft-Kerr --- *)

let test_hk_forbidden_set_shapes () =
  Alcotest.(check int) "nine sets" 9 (List.length HK.forbidden_sets);
  List.iter
    (fun (_, forms) ->
      Alcotest.(check int) "three forms" 3 (List.length forms);
      List.iter
        (fun f -> Alcotest.(check int) "width 4" 4 (Array.length f))
        forms)
    HK.forbidden_sets

let test_hk_holds_for_7mult () =
  List.iter
    (fun alg ->
      let checks = HK.check_algorithm alg in
      Alcotest.(check bool)
        (A.name alg ^ ": <= 1 operand from each forbidden set")
        true (HK.all_ok checks))
    fast_algorithms

let test_hk_counts_strassen () =
  (* Strassen's left operands: A11+A22, A21+A22, A11, A22, A11+A12,
     A21-A11, A12-A22. Set 3.5(3) = {A11+A12+A21+A22, A12+A21, A11+A22}
     contains exactly one of them (A11+A22). *)
  let checks = HK.check_algorithm S.strassen in
  let c = List.find (fun c -> c.HK.set_name = "3.5(3)") checks in
  Alcotest.(check int) "one operand in 3.5(3)" 1 c.HK.count;
  let c4 = List.find (fun c -> c.HK.set_name = "3.4") checks in
  (* 3.4 = {A11, A12+A21, A11+A12+A21}: Strassen uses A11 (for M3). *)
  Alcotest.(check int) "one operand in 3.4" 1 c4.HK.count

let test_hk_random_6_search_fails () =
  let trials, found = HK.random_6mult_search ~trials:3000 ~seed:99 in
  Alcotest.(check int) "ran all trials" 3000 trials;
  Alcotest.(check bool) "no 6-mult algorithm found" false found

let test_strassen_minus_one_unrepairable () =
  Alcotest.(check bool) "dropping a product breaks expressibility" true
    (HK.strassen_minus_one_is_unrepairable ())

(* --- Grigoriev flow --- *)

let test_flow_bound_values () =
  (* n = 2: u = 8 (all inputs free), v = 4 (all outputs): w >= 2. *)
  Alcotest.(check bool) "full flow n=2" true
    (Q.equal (GR.flow_bound ~n:2 ~u:8 ~v:4) (Q.of_int 2));
  (* u = 0: bound is (v - n^2)/2 <= 0: vacuous. *)
  Alcotest.(check bool) "u=0 vacuous" true
    (Q.compare (GR.flow_bound ~n:2 ~u:0 ~v:4) Q.zero <= 0);
  Alcotest.check_raises "u out of range"
    (Invalid_argument "Grigoriev.flow_bound: (u,v) out of range") (fun () ->
      ignore (GR.flow_bound ~n:2 ~u:9 ~v:4))

let test_flow_bound_monotone () =
  (* increasing u (more free inputs) or v (more outputs) raises it *)
  for u = 1 to 7 do
    Alcotest.(check bool) "monotone in u" true
      (GR.flow_bound_float ~n:2 ~u:(u + 1) ~v:4
      >= GR.flow_bound_float ~n:2 ~u ~v:4)
  done;
  for v = 1 to 3 do
    Alcotest.(check bool) "monotone in v" true
      (GR.flow_bound_float ~n:2 ~u:8 ~v:(v + 1)
      >= GR.flow_bound_float ~n:2 ~u:8 ~v)
  done

let test_flow_witness_z2 () =
  (* n=2, free all 8 inputs, keep all 4 outputs: need >= 2^2 = 4
     distinct images; the true image is larger. *)
  let x1 = List.init 8 (fun i -> i) in
  let y1 = [ 0; 1; 2; 3 ] in
  let got, needed, ok = GR.Witness_z2.check ~n:2 ~x1 ~y1 ~trials:1 ~seed:1 in
  Alcotest.(check bool) "witness meets bound" true ok;
  Alcotest.(check bool) "needed is 4" true (needed = 4);
  Alcotest.(check bool) "image nontrivial" true (got >= 4)

let test_flow_witness_partial () =
  (* Free only the 4 entries of A (u=4), keep all outputs: bound is
     (4 - 16/16)/2 = 1.5 -> need >= 2^1.5 ~ 3 images over Z2. *)
  let x1 = [ 0; 1; 2; 3 ] in
  let y1 = [ 0; 1; 2; 3 ] in
  let _, needed, ok = GR.Witness_z2.check ~n:2 ~x1 ~y1 ~trials:5 ~seed:2 in
  Alcotest.(check bool) "partial witness ok" true ok;
  Alcotest.(check int) "needed ceil(2^1.5)" 3 needed


let test_lemma_3_9_dominator_vs_flow () =
  (* Lemma 3.9: any dominator of O' outputs w.r.t. I' free inputs has
     size >= flow(|I'|, |O'|). On H^{2x2}: min dominator of all 4
     outputs from all 8 inputs (exact, by max-flow) must be >= the
     closed-form flow bound w(8,4) = 2. *)
  let cd = Cd.build S.strassen ~n:2 in
  let res =
    Fmm_graph.Vertex_cut.min_dominator (Cd.graph cd)
      ~sources:(Array.to_list (Cd.inputs cd))
      ~targets:(Array.to_list (Cd.outputs cd))
  in
  let bound = GR.flow_bound_float ~n:2 ~u:8 ~v:4 in
  Alcotest.(check bool)
    (Printf.sprintf "min dominator %d >= flow bound %.1f" res.Fmm_graph.Vertex_cut.size bound)
    true
    (float_of_int res.Fmm_graph.Vertex_cut.size >= bound);
  (* partial output sets too *)
  List.iter
    (fun v ->
      let targets =
        Array.to_list (Array.sub (Cd.outputs cd) 0 v)
      in
      let r =
        Fmm_graph.Vertex_cut.min_dominator (Cd.graph cd)
          ~sources:(Array.to_list (Cd.inputs cd))
          ~targets
      in
      Alcotest.(check bool)
        (Printf.sprintf "v=%d" v)
        true
        (float_of_int r.Fmm_graph.Vertex_cut.size
        >= GR.flow_bound_float ~n:2 ~u:8 ~v))
    [ 1; 2; 3 ]

(* --- Lemma 3.7 (dominator bound) --- *)

let test_dominator_bound_base_case () =
  (* H^{2x2}: Z = the 4 outputs, min dominator must be >= 2. *)
  let cd = Cd.build S.strassen ~n:2 in
  let results = DL.per_subproblem_min_dominators cd ~r:2 in
  Alcotest.(check int) "one sub-problem at r = n" 1 (List.length results);
  List.iter
    (fun s ->
      Alcotest.(check bool) "bound holds" true s.DL.holds;
      Alcotest.(check bool) "dominator nontrivial" true (s.DL.min_dominator >= 2))
    results

let test_dominator_bound_sampled_n4 () =
  List.iter
    (fun alg ->
      let cd = Cd.build alg ~n:4 in
      List.iter
        (fun r ->
          let results = DL.sample_min_dominators cd ~r ~trials:10 ~seed:42 in
          Alcotest.(check bool)
            (Printf.sprintf "Lemma 3.7 holds (%s, r=%d)" (A.name alg) r)
            true (DL.all_hold results))
        [ 2; 4 ])
    [ S.strassen; S.winograd ]

let test_dominator_per_subproblem_n4 () =
  let cd = Cd.build S.strassen ~n:4 in
  let results = DL.per_subproblem_min_dominators cd ~r:2 in
  Alcotest.(check int) "seven sub-problems" 7 (List.length results);
  Alcotest.(check bool) "all hold" true (DL.all_hold results)

(* --- Lemma 3.11 (disjoint paths) --- *)

let test_paths_lemma_no_gamma () =
  let cd = Cd.build S.strassen ~n:4 in
  let s = PL.sample cd ~r:2 ~z_size:4 ~gamma_size:0 ~seed:11 in
  Alcotest.(check bool)
    (Printf.sprintf "paths %d >= bound %.1f" s.PL.disjoint_paths s.PL.bound)
    true s.PL.holds

let test_paths_lemma_with_gamma () =
  let cd = Cd.build S.strassen ~n:4 in
  List.iter
    (fun seed ->
      let s = PL.sample cd ~r:2 ~z_size:8 ~gamma_size:2 ~seed in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: paths %d >= bound %.1f" seed
           s.PL.disjoint_paths s.PL.bound)
        true s.PL.holds)
    [ 1; 2; 3; 4; 5 ]

let test_paths_lemma_rejects_bad_args () =
  let cd = Cd.build S.strassen ~n:4 in
  Alcotest.check_raises "|Z| >= 2|Gamma| required"
    (Invalid_argument "Paths_lemma.sample: need |Z| >= 2 |Gamma|") (fun () ->
      ignore (PL.sample cd ~r:2 ~z_size:2 ~gamma_size:2 ~seed:0))


(* --- Lemma 3.10 (disjoint unions) --- *)

module DU = Fmm_lemmas.Disjoint_union_lemma

let test_lemma_3_10_single_copy () =
  let u = DU.build_union S.strassen ~n:2 ~q:1 in
  List.iter
    (fun (o, g) ->
      let s = DU.sample u ~o_size:o ~gamma_size:g ~seed:(o + g) in
      Alcotest.(check bool)
        (Printf.sprintf "|O'|=%d |Gamma|=%d: %d inputs >= %.1f" o g
           s.DU.undominated_inputs s.DU.bound)
        true s.DU.holds)
    [ (4, 0); (4, 1); (2, 1) ]

let test_lemma_3_10_multiple_copies () =
  let u = DU.build_union S.strassen ~n:2 ~q:5 in
  Alcotest.(check int) "20 outputs" 20 (List.length u.DU.outputs);
  Alcotest.(check int) "40 inputs" 40 (List.length u.DU.inputs);
  List.iter
    (fun seed ->
      let s = DU.sample u ~o_size:12 ~gamma_size:4 ~seed in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: %d >= %.1f" seed s.DU.undominated_inputs
           s.DU.bound)
        true s.DU.holds)
    [ 1; 2; 3; 4; 5; 6 ]

let test_lemma_3_10_rejects_bad_args () =
  let u = DU.build_union S.strassen ~n:2 ~q:2 in
  Alcotest.check_raises "|O| >= 2|Gamma|"
    (Invalid_argument "Disjoint_union_lemma.sample: need |O'| >= 2 |Gamma|")
    (fun () -> ignore (DU.sample u ~o_size:2 ~gamma_size:2 ~seed:0))

(* --- the battery on all de Groote conjugates --- *)

let test_battery_on_conjugates () =
  (* Every {I,J}-conjugate of Strassen and Winograd is itself a 2x2-base
     fast MM algorithm and must pass the entire Section III battery —
     the concrete meaning of "any fast matrix multiplication algorithm
     with base case 2x2". *)
  List.iter
    (fun base ->
      List.iter
        (fun alg ->
          let r = Eng.check_algorithm alg in
          Alcotest.(check bool) ("battery: " ^ A.name alg) true r.Eng.all_ok)
        (A.conjugates_2x2 base))
    [ S.strassen; S.winograd ]


(* --- expansion profiles ([8]'s route) --- *)

module EX = Fmm_lemmas.Expansion

let test_expansion_profiles () =
  List.iter
    (fun alg ->
      let p = EX.profile alg Enc.A_side in
      Alcotest.(check bool)
        (A.name alg ^ " profile dominates Lemma 3.1")
        true (EX.dominates_lemma_3_1 p);
      (* matching <= neighborhood always (Koenig/Hall) *)
      List.iter
        (fun (k, nbrs, matching, bound) ->
          Alcotest.(check bool) (Printf.sprintf "k=%d matching<=nbrs" k) true
            (matching <= nbrs);
          Alcotest.(check bool) "bound respected" true (matching >= bound))
        (EX.rows p))
    fast_algorithms

let test_expansion_strassen_values () =
  (* Strassen A-side worst-case matchings: 1,2,2,3,3,4,4 (the lemma's
     curve exactly — the bound is tight) *)
  let p = EX.profile S.strassen Enc.A_side in
  Alcotest.(check (list int)) "matching profile" [ 1; 2; 2; 3; 3; 4; 4 ]
    (List.map (fun (_, _, m, _) -> m) (EX.rows p))

let test_expansion_classical_violates () =
  let p = EX.profile S.classical_2x2 Enc.A_side in
  Alcotest.(check bool) "classical violates the curve" false
    (EX.dominates_lemma_3_1 p)

(* --- engine --- *)

let test_engine_reports () =
  List.iter
    (fun alg ->
      let r = Eng.check_algorithm alg in
      Alcotest.(check bool) ("engine: " ^ A.name alg) true r.Eng.all_ok;
      Alcotest.(check bool) "report renders" true
        (String.length (Eng.report_to_string r) > 0))
    [ S.strassen; S.winograd; S.winograd_transposed ]

let test_engine_flags_classical () =
  let r = Eng.check_algorithm S.classical_2x2 in
  Alcotest.(check bool) "classical flagged" false r.Eng.all_ok;
  (* but classical is still a correct algorithm *)
  Alcotest.(check bool) "classical passes Brent" true r.Eng.brent_ok

let test_engine_deep () =
  let d = Eng.deep_check_algorithm ~n:4 ~trials:3 ~seed:1 S.strassen in
  Alcotest.(check bool) "deep ok for Strassen" true d.Eng.deep_ok;
  Alcotest.(check bool) "lemma 2.2 census" true d.Eng.lemma_2_2_ok;
  Alcotest.(check bool) "renders" true
    (String.length (Eng.deep_report_to_string d) > 0);
  (* classical's encoder failures propagate into deep_ok *)
  let dc = Eng.deep_check_algorithm ~n:4 ~trials:2 ~seed:1 S.classical_2x2 in
  Alcotest.(check bool) "classical deep flagged" false dc.Eng.deep_ok;
  (* but its CDAG-level facts still hold (3.7/3.11 are about the DAG) *)
  Alcotest.(check bool) "classical 3.7 holds" true
    (Fmm_lemmas.Dominator_lemma.all_hold dc.Eng.lemma_3_7)

let test_engine_handles_composed () =
  (* 4x4 base: HK checks skipped, sampled 3.1 used; must not raise. *)
  let r = Eng.check_algorithm S.strassen_squared in
  Alcotest.(check bool) "no HK checks for 4x4 base" true (r.Eng.hk_checks = []);
  Alcotest.(check bool) "Brent ok" true r.Eng.brent_ok

let () =
  Alcotest.run "fmm_lemmas"
    [
      ( "lemma_3_1",
        [
          Alcotest.test_case "bound values" `Quick test_matching_bound_values;
          Alcotest.test_case "fast algorithms" `Quick test_lemma_3_1_fast_algorithms;
          Alcotest.test_case "classical fails" `Quick test_lemma_3_1_fails_for_classical;
          Alcotest.test_case "sampled agrees" `Quick test_lemma_3_1_sampled_agrees;
          Alcotest.test_case "strassen^2 sampled" `Quick
            test_lemma_3_1_strassen_squared_sampled;
        ] );
      ( "lemma_3_2_3_3",
        [
          Alcotest.test_case "3.2" `Quick test_lemma_3_2;
          Alcotest.test_case "3.3" `Quick test_lemma_3_3;
          Alcotest.test_case "Hall equivalence" `Quick test_neighbor_count_equiv_matching;
        ] );
      ( "hopcroft_kerr",
        [
          Alcotest.test_case "set shapes" `Quick test_hk_forbidden_set_shapes;
          Alcotest.test_case "7-mult algorithms pass" `Quick test_hk_holds_for_7mult;
          Alcotest.test_case "strassen counts" `Quick test_hk_counts_strassen;
          Alcotest.test_case "random 6-mult search" `Quick test_hk_random_6_search_fails;
          Alcotest.test_case "strassen minus one" `Quick
            test_strassen_minus_one_unrepairable;
        ] );
      ( "grigoriev",
        [
          Alcotest.test_case "bound values" `Quick test_flow_bound_values;
          Alcotest.test_case "monotonicity" `Quick test_flow_bound_monotone;
          Alcotest.test_case "witness full" `Quick test_flow_witness_z2;
          Alcotest.test_case "witness partial" `Quick test_flow_witness_partial;
          Alcotest.test_case "lemma 3.9 dominator vs flow" `Quick
            test_lemma_3_9_dominator_vs_flow;
        ] );
      ( "lemma_3_7",
        [
          Alcotest.test_case "base case" `Quick test_dominator_bound_base_case;
          Alcotest.test_case "sampled n=4" `Quick test_dominator_bound_sampled_n4;
          Alcotest.test_case "per subproblem n=4" `Quick test_dominator_per_subproblem_n4;
        ] );
      ( "lemma_3_11",
        [
          Alcotest.test_case "no gamma" `Quick test_paths_lemma_no_gamma;
          Alcotest.test_case "with gamma" `Quick test_paths_lemma_with_gamma;
          Alcotest.test_case "bad args" `Quick test_paths_lemma_rejects_bad_args;
        ] );
      ( "lemma_3_10",
        [
          Alcotest.test_case "single copy" `Quick test_lemma_3_10_single_copy;
          Alcotest.test_case "multiple copies" `Quick test_lemma_3_10_multiple_copies;
          Alcotest.test_case "bad args" `Quick test_lemma_3_10_rejects_bad_args;
        ] );
      ( "expansion",
        [
          Alcotest.test_case "profiles dominate" `Quick test_expansion_profiles;
          Alcotest.test_case "strassen values" `Quick test_expansion_strassen_values;
          Alcotest.test_case "classical violates" `Quick test_expansion_classical_violates;
        ] );
      ( "conjugates",
        [ Alcotest.test_case "full battery" `Quick test_battery_on_conjugates ] );
      ( "engine",
        [
          Alcotest.test_case "reports" `Quick test_engine_reports;
          Alcotest.test_case "classical flagged" `Quick test_engine_flags_classical;
          Alcotest.test_case "deep" `Quick test_engine_deep;
          Alcotest.test_case "composed handled" `Quick test_engine_handles_composed;
        ] );
    ]
