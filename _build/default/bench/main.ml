(* Benchmark harness: regenerates every table and figure of the paper
   (see DESIGN.md's experiment index) and times the heavy kernels with
   bechamel. Each section prints a table whose SHAPE is comparable with
   the paper's claims; absolute constants differ (our substrate is a
   simulator, not the authors' testbed — there is none: it is a theory
   paper, and this harness is the empirical counterpart of its proofs).

   Sections:
     T1      Table I lower bounds + simulator cross-check
     F1      Figure 1: the base CDAG census (+ DOT export)
     F2      Figure 2: encoder graphs and the Lemma 3.1-3.3 battery
     F3      Figure 3 / Lemma 3.11: disjoint-path counts vs the bound
     L36     Lemma 3.6: per-segment I/O of real schedules
     L37     Lemma 3.7: exact min dominators vs |Z|/2
     TH1seq  Theorem 1.1, sequential: measured I/O vs bound over (n, M)
     TH1par  Theorem 1.1, parallel: both regimes and the crossover
     TH4     Theorem 4.1: alternative basis
     RC      recomputation: exact pebbling + rematerializing scheduler
     CO      leading coefficients 7 -> 6 -> 5
     HK      Hopcroft-Kerr checks and 6-mult search
     PERF    bechamel timings *)

module A = Fmm_bilinear.Algorithm
module S = Fmm_bilinear.Strassen
module AB = Fmm_bilinear.Alt_basis
module MQ = Fmm_matrix.Matrix.Q
module MI = Fmm_matrix.Matrix.I
module Cd = Fmm_cdag.Cdag
module Enc = Fmm_cdag.Encoder
module EL = Fmm_lemmas.Encoder_lemmas
module HK = Fmm_lemmas.Hopcroft_kerr
module DL = Fmm_lemmas.Dominator_lemma
module PL = Fmm_lemmas.Paths_lemma
module GR = Fmm_lemmas.Grigoriev
module B = Fmm_bounds.Bounds
module Ord = Fmm_machine.Orders
module Sch = Fmm_machine.Schedulers
module Tr = Fmm_machine.Trace
module Seg = Fmm_machine.Segments
module Par = Fmm_machine.Par_model
module Pb = Fmm_pebble.Pebble
module Pd = Fmm_pebble.Pebble_dags
module T = Fmm_util.Table
module C = Fmm_util.Combinat

let section name = Printf.printf "\n########## %s ##########\n\n" name

(* Cache built CDAGs/orders: several sections reuse them. *)
let cdag_cache : (string * int, Cd.t) Hashtbl.t = Hashtbl.create 8

let cdag alg n =
  match Hashtbl.find_opt cdag_cache (A.name alg, n) with
  | Some c -> c
  | None ->
    let c = Cd.build alg ~n in
    Hashtbl.replace cdag_cache (A.name alg, n) c;
    c

let order_cache : (string * int, int list) Hashtbl.t = Hashtbl.create 8

let dfs_order alg n =
  match Hashtbl.find_opt order_cache (A.name alg, n) with
  | Some o -> o
  | None ->
    let o = Ord.recursive_dfs (cdag alg n) in
    Hashtbl.replace order_cache (A.name alg, n) o;
    o

let work alg n = Fmm_machine.Workload.of_cdag (cdag alg n)

let lru_io alg n m =
  Tr.io (Sch.run_lru (work alg n) ~cache_size:m (dfs_order alg n)).Sch.counters

(* ----- T1: Table I ----- *)

let bench_table1 () =
  section "T1: Table I - known lower bounds";
  let t =
    T.create ~title:"Table I rows (n=4096, M=4096, P=49)"
      ~headers:
        [ "algorithm"; "omega0"; "memdep"; "memind"; "no-recomp"; "with-recomp" ]
      ~aligns:[ T.Left; T.Right; T.Right; T.Right; T.Left; T.Left ] ()
  in
  List.iter
    (fun row ->
      T.add_row t
        [
          row.B.algorithm;
          Printf.sprintf "%.3f" row.B.omega0;
          T.fmt_sci (row.B.memdep ~n:4096 ~m:4096 ~p:49);
          T.fmt_sci (row.B.memind ~n:4096 ~p:49);
          row.B.no_recomp_citations;
          B.recomputation_status_string row.B.with_recomp;
        ])
    B.table1_rows;
  T.add_row t
    [
      "Rectangular <2,2,3;11>, t=6";
      Printf.sprintf "%.3f" (A.omega0 (A.classical ~n:2 ~m:2 ~k:3));
      T.fmt_sci (B.rectangular ~m0:2 ~p0:3 ~q:11 ~t:6 ~m:4096 ~p:49);
      "-";
      "[22]";
      "open";
    ];
  T.add_row t
    [
      "FFT";
      "-";
      T.fmt_sci (B.fft_memdep ~n:4096 ~m:4096 ~p:49);
      T.fmt_sci (B.fft_memind ~n:4096 ~p:49);
      "[12],[5],[11]";
      "[13]";
    ];
  T.print t;

  (* simulator cross-check: measured I/O of real schedules vs the
     corresponding bound; ratio must be >= 1 and roughly flat in M
     (same exponent). *)
  let t2 =
    T.create ~title:"simulator cross-check (n=16, LRU on recursive order)"
      ~headers:[ "algorithm"; "M"; "measured I/O"; "bound"; "ratio" ]
      ~aligns:[ T.Left; T.Right; T.Right; T.Right; T.Right ] ()
  in
  List.iter
    (fun (alg, bound_fn) ->
      List.iter
        (fun m ->
          let io = lru_io alg 16 m in
          let bound = bound_fn ~m in
          T.add_row t2
            [
              A.name alg;
              string_of_int m;
              string_of_int io;
              T.fmt_float bound;
              T.fmt_ratio (float_of_int io /. bound);
            ])
        [ 16; 64; 256 ])
    [
      (S.strassen, fun ~m -> B.fast_sequential ~n:16 ~m ());
      (S.classical_2x2, fun ~m -> B.classical_memdep ~n:16 ~m ~p:1);
    ];
  T.print t2

(* ----- F1: Figure 1 ----- *)

let bench_fig1 () =
  section "F1: Figure 1 - the CDAG of Strassen's base algorithm";
  let t =
    T.create ~title:"H^{2x2} census per algorithm"
      ~headers:[ "algorithm"; "vertices"; "edges"; "inputs"; "encA"; "encB"; "mult"; "dec" ]
      ~aligns:[ T.Left; T.Right; T.Right; T.Right; T.Right; T.Right; T.Right; T.Right ]
      ()
  in
  List.iter
    (fun alg ->
      let s = Cd.stats (cdag alg 2) in
      let g k = string_of_int (List.assoc k s) in
      T.add_row t
        [ A.name alg; g "vertices"; g "edges"; g "inputs"; g "enc_a"; g "enc_b"; g "mult"; g "dec" ])
    [ S.strassen; S.winograd; AB.ks_core; S.classical_2x2 ];
  T.print t;
  let dot = Cd.to_dot (cdag S.strassen 2) in
  let oc = open_out "fig1_strassen_base_cdag.dot" in
  output_string oc dot;
  close_out oc;
  Printf.printf "Figure 1 DOT written to fig1_strassen_base_cdag.dot (%d bytes)\n"
    (String.length dot);
  (* Lemma 2.2 check across sizes *)
  let t2 =
    T.create ~title:"Lemma 2.2: |V_out(SUB_H^{rxr})| = (n/r)^{log2 7} r^2"
      ~headers:[ "n"; "r"; "measured"; "formula" ] ()
  in
  List.iter
    (fun n ->
      let l = C.log2_exact n in
      for j = 0 to l do
        let r = C.pow_int 2 j in
        T.add_row t2
          [
            string_of_int n;
            string_of_int r;
            string_of_int (List.length (Cd.sub_outputs (cdag S.strassen n) ~r));
            string_of_int (C.pow_int 7 (l - j) * r * r);
          ]
      done)
    [ 4; 8 ];
  T.print t2

(* ----- F2: Figure 2 ----- *)

let bench_fig2 () =
  section "F2: Figure 2 - encoder graphs and Lemmas 3.1-3.3";
  let dot =
    Fmm_graph.Digraph.to_dot ~name:"EncA"
      (Enc.encoder_digraph S.strassen Enc.A_side)
  in
  let oc = open_out "fig2_strassen_encoder.dot" in
  output_string oc dot;
  close_out oc;
  Printf.printf "Figure 2 DOT written to fig2_strassen_encoder.dot\n";
  let t =
    T.create ~title:"lemma battery (exhaustive over all 127 subsets Y')"
      ~headers:[ "algorithm"; "side"; "3.1"; "3.1-Hall"; "3.2"; "3.3" ]
      ~aligns:[ T.Left; T.Left; T.Left; T.Left; T.Left; T.Left ] ()
  in
  List.iter
    (fun alg ->
      List.iter
        (fun (side, side_name) ->
          let g = Enc.encoder_bipartite alg side in
          let mark r = if r.EL.holds then "ok" else "FAIL" in
          T.add_row t
            [
              A.name alg;
              side_name;
              mark (EL.check_lemma_3_1 g);
              mark (EL.check_neighbor_count_bound g);
              mark (EL.check_lemma_3_2 g);
              mark (EL.check_lemma_3_3 g);
            ])
        [ (Enc.A_side, "A"); (Enc.B_side, "B") ])
    [ S.strassen; S.winograd; S.winograd_transposed; AB.ks_core; S.classical_2x2 ];
  T.print t;
  print_endline
    "(classical <2,2,2;8> is the negative control: it is not a 7-multiplication";
  print_endline " algorithm and Lemmas 3.1/3.3 correctly fail on its encoder)";
  (* expansion profiles: the [8] route beside the Lemma 3.1 curve *)
  let te =
    T.create ~title:"small-set expansion of encoder graphs (A side)"
      ~headers:[ "algorithm"; "k=1"; "2"; "3"; "4"; "5"; "6"; "7"; "lemma 3.1 curve" ]
      ~aligns:[ T.Left; T.Right; T.Right; T.Right; T.Right; T.Right; T.Right;
                T.Right; T.Left ] ()
  in
  List.iter
    (fun alg ->
      let p = Fmm_lemmas.Expansion.profile alg Enc.A_side in
      let ms = List.map (fun (_, _, m, _) -> string_of_int m) (Fmm_lemmas.Expansion.rows p) in
      T.add_row te (A.name alg :: ms @ [ "1,2,2,3,3,4,4" ]))
    [ S.strassen; S.winograd; AB.ks_core ];
  T.print te;
  (* generality sweep: all {I,J}-conjugates of Strassen and Winograd *)
  let total = ref 0 and passed = ref 0 in
  List.iter
    (fun base ->
      List.iter
        (fun alg ->
          incr total;
          if (Fmm_lemmas.Engine.check_algorithm alg).Fmm_lemmas.Engine.all_ok then
            incr passed)
        (A.conjugates_2x2 base))
    [ S.strassen; S.winograd ];
  Printf.printf
    "generality: %d/%d de Groote conjugates pass the full battery\n" !passed !total

(* ----- F3: Figure 3 / Lemma 3.11 ----- *)

let bench_fig3 () =
  section "F3: Figure 3 / Lemma 3.11 - vertex-disjoint paths";
  let t =
    T.create
      ~title:"max disjoint paths vs bound 2r*sqrt(|Z|-2|Gamma|) (Strassen CDAGs)"
      ~headers:[ "n"; "r"; "|Z|"; "|Gamma|"; "paths"; "bound"; "holds" ]
      ()
  in
  List.iter
    (fun (n, r, zs) ->
      List.iter
        (fun (z, gamma) ->
          let s = PL.sample (cdag S.strassen n) ~r ~z_size:z ~gamma_size:gamma ~seed:(z + (3 * gamma)) in
          T.add_row t
            [
              string_of_int n;
              string_of_int r;
              string_of_int s.PL.z_size;
              string_of_int s.PL.gamma_size;
              string_of_int s.PL.disjoint_paths;
              Printf.sprintf "%.1f" s.PL.bound;
              (if s.PL.holds then "ok" else "FAIL");
            ])
        zs)
    [
      (4, 2, [ (4, 0); (8, 2); (12, 4); (16, 6) ]);
      (8, 2, [ (16, 0); (32, 8); (48, 16) ]);
      (8, 4, [ (16, 0); (32, 8) ]);
    ];
  T.print t

(* ----- L36: Lemma 3.6 segments ----- *)

let bench_lemma36 () =
  section "L36: Lemma 3.6 - per-segment I/O of real schedules";
  let t =
    T.create
      ~title:"segments of 4M' first-time SUB-output computations (Strassen)"
      ~headers:
        [ "n"; "M"; "policy"; "r"; "quota"; "full segs"; "min seg I/O"; "bound"; "holds" ]
      ~aligns:
        [ T.Right; T.Right; T.Left; T.Right; T.Right; T.Right; T.Right; T.Right; T.Left ]
      ()
  in
  let add n m policy trace analysis_m r =
    let a = Seg.analyze (cdag S.strassen n) ~cache_size:analysis_m ~r trace in
    let fulls = List.length (Seg.full_segments a) in
    let min_io =
      match Seg.min_io_full_segments a with Some x -> string_of_int x | None -> "-"
    in
    T.add_row t
      [
        string_of_int n;
        string_of_int m;
        policy;
        string_of_int r;
        string_of_int a.Seg.quota;
        string_of_int fulls;
        min_io;
        string_of_int a.Seg.bound;
        (if Seg.lemma_3_6_holds a then "ok" else "FAIL");
      ]
  in
  let lru n m = (Sch.run_lru (work S.strassen n) ~cache_size:m (dfs_order S.strassen n)).Sch.trace in
  add 8 8 "LRU" (lru 8 8) 8 8;
  add 16 8 "LRU" (lru 16 8) 8 8;
  add 16 16 "LRU" (lru 16 16) 16 16;
  add 16 64 "LRU" (lru 16 64) 16 16;
  let rem n m =
    (Sch.run_rematerialize (work S.strassen n) ~cache_size:m (dfs_order S.strassen n)).Sch.trace
  in
  add 16 48 "remat" (rem 16 48) 48 16;
  T.print t;
  print_endline "(bound = r^2/2 - M; a negative bound means the lemma is vacuous there,";
  print_endline " exactly as in the paper: it bites once r = 2 sqrt(M))"

(* ----- L37: Lemma 3.7 dominators ----- *)

let bench_lemma37 () =
  section "L37: Lemma 3.7 - exact minimum dominator sets";
  let t =
    T.create ~title:"min dominator of random Z (|Z| = r^2) in H^{nxn}"
      ~headers:[ "algorithm"; "n"; "r"; "samples"; "min |Gamma|"; "lemma bound" ]
      ~aligns:[ T.Left; T.Right; T.Right; T.Right; T.Right; T.Right ] ()
  in
  List.iter
    (fun (alg, n, r) ->
      let samples = DL.sample_min_dominators (cdag alg n) ~r ~trials:8 ~seed:7 in
      let worst = List.fold_left (fun acc s -> min acc s.DL.min_dominator) max_int samples in
      T.add_row t
        [
          A.name alg;
          string_of_int n;
          string_of_int r;
          string_of_int (List.length samples);
          string_of_int worst;
          string_of_int (r * r / 2);
        ])
    [
      (S.strassen, 4, 2); (S.strassen, 4, 4); (S.strassen, 8, 2);
      (S.strassen, 8, 4); (S.winograd, 4, 2); (S.winograd, 4, 4);
      (AB.ks_core, 4, 2); (AB.ks_core, 4, 4);
    ];
  T.print t

(* ----- TH1seq ----- *)

let bench_th1_sequential () =
  section "TH1seq: Theorem 1.1 sequential - measured I/O vs (n/sqrt M)^w M";
  let t =
    T.create ~title:"LRU + recursive order (Strassen)"
      ~headers:[ "n"; "M"; "measured"; "bound"; "ratio" ] ()
  in
  List.iter
    (fun n ->
      List.iter
        (fun m ->
          let io = lru_io S.strassen n m in
          let bound = B.fast_sequential ~n ~m () in
          T.add_row t
            [
              string_of_int n;
              string_of_int m;
              string_of_int io;
              T.fmt_float bound;
              T.fmt_ratio (float_of_int io /. bound);
            ])
        [ 16; 64; 256 ])
    [ 8; 16; 32 ];
  T.print t;
  print_endline "(ratio roughly flat across n at fixed M => measured exponent matches";
  print_endline " the bound's omega0; ratio >= 1 everywhere: no schedule beat the bound)";
  (* Table I row 4: a general (non-2x2) base case, <6,6,6;189> *)
  let t2 =
    T.create
      ~title:"general base case <6,6,6;189>, omega0 = log_6 189 = 2.924"
      ~headers:[ "n"; "M"; "measured"; "bound"; "ratio" ] ()
  in
  let g_alg = S.strassen_x_classical3 in
  let g_omega = A.omega0 g_alg in
  List.iter
    (fun n ->
      List.iter
        (fun m ->
          let io = lru_io g_alg n m in
          let bound = B.fast_memdep ~omega0:g_omega ~n ~m ~p:1 () in
          T.add_row t2
            [
              string_of_int n;
              string_of_int m;
              string_of_int io;
              T.fmt_float bound;
              T.fmt_ratio (float_of_int io /. bound);
            ])
        [ 64; 256 ])
    [ 6; 36 ];
  T.print t2;
  print_endline
    "(row 4 of Table I: bounds known only WITHOUT recomputation — extending";
  print_endline
    " them to recomputation is the open problem in the paper's Section V)"

(* ----- TH1par ----- *)

let bench_th1_parallel () =
  section "TH1par: Theorem 1.1 parallel - two regimes and the crossover";
  let n = 1 lsl 12 in
  List.iter
    (fun m ->
      let t =
        T.create
          ~title:(Printf.sprintf "n = %d, M = %d (crossover P* = %d)" n m (B.crossover_p ~n ~m ()))
          ~headers:[ "P"; "memdep"; "memind"; "max"; "caps sim"; "caps/max"; "bfs/dfs" ]
          ()
      in
      List.iter
        (fun p ->
          let md = B.fast_memdep ~n ~m ~p () in
          let mi = B.fast_memind ~n ~p () in
          let caps = Par.caps_words ~n ~p ~m in
          let bfs, dfs = Par.caps_schedule ~n ~p ~m in
          T.add_row t
            [
              string_of_int p;
              T.fmt_sci md;
              T.fmt_sci mi;
              T.fmt_sci (Float.max md mi);
              T.fmt_sci caps;
              T.fmt_ratio (caps /. Float.max md mi);
              Printf.sprintf "%d/%d" bfs dfs;
            ])
        [ 7; 49; 343; 2401; 16807 ];
      T.print t)
    [ 4096; 65536 ]

(* measured (executed) parallel communication vs the memory-independent
   bound: the word-level distributed executor on BFS partitions *)
let bench_th1_parallel_executed () =
  let module PE = Fmm_machine.Par_exec in
  let t =
    T.create
      ~title:"executed BFS-partitioned Strassen vs memind bound n^2/P^{2/w}"
      ~headers:[ "n"; "P"; "total words"; "max words/proc"; "bound"; "ratio" ]
      ()
  in
  List.iter
    (fun (n, depth) ->
      let c = cdag S.strassen n in
      let r = PE.strassen_bfs_experiment c ~depth in
      let bound = B.fast_memind ~n ~p:r.PE.procs () in
      T.add_row t
        [
          string_of_int n;
          string_of_int r.PE.procs;
          string_of_int r.PE.total_words;
          Printf.sprintf "%.0f" r.PE.max_words;
          T.fmt_float bound;
          T.fmt_ratio (r.PE.max_words /. bound);
        ])
    [ (8, 1); (16, 1); (16, 2); (32, 1); (32, 2) ];
  T.print t;
  print_endline "(ratio stable in n at fixed P: the executed communication scales";
  print_endline " with the memory-independent exponent 2/omega0 of Theorem 1.1)"

(* ----- TH4 ----- *)

let bench_th4 () =
  section "TH4: Theorem 4.1 - alternative basis (Karstadt-Schwartz)";
  let t =
    T.create ~title:"transform share and I/O bound for the KS algorithm"
      ~headers:[ "n"; "transform adds"; "bilinear adds"; "share"; "M"; "I/O"; "bound"; "ratio" ]
      ()
  in
  List.iter
    (fun n ->
      let rng = Fmm_util.Prng.create ~seed:n in
      let a = MQ.random ~rng ~rows:n ~cols:n ~range:5 in
      let b = MQ.random ~rng ~rows:n ~cols:n ~range:5 in
      let _, mul_c, tr_c = AB.Transform_q.multiply AB.ks_winograd a b in
      let m = 4 * n in
      let flat = AB.flatten AB.ks_winograd in
      let io = lru_io flat n m in
      let bound = B.fast_sequential ~n ~m () in
      T.add_row t
        [
          string_of_int n;
          string_of_int tr_c.A.Apply_q.adds;
          string_of_int mul_c.A.Apply_q.adds;
          T.fmt_ratio
            (float_of_int tr_c.A.Apply_q.adds /. float_of_int mul_c.A.Apply_q.adds);
          string_of_int m;
          string_of_int io;
          T.fmt_float bound;
          T.fmt_ratio (float_of_int io /. bound);
        ])
    [ 8; 16; 32 ];
  T.print t;
  print_endline "(share column -> 0: the premise of Theorem 4.1; ratio >= 1: the bound";
  print_endline " holds for the alternative-basis algorithm too)";
  (* the full Algorithm 1 pipeline as ONE CDAG, executed end to end:
     stage shares of actual Compute events *)
  let t3 =
    T.create ~title:"full ABMM pipeline CDAG: compute-event share per stage"
      ~headers:[ "n"; "phi"; "psi"; "core"; "nu-inv"; "transforms total" ]
      ()
  in
  List.iter
    (fun n ->
      let ab = Fmm_abmm.Abmm_cdag.build AB.ks_winograd ~n in
      let w = Fmm_abmm.Abmm_cdag.workload ab in
      let order =
        match Fmm_graph.Digraph.topo_sort ab.Fmm_abmm.Abmm_cdag.graph with
        | Some o ->
          List.filter
            (fun v -> not ab.Fmm_abmm.Abmm_cdag.is_primary_input.(v))
            o
        | None -> failwith "cycle"
      in
      let res = Sch.run_lru w ~cache_size:(8 * n) order in
      let shares = Fmm_abmm.Abmm_cdag.stage_compute_shares ab res.Sch.trace in
      let get s =
        match List.find (fun (name, _, _) -> name = s) shares with
        | _, _, f -> f
      in
      T.add_row t3
        [
          string_of_int n;
          T.fmt_ratio (get "phi");
          T.fmt_ratio (get "psi");
          T.fmt_ratio (get "core");
          T.fmt_ratio (get "nu-inv");
          T.fmt_ratio (get "phi" +. get "psi" +. get "nu-inv");
        ])
    [ 4; 8; 16 ];
  T.print t3

(* ----- RC ----- *)

let bench_recomputation () =
  section "RC: recomputation - exact pebbling and the rematerializing scheduler";
  let t =
    T.create ~title:"exact optimal red-blue pebbling I/O"
      ~headers:[ "instance"; "red"; "with recomp"; "without"; "separation" ]
      ~aligns:[ T.Left; T.Right; T.Right; T.Right; T.Left ] ()
  in
  let add name red game =
    match Pb.compare_recomputation game with
    | Some w, Some wo ->
      T.add_row t
        [
          name;
          string_of_int red;
          string_of_int w;
          string_of_int wo;
          (if w < wo then "YES" else "no");
        ]
    | _ -> T.add_row t [ name; string_of_int red; "-"; "-"; "exhausted" ]
  in
  add "Savage-style DAG" 3 (Pd.recomputation_wins ());
  add "Strassen encoder A" 3 (Pd.encoder_game S.strassen Enc.A_side ~red_limit:3);
  add "Strassen encoder A" 5 (Pd.encoder_game S.strassen Enc.A_side ~red_limit:5);
  add "Winograd encoder A" 5 (Pd.encoder_game S.winograd Enc.A_side ~red_limit:5);
  add "KS-core encoder A" 4 (Pd.encoder_game AB.ks_core Enc.A_side ~red_limit:4);
  let c2 = cdag S.strassen 2 in
  add "H^{2x2} C21 fragment" 4
    (Pd.of_cdag_outputs c2 ~outputs:[ (Cd.outputs c2).(2) ] ~red_limit:4);
  add "H^{2x2} C12 fragment" 4
    (Pd.of_cdag_outputs c2 ~outputs:[ (Cd.outputs c2).(1) ] ~red_limit:4);
  T.print t;
  let t2 =
    T.create ~title:"spilling vs rematerializing on H^{16x16} (Strassen)"
      ~headers:[ "M"; "spill I/O"; "remat I/O"; "spill flops"; "remat flops"; "bound" ]
      ()
  in
  List.iter
    (fun m ->
      let lru = Sch.run_lru (work S.strassen 16) ~cache_size:m (dfs_order S.strassen 16) in
      let rem =
        try Some (Sch.run_rematerialize (work S.strassen 16) ~cache_size:m (dfs_order S.strassen 16))
        with Failure _ -> None
      in
      let bound = B.fast_sequential ~n:16 ~m () in
      T.add_row t2
        [
          string_of_int m;
          string_of_int (Tr.io lru.Sch.counters);
          (match rem with Some r -> string_of_int (Tr.io r.Sch.counters) | None -> "-");
          string_of_int lru.Sch.counters.Tr.computes;
          (match rem with Some r -> string_of_int r.Sch.counters.Tr.computes | None -> "-");
          T.fmt_float bound;
        ])
    [ 48; 64; 128; 256 ];
  T.print t2

(* ----- CO ----- *)

let bench_coefficients () =
  section "CO: leading coefficients 7 -> 6 -> 5 (arith) and 10.5 -> 9 (I/O)";
  let t =
    T.create
      ~title:"measured total ops (adds + mults) / n^{log2 7}"
      ~headers:[ "algorithm"; "adds/step"; "closed-form c"; "n=16"; "n=32"; "n=64" ]
      ~aligns:[ T.Left; T.Right; T.Right; T.Right; T.Right; T.Right ] ()
  in
  let measured_total count n =
    let adds, mults = count n in
    float_of_int (adds + mults) /. (float_of_int n ** (log 7. /. log 2.))
  in
  let direct alg n =
    let rng = Fmm_util.Prng.create ~seed:n in
    let a = MI.random ~rng ~rows:n ~cols:n ~range:5 in
    let b = MI.random ~rng ~rows:n ~cols:n ~range:5 in
    let _, c = A.Apply_int.multiply alg a b in
    (c.A.Apply_int.adds, c.A.Apply_int.mults)
  in
  let winograd_reuse n =
    let rng = Fmm_util.Prng.create ~seed:n in
    let a = MI.random ~rng ~rows:n ~cols:n ~range:5 in
    let b = MI.random ~rng ~rows:n ~cols:n ~range:5 in
    let _, c = S.Winograd_reuse_int.multiply a b in
    (c.A.Apply_int.adds, c.A.Apply_int.mults)
  in
  let row name s count =
    T.add_row t
      [
        name;
        string_of_int s;
        Printf.sprintf "%.2f" (B.leading_coefficient_of_adds ~adds_per_step:s);
        T.fmt_ratio (measured_total count 16);
        T.fmt_ratio (measured_total count 32);
        T.fmt_ratio (measured_total count 64);
      ]
  in
  row "Strassen" (A.additions_per_step S.strassen) (direct S.strassen);
  row "Winograd (flattened)" (A.additions_per_step S.winograd) (direct S.winograd);
  row "Winograd (S/T reuse)" 15 winograd_reuse;
  row "KS core" (A.additions_per_step AB.ks_core) (direct AB.ks_core);
  T.print t;
  print_endline "(the measured column converges to c - o(1): the paper's 7 -> 6 -> 5;";
  print_endline " Winograd's 6 requires the S/T reuse schedule, the KS core reaches";
  print_endline " coefficient 5 with no reuse at all)";
  let t2 =
    T.create ~title:"I/O leading coefficients quoted in Section IV"
      ~headers:[ "algorithm"; "paper constant" ]
      ~aligns:[ T.Left; T.Right ] ()
  in
  List.iter
    (fun (name, c) -> T.add_row t2 [ name; Printf.sprintf "%.1f" c ])
    B.io_leading_coefficients;
  T.print t2

(* ----- HK ----- *)

let bench_hopcroft_kerr () =
  section "HK: Hopcroft-Kerr (Lemma 3.4 / Corollary 3.5)";
  let t =
    T.create ~title:"left operands in each forbidden set (max allowed = t - 6)"
      ~headers:
        ("algorithm" :: List.map (fun (n, _) -> n) HK.forbidden_sets @ [ "ok" ])
      ()
  in
  List.iter
    (fun alg ->
      let checks = HK.check_algorithm alg in
      T.add_row t
        (A.name alg
        :: List.map (fun c -> string_of_int c.HK.count) checks
        @ [ (if HK.all_ok checks then "ok" else "FAIL") ]))
    [ S.strassen; S.winograd; S.winograd_transposed; AB.ks_core; S.classical_2x2 ];
  T.print t;
  let trials, found = HK.random_6mult_search ~trials:20_000 ~seed:11 in
  Printf.printf
    "randomized <2,2,2;6> search: %d candidates, %s (Hopcroft-Kerr: 7 is minimal)\n"
    trials
    (if found then "FOUND - BUG!" else "none valid");
  Printf.printf "Strassen minus one product is unrepairable over Q: %b\n"
    (HK.strassen_minus_one_is_unrepairable ())


(* ----- BS: basis search (the Karstadt-Schwartz optimization) ----- *)

let bench_basis_search () =
  section "BS: basis search - rediscovering Karstadt-Schwartz sparsity";
  let module BSx = Fmm_bilinear.Basis_search in
  let t =
    T.create
      ~title:"unimodular hill-climb: nnz and adds/step of the searched core"
      ~headers:
        [ "algorithm"; "direct adds/step"; "searched"; "nnz U/V/W"; "coefficient" ]
      ~aligns:[ T.Left; T.Right; T.Right; T.Left; T.Right ] ()
  in
  List.iter
    (fun alg ->
      let r = BSx.search ~seed:1 alg in
      T.add_row t
        [
          A.name alg;
          string_of_int (A.additions_per_step alg);
          string_of_int r.BSx.additions_per_step;
          Printf.sprintf "%d/%d/%d" r.BSx.nnz_u r.BSx.nnz_v r.BSx.nnz_w;
          Printf.sprintf "%.2f"
            (B.leading_coefficient_of_adds
               ~adds_per_step:r.BSx.additions_per_step);
        ])
    [ S.strassen; S.winograd; S.winograd_transposed ];
  T.print t;
  print_endline
    "(from Winograd the search reaches 12 additions/step = coefficient 5, the";
  print_endline " Karstadt-Schwartz result, without any hand-derivation)"

(* ----- L310: Lemma 3.10 (disjoint unions) ----- *)

let bench_lemma310 () =
  section "L310: Lemma 3.10 - undominated inputs of disjoint CDAG unions";
  let module DU = Fmm_lemmas.Disjoint_union_lemma in
  let t =
    T.create
      ~title:"|I'| >= 2n sqrt(|O'| - 2|Gamma|) on q disjoint copies of H^{2x2}"
      ~headers:[ "q"; "|O'|"; "|Gamma|"; "undominated"; "bound"; "holds" ]
      ()
  in
  List.iter
    (fun (q, o, g) ->
      let u = DU.build_union S.strassen ~n:2 ~q in
      let s = DU.sample u ~o_size:o ~gamma_size:g ~seed:(q + o + g) in
      T.add_row t
        [
          string_of_int q;
          string_of_int o;
          string_of_int g;
          string_of_int s.DU.undominated_inputs;
          Printf.sprintf "%.1f" s.DU.bound;
          (if s.DU.holds then "ok" else "FAIL");
        ])
    [ (1, 4, 0); (1, 4, 1); (3, 8, 2); (5, 12, 4); (8, 24, 8) ];
  T.print t

(* ----- FFT: Table I last row ----- *)

let bench_fft () =
  section "FFT: Table I last row - butterfly CDAG, measured I/O, recomputation";
  let module Bf = Fmm_fft.Butterfly in
  let t =
    T.create ~title:"blocked FFT schedule vs n log n / log M bound"
      ~headers:[ "n"; "M"; "measured I/O"; "bound"; "ratio" ] ()
  in
  List.iter
    (fun (n, m) ->
      let bf = Bf.build ~n in
      let w = Bf.workload bf in
      let io =
        Tr.io
          (Sch.run_lru w ~cache_size:m (Bf.blocked_order bf ~block:(max 2 (m / 4)))).Sch.counters
      in
      let bound = B.fft_memdep ~n ~m ~p:1 in
      T.add_row t
        [
          string_of_int n;
          string_of_int m;
          string_of_int io;
          T.fmt_float bound;
          T.fmt_ratio (float_of_int io /. bound);
        ])
    [ (64, 8); (256, 8); (256, 32); (1024, 32); (1024, 128) ];
  T.print t;
  (* recomputation on the FFT: [13]'s result in miniature *)
  (match Pb.compare_recomputation ~max_states:1_000_000 (Bf.pebble_game ~n:4 ~red_limit:4) with
  | Some w, Some wo ->
    Printf.printf
      "FFT-4 exact pebbling: with recomputation = %d, without = %d (%s, as [13] proves)\n"
      w wo (if w = wo then "equal" else "SEPARATION?!")
  | _ -> print_endline "FFT-4 pebbling: search exhausted");
  let bf = Bf.build ~n:64 in
  let w = Bf.workload bf in
  let lru = Sch.run_lru w ~cache_size:24 (Bf.blocked_order bf ~block:8) in
  let rem = Sch.run_rematerialize w ~cache_size:24 (Bf.blocked_order bf ~block:8) in
  Printf.printf
    "FFT-64 at M=24: spill io = %d; rematerialize io = %d (computes %d vs %d)\n"
    (Tr.io lru.Sch.counters) (Tr.io rem.Sch.counters)
    lru.Sch.counters.Tr.computes rem.Sch.counters.Tr.computes

(* ----- LU: Section V conjecture - direct linear algebra ----- *)

let bench_lu () =
  section "LU: Section V conjecture - direct linear algebra";
  let module Lu = Fmm_lu.Lu_cdag in
  print_endline
    "The paper conjectures recomputation cannot reduce communication for";
  print_endline "direct linear algebra either. The LU-factorization CDAG testbed:\n";
  (* exact pebbling on the smallest instances *)
  (match
     Pb.compare_recomputation ~max_states:3_000_000 (Lu.pebble_game ~n:3 ~red_limit:4)
   with
  | Some w, Some wo ->
    Printf.printf
      "LU(3) exact optimal pebbling (R=4): with recomputation = %d, without = %d (%s)\n\n"
      w wo (if w = wo then "equal - consistent with the conjecture" else "SEPARATION?!")
  | _ -> print_endline "LU(3) pebbling: exhausted\n");
  let t =
    T.create ~title:"LU machine runs vs Omega(n^3/sqrt M)"
      ~headers:[ "n"; "M"; "spill I/O"; "remat I/O"; "bound" ] ()
  in
  List.iter
    (fun (n, m) ->
      let lu = Lu.build ~n in
      let w = Lu.workload lu in
      let order = Lu.elimination_order lu in
      let lru = Sch.run_lru w ~cache_size:m order in
      let rem =
        (* rematerializing a deep elimination DAG explodes; cap the
           budget and report "-" where it blows past it *)
        try Some (Sch.run_rematerialize ~max_flops:2_000_000 w ~cache_size:m order)
        with Failure _ -> None
      in
      T.add_row t
        [
          string_of_int n;
          string_of_int m;
          string_of_int (Tr.io lru.Sch.counters);
          (match rem with Some r -> string_of_int (Tr.io r.Sch.counters) | None -> "-");
          Printf.sprintf "%.0f" (Lu.io_lower_bound ~n ~m);
        ])
    [ (8, 16); (8, 64); (12, 64); (16, 64) ];
  T.print t;
  print_endline
    "(rematerializing LU, like rematerializing fast MM, only ever costs more)"

(* ----- WA: Section V - write-avoiding / NVM asymmetry ----- *)

let bench_write_avoiding () =
  section "WA: Section V - trading recomputation for writes (NVM asymmetry)";
  print_endline
    "The paper's closing question: in NVM, writes cost more than reads;";
  print_endline
    "Blelloch et al. [26] show recomputation can reduce writes elsewhere.";
  print_endline
    "Here: the rematerializing schedule stores only outputs — minimal writes —";
  print_endline "at the price of many extra reads and flops.\n";
  let t =
    T.create
      ~title:"reads/writes of spilling vs rematerializing (Strassen H^{16x16})"
      ~headers:
        [ "M"; "policy"; "reads"; "writes"; "cost w=1"; "cost w=10"; "cost w=100" ]
      ~aligns:[ T.Right; T.Left; T.Right; T.Right; T.Right; T.Right; T.Right ] ()
  in
  List.iter
    (fun m ->
      let add policy (res : Sch.result) =
        let c = res.Sch.counters in
        let cost w = c.Tr.loads + (w * c.Tr.stores) in
        T.add_row t
          [
            string_of_int m;
            policy;
            string_of_int c.Tr.loads;
            string_of_int c.Tr.stores;
            string_of_int (cost 1);
            string_of_int (cost 10);
            string_of_int (cost 100);
          ]
      in
      add "spill" (Sch.run_lru (work S.strassen 16) ~cache_size:m (dfs_order S.strassen 16));
      add "remat"
        (Sch.run_rematerialize (work S.strassen 16) ~cache_size:m
           (dfs_order S.strassen 16)))
    [ 64; 256 ];
  T.print t;
  print_endline
    "(remat writes = 256 outputs only. At M = 256 and write cost 100 the";
  print_endline
    " rematerializing schedule WINS on weighted cost — recomputation can pay";
  print_endline
    " off under write/read asymmetry even though it never does unweighted:";
  print_endline
    " exactly the regime of the paper's closing open question [24]-[28])"

(* ----- PERF: bechamel timings ----- *)

let bench_perf () =
  section "PERF: kernel timings (bechamel, monotonic clock)";
  (* capture everything before opening Bechamel: it exports modules
     that shadow our S/T aliases *)
  let rng = Fmm_util.Prng.create ~seed:1 in
  let a64 = MI.random ~rng ~rows:64 ~cols:64 ~range:5 in
  let b64 = MI.random ~rng ~rows:64 ~cols:64 ~range:5 in
  let strassen = S.strassen and winograd = S.winograd in
  let enc = Enc.encoder_bipartite strassen Enc.A_side in
  let w8 = work strassen 8 in
  let o8 = dfs_order strassen 8 in
  let c4 = cdag strassen 4 in
  let open Bechamel in
  let open Toolkit in
  let mk name f = Test.make ~name (Staged.stage f) in
  let tests =
    [
      mk "strassen multiply 64x64 (int)" (fun () ->
          ignore (A.Apply_int.multiply strassen a64 b64));
      mk "winograd multiply 64x64 (int)" (fun () ->
          ignore (A.Apply_int.multiply winograd a64 b64));
      mk "classical multiply 64x64 (int)" (fun () -> ignore (MI.mul a64 b64));
      mk "ks-abmm multiply 64x64 (int)" (fun () ->
          ignore (AB.Transform_int.multiply AB.ks_winograd a64 b64));
      mk "cdag build n=8" (fun () -> ignore (Cd.build strassen ~n:8));
      mk "lemma 3.1 battery (127 subsets)" (fun () ->
          ignore (EL.check_lemma_3_1 enc));
      mk "min dominator H^{4x4} (max-flow)" (fun () ->
          ignore
            (Fmm_graph.Vertex_cut.min_dominator (Cd.graph c4)
               ~sources:(Array.to_list (Cd.inputs c4))
               ~targets:(Array.to_list (Cd.outputs c4))));
      mk "lru simulation n=8 M=32" (fun () ->
          ignore (Sch.run_lru w8 ~cache_size:32 o8));
      mk "pebble savage-dag (exact, both)" (fun () ->
          ignore (Pb.compare_recomputation (Pd.recomputation_wins ())));
    ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None () in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:Measure.[| run |]
  in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg instances elt in
          let est = Analyze.one ols (Instance.monotonic_clock) raw in
          let ns =
            match Analyze.OLS.estimates est with
            | Some [ x ] -> x
            | _ -> nan
          in
          Printf.printf "  %-36s %12.0f ns/run\n" (Test.Elt.name elt) ns)
        (Test.elements test))
    tests

let () =
  let t0 = Unix.gettimeofday () in
  bench_table1 ();
  bench_fig1 ();
  bench_fig2 ();
  bench_fig3 ();
  bench_lemma36 ();
  bench_lemma37 ();
  bench_th1_sequential ();
  bench_th1_parallel ();
  bench_th1_parallel_executed ();
  bench_th4 ();
  bench_recomputation ();
  bench_coefficients ();
  bench_hopcroft_kerr ();
  bench_basis_search ();
  bench_lemma310 ();
  bench_fft ();
  bench_lu ();
  bench_write_avoiding ();
  bench_perf ();
  Printf.printf "\nall benches done in %.1f s\n" (Unix.gettimeofday () -. t0)
