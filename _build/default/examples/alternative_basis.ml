(* Alternative-basis matrix multiplication (Section IV, Karstadt-
   Schwartz [20]): run the <2,2,2;7>_{phi,psi,nu} algorithm, verify
   correctness, show the 7 -> 6 -> 5 leading-coefficient story from
   measured operation counts, and check Theorem 4.1's premise — the
   basis-transform I/O is negligible against the bilinear part.

   Run with:  dune exec examples/alternative_basis.exe *)

module A = Fmm_bilinear.Algorithm
module S = Fmm_bilinear.Strassen
module AB = Fmm_bilinear.Alt_basis
module MQ = Fmm_matrix.Matrix.Q
module Cd = Fmm_cdag.Cdag
module Ord = Fmm_machine.Orders
module Sch = Fmm_machine.Schedulers
module W = Fmm_machine.Workload
module Tr = Fmm_machine.Trace
module B = Fmm_bounds.Bounds
module C = Fmm_util.Combinat

let () =
  print_endline "=== the Karstadt-Schwartz-style algorithm ===";
  Printf.printf "   core: %s\n" (Format.asprintf "%a" A.pp AB.ks_core);
  Printf.printf "   flattened form satisfies Brent equations: %b\n\n"
    (A.verify_brent (AB.flatten AB.ks_winograd));

  print_endline "=== correctness across sizes ===";
  List.iter
    (fun n ->
      let rng = Fmm_util.Prng.create ~seed:n in
      let a = MQ.random ~rng ~rows:n ~cols:n ~range:9 in
      let b = MQ.random ~rng ~rows:n ~cols:n ~range:9 in
      let c, _, _ = AB.Transform_q.multiply AB.ks_winograd a b in
      Printf.printf "   n = %3d: ABMM(A,B) = A.B ? %b\n" n (MQ.equal c (MQ.mul a b)))
    [ 2; 4; 8; 16; 32 ];
  print_newline ();

  print_endline "=== 7 -> 6 -> 5: measured additions vs closed forms ===";
  Printf.printf "   closed form: T(n) = c n^{log2 7} - d n^2 with c = 1 + adds/3\n";
  List.iter
    (fun (name, adds) ->
      Printf.printf "   %-22s adds/step = %2d -> leading coefficient c = %.2f\n"
        name adds (B.leading_coefficient_of_adds ~adds_per_step:adds))
    [
      ("Strassen", A.additions_per_step S.strassen);
      ("Winograd (with reuse)", 15);
      ("KS core", A.additions_per_step AB.ks_core);
    ];
  let n = 64 in
  let rng = Fmm_util.Prng.create ~seed:99 in
  let a = MQ.random ~rng ~rows:n ~cols:n ~range:5 in
  let b = MQ.random ~rng ~rows:n ~cols:n ~range:5 in
  let _, str = A.Apply_q.multiply S.strassen a b in
  let _, mul_c, tr_c = AB.Transform_q.multiply AB.ks_winograd a b in
  let w = C.pow_int 7 (C.log2_exact n) in
  Printf.printf
    "   measured at n = %d: strassen adds = %d, KS bilinear adds = %d (+%d transform)\n"
    n str.A.Apply_q.adds mul_c.A.Apply_q.adds tr_c.A.Apply_q.adds;
  Printf.printf "   n^{log2 7} = %d; strassen adds/n^w = %.3f, KS adds/n^w = %.3f\n\n"
    w
    (float_of_int str.A.Apply_q.adds /. float_of_int w)
    (float_of_int mul_c.A.Apply_q.adds /. float_of_int w);

  print_endline "=== Theorem 4.1 premise: transform cost share shrinks with n ===";
  List.iter
    (fun n ->
      let rng = Fmm_util.Prng.create ~seed:n in
      let a = MQ.random ~rng ~rows:n ~cols:n ~range:5 in
      let b = MQ.random ~rng ~rows:n ~cols:n ~range:5 in
      let _, mul_c, tr_c = AB.Transform_q.multiply AB.ks_winograd a b in
      Printf.printf "   n = %3d: transform adds / bilinear adds = %.4f\n" n
        (float_of_int tr_c.A.Apply_q.adds /. float_of_int mul_c.A.Apply_q.adds))
    [ 8; 16; 32; 64 ];
  print_newline ();

  print_endline "=== Theorem 4.1: the KS core's CDAG obeys the same I/O bound ===";
  let flat = AB.flatten AB.ks_winograd in
  let cdag = Cd.build flat ~n:16 in
  let order = Ord.recursive_dfs cdag in
  List.iter
    (fun m ->
      let res = Sch.run_lru (W.of_cdag cdag) ~cache_size:m order in
      let bound = B.fast_sequential ~n:16 ~m () in
      Printf.printf "   M = %4d: measured I/O = %6d, bound = %8.1f, ratio = %.2f\n"
        m (Tr.io res.Sch.counters) bound
        (float_of_int (Tr.io res.Sch.counters) /. bound))
    [ 32; 64; 128 ]
