(* Polynomial multiplication via the number-theoretic transform — the
   workload behind Table I's FFT row. The butterfly CDAG built in
   fmm_fft is the exact dependency structure of this computation, so
   the n log n / (log M) I/O bound (and [13]'s recomputation-proof
   version of it) applies to what this example runs.

   Run with:  dune exec examples/polynomial_multiplication.exe *)

module Ntt = Fmm_fft.Ntt
module Bf = Fmm_fft.Butterfly
module F = Fmm_ring.Zp.Z65537
module Sch = Fmm_machine.Schedulers
module Tr = Fmm_machine.Trace
module B = Fmm_bounds.Bounds
module P = Fmm_util.Prng

(* multiply two polynomials of degree < d over Z_65537 *)
let poly_mul_ntt a b =
  let d = Array.length a in
  let n = 2 * d in
  let pad x = Array.init n (fun i -> if i < d then x.(i) else 0) in
  Ntt.convolve (pad a) (pad b)

let poly_mul_schoolbook a b =
  let d = Array.length a in
  let out = Array.make (2 * d) 0 in
  for i = 0 to d - 1 do
    for j = 0 to d - 1 do
      out.(i + j) <- F.add out.(i + j) (F.mul a.(i) b.(j))
    done
  done;
  out

let () =
  let d = 128 in
  let rng = P.create ~seed:271828 in
  let a = Array.init d (fun _ -> F.random rng) in
  let b = Array.init d (fun _ -> F.random rng) in

  Printf.printf "multiplying two degree-%d polynomials over Z_%d\n" (d - 1)
    Ntt.modulus;
  let via_ntt = poly_mul_ntt a b in
  let via_school = poly_mul_schoolbook a b in
  (* convolve is cyclic over length 2d; with zero padding the top
     wrap-around region is zero, so the first 2d-1 coefficients agree *)
  let agree = ref true in
  for i = 0 to (2 * d) - 2 do
    if via_ntt.(i) <> via_school.(i) then agree := false
  done;
  Printf.printf "NTT result matches schoolbook multiplication: %b\n\n" !agree;

  let n = 2 * d in
  Printf.printf "the transform's CDAG: %d-point butterfly\n" n;
  let bf = Bf.build ~n in
  Printf.printf "  vertices: %d, edges: %d, levels: %d\n\n" (Bf.n_vertices bf)
    (Fmm_graph.Digraph.n_edges bf.Bf.graph)
    bf.Bf.levels;

  print_endline "simulated I/O of one transform vs the Table I FFT bound:";
  let w = Bf.workload bf in
  List.iter
    (fun m ->
      let order = Bf.blocked_order bf ~block:(max 2 (m / 4)) in
      let res = Sch.run_lru w ~cache_size:m order in
      let bound = B.fft_memdep ~n ~m ~p:1 in
      Printf.printf "  M = %4d: measured %6d, bound %8.1f, ratio %.2f\n" m
        (Tr.io res.Sch.counters) bound
        (float_of_int (Tr.io res.Sch.counters) /. bound))
    [ 8; 16; 64 ];

  print_endline "\nrecomputation does not help here either ([13]):";
  (match
     Fmm_pebble.Pebble.compare_recomputation ~max_states:1_000_000
       (Bf.pebble_game ~n:4 ~red_limit:4)
   with
  | Some w_rc, Some wo_rc ->
    Printf.printf "  4-point butterfly optimal pebbling: with = %d, without = %d\n"
      w_rc wo_rc
  | _ -> print_endline "  (search exhausted)")
