examples/alternative_basis.mli:
