examples/lemma_tour.mli:
