examples/lemma_tour.ml: Fmm_bilinear Fmm_cdag Fmm_graph Fmm_lemmas Fmm_util List Printf
