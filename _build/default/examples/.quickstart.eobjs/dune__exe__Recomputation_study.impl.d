examples/recomputation_study.ml: Array Fmm_bilinear Fmm_bounds Fmm_cdag Fmm_machine Fmm_pebble List Printf
