examples/alternative_basis.ml: Fmm_bilinear Fmm_bounds Fmm_cdag Fmm_machine Fmm_matrix Fmm_util Format List Printf
