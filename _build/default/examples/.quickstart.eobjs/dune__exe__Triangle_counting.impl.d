examples/triangle_counting.ml: Array Fmm_bilinear Fmm_bounds Fmm_matrix Fmm_util List Printf
