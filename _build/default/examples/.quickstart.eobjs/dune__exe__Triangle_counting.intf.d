examples/triangle_counting.mli:
