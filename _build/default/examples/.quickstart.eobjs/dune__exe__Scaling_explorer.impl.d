examples/scaling_explorer.ml: Float Fmm_bounds Fmm_machine Fmm_util List Printf
