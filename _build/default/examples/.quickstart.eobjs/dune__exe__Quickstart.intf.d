examples/quickstart.mli:
