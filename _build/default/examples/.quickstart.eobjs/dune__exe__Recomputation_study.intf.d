examples/recomputation_study.mli:
