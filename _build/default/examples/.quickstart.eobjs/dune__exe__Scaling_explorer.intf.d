examples/scaling_explorer.mli:
