(* Quickstart: multiply two matrices with Strassen's algorithm over
   exact rationals, verify against the classical product, count the
   arithmetic, build the CDAG, simulate the two-level memory machine on
   it, and compare measured I/O with the Theorem 1.1 lower bound.

   Run with:  dune exec examples/quickstart.exe *)

module A = Fmm_bilinear.Algorithm
module S = Fmm_bilinear.Strassen
module MQ = Fmm_matrix.Matrix.Q
module Cd = Fmm_cdag.Cdag
module Ord = Fmm_machine.Orders
module Sch = Fmm_machine.Schedulers
module W = Fmm_machine.Workload
module Tr = Fmm_machine.Trace
module B = Fmm_bounds.Bounds

let () =
  let n = 16 in
  let rng = Fmm_util.Prng.create ~seed:2019 in
  let a = MQ.random ~rng ~rows:n ~cols:n ~range:9 in
  let b = MQ.random ~rng ~rows:n ~cols:n ~range:9 in

  Printf.printf "== 1. multiply %dx%d matrices with %s over exact rationals\n"
    n n (A.name S.strassen);
  let c_strassen, counters = A.Apply_q.multiply S.strassen a b in
  let c_classical = MQ.mul a b in
  Printf.printf "   results agree with classical multiplication: %b\n"
    (MQ.equal c_strassen c_classical);
  Printf.printf "   scalar multiplications: %d (7^log2(%d) = %d)\n"
    counters.A.Apply_q.mults n
    (Fmm_util.Combinat.pow_int 7 (Fmm_util.Combinat.log2_exact n));
  Printf.printf "   scalar additions:       %d\n\n" counters.A.Apply_q.adds;

  Printf.printf "== 2. the CDAG H^{%dx%d} of the computation\n" n n;
  let cdag = Cd.build S.strassen ~n in
  List.iter (fun (k, v) -> Printf.printf "   %-10s %d\n" k v) (Cd.stats cdag);
  print_newline ();

  Printf.printf "== 3. simulate the two-level machine (Section II-B)\n";
  let order = Ord.recursive_dfs cdag in
  List.iter
    (fun m ->
      let res = Sch.run_lru (W.of_cdag cdag) ~cache_size:m order in
      let io = Tr.io res.Sch.counters in
      let bound = B.fast_sequential ~n ~m () in
      Printf.printf
        "   M = %4d: measured I/O = %6d   Theorem 1.1 bound = %8.1f   ratio = %.2f\n"
        m io bound (float_of_int io /. bound))
    [ 16; 32; 64; 128; 256 ];
  print_newline ();

  Printf.printf "== 4. try to beat the bound with recomputation\n";
  let m = 64 in
  let lru = Sch.run_lru (W.of_cdag cdag) ~cache_size:m order in
  let rem = Sch.run_rematerialize (W.of_cdag cdag) ~cache_size:m order in
  let bound = B.fast_sequential ~n ~m () in
  Printf.printf "   M = %d, spilling schedule:        io = %6d, computes = %7d\n"
    m (Tr.io lru.Sch.counters) lru.Sch.counters.Tr.computes;
  Printf.printf "   M = %d, rematerializing schedule: io = %6d, computes = %7d (%d recomputed)\n"
    m (Tr.io rem.Sch.counters) rem.Sch.counters.Tr.computes
    rem.Sch.counters.Tr.recomputes;
  Printf.printf "   lower bound (regardless of recomputation): %.1f\n" bound;
  Printf.printf
    "   recomputation pays %d extra computations and still cannot go below the bound.\n"
    (rem.Sch.counters.Tr.computes - lru.Sch.counters.Tr.computes)
