(* Lemma tour: walk every registered 2x2-base algorithm through the
   machine-checked versions of the paper's lemmas — the encoder
   combinatorics of Lemmas 3.1-3.3 (with the matching certificates),
   the Hopcroft-Kerr forbidden-set counts (Lemma 3.4 / Corollary 3.5),
   the Grigoriev flow witness (Lemma 3.8), and the dominator bound
   (Lemma 3.7) on a concrete H^{4x4}.

   Run with:  dune exec examples/lemma_tour.exe *)

module Eng = Fmm_lemmas.Engine
module EL = Fmm_lemmas.Encoder_lemmas
module GR = Fmm_lemmas.Grigoriev
module DL = Fmm_lemmas.Dominator_lemma
module PL = Fmm_lemmas.Paths_lemma
module Enc = Fmm_cdag.Encoder
module Cd = Fmm_cdag.Cdag
module S = Fmm_bilinear.Strassen
module AB = Fmm_bilinear.Alt_basis
module A = Fmm_bilinear.Algorithm
module M = Fmm_graph.Matching

let algorithms =
  [ S.strassen; S.winograd; S.winograd_transposed; AB.ks_core; S.classical_2x2 ]

let () =
  print_endline "=== Encoder lemmas (Lemmas 3.1, 3.2, 3.3) ===";
  List.iter
    (fun alg ->
      let report = Eng.check_algorithm alg in
      print_endline (Eng.report_to_string report);
      print_newline ())
    algorithms;

  print_endline "=== Lemma 3.1 in detail: matchings per |Y'| (Strassen, A side) ===";
  let g = Enc.encoder_bipartite S.strassen Enc.A_side in
  let xs = List.init 4 (fun i -> i) in
  for k = 1 to 7 do
    let worst =
      List.fold_left
        (fun acc ys -> min acc (M.max_matching_size (M.restrict g ~xs ~ys)))
        max_int
        (Fmm_util.Combinat.subsets_of_size 7 k)
    in
    Printf.printf "   |Y'| = %d: worst-case max matching = %d, lemma requires >= %d\n"
      k worst (EL.matching_bound k)
  done;
  print_newline ();

  print_endline "=== Grigoriev flow of the 2x2 product (Lemma 3.8) over Z_2 ===";
  List.iter
    (fun (u, v) ->
      let x1 = List.init u (fun i -> i) in
      let y1 = List.init v (fun i -> i) in
      let got, needed, ok = GR.Witness_z2.check ~n:2 ~x1 ~y1 ~trials:3 ~seed:7 in
      Printf.printf
        "   u = %d free inputs, v = %d outputs: bound requires %d images, best sub-function attains %d  [%s]\n"
        u v needed got
        (if ok then "ok" else "FAIL"))
    [ (8, 4); (6, 4); (4, 4); (8, 2) ];
  print_newline ();

  print_endline "=== Lemma 3.7 on H^{4x4}: minimum dominator sets of Z subsets ===";
  let cdag = Cd.build S.strassen ~n:4 in
  List.iter
    (fun r ->
      let samples = DL.sample_min_dominators cdag ~r ~trials:5 ~seed:1 in
      List.iteri
        (fun i s ->
          Printf.printf
            "   r = %d, sample %d: |Z| = %d, min dominator = %d (lemma: >= %d)  [%s]\n"
            r i s.DL.z_size s.DL.min_dominator (s.DL.z_size / 2)
            (if s.DL.holds then "ok" else "FAIL"))
        samples)
    [ 2; 4 ];
  print_newline ();

  print_endline "=== Lemma 3.11 on H^{4x4}: vertex-disjoint path counts ===";
  List.iter
    (fun (z, gamma) ->
      let s = PL.sample cdag ~r:2 ~z_size:z ~gamma_size:gamma ~seed:(z + gamma) in
      Printf.printf
        "   |Z| = %d, |Gamma| = %d: %d disjoint paths, bound 2r*sqrt(|Z|-2|Gamma|) = %.1f  [%s]\n"
        z gamma s.PL.disjoint_paths s.PL.bound
        (if s.PL.holds then "ok" else "FAIL"))
    [ (4, 0); (8, 2); (12, 4) ];
  print_newline ();

  print_endline "=== Hopcroft-Kerr evidence: no <2,2,2;6> algorithm ===";
  let trials, found = Fmm_lemmas.Hopcroft_kerr.random_6mult_search ~trials:5000 ~seed:3 in
  Printf.printf "   %d random 6-multiplication candidates: %s\n" trials
    (if found then "FOUND one?! (bug)" else "none satisfies the Brent equations");
  Printf.printf "   Strassen with one product deleted is unrepairable: %b\n"
    (Fmm_lemmas.Hopcroft_kerr.strassen_minus_one_is_unrepairable ())
