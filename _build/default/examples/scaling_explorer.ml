(* Scaling explorer: the parallel machine model (Section II-B) and the
   two regimes of Theorem 1.1's distributed bound

       max{ (n/sqrt M)^{log2 7} M/P ,  n^2 / P^{2/log2 7} }.

   Sweeps P at fixed n for several memory sizes, printing both bounds,
   their max, the crossover P*, and the simulated CAPS-style parallel
   Strassen communication beside the classical 2D/3D baselines.

   Run with:  dune exec examples/scaling_explorer.exe *)

module B = Fmm_bounds.Bounds
module Par = Fmm_machine.Par_model
module T = Fmm_util.Table

let () =
  let n = 1 lsl 12 in
  Printf.printf "n = %d (Strassen exponent omega0 = %.4f)\n\n" n B.omega_strassen;

  List.iter
    (fun m ->
      let pstar = B.crossover_p ~n ~m () in
      Printf.printf "M = %d words per processor: crossover P* = %d\n" m pstar;
      let t =
        T.create ~title:(Printf.sprintf "bounds and simulated CAPS, M = %d" m)
          ~headers:[ "P"; "memdep"; "memind"; "max"; "caps words"; "bfs"; "dfs" ]
          ()
      in
      List.iter
        (fun p ->
          let memdep = B.fast_memdep ~n ~m ~p () in
          let memind = B.fast_memind ~n ~p () in
          let caps = Par.caps_words ~n ~p ~m in
          let bfs, dfs = Par.caps_schedule ~n ~p ~m in
          T.add_row t
            [
              string_of_int p;
              T.fmt_sci memdep;
              T.fmt_sci memind;
              T.fmt_sci (Float.max memdep memind);
              T.fmt_sci caps;
              string_of_int bfs;
              string_of_int dfs;
            ])
        [ 7; 49; 343; 2401; 16807 ];
      T.print t;
      print_newline ())
    [ 4096; 65536 ];

  print_endline "classical baselines at P = 64 (square and cubic grids):";
  let c2 = Par.cannon_2d ~n ~p:64 in
  let c3 = Par.classical_3d ~n ~p:64 in
  Printf.printf "   cannon-2d     words/proc = %.0f\n" c2.Par.words_per_proc;
  Printf.printf "   classical-3d  words/proc = %.0f\n" c3.Par.words_per_proc;
  Printf.printf "   classical memdep bound (M = 4096): %.0f\n"
    (B.classical_memdep ~n ~m:4096 ~p:64);
  Printf.printf "   classical memind bound:            %.0f\n"
    (B.classical_memind ~n ~p:64)
