(* Recomputation study: the paper's central question, explored three
   ways.

   1. Exact red-blue pebbling, with vs without recomputation, on:
      - a Savage-style DAG engineered so recomputation strictly helps
        (Section V: "recomputation can be useful for some CDAGs");
      - encoder graphs and sub-CDAGs of Strassen-family algorithms,
        where the optima coincide.
   2. Random-DAG search for more separations.
   3. At scale: the rematerializing scheduler on H^{nxn} — recomputation
      buys arithmetic, not I/O below the Theorem 1.1 bound.

   Run with:  dune exec examples/recomputation_study.exe *)

module Pb = Fmm_pebble.Pebble
module Pd = Fmm_pebble.Pebble_dags
module S = Fmm_bilinear.Strassen
module Cd = Fmm_cdag.Cdag
module Ord = Fmm_machine.Orders
module Sch = Fmm_machine.Schedulers
module W = Fmm_machine.Workload
module Tr = Fmm_machine.Trace
module B = Fmm_bounds.Bounds

let show name game =
  match Pb.compare_recomputation game with
  | Some w, Some wo ->
    Printf.printf "   %-34s with = %2d, without = %2d  %s\n" name w wo
      (if w < wo then "<- recomputation helps!" else "(no gain)")
  | _ -> Printf.printf "   %-34s search exhausted\n" name

let () =
  print_endline "=== 1. exact optimal pebbling, with vs without recomputation ===";
  show "Savage-style separation DAG" (Pd.recomputation_wins ());
  show "Strassen encoder (A side, R=3)"
    (Pd.encoder_game S.strassen Fmm_cdag.Encoder.A_side ~red_limit:3);
  show "Strassen encoder (A side, R=5)"
    (Pd.encoder_game S.strassen Fmm_cdag.Encoder.A_side ~red_limit:5);
  show "Winograd encoder (A side, R=5)"
    (Pd.encoder_game S.winograd Fmm_cdag.Encoder.A_side ~red_limit:5);
  let cdag2 = Cd.build S.strassen ~n:2 in
  show "Strassen H^{2x2} C21 fragment (R=4)"
    (Pd.of_cdag_outputs cdag2 ~outputs:[ (Cd.outputs cdag2).(2) ] ~red_limit:4);
  show "Strassen H^{2x2} C12 fragment (R=4)"
    (Pd.of_cdag_outputs cdag2 ~outputs:[ (Cd.outputs cdag2).(1) ] ~red_limit:4);
  print_newline ();

  print_endline "=== 2. random-DAG separation search (layered, width 3) ===";
  let separations = ref 0 and solved = ref 0 in
  for seed = 1 to 40 do
    let g, inputs, outputs = Pd.random_dag ~seed ~layers:3 ~width:3 ~density:0.4 in
    let game = Pb.make ~graph:g ~inputs ~outputs ~red_limit:3 in
    match Pb.compare_recomputation ~max_states:300_000 game with
    | Some w, Some wo ->
      incr solved;
      if w < wo then begin
        incr separations;
        Printf.printf "   seed %2d: with = %d < without = %d\n" seed w wo
      end
    | _ -> ()
  done;
  Printf.printf "   %d/%d random instances solved; %d separations found\n\n"
    !solved 40 !separations;

  print_endline "=== 3. at scale: rematerializing vs spilling on H^{16x16} ===";
  let cdag = Cd.build S.strassen ~n:16 in
  let order = Ord.recursive_dfs cdag in
  Printf.printf "   %-6s %-10s %-10s %-12s %-12s %s\n" "M" "spill I/O"
    "remat I/O" "spill flops" "remat flops" "bound";
  List.iter
    (fun m ->
      let lru = Sch.run_lru (W.of_cdag cdag) ~cache_size:m order in
      let rem =
        try Some (Sch.run_rematerialize (W.of_cdag cdag) ~cache_size:m order)
        with Failure _ -> None
      in
      let bound = B.fast_sequential ~n:16 ~m () in
      match rem with
      | Some rem ->
        Printf.printf "   %-6d %-10d %-10d %-12d %-12d %.0f\n" m
          (Tr.io lru.Sch.counters) (Tr.io rem.Sch.counters)
          lru.Sch.counters.Tr.computes rem.Sch.counters.Tr.computes bound
      | None ->
        Printf.printf "   %-6d %-10d (remat needs bigger cache)  bound %.0f\n" m
          (Tr.io lru.Sch.counters) bound)
    [ 48; 64; 128; 256 ];
  print_endline
    "\n   Recomputation inflates the flop count and never pushes I/O below the";
  print_endline
    "   Theorem 1.1 bound: for fast matrix multiplication, recomputation cannot";
  print_endline "   reduce communication asymptotically."
