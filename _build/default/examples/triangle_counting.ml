(* Triangle counting: the classic fast-matrix-multiplication workload.
   The number of triangles in an undirected graph G equals
   trace(A^3) / 6 for its adjacency matrix A, so triangle counting
   inherits FMM's exponent — and therefore exactly the I/O lower bounds
   this repository studies: the counting itself is a CDAG H^{n x n}
   executed twice, and no recomputation trick can reduce its
   communication (Theorem 1.1).

   Run with:  dune exec examples/triangle_counting.exe *)

module MI = Fmm_matrix.Matrix.I
module A = Fmm_bilinear.Algorithm
module S = Fmm_bilinear.Strassen
module B = Fmm_bounds.Bounds
module P = Fmm_util.Prng

(* Erdos-Renyi adjacency matrix, symmetric, zero diagonal. *)
let random_graph rng n p =
  let m = MI.zeros n n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if P.float rng < p then begin
        MI.set m i j 1;
        MI.set m j i 1
      end
    done
  done;
  m

(* Direct enumeration over vertex triples, the O(n^3) reference. *)
let count_triangles_brute m =
  let n = MI.rows m in
  let count = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if MI.get m i j = 1 then
        for k = j + 1 to n - 1 do
          if MI.get m i k = 1 && MI.get m j k = 1 then incr count
        done
    done
  done;
  !count

let () =
  let n = 64 in
  let rng = P.create ~seed:20190520 in
  let adj = random_graph rng n 0.15 in
  Printf.printf "random graph: %d vertices, %d edges\n" n
    (Array.fold_left ( + ) 0 (MI.vec_of adj) / 2);

  (* trace(A^3)/6 via Strassen *)
  let a2, c1 = A.Apply_int.multiply S.strassen adj adj in
  let a3, c2 = A.Apply_int.multiply S.strassen a2 adj in
  let triangles = MI.trace a3 / 6 in
  let brute = count_triangles_brute adj in
  Printf.printf "triangles via trace(A^3)/6 (Strassen): %d\n" triangles;
  Printf.printf "triangles via brute-force enumeration: %d  (agree: %b)\n\n"
    brute (triangles = brute);

  Printf.printf "arithmetic (two Strassen products at n = %d):\n" n;
  Printf.printf "  multiplications: %d   (2 * 7^6 = %d)\n"
    (c1.A.Apply_int.mults + c2.A.Apply_int.mults)
    (2 * Fmm_util.Combinat.pow_int 7 6);
  Printf.printf "  additions:       %d\n\n" (c1.A.Apply_int.adds + c2.A.Apply_int.adds);

  (* same computation via the Winograd reuse schedule: fewer additions *)
  let _, w1 = S.Winograd_reuse_int.multiply adj adj in
  Printf.printf "one product, additions per schedule:\n";
  Printf.printf "  Strassen direct:      %d\n" c1.A.Apply_int.adds;
  Printf.printf "  Winograd with reuse:  %d   (leading coefficient 6 vs 7)\n\n"
    w1.A.Apply_int.adds;

  print_endline "I/O lower bounds for each product (Theorem 1.1, sequential):";
  List.iter
    (fun m ->
      Printf.printf "  M = %5d: %10.0f words, recomputation notwithstanding\n" m
        (B.fast_sequential ~n ~m ()))
    [ 256; 1024; 4096 ];
  print_endline
    "\n(the bound applies to the triangle count because its inner kernel IS fast";
  print_endline " matrix multiplication — Section III's lemmas hold for its CDAG)"
