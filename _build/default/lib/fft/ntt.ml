(* Number-theoretic transform: the exact FFT over Z_p with p = 65537
   (a Fermat prime: 2^16 | p - 1, so every power-of-two length up to
   65536 has a principal root of unity). This is the semantic
   counterpart of the Butterfly DAG: the butterfly structure says which
   values flow where, the NTT computes them, and a test evaluates the
   DAG level by level to confirm the two agree. *)

module F = Fmm_ring.Zp.Z65537

let modulus = 65537

(* 3 is a primitive root mod 65537. *)
let primitive_root = 3

let rec pow_mod b e =
  if e = 0 then 1
  else begin
    let h = pow_mod b (e / 2) in
    let h2 = F.mul h h in
    if e mod 2 = 0 then h2 else F.mul h2 b
  end

(** Principal [n]-th root of unity in Z_p; [n] must be a power of two
    dividing p - 1. *)
let root_of_unity n =
  if not (Fmm_util.Combinat.is_power_of ~base:2 n) then
    invalid_arg "Ntt.root_of_unity: n must be a power of two";
  if (modulus - 1) mod n <> 0 then
    invalid_arg "Ntt.root_of_unity: n does not divide p - 1";
  pow_mod primitive_root ((modulus - 1) / n)

(** Naive O(n^2) DFT, the reference implementation. *)
let dft_naive a =
  let n = Array.length a in
  let w = root_of_unity n in
  Array.init n (fun k ->
      let acc = ref F.zero in
      for j = 0 to n - 1 do
        acc := F.add !acc (F.mul a.(j) (pow_mod w (j * k mod n)))
      done;
      !acc)

(* bit-reverse permutation, in place *)
let bit_reverse a =
  let n = Array.length a in
  let bits = Fmm_util.Combinat.log2_exact n in
  for i = 0 to n - 1 do
    let rec rev x acc k =
      if k = 0 then acc else rev (x lsr 1) ((acc lsl 1) lor (x land 1)) (k - 1)
    in
    let j = rev i 0 bits in
    if i < j then begin
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    end
  done

(** Iterative radix-2 Cooley-Tukey NTT (decimation in time), O(n log n).
    Returns a fresh array. *)
let ntt a =
  let n = Array.length a in
  if n = 0 || not (Fmm_util.Combinat.is_power_of ~base:2 n) then
    invalid_arg "Ntt.ntt: length must be a power of two";
  let out = Array.copy a in
  bit_reverse out;
  let len = ref 2 in
  while !len <= n do
    let wlen = root_of_unity !len in
    let half = !len / 2 in
    let i = ref 0 in
    while !i < n do
      let w = ref F.one in
      for j = 0 to half - 1 do
        let u = out.(!i + j) in
        let v = F.mul out.(!i + j + half) !w in
        out.(!i + j) <- F.add u v;
        out.(!i + j + half) <- F.sub u v;
        w := F.mul !w wlen
      done;
      i := !i + !len
    done;
    len := !len * 2
  done;
  out

(** Inverse NTT: intt (ntt a) = a. *)
let intt a =
  let n = Array.length a in
  let out = ntt a in
  (* inverse = conjugate trick: reverse all but first, scale by 1/n *)
  let rev = Array.copy out in
  for i = 1 to n - 1 do
    rev.(i) <- out.(n - i)
  done;
  let inv_n = F.inv (F.of_int n) in
  Array.map (fun x -> F.mul x inv_n) rev

(** Cyclic convolution via NTT; cross-checked against the O(n^2)
    definition in tests. *)
let convolve a b =
  if Array.length a <> Array.length b then
    invalid_arg "Ntt.convolve: length mismatch";
  let fa = ntt a and fb = ntt b in
  intt (Array.map2 F.mul fa fb)

let convolve_naive a b =
  let n = Array.length a in
  Array.init n (fun k ->
      let acc = ref F.zero in
      for j = 0 to n - 1 do
        acc := F.add !acc (F.mul a.(j) b.((k - j + n) mod n))
      done;
      !acc)

(** Evaluate the Butterfly DAG semantically with decimation-in-time
    twiddles: the DAG's level-(l+1) vertex at index i combines level-l
    values at i and i xor 2^l, exactly the DIT data flow on a
    bit-reversed input. [evaluate_butterfly bf a] bit-reverses [a],
    runs one pass per DAG level, and must return [ntt a] — the test
    suite checks that identity, tying the structural DAG to the real
    transform. *)
let evaluate_butterfly (bf : Butterfly.t) a =
  let n = Array.length a in
  if n <> bf.Butterfly.n then invalid_arg "Ntt.evaluate_butterfly: size mismatch";
  let cur = Array.copy a in
  bit_reverse cur;
  for l = 0 to bf.Butterfly.levels - 1 do
    let s = 1 lsl l in
    let len = 2 * s in
    let wlen = root_of_unity len in
    let next = Array.make n F.zero in
    let b = ref 0 in
    while !b < n do
      let w = ref F.one in
      for j = 0 to s - 1 do
        let u = cur.(!b + j) in
        let v = F.mul !w cur.(!b + j + s) in
        next.(!b + j) <- F.add u v;
        next.(!b + j + s) <- F.sub u v;
        w := F.mul !w wlen
      done;
      b := !b + len
    done;
    Array.blit next 0 cur 0 n
  done;
  cur
