(** The FFT butterfly CDAG: n = 2^l inputs, l levels, vertex
    (level+1, i) depends on (level, i) and (level, i xor 2^level) — the
    dependency structure behind Table I's FFT row and the
    recomputation-proof FFT bound of [13]. *)

type t = {
  graph : Fmm_graph.Digraph.t;
  n : int;
  levels : int;
  layer : int array array;  (** [layer.(l).(i)] = vertex of (level l, index i) *)
}

val build : n:int -> t
(** [n] must be a power of two, at least 2. *)

val inputs : t -> int array
val outputs : t -> int array
val n_vertices : t -> int

val workload : t -> Fmm_machine.Workload.t

val level_order : t -> int list
(** The iterative level-by-level schedule. *)

val blocked_order : t -> block:int -> int list
(** Cache-friendly schedule: [block] consecutive indices are pushed
    through log2(block) levels before moving on — the schedule that
    meets the n log n / log M bound. [block] must be a power of two. *)

val pebble_game : n:int -> red_limit:int -> Fmm_pebble.Pebble.game
(** A fresh n-point butterfly as a pebbling instance (n <= 4 for the
    exact solver's vertex cap). *)
