(* The FFT butterfly CDAG: n = 2^l inputs, l levels, vertex (level+1, i)
   depends on (level, i) and (level, i xor 2^level) — the dependency
   structure of the iterative Cooley-Tukey schedule. Table I's last row
   and the Bilardi-Scquizzato-Silvestri result [13] (recomputation does
   not help the FFT either) concern exactly this DAG; building it lets
   the same machine models, segment analyzers and pebblers that run on
   matrix-multiplication CDAGs run on the FFT. *)

type t = {
  graph : Fmm_graph.Digraph.t;
  n : int;
  levels : int;
  layer : int array array; (* layer.(l).(i) = vertex id of (level l, index i) *)
}

let build ~n =
  if n < 2 || not (Fmm_util.Combinat.is_power_of ~base:2 n) then
    invalid_arg "Butterfly.build: n must be a power of two >= 2";
  let levels = Fmm_util.Combinat.log2_exact n in
  let g = Fmm_graph.Digraph.create ~capacity:(n * (levels + 1)) () in
  let layer =
    Array.init (levels + 1) (fun _ -> Fmm_graph.Digraph.add_vertices g n)
  in
  for l = 0 to levels - 1 do
    let stride = 1 lsl l in
    for i = 0 to n - 1 do
      Fmm_graph.Digraph.add_edge g layer.(l).(i) layer.(l + 1).(i);
      Fmm_graph.Digraph.add_edge g layer.(l).(i lxor stride) layer.(l + 1).(i)
    done
  done;
  { graph = g; n; levels; layer }

let inputs t = Array.copy t.layer.(0)
let outputs t = Array.copy t.layer.(t.levels)
let n_vertices t = Fmm_graph.Digraph.n_vertices t.graph

let workload t =
  Fmm_machine.Workload.make
    ~name:(Printf.sprintf "FFT-%d" t.n)
    ~graph:t.graph ~inputs:(inputs t) ~outputs:(outputs t) ()

(** The natural level-by-level compute order (the iterative schedule). *)
let level_order t =
  List.concat_map
    (fun l -> Array.to_list t.layer.(l))
    (List.init t.levels (fun l -> l + 1))

(** Blocked order: process [block] consecutive indices through as many
    levels as they stay self-contained (log2 block levels), then move
    on — the cache-friendly FFT schedule that meets the
    n log n / log M bound. *)
let blocked_order t ~block =
  if not (Fmm_util.Combinat.is_power_of ~base:2 block) then
    invalid_arg "Butterfly.blocked_order: block must be a power of two";
  let lb = Fmm_util.Combinat.log2_exact (min block t.n) in
  let order = ref [] in
  let emit v = order := v :: !order in
  (* Process levels in super-steps of lb levels; within a super-step,
     indices sharing the same "super-block" interact only with each
     other, so we emit them block by block. *)
  let rec go level =
    if level < t.levels then begin
      let step = min lb (t.levels - level) in
      (* within levels [level+1 .. level+step], index i interacts with
         indices differing in bits [level .. level+step-1]. Group by the
         other bits. *)
      let group_of i =
        (* clear bits level..level+step-1 *)
        let mask = lnot (((1 lsl step) - 1) lsl level) in
        i land mask
      in
      let groups = Hashtbl.create 64 in
      for i = 0 to t.n - 1 do
        let key = group_of i in
        Hashtbl.replace groups key (i :: (try Hashtbl.find groups key with Not_found -> []))
      done;
      let keys = List.sort_uniq compare (Hashtbl.fold (fun k _ acc -> k :: acc) groups []) in
      List.iter
        (fun key ->
          let members = List.sort compare (Hashtbl.find groups key) in
          for dl = 1 to step do
            List.iter (fun i -> emit t.layer.(level + dl).(i)) members
          done)
        keys;
      go (level + step)
    end
  in
  go 0;
  List.rev !order

(** A small pebbling instance of the first [levels] levels on [n]
    points (the full DAG exceeds the exact solver above n = 4). *)
let pebble_game ~n ~red_limit =
  let t = build ~n in
  Fmm_pebble.Pebble.make ~graph:t.graph
    ~inputs:(Array.to_list (inputs t))
    ~outputs:(Array.to_list (outputs t))
    ~red_limit
