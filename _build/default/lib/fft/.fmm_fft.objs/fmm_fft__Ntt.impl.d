lib/fft/ntt.ml: Array Butterfly Fmm_ring Fmm_util
