lib/fft/ntt.mli: Butterfly
