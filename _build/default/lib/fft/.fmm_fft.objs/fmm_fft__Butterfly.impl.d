lib/fft/butterfly.ml: Array Fmm_graph Fmm_machine Fmm_pebble Fmm_util Hashtbl List Printf
