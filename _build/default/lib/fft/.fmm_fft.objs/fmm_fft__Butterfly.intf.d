lib/fft/butterfly.mli: Fmm_graph Fmm_machine Fmm_pebble
