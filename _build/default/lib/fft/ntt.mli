(** Number-theoretic transform over Z_65537 (a Fermat prime, so every
    power-of-two length up to 65536 has a principal root of unity) —
    the semantic counterpart of {!Butterfly}: the DAG says which values
    flow where, the NTT computes them, and
    {!evaluate_butterfly} ties the two together. *)

val modulus : int
val primitive_root : int

val pow_mod : int -> int -> int
(** Exponentiation in Z_65537. *)

val root_of_unity : int -> int
(** Principal n-th root of unity; [n] a power of two dividing p - 1. *)

val dft_naive : int array -> int array
(** O(n^2) reference DFT. *)

val bit_reverse : int array -> unit
(** In-place bit-reversal permutation (length a power of two). *)

val ntt : int array -> int array
(** Iterative radix-2 Cooley-Tukey, O(n log n); equals {!dft_naive}. *)

val intt : int array -> int array
(** Inverse: [intt (ntt a) = a]. *)

val convolve : int array -> int array -> int array
(** Cyclic convolution via NTT. *)

val convolve_naive : int array -> int array -> int array

val evaluate_butterfly : Butterfly.t -> int array -> int array
(** Evaluate the butterfly DAG with decimation-in-time twiddles on a
    bit-reversed copy of the input; returns exactly [ntt a] — the
    structural DAG computes the real transform. *)
