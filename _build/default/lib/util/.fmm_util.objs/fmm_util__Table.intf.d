lib/util/table.mli:
