lib/util/prng.mli:
