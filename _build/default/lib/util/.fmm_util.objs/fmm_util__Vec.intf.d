lib/util/vec.mli:
