lib/util/combinat.mli:
