(** Minimal growable array (OCaml 5.1 predates the stdlib [Dynarray]).
    The CDAG builder appends one metadata record per vertex in id order;
    [get]/[set] then serve random access during analysis. *)

type 'a t

val create : dummy:'a -> 'a t
(** [dummy] fills unused capacity; it is never observable. *)

val length : 'a t -> int
val push : 'a t -> 'a -> unit
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val to_array : 'a t -> 'a array
val iteri : (int -> 'a -> unit) -> 'a t -> unit
