(* Minimal growable array (OCaml 5.1 predates stdlib Dynarray). The
   CDAG builder appends one metadata record per vertex in id order;
   [get]/[set] then serve random access during analysis. *)

type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ~dummy = { data = Array.make 8 dummy; len = 0; dummy }

let length t = t.len

let push t x =
  if t.len = Array.length t.data then begin
    let bigger = Array.make (2 * t.len) t.dummy in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: index out of bounds";
  t.data.(i)

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Vec.set: index out of bounds";
  t.data.(i) <- x

let to_array t = Array.sub t.data 0 t.len

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done
