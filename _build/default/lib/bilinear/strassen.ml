(* The concrete 2x2-base fast matrix multiplication algorithms the
   paper's theorems cover. vec order is row-major: (X11, X12, X21, X22).

   Every definition here is validated by [Algorithm.verify_brent] in the
   test suite; the tables below are data, not derivations. *)

(** Strassen's original algorithm (Algorithm 2 of the paper). *)
let strassen =
  Algorithm.make ~name:"Strassen" ~n:2 ~m:2 ~k:2
    ~u:
      [|
        [| 1; 0; 0; 1 |] (* M1: A11 + A22 *);
        [| 0; 0; 1; 1 |] (* M2: A21 + A22 *);
        [| 1; 0; 0; 0 |] (* M3: A11 *);
        [| 0; 0; 0; 1 |] (* M4: A22 *);
        [| 1; 1; 0; 0 |] (* M5: A11 + A12 *);
        [| -1; 0; 1; 0 |] (* M6: A21 - A11 *);
        [| 0; 1; 0; -1 |] (* M7: A12 - A22 *);
      |]
    ~v:
      [|
        [| 1; 0; 0; 1 |] (* B11 + B22 *);
        [| 1; 0; 0; 0 |] (* B11 *);
        [| 0; 1; 0; -1 |] (* B12 - B22 *);
        [| -1; 0; 1; 0 |] (* B21 - B11 *);
        [| 0; 0; 0; 1 |] (* B22 *);
        [| 1; 1; 0; 0 |] (* B11 + B12 *);
        [| 0; 0; 1; 1 |] (* B21 + B22 *);
      |]
    ~w:
      [|
        [| 1; 0; 0; 1; -1; 0; 1 |] (* C11 = M1 + M4 - M5 + M7 *);
        [| 0; 0; 1; 0; 1; 0; 0 |] (* C12 = M3 + M5 *);
        [| 0; 1; 0; 1; 0; 0; 0 |] (* C21 = M2 + M4 *);
        [| 1; -1; 1; 0; 0; 1; 0 |] (* C22 = M1 - M2 + M3 + M6 *);
      |]

(** Winograd's variant [19]: still 7 multiplications, arithmetic leading
    coefficient 6 instead of 7 thanks to operand reuse (the S/T chains).
    The U/V/W matrices below are the flattened operands; the
    implementation of the recursive schedule exploits the S/T reuse, the
    matrices record the final linear forms. *)
let winograd =
  Algorithm.make ~name:"Winograd" ~n:2 ~m:2 ~k:2
    ~u:
      [|
        [| 1; 0; 0; 0 |] (* M1: A11 *);
        [| 0; 1; 0; 0 |] (* M2: A12 *);
        [| 1; 1; -1; -1 |] (* M3: S4 = A11 + A12 - A21 - A22 *);
        [| 0; 0; 0; 1 |] (* M4: A22 *);
        [| 0; 0; 1; 1 |] (* M5: S1 = A21 + A22 *);
        [| -1; 0; 1; 1 |] (* M6: S2 = A21 + A22 - A11 *);
        [| 1; 0; -1; 0 |] (* M7: S3 = A11 - A21 *);
      |]
    ~v:
      [|
        [| 1; 0; 0; 0 |] (* B11 *);
        [| 0; 0; 1; 0 |] (* B21 *);
        [| 0; 0; 0; 1 |] (* B22 *);
        [| 1; -1; -1; 1 |] (* T4 = B11 - B12 - B21 + B22 *);
        [| -1; 1; 0; 0 |] (* T1 = B12 - B11 *);
        [| 1; -1; 0; 1 |] (* T2 = B11 - B12 + B22 *);
        [| 0; -1; 0; 1 |] (* T3 = B22 - B12 *);
      |]
    ~w:
      [|
        [| 1; 1; 0; 0; 0; 0; 0 |] (* C11 = M1 + M2 *);
        [| 1; 0; 1; 0; 1; 1; 0 |] (* C12 = M1 + M3 + M5 + M6 *);
        [| 1; 0; 0; -1; 0; 1; 1 |] (* C21 = M1 - M4 + M6 + M7 *);
        [| 1; 0; 0; 0; 1; 1; 1 |] (* C22 = M1 + M5 + M6 + M7 *);
      |]

(** The classical 2x2 algorithm with 8 multiplications, for baseline
    comparisons (the paper's footnote 1: no recomputation is ever
    useful for it since intermediates are used once). *)
let classical_2x2 = Algorithm.classical ~n:2 ~m:2 ~k:2

(** Strassen composed with itself: a <4,4,4;49> algorithm. Exercises the
    compose machinery and the "general base case" row of Table I. *)
let strassen_squared = Algorithm.compose strassen strassen

(** Winograd with the transpose symmetry applied: a distinct 7-mult
    2x2-base algorithm, useful to show the lemma engine does not depend
    on Strassen's particular case analysis. *)
let winograd_transposed = Algorithm.transpose_alg winograd

let all_2x2_fast = [ strassen; winograd; winograd_transposed ]

(** Winograd's algorithm with the textbook operand-reuse schedule: the
    S/T chains share intermediates (S2 = S1 - A11, T2 = B22 - T1, ...)
    and the U chain shares M1 + M6, so one recursion step costs exactly
    15 block additions (4 + 4 + 7) — the schedule behind the arithmetic
    leading coefficient 6 quoted in the paper's introduction (versus 18
    for Strassen = coefficient 7, and 12 for Karstadt-Schwartz =
    coefficient 5). The generic [Algorithm.Apply] evaluator cannot see
    the reuse (it evaluates each linear form independently), so this
    schedule is spelled out. *)
module Winograd_reuse (R : Fmm_ring.Sig_ring.S) = struct
  module App = Algorithm.Apply (R)
  module M = Fmm_matrix.Matrix.Make (R)

  let multiply ?(cutoff = 1) a b =
    let counters = App.fresh_counters () in
    let badd x y =
      counters.App.adds <- counters.App.adds + (M.rows x * M.cols x);
      M.add x y
    in
    let bsub x y =
      counters.App.adds <- counters.App.adds + (M.rows x * M.cols x);
      M.sub x y
    in
    let rec go a b =
      let n = M.rows a in
      if n <= cutoff || n mod 2 <> 0 || M.cols a <> n || M.cols b <> n then
        App.classical_mul counters a b
      else begin
        let ab = M.split ~gr:2 ~gc:2 a and bb = M.split ~gr:2 ~gc:2 b in
        let a11 = ab.(0).(0) and a12 = ab.(0).(1) and a21 = ab.(1).(0) and a22 = ab.(1).(1) in
        let b11 = bb.(0).(0) and b12 = bb.(0).(1) and b21 = bb.(1).(0) and b22 = bb.(1).(1) in
        let s1 = badd a21 a22 in
        let s2 = bsub s1 a11 in
        let s3 = bsub a11 a21 in
        let s4 = bsub a12 s2 in
        let t1 = bsub b12 b11 in
        let t2 = bsub b22 t1 in
        let t3 = bsub b22 b12 in
        let t4 = bsub t2 b21 in
        let m1 = go a11 b11 in
        let m2 = go a12 b21 in
        let m3 = go s4 b22 in
        let m4 = go a22 t4 in
        let m5 = go s1 t1 in
        let m6 = go s2 t2 in
        let m7 = go s3 t3 in
        let u2 = badd m1 m6 in
        let u3 = badd u2 m7 in
        let u4 = badd u2 m5 in
        let c11 = badd m1 m2 in
        let c12 = badd u4 m3 in
        let c21 = bsub u3 m4 in
        let c22 = badd u3 m5 in
        M.join [| [| c11; c12 |]; [| c21; c22 |] |]
      end
    in
    let c = go a b in
    (c, counters)
end

module Winograd_reuse_int = Winograd_reuse (Fmm_ring.Sig_ring.Int)
module Winograd_reuse_q = Winograd_reuse (Fmm_ring.Rat.Field)

(** A "general base case" algorithm for Table I's fourth row:
    Strassen composed with the classical 3x3 algorithm gives a
    <6,6,6;189> base with omega0 = log_6 189 ~ 2.924 — a fast (but not
    2x2-base) algorithm, outside the scope of the recomputation-proof
    theorem and inside the scope of the no-recomputation bounds
    [8]-[10]. *)
let strassen_x_classical3 =
  Algorithm.compose strassen (Algorithm.classical ~n:3 ~m:3 ~k:3)

(* strassen_x_classical3 is deliberately NOT in the registry: its exact
   Brent verification costs ~1.7e9 integer operations, too heavy for
   the default battery; the tests validate it by random multiplication
   over Z_p instead. *)
let registry =
  [
    strassen;
    winograd;
    winograd_transposed;
    classical_2x2;
    strassen_squared;
    Algorithm.classical ~n:2 ~m:2 ~k:3;
    Algorithm.classical ~n:3 ~m:3 ~k:3;
  ]

let find name =
  List.find_opt (fun a -> Algorithm.name a = name) registry
