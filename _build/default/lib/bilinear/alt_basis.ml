(* Alternative-basis matrix multiplication (Definition 2.7, Algorithm 1
   of the paper; Karstadt-Schwartz [20]). An alternative-basis algorithm
   is a recursive-bilinear <n,m,k;t>_{phi,psi,nu} core together with
   three basis automorphisms:

     ABMM(A, B) = nu^-1 (CORE (phi A) (psi B))

   where phi/psi/nu act recursively (Kronecker powers of a fixed base
   linear map), so the transforms cost Theta(n^2 log n) — negligible
   against the Theta(n^omega0) multiplication, which is exactly the
   premise of Theorem 4.1.

   The instance [ks_winograd] below is a Karstadt-Schwartz-style
   sparsification of Winograd's algorithm derived by choosing bases that
   absorb the S/T operand chains: the bilinear core performs only 12
   additions per step (vs Winograd's 15), giving the arithmetic leading
   coefficient 5 claimed in the paper's introduction. The exact bases
   differ from the published KS ones but achieve the same counts, which
   is what the reproduction tracks. *)

type t = {
  name : string;
  core : Algorithm.t;
  phi : int array array; (* (n*m) x (n*m): x = phi . vec(A) *)
  psi : int array array; (* (m*k) x (m*k): y = psi . vec(B) *)
  nu : int array array; (* (n*k) x (n*k): z = nu . vec(C) *)
  nu_inv : int array array; (* integer inverse of nu *)
}

let name t = t.name
let core t = t.core
let phi t = Array.map Array.copy t.phi
let psi t = Array.map Array.copy t.psi
let nu t = Array.map Array.copy t.nu
let nu_inv t = Array.map Array.copy t.nu_inv

let int_matrix_to_q rows =
  Fmm_matrix.Matrix.Q.init (Array.length rows)
    (Array.length rows.(0))
    (fun i j -> Fmm_ring.Rat.of_int rows.(i).(j))

(** Exact integer inverse of a unimodular integer matrix; raises
    [Failure] if the matrix is singular or the inverse is not integral
    (then it is not an automorphism usable for fast transforms). *)
let integer_inverse rows =
  let q = int_matrix_to_q rows in
  let inv = Fmm_matrix.Linalg.Q.inverse q in
  let n = Fmm_matrix.Matrix.Q.rows inv and m = Fmm_matrix.Matrix.Q.cols inv in
  Array.init n (fun i ->
      Array.init m (fun j ->
          let x = Fmm_matrix.Matrix.Q.get inv i j in
          if not (Fmm_ring.Rat.is_integer x) then
            failwith "Alt_basis: inverse is not integral";
          Fmm_ring.Bigint.to_int_exn (Fmm_ring.Rat.num x)))

let make ~name ~core ~phi ~psi ~nu =
  let n, m, k = Algorithm.dims core in
  let check label rows dim =
    if Array.length rows <> dim || Array.exists (fun r -> Array.length r <> dim) rows
    then invalid_arg (Printf.sprintf "Alt_basis.make: %s must be %dx%d" label dim dim)
  in
  check "phi" phi (n * m);
  check "psi" psi (m * k);
  check "nu" nu (n * k);
  let nu_inv = integer_inverse nu in
  { name; core; phi; psi; nu; nu_inv }

(* Integer matrix product, used to flatten the composite algorithm. *)
let mat_mul a b =
  let n = Array.length a and m = Array.length b.(0) in
  let inner = Array.length b in
  Array.init n (fun i ->
      Array.init m (fun j ->
          let acc = ref 0 in
          for l = 0 to inner - 1 do
            acc := !acc + (a.(i).(l) * b.(l).(j))
          done;
          !acc))

(** Flatten into an equivalent standard-basis bilinear algorithm:
    U = U_core . phi, V = V_core . psi, W = nu^-1 . W_core.
    The result must satisfy the Brent equations — that is the
    correctness statement for the alternative-basis algorithm, and the
    test suite checks it. *)
let flatten t =
  let n, m, k = Algorithm.dims t.core in
  let u = mat_mul (Algorithm.u_matrix t.core) t.phi in
  let v = mat_mul (Algorithm.v_matrix t.core) t.psi in
  let w = mat_mul t.nu_inv (Algorithm.w_matrix t.core) in
  Algorithm.make ~name:(t.name ^ " (flattened)") ~n ~m ~k ~u ~v ~w

(* --- recursive fast basis transforms --- *)

module Transform (R : Fmm_ring.Sig_ring.S) = struct
  module M = Fmm_matrix.Matrix.Make (R)
  module App = Algorithm.Apply (R)

  (** Apply the Kronecker-power transform of the base map [base]
      (acting on the gr x gc block grid, row-major) to matrix [mat],
      recursing while the dimensions divide. Counts additions into
      [counters]. *)
  let rec apply counters ~base ~gr ~gc mat =
    let rows = M.rows mat and cols = M.cols mat in
    if rows mod gr <> 0 || cols mod gc <> 0 || rows < gr || cols < gc
       || (rows = 1 && cols = 1)
    then mat
    else begin
      let blocks = M.split ~gr ~gc mat in
      let flat =
        Array.init (gr * gc) (fun idx -> blocks.(idx / gc).(idx mod gc))
      in
      let transformed_children =
        Array.map (fun b -> apply counters ~base ~gr ~gc b) flat
      in
      let out_flat =
        Array.init (gr * gc) (fun idx ->
            App.combine counters base.(idx) transformed_children)
      in
      M.join
        (Array.init gr (fun i -> Array.init gc (fun j -> out_flat.((i * gc) + j))))
    end

  (** Full ABMM multiply (Algorithm 1): transform, run the core
      recursively, untransform. Returns result and counters covering
      the whole pipeline, plus the counters of just the transform
      stages (for the Theorem 4.1 negligibility experiment). *)
  let multiply ?(cutoff = 1) t a b =
    let n, m, k = Algorithm.dims t.core in
    let transform_counters = App.fresh_counters () in
    let a' = apply transform_counters ~base:t.phi ~gr:n ~gc:m a in
    let b' = apply transform_counters ~base:t.psi ~gr:m ~gc:k b in
    let c', mul_counters = App.multiply ~cutoff t.core a' b' in
    let c = apply transform_counters ~base:t.nu_inv ~gr:n ~gc:k c' in
    (c, mul_counters, transform_counters)
end

module Transform_q = Transform (Fmm_ring.Rat.Field)
module Transform_int = Transform (Fmm_ring.Sig_ring.Int)

(* --- the Karstadt-Schwartz-style instance --- *)

(* Bases chosen to absorb Winograd's operand chains:
   x = phi(vec A):  x1 = A11, x2 = A12, x3 = A21+A22-A11, x4 = A11-A21
   y = psi(vec B):  y1 = B11, y2 = B21, y3 = B11-B12+B22, y4 = B12-B11
   z = nu(vec C):   z1 = C11, z2 = C12-C22, z3 = C22-C21, z4 = C22 *)
let ks_phi = [| [| 1; 0; 0; 0 |]; [| 0; 1; 0; 0 |]; [| -1; 0; 1; 1 |]; [| 1; 0; -1; 0 |] |]
let ks_psi = [| [| 1; 0; 0; 0 |]; [| 0; 0; 1; 0 |]; [| 1; -1; 0; 1 |]; [| -1; 1; 0; 0 |] |]
let ks_nu = [| [| 1; 0; 0; 0 |]; [| 0; 1; 0; -1 |]; [| 0; 0; -1; 1 |]; [| 0; 0; 0; 1 |] |]

(* The bilinear core in the new bases: 7 multiplications, 12 additions
   per step (nnz 10/10/10). Operands in x/y coordinates:
     M1 = x1*y1   M2 = x2*y2          M3 = (x2-x3)*(y3+y4)
     M4 = (x3+x4)*(y3-y2)             M5 = (x1+x3)*y4
     M6 = x3*y3   M7 = x4*(y3-y1)
   Outputs: z1 = M1+M2, z2 = M3-M7, z3 = M4+M5, z4 = M1+M5+M6+M7. *)
let ks_core =
  Algorithm.make ~name:"KS-Winograd core" ~n:2 ~m:2 ~k:2
    ~u:
      [|
        [| 1; 0; 0; 0 |];
        [| 0; 1; 0; 0 |];
        [| 0; 1; -1; 0 |];
        [| 0; 0; 1; 1 |];
        [| 1; 0; 1; 0 |];
        [| 0; 0; 1; 0 |];
        [| 0; 0; 0; 1 |];
      |]
    ~v:
      [|
        [| 1; 0; 0; 0 |];
        [| 0; 1; 0; 0 |];
        [| 0; 0; 1; 1 |];
        [| 0; -1; 1; 0 |];
        [| 0; 0; 0; 1 |];
        [| 0; 0; 1; 0 |];
        [| -1; 0; 1; 0 |];
      |]
    ~w:
      [|
        [| 1; 1; 0; 0; 0; 0; 0 |];
        [| 0; 0; 1; 0; 0; 0; -1 |];
        [| 0; 0; 0; 1; 1; 0; 0 |];
        [| 1; 0; 0; 0; 1; 1; 1 |];
      |]

let ks_winograd =
  make ~name:"Karstadt-Schwartz (Winograd basis)" ~core:ks_core ~phi:ks_phi
    ~psi:ks_psi ~nu:ks_nu

let registry = [ ks_winograd ]
