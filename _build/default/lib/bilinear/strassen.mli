(** The concrete 2x2-base fast matrix multiplication algorithms the
    paper's theorems cover (vec order row-major: X11, X12, X21, X22).
    Every definition is validated by {!Algorithm.verify_brent} in the
    test suite. *)

val strassen : Algorithm.t
(** Strassen's original algorithm (the paper's Algorithm 2). *)

val winograd : Algorithm.t
(** Winograd's 7-multiplication variant [19]; the flattened linear
    forms of its operand chains. *)

val classical_2x2 : Algorithm.t
(** <2,2,2;8>, the baseline and the lemma battery's negative control. *)

val strassen_squared : Algorithm.t
(** Strassen composed with itself: <4,4,4;49>. *)

val winograd_transposed : Algorithm.t
(** Winograd under the transpose symmetry — a distinct 7-mult 2x2-base
    algorithm for the generality checks. *)

val all_2x2_fast : Algorithm.t list

val strassen_x_classical3 : Algorithm.t
(** Strassen (x) classical-3x3: a <6,6,6;189> general base case
    (omega0 = log_6 189), Table I's fourth row. *)

(** Winograd with the textbook operand-reuse schedule (S/T chains
    shared): exactly 15 block additions per step, the schedule behind
    the arithmetic leading coefficient 6 (vs 18/coefficient-7 for
    Strassen and 12/coefficient-5 for Karstadt-Schwartz). *)
module Winograd_reuse (R : Fmm_ring.Sig_ring.S) : sig
  module App : module type of Algorithm.Apply (R)
  module M : module type of Fmm_matrix.Matrix.Make (R)

  val multiply : ?cutoff:int -> M.t -> M.t -> M.t * App.counters
end

module Winograd_reuse_int : module type of Winograd_reuse (Fmm_ring.Sig_ring.Int)
module Winograd_reuse_q : module type of Winograd_reuse (Fmm_ring.Rat.Field)

val registry : Algorithm.t list
(** Every algorithm the CLI and lemma engine know about. *)

val find : string -> Algorithm.t option
