lib/bilinear/basis_search.ml: Algorithm Alt_basis Array Fmm_util
