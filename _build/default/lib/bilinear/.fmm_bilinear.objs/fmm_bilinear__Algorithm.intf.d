lib/bilinear/algorithm.mli: Fmm_matrix Fmm_ring Format
