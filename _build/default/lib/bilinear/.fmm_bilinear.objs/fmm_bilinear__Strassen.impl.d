lib/bilinear/strassen.ml: Algorithm Array Fmm_matrix Fmm_ring List
