lib/bilinear/basis_search.mli: Algorithm Alt_basis
