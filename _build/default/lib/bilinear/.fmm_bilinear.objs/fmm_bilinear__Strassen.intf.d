lib/bilinear/strassen.mli: Algorithm Fmm_matrix Fmm_ring
