lib/bilinear/alt_basis.ml: Algorithm Array Fmm_matrix Fmm_ring Printf
