lib/bilinear/algorithm.ml: Array Fmm_matrix Fmm_ring Format List Printf
