lib/bilinear/alt_basis.mli: Algorithm Fmm_matrix Fmm_ring
