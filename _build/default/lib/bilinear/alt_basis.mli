(** Alternative-basis matrix multiplication (Definition 2.7 /
    Algorithm 1 of the paper; Karstadt-Schwartz [20]): a bilinear core
    together with basis automorphisms phi, psi, nu acting as Kronecker
    powers, so ABMM(A, B) = nu^-1 (CORE (phi A) (psi B)). The transform
    cost is Theta(n^2 log n) — negligible against Theta(n^{omega0}),
    the premise of Theorem 4.1. *)

type t

val make :
  name:string ->
  core:Algorithm.t ->
  phi:int array array ->
  psi:int array array ->
  nu:int array array ->
  t
(** Validates shapes and that [nu] has an integer inverse (raises
    [Failure] otherwise — it must be an automorphism usable for fast
    transforms). *)

val name : t -> string
val core : t -> Algorithm.t
val phi : t -> int array array
val psi : t -> int array array
val nu : t -> int array array
val nu_inv : t -> int array array

val mat_mul : int array array -> int array array -> int array array
(** Integer matrix product (exposed for tests). *)

val integer_inverse : int array array -> int array array
(** Exact integer inverse of a unimodular matrix; raises [Failure] if
    singular or non-integral. *)

val flatten : t -> Algorithm.t
(** The equivalent standard-basis algorithm U = U_core phi,
    V = V_core psi, W = nu^-1 W_core — it must satisfy the Brent
    equations, which is the correctness statement for the
    alternative-basis algorithm. *)

(** Recursive fast basis transforms and the full ABMM multiply. *)
module Transform (R : Fmm_ring.Sig_ring.S) : sig
  module M : module type of Fmm_matrix.Matrix.Make (R)
  module App : module type of Algorithm.Apply (R)

  val apply :
    App.counters -> base:int array array -> gr:int -> gc:int -> M.t -> M.t
  (** The Kronecker-power transform of [base], applied recursively. *)

  val multiply :
    ?cutoff:int -> t -> M.t -> M.t -> M.t * App.counters * App.counters
  (** Algorithm 1 end to end; returns (result, bilinear-stage counters,
      transform-stage counters). *)
end

module Transform_q : module type of Transform (Fmm_ring.Rat.Field)
module Transform_int : module type of Transform (Fmm_ring.Sig_ring.Int)

val ks_phi : int array array
val ks_psi : int array array
val ks_nu : int array array

val ks_core : Algorithm.t
(** The bilinear core in the alternative bases: 7 multiplications and
    only 12 additions per step — the count behind the arithmetic
    leading coefficient 5. *)

val ks_winograd : t
(** The Karstadt-Schwartz-style instance: our own derivation of bases
    absorbing Winograd's operand chains, achieving the same 12-addition
    structure as the published algorithm (see DESIGN.md). *)

val registry : t list
