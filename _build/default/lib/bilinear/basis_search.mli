(** Alternative-basis search — the optimization behind Karstadt-
    Schwartz [20]: find unimodular bases phi, psi, nu minimizing
    nnz(U phi^-1) + nnz(V psi^-1) + nnz(nu W), i.e. the bilinear core's
    additions per step, by randomized hill-climbing over elementary
    unimodular moves. On Winograd's algorithm the search reliably
    rediscovers 12-additions-per-step cores (arithmetic leading
    coefficient 5), matching both the hand-derived
    {!Alt_basis.ks_winograd} and the published count. *)

val nnz : int array array -> int

type search_result = {
  alt : Alt_basis.t;  (** flattens back to exactly the input algorithm *)
  nnz_u : int;
  nnz_v : int;
  nnz_w : int;
  additions_per_step : int;
}

val search :
  ?restarts:int -> ?steps:int -> seed:int -> Algorithm.t -> search_result
(** Deterministic given [seed]. 2x2 bases only. *)
