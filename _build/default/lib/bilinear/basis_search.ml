(* Alternative-basis search: the optimization behind Karstadt-Schwartz
   [20]. Given a 2x2-base algorithm (U, V, W), find unimodular integer
   bases phi, psi, nu minimizing the bilinear core's sparsity

       nnz(U phi^-1) + nnz(V psi^-1) + nnz(nu W),

   which (rows being fixed in number) minimizes the additions per
   recursion step and hence the arithmetic leading coefficient. The
   three sub-problems are independent; each is attacked by randomized
   hill-climbing over unimodular matrices: the search state is the
   matrix G = phi^-1 (resp. psi^-1, nu) itself, and the moves are the
   elementary unimodular operations

       col_j <- col_j +- col_i   (for the right-factor searches)
       row_j <- row_j +- row_i   (for the left-factor search on nu)
       negate / swap,

   which preserve |det| = 1, so the basis and its inverse both stay
   integral — exactly the automorphisms Definition 2.6 requires.

   On Winograd's algorithm the search reliably rediscovers
   12-additions-per-step cores, matching the hand-derived instance in
   {!Alt_basis.ks_winograd} and the published Karstadt-Schwartz count. *)

module P = Fmm_util.Prng

let nnz rows =
  Array.fold_left
    (fun acc r -> Array.fold_left (fun a c -> if c <> 0 then a + 1 else a) acc r)
    0 rows

let mat_mul = Alt_basis.mat_mul

let identity d = Array.init d (fun i -> Array.init d (fun j -> if i = j then 1 else 0))

let copy_mat m = Array.map Array.copy m

(* One random elementary unimodular move, applied in place.
   [on_columns] chooses column operations (for right factors). *)
let random_move rng ~on_columns m =
  let d = Array.length m in
  let i = P.int rng d in
  let j = P.int rng d in
  match P.int rng 4 with
  | 0 when i <> j ->
    (* add +- line i to line j *)
    let s = if P.bool rng then 1 else -1 in
    if on_columns then
      for r = 0 to d - 1 do
        m.(r).(j) <- m.(r).(j) + (s * m.(r).(i))
      done
    else
      for c = 0 to d - 1 do
        m.(j).(c) <- m.(j).(c) + (s * m.(i).(c))
      done
  | 1 ->
    (* negate line i *)
    if on_columns then
      for r = 0 to d - 1 do
        m.(r).(i) <- -m.(r).(i)
      done
    else
      for c = 0 to d - 1 do
        m.(i).(c) <- -m.(i).(c)
      done
  | _ when i <> j ->
    (* swap lines i and j *)
    if on_columns then
      for r = 0 to d - 1 do
        let tmp = m.(r).(i) in
        m.(r).(i) <- m.(r).(j);
        m.(r).(j) <- tmp
      done
    else begin
      let tmp = m.(i) in
      m.(i) <- m.(j);
      m.(j) <- tmp
    end
  | _ -> ()

(* Coefficients above this magnitude only ever hurt both sparsity and
   numerical sanity; reject moves that explode. *)
let max_coeff = 4

let within_budget m =
  Array.for_all (Array.for_all (fun c -> abs c <= max_coeff)) m

(** Hill-climb [objective] over unimodular matrices of dimension [d],
    starting from the identity, with restarts. [on_columns] selects
    column moves (right-factor search). Returns (best matrix, best
    objective value). *)
let climb ~rng ~d ~on_columns ~objective ~restarts ~steps =
  let best_mat = ref (identity d) in
  let best_val = ref (objective (identity d)) in
  for _ = 1 to restarts do
    let cur = identity d in
    let cur_val = ref (objective cur) in
    for _ = 1 to steps do
      let cand = copy_mat cur in
      random_move rng ~on_columns cand;
      if within_budget cand then begin
        let v = objective cand in
        (* accept improvements and sideways moves (plateau walking) *)
        if v <= !cur_val then begin
          Array.blit cand 0 cur 0 d;
          cur_val := v;
          if v < !best_val then begin
            best_val := v;
            best_mat := copy_mat cand
          end
        end
      end
    done
  done;
  (!best_mat, !best_val)

type search_result = {
  alt : Alt_basis.t;
  nnz_u : int; (* of the transformed core *)
  nnz_v : int;
  nnz_w : int;
  additions_per_step : int;
}

(** Search sparsifying bases for a 2x2-base algorithm. Deterministic
    given [seed]. The returned alternative-basis algorithm flattens
    back to exactly the input algorithm (so its correctness is
    inherited; the tests re-verify via Brent anyway). *)
let search ?(restarts = 30) ?(steps = 400) ~seed (alg : Algorithm.t) =
  let n, m, k = Algorithm.dims alg in
  if (n, m, k) <> (2, 2, 2) then invalid_arg "Basis_search.search: 2x2 only";
  let rng = P.create ~seed in
  let u = Algorithm.u_matrix alg in
  let v = Algorithm.v_matrix alg in
  let w = Algorithm.w_matrix alg in
  (* right factors: G_a = phi^-1 minimizing nnz(U G_a) *)
  let g_a, nnz_u = climb ~rng ~d:4 ~on_columns:true ~restarts ~steps
      ~objective:(fun g -> nnz (mat_mul u g))
  in
  let g_b, nnz_v = climb ~rng ~d:4 ~on_columns:true ~restarts ~steps
      ~objective:(fun g -> nnz (mat_mul v g))
  in
  (* left factor: nu minimizing nnz(nu W) *)
  let nu, nnz_w = climb ~rng ~d:4 ~on_columns:false ~restarts ~steps
      ~objective:(fun h -> nnz (mat_mul h w))
  in
  let phi = Alt_basis.integer_inverse g_a in
  let psi = Alt_basis.integer_inverse g_b in
  let core =
    Algorithm.make
      ~name:(Algorithm.name alg ^ " (searched basis core)")
      ~n:2 ~m:2 ~k:2 ~u:(mat_mul u g_a) ~v:(mat_mul v g_b) ~w:(mat_mul nu w)
  in
  let alt =
    Alt_basis.make
      ~name:(Algorithm.name alg ^ " (searched basis)")
      ~core ~phi ~psi ~nu
  in
  {
    alt;
    nnz_u;
    nnz_v;
    nnz_w;
    additions_per_step = Algorithm.additions_per_step core;
  }
