(* Machine checks of the paper's encoder-graph lemmas (Section III).
   For a concrete 2x2-base algorithm each lemma is a finite statement
   about a bipartite graph with |X| = 4 and |Y| = 7, so exhaustive
   enumeration *is* a proof for that algorithm. The same checkers run
   on any encoder (other bases, alternative-basis cores, Kronecker
   squares) and report violations with witnesses. *)

module M = Fmm_graph.Matching
module Enc = Fmm_cdag.Encoder
module C = Fmm_util.Combinat

type check_result = {
  lemma : string;
  algorithm : string;
  holds : bool;
  detail : string;
}

let result ~lemma ~algorithm ~holds ~detail = { lemma; algorithm; holds; detail }

(** Lemma 3.1 bound for a subset of Y of size [k]. *)
let matching_bound k = 1 + C.ceil_div (k - 1) 2

(** Lemma 3.1: for every nonempty Y' subset of Y there is a matching
    between some X' and Y' with |X'| >= 1 + ceil((|Y'|-1)/2). Checked
    exhaustively: max-matching of the graph restricted to Y' must reach
    the bound for all 2^|Y| - 1 subsets. *)
let check_lemma_3_1 ?(name = "?") (g : M.bipartite) =
  let xs = List.init g.M.nx (fun i -> i) in
  let violations = ref [] in
  List.iter
    (fun ys ->
      let k = List.length ys in
      let bound = matching_bound k in
      let size = M.max_matching_size (M.restrict g ~xs ~ys) in
      if size < bound then violations := (ys, size, bound) :: !violations)
    (C.nonempty_subsets g.M.ny);
  match !violations with
  | [] ->
    result ~lemma:"3.1" ~algorithm:name ~holds:true
      ~detail:
        (Printf.sprintf "all %d nonempty subsets Y' admit matchings of size >= 1+ceil((|Y'|-1)/2)"
           ((1 lsl g.M.ny) - 1))
  | (ys, size, bound) :: _ ->
    result ~lemma:"3.1" ~algorithm:name ~holds:false
      ~detail:
        (Printf.sprintf "Y' = {%s}: max matching %d < required %d"
           (String.concat "," (List.map string_of_int ys))
           size bound)

(** Lemma 3.2: every x in X has >= 2 neighbors, and every pair of X
    vertices has >= 4 neighbors in total. *)
let check_lemma_3_2 ?(name = "?") (g : M.bipartite) =
  let degree_bad =
    List.filter
      (fun x -> List.length (List.sort_uniq compare g.M.adj.(x)) < 2)
      (List.init g.M.nx (fun i -> i))
  in
  let pair_bad =
    List.filter
      (fun pair ->
        match pair with
        | [ x1; x2 ] ->
          List.length (M.neighbors_of_xs g [ x1; x2 ]) < 4
        | _ -> false)
      (C.subsets_of_size g.M.nx 2)
  in
  if degree_bad = [] && pair_bad = [] then
    result ~lemma:"3.2" ~algorithm:name ~holds:true
      ~detail:"every input has >= 2 neighbors; every pair has >= 4"
  else
    result ~lemma:"3.2" ~algorithm:name ~holds:false
      ~detail:
        (Printf.sprintf "degree violations: [%s]; pair violations: %d"
           (String.concat "," (List.map string_of_int degree_bad))
           (List.length pair_bad))

(** Lemma 3.3: no two Y vertices have identical neighbor sets. *)
let check_lemma_3_3 ?(name = "?") (g : M.bipartite) =
  let nbrs = Array.make g.M.ny [] in
  Array.iteri
    (fun x ys -> List.iter (fun y -> nbrs.(y) <- x :: nbrs.(y)) ys)
    g.M.adj;
  let sets = Array.map (List.sort_uniq compare) nbrs in
  let dup = ref None in
  for y1 = 0 to g.M.ny - 1 do
    for y2 = y1 + 1 to g.M.ny - 1 do
      if !dup = None && sets.(y1) = sets.(y2) then dup := Some (y1, y2)
    done
  done;
  match !dup with
  | None ->
    result ~lemma:"3.3" ~algorithm:name ~holds:true
      ~detail:"all encoded operands have distinct neighbor sets"
  | Some (y1, y2) ->
    result ~lemma:"3.3" ~algorithm:name ~holds:false
      ~detail:(Printf.sprintf "operands %d and %d share neighbor set" y1 y2)

(** Hall-style neighbor-count route of the paper's proof of Lemma 3.1:
    |N(Y')| >= 1 + ceil((|Y'|-1)/2) for all Y'. Equivalent to the
    matching statement by Hall's theorem; checking both and comparing
    guards the implementation against itself. *)
let check_neighbor_count_bound ?(name = "?") (g : M.bipartite) =
  let nbr_sets = Array.make g.M.ny [] in
  Array.iteri
    (fun x ys -> List.iter (fun y -> nbr_sets.(y) <- x :: nbr_sets.(y)) ys)
    g.M.adj;
  let violations =
    List.filter_map
      (fun ys ->
        let k = List.length ys in
        let union =
          List.sort_uniq compare (List.concat_map (fun y -> nbr_sets.(y)) ys)
        in
        if List.length union < matching_bound k then Some (ys, List.length union)
        else None)
      (C.nonempty_subsets g.M.ny)
  in
  match violations with
  | [] ->
    result ~lemma:"3.1-neighbors" ~algorithm:name ~holds:true
      ~detail:"|N(Y')| >= 1+ceil((|Y'|-1)/2) for all Y'"
  | (ys, nn) :: _ ->
    result ~lemma:"3.1-neighbors" ~algorithm:name ~holds:false
      ~detail:
        (Printf.sprintf "Y' = {%s} has only %d neighbors"
           (String.concat "," (List.map string_of_int ys))
           nn)

(** Sampled variant of Lemma 3.1 for encoders too large for exhaustive
    subset enumeration (e.g. composed algorithms with |Y| = 49):
    random Y' subsets of every size. *)
let check_lemma_3_1_sampled ?(name = "?") ~trials ~seed (g : M.bipartite) =
  let rng = Fmm_util.Prng.create ~seed in
  let xs = List.init g.M.nx (fun i -> i) in
  let violation = ref None in
  for _ = 1 to trials do
    if !violation = None then begin
      let k = 1 + Fmm_util.Prng.int rng g.M.ny in
      let ys = Fmm_util.Prng.sample rng k g.M.ny in
      let bound = matching_bound k in
      let size = M.max_matching_size (M.restrict g ~xs ~ys) in
      if size < bound then violation := Some (ys, size, bound)
    end
  done;
  match !violation with
  | None ->
    result ~lemma:"3.1-sampled" ~algorithm:name ~holds:true
      ~detail:(Printf.sprintf "%d random subsets Y' all meet the matching bound" trials)
  | Some (ys, size, bound) ->
    result ~lemma:"3.1-sampled" ~algorithm:name ~holds:false
      ~detail:
        (Printf.sprintf "Y' = {%s}: max matching %d < required %d"
           (String.concat "," (List.map string_of_int ys))
           size bound)

(** Run the full encoder-lemma battery on one algorithm; both operand
    sides are checked (the paper's W.l.o.g. role switch of A and B).
    Lemmas 3.1-3.3 are stated for 2x2 base cases; for other bases an
    empty list is returned (the bound 1 + ceil((|Y'|-1)/2) is tuned to
    |X| = 4, |Y| = 7 and provably fails beyond it). *)
let check_algorithm (alg : Fmm_bilinear.Algorithm.t) =
  match Fmm_bilinear.Algorithm.dims alg with
  | 2, 2, 2 ->
    let name = Fmm_bilinear.Algorithm.name alg in
    let check side suffix =
      let g = Enc.encoder_bipartite alg side in
      let tag = name ^ suffix in
      [
        check_lemma_3_1 ~name:tag g;
        check_neighbor_count_bound ~name:tag g;
        check_lemma_3_2 ~name:tag g;
        check_lemma_3_3 ~name:tag g;
      ]
    in
    check Enc.A_side "/A" @ check Enc.B_side "/B"
  | _ -> []

let all_hold results = List.for_all (fun r -> r.holds) results
