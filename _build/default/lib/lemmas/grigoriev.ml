(* Grigoriev information flow of the matrix-multiplication function
   (Definition 2.8, Lemma 3.8) and the dominator consequence
   (Lemma 3.9).

   Lemma 3.8: f_{nxn} : R^{2n^2} -> R^{n^2} has flow
     w(u, v) >= (v - (2n^2 - u)^2 / (4 n^2)) / 2
   for 0 <= u <= 2n^2 and 0 <= v <= n^2.

   The closed form is used by the bound calculators; the empirical
   witness enumerates assignments over a small prime field and counts
   distinct output projections, demonstrating the claimed sub-function
   image sizes on concrete (u, v). *)

(** The paper's closed-form lower bound on the flow (can be negative,
    in which case it is vacuous). Exact rational. *)
let flow_bound ~n ~u ~v =
  if u < 0 || u > 2 * n * n || v < 0 || v > n * n then
    invalid_arg "Grigoriev.flow_bound: (u,v) out of range";
  let q = Fmm_ring.Rat.of_int in
  let open Fmm_ring.Rat in
  let slack = q ((2 * n * n) - u) in
  div (sub (q v) (div (mul slack slack) (q (4 * n * n)))) (q 2)

let flow_bound_float ~n ~u ~v = Fmm_ring.Rat.to_float (flow_bound ~n ~u ~v)

(** Lemma 3.9 consequence: any dominator set of a subset O' of outputs
    with respect to free inputs I' has size >= w(|I'|, |O'|). *)
let dominator_lower_bound ~n ~free_inputs ~outputs =
  flow_bound_float ~n ~u:free_inputs ~v:outputs

(* --- empirical witness over Z_p --- *)

module type WITNESS_FIELD = sig
  include Fmm_ring.Sig_ring.Field with type t = int

  val p : int
  val all : unit -> t list
  val random : Fmm_util.Prng.t -> t
end

module Witness (F : WITNESS_FIELD) = struct
  module M = Fmm_matrix.Matrix.Make (F)

  (** For the n x n matrix product over F: free the input entries in
      [x1] (indices into the concatenated vec(A) @ vec(B) of length
      2n^2), keep the output entries in [y1] (indices into vec(C)),
      fix the remaining inputs randomly, and count the number of
      distinct Y1-projections over all |F|^|X1| assignments. Returns
      the best (max) count over [trials] random fixings.

      Exponential in |X1| — intended for n = 2, |X1| <= 8ish. *)
  let max_image_count ~n ~x1 ~y1 ~trials ~seed =
    let total_inputs = 2 * n * n in
    List.iter
      (fun i ->
        if i < 0 || i >= total_inputs then
          invalid_arg "Grigoriev.Witness: bad input index")
      x1;
    let rng = Fmm_util.Prng.create ~seed in
    let free = Array.of_list x1 in
    let nfree = Array.length free in
    let field = Array.of_list (F.all ()) in
    let nf = Array.length field in
    let best = ref 0 in
    for _ = 1 to trials do
      let fixed = Array.init total_inputs (fun _ -> F.random rng) in
      let images = Hashtbl.create 64 in
      (* enumerate all |F|^nfree assignments via counting in base |F| *)
      let assignment = Array.make nfree 0 in
      let continue_ = ref true in
      while !continue_ do
        let inputs = Array.copy fixed in
        Array.iteri (fun idx pos -> inputs.(pos) <- field.(assignment.(idx))) free;
        let a = M.of_vec n n (Array.sub inputs 0 (n * n)) in
        let b = M.of_vec n n (Array.sub inputs (n * n) (n * n)) in
        let c = M.vec_of (M.mul a b) in
        let projection = List.map (fun o -> c.(o)) y1 in
        Hashtbl.replace images projection ();
        (* increment base-|F| counter *)
        let rec bump i =
          if i >= nfree then continue_ := false
          else if assignment.(i) + 1 < nf then assignment.(i) <- assignment.(i) + 1
          else begin
            assignment.(i) <- 0;
            bump (i + 1)
          end
        in
        bump 0
      done;
      best := max !best (Hashtbl.length images)
    done;
    !best

  (** Check Lemma 3.8 empirically: the max image count must be at least
      |F|^w(u,v) for the given index choices. *)
  let check ~n ~x1 ~y1 ~trials ~seed =
    let u = List.length x1 and v = List.length y1 in
    let bound = flow_bound_float ~n ~u ~v in
    let needed = int_of_float (ceil (float_of_int F.p ** bound)) in
    let got = max_image_count ~n ~x1 ~y1 ~trials ~seed in
    (got, needed, got >= needed)
end

module Witness_z2 = Witness (Fmm_ring.Zp.Z2)
module Witness_z3 = Witness (Fmm_ring.Zp.Z3)
