(* Encoder-graph expansion: the quantity behind the Ballard-Demmel-
   Holtz-Schwartz route to the same bounds ([8], cited in Table I).
   For the bipartite encoder G = (X, Y, E) we tabulate, per subset size
   k, the worst-case neighborhood |N(Y')| over all Y' with |Y'| = k —
   the small-set expansion profile. Lemma 3.1's matching bound
   1 + ceil((k-1)/2) is exactly a lower bound on this profile (via
   Hall), so the profile makes the two proof routes comparable on
   concrete algorithms. *)

module M = Fmm_graph.Matching
module C = Fmm_util.Combinat

type profile = {
  algorithm : string;
  side : string;
  (* worst-case |N(Y')| and worst-case max-matching per subset size,
     index 0 unused *)
  min_neighbors : int array;
  min_matching : int array;
}

let profile_of_bipartite ~algorithm ~side (g : M.bipartite) =
  if g.M.ny > 16 then invalid_arg "Expansion.profile_of_bipartite: Y too large";
  let nbr_sets = Array.make g.M.ny [] in
  Array.iteri
    (fun x ys -> List.iter (fun y -> nbr_sets.(y) <- x :: nbr_sets.(y)) ys)
    g.M.adj;
  let min_neighbors = Array.make (g.M.ny + 1) max_int in
  let min_matching = Array.make (g.M.ny + 1) max_int in
  let xs = List.init g.M.nx (fun i -> i) in
  List.iter
    (fun ys ->
      let k = List.length ys in
      let nbrs =
        List.length
          (List.sort_uniq compare (List.concat_map (fun y -> nbr_sets.(y)) ys))
      in
      if nbrs < min_neighbors.(k) then min_neighbors.(k) <- nbrs;
      let matching = M.max_matching_size (M.restrict g ~xs ~ys) in
      if matching < min_matching.(k) then min_matching.(k) <- matching)
    (C.nonempty_subsets g.M.ny);
  min_neighbors.(0) <- 0;
  min_matching.(0) <- 0;
  { algorithm; side; min_neighbors; min_matching }

let profile (alg : Fmm_bilinear.Algorithm.t) side =
  let g = Fmm_cdag.Encoder.encoder_bipartite alg side in
  profile_of_bipartite
    ~algorithm:(Fmm_bilinear.Algorithm.name alg)
    ~side:(match side with Fmm_cdag.Encoder.A_side -> "A" | Fmm_cdag.Encoder.B_side -> "B")
    g

(** On bipartite graphs the worst-case neighborhood and worst-case
    matching per size coincide exactly when Hall's condition is tight
    level by level; for the encoder graphs of 7-multiplication
    algorithms both must sit on or above the Lemma 3.1 curve. *)
let dominates_lemma_3_1 p =
  let ok = ref true in
  for k = 1 to Array.length p.min_matching - 1 do
    if p.min_matching.(k) < Encoder_lemmas.matching_bound k then ok := false
  done;
  !ok

(** The expansion profile as printable rows (k, min |N|, min matching,
    Lemma 3.1 bound). *)
let rows p =
  List.init
    (Array.length p.min_matching - 1)
    (fun i ->
      let k = i + 1 in
      (k, p.min_neighbors.(k), p.min_matching.(k), Encoder_lemmas.matching_bound k))
