(** Encoder-graph small-set expansion — the quantity behind the
    graph-expansion route to the same bounds ([8], Table I). The
    profile tabulates worst-case neighborhoods and matchings per subset
    size; Lemma 3.1's curve 1 + ceil((k-1)/2) lower-bounds it on every
    7-multiplication encoder (and is tight on Strassen's). *)

type profile = {
  algorithm : string;
  side : string;
  min_neighbors : int array;  (** index k: worst |N(Y')| over |Y'| = k *)
  min_matching : int array;  (** index k: worst max-matching over |Y'| = k *)
}

val profile_of_bipartite :
  algorithm:string -> side:string -> Fmm_graph.Matching.bipartite -> profile
(** Exhaustive; raises beyond |Y| = 16. *)

val profile : Fmm_bilinear.Algorithm.t -> Fmm_cdag.Encoder.side -> profile

val dominates_lemma_3_1 : profile -> bool

val rows : profile -> (int * int * int * int) list
(** (k, min neighbors, min matching, Lemma 3.1 bound) per size. *)
