(** Lemma 3.11 (the Figure 3 construction), verified by max-flow: at
    least 2 r sqrt(|Z| - 2|Gamma|) vertex-disjoint paths connect
    V_inp(H^{n x n}) to sub-problem inputs from which Z stays reachable
    without touching Gamma. *)

type sample_result = {
  r : int;
  z_size : int;
  gamma_size : int;
  disjoint_paths : int;  (** the true maximum (Menger / Dinic) *)
  bound : float;
  holds : bool;
}

val internal_vertices : Fmm_cdag.Cdag.t -> r:int -> int list
(** Vertices strictly inside size-r sub-CDAGs — the pool Gamma is
    sampled from. *)

val sample :
  Fmm_cdag.Cdag.t ->
  r:int ->
  z_size:int ->
  gamma_size:int ->
  seed:int ->
  sample_result
(** One experiment. Raises unless |Z| >= 2 |Gamma|. *)

val all_hold : sample_result list -> bool
