(** Hopcroft-Kerr checks (Lemma 3.4 and Corollary 3.5): nine 3-element
    sets of linear forms such that any 2x2 algorithm with k left
    operands from one set needs >= 6 + k multiplications — hence 7 is
    minimal, the fact underpinning Lemma 3.3. *)

val forbidden_sets : (string * int array list) list
(** The nine sets, as coefficient vectors over (A11, A12, A21, A22). *)

val count_left_operands_in : Fmm_bilinear.Algorithm.t -> int array list -> int
(** Operands matching a set member up to overall sign. *)

type check = { set_name : string; count : int; max_allowed : int; ok : bool }

val check_algorithm : Fmm_bilinear.Algorithm.t -> check list
(** A t-multiplication algorithm may have at most t - 6 left operands
    per forbidden set. *)

val all_ok : check list -> bool

val random_6mult_search : trials:int -> seed:int -> int * bool
(** Minimality evidence: random <2,2,2;6> candidates with coefficients
    in [{-1,0,1}] never satisfy the Brent equations. Returns
    (trials run, found-one?). *)

val strassen_minus_one_is_unrepairable : unit -> bool
(** Deleting any one product from Strassen leaves a decoder linear
    system with no solution over Q — the remaining 6 products cannot
    express the 2x2 product. *)
