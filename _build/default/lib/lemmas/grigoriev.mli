(** Grigoriev information flow of matrix multiplication (Definition
    2.8, Lemma 3.8) and its dominator consequence (Lemma 3.9). *)

val flow_bound : n:int -> u:int -> v:int -> Fmm_ring.Rat.t
(** The paper's closed form (v - (2n^2 - u)^2 / 4n^2) / 2, exact; may
    be nonpositive (vacuous). Raises on (u, v) out of range. *)

val flow_bound_float : n:int -> u:int -> v:int -> float

val dominator_lower_bound : n:int -> free_inputs:int -> outputs:int -> float
(** Lemma 3.9: any dominator of [outputs] output vertices w.r.t.
    [free_inputs] free inputs has at least this size. *)

(** Empirical witness over a small prime field: enumerate all
    assignments of the freed inputs and count distinct output
    projections — Lemma 3.8 promises at least |F|^flow of them for the
    best sub-function. Exponential in |x1|; intended for n = 2. *)
module type WITNESS_FIELD = sig
  include Fmm_ring.Sig_ring.Field with type t = int

  val p : int
  val all : unit -> t list
  val random : Fmm_util.Prng.t -> t
end

module Witness (F : WITNESS_FIELD) : sig
  val max_image_count :
    n:int -> x1:int list -> y1:int list -> trials:int -> seed:int -> int
  (** Max distinct-projection count over [trials] random fixings of the
      non-free inputs. *)

  val check :
    n:int -> x1:int list -> y1:int list -> trials:int -> seed:int ->
    int * int * bool
  (** (attained, required, attained >= required). *)
end

module Witness_z2 : module type of Witness (Fmm_ring.Zp.Z2)
module Witness_z3 : module type of Witness (Fmm_ring.Zp.Z3)
