(* Hopcroft-Kerr style checks (Lemma 3.4 and Corollary 3.5). The
   original result: any 2x2 matrix-multiplication algorithm with k left
   multiplicands drawn from one of nine specific 3-element sets of
   linear forms needs at least 6 + k multiplications. Consequences we
   verify on concrete algorithms:

   - a 7-multiplication algorithm may take at most one left operand
     from each forbidden set;
   - (minimality evidence) randomized search over small-coefficient
     <2,2,2;6> candidate algorithms never satisfies the Brent
     equations, consistent with Hopcroft-Kerr's lower bound of 7. *)

(* Linear forms over (A11, A12, A21, A22) as coefficient vectors. *)
let forbidden_sets : (string * int array list) list =
  let f coeffs = Array.of_list coeffs in
  [
    ("3.4", [ f [ 1; 0; 0; 0 ]; f [ 0; 1; 1; 0 ]; f [ 1; 1; 1; 0 ] ]);
    ("3.5(1)", [ f [ 1; 0; 1; 0 ]; f [ 0; 1; 1; 1 ]; f [ 1; 1; 0; 1 ] ]);
    ("3.5(2)", [ f [ 1; 1; 0; 0 ]; f [ 0; 1; 1; 1 ]; f [ 1; 1; 0; 1 ] ]);
    ("3.5(3)", [ f [ 1; 1; 1; 1 ]; f [ 0; 1; 1; 0 ]; f [ 1; 0; 0; 1 ] ]);
    ("3.5(4)", [ f [ 0; 0; 1; 0 ]; f [ 1; 0; 0; 1 ]; f [ 1; 0; 1; 1 ] ]);
    ("3.5(5)", [ f [ 0; 0; 1; 1 ]; f [ 1; 1; 0; 1 ]; f [ 1; 1; 1; 0 ] ]);
    ("3.5(6)", [ f [ 0; 1; 0; 0 ]; f [ 1; 0; 0; 1 ]; f [ 1; 1; 0; 1 ] ]);
    ("3.5(7)", [ f [ 0; 1; 0; 1 ]; f [ 1; 0; 1; 1 ]; f [ 1; 1; 1; 0 ] ]);
    ("3.5(8)", [ f [ 0; 0; 0; 1 ]; f [ 0; 1; 1; 0 ]; f [ 0; 1; 1; 1 ] ]);
  ]

(* Linear forms match up to overall sign: the multiplicand (-S) * T
   computes the same product as S * (-T). *)
let same_form a b =
  let neg = Array.map (fun c -> -c) b in
  a = b || a = neg

(** How many left operands of [alg] lie in the given forbidden set. *)
let count_left_operands_in alg forms =
  let u = Fmm_bilinear.Algorithm.u_matrix alg in
  Array.fold_left
    (fun acc row -> if List.exists (fun s -> same_form row s) forms then acc + 1 else acc)
    0 u

type check = { set_name : string; count : int; max_allowed : int; ok : bool }

(** Lemma 3.4 / Corollary 3.5 consistency: an algorithm with t
    multiplications may contain at most t - 6 left operands from each
    forbidden set. *)
let check_algorithm alg =
  let t = Fmm_bilinear.Algorithm.rank alg in
  let max_allowed = t - 6 in
  List.map
    (fun (set_name, forms) ->
      let count = count_left_operands_in alg forms in
      { set_name; count; max_allowed; ok = count <= max_allowed })
    forbidden_sets

let all_ok checks = List.for_all (fun c -> c.ok) checks

(* --- minimality evidence: no 6-multiplication 2x2 algorithm --- *)

(** Randomized search for a <2,2,2;6> algorithm with coefficients in
    {-1,0,1}. Hopcroft-Kerr proved none exists; this returns the number
    of candidates tried and whether any satisfied the Brent equations
    (always [false] — asserted by the tests, quoted by the benches). *)
let random_6mult_search ~trials ~seed =
  let rng = Fmm_util.Prng.create ~seed in
  let found = ref false in
  let random_rows count width =
    Array.init count (fun _ ->
        Array.init width (fun _ -> Fmm_util.Prng.int_range rng (-1) 1))
  in
  for _ = 1 to trials do
    if not !found then begin
      let u = random_rows 6 4 and v = random_rows 6 4 and w = random_rows 4 6 in
      let cand = Fmm_bilinear.Algorithm.make ~name:"cand6" ~n:2 ~m:2 ~k:2 ~u ~v ~w in
      if Fmm_bilinear.Algorithm.verify_brent cand then found := true
    end
  done;
  (trials, !found)

(** Local search evidence: start from Strassen with one product removed
    and try to repair the decoder by solving for W over Q — the linear
    system is inconsistent, certifying that the remaining 6 products
    cannot express the 2x2 product (for this particular product basis). *)
let strassen_minus_one_is_unrepairable () =
  let s = Fmm_bilinear.Strassen.strassen in
  let u = Fmm_bilinear.Algorithm.u_matrix s in
  let v = Fmm_bilinear.Algorithm.v_matrix s in
  (* Keep products 0..5, drop product 6. For C = A.B to be expressible,
     for each output (i',l') we need coefficients w_r with
       sum_r w_r * u_r[(i,j)] * v_r[(j',l)] = delta for all i,j,j',l.
     That is 16 linear equations in 6 unknowns per output. *)
  let module LQ = Fmm_matrix.Linalg.Q in
  let module MQ = Fmm_matrix.Matrix.Q in
  let q = Fmm_ring.Rat.of_int in
  let repairable = ref true in
  for i' = 0 to 1 do
    for l' = 0 to 1 do
      let rows = ref [] and rhs = ref [] in
      for i = 0 to 1 do
        for j = 0 to 1 do
          for j' = 0 to 1 do
            for l = 0 to 1 do
              let row =
                List.init 6 (fun r -> q (u.(r).((i * 2) + j) * v.(r).((j' * 2) + l)))
              in
              rows := row :: !rows;
              rhs :=
                q (if i = i' && j = j' && l = l' then 1 else 0) :: !rhs
            done
          done
        done
      done;
      let m = MQ.of_rows (List.rev !rows) in
      let b = Array.of_list (List.rev !rhs) in
      match LQ.solve m b with
      | Some _ -> ()
      | None -> repairable := false
    done
  done;
  not !repairable
