(* Lemma 3.11 (the Figure 3 construction): for Gamma a subset of
   V_int(SUB_H^{r x r}) and Z a subset of V_out(SUB_H^{r x r}) with
   |Z| >= 2 |Gamma|, there are at least 2 r sqrt(|Z| - 2 |Gamma|)
   vertex-disjoint paths from V_inp(H^{n x n}) to sub-problem input
   vertices from which Z remains reachable without touching Gamma.

   The empirical check computes the true maximum number of such
   disjoint paths with unit-vertex-capacity max-flow and compares it to
   the bound:

   1. eligible Y = { y in V_inp(SUB_H^{r x r}) : y reaches Z avoiding
      Gamma } (forward BFS with Gamma blocked);
   2. max vertex-disjoint paths from the CDAG inputs to eligible Y.

   Paths from the top inputs descend exclusively through encoder
   vertices of recursion levels above r, so they cannot meet Gamma
   (which lies strictly inside size-r sub-CDAGs); the two stages
   together realize exactly the lemma's object. *)

module Cd = Fmm_cdag.Cdag
module D = Fmm_graph.Digraph
module DP = Fmm_graph.Disjoint_paths
module P = Fmm_util.Prng

type sample_result = {
  r : int;
  z_size : int;
  gamma_size : int;
  disjoint_paths : int;
  bound : float; (* 2 r sqrt(|Z| - 2 |Gamma|) *)
  holds : bool;
}

(** Internal vertices of the size-r sub-CDAGs: everything created inside
    them (their own encoders, multiplications, decoders below r), i.e.
    vertices of sub-nodes with size < r, plus the size-r decode stage,
    excluding the size-r operand vertices themselves. We approximate
    this set as: vertices of every node of size r' <= r that are
    outputs or operands of strictly smaller nodes. For sampling Gamma
    the exact boundary matters little; we use the outputs of nodes of
    size < r plus operand (encoded) vertices of nodes of size < r. *)
let internal_vertices cdag ~r =
  List.concat_map
    (fun node ->
      if node.Cd.r < r then
        Array.to_list node.Cd.a_in @ Array.to_list node.Cd.b_in
        @ Array.to_list node.Cd.out
      else [])
    (Cd.nodes cdag)
  |> List.sort_uniq compare

(** One experiment: sample Z (size z_size) from V_out(SUB_H^{r x r}) and
    Gamma (size gamma_size <= z_size/2) from the internal vertices;
    measure the maximum disjoint-path count against the bound. *)
let sample cdag ~r ~z_size ~gamma_size ~seed =
  if 2 * gamma_size > z_size then
    invalid_arg "Paths_lemma.sample: need |Z| >= 2 |Gamma|";
  let rng = P.create ~seed in
  let outputs = Array.of_list (Cd.sub_outputs cdag ~r) in
  let internals = Array.of_list (internal_vertices cdag ~r) in
  if Array.length outputs < z_size then
    invalid_arg "Paths_lemma.sample: not enough sub-outputs";
  let z =
    List.map (fun i -> outputs.(i)) (P.sample rng z_size (Array.length outputs))
  in
  let gamma =
    if gamma_size = 0 || Array.length internals = 0 then []
    else
      List.map
        (fun i -> internals.(i))
        (P.sample rng (min gamma_size (Array.length internals)) (Array.length internals))
  in
  let gamma_size = List.length gamma in
  let g = Cd.graph cdag in
  (* Stage 1: eligible sub-problem inputs. *)
  let in_gamma = Array.make (D.n_vertices g) false in
  List.iter (fun v -> in_gamma.(v) <- true) gamma;
  let reaches_z = D.coreachable g z ~blocked:(fun v -> in_gamma.(v)) in
  let eligible =
    List.filter (fun y -> reaches_z.(y)) (Cd.sub_inputs cdag ~r)
  in
  (* Stage 2: disjoint paths from the true inputs to eligible Y. *)
  let disjoint =
    DP.max_disjoint_paths g
      {
        DP.sources = Array.to_list (Cd.inputs cdag);
        targets = eligible;
        forbidden = gamma;
      }
  in
  let bound =
    2. *. float_of_int r *. sqrt (float_of_int (z_size - (2 * gamma_size)))
  in
  {
    r;
    z_size;
    gamma_size;
    disjoint_paths = disjoint;
    bound;
    holds = float_of_int disjoint >= bound;
  }

let all_hold results = List.for_all (fun s -> s.holds) results
