lib/lemmas/dominator_lemma.ml: Array Fmm_cdag Fmm_graph Fmm_util List
