lib/lemmas/disjoint_union_lemma.ml: Array Fmm_cdag Fmm_graph Fmm_util List
