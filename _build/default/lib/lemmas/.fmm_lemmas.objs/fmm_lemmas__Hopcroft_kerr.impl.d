lib/lemmas/hopcroft_kerr.ml: Array Fmm_bilinear Fmm_matrix Fmm_ring Fmm_util List
