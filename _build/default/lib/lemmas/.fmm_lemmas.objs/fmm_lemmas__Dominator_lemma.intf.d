lib/lemmas/dominator_lemma.mli: Fmm_cdag
