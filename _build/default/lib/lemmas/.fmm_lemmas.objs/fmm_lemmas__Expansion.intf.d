lib/lemmas/expansion.mli: Fmm_bilinear Fmm_cdag Fmm_graph
