lib/lemmas/grigoriev.ml: Array Fmm_matrix Fmm_ring Fmm_util Hashtbl List
