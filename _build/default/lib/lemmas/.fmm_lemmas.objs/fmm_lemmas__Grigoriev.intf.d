lib/lemmas/grigoriev.mli: Fmm_ring Fmm_util
