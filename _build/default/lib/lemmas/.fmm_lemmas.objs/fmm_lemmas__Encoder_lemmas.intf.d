lib/lemmas/encoder_lemmas.mli: Fmm_bilinear Fmm_graph
