lib/lemmas/paths_lemma.mli: Fmm_cdag
