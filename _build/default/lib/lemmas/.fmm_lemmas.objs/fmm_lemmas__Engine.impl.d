lib/lemmas/engine.ml: Dominator_lemma Encoder_lemmas Fmm_bilinear Fmm_cdag Fmm_util Format Hopcroft_kerr List Paths_lemma
