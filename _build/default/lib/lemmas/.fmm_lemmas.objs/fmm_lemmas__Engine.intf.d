lib/lemmas/engine.mli: Dominator_lemma Encoder_lemmas Fmm_bilinear Format Hopcroft_kerr Paths_lemma
