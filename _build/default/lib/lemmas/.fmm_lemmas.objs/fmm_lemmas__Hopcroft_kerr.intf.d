lib/lemmas/hopcroft_kerr.mli: Fmm_bilinear
