lib/lemmas/expansion.ml: Array Encoder_lemmas Fmm_bilinear Fmm_cdag Fmm_graph Fmm_util List
