lib/lemmas/encoder_lemmas.ml: Array Fmm_bilinear Fmm_cdag Fmm_graph Fmm_util List Printf String
