(** Machine checks of the paper's encoder-graph lemmas (Section III).
    For a 2x2-base algorithm each lemma is a finite statement about a
    bipartite graph with |X| = 4, |Y| = 7 — exhaustive enumeration over
    all 127 output subsets {e is} a proof for that concrete algorithm. *)

type check_result = {
  lemma : string;
  algorithm : string;
  holds : bool;
  detail : string;  (** a certificate or a violation witness *)
}

val matching_bound : int -> int
(** The Lemma 3.1 bound 1 + ceil((k-1)/2) for a subset of size [k]. *)

val check_lemma_3_1 : ?name:string -> Fmm_graph.Matching.bipartite -> check_result
(** Exhaustive: max matching of the restriction to every nonempty Y'
    must reach {!matching_bound}. *)

val check_lemma_3_2 : ?name:string -> Fmm_graph.Matching.bipartite -> check_result
(** Every input has >= 2 neighbors; every input pair >= 4. *)

val check_lemma_3_3 : ?name:string -> Fmm_graph.Matching.bipartite -> check_result
(** No two encoded operands share a neighbor set. *)

val check_neighbor_count_bound :
  ?name:string -> Fmm_graph.Matching.bipartite -> check_result
(** The Hall-condition route of the paper's proof: |N(Y')| >=
    {!matching_bound} |Y'| for all Y'. Equivalent to {!check_lemma_3_1}
    by Hall's theorem — checking both guards the implementation. *)

val check_lemma_3_1_sampled :
  ?name:string -> trials:int -> seed:int -> Fmm_graph.Matching.bipartite -> check_result
(** Random-subset variant for encoders too large to enumerate. *)

val check_algorithm : Fmm_bilinear.Algorithm.t -> check_result list
(** The full battery on both operand sides; empty for non-2x2 bases
    (the lemmas are tuned to |X| = 4, |Y| = 7). *)

val all_hold : check_result list -> bool
