(** Lemma 3.7, verified exactly: every dominator set of a size-r^2
    subset Z of V_out(SUB_H^{r x r}) has >= |Z|/2 vertices. The minimum
    dominator is computed exactly by max-flow
    ({!Fmm_graph.Vertex_cut.min_dominator}). *)

type sample_result = {
  r : int;
  z_size : int;
  min_dominator : int;
  bound : int;
  holds : bool;  (** 2 * min_dominator >= |Z| *)
}

val sample_min_dominators :
  Fmm_cdag.Cdag.t -> r:int -> trials:int -> seed:int -> sample_result list
(** Random Z subsets of size r^2. Raises when the CDAG has fewer than
    r^2 size-r sub-outputs. *)

val per_subproblem_min_dominators :
  Fmm_cdag.Cdag.t -> r:int -> sample_result list
(** The extremal natural choice: Z = the full output set of each size-r
    sub-CDAG. *)

val all_hold : sample_result list -> bool
