(* Lemma 3.10: let G^{q,n x n} be q vertex-disjoint CDAGs each computing
   an n x n matrix product. For any vertex subset Gamma and output
   subset O' with |Gamma| <= |O'| / 2, the set I' of input vertices NOT
   dominated by Gamma (inputs from which some O' vertex is reachable
   avoiding Gamma) satisfies

       |I'| >= 2 n sqrt(|O'| - 2 |Gamma|).

   We check this on explicit disjoint unions of H^{n x n} instances:
   build q copies, sample O' and Gamma, compute I' by blocked backward
   reachability, compare with the bound. *)

module Cd = Fmm_cdag.Cdag
module D = Fmm_graph.Digraph
module P = Fmm_util.Prng

type union_graph = {
  graph : D.t;
  q : int;
  n : int;
  inputs : int list;
  outputs : int list;
}

(** [build_union alg ~n ~q]: q vertex-disjoint copies of H^{n x n}. *)
let build_union alg ~n ~q =
  if q < 1 then invalid_arg "Disjoint_union_lemma.build_union: q < 1";
  let proto = Cd.build alg ~n in
  let size = Cd.n_vertices proto in
  let g = D.create ~capacity:(q * size) () in
  let inputs = ref [] and outputs = ref [] in
  for copy = 0 to q - 1 do
    let offset = copy * size in
    ignore (D.add_vertices g size);
    for v = 0 to size - 1 do
      List.iter
        (fun w -> D.add_edge g (offset + v) (offset + w))
        (D.out_neighbors (Cd.graph proto) v)
    done;
    Array.iter (fun v -> inputs := (offset + v) :: !inputs) (Cd.inputs proto);
    Array.iter (fun v -> outputs := (offset + v) :: !outputs) (Cd.outputs proto)
  done;
  { graph = g; q; n; inputs = List.rev !inputs; outputs = List.rev !outputs }

type sample_result = {
  o_size : int;
  gamma_size : int;
  undominated_inputs : int;
  bound : float;
  holds : bool;
}

(** Sample O' and Gamma and check the Lemma 3.10 inequality. *)
let sample u ~o_size ~gamma_size ~seed =
  if 2 * gamma_size > o_size then
    invalid_arg "Disjoint_union_lemma.sample: need |O'| >= 2 |Gamma|";
  let rng = P.create ~seed in
  let outputs = Array.of_list u.outputs in
  if Array.length outputs < o_size then
    invalid_arg "Disjoint_union_lemma.sample: not enough outputs";
  let o' =
    List.map (fun i -> outputs.(i)) (P.sample rng o_size (Array.length outputs))
  in
  (* Gamma from the non-input vertices (inputs in Gamma would be a
     different, weaker experiment). *)
  let is_inp = Array.make (D.n_vertices u.graph) false in
  List.iter (fun v -> is_inp.(v) <- true) u.inputs;
  let candidates =
    List.filter (fun v -> not is_inp.(v)) (List.init (D.n_vertices u.graph) (fun i -> i))
  in
  let cand = Array.of_list candidates in
  let gamma =
    List.map (fun i -> cand.(i)) (P.sample rng gamma_size (Array.length cand))
  in
  let in_gamma = Array.make (D.n_vertices u.graph) false in
  List.iter (fun v -> in_gamma.(v) <- true) gamma;
  (* I' = inputs from which O' is reachable avoiding Gamma: backward
     reachability from O' with Gamma blocked, intersected with inputs. *)
  let reach = D.coreachable u.graph o' ~blocked:(fun v -> in_gamma.(v)) in
  let undominated = List.filter (fun v -> reach.(v)) u.inputs in
  let bound =
    2. *. float_of_int u.n *. sqrt (float_of_int (o_size - (2 * gamma_size)))
  in
  {
    o_size;
    gamma_size;
    undominated_inputs = List.length undominated;
    bound;
    holds = float_of_int (List.length undominated) >= bound;
  }

let all_hold results = List.for_all (fun s -> s.holds) results
