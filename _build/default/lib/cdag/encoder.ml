(* Encoder and decoder bipartite graphs of a bilinear algorithm — the
   objects of Lemmas 3.1-3.3 and Figure 2. For the A-side encoder of a
   2x2-base algorithm, X is the 4 input arguments and Y the 7 encoded
   operands; (x, y) is an edge iff operand y uses input x with a
   nonzero coefficient. *)

type side = A_side | B_side

(** The encoder bipartite graph of [alg] for the chosen operand side.
    X = input entries (n*m or m*k of them), Y = the t encoded operands. *)
let encoder_bipartite (alg : Fmm_bilinear.Algorithm.t) side =
  let rows =
    match side with
    | A_side -> Fmm_bilinear.Algorithm.u_matrix alg
    | B_side -> Fmm_bilinear.Algorithm.v_matrix alg
  in
  let t = Array.length rows in
  let nx = Array.length rows.(0) in
  let edges = ref [] in
  Array.iteri
    (fun y row ->
      Array.iteri (fun x c -> if c <> 0 then edges := (x, y) :: !edges) row)
    rows;
  Fmm_graph.Matching.make_bipartite ~nx ~ny:t !edges

(** The decoder bipartite graph: X = the t products, Y = the n*k
    outputs; (p, o) is an edge iff output o uses product p. *)
let decoder_bipartite (alg : Fmm_bilinear.Algorithm.t) =
  let w = Fmm_bilinear.Algorithm.w_matrix alg in
  let ny = Array.length w in
  let t = Array.length w.(0) in
  let edges = ref [] in
  Array.iteri
    (fun o row ->
      Array.iteri (fun p c -> if c <> 0 then edges := (p, o) :: !edges) row)
    w;
  (* X = products, Y = outputs: build with nx = t. *)
  Fmm_graph.Matching.make_bipartite ~nx:t ~ny !edges

(** Neighbor set of encoded operand [y] (paper's N(y)): the input
    entries it depends on. *)
let neighbors_of_y (g : Fmm_graph.Matching.bipartite) y =
  let acc = ref [] in
  Array.iteri
    (fun x ys -> if List.mem y ys then acc := x :: !acc)
    g.Fmm_graph.Matching.adj;
  List.sort compare !acc

(** Neighbor sets for a set of Y vertices (union). *)
let neighbors_of_ys g ys =
  List.sort_uniq compare (List.concat_map (fun y -> neighbors_of_y g y) ys)

(** The encoder as a standalone 2-layer digraph (for DOT export /
    Figure 2 rendering): vertex ids 0..nx-1 are X, nx..nx+ny-1 are Y. *)
let encoder_digraph (alg : Fmm_bilinear.Algorithm.t) side =
  let bip = encoder_bipartite alg side in
  let g = Fmm_graph.Digraph.create () in
  let nx = bip.Fmm_graph.Matching.nx and ny = bip.Fmm_graph.Matching.ny in
  ignore (Fmm_graph.Digraph.add_vertices g (nx + ny));
  Array.iteri
    (fun x ys ->
      List.iter (fun y -> Fmm_graph.Digraph.add_edge g x (nx + y)) ys)
    bip.Fmm_graph.Matching.adj;
  g
