lib/cdag/cdag.ml: Array Fmm_bilinear Fmm_graph Fmm_ring Fmm_util Hashtbl List Printf
