lib/cdag/cdag.mli: Fmm_bilinear Fmm_graph Fmm_ring
