lib/cdag/encoder.ml: Array Fmm_bilinear Fmm_graph List
