(* Execution traces of the sequential machine model (Section II-B of
   the paper): a program is a sequence of loads, stores, evictions and
   computations over CDAG vertices. Traces are produced by the
   schedulers and consumed by the legality checker (Cache_machine) and
   the segment analyzer (Segments). *)

type event =
  | Load of int (* slow -> fast; one I/O read *)
  | Store of int (* fast -> slow; one I/O write *)
  | Evict of int (* drop from fast memory; free *)
  | Compute of int (* all predecessors must be in fast memory *)

type t = event list

let event_to_string = function
  | Load v -> Printf.sprintf "load %d" v
  | Store v -> Printf.sprintf "store %d" v
  | Evict v -> Printf.sprintf "evict %d" v
  | Compute v -> Printf.sprintf "compute %d" v

type counters = {
  loads : int;
  stores : int;
  computes : int;
  recomputes : int; (* computations of an already-computed vertex *)
}

let io counters = counters.loads + counters.stores

let pp_counters fmt c =
  Format.fprintf fmt "loads=%d stores=%d io=%d computes=%d recomputes=%d"
    c.loads c.stores (io c) c.computes c.recomputes
