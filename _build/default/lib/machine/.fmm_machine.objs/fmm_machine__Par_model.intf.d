lib/machine/par_model.mli:
