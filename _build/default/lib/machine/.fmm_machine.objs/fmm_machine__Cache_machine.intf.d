lib/machine/cache_machine.mli: Trace Workload
