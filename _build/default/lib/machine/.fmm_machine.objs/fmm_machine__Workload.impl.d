lib/machine/workload.ml: Array Fmm_bilinear Fmm_cdag Fmm_graph List Printf
