lib/machine/par_model.ml: Float List
