lib/machine/trace.ml: Format Printf
