lib/machine/schedulers.mli: Trace Workload
