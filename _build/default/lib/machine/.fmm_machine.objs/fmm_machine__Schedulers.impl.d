lib/machine/schedulers.ml: Array Fmm_graph Int List Map Printf Trace Workload
