lib/machine/par_exec.mli: Fmm_cdag Workload
