lib/machine/par_exec.ml: Array Fmm_bilinear Fmm_cdag Fmm_graph Fmm_util Hashtbl Int List Map Workload
