lib/machine/segments.ml: Array Fmm_cdag List Trace
