lib/machine/cache_machine.ml: Array Fmm_graph List Printf Trace Workload
