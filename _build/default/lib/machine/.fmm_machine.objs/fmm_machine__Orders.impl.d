lib/machine/orders.ml: Array Fmm_cdag Fmm_graph Fmm_util Hashtbl List Printf
