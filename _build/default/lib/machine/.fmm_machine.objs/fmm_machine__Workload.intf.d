lib/machine/workload.mli: Fmm_cdag Fmm_graph
