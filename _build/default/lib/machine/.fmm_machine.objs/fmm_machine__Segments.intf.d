lib/machine/segments.mli: Fmm_cdag Trace
