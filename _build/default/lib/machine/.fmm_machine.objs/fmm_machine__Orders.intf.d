lib/machine/orders.mli: Fmm_cdag
