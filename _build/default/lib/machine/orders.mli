(** Compute orders: the sequence in which a scheduler visits the CDAG's
    computable vertices (each exactly once, topologically). Locality of
    the order is what separates a naive schedule from the
    cache-oblivious recursive one. *)

val naive_topo : Fmm_cdag.Cdag.t -> int list
(** Kahn order with inputs removed — level-ish, poor locality. *)

val recursive_dfs : Fmm_cdag.Cdag.t -> int list
(** The depth-first recursive schedule of Algorithm 2: per product,
    encode, recurse, then decode — the cache-oblivious order whose I/O
    matches the O((n/sqrt M)^{omega0} M) upper bound. *)

val random_topo : seed:int -> Fmm_cdag.Cdag.t -> int list
(** A random valid topological order: the locality-free stress case. *)

val is_valid_order : Fmm_cdag.Cdag.t -> int list -> bool
(** Is this a topological enumeration of exactly the non-input
    vertices? *)
