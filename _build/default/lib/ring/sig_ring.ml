(* Algebraic signatures shared by the matrix and bilinear layers. The
   bilinear verifier runs over exact rings (Rat, Zp, Bigint) while the
   simulators run over cheap rings (Int, Float); everything downstream
   is functorized over [S]. *)

module type S = sig
  type t

  val zero : t
  val one : t
  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val mul : t -> t -> t

  (** Ring homomorphism from the integers; algorithm coefficients are
      specified as small ints and injected via [of_int]. *)
  val of_int : int -> t

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end

module type Field = sig
  include S

  (** Multiplicative inverse. Raises [Division_by_zero] on zero. *)
  val inv : t -> t

  val div : t -> t -> t
end

module Int : S with type t = int = struct
  type t = int

  let zero = 0
  let one = 1
  let add = ( + )
  let sub = ( - )
  let neg x = -x
  let mul = ( * )
  let of_int x = x
  let equal = Int.equal
  let pp = Format.pp_print_int
  let to_string = string_of_int
end

module Float : Field with type t = float = struct
  type t = float

  let zero = 0.
  let one = 1.
  let add = ( +. )
  let sub = ( -. )
  let neg x = -.x
  let mul = ( *. )
  let of_int = float_of_int
  let equal a b = Float.equal a b
  let pp = Format.pp_print_float
  let to_string = string_of_float
  let inv x = if x = 0. then raise Division_by_zero else 1. /. x
  let div a b = if b = 0. then raise Division_by_zero else a /. b
end

module Big : S with type t = Bigint.t = struct
  include Bigint

  let to_string = Bigint.to_string
end
