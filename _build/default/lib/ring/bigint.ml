(* Arbitrary-precision signed integers, sign + magnitude, little-endian
   limbs in base 2^15. This replaces zarith (not installed in the sealed
   container). Exactness matters here: the Brent-equation verifier and
   the Grigoriev-flow witnesses multiply long chains of rationals whose
   numerators overflow 63-bit ints even though every algorithm
   coefficient is tiny.

   Representation invariants:
   - [mag] has no leading (most-significant) zero limbs;
   - zero is represented as { sign = 0; mag = [||] };
   - sign is -1, 0, or +1, and sign = 0 iff mag = [||]. *)

let base_bits = 15
let base = 1 lsl base_bits (* 32768 *)
let base_mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }
let is_zero t = t.sign = 0

(* --- magnitude primitives (arrays of limbs, little-endian) --- *)

let mag_normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let mag_compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let mag_add a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb + 1 in
  let out = Array.make n 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s =
      (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry
    in
    out.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  assert (!carry = 0);
  mag_normalize out

(* Requires mag_compare a b >= 0. *)
let mag_sub a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      out.(i) <- d + base;
      borrow := 1
    end else begin
      out.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  mag_normalize out

let mag_mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let out = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let acc = out.(i + j) + (ai * b.(j)) + !carry in
        out.(i + j) <- acc land base_mask;
        carry := acc lsr base_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let acc = out.(!k) + !carry in
        out.(!k) <- acc land base_mask;
        carry := acc lsr base_bits;
        incr k
      done
    done;
    mag_normalize out
  end

(* Multiply magnitude by a small nonnegative int (< base). *)
let mag_mul_small a m =
  if m = 0 || Array.length a = 0 then [||]
  else begin
    let la = Array.length a in
    let out = Array.make (la + 2) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let acc = (a.(i) * m) + !carry in
      out.(i) <- acc land base_mask;
      carry := acc lsr base_bits
    done;
    let k = ref la in
    while !carry <> 0 do
      out.(!k) <- !carry land base_mask;
      carry := !carry lsr base_bits;
      incr k
    done;
    mag_normalize out
  end

(* Divide magnitude by a small positive int, returning (quotient, rem). *)
let mag_divmod_small a m =
  if m <= 0 || m >= base * base then
    invalid_arg "Bigint.mag_divmod_small: divisor out of range";
  let la = Array.length a in
  let out = Array.make la 0 in
  let rem = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!rem lsl base_bits) lor a.(i) in
    out.(i) <- cur / m;
    rem := cur mod m
  done;
  (mag_normalize out, !rem)

(* Long division on magnitudes; returns (quotient, remainder).
   Requires b <> 0. *)
let mag_divmod a b =
  if Array.length b = 0 then raise Division_by_zero;
  if mag_compare a b < 0 then ([||], a)
  else if Array.length b = 1 then begin
    let q, r = mag_divmod_small a b.(0) in
    (q, if r = 0 then [||] else [| r |])
  end
  else begin
    (* Binary long division: build quotient bit by bit, msb first. *)
    let total_bits = Array.length a * base_bits in
    let q = Array.make (Array.length a) 0 in
    let rem = ref [||] in
    for bit = total_bits - 1 downto 0 do
      (* rem := rem * 2 + bit_of_a *)
      let abit = (a.(bit / base_bits) lsr (bit mod base_bits)) land 1 in
      let doubled = mag_mul_small !rem 2 in
      rem := if abit = 1 then mag_add doubled [| 1 |] else doubled;
      if mag_compare !rem b >= 0 then begin
        rem := mag_sub !rem b;
        q.(bit / base_bits) <- q.(bit / base_bits) lor (1 lsl (bit mod base_bits))
      end
    done;
    (mag_normalize q, !rem)
  end

(* --- signed interface --- *)

let make sign mag =
  let mag = mag_normalize mag in
  if Array.length mag = 0 then zero else { sign; mag }

let of_int n =
  if n = 0 then zero
  else begin
    let sign = if n > 0 then 1 else -1 in
    (* min_int negation overflows; go through two limbs at a time. *)
    let rec limbs n acc =
      if n = 0 then List.rev acc
      else limbs (n lsr base_bits) ((n land base_mask) :: acc)
    in
    let m = if n > 0 then n else -n in
    if m < 0 then begin
      (* n = min_int: handle via Int64-free arithmetic. -min_int = min_int,
         so decompose min_int's magnitude manually: 2^62 for 63-bit ints. *)
      let m64 = Int64.neg (Int64.of_int n) in
      let rec limbs64 x acc =
        if Int64.equal x 0L then List.rev acc
        else
          limbs64
            (Int64.shift_right_logical x base_bits)
            (Int64.to_int (Int64.logand x (Int64.of_int base_mask)) :: acc)
      in
      make sign (Array.of_list (limbs64 m64 []))
    end
    else make sign (Array.of_list (limbs m []))
  end

let one = of_int 1
let minus_one = of_int (-1)

let sign t = t.sign
let neg t = if t.sign = 0 then t else { t with sign = -t.sign }
let abs t = if t.sign < 0 then neg t else t

let compare a b =
  if a.sign <> b.sign then compare a.sign b.sign
  else if a.sign >= 0 then mag_compare a.mag b.mag
  else mag_compare b.mag a.mag

let equal a b = compare a b = 0

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then { sign = a.sign; mag = mag_add a.mag b.mag }
  else begin
    let c = mag_compare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then { sign = a.sign; mag = mag_sub a.mag b.mag }
    else { sign = b.sign; mag = mag_sub b.mag a.mag }
  end

let sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else { sign = a.sign * b.sign; mag = mag_mul a.mag b.mag }

(** Truncated division (round toward zero), matching OCaml's [/] and
    [mod] on ints: [a = add (mul (fst (divmod a b)) b) (snd (divmod a b))]
    and the remainder has the sign of [a]. *)
let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  let qm, rm = mag_divmod a.mag b.mag in
  let q = make (a.sign * b.sign) qm in
  let r = make a.sign rm in
  (q, r)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let rec gcd a b =
  let a = abs a and b = abs b in
  if is_zero b then a else gcd b (rem a b)

let rec pow b e =
  if e < 0 then invalid_arg "Bigint.pow: negative exponent"
  else if e = 0 then one
  else
    let h = pow b (e / 2) in
    let h2 = mul h h in
    if e mod 2 = 0 then h2 else mul h2 b

let bit_length_mag mag =
  let n = Array.length mag in
  if n = 0 then 0
  else begin
    let top = mag.(n - 1) in
    let rec msb x acc = if x = 0 then acc else msb (x lsr 1) (acc + 1) in
    ((n - 1) * base_bits) + msb top 0
  end

let fits_int t = bit_length_mag t.mag <= 62

let to_int_exn t =
  if not (fits_int t) then failwith "Bigint.to_int_exn: out of range";
  let m =
    Array.to_list t.mag
    |> List.rev
    |> List.fold_left (fun acc limb -> (acc lsl base_bits) lor limb) 0
  in
  t.sign * m

let to_int_opt t = if fits_int t then Some (to_int_exn t) else None

let to_string t =
  if t.sign = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec go mag =
      if Array.length mag = 0 then ()
      else begin
        let q, r = mag_divmod_small mag 10000 in
        if Array.length q = 0 then Buffer.add_string buf (string_of_int r)
        else begin
          go q;
          Buffer.add_string buf (Printf.sprintf "%04d" r)
        end
      end
    in
    go t.mag;
    (if t.sign < 0 then "-" else "") ^ Buffer.contents buf
  end

let of_string s =
  let s = String.trim s in
  if s = "" then invalid_arg "Bigint.of_string: empty";
  let neg_sign, start =
    match s.[0] with
    | '-' -> (true, 1)
    | '+' -> (false, 1)
    | _ -> (false, 0)
  in
  if start >= String.length s then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  let ten = of_int 10 in
  for i = start to String.length s - 1 do
    let c = s.[i] in
    if c < '0' || c > '9' then invalid_arg "Bigint.of_string: bad digit";
    acc := add (mul !acc ten) (of_int (Char.code c - Char.code '0'))
  done;
  if neg_sign then neg !acc else !acc

let pp fmt t = Format.pp_print_string fmt (to_string t)

(** Number of bits in |t| (0 for zero). *)
let bit_length t = bit_length_mag t.mag
