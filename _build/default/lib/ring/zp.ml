(* Prime fields Z_p with native-int arithmetic. Used two ways:
   - fast exact verification of bilinear algorithms on random matrices
     (a Schwartz-Zippel style check complements the exact rational one);
   - the Grigoriev-flow witness experiments (Lemma 3.8) count image
     sizes of the matrix-product map over a small finite field, which
     needs cheap enumerable field elements.

   The modulus must be a prime below 2^31 so products fit in 62 bits. *)

module type P = sig
  val p : int
end

module Make (P : P) : sig
  include Sig_ring.Field with type t = int

  val p : int
  val of_int_canonical : int -> t
  val all : unit -> t list
  val random : Fmm_util.Prng.t -> t
end = struct
  let p = P.p

  let () =
    if p < 2 then invalid_arg "Zp.Make: modulus < 2";
    if p >= 1 lsl 31 then invalid_arg "Zp.Make: modulus too large";
    (* Primality by trial division: moduli here are small constants. *)
    let rec check d = d * d > p || (p mod d <> 0 && check (d + 1)) in
    if not (check 2) then invalid_arg "Zp.Make: modulus not prime"

  type t = int

  let zero = 0
  let one = 1 mod p

  let of_int n =
    let r = n mod p in
    if r < 0 then r + p else r

  let of_int_canonical = of_int

  let add a b =
    let s = a + b in
    if s >= p then s - p else s

  let neg a = if a = 0 then 0 else p - a
  let sub a b = add a (neg b)
  let mul a b = a * b mod p

  let inv a =
    if a = 0 then raise Division_by_zero;
    (* Extended Euclid on (a, p). *)
    let rec go r0 r1 s0 s1 =
      if r1 = 0 then (r0, s0) else go r1 (r0 mod r1) s1 (s0 - (r0 / r1 * s1))
    in
    let g, s = go a p 1 0 in
    assert (g = 1);
    of_int s

  let div a b = mul a (inv b)
  let equal = Int.equal
  let pp = Format.pp_print_int
  let to_string = string_of_int
  let all () = List.init p (fun i -> i)
  let random rng = Fmm_util.Prng.int rng p
end

(* Common instances. *)
module Z2 = Make (struct let p = 2 end)
module Z3 = Make (struct let p = 3 end)
module Z5 = Make (struct let p = 5 end)
module Z7 = Make (struct let p = 7 end)
module Z101 = Make (struct let p = 101 end)
module Z65537 = Make (struct let p = 65537 end)
