(* Exact rationals over Bigint, always normalized: gcd(num, den) = 1 and
   den > 0. This is the canonical field for verifying bilinear
   algorithms (Brent equations) and for checking alternative-basis
   transforms, where floating point would mask off-by-epsilon bugs. *)

type t = { num : Bigint.t; den : Bigint.t }

let make num den =
  if Bigint.is_zero den then raise Division_by_zero;
  if Bigint.is_zero num then { num = Bigint.zero; den = Bigint.one }
  else begin
    let g = Bigint.gcd num den in
    let num = Bigint.div num g and den = Bigint.div den g in
    if Bigint.sign den < 0 then { num = Bigint.neg num; den = Bigint.neg den }
    else { num; den }
  end

let zero = { num = Bigint.zero; den = Bigint.one }
let one = { num = Bigint.one; den = Bigint.one }

let of_bigint n = { num = n; den = Bigint.one }
let of_int n = of_bigint (Bigint.of_int n)

(** [of_ints a b] = a/b as an exact rational. *)
let of_ints a b = make (Bigint.of_int a) (Bigint.of_int b)

let num t = t.num
let den t = t.den

let is_zero t = Bigint.is_zero t.num
let is_integer t = Bigint.equal t.den Bigint.one

let equal a b = Bigint.equal a.num b.num && Bigint.equal a.den b.den

let compare a b =
  Bigint.compare (Bigint.mul a.num b.den) (Bigint.mul b.num a.den)

let add a b =
  make
    (Bigint.add (Bigint.mul a.num b.den) (Bigint.mul b.num a.den))
    (Bigint.mul a.den b.den)

let neg a = { a with num = Bigint.neg a.num }
let sub a b = add a (neg b)
let mul a b = make (Bigint.mul a.num b.num) (Bigint.mul a.den b.den)

let inv a =
  if is_zero a then raise Division_by_zero;
  make a.den a.num

let div a b = mul a (inv b)

let sign t = Bigint.sign t.num

let abs t = if sign t < 0 then neg t else t

let pow b e =
  if e >= 0 then { num = Bigint.pow b.num e; den = Bigint.pow b.den e }
  else inv { num = Bigint.pow b.num (-e); den = Bigint.pow b.den (-e) }

let to_float t =
  (* Good enough for display; exact when both parts fit an int. *)
  match (Bigint.to_int_opt t.num, Bigint.to_int_opt t.den) with
  | Some n, Some d -> float_of_int n /. float_of_int d
  | _ ->
    float_of_string (Bigint.to_string t.num)
    /. float_of_string (Bigint.to_string t.den)

let to_string t =
  if is_integer t then Bigint.to_string t.num
  else Bigint.to_string t.num ^ "/" ^ Bigint.to_string t.den

let pp fmt t = Format.pp_print_string fmt (to_string t)

(** The field instance for functorized consumers. *)
module Field :
  Sig_ring.Field with type t = t = struct
  type nonrec t = t

  let zero = zero
  let one = one
  let add = add
  let sub = sub
  let neg = neg
  let mul = mul
  let of_int = of_int
  let equal = equal
  let pp = pp
  let to_string = to_string
  let inv = inv
  let div = div
end
