lib/ring/bigint.ml: Array Buffer Char Format Int64 List Printf String
