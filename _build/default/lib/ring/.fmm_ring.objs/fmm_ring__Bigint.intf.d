lib/ring/bigint.mli: Format
