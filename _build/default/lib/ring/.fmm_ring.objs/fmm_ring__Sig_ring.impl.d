lib/ring/sig_ring.ml: Bigint Float Format Int
