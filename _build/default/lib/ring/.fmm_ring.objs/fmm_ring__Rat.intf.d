lib/ring/rat.mli: Bigint Format Sig_ring
