lib/ring/zp.ml: Fmm_util Format Int List Sig_ring
