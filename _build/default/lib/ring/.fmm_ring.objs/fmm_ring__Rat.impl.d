lib/ring/rat.ml: Bigint Format Sig_ring
