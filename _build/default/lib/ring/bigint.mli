(** Arbitrary-precision signed integers (sign + magnitude, base 2{^15}
    limbs), implemented from scratch — the sealed environment has no
    zarith. Exactness matters: the Brent-equation verifier and the
    Grigoriev-flow witnesses multiply long chains of rationals whose
    numerators overflow 63-bit ints even though algorithm coefficients
    are tiny. *)

type t

val zero : t
val one : t
val minus_one : t

val is_zero : t -> bool
val sign : t -> int
(** -1, 0, or +1. *)

val of_int : int -> t
(** Total, including [min_int]. *)

val of_string : string -> t
(** Decimal, with optional sign. Raises [Invalid_argument] on bad
    input. *)

val to_string : t -> string
(** Decimal. *)

val to_int_opt : t -> int option
(** [Some n] when the value fits a 62-bit native int. *)

val to_int_exn : t -> int
(** Raises [Failure] when out of range. *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** Truncated division (round toward zero), matching OCaml's [/] and
    [mod] on ints: [a = q*b + r] with [r] carrying the sign of [a] and
    [|r| < |b|]. Raises [Division_by_zero]. *)

val div : t -> t -> t
val rem : t -> t -> t

val gcd : t -> t -> t
(** Nonnegative; [gcd 0 b = |b|]. *)

val pow : t -> int -> t
(** Raises [Invalid_argument] on negative exponents. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val bit_length : t -> int
(** Bits in [|t|]; 0 for zero. *)

val pp : Format.formatter -> t -> unit
