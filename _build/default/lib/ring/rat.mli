(** Exact rationals over {!Bigint}, always normalized (coprime, positive
    denominator) — the canonical field for verifying bilinear algorithms
    and basis transforms, where floating point would mask
    off-by-epsilon bugs. *)

type t

val zero : t
val one : t

val make : Bigint.t -> Bigint.t -> t
(** [make num den], normalized. Raises [Division_by_zero] on zero
    denominator. *)

val of_bigint : Bigint.t -> t
val of_int : int -> t

val of_ints : int -> int -> t
(** [of_ints a b] = a/b. *)

val num : t -> Bigint.t
val den : t -> Bigint.t

val is_zero : t -> bool
val is_integer : t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t

val inv : t -> t
(** Raises [Division_by_zero] on zero. *)

val div : t -> t -> t
val sign : t -> int
val abs : t -> t

val pow : t -> int -> t
(** Negative exponents invert (raising on zero base). *)

val to_float : t -> float
(** For display; approximate on huge values. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** The field instance for functorized consumers ({!Fmm_matrix.Matrix},
    {!Fmm_bilinear.Algorithm}, ...). *)
module Field : Sig_ring.Field with type t = t
