lib/abmm/abmm_cdag.mli: Fmm_bilinear Fmm_graph Fmm_machine Fmm_ring Hashtbl
