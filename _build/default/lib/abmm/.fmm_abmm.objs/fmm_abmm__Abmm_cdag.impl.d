lib/abmm/abmm_cdag.ml: Array Fmm_bilinear Fmm_cdag Fmm_graph Fmm_machine Fmm_ring Fmm_util Hashtbl List Option Printf
