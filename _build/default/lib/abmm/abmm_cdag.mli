(** The complete CDAG of Algorithm 1 (alternative-basis matrix
    multiplication): Kronecker-power basis transforms phi(A) and
    psi(B) as explicit log(n)-level circuits, the bilinear core's
    H^{n x n}, and the inverse transform nu^-1 — one workload whose
    machine-model execution covers the whole pipeline, so Theorem 4.1's
    premise (transform I/O negligible) is observable on real simulated
    schedules. *)

type stage = Phi | Psi | Core | Nu_inv

val stage_to_string : stage -> string

type t = {
  graph : Fmm_graph.Digraph.t;
  n : int;
  a_inputs : int array;
  b_inputs : int array;
  outputs : int array;
  stage_of : stage array;
  is_mult : bool array;
  coeffs : (int * int, int) Hashtbl.t;
  is_primary_input : bool array;
}

val build : Fmm_bilinear.Alt_basis.t -> n:int -> t
(** 2x2 cores only; [n] a power of two. *)

val workload : t -> Fmm_machine.Workload.t

val stage_census : t -> (string * int) list
(** Vertex counts per pipeline stage (primary inputs excluded). *)

val stage_compute_shares :
  t -> Fmm_machine.Trace.t -> (string * int * float) list
(** Per-stage (name, compute events, share) of an executed trace — the
    Theorem 4.1 premise, measured. *)

(** Evaluate the full pipeline circuit; the outputs must equal
    vec(A . B). *)
module Eval (R : Fmm_ring.Sig_ring.S) : sig
  val run : t -> R.t array -> R.t array -> R.t array
end

module Eval_q : sig
  val run :
    t -> Fmm_ring.Rat.t array -> Fmm_ring.Rat.t array -> Fmm_ring.Rat.t array
end
