(* The complete CDAG of Algorithm 1 (alternative-basis matrix
   multiplication): the Kronecker-power basis transforms phi(A), psi(B)
   as explicit log(n)-level circuits, the bilinear core's H^{n x n},
   and the inverse transform nu^-1 on the result — one workload whose
   machine-model execution covers the WHOLE pipeline, so the Theorem
   4.1 premise (transform I/O negligible) can be observed on real
   simulated schedules rather than from operation counts alone.

   Each transform level mixes one bit position of the row and column
   indices through the 4x4 base map (the Kronecker power factorizes
   level by level); a stitch edge (coefficient 1, a copy) connects the
   last transform level to the core's input vertices. *)

type stage = Phi | Psi | Core | Nu_inv

let stage_to_string = function
  | Phi -> "phi"
  | Psi -> "psi"
  | Core -> "core"
  | Nu_inv -> "nu-inv"

type t = {
  graph : Fmm_graph.Digraph.t;
  n : int;
  a_inputs : int array;
  b_inputs : int array;
  outputs : int array;
  stage_of : stage array; (* stage of every non-(A/B-)input vertex *)
  is_mult : bool array;
  coeffs : (int * int, int) Hashtbl.t;
  is_primary_input : bool array;
}

(* Build the log(n)-level Kronecker-power circuit of [base] (a 4x4
   integer map on 2x2 block structure) applied to an n x n value whose
   current entry vertices are [entries] (row-major). Returns the final
   level's vertex ids. *)
let transform_levels g ~roles ~coeffs ~stage ~base ~n entries =
  let levels = Fmm_util.Combinat.log2_exact n in
  let current = ref (Array.copy entries) in
  for l = 0 to levels - 1 do
    let next = Array.make (n * n) (-1) in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let bi = (i lsr l) land 1 and bj = (j lsr l) land 1 in
        let v = Fmm_graph.Digraph.add_vertex g in
        Fmm_util.Vec.push roles stage;
        let row = base.((2 * bi) + bj) in
        Array.iteri
          (fun col c ->
            if c <> 0 then begin
              let p = col / 2 and q = col mod 2 in
              let src_i = (i land lnot (1 lsl l)) lor (p lsl l) in
              let src_j = (j land lnot (1 lsl l)) lor (q lsl l) in
              let src = !current.((src_i * n) + src_j) in
              Fmm_graph.Digraph.add_edge g src v;
              Hashtbl.replace coeffs (src, v) c
            end)
          row;
        next.((i * n) + j) <- v
      done
    done;
    current := next
  done;
  !current

let build (ab : Fmm_bilinear.Alt_basis.t) ~n =
  let core_alg = Fmm_bilinear.Alt_basis.core ab in
  let n0, m0, k0 = Fmm_bilinear.Algorithm.dims core_alg in
  if (n0, m0, k0) <> (2, 2, 2) then
    invalid_arg "Abmm_cdag.build: 2x2 cores only";
  if not (Fmm_util.Combinat.is_power_of ~base:2 n) then
    invalid_arg "Abmm_cdag.build: n must be a power of two";
  let g = Fmm_graph.Digraph.create ~capacity:1024 () in
  let roles = Fmm_util.Vec.create ~dummy:Core in
  let coeffs = Hashtbl.create 1024 in
  (* primary inputs *)
  let a_inputs =
    Array.init (n * n) (fun _ ->
        let v = Fmm_graph.Digraph.add_vertex g in
        Fmm_util.Vec.push roles Phi;
        v)
  in
  let b_inputs =
    Array.init (n * n) (fun _ ->
        let v = Fmm_graph.Digraph.add_vertex g in
        Fmm_util.Vec.push roles Psi;
        v)
  in
  (* forward transforms *)
  let phi_out =
    transform_levels g ~roles ~coeffs ~stage:Phi
      ~base:(Fmm_bilinear.Alt_basis.phi ab) ~n a_inputs
  in
  let psi_out =
    transform_levels g ~roles ~coeffs ~stage:Psi
      ~base:(Fmm_bilinear.Alt_basis.psi ab) ~n b_inputs
  in
  (* core H^{n x n}: build separately, copy into g, stitch *)
  let core = Fmm_cdag.Cdag.build core_alg ~n in
  let core_n = Fmm_cdag.Cdag.n_vertices core in
  let offset = Fmm_graph.Digraph.n_vertices g in
  let mult_pending = ref [] in
  for v = 0 to core_n - 1 do
    let id = Fmm_graph.Digraph.add_vertex g in
    Fmm_util.Vec.push roles Core;
    (match Fmm_cdag.Cdag.role core v with
    | Fmm_cdag.Cdag.Mult -> mult_pending := id :: !mult_pending
    | _ -> ());
    assert (id = offset + v)
  done;
  let core_graph = Fmm_cdag.Cdag.graph core in
  for v = 0 to core_n - 1 do
    List.iter
      (fun w ->
        Fmm_graph.Digraph.add_edge g (offset + v) (offset + w);
        match Fmm_cdag.Cdag.edge_coeff core v w with
        | Some c -> Hashtbl.replace coeffs (offset + v, offset + w) c
        | None -> ())
      (Fmm_graph.Digraph.out_neighbors core_graph v)
  done;
  (* stitch: transform outputs feed the core's (copied) input vertices *)
  Array.iteri
    (fun idx src ->
      let dst = offset + (Fmm_cdag.Cdag.a_inputs core).(idx) in
      Fmm_graph.Digraph.add_edge g src dst;
      Hashtbl.replace coeffs (src, dst) 1)
    phi_out;
  Array.iteri
    (fun idx src ->
      let dst = offset + (Fmm_cdag.Cdag.b_inputs core).(idx) in
      Fmm_graph.Digraph.add_edge g src dst;
      Hashtbl.replace coeffs (src, dst) 1)
    psi_out;
  (* inverse transform on the core's outputs *)
  let core_out = Array.map (fun v -> offset + v) (Fmm_cdag.Cdag.outputs core) in
  let outputs =
    transform_levels g ~roles ~coeffs ~stage:Nu_inv
      ~base:(Fmm_bilinear.Alt_basis.nu_inv ab) ~n core_out
  in
  let total = Fmm_graph.Digraph.n_vertices g in
  let stage_of = Fmm_util.Vec.to_array roles in
  let is_mult = Array.make total false in
  List.iter (fun v -> is_mult.(v) <- true) !mult_pending;
  let is_primary_input = Array.make total false in
  Array.iter (fun v -> is_primary_input.(v) <- true) a_inputs;
  Array.iter (fun v -> is_primary_input.(v) <- true) b_inputs;
  { graph = g; n; a_inputs; b_inputs; outputs; stage_of; is_mult; coeffs;
    is_primary_input }

let workload t =
  Fmm_machine.Workload.make
    ~name:(Printf.sprintf "ABMM %dx%d" t.n t.n)
    ~graph:t.graph
    ~inputs:(Array.append t.a_inputs t.b_inputs)
    ~outputs:t.outputs ()

let stage_census t =
  let counts = [ (Phi, ref 0); (Psi, ref 0); (Core, ref 0); (Nu_inv, ref 0) ] in
  Array.iteri
    (fun v s -> if not t.is_primary_input.(v) then incr (List.assoc s counts))
    t.stage_of;
  List.map (fun (s, r) -> (stage_to_string s, !r)) counts

(** Share of Compute events per stage in a trace (the Theorem 4.1
    premise, measured on the executed schedule). *)
let stage_compute_shares t (trace : Fmm_machine.Trace.t) =
  let totals = Hashtbl.create 4 in
  List.iter
    (fun ev ->
      match ev with
      | Fmm_machine.Trace.Compute v ->
        let s = stage_to_string t.stage_of.(v) in
        Hashtbl.replace totals s (1 + Option.value ~default:0 (Hashtbl.find_opt totals s))
      | _ -> ())
    trace;
  let all = Hashtbl.fold (fun _ c acc -> acc + c) totals 0 in
  List.map
    (fun s ->
      let c = Option.value ~default:0 (Hashtbl.find_opt totals s) in
      (s, c, if all = 0 then 0. else float_of_int c /. float_of_int all))
    [ "phi"; "psi"; "core"; "nu-inv" ]

(* --- semantic evaluation --- *)

module Eval (R : Fmm_ring.Sig_ring.S) = struct
  (** Evaluate the full ABMM circuit; the result must equal vec(A.B). *)
  let run t (a_vals : R.t array) (b_vals : R.t array) =
    if Array.length a_vals <> t.n * t.n || Array.length b_vals <> t.n * t.n
    then invalid_arg "Abmm_cdag.Eval.run: input length mismatch";
    let order =
      match Fmm_graph.Digraph.topo_sort t.graph with
      | Some o -> o
      | None -> failwith "Abmm_cdag.Eval.run: cycle"
    in
    let values = Array.make (Fmm_graph.Digraph.n_vertices t.graph) R.zero in
    Array.iteri (fun i v -> values.(v) <- a_vals.(i)) t.a_inputs;
    Array.iteri (fun i v -> values.(v) <- b_vals.(i)) t.b_inputs;
    List.iter
      (fun v ->
        if not t.is_primary_input.(v) then
          if t.is_mult.(v) then begin
            match Fmm_graph.Digraph.in_neighbors t.graph v with
            | [ x; y ] -> values.(v) <- R.mul values.(x) values.(y)
            | _ -> failwith "Abmm_cdag.Eval.run: malformed mult vertex"
          end
          else begin
            let acc = ref R.zero in
            List.iter
              (fun src ->
                let c = Hashtbl.find t.coeffs (src, v) in
                acc := R.add !acc (R.mul (R.of_int c) values.(src)))
              (Fmm_graph.Digraph.in_neighbors t.graph v);
            values.(v) <- !acc
          end)
      order;
    Array.map (fun v -> values.(v)) t.outputs
end

module Eval_q = Eval (Fmm_ring.Rat.Field)
