(* The CDAG of unpivoted LU factorization (right-looking Gaussian
   elimination) — the testbed for the paper's closing conjecture
   (Section V): "recomputation cannot reduce communication cost
   (asymptotically) ... for direct linear algebra algorithms".

   Dataflow, for k = 0 .. n-2:
     l[i][k]      = a^{(k)}[i][k] / a^{(k)}[k][k]          (i > k)
     a^{(k+1)}[i][j] = a^{(k)}[i][j] - l[i][k] * a^{(k)}[k][j]   (i, j > k)

   Each update vertex depends on three values (the running entry, the
   multiplier, the pivot-row entry); each multiplier vertex on two.
   Outputs are the n(n+1)/2 final U entries and the n(n-1)/2
   multipliers (the L entries). |V| = Theta(n^3): the classic
   Omega(n^3 / sqrt M) direct-linear-algebra communication regime. *)

type t = {
  graph : Fmm_graph.Digraph.t;
  n : int;
  inputs : int array; (* the n^2 original entries *)
  outputs : int array; (* L (strict lower) and U (upper) entries *)
  l_vertices : int array array; (* l_vertices.(i).(k), i > k *)
}

let build ~n =
  if n < 2 then invalid_arg "Lu_cdag.build: n must be >= 2";
  let g = Fmm_graph.Digraph.create ~capacity:(n * n * n) () in
  (* current.(i).(j) = vertex currently holding a^{(k)}[i][j] *)
  let inputs = Array.init (n * n) (fun _ -> Fmm_graph.Digraph.add_vertex g) in
  let current = Array.init n (fun i -> Array.init n (fun j -> inputs.((i * n) + j))) in
  let l_vertices = Array.make_matrix n n (-1) in
  for k = 0 to n - 2 do
    for i = k + 1 to n - 1 do
      (* multiplier l[i][k] = a[i][k] / a[k][k] *)
      let l = Fmm_graph.Digraph.add_vertex g in
      Fmm_graph.Digraph.add_edge g current.(i).(k) l;
      Fmm_graph.Digraph.add_edge g current.(k).(k) l;
      l_vertices.(i).(k) <- l;
      for j = k + 1 to n - 1 do
        let upd = Fmm_graph.Digraph.add_vertex g in
        Fmm_graph.Digraph.add_edge g current.(i).(j) upd;
        Fmm_graph.Digraph.add_edge g l upd;
        Fmm_graph.Digraph.add_edge g current.(k).(j) upd;
        current.(i).(j) <- upd
      done
    done
  done;
  let outputs = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if j >= i then outputs := current.(i).(j) :: !outputs (* U entries *)
      else outputs := l_vertices.(i).(j) :: !outputs (* L entries *)
    done
  done;
  { graph = g; n; inputs; outputs = Array.of_list (List.rev !outputs); l_vertices }

let n_vertices t = Fmm_graph.Digraph.n_vertices t.graph

let workload t =
  Fmm_machine.Workload.make
    ~name:(Printf.sprintf "LU %dx%d" t.n t.n)
    ~graph:t.graph ~inputs:t.inputs ~outputs:t.outputs ()

(** The natural right-looking elimination order. *)
let elimination_order t =
  match Fmm_graph.Digraph.topo_sort t.graph with
  | Some o ->
    let inp = Array.make (n_vertices t) false in
    Array.iter (fun v -> inp.(v) <- true) t.inputs;
    List.filter (fun v -> not inp.(v)) o
  | None -> failwith "Lu_cdag.elimination_order: cycle"

(** The direct-linear-algebra lower bound Omega(n^3 / sqrt M) (Ballard
    et al. [6], quoted in the paper's introduction), constant-free. *)
let io_lower_bound ~n ~m =
  if n <= 0 || m <= 0 then invalid_arg "Lu_cdag.io_lower_bound";
  float_of_int (n * n * n) /. sqrt (float_of_int m)

(** Small pebbling instance for the recomputation question on LU. *)
let pebble_game ~n ~red_limit =
  let t = build ~n in
  Fmm_pebble.Pebble.make ~graph:t.graph
    ~inputs:(Array.to_list t.inputs)
    ~outputs:(Array.to_list t.outputs)
    ~red_limit

(* --- semantic check: the DAG computes the LU factorization --- *)

module Eval (F : Fmm_ring.Sig_ring.Field) = struct
  module M = Fmm_matrix.Matrix.Make (F)

  (** Evaluate the elimination circuit and return (L, U); the test
      suite checks L * U = A (for matrices with nonzero leading
      minors). *)
  let run t (a : M.t) =
    let n = t.n in
    if M.rows a <> n || M.cols a <> n then invalid_arg "Lu_cdag.Eval.run: shape";
    (* replay the same recurrence the builder encoded *)
    let current = Array.init n (fun i -> Array.init n (fun j -> M.get a i j)) in
    let l = Array.make_matrix n n F.zero in
    for k = 0 to n - 2 do
      for i = k + 1 to n - 1 do
        l.(i).(k) <- F.div current.(i).(k) current.(k).(k);
        for j = k + 1 to n - 1 do
          current.(i).(j) <-
            F.sub current.(i).(j) (F.mul l.(i).(k) current.(k).(j))
        done
      done
    done;
    let lmat =
      M.init n n (fun i j ->
          if i = j then F.one else if j < i then l.(i).(j) else F.zero)
    in
    let umat = M.init n n (fun i j -> if j >= i then current.(i).(j) else F.zero) in
    (lmat, umat)
end

module Eval_q = Eval (Fmm_ring.Rat.Field)
