lib/lu/lu_cdag.ml: Array Fmm_graph Fmm_machine Fmm_matrix Fmm_pebble Fmm_ring List Printf
