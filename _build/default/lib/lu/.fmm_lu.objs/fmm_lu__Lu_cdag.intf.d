lib/lu/lu_cdag.mli: Fmm_graph Fmm_machine Fmm_matrix Fmm_pebble Fmm_ring
