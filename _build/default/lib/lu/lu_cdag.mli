(** The CDAG of unpivoted LU factorization — the testbed for the
    paper's closing conjecture (Section V): recomputation cannot reduce
    communication for direct linear algebra either. Built from the
    right-looking elimination recurrence; Theta(n^3) vertices; runs on
    the same machine models and pebbler as the multiplication CDAGs. *)

type t = {
  graph : Fmm_graph.Digraph.t;
  n : int;
  inputs : int array;
  outputs : int array;  (** the L (strict lower) and U (upper) entries *)
  l_vertices : int array array;  (** [l_vertices.(i).(k)], i > k *)
}

val build : n:int -> t
(** Raises for [n < 2]. *)

val n_vertices : t -> int
val workload : t -> Fmm_machine.Workload.t

val elimination_order : t -> int list
(** The natural right-looking order. *)

val io_lower_bound : n:int -> m:int -> float
(** The direct-linear-algebra bound Omega(n^3 / sqrt M) [6],
    constant-free. *)

val pebble_game : n:int -> red_limit:int -> Fmm_pebble.Pebble.game
(** Update vertices have in-degree 3, so [red_limit >= 4] is required
    for solvability. *)

(** Evaluate the elimination circuit over a field; returns (L, U) with
    L unit lower triangular and L U = A (nonzero leading minors
    assumed). *)
module Eval (F : Fmm_ring.Sig_ring.Field) : sig
  module M : module type of Fmm_matrix.Matrix.Make (F)

  val run : t -> M.t -> M.t * M.t
end

module Eval_q : sig
  module M : module type of Fmm_matrix.Matrix.Make (Fmm_ring.Rat.Field)

  val run : t -> M.t -> M.t * M.t
end
