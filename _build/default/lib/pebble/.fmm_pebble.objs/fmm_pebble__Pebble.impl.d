lib/pebble/pebble.ml: Fmm_graph Hashtbl List
