lib/pebble/pebble_dags.mli: Fmm_bilinear Fmm_cdag Fmm_graph Pebble
