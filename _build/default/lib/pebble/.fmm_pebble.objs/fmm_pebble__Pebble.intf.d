lib/pebble/pebble.mli: Fmm_graph
