lib/pebble/pebble_dags.ml: Array Fmm_bilinear Fmm_cdag Fmm_graph Fmm_util Hashtbl List Pebble
