(** The red-blue pebble game of Hong and Kung [2], with an explicit
    recomputation switch. Red pebbles = fast-memory slots (at most
    [red_limit]); blue pebbles = slow memory. R1 load / R2 store cost
    one I/O; R3 compute and R4 delete are free. The game starts with
    blue pebbles on the inputs and ends with blue pebbles on all
    outputs.

    Recomputation is R3 fired again on a previously pebbled vertex;
    [allow_recompute:false] forbids it, so the two optimal costs can be
    compared exactly — the paper's central question in its purest
    combinatorial form. *)

type game = {
  graph : Fmm_graph.Digraph.t;
  inputs : int list;
  outputs : int list;
  red_limit : int;
}

val make :
  graph:Fmm_graph.Digraph.t ->
  inputs:int list ->
  outputs:int list ->
  red_limit:int ->
  game
(** Validates the instance. Raises [Invalid_argument] on red_limit < 1,
    inputs with predecessors, or graphs above the exact solver's size
    cap (30 vertices). *)

type state = { red : int; blue : int; computed : int }
(** Bitmask state (graphs have <= 30 vertices). *)

type move = Load of int | Store of int | Compute of int | Delete of int

val successors :
  game -> allow_recompute:bool -> state -> (move * int * state) list
(** Legal moves with their I/O cost, usefulness-pruned (moves that
    cannot be part of any minimal play are dropped). *)

val initial_state : game -> state
val is_goal : game -> state -> bool

val min_io : ?max_states:int -> game -> allow_recompute:bool -> int option
(** Exact minimum I/O by 0-1 BFS over game states; [None] when
    [max_states] is exhausted first (or the game is unsolvable, e.g.
    red_limit below the operand width). *)

val compare_recomputation : ?max_states:int -> game -> int option * int option
(** (optimum with recomputation, optimum without). *)
