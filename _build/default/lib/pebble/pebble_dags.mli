(** Concrete pebbling instances for the recomputation experiments. *)

val recomputation_wins : unit -> Pebble.game
(** A 10-vertex DAG engineered so the optimal pebbling WITH
    recomputation strictly beats the optimum WITHOUT (8 vs 9 I/O at
    red_limit 3): v = f(x) is used on both sides of two
    capacity-hogging subcomputations, so it is forced out of red
    between its uses; recomputing it (one load of x) beats spilling it
    (a store plus a load). A miniature of Savage's S-span phenomenon
    (paper Section V). *)

val of_cdag_outputs :
  Fmm_cdag.Cdag.t -> outputs:int list -> red_limit:int -> Pebble.game
(** The ancestor closure of chosen CDAG outputs, remapped to a compact
    id space. Raises if the closure exceeds the exact solver's cap. *)

val encoder_game :
  Fmm_bilinear.Algorithm.t ->
  Fmm_cdag.Encoder.side ->
  red_limit:int ->
  Pebble.game
(** An encoder graph as a pebbling instance: bank all encoded operands
    starting from blue inputs. *)

val random_dag :
  seed:int ->
  layers:int ->
  width:int ->
  density:float ->
  Fmm_graph.Digraph.t * int list * int list
(** Random layered DAG (graph, inputs, outputs) for separation
    searches; consecutive layers are kept connected. *)
