(* Concrete pebbling instances:

   - [recomputation_wins]: a 10-vertex DAG engineered so that the
     optimal red-blue pebbling WITH recomputation beats the optimal one
     WITHOUT (8 vs 9 I/O at red_limit 3) — a miniature of Savage's
     S-span phenomenon, showing the paper's question is not vacuous:
     recomputation genuinely helps for some CDAGs (Section V), just not
     for fast matrix multiplication.

   - [of_cdag_output]: the ancestor closure of one output of a CDAG
     (e.g. C11 of Strassen's H^{2x2}), small enough for the exact
     solver — the instances on which with/without coincide.

   - [encoder_game]: an encoder graph as a pebbling instance. *)

module D = Fmm_graph.Digraph

(* inputs x, y1, y2, z1, z2; v = f(x); om1 = g(y1,y2); om2 = h(z1,z2);
   outputs o1 = p(v, om1), o2 = q(v, om2). With red_limit 3, v is forced
   out of red between its two uses; recomputing it (one load of x)
   beats spilling it (a store plus a load). *)
let recomputation_wins () =
  let g = D.create () in
  let ids = D.add_vertices g 10 in
  let x = ids.(0)
  and y1 = ids.(1)
  and y2 = ids.(2)
  and z1 = ids.(3)
  and z2 = ids.(4)
  and v = ids.(5)
  and om1 = ids.(6)
  and om2 = ids.(7)
  and o1 = ids.(8)
  and o2 = ids.(9) in
  D.add_edge g x v;
  D.add_edge g y1 om1;
  D.add_edge g y2 om1;
  D.add_edge g z1 om2;
  D.add_edge g z2 om2;
  D.add_edge g v o1;
  D.add_edge g om1 o1;
  D.add_edge g v o2;
  D.add_edge g om2 o2;
  Pebble.make ~graph:g
    ~inputs:[ x; y1; y2; z1; z2 ]
    ~outputs:[ o1; o2 ] ~red_limit:3

(** Ancestor closure of chosen outputs of a CDAG, remapped to a compact
    id space, as a pebbling game. Fails if the closure exceeds the
    exact solver's size limit. *)
let of_cdag_outputs cdag ~outputs ~red_limit =
  let g = Fmm_cdag.Cdag.graph cdag in
  let anc = D.coreachable g outputs in
  let keep = ref [] in
  Array.iteri (fun v is_anc -> if is_anc then keep := v :: !keep) anc;
  let keep = List.rev !keep in
  let remap = Hashtbl.create 64 in
  List.iteri (fun i v -> Hashtbl.replace remap v i) keep;
  let sub = D.create () in
  ignore (D.add_vertices sub (List.length keep));
  List.iter
    (fun v ->
      List.iter
        (fun w ->
          if Hashtbl.mem remap w then
            D.add_edge sub (Hashtbl.find remap v) (Hashtbl.find remap w))
        (D.out_neighbors g v))
    keep;
  let inputs =
    List.filter_map
      (fun v ->
        match Fmm_cdag.Cdag.role cdag v with
        | Fmm_cdag.Cdag.Input_a _ | Fmm_cdag.Cdag.Input_b _ ->
          Some (Hashtbl.find remap v)
        | _ -> None)
      keep
  in
  let outputs = List.map (Hashtbl.find remap) outputs in
  Pebble.make ~graph:sub ~inputs ~outputs ~red_limit

(** An encoder graph as a pebbling instance: pebble all encoded
    operands starting from blue inputs. *)
let encoder_game alg side ~red_limit =
  let g = Fmm_cdag.Encoder.encoder_digraph alg side in
  let nx =
    match side with
    | Fmm_cdag.Encoder.A_side ->
      let n, m, _ = Fmm_bilinear.Algorithm.dims alg in
      n * m
    | Fmm_cdag.Encoder.B_side ->
      let _, m, k = Fmm_bilinear.Algorithm.dims alg in
      m * k
  in
  let t = Fmm_bilinear.Algorithm.rank alg in
  Pebble.make ~graph:g
    ~inputs:(List.init nx (fun i -> i))
    ~outputs:(List.init t (fun i -> nx + i))
    ~red_limit

(** Random layered DAG generator for the separation search bench. *)
let random_dag ~seed ~layers ~width ~density =
  let rng = Fmm_util.Prng.create ~seed in
  let g = D.create () in
  let layer_ids =
    Array.init layers (fun _ -> D.add_vertices g width)
  in
  for l = 0 to layers - 2 do
    Array.iter
      (fun dst ->
        let connected = ref false in
        Array.iter
          (fun src ->
            if Fmm_util.Prng.float rng < density then begin
              D.add_edge g src dst;
              connected := true
            end)
          layer_ids.(l);
        if not !connected then
          (* keep the DAG connected layer to layer *)
          D.add_edge g layer_ids.(l).(Fmm_util.Prng.int rng width) dst)
      layer_ids.(l + 1)
  done;
  let inputs = Array.to_list layer_ids.(0) in
  let outputs = Array.to_list layer_ids.(layers - 1) in
  (g, inputs, outputs)
