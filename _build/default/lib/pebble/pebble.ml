(* The red-blue pebble game of Hong and Kung [2] — the combinatorial
   model underlying all the I/O lower bounds in Table I, and the
   cleanest setting for the paper's question: red pebbles are fast
   memory slots (at most [red_limit] at once), blue pebbles are slow
   memory (unbounded); the rules are

   R1 (input / load):  a red pebble may be placed on any vertex
                       carrying a blue pebble             (cost 1 I/O)
   R2 (output / store): a blue pebble may be placed on any vertex
                       carrying a red pebble              (cost 1 I/O)
   R3 (compute): a red pebble may be placed on v if all predecessors
                       of v carry red pebbles             (free)
   R4 (delete): any red pebble may be removed              (free)

   The game starts with blue pebbles on the inputs and ends with blue
   pebbles on all outputs; the I/O cost is the number of R1/R2 moves.

   Recomputation is R3 fired again on a vertex pebbled before. The
   [allow_recompute] switch disables that, so optimal costs with and
   without recomputation can be compared exactly — on Strassen-family
   CDAGs they coincide (the paper's theme), while Savage-style CDAGs
   separate them (Section V's discussion). *)

type game = {
  graph : Fmm_graph.Digraph.t;
  inputs : int list;
  outputs : int list;
  red_limit : int;
}

let make ~graph ~inputs ~outputs ~red_limit =
  if red_limit < 1 then invalid_arg "Pebble.make: red_limit < 1";
  let n = Fmm_graph.Digraph.n_vertices graph in
  if n > 30 then invalid_arg "Pebble.make: graph too large for exact search (> 30)";
  List.iter
    (fun v ->
      if Fmm_graph.Digraph.in_degree graph v <> 0 then
        invalid_arg "Pebble.make: input with predecessors")
    inputs;
  { graph; inputs; outputs; red_limit }

(* State encoding: red mask, blue mask, computed mask (for the
   no-recomputation variant), all in one int each; n <= 30. *)
type state = { red : int; blue : int; computed : int }

let bit i = 1 lsl i
let mem mask i = mask land bit i <> 0
let popcount mask =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go mask 0

type move = Load of int | Store of int | Compute of int | Delete of int

(** All legal moves from a state, with usefulness pruning: placing a
    pebble (by load or compute) or storing only makes sense for a
    vertex that is a not-yet-banked output or has a successor whose
    value is not yet banked in slow memory. Pruned moves can never be
    part of a minimal play, so optimality is preserved while the
    branching factor drops sharply near the end of the game. *)
let useful game st v =
  (List.mem v game.outputs && not (mem st.blue v))
  || List.exists
       (fun s -> not (mem st.blue s))
       (Fmm_graph.Digraph.out_neighbors game.graph v)

let successors game ~allow_recompute st =
  let n = Fmm_graph.Digraph.n_vertices game.graph in
  let moves = ref [] in
  let red_count = popcount st.red in
  for v = 0 to n - 1 do
    let is_useful = useful game st v in
    (* R1: load *)
    if
      is_useful && mem st.blue v
      && (not (mem st.red v))
      && red_count < game.red_limit
    then moves := (Load v, 1, { st with red = st.red lor bit v }) :: !moves;
    (* R2: store *)
    if is_useful && mem st.red v && not (mem st.blue v) then
      moves := (Store v, 1, { st with blue = st.blue lor bit v }) :: !moves;
    (* R3: compute *)
    let preds = Fmm_graph.Digraph.in_neighbors game.graph v in
    if
      is_useful && preds <> []
      && (not (mem st.red v))
      && red_count < game.red_limit
      && List.for_all (fun p -> mem st.red p) preds
      && (allow_recompute || not (mem st.computed v))
    then
      moves :=
        ( Compute v,
          0,
          { st with red = st.red lor bit v; computed = st.computed lor bit v } )
        :: !moves;
    (* R4: delete *)
    if mem st.red v then
      moves := (Delete v, 0, { st with red = st.red land lnot (bit v) }) :: !moves
  done;
  !moves

let initial_state game =
  { red = 0; blue = List.fold_left (fun m v -> m lor bit v) 0 game.inputs; computed = 0 }

let is_goal game st = List.for_all (fun v -> mem st.blue v) game.outputs

(** Exact minimum I/O by Dijkstra over game states (0/1 edge weights,
    implemented as a bucketed deque). Returns [None] if [max_states]
    is exhausted before reaching the goal. *)
let min_io ?(max_states = 2_000_000) game ~allow_recompute =
  let start = initial_state game in
  let dist = Hashtbl.create 4096 in
  let key st = (st.red, st.blue, if allow_recompute then 0 else st.computed) in
  Hashtbl.replace dist (key start) 0;
  (* 0-1 BFS: deque with push_front for 0-cost moves *)
  let deque = ref [ (0, start) ] and deque_back = ref [] in
  let pop () =
    match !deque with
    | x :: rest ->
      deque := rest;
      Some x
    | [] -> (
      match List.rev !deque_back with
      | [] -> None
      | x :: rest ->
        deque := rest;
        deque_back := [];
        Some x)
  in
  let push_front x = deque := x :: !deque in
  let push_back x = deque_back := x :: !deque_back in
  let explored = ref 0 in
  let result = ref None in
  let rec loop () =
    if !result = None && !explored < max_states then
      match pop () with
      | None -> ()
      | Some (d, st) ->
        let k = key st in
        let best = try Hashtbl.find dist k with Not_found -> max_int in
        if d <= best then begin
          incr explored;
          if is_goal game st then result := Some d
          else
            List.iter
              (fun (_move, cost, st') ->
                let k' = key st' in
                let nd = d + cost in
                let cur = try Hashtbl.find dist k' with Not_found -> max_int in
                if nd < cur then begin
                  Hashtbl.replace dist k' nd;
                  if cost = 0 then push_front (nd, st') else push_back (nd, st')
                end)
              (successors game ~allow_recompute st)
        end;
        loop ()
  in
  loop ();
  !result

(** Compare optimal I/O with and without recomputation. *)
let compare_recomputation ?max_states game =
  let with_rc = min_io ?max_states game ~allow_recompute:true in
  let without_rc = min_io ?max_states game ~allow_recompute:false in
  (with_rc, without_rc)
