lib/bounds/bounds.mli:
