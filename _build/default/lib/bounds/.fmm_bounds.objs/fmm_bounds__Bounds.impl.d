lib/bounds/bounds.ml: Float
