(* Growable directed graph with integer vertex ids. The CDAG builder
   adds vertices during recursive construction, so the structure is
   append-only: vertices are never removed (analyses that need vertex
   deletion work on masks instead, see Dominator). *)

type t = {
  mutable n : int;
  mutable out_adj : int list array;
  mutable in_adj : int list array;
  mutable n_edges : int;
}

let create ?(capacity = 16) () =
  let capacity = max capacity 1 in
  { n = 0; out_adj = Array.make capacity []; in_adj = Array.make capacity []; n_edges = 0 }

let n_vertices g = g.n
let n_edges g = g.n_edges

let ensure_capacity g needed =
  let cap = Array.length g.out_adj in
  if needed > cap then begin
    let new_cap = max needed (2 * cap) in
    let grow arr =
      let a = Array.make new_cap [] in
      Array.blit arr 0 a 0 g.n;
      a
    in
    g.out_adj <- grow g.out_adj;
    g.in_adj <- grow g.in_adj
  end

let add_vertex g =
  ensure_capacity g (g.n + 1);
  let id = g.n in
  g.n <- g.n + 1;
  id

let add_vertices g count = Array.init count (fun _ -> add_vertex g)

let check_vertex g v =
  if v < 0 || v >= g.n then invalid_arg "Digraph: vertex id out of range"

let add_edge g u v =
  check_vertex g u;
  check_vertex g v;
  g.out_adj.(u) <- v :: g.out_adj.(u);
  g.in_adj.(v) <- u :: g.in_adj.(v);
  g.n_edges <- g.n_edges + 1

let out_neighbors g v =
  check_vertex g v;
  g.out_adj.(v)

let in_neighbors g v =
  check_vertex g v;
  g.in_adj.(v)

let out_degree g v = List.length (out_neighbors g v)
let in_degree g v = List.length (in_neighbors g v)

let sources g =
  List.filter (fun v -> g.in_adj.(v) = []) (List.init g.n (fun i -> i))

let sinks g =
  List.filter (fun v -> g.out_adj.(v) = []) (List.init g.n (fun i -> i))

(** Kahn topological sort; returns [None] if the graph has a cycle. *)
let topo_sort g =
  let indeg = Array.init g.n (fun v -> in_degree g v) in
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v queue) indeg;
  let order = ref [] in
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order := v :: !order;
    incr seen;
    List.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w queue)
      g.out_adj.(v)
  done;
  if !seen = g.n then Some (List.rev !order) else None

let is_dag g = topo_sort g <> None

(** Forward BFS from a seed set; [blocked v = true] vertices are
    impassable (they are neither visited nor traversed). Returns the
    visited mask. *)
let reachable ?(blocked = fun _ -> false) g seeds =
  let visited = Array.make (max g.n 1) false in
  let queue = Queue.create () in
  List.iter
    (fun s ->
      check_vertex g s;
      if (not (blocked s)) && not visited.(s) then begin
        visited.(s) <- true;
        Queue.add s queue
      end)
    seeds;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun w ->
        if (not visited.(w)) && not (blocked w) then begin
          visited.(w) <- true;
          Queue.add w queue
        end)
      g.out_adj.(v)
  done;
  visited

(** Backward BFS (following in-edges). *)
let coreachable ?(blocked = fun _ -> false) g seeds =
  let visited = Array.make (max g.n 1) false in
  let queue = Queue.create () in
  List.iter
    (fun s ->
      check_vertex g s;
      if (not (blocked s)) && not visited.(s) then begin
        visited.(s) <- true;
        Queue.add s queue
      end)
    seeds;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun w ->
        if (not visited.(w)) && not (blocked w) then begin
          visited.(w) <- true;
          Queue.add w queue
        end)
      g.in_adj.(v)
  done;
  visited

(** Does any path exist from a seed to a target, avoiding blocked
    vertices? *)
let has_path ?(blocked = fun _ -> false) g ~from_ ~to_ =
  let visited = reachable ~blocked g from_ in
  List.exists (fun t -> t < g.n && visited.(t)) to_

(** Longest path length (edge count) in a DAG; raises on cyclic input. *)
let longest_path_length g =
  match topo_sort g with
  | None -> invalid_arg "Digraph.longest_path_length: not a DAG"
  | Some order ->
    let dist = Array.make (max g.n 1) 0 in
    List.iter
      (fun v ->
        List.iter
          (fun w -> if dist.(v) + 1 > dist.(w) then dist.(w) <- dist.(v) + 1)
          g.out_adj.(v))
      order;
    Array.fold_left max 0 dist

(** Graphviz export. [label] and [attrs] customize vertex rendering. *)
let to_dot ?(name = "G") ?(label = string_of_int) ?(attrs = fun _ -> "") g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  for v = 0 to g.n - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  v%d [label=\"%s\"%s];\n" v (label v)
         (let a = attrs v in
          if a = "" then "" else ", " ^ a))
  done;
  for v = 0 to g.n - 1 do
    List.iter
      (fun w -> Buffer.add_string buf (Printf.sprintf "  v%d -> v%d;\n" v w))
      g.out_adj.(v)
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
