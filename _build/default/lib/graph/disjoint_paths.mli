(** Maximum vertex-disjoint path counts (Menger), for the Figure 3 /
    Lemma 3.11 experiments. *)

type spec = {
  sources : int list;
  targets : int list;
  forbidden : int list;  (** vertices paths must avoid (the Gamma set) *)
}

val max_disjoint_paths : Digraph.t -> spec -> int
(** Maximum number of vertex-disjoint source-to-target paths avoiding
    the forbidden set. Disjointness includes endpoints. *)
