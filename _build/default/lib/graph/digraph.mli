(** Growable directed graphs with integer vertex ids — the substrate
    for CDAGs, encoder graphs and pebbling instances. Vertices are
    append-only; analyses that need deletion work on blocked-vertex
    masks instead. *)

type t

val create : ?capacity:int -> unit -> t
val n_vertices : t -> int
val n_edges : t -> int

val add_vertex : t -> int
(** Returns the new vertex's id (ids are consecutive from 0). *)

val add_vertices : t -> int -> int array
(** [add_vertices g k] adds [k] vertices and returns their ids. *)

val add_edge : t -> int -> int -> unit
(** Raises [Invalid_argument] on out-of-range ids. Parallel edges are
    permitted (the CDAG builder never creates them). *)

val out_neighbors : t -> int -> int list
val in_neighbors : t -> int -> int list
val out_degree : t -> int -> int
val in_degree : t -> int -> int

val sources : t -> int list
(** Vertices with no in-edges. *)

val sinks : t -> int list

val topo_sort : t -> int list option
(** Kahn's algorithm; [None] iff the graph has a cycle. *)

val is_dag : t -> bool

val reachable : ?blocked:(int -> bool) -> t -> int list -> bool array
(** Forward BFS from a seed set; [blocked] vertices are impassable
    (neither visited nor traversed). *)

val coreachable : ?blocked:(int -> bool) -> t -> int list -> bool array
(** Backward BFS (following in-edges). *)

val has_path : ?blocked:(int -> bool) -> t -> from_:int list -> to_:int list -> bool

val longest_path_length : t -> int
(** Edge count of a longest path. Raises [Invalid_argument] on cyclic
    input. *)

val to_dot :
  ?name:string -> ?label:(int -> string) -> ?attrs:(int -> string) -> t -> string
(** Graphviz export; [attrs v] is spliced into vertex [v]'s attribute
    list. *)
