(* Maximum sets of vertex-disjoint paths (Menger's theorem), used by
   the Figure 3 / Lemma 3.11 experiments: the lemma asserts that at
   least 2r*sqrt(|Z| - 2|Gamma|) vertex-disjoint paths connect the
   inputs of H^{n x n} to intermediate inputs, avoiding Gamma. We
   compute the true maximum with a unit-vertex-capacity max-flow and
   compare it against the bound. *)

type spec = {
  sources : int list;
  targets : int list;
  forbidden : int list; (* vertices paths must avoid (the Gamma set) *)
}

(** Maximum number of vertex-disjoint source->target paths avoiding the
    forbidden set. Disjointness includes endpoints: each source/target
    carries capacity 1 as well, matching the paper's usage where the
    paths must be disjoint also at their ends. *)
let max_disjoint_paths (g : Digraph.t) { sources; targets; forbidden } =
  let n = Digraph.n_vertices g in
  if sources = [] || targets = [] then 0
  else begin
    let banned = Array.make (max n 1) false in
    List.iter (fun v -> banned.(v) <- true) forbidden;
    let f = Maxflow.create ((2 * n) + 2) in
    let super_source = 2 * n and super_sink = (2 * n) + 1 in
    for v = 0 to n - 1 do
      if not banned.(v) then Maxflow.add_edge f (2 * v) ((2 * v) + 1) 1
    done;
    for v = 0 to n - 1 do
      if not banned.(v) then
        List.iter
          (fun w ->
            if not banned.(w) then
              Maxflow.add_edge f ((2 * v) + 1) (2 * w) Vertex_cut.inf_cap)
          (Digraph.out_neighbors g v)
    done;
    List.iter
      (fun s -> if not banned.(s) then Maxflow.add_edge f super_source (2 * s) 1)
      sources;
    List.iter
      (fun t ->
        if not banned.(t) then Maxflow.add_edge f ((2 * t) + 1) super_sink 1)
      targets;
    Maxflow.max_flow f ~source:super_source ~sink:super_sink
  end
