(* Minimum vertex cuts and exact minimum dominator sets.

   Definition 2.3 of the paper: Gamma dominates V' in G when every path
   from the input vertices of G to V' contains a vertex of Gamma.
   Vertices of Gamma may be inputs or members of V' themselves, so a
   minimum dominator set is exactly a minimum vertex cut in the
   split-vertex reduction where EVERY vertex (including endpoints) has
   capacity 1:

     v  ~>  v_in --1--> v_out ;  edge (u,w)  ~>  u_out --inf--> w_in
     super-source --inf--> s_in for each input s
     t_out --inf--> super-sink for each target t

   Menger duality: the min cut equals the max number of vertex-disjoint
   input->target paths (disjoint including endpoints). Both numbers and
   witnesses come out of one Dinic run. *)

let inf_cap = max_int / 4

type result = {
  size : int; (* min dominator size = max disjoint path count *)
  cut : int list; (* vertex ids forming a minimum dominator set *)
}

(** [min_dominator g ~sources ~targets] computes a minimum dominator
    set for [targets] with respect to paths from [sources] in the
    directed graph [g]. *)
let min_dominator (g : Digraph.t) ~sources ~targets =
  let n = Digraph.n_vertices g in
  if sources = [] || targets = [] then { size = 0; cut = [] }
  else begin
    (* ids: v_in = 2v, v_out = 2v+1, source = 2n, sink = 2n+1 *)
    let f = Maxflow.create ((2 * n) + 2) in
    let super_source = 2 * n and super_sink = (2 * n) + 1 in
    for v = 0 to n - 1 do
      Maxflow.add_edge f (2 * v) ((2 * v) + 1) 1
    done;
    for v = 0 to n - 1 do
      List.iter
        (fun w -> Maxflow.add_edge f ((2 * v) + 1) (2 * w) inf_cap)
        (Digraph.out_neighbors g v)
    done;
    List.iter (fun s -> Maxflow.add_edge f super_source (2 * s) inf_cap) sources;
    List.iter (fun t -> Maxflow.add_edge f ((2 * t) + 1) super_sink inf_cap) targets;
    let size = Maxflow.max_flow f ~source:super_source ~sink:super_sink in
    (* A vertex is in the cut iff its in-half is reachable from the
       source in the residual graph but its out-half is not. *)
    let side = Maxflow.min_cut_source_side f ~source:super_source in
    let cut = ref [] in
    for v = 0 to n - 1 do
      if side.(2 * v) && not side.((2 * v) + 1) then cut := v :: !cut
    done;
    { size; cut = List.rev !cut }
  end

(** Check the dominator property directly by path search: no
    source-to-target path may avoid [gamma]. *)
let is_dominator (g : Digraph.t) ~sources ~targets ~gamma =
  let in_gamma = Array.make (max (Digraph.n_vertices g) 1) false in
  List.iter (fun v -> in_gamma.(v) <- true) gamma;
  not
    (Digraph.has_path g ~from_:sources ~to_:targets ~blocked:(fun v ->
         in_gamma.(v)))

(** Exhaustive minimum dominator for small graphs: tries subsets of
    [candidates] in increasing size. Exponential — cross-validates the
    flow-based computation in tests. *)
let min_dominator_brute (g : Digraph.t) ~sources ~targets ~candidates =
  let cand = Array.of_list candidates in
  let n = Array.length cand in
  if n > 20 then invalid_arg "Vertex_cut.min_dominator_brute: too many candidates";
  let rec try_size k =
    if k > n then None
    else begin
      let found =
        List.find_opt
          (fun idxs ->
            let gamma = List.map (fun i -> cand.(i)) idxs in
            is_dominator g ~sources ~targets ~gamma)
          (Fmm_util.Combinat.subsets_of_size n k)
      in
      match found with
      | Some idxs -> Some (List.map (fun i -> cand.(i)) idxs)
      | None -> try_size (k + 1)
    end
  in
  try_size 0
