(* Maximum bipartite matching. The lemma engine evaluates Lemma 3.1 by
   computing, for every subset Y' of encoder outputs, the maximum
   matching between Y' and the inputs X — Hopcroft-Karp is overkill for
   |Y| = 7 graphs but the same code runs the scaled experiments on
   Kronecker powers of encoders where X and Y have thousands of
   vertices. A brute-force augmenting-path matcher cross-validates it
   in the test suite. *)

type bipartite = {
  nx : int;
  ny : int;
  adj : int list array; (* adj.(x) = neighbors of x in Y *)
}

let make_bipartite ~nx ~ny edges =
  let adj = Array.make (max nx 1) [] in
  List.iter
    (fun (x, y) ->
      if x < 0 || x >= nx || y < 0 || y >= ny then
        invalid_arg "Matching.make_bipartite: endpoint out of range";
      adj.(x) <- y :: adj.(x))
    edges;
  { nx; ny; adj }

(** Restrict to subsets of each side (ids keep their original values). *)
let restrict g ~xs ~ys =
  let x_ok = Array.make g.nx false and y_ok = Array.make g.ny false in
  List.iter (fun x -> x_ok.(x) <- true) xs;
  List.iter (fun y -> y_ok.(y) <- true) ys;
  let adj =
    Array.init g.nx (fun x ->
        if x_ok.(x) then List.filter (fun y -> y_ok.(y)) g.adj.(x) else [])
  in
  { g with adj }

let infinity_dist = max_int

(** Hopcroft-Karp. Returns (size, match_x, match_y) where
    match_x.(x) = matched y or -1. *)
let hopcroft_karp g =
  let match_x = Array.make (max g.nx 1) (-1) in
  let match_y = Array.make (max g.ny 1) (-1) in
  let dist = Array.make (max g.nx 1) infinity_dist in
  let bfs () =
    let queue = Queue.create () in
    for x = 0 to g.nx - 1 do
      if match_x.(x) = -1 then begin
        dist.(x) <- 0;
        Queue.add x queue
      end
      else dist.(x) <- infinity_dist
    done;
    let found = ref false in
    while not (Queue.is_empty queue) do
      let x = Queue.pop queue in
      List.iter
        (fun y ->
          match match_y.(y) with
          | -1 -> found := true
          | x' ->
            if dist.(x') = infinity_dist then begin
              dist.(x') <- dist.(x) + 1;
              Queue.add x' queue
            end)
        g.adj.(x)
    done;
    !found
  in
  let rec dfs x =
    let rec try_neighbors = function
      | [] ->
        dist.(x) <- infinity_dist;
        false
      | y :: rest ->
        let advance =
          match match_y.(y) with
          | -1 -> true
          | x' -> dist.(x') = dist.(x) + 1 && dfs x'
        in
        if advance then begin
          match_x.(x) <- y;
          match_y.(y) <- x;
          true
        end
        else try_neighbors rest
    in
    try_neighbors g.adj.(x)
  in
  let size = ref 0 in
  while bfs () do
    for x = 0 to g.nx - 1 do
      if match_x.(x) = -1 && dfs x then incr size
    done
  done;
  (!size, match_x, match_y)

let max_matching_size g =
  let size, _, _ = hopcroft_karp g in
  size

(** Simple augmenting-path matcher (Kuhn); O(V*E). Used to
    cross-validate Hopcroft-Karp in tests. *)
let kuhn g =
  let match_y = Array.make (max g.ny 1) (-1) in
  let size = ref 0 in
  for x = 0 to g.nx - 1 do
    let visited = Array.make (max g.ny 1) false in
    let rec augment x =
      List.exists
        (fun y ->
          if visited.(y) then false
          else begin
            visited.(y) <- true;
            if match_y.(y) = -1 || augment match_y.(y) then begin
              match_y.(y) <- x;
              true
            end
            else false
          end)
        g.adj.(x)
    in
    if augment x then incr size
  done;
  !size

(** Neighborhood of a set of X vertices. *)
let neighbors_of_xs g xs =
  List.sort_uniq compare (List.concat_map (fun x -> g.adj.(x)) xs)

(** Hall violation witness: a subset W of [xs] with |N(W)| < |W|, if one
    exists (exhaustive; only for small |xs|). *)
let hall_violation g xs =
  let n = List.length xs in
  if n > 20 then invalid_arg "Matching.hall_violation: set too large";
  let arr = Array.of_list xs in
  let subsets = Fmm_util.Combinat.nonempty_subsets n in
  List.find_map
    (fun idxs ->
      let w = List.map (fun i -> arr.(i)) idxs in
      let nbrs = neighbors_of_xs g w in
      if List.length nbrs < List.length w then Some (w, nbrs) else None)
    subsets
