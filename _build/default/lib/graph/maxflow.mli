(** Dinic's maximum-flow algorithm on integer capacities. Used through
    {!Vertex_cut} (exact minimum dominator sets, Lemma 3.7) and
    {!Disjoint_paths} (Menger path counts, Lemma 3.11). *)

type graph

val create : int -> graph
(** [create n] with vertices [0..n-1]. *)

val add_vertex : graph -> int
val add_edge : graph -> int -> int -> int -> unit
(** [add_edge g u v cap]. Raises on bad ids or negative capacity. *)

val max_flow : graph -> source:int -> sink:int -> int
(** Computes the max flow; the graph's residual state is left in place
    for {!min_cut_source_side}. Raises if [source = sink]. *)

val min_cut_source_side : graph -> source:int -> bool array
(** After {!max_flow}: the residual-reachable side of the minimum cut. *)
