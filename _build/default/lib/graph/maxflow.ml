(* Dinic's maximum-flow algorithm on integer capacities. Two uses in
   this repo: maximum vertex-disjoint path counts (Menger / Lemma 3.11
   experiments) and exact minimum dominator sets (Lemma 3.7) via the
   vertex-splitting reduction in [Vertex_cut]. *)

type edge = { dst : int; mutable cap : int; (* residual capacity *) rev : int }

type graph = {
  mutable size : int;
  mutable out_edges : edge array array; (* filled at freeze time *)
  pending : (int * int * int) list ref; (* u, v, cap *)
}

let create n =
  if n < 0 then invalid_arg "Maxflow.create: negative size";
  { size = n; out_edges = [||]; pending = ref [] }

let add_vertex g =
  let id = g.size in
  g.size <- g.size + 1;
  id

let add_edge g u v cap =
  if u < 0 || u >= g.size || v < 0 || v >= g.size then
    invalid_arg "Maxflow.add_edge: vertex out of range";
  if cap < 0 then invalid_arg "Maxflow.add_edge: negative capacity";
  g.pending := (u, v, cap) :: !(g.pending)

(* Build the residual structure: forward edge with capacity, backward
   with 0, each knowing the index of its reverse. *)
let freeze g =
  let counts = Array.make (max g.size 1) 0 in
  List.iter
    (fun (u, v, _) ->
      counts.(u) <- counts.(u) + 1;
      counts.(v) <- counts.(v) + 1)
    !(g.pending);
  let arrs =
    Array.init (max g.size 1) (fun v ->
        Array.make counts.(v) { dst = -1; cap = 0; rev = -1 })
  in
  let fill = Array.make (max g.size 1) 0 in
  List.iter
    (fun (u, v, cap) ->
      let iu = fill.(u) and iv = fill.(v) in
      arrs.(u).(iu) <- { dst = v; cap; rev = iv };
      arrs.(v).(iv) <- { dst = u; cap = 0; rev = iu };
      fill.(u) <- iu + 1;
      fill.(v) <- iv + 1)
    !(g.pending);
  g.out_edges <- arrs

let max_flow g ~source ~sink =
  if source = sink then invalid_arg "Maxflow.max_flow: source = sink";
  freeze g;
  let n = max g.size 1 in
  let level = Array.make n (-1) in
  let iter = Array.make n 0 in
  let bfs () =
    Array.fill level 0 n (-1);
    let queue = Queue.create () in
    level.(source) <- 0;
    Queue.add source queue;
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      Array.iter
        (fun e ->
          if e.cap > 0 && level.(e.dst) < 0 then begin
            level.(e.dst) <- level.(v) + 1;
            Queue.add e.dst queue
          end)
        g.out_edges.(v)
    done;
    level.(sink) >= 0
  in
  let rec dfs v pushed =
    if v = sink then pushed
    else begin
      let result = ref 0 in
      (try
         while iter.(v) < Array.length g.out_edges.(v) do
           let e = g.out_edges.(v).(iter.(v)) in
           if e.cap > 0 && level.(e.dst) = level.(v) + 1 then begin
             let d = dfs e.dst (min pushed e.cap) in
             if d > 0 then begin
               e.cap <- e.cap - d;
               let back = g.out_edges.(e.dst).(e.rev) in
               back.cap <- back.cap + d;
               result := d;
               raise Exit
             end
             else iter.(v) <- iter.(v) + 1
           end
           else iter.(v) <- iter.(v) + 1
         done
       with Exit -> ());
      !result
    end
  in
  let flow = ref 0 in
  while bfs () do
    Array.fill iter 0 n 0;
    let rec push () =
      let d = dfs source max_int in
      if d > 0 then begin
        flow := !flow + d;
        push ()
      end
    in
    push ()
  done;
  !flow

(** Vertices on the source side of the min cut after [max_flow]
    (residual reachability). Must be called after [max_flow]. *)
let min_cut_source_side g ~source =
  let n = max g.size 1 in
  let visited = Array.make n false in
  let queue = Queue.create () in
  visited.(source) <- true;
  Queue.add source queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun e ->
        if e.cap > 0 && not visited.(e.dst) then begin
          visited.(e.dst) <- true;
          Queue.add e.dst queue
        end)
      g.out_edges.(v)
  done;
  visited
