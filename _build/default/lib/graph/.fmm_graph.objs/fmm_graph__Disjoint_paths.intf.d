lib/graph/disjoint_paths.mli: Digraph
