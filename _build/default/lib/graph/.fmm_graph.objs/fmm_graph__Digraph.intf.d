lib/graph/digraph.mli:
