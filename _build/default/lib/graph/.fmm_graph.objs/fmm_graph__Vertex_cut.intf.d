lib/graph/vertex_cut.mli: Digraph
