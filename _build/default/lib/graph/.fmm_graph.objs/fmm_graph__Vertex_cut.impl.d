lib/graph/vertex_cut.ml: Array Digraph Fmm_util List Maxflow
