lib/graph/matching.ml: Array Fmm_util List Queue
