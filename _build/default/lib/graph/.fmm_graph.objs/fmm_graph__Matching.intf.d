lib/graph/matching.mli:
