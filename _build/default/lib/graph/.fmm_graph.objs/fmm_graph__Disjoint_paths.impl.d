lib/graph/disjoint_paths.ml: Array Digraph List Maxflow Vertex_cut
