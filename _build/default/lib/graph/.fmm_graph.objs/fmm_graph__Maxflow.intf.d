lib/graph/maxflow.mli:
