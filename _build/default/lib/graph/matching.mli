(** Maximum bipartite matching (Hopcroft-Karp), the engine behind the
    exhaustive Lemma 3.1 checks: for every subset Y' of encoder outputs
    the maximum matching against the inputs X must reach
    1 + ceil((|Y'|-1)/2). *)

type bipartite = {
  nx : int;
  ny : int;
  adj : int list array;  (** [adj.(x)] = neighbors of [x] in Y. *)
}

val make_bipartite : nx:int -> ny:int -> (int * int) list -> bipartite
(** From an edge list; raises [Invalid_argument] on out-of-range
    endpoints. *)

val restrict : bipartite -> xs:int list -> ys:int list -> bipartite
(** Keep only the given vertices on each side (ids are preserved). *)

val hopcroft_karp : bipartite -> int * int array * int array
(** [(size, match_x, match_y)] with [match_x.(x)] the matched [y] or
    [-1]. O(E sqrt V). *)

val max_matching_size : bipartite -> int

val kuhn : bipartite -> int
(** Simple augmenting-path matcher, O(V E); cross-validates
    {!hopcroft_karp} in the tests. *)

val neighbors_of_xs : bipartite -> int list -> int list
(** Sorted union of neighborhoods. *)

val hall_violation : bipartite -> int list -> (int list * int list) option
(** A witness subset [W] of the given X vertices with [|N(W)| < |W|],
    if one exists (exhaustive; raises beyond 20 vertices). *)
