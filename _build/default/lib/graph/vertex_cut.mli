(** Exact minimum dominator sets (Definition 2.3 of the paper) via the
    split-vertex min-cut reduction: every vertex gets capacity 1
    (endpoints included, as the paper allows Gamma to contain inputs or
    members of V' itself), so by Menger duality the minimum dominator
    equals the maximum number of fully vertex-disjoint input-to-target
    paths. *)

val inf_cap : int

type result = {
  size : int;  (** minimum dominator size *)
  cut : int list;  (** a witness minimum dominator set *)
}

val min_dominator : Digraph.t -> sources:int list -> targets:int list -> result
(** Exact, polynomial (one Dinic run). *)

val is_dominator :
  Digraph.t -> sources:int list -> targets:int list -> gamma:int list -> bool
(** Direct check: no source-to-target path avoids [gamma]. *)

val min_dominator_brute :
  Digraph.t ->
  sources:int list ->
  targets:int list ->
  candidates:int list ->
  int list option
(** Exhaustive search over subsets of [candidates] by increasing size;
    exponential — used to cross-validate {!min_dominator} in tests.
    Raises beyond 20 candidates. *)
