(* Exact linear algebra over a field, by Gaussian elimination. The
   alternative-basis layer needs exact inverses of the phi/psi/nu
   transforms (Definition 2.6: they must be automorphisms), and the
   lemma engine needs ranks of encoder submatrices. *)

module Make (F : Fmm_ring.Sig_ring.Field) = struct
  module M = Matrix.Make (F)

  (** Reduced row echelon form; returns (rref, rank, pivot columns). *)
  let rref m =
    let a = M.copy m in
    let rows = M.rows a and cols = M.cols a in
    let pivots = ref [] in
    let r = ref 0 in
    (try
       for c = 0 to cols - 1 do
         if !r >= rows then raise Exit;
         (* find a pivot in column c at row >= !r *)
         let piv = ref (-1) in
         (try
            for i = !r to rows - 1 do
              if not (F.equal (M.get a i c) F.zero) then begin
                piv := i;
                raise Exit
              end
            done
          with Exit -> ());
         if !piv >= 0 then begin
           (* swap rows !piv and !r *)
           if !piv <> !r then
             for j = 0 to cols - 1 do
               let tmp = M.get a !r j in
               M.set a !r j (M.get a !piv j);
               M.set a !piv j tmp
             done;
           (* scale pivot row to 1 *)
           let inv_p = F.inv (M.get a !r c) in
           for j = 0 to cols - 1 do
             M.set a !r j (F.mul inv_p (M.get a !r j))
           done;
           (* eliminate elsewhere *)
           for i = 0 to rows - 1 do
             if i <> !r && not (F.equal (M.get a i c) F.zero) then begin
               let factor = M.get a i c in
               for j = 0 to cols - 1 do
                 M.set a i j (F.sub (M.get a i j) (F.mul factor (M.get a !r j)))
               done
             end
           done;
           pivots := c :: !pivots;
           incr r
         end
       done
     with Exit -> ());
    (a, !r, List.rev !pivots)

  let rank m =
    let _, r, _ = rref m in
    r

  (** Determinant by fraction-free-ish elimination (plain field elim). *)
  let det m =
    if M.rows m <> M.cols m then invalid_arg "Linalg.det: not square";
    let n = M.rows m in
    let a = M.copy m in
    let sign = ref F.one in
    let result = ref F.one in
    (try
       for c = 0 to n - 1 do
         let piv = ref (-1) in
         (try
            for i = c to n - 1 do
              if not (F.equal (M.get a i c) F.zero) then begin
                piv := i;
                raise Exit
              end
            done
          with Exit -> ());
         if !piv < 0 then begin
           result := F.zero;
           raise Exit
         end;
         if !piv <> c then begin
           sign := F.neg !sign;
           for j = 0 to n - 1 do
             let tmp = M.get a c j in
             M.set a c j (M.get a !piv j);
             M.set a !piv j tmp
           done
         end;
         let p = M.get a c c in
         result := F.mul !result p;
         for i = c + 1 to n - 1 do
           let factor = F.div (M.get a i c) p in
           for j = c to n - 1 do
             M.set a i j (F.sub (M.get a i j) (F.mul factor (M.get a c j)))
           done
         done
       done
     with Exit -> ());
    F.mul !sign !result

  (** Inverse; raises [Failure] if singular. *)
  let inverse m =
    if M.rows m <> M.cols m then invalid_arg "Linalg.inverse: not square";
    let n = M.rows m in
    (* [m | I] -> rref -> [I | m^-1] *)
    let aug =
      M.init n (2 * n) (fun i j ->
          if j < n then M.get m i j
          else if j - n = i then F.one
          else F.zero)
    in
    let r, _, pivots = rref aug in
    (* Pivots must all land in the left (original) half: a pivot in the
       identity half means the original matrix was rank-deficient. *)
    let left_pivots = List.length (List.filter (fun c -> c < n) pivots) in
    if left_pivots < n then failwith "Linalg.inverse: singular matrix";
    M.submatrix r ~row:0 ~col:n ~rows:n ~cols:n

  (** Solve m x = b for a single right-hand side; [None] if inconsistent,
      picks the pivot-variable solution if underdetermined. *)
  let solve m b =
    let rows = M.rows m and cols = M.cols m in
    if Array.length b <> rows then invalid_arg "Linalg.solve: rhs length";
    let aug =
      M.init rows (cols + 1) (fun i j -> if j < cols then M.get m i j else b.(i))
    in
    let r, _, pivots = rref aug in
    (* inconsistent iff a pivot lands in the augmented column *)
    if List.exists (fun c -> c = cols) pivots then None
    else begin
      let x = Array.make cols F.zero in
      List.iteri
        (fun row_idx c -> x.(c) <- M.get r row_idx cols)
        pivots;
      Some x
    end

  let is_invertible m =
    M.rows m = M.cols m && rank m = M.rows m
end

module Q = Make (Fmm_ring.Rat.Field)
