(** Exact linear algebra over a field by Gaussian elimination. The
    alternative-basis layer needs exact inverses of the phi/psi/nu
    transforms (Definition 2.6 requires automorphisms); the lemma
    engine uses ranks and solvability of decoder systems. *)

module Make (F : Fmm_ring.Sig_ring.Field) : sig
  module M : module type of Matrix.Make (F)

  val rref : M.t -> M.t * int * int list
  (** Reduced row echelon form: (rref, rank, pivot columns). *)

  val rank : M.t -> int

  val det : M.t -> F.t
  (** Raises [Invalid_argument] on non-square input. *)

  val inverse : M.t -> M.t
  (** Raises [Failure] on singular input. *)

  val solve : M.t -> F.t array -> F.t array option
  (** One right-hand side; [None] if inconsistent, the pivot-variable
      solution if underdetermined. *)

  val is_invertible : M.t -> bool
end

module Q : module type of Make (Fmm_ring.Rat.Field)
