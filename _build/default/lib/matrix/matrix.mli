(** Dense matrices functorized over a ring. The bilinear layer uses
    them over Rat/Z_p for exact verification; the simulators over Int
    and Float. Block split/join mirrors the recursive structure of fast
    matrix multiplication (the paper's Algorithm 2). *)

module Make (R : Fmm_ring.Sig_ring.S) : sig
  type elt = R.t
  type t

  val rows : t -> int
  val cols : t -> int
  val dims : t -> int * int

  val make : int -> int -> elt -> t
  val zeros : int -> int -> t
  val init : int -> int -> (int -> int -> elt) -> t
  val identity : int -> t

  val get : t -> int -> int -> elt
  (** Raises [Invalid_argument] out of bounds (as does {!set}). *)

  val set : t -> int -> int -> elt -> unit
  val copy : t -> t

  val of_rows : elt list list -> t
  (** Raises on ragged input. *)

  val of_int_rows : int list list -> t
  val to_rows : t -> elt list list

  val equal : t -> t -> bool
  val map : (elt -> elt) -> t -> t

  val map2 : (elt -> elt -> elt) -> t -> t -> t
  (** Raises on dimension mismatch (as do {!add}, {!sub}). *)

  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val scale : elt -> t -> t
  val transpose : t -> t

  val mul : t -> t -> t
  (** Classical O(n^3) product — the reference every fast algorithm is
      verified against. *)

  val mul_vec : t -> elt array -> elt array

  val vec_of : t -> elt array
  (** Row-major flattening; the bilinear layer treats an n x m operand
      as a length-nm vector acted on by encoding matrices. *)

  val of_vec : int -> int -> elt array -> t

  val submatrix : t -> row:int -> col:int -> rows:int -> cols:int -> t
  val blit_block : t -> row:int -> col:int -> t -> unit

  val split : gr:int -> gc:int -> t -> t array array
  (** Equal-block grid; requires divisibility. *)

  val join : t array array -> t
  (** Inverse of {!split}; raises on ragged or unequal blocks. *)

  val pad : t -> rows:int -> cols:int -> t
  (** Zero-pad, top-left aligned. *)

  val unpad : t -> rows:int -> cols:int -> t

  val random : rng:Fmm_util.Prng.t -> rows:int -> cols:int -> range:int -> t
  (** Entries uniform in [-range, range] via [R.of_int]. *)

  val kronecker : t -> t -> t

  val trace : t -> elt
  (** Raises on non-square input. *)

  val is_zero : t -> bool
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end

module Q : module type of Make (Fmm_ring.Rat.Field)
module I : module type of Make (Fmm_ring.Sig_ring.Int)
module F : module type of Make (Fmm_ring.Sig_ring.Float)
