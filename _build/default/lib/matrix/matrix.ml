(* Dense matrices functorized over a ring. The bilinear layer uses this
   over Rat/Zp for exact verification; the simulators use it over Int
   and Float. Block split/join mirrors the recursive structure of fast
   matrix multiplication (Algorithm 2 of the paper): a recursion step
   splits each operand into a grid of sub-blocks, recurses on linear
   combinations, and joins the results. *)

module Make (R : Fmm_ring.Sig_ring.S) = struct
  type elt = R.t

  type t = { rows : int; cols : int; data : elt array }
  (* Row-major; data.(i * cols + j). *)

  let rows m = m.rows
  let cols m = m.cols
  let dims m = (m.rows, m.cols)

  let check_dims rows cols =
    if rows < 0 || cols < 0 then invalid_arg "Matrix: negative dimension"

  let make rows cols x =
    check_dims rows cols;
    { rows; cols; data = Array.make (rows * cols) x }

  let zeros rows cols = make rows cols R.zero

  let init rows cols f =
    check_dims rows cols;
    { rows; cols; data = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols)) }

  let identity n = init n n (fun i j -> if i = j then R.one else R.zero)

  let get m i j =
    if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
      invalid_arg "Matrix.get: index out of bounds";
    m.data.((i * m.cols) + j)

  let set m i j x =
    if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
      invalid_arg "Matrix.set: index out of bounds";
    m.data.((i * m.cols) + j) <- x

  let copy m = { m with data = Array.copy m.data }

  let of_rows rows_l =
    match rows_l with
    | [] -> zeros 0 0
    | first :: _ ->
      let cols = List.length first in
      if List.exists (fun r -> List.length r <> cols) rows_l then
        invalid_arg "Matrix.of_rows: ragged rows";
      let rows = List.length rows_l in
      let data = Array.of_list (List.concat rows_l) in
      { rows; cols; data }

  let of_int_rows rows_l = of_rows (List.map (List.map R.of_int) rows_l)

  let to_rows m =
    List.init m.rows (fun i -> List.init m.cols (fun j -> get m i j))

  let equal a b =
    a.rows = b.rows && a.cols = b.cols
    && Array.for_all2 (fun x y -> R.equal x y) a.data b.data
    [@@warning "-32"]

  (* Array.for_all2 needs 4.11+; fine on 5.1. *)

  let map f m = { m with data = Array.map f m.data }

  let map2 f a b =
    if a.rows <> b.rows || a.cols <> b.cols then
      invalid_arg "Matrix.map2: dimension mismatch";
    { a with data = Array.map2 f a.data b.data }

  let add a b = map2 R.add a b
  let sub a b = map2 R.sub a b
  let neg a = map R.neg a
  let scale c m = map (R.mul c) m

  let transpose m = init m.cols m.rows (fun i j -> get m j i)

  (** Classical O(n^3) product; the reference implementation every fast
      algorithm is verified against. *)
  let mul a b =
    if a.cols <> b.rows then invalid_arg "Matrix.mul: dimension mismatch";
    let out = zeros a.rows b.cols in
    for i = 0 to a.rows - 1 do
      for k = 0 to a.cols - 1 do
        let aik = get a i k in
        if not (R.equal aik R.zero) then
          for j = 0 to b.cols - 1 do
            set out i j (R.add (get out i j) (R.mul aik (get b k j)))
          done
      done
    done;
    out

  (** Matrix-vector product. *)
  let mul_vec m v =
    if m.cols <> Array.length v then invalid_arg "Matrix.mul_vec: dim mismatch";
    Array.init m.rows (fun i ->
        let acc = ref R.zero in
        for j = 0 to m.cols - 1 do
          acc := R.add !acc (R.mul (get m i j) v.(j))
        done;
        !acc)

  (** Flatten row-major into a vector; the bilinear layer treats an
      n x m operand as a length-nm vector acted on by encoding matrices. *)
  let vec_of m = Array.copy m.data

  let of_vec rows cols v =
    if Array.length v <> rows * cols then
      invalid_arg "Matrix.of_vec: length mismatch";
    { rows; cols; data = Array.copy v }

  (** [submatrix m ~row ~col ~rows ~cols] copies a block. *)
  let submatrix m ~row ~col ~rows ~cols =
    if row < 0 || col < 0 || row + rows > m.rows || col + cols > m.cols then
      invalid_arg "Matrix.submatrix: block out of bounds";
    init rows cols (fun i j -> get m (row + i) (col + j))

  (** Write block [b] into [m] at (row, col), mutating [m]. *)
  let blit_block m ~row ~col b =
    if row + b.rows > m.rows || col + b.cols > m.cols then
      invalid_arg "Matrix.blit_block: block out of bounds";
    for i = 0 to b.rows - 1 do
      for j = 0 to b.cols - 1 do
        set m (row + i) (col + j) (get b i j)
      done
    done

  (** Split into a gr x gc grid of equal blocks. Requires divisibility. *)
  let split ~gr ~gc m =
    if gr <= 0 || gc <= 0 || m.rows mod gr <> 0 || m.cols mod gc <> 0 then
      invalid_arg "Matrix.split: grid does not divide dimensions";
    let br = m.rows / gr and bc = m.cols / gc in
    Array.init gr (fun i ->
        Array.init gc (fun j ->
            submatrix m ~row:(i * br) ~col:(j * bc) ~rows:br ~cols:bc))

  (** Inverse of [split]: join a grid of equal blocks. *)
  let join blocks =
    let gr = Array.length blocks in
    if gr = 0 then zeros 0 0
    else begin
      let gc = Array.length blocks.(0) in
      if gc = 0 then zeros 0 0
      else begin
        let br = blocks.(0).(0).rows and bc = blocks.(0).(0).cols in
        Array.iter
          (fun row ->
            if Array.length row <> gc then invalid_arg "Matrix.join: ragged";
            Array.iter
              (fun b ->
                if b.rows <> br || b.cols <> bc then
                  invalid_arg "Matrix.join: unequal blocks")
              row)
          blocks;
        let out = zeros (gr * br) (gc * bc) in
        Array.iteri
          (fun i row ->
            Array.iteri
              (fun j b -> blit_block out ~row:(i * br) ~col:(j * bc) b)
              row)
          blocks;
        out
      end
    end

  (** Zero-pad to [rows] x [cols] (top-left aligned). *)
  let pad m ~rows ~cols =
    if rows < m.rows || cols < m.cols then invalid_arg "Matrix.pad: shrinking";
    let out = zeros rows cols in
    blit_block out ~row:0 ~col:0 m;
    out

  let unpad m ~rows ~cols = submatrix m ~row:0 ~col:0 ~rows ~cols

  let random ~rng ~rows ~cols ~range =
    if range <= 0 then invalid_arg "Matrix.random: range <= 0";
    init rows cols (fun _ _ ->
        R.of_int (Fmm_util.Prng.int_range rng (-range) range))

  let kronecker a b =
    init (a.rows * b.rows) (a.cols * b.cols) (fun i j ->
        R.mul (get a (i / b.rows) (j / b.cols)) (get b (i mod b.rows) (j mod b.cols)))

  let trace m =
    if m.rows <> m.cols then invalid_arg "Matrix.trace: not square";
    let acc = ref R.zero in
    for i = 0 to m.rows - 1 do
      acc := R.add !acc (get m i i)
    done;
    !acc

  let is_zero m = Array.for_all (fun x -> R.equal x R.zero) m.data

  let pp fmt m =
    Format.fprintf fmt "@[<v>";
    for i = 0 to m.rows - 1 do
      Format.fprintf fmt "[";
      for j = 0 to m.cols - 1 do
        if j > 0 then Format.fprintf fmt ", ";
        R.pp fmt (get m i j)
      done;
      Format.fprintf fmt "]";
      if i < m.rows - 1 then Format.fprintf fmt "@,"
    done;
    Format.fprintf fmt "@]"

  let to_string m = Format.asprintf "%a" pp m
end

module Q = Make (Fmm_ring.Rat.Field)
module I = Make (Fmm_ring.Sig_ring.Int)
module F = Make (Fmm_ring.Sig_ring.Float)
