lib/matrix/linalg.ml: Array Fmm_ring List Matrix
