lib/matrix/linalg.mli: Fmm_ring Matrix
