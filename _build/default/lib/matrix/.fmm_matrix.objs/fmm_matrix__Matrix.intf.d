lib/matrix/matrix.mli: Fmm_ring Fmm_util Format
