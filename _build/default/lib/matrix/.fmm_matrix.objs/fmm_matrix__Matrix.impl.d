lib/matrix/matrix.ml: Array Fmm_ring Fmm_util Format List
