(* fmmlab: command-line laboratory for the I/O-complexity of fast
   matrix multiplication with recomputations.

     fmmlab bounds    -n 4096 -m 4096 -p 49     lower bounds (Table I)
     fmmlab verify    -a Strassen               lemma battery (Sec. III)
     fmmlab simulate  -n 16 -m 64 [--remat]     sequential machine run
     fmmlab analyze   -n 8 -m 64 [--corrupt x]  static CDAG/trace/parallel lint
     fmmlab pebble    [--red 4]                 exact pebbling studies
     fmmlab cdag      -a Strassen -n 4 [-o f]   build/export a CDAG
     fmmlab hybrid    -n 64 --sweep [--mems 64,256,1024] [--json f]
     fmmlab optimize  -n 16 -m 64 [--beam 4] [--iters 4] [--seed 1] [--json f]
     fmmlab faults    -n 16 --fail 2 [--policy recompute,refetch] [--json f]
     fmmlab bench     [--filter T1,RC] [--json f] [--baseline f] [--jobs N]
     fmmlab table1                              regenerate Table I

   verify and bench accept --jobs N (env FMMLAB_JOBS, default 1): run
   independent work — registry experiments, per-algorithm batteries,
   lemma samples — on N domains. Results and reports are byte-identical
   at any N; only wall clocks move. *)

open Cmdliner

module A = Fmm_bilinear.Algorithm
module S = Fmm_bilinear.Strassen
module B = Fmm_bounds.Bounds
module Cd = Fmm_cdag.Cdag
module Ord = Fmm_machine.Orders
module Sch = Fmm_machine.Schedulers
module Tr = Fmm_machine.Trace
module T = Fmm_util.Table

let algorithm_arg =
  let doc =
    "Algorithm name: Strassen, Winograd, Winograd^T, classical <2,2,2;8>, ..."
  in
  Arg.(value & opt string "Strassen" & info [ "a"; "algorithm" ] ~doc)

let find_algorithm name =
  match S.find name with
  | Some alg -> alg
  | None ->
    (match name with
    | "Winograd^T" -> S.winograd_transposed
    | "KS" | "ks" -> Fmm_bilinear.Alt_basis.ks_core
    | _ ->
      (* tolerate case variations: "strassen" = "Strassen" *)
      let canon = String.lowercase_ascii in
      (match
         List.find_opt (fun a -> canon (A.name a) = canon name) S.registry
       with
      | Some alg -> alg
      | None when canon name = "winograd^t" -> S.winograd_transposed
      | None ->
        Printf.eprintf "unknown algorithm %S; known: %s\n" name
          (String.concat ", " (List.map A.name S.registry));
        exit 2))

let n_arg default =
  Arg.(value & opt int default & info [ "n" ] ~doc:"Matrix dimension")

let m_arg default =
  Arg.(value & opt int default & info [ "m"; "memory" ] ~doc:"Fast/local memory size")

let p_arg default =
  Arg.(value & opt int default & info [ "p"; "procs" ] ~doc:"Processor count")

let jobs_arg =
  let doc =
    "Run independent work (registry experiments, per-algorithm batteries, \
     lemma samples) on $(docv) domains. Results are byte-identical at any \
     $(docv); only wall clocks change. 1 = sequential."
  in
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~env:(Cmd.Env.info "FMMLAB_JOBS") ~doc ~docv:"N")

(* --- bounds --- *)

let bounds_cmd =
  let run n m p =
    let t =
      T.create ~title:(Printf.sprintf "lower bounds at n=%d M=%d P=%d" n m p)
        ~headers:[ "algorithm"; "memory-dependent"; "memory-independent"; "max" ]
        ~aligns:[ T.Left; T.Right; T.Right; T.Right ] ()
    in
    List.iter
      (fun row ->
        let md = row.B.memdep ~n ~m ~p and mi = row.B.memind ~n ~p in
        T.add_row t
          [ row.B.algorithm; T.fmt_sci md; T.fmt_sci mi; T.fmt_sci (Float.max md mi) ])
      B.table1_rows;
    T.print t;
    Printf.printf "FFT (for comparison): memdep %s, memind %s\n"
      (T.fmt_sci (B.fft_memdep ~n ~m ~p))
      (T.fmt_sci (B.fft_memind ~n ~p));
    Printf.printf "Strassen crossover P* at this n, M: %d\n" (B.crossover_p ~n ~m ())
  in
  Cmd.v (Cmd.info "bounds" ~doc:"Evaluate the Table I lower bounds")
    Term.(const run $ n_arg 4096 $ m_arg 4096 $ p_arg 1)

(* --- verify --- *)

let verify_cmd =
  let run name all deep jobs =
    let jobs = max 1 jobs in
    let algorithms = if all then S.registry else [ find_algorithm name ] in
    (* --all fans out across algorithms; a single algorithm hands the
       pool to the engine's per-sample fan-out instead. Never both, so
       at most [jobs] domains are ever live. *)
    let outer = if List.length algorithms > 1 then jobs else 1 in
    let inner = if List.length algorithms > 1 then 1 else jobs in
    (* The deep battery builds H^{n x n}, which needs a square base and
       an n that is a power of the base dimension: prefer n = 4, fall
       back to one recursion level, skip rectangular bases. *)
    let deep_n alg =
      let n0, m0, k0 = Fmm_bilinear.Algorithm.dims alg in
      if n0 <> m0 || m0 <> k0 then None
      else if Fmm_util.Combinat.is_power_of ~base:n0 4 then Some 4
      else Some n0
    in
    let reports =
      Fmm_par.Pool.map ~jobs:outer
        (fun alg ->
          match (deep, deep_n alg) with
          | true, Some n ->
            Fmm_lemmas.Engine.deep_report_to_string
              (Fmm_lemmas.Engine.deep_check_algorithm ~n ~jobs:inner alg)
          | true, None ->
            Fmm_lemmas.Engine.report_to_string
              (Fmm_lemmas.Engine.check_algorithm alg)
            ^ "\n  (deep checks skipped: base case is not square)"
          | false, _ ->
            Fmm_lemmas.Engine.report_to_string
              (Fmm_lemmas.Engine.check_algorithm alg))
        algorithms
    in
    List.iter
      (fun r ->
        print_endline r;
        print_newline ())
      reports
  in
  let all_arg =
    Arg.(value & flag & info [ "all" ] ~doc:"Check every registered algorithm")
  in
  let deep_arg =
    Arg.(value & flag
        & info [ "deep" ]
            ~doc:"Also sample the CDAG-level lemmas (3.7, 3.11, 2.2) on H^{4x4}")
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Machine-check the Section III lemmas on an algorithm")
    Term.(const run $ algorithm_arg $ all_arg $ deep_arg $ jobs_arg)

(* --- simulate --- *)

let simulate_cmd =
  let run name n m remat order_name =
    let alg = find_algorithm name in
    let cdag = Cd.build alg ~n in
    let order =
      match order_name with
      | "dfs" -> Ord.recursive_dfs cdag
      | "naive" -> Ord.naive_topo cdag
      | "random" -> Ord.random_topo ~seed:1 cdag
      | o ->
        Printf.eprintf "unknown order %S (dfs|naive|random)\n" o;
        exit 2
    in
    let workload = Fmm_machine.Workload.of_cdag cdag in
    let res =
      if remat then Sch.run_rematerialize workload ~cache_size:m order
      else Sch.run_lru workload ~cache_size:m order
    in
    let c = res.Sch.counters in
    Printf.printf "algorithm   %s\n" (A.name alg);
    Printf.printf "n           %d\nM           %d\norder       %s\npolicy      %s\n"
      n m order_name (if remat then "rematerialize" else "LRU spill");
    Printf.printf "loads       %d\nstores      %d\nI/O         %d\n" c.Tr.loads
      c.Tr.stores (Tr.io c);
    Printf.printf "computes    %d (recomputed %d)\n" c.Tr.computes c.Tr.recomputes;
    let bound = B.fast_sequential ~n ~m () in
    Printf.printf "Thm 1.1     %.1f   (measured/bound = %.2f)\n" bound
      (float_of_int (Tr.io c) /. bound)
  in
  let remat_arg =
    Arg.(value & flag & info [ "remat" ] ~doc:"Recompute instead of spilling")
  in
  let order_arg =
    Arg.(value & opt string "dfs" & info [ "order" ] ~doc:"dfs | naive | random")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run a schedule on the two-level machine model")
    Term.(const run $ algorithm_arg $ n_arg 16 $ m_arg 64 $ remat_arg $ order_arg)

(* --- analyze --- *)

let analyze_cmd =
  let module An_d = Fmm_analysis.Diagnostic in
  let module An_c = Fmm_analysis.Cdag_lint in
  let module An_t = Fmm_analysis.Trace_check in
  let module An_p = Fmm_analysis.Par_check in
  let module An_cert = Fmm_analysis.Certify in
  let module An_j = Fmm_analysis.Analyze_json in
  let module PE = Fmm_machine.Par_exec in
  let module Json = Fmm_obs.Json in
  let run name n m order_name depth corrupt machine limit certify max_warnings
      json_out jobs =
    let alg = find_algorithm name in
    let cdag = Cd.build alg ~n in
    let work = Fmm_machine.Workload.of_cdag cdag in
    let order =
      match order_name with
      | "dfs" -> Ord.recursive_dfs cdag
      | "naive" -> Ord.naive_topo cdag
      | "random" -> Ord.random_topo ~seed:1 cdag
      | o ->
        Printf.eprintf "unknown order %S (dfs|naive|random)\n" o;
        exit 2
    in
    (* pass 1: CDAG structure *)
    let lint_report = An_c.lint cdag in
    (* pass 2: an LRU trace of the schedule, optionally corrupted *)
    let res = Sch.run_lru work ~cache_size:m order in
    let trace =
      match corrupt with
      | "none" | "race" -> res.Sch.trace
      | "missing-load" ->
        (* delete the first Load: its consumer's Compute loses an
           operand at a precise step *)
        let removed = ref false in
        List.filter
          (fun e ->
            match e with
            | Tr.Load _ when not !removed ->
              removed := true;
              false
            | _ -> true)
          res.Sch.trace
      | "overflow" ->
        (* delete every Evict: occupancy climbs past M *)
        List.filter (function Tr.Evict _ -> false | _ -> true) res.Sch.trace
      | o ->
        Printf.eprintf "unknown corruption %S (none|missing-load|overflow|race)\n" o;
        exit 2
    in
    let trace_result = An_t.check ~cache_size:m work trace in
    (* pass 3: BFS-partitioned parallel assignment under a topological
       order (corrupt = race swaps a cross-processor producer behind
       its consumer) *)
    let procs = Fmm_util.Combinat.pow_int (A.rank alg) depth in
    let assignment = PE.bfs_assignment cdag ~depth ~procs in
    let par_order =
      let is_input = Fmm_machine.Workload.is_input work in
      let base =
        match Fmm_graph.Digraph.topo_sort (Cd.graph cdag) with
        | Some o -> List.filter (fun v -> not (is_input v)) o
        | None -> []
      in
      if corrupt <> "race" then base
      else begin
        let g = Cd.graph cdag in
        let cross = ref None in
        List.iter
          (fun v ->
            if !cross = None && not (is_input v) then
              List.iter
                (fun u ->
                  if
                    !cross = None
                    && (not (is_input u))
                    && assignment.(u) <> assignment.(v)
                  then cross := Some (u, v))
                (Fmm_graph.Digraph.in_neighbors g v))
          base;
        match !cross with
        | None -> base
        | Some (u, v) ->
          (* swap producer and consumer positions: u now runs after v *)
          List.map (fun x -> if x = u then v else if x = v then u else x) base
      end
    in
    let par_result = An_p.check ~order:par_order work ~procs ~assignment in
    (* pass 4 (--certify): static analyses vs dynamic scheduler evidence *)
    let cert =
      if certify then
        Some (An_cert.run ~jobs:(max 1 jobs) ~cdag ~cache_size:m work ~order)
      else None
    in
    let reports =
      [
        (Printf.sprintf "CDAG lint: %s H^{%dx%d}" (A.name alg) n n, lint_report);
        ( Printf.sprintf "trace check: LRU/%s at M=%d (%d events)" order_name m
            (List.length trace),
          trace_result.An_t.report );
        ( Printf.sprintf "parallel race check: BFS depth %d on %d processors"
            depth procs,
          par_result.An_p.report );
      ]
      @
      match cert with
      | None -> []
      | Some c ->
        [
          ( Printf.sprintf "certifier: static vs dynamic at M=%d (%s order)" m
              order_name,
            c.An_cert.report );
        ]
    in
    List.iter
      (fun (title, r) ->
        let r = { r with An_d.title } in
        if machine then (
          let s = An_d.render ~machine:true r in
          if s <> "" then print_endline s)
        else begin
          print_endline (An_d.render ~limit r);
          print_newline ()
        end)
      reports;
    (match cert with
    | Some c when not machine ->
      Printf.printf
        "certifier: MAXLIVE %d (inputs %d, outputs %d), static I/O lower \
         bound %d at M=%d\n"
        c.An_cert.maxlive c.An_cert.inputs_used c.An_cert.outputs_stored
        c.An_cert.io_lower_bound m;
      (match (c.An_cert.segment_r, c.An_cert.segment_bound) with
      | Some r, Some b ->
        Printf.printf "certifier: Lemma 3.6 at r=%d: bound %d, min \
                       full-segment I/O %s\n" r b
          (match c.An_cert.segment_min_io with
          | Some x -> string_of_int x
          | None -> "-")
      | _ -> ());
      let t =
        T.create ~title:"policy cross-check (static min-cache vs dynamic peak)"
          ~headers:
            [ "policy"; "I/O"; "peak"; "min-cache"; "agree"; "dead";
              "redundant"; "recomputes" ]
          ~aligns:
            [ T.Left; T.Right; T.Right; T.Right; T.Left; T.Right; T.Right;
              T.Right ] ()
      in
      List.iter
        (fun (row : An_cert.policy_row) ->
          if row.An_cert.feasible then
            T.add_row t
              [
                row.An_cert.policy;
                string_of_int row.An_cert.io;
                string_of_int row.An_cert.peak_occupancy;
                string_of_int row.An_cert.min_cache;
                (if row.An_cert.agree then "yes" else "NO");
                string_of_int row.An_cert.dead_loads;
                string_of_int row.An_cert.redundant_stores;
                string_of_int row.An_cert.recomputes;
              ]
          else T.add_row t [ row.An_cert.policy; "-"; "-"; "-"; "-"; "-"; "-"; "-" ])
        c.An_cert.rows;
      T.print t;
      Printf.printf "certified: %b\n\n" (An_cert.certified c)
    | _ -> ());
    (match json_out with
    | None -> ()
    | Some path ->
      let t =
        {
          An_j.algorithm = A.name alg;
          n;
          cache_size = m;
          order = order_name;
          depth;
          procs;
          corrupt;
          passes =
            List.map
              (fun (title, (r : An_d.report)) ->
                { An_j.title; diags = r.An_d.diags })
              reports;
          certify = Option.map An_j.certify_of_result cert;
        }
      in
      Json.to_file path (An_j.to_json t);
      if not machine then Printf.printf "wrote %s (schema %s)\n" path An_j.schema);
    let total = An_d.merge ~title:"all" (List.map snd reports) in
    let errors = An_d.n_errors total in
    let warnish = An_d.n_warnings total + An_d.n_lints total in
    if not machine then
      Printf.printf
        "analyze: %d error(s), %d warning(s), %d lint(s), %d info(s) across %d \
         passes%s\n"
        errors (An_d.n_warnings total) (An_d.n_lints total) (An_d.n_infos total)
        (List.length reports)
        (if corrupt <> "none" then Printf.sprintf " [corruption: %s]" corrupt
         else "");
    (* exit contract: errors always fail; warnings + lints only fail
       when the caller opted in with --max-warnings *)
    if errors > 0 then exit 1;
    match max_warnings with
    | Some k when warnish > k ->
      if not machine then
        Printf.printf "analyze: %d warning(s)+lint(s) exceed --max-warnings %d\n"
          warnish k;
      exit 1
    | _ -> ()
  in
  let order_arg =
    Arg.(value & opt string "dfs" & info [ "order" ] ~doc:"dfs | naive | random")
  in
  let depth_arg =
    Arg.(value & opt int 1 & info [ "depth" ] ~doc:"BFS partition depth for the parallel pass")
  in
  let corrupt_arg =
    Arg.(
      value & opt string "none"
      & info [ "corrupt" ]
          ~doc:
            "Seed a defect before checking: missing-load | overflow | race \
             (demonstrates diagnostic location)")
  in
  let machine_arg =
    Arg.(value & flag & info [ "machine" ] ~doc:"Tab-separated machine-readable output")
  in
  let limit_arg =
    Arg.(value & opt int 25 & info [ "limit" ] ~doc:"Max diagnostics printed per pass")
  in
  let certify_arg =
    Arg.(
      value & flag
      & info [ "certify" ]
          ~doc:
            "Run the certifier pass: static MAXLIVE/min-cache and the static \
             I/O lower bound cross-checked against LRU/Belady/rematerialize \
             traces, plus the Lemma 3.6 segment bound")
  in
  let max_warnings_arg =
    Arg.(
      value & opt (some int) None
      & info [ "max-warnings" ]
          ~doc:
            "Also exit 1 when warnings + lints exceed $(docv) (by default \
             only errors affect the exit code)"
          ~docv:"N")
  in
  let json_arg =
    let doc = "Write the fmm-analyze/v1 report (passes + certifier) to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~doc ~docv:"FILE")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Statically verify a CDAG, an LRU trace and a parallel assignment \
          (exit 1 on errors; warnings/lints gate only under --max-warnings)")
    Term.(
      const run $ algorithm_arg $ n_arg 8 $ m_arg 64 $ order_arg $ depth_arg
      $ corrupt_arg $ machine_arg $ limit_arg $ certify_arg $ max_warnings_arg
      $ json_arg $ jobs_arg)

(* --- pebble --- *)

let pebble_cmd =
  let run red =
    let module Pb = Fmm_pebble.Pebble in
    let module Pd = Fmm_pebble.Pebble_dags in
    let show name game =
      match Pb.compare_recomputation game with
      | Some w, Some wo ->
        Printf.printf "%-36s with=%d without=%d%s\n" name w wo
          (if w < wo then "  <- separation" else "")
      | _ -> Printf.printf "%-36s search exhausted\n" name
    in
    show "Savage-style DAG (R=3)" (Pd.recomputation_wins ());
    show
      (Printf.sprintf "Strassen encoder A (R=%d)" red)
      (Pd.encoder_game S.strassen Fmm_cdag.Encoder.A_side ~red_limit:red);
    let cdag = Cd.build S.strassen ~n:2 in
    show
      (Printf.sprintf "H^{2x2} C21 fragment (R=%d)" red)
      (Pd.of_cdag_outputs cdag ~outputs:[ (Cd.outputs cdag).(2) ] ~red_limit:red)
  in
  let red_arg =
    Arg.(value & opt int 4 & info [ "red" ] ~doc:"Red pebble limit")
  in
  Cmd.v
    (Cmd.info "pebble" ~doc:"Exact red-blue pebbling, with vs without recomputation")
    Term.(const run $ red_arg)

(* --- cdag --- *)

let cdag_cmd =
  let run name n output =
    let alg = find_algorithm name in
    let cdag = Cd.build alg ~n in
    List.iter (fun (k, v) -> Printf.printf "%-10s %d\n" k v) (Cd.stats cdag);
    match output with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc (Cd.to_dot cdag);
      close_out oc;
      Printf.printf "DOT written to %s\n" path
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"DOT output file")
  in
  Cmd.v
    (Cmd.info "cdag" ~doc:"Build H^{nxn} and print its census / export DOT")
    Term.(const run $ algorithm_arg $ n_arg 4 $ out_arg)

(* --- census (implicit CDAG; n = 256..1024 and beyond) --- *)

(* Degenerate configurations (n = 1, rectangular or 1x1 bases, n not a
   power of the base dimension, hybrid cutoffs outside [1, n] or not a
   power of the base dimension) have no recursive CDAG to census or
   execute; reject them up front with a diagnostic and exit code 2 —
   the same convention as unknown algorithm/policy names. *)
let check_config ?(cutoff = 1) alg ~n ~cmd =
  match Fmm_exec.Executor.validate_config ~cutoff alg ~n with
  | Ok () -> ()
  | Error msg ->
    Printf.eprintf "fmmlab %s: unsupported configuration: %s\n" cmd msg;
    exit 2

let cutoff_arg =
  let doc =
    "Hybrid cutoff $(docv): run the fast recursion down to $(docv) and \
     finish with classical multiplication (1 = uniform fast CDAG). Must be \
     a power of the base dimension, between 1 and n."
  in
  Arg.(value & opt int 1 & info [ "cutoff" ] ~doc ~docv:"N0")

let census_cmd =
  let run name n cutoff analyze maxlive do_lint m r_opt =
    let alg = find_algorithm name in
    check_config ~cutoff alg ~n ~cmd:"census";
    if cutoff > 1 then begin
      (* The implicit (recursion-indexed) core covers the uniform
         cutoff = 1 CDAG only; hybrid censuses go through the explicit
         builder, whose Lemma 2.2 selections stop at the cutoff. *)
      let cdag = Cd.build ~cutoff alg ~n in
      Printf.printf "explicit hybrid CDAG %s H^{%dx%d} (cutoff %d)\n"
        (A.name alg) n n cutoff;
      List.iter (fun (k, v) -> Printf.printf "%-10s %d\n" k v) (Cd.stats cdag);
      let n0, _, _ = A.dims alg in
      Printf.printf "\nLemma 2.2 sub-problem selections:\n";
      Printf.printf "%8s %8s %14s %16s %16s\n" "depth" "r" "nodes" "|V_out|"
        "|V_inp|";
      let rec levels d r =
        Printf.printf "%8d %8d %14d %16d %16d\n" d r
          (List.length (Cd.nodes_at_depth cdag ~depth:d))
          (List.length (Cd.sub_outputs cdag ~r))
          (List.length (Cd.sub_inputs cdag ~r));
        if r > cutoff then levels (d + 1) (r / n0)
      in
      levels 0 n;
      if analyze || maxlive || do_lint then
        Printf.printf
          "\n--analyze/--maxlive/--lint stream the implicit core, which is \
           uniform-only; rerun with --cutoff 1\n"
    end
    else begin
    let module Im = Fmm_cdag.Implicit in
    let imp = Im.create alg ~n in
    Printf.printf "implicit CDAG %s H^{%dx%d} (%d recursion levels)\n"
      (A.name alg) n n (Im.levels imp);
    List.iter (fun (k, v) -> Printf.printf "%-10s %d\n" k v) (Im.stats imp);
    (* Lemma 2.2 table: every sub-problem size of the recursion *)
    let n0, _, _ = A.dims alg in
    Printf.printf "\nLemma 2.2 sub-problem selections:\n";
    Printf.printf "%8s %8s %14s %16s %16s\n" "depth" "r" "nodes" "|V_out|"
      "|V_inp|";
    for d = 0 to Im.levels imp do
      let r = n / Fmm_util.Combinat.pow_int n0 d in
      Printf.printf "%8d %8d %14d %16d %16d\n" d r
        (Im.node_count_at_depth imp ~depth:d)
        (Im.sub_output_count imp ~r)
        (Im.sub_input_count imp ~r)
    done;
    if do_lint then begin
      let report = Fmm_analysis.Cdag_lint.lint_implicit imp in
      Printf.printf "\nimplicit lint: %d error(s), %d warning(s)\n"
        (Fmm_analysis.Diagnostic.n_errors report)
        (Fmm_analysis.Diagnostic.n_warnings report);
      if not (Fmm_analysis.Diagnostic.is_clean report) then
        print_string (Fmm_analysis.Diagnostic.render report)
    end;
    if maxlive then begin
      let s = Fmm_analysis.Dataflow.implicit_order_liveness imp in
      Printf.printf
        "\ncanonical order: MAXLIVE = %d, inputs used = %d, outputs stored = %d\n"
        s.Fmm_analysis.Dataflow.Streamed.maxlive
        s.Fmm_analysis.Dataflow.Streamed.inputs_used
        s.Fmm_analysis.Dataflow.Streamed.outputs_stored;
      Printf.printf "no-recomputation I/O lower bound at M = %d: %d\n" m
        (Fmm_analysis.Dataflow.streamed_io_lower_bound s ~cache_size:m)
    end;
    if analyze then begin
      (* Theorem 1.1 instantiation: r = 2 sqrt(M), rounded down to a
         valid sub-problem size *)
      let r =
        match r_opt with
        | Some r -> r
        | None ->
          let target = 2. *. sqrt (float_of_int m) in
          let rec best r = if float_of_int (r * n0) <= target then best (r * n0) else r in
          best 1
      in
      let module Seg = Fmm_machine.Segments in
      let t0 = Unix.gettimeofday () in
      let seg, counters = Seg.analyze_implicit imp ~cache_size:m ~r () in
      let dt = Unix.gettimeofday () -. t0 in
      Printf.printf "\nstreaming LRU at M = %d (%.1fs): %s\n" m dt
        (Format.asprintf "%a" Tr.pp_counters counters);
      Printf.printf "segments at r = %d, quota = %d: %d total, %d full\n" r
        seg.Seg.quota
        (List.length seg.Seg.segments)
        (List.length (Seg.full_segments seg));
      (match Seg.min_io_full_segments seg with
      | Some min_io ->
        Printf.printf "min I/O over full segments = %d vs bound %d\n" min_io
          seg.Seg.bound
      | None -> Printf.printf "no full segments (quota not reached)\n");
      Printf.printf "Lemma 3.6 holds: %b\n" (Seg.lemma_3_6_holds seg);
      let memdep = B.fast_sequential ~n ~m () in
      Printf.printf "I/O = %d, memdep bound = %.1f, ratio = %.2f\n"
        (Tr.io counters) memdep
        (float_of_int (Tr.io counters) /. memdep)
    end
    end
  in
  let analyze_arg =
    Arg.(
      value & flag
      & info [ "analyze" ]
          ~doc:"Stream the canonical LRU execution and segment its I/O")
  in
  let maxlive_arg =
    Arg.(
      value & flag
      & info [ "maxlive" ] ~doc:"Compute MAXLIVE of the canonical order")
  in
  let lint_arg =
    Arg.(value & flag & info [ "lint" ] ~doc:"Run the sampled implicit lint")
  in
  let r_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "r" ] ~doc:"Sub-problem size for the segment analysis")
  in
  Cmd.v
    (Cmd.info "census"
       ~doc:
         "Censuses and streaming analyses of the implicit (recursion-indexed) \
          CDAG — runs at n = 256..1024 where the explicit graph cannot be \
          built")
    Term.(
      const run $ algorithm_arg $ n_arg 256 $ cutoff_arg $ analyze_arg
      $ maxlive_arg $ lint_arg $ m_arg 4096 $ r_arg)

(* --- exec (numeric execution backend) --- *)

let exec_cmd =
  let module Ex = Fmm_exec.Executor in
  let module Json = Fmm_obs.Json in
  let run name n m cutoff policy_name backend_spec seed tol json_out jobs =
    let alg = find_algorithm name in
    check_config ~cutoff alg ~n ~cmd:"exec";
    let policy =
      match Ex.policy_of_string policy_name with
      | Some p -> p
      | None ->
        Printf.eprintf "unknown policy %S (lru|belady|remat)\n" policy_name;
        exit 2
    in
    let backends =
      String.split_on_char ',' backend_spec
      |> List.filter (fun s -> String.trim s <> "")
      |> List.map (fun s ->
             match Ex.backend_kind_of_string (String.trim s) with
             | Some k -> k
             | None ->
               Printf.eprintf
                 "unknown backend %S; known: float64, zp65537, rat, bigint\n" s;
               exit 2)
    in
    if backends = [] then begin
      prerr_endline "no backend given";
      exit 2
    end;
    let cdag = Cd.build ~cutoff alg ~n in
    let sched = Ex.schedule cdag ~cache_size:m policy in
    let pc = sched.Sch.counters in
    (* one execution per backend on the domain pool; each backend
       derives its own operand seed, so the report is byte-identical at
       any --jobs *)
    let reports =
      Fmm_par.Pool.map ~jobs:(max 1 jobs)
        (fun k -> Ex.run_backend ~tol cdag ~cache_size:m ~sched ~seed k)
        backends
    in
    Printf.printf "algorithm   %s\nn           %d\nM           %d\npolicy      %s\n"
      (A.name alg) n m policy_name;
    if cutoff > 1 then Printf.printf "cutoff      %d (hybrid)\n" cutoff;
    Printf.printf "scheduled   loads %d, stores %d, I/O %d, computes %d (recomputed %d)\n"
      pc.Tr.loads pc.Tr.stores (Tr.io pc) pc.Tr.computes pc.Tr.recomputes;
    let t =
      T.create ~title:"executed vs predicted"
        ~headers:
          [ "backend"; "result"; "max rel err"; "counters"; "loads"; "stores";
            "computes"; "peak occ" ]
        ~aligns:
          [ T.Left; T.Left; T.Right; T.Left; T.Right; T.Right; T.Right;
            T.Right ] ()
    in
    List.iter
      (fun r ->
        T.add_row t
          [
            r.Ex.backend;
            (if r.Ex.result_ok then if r.Ex.exact then "exact" else "ok"
             else "MISMATCH");
            (if r.Ex.exact then "0" else Printf.sprintf "%.2e" r.Ex.max_err);
            (if r.Ex.counters_ok then "match" else "DIVERGED");
            string_of_int r.Ex.executed.Tr.loads;
            string_of_int r.Ex.executed.Tr.stores;
            string_of_int r.Ex.executed.Tr.computes;
            string_of_int r.Ex.peak_occupancy;
          ])
      reports;
    T.print t;
    let ok = List.for_all Ex.report_ok reports in
    (match json_out with
    | None -> ()
    | Some path ->
      (* no wall clocks: a fixed (algorithm, n, M, policy, seed) tuple
         must serialize byte-identically at any --jobs *)
      let j =
        Json.Obj
          [
            ("schema", Json.Str "fmm-exec/v1");
            ("algorithm", Json.Str (A.name alg));
            ("n", Json.Int n);
            ("m", Json.Int m);
            ("cutoff", Json.Int cutoff);
            ("policy", Json.Str policy_name);
            ("seed", Json.Int seed);
            ("tol", Json.Float tol);
            ( "predicted",
              Json.Obj
                [
                  ("loads", Json.Int pc.Tr.loads);
                  ("stores", Json.Int pc.Tr.stores);
                  ("computes", Json.Int pc.Tr.computes);
                  ("recomputes", Json.Int pc.Tr.recomputes);
                ] );
            ( "backends",
              Json.List
                (List.map
                   (fun r ->
                     Json.Obj
                       [
                         ("backend", Json.Str r.Ex.backend);
                         ("exact", Json.Bool r.Ex.exact);
                         ("max_rel_err", Json.Float r.Ex.max_err);
                         ("result_ok", Json.Bool r.Ex.result_ok);
                         ("counters_ok", Json.Bool r.Ex.counters_ok);
                         ("loads", Json.Int r.Ex.executed.Tr.loads);
                         ("stores", Json.Int r.Ex.executed.Tr.stores);
                         ("computes", Json.Int r.Ex.executed.Tr.computes);
                         ("recomputes", Json.Int r.Ex.executed.Tr.recomputes);
                         ("peak_occupancy", Json.Int r.Ex.peak_occupancy);
                       ])
                   reports) );
            ("ok", Json.Bool ok);
          ]
      in
      Json.to_file path j;
      Printf.printf "wrote %s\n" path);
    if not ok then exit 1
  in
  let policy_arg =
    Arg.(
      value & opt string "lru"
      & info [ "policy" ] ~doc:"Schedule policy: lru | belady | remat"
          ~docv:"P")
  in
  let backend_arg =
    let doc =
      "Comma-separated element backends: float64, zp65537, rat, bigint."
    in
    Arg.(
      value & opt string "float64,zp65537"
      & info [ "backend" ] ~doc ~docv:"B,...")
  in
  let seed_arg =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~doc:"Operand PRNG master seed" ~docv:"S")
  in
  let tol_arg =
    Arg.(
      value & opt float 1e-9
      & info [ "tol" ] ~doc:"float64 max relative error tolerance" ~docv:"T")
  in
  let json_arg =
    let doc = "Write the execution report as JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~doc ~docv:"FILE")
  in
  Cmd.v
    (Cmd.info "exec"
       ~doc:
         "Execute a verified schedule on real matrices and check the result \
          against classical multiplication and the predicted I/O counters")
    Term.(
      const run $ algorithm_arg $ n_arg 16 $ m_arg 512 $ cutoff_arg
      $ policy_arg $ backend_arg $ seed_arg $ tol_arg $ json_arg $ jobs_arg)

(* --- hybrid (cutoff-parameterized Strassen/classical family) --- *)

(* One measured (M, cutoff) point of the hybrid sweep. [hp_counters] is
   [Error msg] when no legal schedule exists at that M (a classical-leaf
   decoder of in-degree cutoff needs cutoff + 1 resident words, so small
   caches cannot run large cutoffs) — reported, never silently
   dropped. *)
type hybrid_point = {
  hp_m : int;
  hp_cutoff : int;
  hp_vertices : int;
  hp_edges : int;
  hp_counters : (Tr.counters, string) result;
  hp_bound : float;
  hp_adds : int;
  hp_mults : int;
}

let hp_io p =
  match p.hp_counters with Ok c -> Some (Tr.io c) | Error _ -> None

let hp_flops p = p.hp_adds + p.hp_mults

let hybrid_cmd =
  let module Ex = Fmm_exec.Executor in
  let module K = Fmm_exec.Kernel in
  let module Json = Fmm_obs.Json in
  let run name n mems_spec m cutoff sweep policy_name json_out jobs =
    let alg = find_algorithm name in
    let n0, _, _ = A.dims alg in
    check_config ~cutoff alg ~n ~cmd:"hybrid";
    let policy =
      match Ex.policy_of_string policy_name with
      | Some p -> p
      | None ->
        Printf.eprintf "unknown policy %S (lru|belady|remat)\n" policy_name;
        exit 2
    in
    let mems =
      if mems_spec = "" then [ m ]
      else
        String.split_on_char ',' mems_spec
        |> List.filter (fun s -> String.trim s <> "")
        |> List.map (fun s ->
               match int_of_string_opt (String.trim s) with
               | Some v when v > 0 -> v
               | _ ->
                 Printf.eprintf "fmmlab hybrid: bad memory size %S\n" s;
                 exit 2)
    in
    let cutoffs =
      if sweep then begin
        let rec up c acc = if c > n then List.rev acc else up (c * n0) (c :: acc) in
        up 1 []
      end
      else [ cutoff ]
    in
    (* One pool task per cutoff: the CDAG, its DFS order and the flop
       counters are computed once and reused for every memory size —
       only the cache simulation depends on M. Every field is
       deterministic (schedules and flop counters are value-free, the
       report carries no clocks) and the m-major re-grouping below is a
       pure function of the input lists, so the output is byte-identical
       at any --jobs. *)
    let by_cutoff =
      Fmm_par.Pool.map ~jobs:(max 1 jobs)
        (fun c ->
          let cdag = Cd.build ~cutoff:c alg ~n in
          let work = Fmm_machine.Workload.of_cdag cdag in
          let order = Ord.recursive_dfs cdag in
          (* the executor's arithmetic for the same (algorithm, n,
             cutoff) — the flop side of the NE2 crossover *)
          let rng = Fmm_util.Prng.create ~seed:1 in
          let a = K.random rng n in
          let b = K.random rng n in
          let _, fl = K.fast_mul ~cutoff:c alg a b in
          List.map
            (fun m ->
              let counters =
                match
                  match policy with
                  | Ex.Lru -> Sch.run_lru work ~cache_size:m order
                  | Ex.Belady -> Sch.run_belady work ~cache_size:m order
                  | Ex.Remat -> Sch.run_rematerialize work ~cache_size:m order
                with
                | s -> Ok s.Sch.counters
                | exception Failure msg -> Error msg
              in
              {
                hp_m = m;
                hp_cutoff = c;
                hp_vertices = Cd.n_vertices cdag;
                hp_edges = Cd.n_edges cdag;
                hp_counters = counters;
                hp_bound = B.hybrid_memdep ~n ~m ~p:1 ~cutoff:c ();
                hp_adds = fl.K.adds;
                hp_mults = fl.K.mults;
              })
            mems)
        cutoffs
    in
    let points =
      let all = List.concat by_cutoff in
      List.concat_map (fun m -> List.filter (fun p -> p.hp_m = m) all) mems
    in
    let t =
      T.create
        ~title:
          (Printf.sprintf "hybrid %s n=%d, policy %s" (A.name alg) n
             policy_name)
        ~headers:
          [ "M"; "cutoff"; "vertices"; "I/O"; "hybrid bound"; "ratio";
            "flops" ]
        ~aligns:[ T.Right; T.Right; T.Right; T.Right; T.Right; T.Right; T.Right ]
        ()
    in
    List.iter
      (fun p ->
        let io_s, ratio_s =
          match hp_io p with
          | Some io ->
            ( string_of_int io,
              Printf.sprintf "%.2f" (float_of_int io /. p.hp_bound) )
          | None -> ("infeasible", "-")
        in
        T.add_row t
          [
            string_of_int p.hp_m; string_of_int p.hp_cutoff;
            string_of_int p.hp_vertices; io_s;
            Printf.sprintf "%.1f" p.hp_bound; ratio_s;
            string_of_int (hp_flops p);
          ])
      points;
    T.print t;
    List.iter
      (fun p ->
        match p.hp_counters with
        | Error msg ->
          Printf.printf "note: M = %d, cutoff = %d infeasible: %s\n" p.hp_m
            p.hp_cutoff msg
        | Ok _ -> ())
      points;
    (* per-M optima: the I/O-optimal cutoff under the measured schedule,
       and the flop-optimal cutoff (M-independent — NE2's crossover
       axis) from the executor's counters *)
    let argmin f = function
      | [] -> None
      | x :: rest ->
        Some
          (List.fold_left (fun best y -> if f y < f best then y else best) x rest)
    in
    let optima =
      List.map
        (fun m ->
          let pts = List.filter (fun p -> p.hp_m = m) points in
          let feasible = List.filter (fun p -> hp_io p <> None) pts in
          let io_best =
            argmin (fun p -> match hp_io p with Some io -> io | None -> max_int)
              feasible
          in
          let flop_best = argmin hp_flops pts in
          (m, io_best, flop_best))
        mems
    in
    List.iter
      (fun (m, io_best, flop_best) ->
        match (io_best, flop_best) with
        | Some pi, Some pf ->
          Printf.printf
            "M = %-6d I/O-optimal cutoff = %d (I/O %d); flop-optimal cutoff \
             = %d (%d flops)\n"
            m pi.hp_cutoff
            (match hp_io pi with Some io -> io | None -> 0)
            pf.hp_cutoff (hp_flops pf)
        | _ ->
          Printf.printf "M = %-6d no feasible schedule at any cutoff\n" m)
      optima;
    let ok =
      List.for_all
        (fun p ->
          match hp_io p with
          | Some io -> float_of_int io >= p.hp_bound
          | None -> true)
        points
      && List.for_all (fun (_, io_best, _) -> io_best <> None) optima
    in
    if not ok then
      print_endline
        "BOUND VIOLATION: some measured I/O fell below the hybrid lower \
         bound (or a memory size has no feasible cutoff)";
    (match json_out with
    | None -> ()
    | Some path ->
      let j =
        Json.Obj
          [
            ("schema", Json.Str "fmm-hybrid/v1");
            ("algorithm", Json.Str (A.name alg));
            ("n", Json.Int n);
            ("policy", Json.Str policy_name);
            ("sweep", Json.Bool sweep);
            ( "points",
              Json.List
                (List.map
                   (fun p ->
                     Json.Obj
                       ([
                          ("m", Json.Int p.hp_m);
                          ("cutoff", Json.Int p.hp_cutoff);
                          ("vertices", Json.Int p.hp_vertices);
                          ("edges", Json.Int p.hp_edges);
                        ]
                       @ (match p.hp_counters with
                         | Ok pc ->
                           let io = Tr.io pc in
                           [
                             ("feasible", Json.Bool true);
                             ("loads", Json.Int pc.Tr.loads);
                             ("stores", Json.Int pc.Tr.stores);
                             ("io", Json.Int io);
                             ("bound_memdep", Json.Float p.hp_bound);
                             ( "ratio",
                               Json.Float (float_of_int io /. p.hp_bound) );
                             ( "within_bound",
                               Json.Bool (float_of_int io >= p.hp_bound) );
                           ]
                         | Error msg ->
                           [
                             ("feasible", Json.Bool false);
                             ("reason", Json.Str msg);
                             ("bound_memdep", Json.Float p.hp_bound);
                           ])
                       @ [
                           ("adds", Json.Int p.hp_adds);
                           ("mults", Json.Int p.hp_mults);
                         ]))
                   points) );
            ( "optima",
              Json.List
                (List.filter_map
                   (fun (m, io_best, flop_best) ->
                     match (io_best, flop_best) with
                     | Some pi, Some pf ->
                       Some
                         (Json.Obj
                            [
                              ("m", Json.Int m);
                              ("io_optimal_cutoff", Json.Int pi.hp_cutoff);
                              ( "min_io",
                                Json.Int
                                  (match hp_io pi with
                                  | Some io -> io
                                  | None -> 0) );
                              ("flop_optimal_cutoff", Json.Int pf.hp_cutoff);
                              ("min_flops", Json.Int (hp_flops pf));
                            ])
                     | _ -> None)
                   optima) );
            ("ok", Json.Bool ok);
          ]
      in
      Json.to_file path j;
      Printf.printf "wrote %s\n" path);
    if not ok then exit 1
  in
  let mems_arg =
    let doc =
      "Comma-separated fast-memory sizes to sweep (overrides -m), e.g. \
       64,256,1024."
    in
    Arg.(value & opt string "" & info [ "mems" ] ~doc ~docv:"M,...")
  in
  let sweep_arg =
    Arg.(
      value & flag
      & info [ "sweep" ]
          ~doc:
            "Sweep every cutoff (all powers of the base dimension from 1 to \
             n) instead of the single --cutoff, and report the I/O-optimal \
             cutoff per memory size.")
  in
  let policy_arg =
    Arg.(
      value & opt string "lru"
      & info [ "policy" ] ~doc:"Schedule policy: lru | belady | remat"
          ~docv:"P")
  in
  let json_arg =
    let doc = "Write the (clock-free) hybrid report as JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~doc ~docv:"FILE")
  in
  Cmd.v
    (Cmd.info "hybrid"
       ~doc:
         "Measure hybrid Strassen/classical CDAGs across cutoffs: schedule \
          I/O vs De Stefani's hybrid lower bounds, plus the flop-optimal \
          cutoff from the executor's counters")
    Term.(
      const run $ algorithm_arg $ n_arg 64 $ mems_arg $ m_arg 256
      $ cutoff_arg $ sweep_arg $ policy_arg $ json_arg $ jobs_arg)

(* --- fft --- *)

let fft_cmd =
  let run n m =
    let module Bf = Fmm_fft.Butterfly in
    let bf = Bf.build ~n in
    let w = Bf.workload bf in
    Printf.printf "butterfly: %d vertices, %d edges, %d levels\n"
      (Bf.n_vertices bf)
      (Fmm_graph.Digraph.n_edges bf.Bf.graph)
      bf.Bf.levels;
    let order = Bf.blocked_order bf ~block:(max 2 (m / 4)) in
    let res = Sch.run_lru w ~cache_size:m order in
    let bound = B.fft_memdep ~n ~m ~p:1 in
    Printf.printf "blocked schedule at M = %d: I/O = %d, bound = %.1f, ratio = %.2f\n"
      m (Tr.io res.Sch.counters) bound
      (float_of_int (Tr.io res.Sch.counters) /. bound)
  in
  Cmd.v
    (Cmd.info "fft" ~doc:"Simulate the FFT butterfly on the two-level machine")
    Term.(const run $ n_arg 256 $ m_arg 16)

(* --- parallel --- *)

let parallel_cmd =
  let run name n depth =
    let alg = find_algorithm name in
    let module PE = Fmm_machine.Par_exec in
    let cdag = Cd.build alg ~n in
    let r = PE.strassen_bfs_experiment cdag ~depth in
    let bound = B.fast_memind ~n ~p:r.PE.procs () in
    Printf.printf "P = %d processors (BFS partition at depth %d)\n" r.PE.procs depth;
    Printf.printf "total words moved:   %d\n" r.PE.total_words;
    Printf.printf "max words per proc:  %d\n" r.PE.max_words;
    Printf.printf "memind bound:        %.1f   (ratio %.2f)\n" bound
      (float_of_int r.PE.max_words /. bound)
  in
  let depth_arg =
    Arg.(value & opt int 1 & info [ "depth" ] ~doc:"BFS partition depth (P = 7^depth)")
  in
  Cmd.v
    (Cmd.info "parallel"
       ~doc:"Execute a BFS-partitioned CDAG on the distributed word-counting model")
    Term.(const run $ algorithm_arg $ n_arg 16 $ depth_arg)

(* --- search --- *)

let search_cmd =
  let run name seed =
    let alg = find_algorithm name in
    let module BS = Fmm_bilinear.Basis_search in
    let r = BS.search ~seed alg in
    Printf.printf "algorithm        %s\n" (A.name alg);
    Printf.printf "direct adds/step %d\n" (A.additions_per_step alg);
    Printf.printf "searched core    nnz %d/%d/%d, adds/step %d\n" r.BS.nnz_u
      r.BS.nnz_v r.BS.nnz_w r.BS.additions_per_step;
    Printf.printf "leading coeff    %.2f\n"
      (B.leading_coefficient_of_adds ~adds_per_step:r.BS.additions_per_step);
    Printf.printf "flatten = input  %b\n"
      (A.verify_brent (Fmm_bilinear.Alt_basis.flatten r.BS.alt));
    print_endline "\nsearched basis phi (x = phi . vec A):";
    Array.iter
      (fun row ->
        print_string "  [";
        Array.iteri (fun i c -> Printf.printf "%s%2d" (if i > 0 then "; " else "") c) row;
        print_endline " ]")
      (Fmm_bilinear.Alt_basis.phi r.BS.alt)
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Search seed") in
  Cmd.v
    (Cmd.info "search"
       ~doc:"Search sparsifying alternative bases (the Karstadt-Schwartz optimization)")
    Term.(const run $ algorithm_arg $ seed_arg)

(* --- bench --- *)

let bench_cmd =
  let module Exp = Fmm_obs.Experiment in
  let module Sink = Fmm_obs.Sink in
  let module Json = Fmm_obs.Json in
  let run filter json_out baseline tolerance time_tolerance list quiet jobs =
    if list then
      List.iter
        (fun e -> Printf.printf "%-8s %s\n" (Exp.id e) (Exp.title e))
        (Fmm_experiments.Experiments.all ())
    else begin
      let jobs = max 1 jobs in
      let filter =
        match String.trim filter with
        | "" -> None
        | s ->
          Some
            (String.split_on_char ',' s |> List.map String.trim
            |> List.filter (fun x -> x <> ""))
      in
      (* a filter that selects nothing (typo, or only separators) is an
         error, not a vacuous success: exit 2 with the known ids *)
      let selected =
        match Fmm_experiments.Experiments.select filter with
        | Ok es -> es
        | Error msg ->
          Printf.eprintf
            "fmmlab bench: %s\n(run `fmmlab bench --list` for the experiment index)\n"
            msg;
          exit 2
      in
      Fmm_experiments.Experiments.set_jobs jobs;
      let outcomes =
        if jobs = 1 then
          (* sequential: stream each outcome as it finishes *)
          List.map
            (fun e ->
              let o = Exp.run e in
              if not quiet then Sink.print_outcome ~wall:true o;
              o)
            selected
        else begin
          let os = Exp.run_all ~jobs selected in
          if not quiet then List.iter (Sink.print_outcome ~wall:true) os;
          os
        end
      in
      (match json_out with
      | None -> ()
      | Some path ->
        Json.to_file path
          (Sink.report_to_json ~created:(Unix.gettimeofday ()) outcomes);
        Printf.printf "wrote %s (%d experiment(s), schema v%d)\n" path
          (List.length outcomes) Sink.schema_version);
      match baseline with
      | None -> ()
      | Some path ->
        let base =
          match
            try Ok (Json.of_file path) with
            | Sys_error msg -> Error msg
            | Json.Parse_error msg -> Error (path ^ ": " ^ msg)
          with
          | Error msg ->
            Printf.eprintf "fmmlab bench: cannot load baseline: %s\n" msg;
            exit 2
          | Ok j -> (
            match Sink.outcomes_of_json j with
            | Ok o -> o
            | Error msg ->
              Printf.eprintf "fmmlab bench: %s: %s\n" path msg;
              exit 2)
        in
        let d =
          Sink.diff ~tolerance ?time_tolerance ~baseline:base ~current:outcomes ()
        in
        Printf.printf
          "\nvs baseline %s: %d row(s) compared, %d regression(s), %d \
           improvement(s), %d new\n"
          path d.Sink.n_compared d.Sink.n_regressions d.Sink.n_improvements
          d.Sink.n_unmatched;
        List.iter print_endline d.Sink.lines;
        if d.Sink.n_regressions > 0 then exit 1
    end
  in
  let filter_arg =
    let doc =
      "Comma-separated experiment ids to run (e.g. T1,RC). Default: all."
    in
    Arg.(value & opt string "" & info [ "filter" ] ~doc ~docv:"IDS")
  in
  let json_arg =
    let doc = "Write the structured report (schema v1) to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~doc ~docv:"FILE")
  in
  let baseline_arg =
    let doc =
      "Compare this run's bound ratios against the report in $(docv); exit 1 \
       if any regresses beyond the tolerance."
    in
    Arg.(value & opt (some string) None & info [ "baseline" ] ~doc ~docv:"FILE")
  in
  let tolerance_arg =
    let doc = "Relative ratio tolerance for --baseline (0.1 = 10%)." in
    Arg.(value & opt float 0.1 & info [ "tolerance" ] ~doc ~docv:"T")
  in
  let time_tolerance_arg =
    let doc =
      "Also gate per-experiment wall clocks within this relative tolerance \
       (off by default: timings are load-sensitive, ratios are not)."
    in
    Arg.(value & opt (some float) None & info [ "time-tolerance" ] ~doc ~docv:"T")
  in
  let list_arg =
    Arg.(value & flag & info [ "list" ] ~doc:"List experiment ids and exit")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress the ASCII tables")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Run the experiment registry: ASCII tables, JSON reports, baseline \
          regression gating")
    Term.(
      const run $ filter_arg $ json_arg $ baseline_arg $ tolerance_arg
      $ time_tolerance_arg $ list_arg $ quiet_arg $ jobs_arg)

(* --- optimize --- *)

let optimize_cmd =
  let module O = Fmm_opt.Optimizer in
  let module Json = Fmm_obs.Json in
  let run name n m beam iters seed json_out full_replay jobs =
    let alg = find_algorithm name in
    let cdag = Cd.build alg ~n in
    let jobs = max 1 jobs in
    let oracle_mode = if full_replay then O.Full_replay else O.Incremental in
    let r =
      O.optimize_cdag cdag ~cache_size:m ~beam ~iters ~seed ~oracle_mode ~jobs
    in
    let best = r.O.best in
    let c = best.O.result.Sch.counters in
    Printf.printf "workload    %s\nM           %d\n" r.O.workload m;
    Printf.printf "search      beam %d, %d iteration(s), seed %d\n" r.O.beam_width
      r.O.iterations r.O.seed;
    Printf.printf "evaluated   %d candidate(s), %d infeasible, %d oracle-checked\n"
      r.O.evaluated r.O.rejected r.O.accepted;
    Printf.printf "oracle      %s: re-interpreted %d of %d trace event(s)%s\n"
      (O.oracle_mode_name r.O.oracle_mode)
      r.O.oracle_replayed r.O.oracle_total
      (if r.O.oracle_total > 0 then
         Printf.sprintf " (%.1f%%)"
           (100. *. float_of_int r.O.oracle_replayed
           /. float_of_int r.O.oracle_total)
       else "");
    List.iter
      (fun (pname, io) ->
        Printf.printf "baseline    %-8s %s\n" pname
          (match io with Some io -> string_of_int io | None -> "infeasible"))
      r.O.baselines;
    Printf.printf "history     %s\n"
      (String.concat " -> " (List.map string_of_int r.O.history));
    Printf.printf "best        %s\n" best.O.candidate.O.provenance;
    Printf.printf "  policy    %s\n" (O.policy_name best.O.candidate.O.policy);
    Printf.printf "  I/O       %d (loads %d, stores %d)\n" best.O.io c.Tr.loads
      c.Tr.stores;
    Printf.printf "  computes  %d (recomputed %d)\n" c.Tr.computes c.Tr.recomputes;
    let bound = B.fast_sequential ~n ~m () in
    Printf.printf "  Thm 1.1   %.1f   (best/bound = %.3f)\n" bound
      (float_of_int best.O.io /. bound);
    match json_out with
    | None -> ()
    | Some path ->
      let j =
        Json.Obj
          [
            ("workload", Json.Str r.O.workload);
            ("algorithm", Json.Str (A.name alg));
            ("n", Json.Int n);
            ("cache_size", Json.Int r.O.cache_size);
            ("seed", Json.Int r.O.seed);
            ("beam", Json.Int r.O.beam_width);
            ("iters", Json.Int r.O.iterations);
            ("evaluated", Json.Int r.O.evaluated);
            ("rejected", Json.Int r.O.rejected);
            ("accepted", Json.Int r.O.accepted);
            ("oracle_mode", Json.Str (O.oracle_mode_name r.O.oracle_mode));
            ("oracle_replayed", Json.Int r.O.oracle_replayed);
            ("oracle_total", Json.Int r.O.oracle_total);
            ( "baselines",
              Json.Obj
                (List.map
                   (fun (pname, io) ->
                     ( pname,
                       match io with Some io -> Json.Int io | None -> Json.Null ))
                   r.O.baselines) );
            ("history", Json.List (List.map (fun x -> Json.Int x) r.O.history));
            ( "best",
              Json.Obj
                [
                  ("provenance", Json.Str best.O.candidate.O.provenance);
                  ("policy", Json.Str (O.policy_name best.O.candidate.O.policy));
                  ("io", Json.Int best.O.io);
                  ("loads", Json.Int c.Tr.loads);
                  ("stores", Json.Int c.Tr.stores);
                  ("computes", Json.Int c.Tr.computes);
                  ("recomputes", Json.Int c.Tr.recomputes);
                ] );
            ("bound", Json.Float bound);
            ("ratio", Json.Float (float_of_int best.O.io /. bound));
          ]
      in
      Json.to_file path j;
      Printf.printf "wrote %s\n" path
  in
  let beam_arg =
    Arg.(value & opt int 4 & info [ "beam" ] ~doc:"Beam width" ~docv:"B")
  in
  let iters_arg =
    Arg.(
      value & opt int 4 & info [ "iters" ] ~doc:"Search iterations" ~docv:"K")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Master PRNG seed" ~docv:"S")
  in
  let json_arg =
    let doc = "Write the optimizer report as JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~doc ~docv:"FILE")
  in
  let full_replay_arg =
    Arg.(
      value & flag
      & info [ "full-replay" ]
          ~doc:
            "Run the legality oracle in full-replay mode (Cache_machine + \
             full Trace_check per admitted schedule) instead of the default \
             incremental check-delta mode. Search results are identical; \
             this is the slow differential reference.")
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:
         "Beam-search schedules (order x spill-vs-recompute) against the \
          Theorem 1.1 bound")
    Term.(
      const run $ algorithm_arg $ n_arg 16 $ m_arg 64 $ beam_arg $ iters_arg
      $ seed_arg $ json_arg $ full_replay_arg $ jobs_arg)

(* --- faults --- *)

let faults_cmd =
  let module Sim = Fmm_fault.Sim in
  let module PE = Fmm_machine.Par_exec in
  let module Json = Fmm_obs.Json in
  let run name n depth procs policy_spec fail seed json_out jobs =
    let alg = find_algorithm name in
    let cdag = Cd.build alg ~n in
    let work = Fmm_machine.Workload.of_cdag cdag in
    let procs =
      if procs > 0 then procs
      else Fmm_util.Combinat.pow_int (A.rank alg) depth
    in
    let assignment = PE.bfs_assignment cdag ~depth ~procs in
    let policies =
      String.split_on_char ',' policy_spec
      |> List.filter (fun s -> String.trim s <> "")
      |> List.map (fun s ->
             match Sim.policy_of_string s with
             | Some p -> p
             | None ->
               Printf.eprintf
                 "unknown policy %S; known: recompute, refetch, replicate-k\n"
                 s;
               exit 2)
    in
    if policies = [] then begin
      prerr_endline "no recovery policy given";
      exit 2
    end;
    let bound = B.fast_memind ~n ~p:procs () in
    (* one simulation per policy on the domain pool; the simulator is
       pure in (workload, assignment, policy, fail, seed), so the
       report is byte-identical at any --jobs *)
    let reports =
      Fmm_par.Pool.map ~jobs:(max 1 jobs)
        (fun policy ->
          let r = Sim.simulate work ~procs ~assignment ~policy ~fail ~seed ~bound () in
          (r, Sim.check work r))
        policies
    in
    let baseline =
      match reports with
      | (r, _) :: _ -> r.Sim.baseline_total
      | [] -> 0
    in
    Printf.printf "workload    %s n=%d (BFS depth %d, P = %d)\n" (A.name alg) n
      depth procs;
    Printf.printf "failures    %d seeded crash(es), seed %d\n" fail seed;
    Printf.printf "fault-free  %d words total\n" baseline;
    let t =
      T.create ~title:"recovery policies"
        ~headers:
          [ "policy"; "total"; "max/proc"; "recovery"; "replication";
            "recomputed"; "overhead"; "vs Thm 1.1"; "replay" ]
        ~aligns:
          [ T.Left; T.Right; T.Right; T.Right; T.Right; T.Right; T.Right;
            T.Right; T.Left ] ()
    in
    let ok = ref true in
    List.iter
      (fun (r, replay) ->
        let errs =
          Fmm_analysis.Diagnostic.n_errors
            replay.Fmm_analysis.Par_check.report
          + replay.Fmm_analysis.Par_check.lost_outputs
        in
        if errs > 0 then ok := false;
        T.add_row t
          [
            Sim.policy_name r.Sim.policy;
            string_of_int r.Sim.total_words;
            string_of_int r.Sim.max_words;
            string_of_int r.Sim.recovery_words;
            string_of_int r.Sim.replication_words;
            string_of_int r.Sim.recomputed;
            Printf.sprintf "%.3f" r.Sim.overhead_total;
            (match r.Sim.bound_ratio with
            | Some x -> Printf.sprintf "%.2f" x
            | None -> "-");
            (if errs = 0 then "clean" else Printf.sprintf "%d ERRORS" errs);
          ])
      reports;
    T.print t;
    (match json_out with
    | None -> ()
    | Some path ->
      (* no wall clocks in this report: a fixed (algorithm, n, depth,
         procs, fail, seed) tuple must serialize byte-identically at
         any --jobs *)
      let j =
        Json.Obj
          [
            ("schema", Json.Str "fmm-faults/v1");
            ("algorithm", Json.Str (A.name alg));
            ("n", Json.Int n);
            ("depth", Json.Int depth);
            ("procs", Json.Int procs);
            ("fail", Json.Int fail);
            ("seed", Json.Int seed);
            ("baseline_total", Json.Int baseline);
            ("bound", Json.Float bound);
            ( "policies",
              Json.List
                (List.map
                   (fun (r, replay) ->
                     Json.Obj
                       [
                         ("policy", Json.Str (Sim.policy_name r.Sim.policy));
                         ( "failures",
                           Json.List
                             (List.map
                                (fun e ->
                                  Json.Obj
                                    [
                                      ("proc", Json.Int e.Sim.proc);
                                      ("step", Json.Int e.Sim.step);
                                    ])
                                r.Sim.failures) );
                         ("total_words", Json.Int r.Sim.total_words);
                         ("max_words", Json.Int r.Sim.max_words);
                         ("recovery_words", Json.Int r.Sim.recovery_words);
                         ( "replication_words",
                           Json.Int r.Sim.replication_words );
                         ("recomputed", Json.Int r.Sim.recomputed);
                         ("overhead_total", Json.Float r.Sim.overhead_total);
                         ("overhead_max", Json.Float r.Sim.overhead_max);
                         ( "bound_ratio",
                           match r.Sim.bound_ratio with
                           | Some x -> Json.Float x
                           | None -> Json.Null );
                         ( "replay_errors",
                           Json.Int
                             (Fmm_analysis.Diagnostic.n_errors
                                replay.Fmm_analysis.Par_check.report) );
                         ( "lost_outputs",
                           Json.Int replay.Fmm_analysis.Par_check.lost_outputs
                         );
                       ])
                   reports) );
          ]
      in
      Json.to_file path j;
      Printf.printf "wrote %s\n" path);
    if not !ok then exit 1
  in
  let depth_arg =
    Arg.(
      value & opt int 1
      & info [ "depth" ] ~doc:"BFS partition depth" ~docv:"D")
  in
  let policy_arg =
    let doc =
      "Comma-separated recovery policies: recompute, refetch, replicate-k."
    in
    Arg.(
      value
      & opt string "recompute,refetch,replicate-2"
      & info [ "policy" ] ~doc ~docv:"P,...")
  in
  let fail_arg =
    Arg.(
      value & opt int 1
      & info [ "fail" ] ~doc:"Number of seeded crashes" ~docv:"K")
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~doc:"Failure-schedule PRNG seed" ~docv:"S")
  in
  let json_arg =
    let doc = "Write the fault report as JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~doc ~docv:"FILE")
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Inject seeded processor crashes into the distributed run and price \
          the recovery policies")
    Term.(
      const run $ algorithm_arg $ n_arg 16 $ depth_arg $ p_arg 0 $ policy_arg
      $ fail_arg $ seed_arg $ json_arg $ jobs_arg)

(* --- cosma --- *)

let cosma_cmd =
  let module PE = Fmm_machine.Par_exec in
  let module G = Fmm_sched.Generator in
  let module Json = Fmm_obs.Json in
  let module Pc = Fmm_analysis.Par_check in
  let module Sim = Fmm_fault.Sim in
  let run name n procs order_name mem_spec rounds grid fail seed json_out jobs
      =
    let alg = find_algorithm name in
    if procs < 1 then begin
      prerr_endline "P must be >= 1";
      exit 2
    end;
    let cdag = Cd.build alg ~n in
    let work = Fmm_machine.Workload.of_cdag cdag in
    let order =
      match order_name with
      | "dfs" -> Fmm_machine.Orders.recursive_dfs cdag
      | "naive" -> Fmm_machine.Orders.naive_topo cdag
      | s ->
        Printf.eprintf "unknown order %S; known: dfs, naive\n" s;
        exit 2
    in
    let mems =
      String.split_on_char ',' mem_spec
      |> List.filter (fun s -> String.trim s <> "")
      |> List.map (fun s ->
             match int_of_string_opt (String.trim s) with
             | Some m when m > 0 -> m
             | _ ->
               Printf.eprintf "bad memory size %S\n" s;
               exit 2)
    in
    let split = G.split_order ~rounds work ~procs (Array.of_list order) in
    let depth =
      let t = A.rank alg in
      let rec go d subtrees =
        if subtrees >= procs then d else go (d + 1) (subtrees * t)
      in
      go 0 1
    in
    let bfs_asg = PE.bfs_assignment cdag ~depth ~procs in
    let bound = G.memind_bound cdag ~procs in
    let replay = G.validate work ~procs ~assignment:split.G.assignment in
    let replay_errs =
      Fmm_analysis.Diagnostic.n_errors replay.Pc.report + replay.Pc.lost_outputs
    in
    (* one executor run per (schedule, memory) cell on the domain pool;
       the executor is pure in its arguments, so the report is
       byte-identical at any --jobs *)
    let cells =
      List.concat_map
        (fun m -> [ (`Bfs, m); (`Gen, m) ])
        (max_int :: mems)
    in
    let rows =
      Fmm_par.Pool.map ~jobs:(max 1 jobs)
        (fun (tag, m) ->
          let assignment =
            match tag with `Bfs -> bfs_asg | `Gen -> split.G.assignment
          in
          let r =
            if m = max_int then PE.run work ~procs ~assignment
            else PE.run_limited work ~procs ~assignment ~local_memory:m
          in
          (tag, m, r))
        cells
    in
    Printf.printf "workload    %s n=%d, P = %d (BFS depth %d)\n" (A.name alg) n
      procs depth;
    Printf.printf "order       %s (%d vertices), %d boundary-search rounds\n"
      order_name (Array.length split.G.order) rounds;
    Printf.printf "Thm 4.1     n^2 / P^(2/omega0) = %.1f words/proc\n" bound;
    Printf.printf "replay      %s\n"
      (if replay_errs = 0 then "clean"
       else Printf.sprintf "%d ERRORS" replay_errs);
    let t =
      T.create ~title:"BFS deal vs generated contiguous split"
        ~headers:
          [ "schedule"; "M"; "total"; "max/proc"; "vs Thm 4.1" ]
        ~aligns:[ T.Left; T.Right; T.Right; T.Right; T.Right ] ()
    in
    let gate_ok = ref (replay_errs = 0) in
    let bfs_total = Hashtbl.create 8 in
    List.iter
      (fun (tag, m, (r : PE.result)) ->
        (match tag with
        | `Bfs -> Hashtbl.replace bfs_total m r.PE.total_words
        | `Gen ->
          (* the acceptance gate: at the same (P, M) the generated
             schedule never communicates more than the BFS deal *)
          if r.PE.total_words > Hashtbl.find bfs_total m then gate_ok := false);
        T.add_row t
          [
            (match tag with `Bfs -> "bfs" | `Gen -> "generated");
            (if m = max_int then "inf" else string_of_int m);
            string_of_int r.PE.total_words;
            string_of_int r.PE.max_words;
            Printf.sprintf "%.2f" (float_of_int r.PE.max_words /. bound);
          ])
      rows;
    T.print t;
    let fault =
      if fail <= 0 then None
      else begin
        let r =
          Sim.simulate work ~procs ~assignment:split.G.assignment
            ~policy:Sim.Refetch_owner ~fail ~seed ~bound ()
        in
        let rep = Sim.check work r in
        let errs =
          Fmm_analysis.Diagnostic.n_errors rep.Pc.report + rep.Pc.lost_outputs
        in
        if errs > 0 then gate_ok := false;
        Printf.printf
          "faults      refetch under %d crash(es): overhead %.3f, replay %s\n"
          fail r.Sim.overhead_total
          (if errs = 0 then "clean" else Printf.sprintf "%d ERRORS" errs);
        Some (r, errs)
      end
    in
    let grid_part =
      if not grid then None
      else begin
        (* the classical end of the hybrid family under the same P:
           exact-integer (p1, p2, p3) bricks, measured-argmin *)
        let classical = Cd.build alg ~n ~cutoff:n in
        let wc = Fmm_machine.Workload.of_cdag classical in
        let (p1, p2, p3), cost, r, asg = G.grid_search classical ~procs in
        let rep = G.validate wc ~procs ~assignment:asg in
        let errs =
          Fmm_analysis.Diagnostic.n_errors rep.Pc.report + rep.Pc.lost_outputs
        in
        if errs > 0 then gate_ok := false;
        Printf.printf
          "grid        best (p1,p2,p3) = (%d,%d,%d): %d words measured, %.0f \
           modeled/proc, replay %s\n"
          p1 p2 p3 r.PE.total_words
          cost.Fmm_machine.Par_model.words_per_proc
          (if errs = 0 then "clean" else Printf.sprintf "%d ERRORS" errs);
        Some ((p1, p2, p3), cost, r, errs)
      end
    in
    Printf.printf "gate        %s\n" (if !gate_ok then "ok" else "FAIL");
    (match json_out with
    | None -> ()
    | Some path ->
      (* no wall clocks: a fixed configuration serializes
         byte-identically at any --jobs *)
      let j =
        Json.Obj
          [
            ("schema", Json.Str "fmm-cosma/v1");
            ("algorithm", Json.Str (A.name alg));
            ("n", Json.Int n);
            ("procs", Json.Int procs);
            ("order", Json.Str order_name);
            ("rounds", Json.Int rounds);
            ("bfs_depth", Json.Int depth);
            ("bound", Json.Float bound);
            ("crossing", Json.Int split.G.crossing);
            ( "cuts",
              Json.List
                (Array.to_list (Array.map (fun c -> Json.Int c) split.G.cuts))
            );
            ("replay_errors", Json.Int replay_errs);
            ("gate_ok", Json.Bool !gate_ok);
            ( "rows",
              Json.List
                (List.map
                   (fun (tag, m, (r : PE.result)) ->
                     Json.Obj
                       [
                         ( "schedule",
                           Json.Str
                             (match tag with
                             | `Bfs -> "bfs"
                             | `Gen -> "generated") );
                         ( "memory",
                           if m = max_int then Json.Null else Json.Int m );
                         ("total_words", Json.Int r.PE.total_words);
                         ("max_words", Json.Int r.PE.max_words);
                         ( "bound_ratio",
                           Json.Float (float_of_int r.PE.max_words /. bound) );
                       ])
                   rows) );
            ( "fault",
              match fault with
              | None -> Json.Null
              | Some (r, errs) ->
                Json.Obj
                  [
                    ("policy", Json.Str (Sim.policy_name r.Sim.policy));
                    ("fail", Json.Int fail);
                    ("seed", Json.Int seed);
                    ("total_words", Json.Int r.Sim.total_words);
                    ("max_words", Json.Int r.Sim.max_words);
                    ("overhead_total", Json.Float r.Sim.overhead_total);
                    ("overhead_max", Json.Float r.Sim.overhead_max);
                    ("replay_errors", Json.Int errs);
                  ] );
            ( "grid",
              match grid_part with
              | None -> Json.Null
              | Some ((p1, p2, p3), cost, r, errs) ->
                Json.Obj
                  [
                    ( "grid",
                      Json.List [ Json.Int p1; Json.Int p2; Json.Int p3 ] );
                    ( "model_words_per_proc",
                      Json.Float cost.Fmm_machine.Par_model.words_per_proc );
                    ("total_words", Json.Int r.PE.total_words);
                    ("max_words", Json.Int r.PE.max_words);
                    ("replay_errors", Json.Int errs);
                  ] );
          ]
      in
      Json.to_file path j;
      Printf.printf "wrote %s\n" path);
    if not !gate_ok then exit 1
  in
  let order_arg =
    Arg.(
      value & opt string "dfs"
      & info [ "order" ] ~doc:"Sequential order to split: dfs or naive."
          ~docv:"ORD")
  in
  let memory_arg =
    Arg.(
      value
      & opt string "64,256,1024"
      & info [ "memory" ]
          ~doc:
            "Comma-separated local-memory sizes for the limited-memory sweep \
             (an unlimited row is always included)."
          ~docv:"M,...")
  in
  let rounds_arg =
    Arg.(
      value & opt int 4
      & info [ "rounds" ] ~doc:"Boundary local-search rounds" ~docv:"R")
  in
  let grid_arg =
    Arg.(
      value & flag
      & info [ "grid" ]
          ~doc:
            "Also search (p1,p2,p3) grids on the classical (cutoff = n) CDAG.")
  in
  let fail_arg =
    Arg.(
      value & opt int 0
      & info [ "fail" ]
          ~doc:
            "Crash the generated schedule this many times under the refetch \
             policy (0 = skip)."
          ~docv:"K")
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~doc:"Failure-schedule PRNG seed" ~docv:"S")
  in
  let json_arg =
    let doc = "Write the report as JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~doc ~docv:"FILE")
  in
  Cmd.v
    (Cmd.info "cosma"
       ~doc:
         "Generate a COSMA-style communication-minimizing schedule (contiguous \
          split of a sequential order) and race it against the BFS deal")
    Term.(
      const run $ algorithm_arg $ n_arg 16 $ p_arg 7 $ order_arg $ memory_arg
      $ rounds_arg $ grid_arg $ fail_arg $ seed_arg $ json_arg $ jobs_arg)

(* --- table1 --- *)

let table1_cmd =
  let run () =
    let t =
      T.create ~title:"Table I: known lower bounds (see paper)"
        ~headers:
          [ "algorithm"; "omega0"; "no-recomputation"; "with recomputation" ]
        ~aligns:[ T.Left; T.Right; T.Left; T.Left ] ()
    in
    List.iter
      (fun row ->
        T.add_row t
          [
            row.B.algorithm;
            Printf.sprintf "%.3f" row.B.omega0;
            row.B.no_recomp_citations;
            B.recomputation_status_string row.B.with_recomp;
          ])
      B.table1_rows;
    T.print t
  in
  Cmd.v (Cmd.info "table1" ~doc:"Print the Table I summary") Term.(const run $ const ())

let () =
  let info =
    Cmd.info "fmmlab" ~version:"1.0.0"
      ~doc:"I/O-complexity laboratory for fast matrix multiplication with recomputations"
  in
  (* GNU-style tolerance: accept --x for the single-char options, which
     cmdliner only registers in short form *)
  let argv =
    Array.map
      (function
        | ("--n" | "--m" | "--p" | "--a" | "--j") as s ->
          String.sub s 1 (String.length s - 1)
        | s -> s)
      Sys.argv
  in
  exit
    (Cmd.eval ~argv
       (Cmd.group info
          [ bounds_cmd; verify_cmd; simulate_cmd; analyze_cmd; pebble_cmd;
            cdag_cmd; census_cmd; exec_cmd; hybrid_cmd; fft_cmd; parallel_cmd;
            search_cmd; optimize_cmd; faults_cmd; cosma_cmd; bench_cmd;
            table1_cmd ]))
