(* Certifier demo: the static analyses of Fmm_analysis.Dataflow
   (MAXLIVE, the policy-independent I/O lower bound, trace profiles)
   cross-checked against the dynamic evidence of the schedulers — the
   machinery behind `fmmlab analyze --certify` — plus the incremental
   legality oracle (check_cached / check_delta) that the beam-search
   optimizer runs on.

   Run with:  dune exec examples/certifier_demo.exe *)

module Cd = Fmm_cdag.Cdag
module S = Fmm_bilinear.Strassen
module W = Fmm_machine.Workload
module Tr = Fmm_machine.Trace
module Ord = Fmm_machine.Orders
module Sch = Fmm_machine.Schedulers
module Df = Fmm_analysis.Dataflow
module Tc = Fmm_analysis.Trace_check
module Ct = Fmm_analysis.Certify
module O = Fmm_opt.Optimizer

let () =
  let n = 8 and m = 48 in
  let cdag = Cd.build S.strassen ~n in
  let w = W.of_cdag cdag in
  let order = Ord.recursive_dfs cdag in
  Printf.printf "H^{%dx%d}: %d vertices; M = %d\n\n" n n (Cd.n_vertices cdag) m;

  print_endline "=== static: liveness of the recursive DFS order ===";
  let lv = Df.order_liveness w (Array.of_list order) in
  Printf.printf
    "  MAXLIVE %d (spill-free minimum cache), %d inputs used, %d outputs stored\n"
    lv.Df.maxlive lv.Df.inputs_used lv.Df.outputs_stored;
  Printf.printf "  static I/O lower bound at M=%d: %d\n" m
    (Df.io_lower_bound lv ~cache_size:m);
  Printf.printf "  ... and at M=MAXLIVE it collapses to inputs+outputs: %d\n\n"
    (Df.io_lower_bound lv ~cache_size:lv.Df.maxlive);

  print_endline "=== dynamic: the certifier's static/dynamic cross-check ===";
  let c = Ct.run ~cdag ~cache_size:m w ~order in
  List.iter
    (fun r ->
      if r.Ct.feasible then
        Printf.printf "  %-7s io %6d  peak %3d  static min-cache %3d  %s\n"
          r.Ct.policy r.Ct.io r.Ct.peak_occupancy r.Ct.min_cache
          (if r.Ct.agree then "agree" else "MISMATCH")
      else Printf.printf "  %-7s infeasible at M=%d\n" r.Ct.policy m)
    c.Ct.rows;
  (match (c.Ct.segment_r, c.Ct.segment_bound, c.Ct.segment_min_io) with
  | Some r, Some b, Some io ->
    Printf.printf "  Lemma 3.6 (r=%d): min segment I/O %d >= bound %d\n" r io b
  | _ -> ());
  Printf.printf "  certified: %b\n\n" (Ct.certified c);

  print_endline "=== the spill-free regime: Belady at M = MAXLIVE ===";
  let res = Sch.run_belady w ~cache_size:lv.Df.maxlive order in
  Printf.printf "  measured io %d = inputs %d + outputs %d (the bound is tight)\n\n"
    (Tr.io res.Sch.counters) lv.Df.inputs_used lv.Df.outputs_stored;

  print_endline "=== the incremental oracle: check_delta vs a full check ===";
  let trace = (Sch.run_lru w ~cache_size:m order).Sch.trace in
  let _, base = Tc.check_cached ~cache_size:m w trace in
  (* mutate one window: swap two adjacent loads mid-trace *)
  let arr = Array.of_list trace in
  let rec find i =
    match (arr.(i), arr.(i + 1)) with
    | Tr.Load a, Tr.Load b when a <> b -> i
    | _ -> find (i + 1)
  in
  let i = find (Array.length arr / 2) in
  let tmp = arr.(i) in
  arr.(i) <- arr.(i + 1);
  arr.(i + 1) <- tmp;
  let v = Tc.check_delta ~base w (Array.to_list arr) in
  Printf.printf
    "  %d-event trace, one swapped window: %d reused (prefix), %d replayed, %d reused (suffix)\n"
    (Array.length arr) v.Tc.reused_prefix v.Tc.replayed v.Tc.reused_suffix;
  Printf.printf "  verdict: %d violation(s), peak %d\n\n" v.Tc.v_errors
    v.Tc.v_peak_occupancy;

  print_endline "=== the same oracle inside the beam search ===";
  let r = O.optimize_cdag cdag ~cache_size:m ~beam:3 ~iters:2 in
  Printf.printf "  best io %d (%s); oracle re-interpreted %d of %d events (%.1f%%)\n"
    r.O.best.O.io (O.oracle_mode_name r.O.oracle_mode) r.O.oracle_replayed
    r.O.oracle_total
    (100. *. float_of_int r.O.oracle_replayed /. float_of_int (max 1 r.O.oracle_total))
