(* Static analyzer demo: run all three Fmm_analysis passes over a
   depth-3 Strassen CDAG — clean artifacts first, then deliberately
   corrupted ones — and show how each defect is pinned to a vertex,
   trace step or edge. The same checks back the `fmmlab analyze`
   subcommand and the test-suite cross-checks.

   Run with:  dune exec examples/analyzer_demo.exe *)

module Cd = Fmm_cdag.Cdag
module S = Fmm_bilinear.Strassen
module W = Fmm_machine.Workload
module Tr = Fmm_machine.Trace
module Ord = Fmm_machine.Orders
module Sch = Fmm_machine.Schedulers
module PE = Fmm_machine.Par_exec
module Dg = Fmm_analysis.Diagnostic
module Lint = Fmm_analysis.Cdag_lint
module Tc = Fmm_analysis.Trace_check
module Pc = Fmm_analysis.Par_check

let () =
  let n = 8 and m = 64 and procs = 7 in
  let cdag = Cd.build S.strassen ~n in
  let w = W.of_cdag cdag in
  Printf.printf "H^{%dx%d}: %d vertices, %d edges; M = %d\n\n" n n
    (Cd.n_vertices cdag) (Cd.n_edges cdag) m;

  print_endline "=== pass 1: CDAG lint (Definition 2.1 / Fact 2.1) ===";
  print_endline (Dg.render (Lint.lint cdag));
  print_newline ();

  print_endline "=== pass 2: trace check (LRU schedule) ===";
  let res = Sch.run_lru w ~cache_size:m (Ord.recursive_dfs cdag) in
  let chk = Tc.check ~cache_size:m w res.Sch.trace in
  print_endline (Dg.render chk.Tc.report);
  Printf.printf "  peak occupancy %d / M = %d; io = %d\n\n"
    chk.Tc.peak_occupancy m (Tr.io chk.Tc.counters);

  print_endline "=== pass 2 on a recomputing schedule ===";
  let rem = Sch.run_rematerialize w ~cache_size:m (Ord.recursive_dfs cdag) in
  let chk_r = Tc.check ~cache_size:m w rem.Sch.trace in
  print_endline (Dg.render chk_r.Tc.report);
  print_newline ();

  print_endline "=== pass 3: parallel race check (BFS partition) ===";
  let assignment = PE.bfs_assignment cdag ~depth:1 ~procs in
  let pr = Pc.check w ~procs ~assignment in
  print_endline (Dg.render pr.Pc.report);
  Printf.printf "  %d words moved; ownership: %s\n\n" pr.Pc.total_words
    (String.concat " "
       (Array.to_list (Array.map string_of_int pr.Pc.owned)));

  print_endline "=== corruption 1: delete the first Load of the trace ===";
  let deleted = ref false in
  let corrupted =
    List.filter
      (function
        | Tr.Load _ when not !deleted ->
          deleted := true;
          false
        | _ -> true)
      res.Sch.trace
  in
  let bad = Tc.check ~cache_size:m w corrupted in
  print_endline (Dg.render ~limit:3 bad.Tc.report);
  print_newline ();

  print_endline "=== corruption 2: halve the cache under the same trace ===";
  let bad2 = Tc.check ~cache_size:(m / 2) w res.Sch.trace in
  print_endline (Dg.render ~limit:3 bad2.Tc.report);
  print_newline ();

  print_endline "=== corruption 3: reassign a producer cross-processor ===";
  (* a 4-stage pipeline makes the hazard mechanism plain: with x, y on
     processor 0 and z on processor 1, running the owners phase by
     phase (p0's program, then p1's) is race-free; move the producer x
     to the later phase and p0's y now reads a word p1 has not sent *)
  let gp = Fmm_graph.Digraph.create () in
  let ids = Fmm_graph.Digraph.add_vertices gp 4 in
  Fmm_graph.Digraph.add_edge gp ids.(0) ids.(1);
  Fmm_graph.Digraph.add_edge gp ids.(1) ids.(2);
  Fmm_graph.Digraph.add_edge gp ids.(2) ids.(3);
  let wp =
    W.make ~name:"pipeline" ~graph:gp ~inputs:[| ids.(0) |]
      ~outputs:[| ids.(3) |] ()
  in
  let a_ok = [| 0; 0; 0; 1 |] in
  let ok =
    Pc.check
      ~order:(Pc.phased_order wp ~procs:2 ~assignment:a_ok)
      wp ~procs:2 ~assignment:a_ok
  in
  Printf.printf "  in -> x -> y -> out on 2 phased processors: %d race(s)\n"
    ok.Pc.races;
  let a_bad = [| 0; 1; 0; 1 |] in
  let bad3 =
    Pc.check
      ~order:(Pc.phased_order wp ~procs:2 ~assignment:a_bad)
      wp ~procs:2 ~assignment:a_bad
  in
  Printf.printf "  after reassigning the producer x to processor 1:\n";
  print_endline (Dg.render bad3.Pc.report)
