(* Optimizer demo: beam-search over (compute order x spill-vs-recompute
   decisions) on Strassen's H^{n x n}, and compare the best found
   schedule against the three fixed policies and the Theorem 1.1 lower
   bound. The gap that remains after optimization is the paper's point:
   no amount of rescheduling or recomputation buys I/O below
   Omega((n / sqrt M)^{omega0} M).

   Run with:  dune exec examples/opt_demo.exe *)

module S = Fmm_bilinear.Strassen
module Cd = Fmm_cdag.Cdag
module B = Fmm_bounds.Bounds
module O = Fmm_opt.Optimizer

let () =
  let n = 16 and m = 64 in
  Printf.printf "=== optimizing Strassen H^{%dx%d} at M = %d ===\n\n" n n m;
  let cdag = Cd.build S.strassen ~n in
  let r = O.optimize_cdag cdag ~cache_size:m ~beam:4 ~iters:4 ~seed:1 ~jobs:2 in
  Printf.printf "workload %s: %d candidates evaluated (%d infeasible), %d \
                 schedules oracle-checked\n\n"
    r.O.workload r.O.evaluated r.O.rejected r.O.accepted;
  print_endline "fixed-policy baselines (recursive DFS order):";
  List.iter
    (fun (name, io) ->
      match io with
      | Some io -> Printf.printf "   %-8s io = %6d\n" name io
      | None -> Printf.printf "   %-8s (infeasible at this cache size)\n" name)
    r.O.baselines;
  print_newline ();
  print_endline "best-I/O trajectory (after seeding, then per iteration):";
  Printf.printf "   %s\n\n"
    (String.concat " -> " (List.map string_of_int r.O.history));
  let best = r.O.best in
  Printf.printf "best schedule: %s\n" best.O.candidate.O.provenance;
  Printf.printf "   policy     %s\n" (O.policy_name best.O.candidate.O.policy);
  let c = best.O.result.Fmm_machine.Schedulers.counters in
  Printf.printf "   io         %d  (loads %d, stores %d)\n" best.O.io
    c.Fmm_machine.Trace.loads c.Fmm_machine.Trace.stores;
  Printf.printf "   computes   %d  (recomputes %d)\n"
    c.Fmm_machine.Trace.computes c.Fmm_machine.Trace.recomputes;
  let lb = B.fast_sequential ~n ~m () in
  Printf.printf "   Theorem 1.1 lower bound: %.0f   ratio io/bound = %.3f\n" lb
    (float_of_int best.O.io /. lb);
  assert (float_of_int best.O.io >= lb);
  print_newline ();
  print_endline "final beam:";
  List.iter
    (fun ev ->
      Printf.printf "   io = %6d  %-22s %s\n" ev.O.io
        (O.policy_name ev.O.candidate.O.policy)
        ev.O.candidate.O.provenance)
    r.O.beam
