(* Fault-injection demo: crash processors mid-run and price the three
   recovery policies in the paper's currency — words moved per
   processor (Theorem 1.1).

   The walk: a fault-free BFS-partitioned Strassen run, the same run
   with seeded crashes under each policy, the replay validation that
   proves every recovered execution still satisfies read-before-send,
   and a failure-count sweep showing how recovery overhead scales.

   Run with:  dune exec examples/fault_demo.exe *)

module Cd = Fmm_cdag.Cdag
module S = Fmm_bilinear.Strassen
module W = Fmm_machine.Workload
module PE = Fmm_machine.Par_exec
module B = Fmm_bounds.Bounds
module Sim = Fmm_fault.Sim
module Dg = Fmm_analysis.Diagnostic
module Pc = Fmm_analysis.Par_check

let () =
  let n = 16 and depth = 1 and procs = 7 and seed = 3 in
  let cdag = Cd.build S.strassen ~n in
  let work = W.of_cdag cdag in
  let assignment = PE.bfs_assignment cdag ~depth ~procs in
  let bound = B.fast_memind ~n ~p:procs () in

  let base = PE.run work ~procs ~assignment in
  Printf.printf "H^{%dx%d} on P = %d (BFS depth %d)\n" n n procs depth;
  Printf.printf "fault-free: %d words total, %d max/proc (Thm 1.1 memind %.1f)\n\n"
    base.PE.total_words base.PE.max_words bound;

  print_endline "=== zero failures: every policy IS the plain executor ===";
  List.iter
    (fun policy ->
      let r = Sim.simulate work ~procs ~assignment ~policy ~fail:0 ~seed () in
      Printf.printf "  %-12s %d words  (parity: %s)\n" (Sim.policy_name policy)
        r.Sim.total_words
        (if r.Sim.sent = base.PE.sent && r.Sim.received = base.PE.received
         then "exact"
         else "BROKEN"))
    [ Sim.Recompute_local; Sim.Refetch_owner; Sim.Replicate 1 ];
  print_newline ();

  print_endline "=== two seeded crashes, one per policy ===";
  let steps =
    (* the sweep executes exactly the non-input vertices *)
    W.n_vertices work - Array.length work.W.inputs
  in
  let schedule = Sim.derive_failures ~procs ~steps ~fail:2 ~seed in
  List.iter
    (fun e -> Printf.printf "  crash: processor %d before step %d\n" e.Sim.proc e.Sim.step)
    schedule;
  List.iter
    (fun policy ->
      let r = Sim.simulate work ~procs ~assignment ~policy ~fail:2 ~seed ~bound () in
      let replay = Sim.check work r in
      Printf.printf
        "  %-12s %5d words (overhead %.3f)  recovery %d, replication %d, \
         recomputed %d, replay %s\n"
        (Sim.policy_name policy) r.Sim.total_words r.Sim.overhead_total
        r.Sim.recovery_words r.Sim.replication_words r.Sim.recomputed
        (if Dg.n_errors replay.Pc.report = 0 && replay.Pc.lost_outputs = 0
         then "clean"
         else "INVALID");
      ())
    [ Sim.Recompute_local; Sim.Refetch_owner; Sim.Replicate 2 ];
  print_newline ();

  print_endline "=== recompute-local overhead vs failure count ===";
  List.iter
    (fun fail ->
      let r =
        Sim.simulate work ~procs ~assignment ~policy:Sim.Recompute_local ~fail
          ~seed ~bound ()
      in
      Printf.printf "  %2d failure(s): %5d words, overhead %.3f, %d re-derived\n"
        fail r.Sim.total_words r.Sim.overhead_total r.Sim.recomputed)
    [ 0; 1; 2; 4; 8; 16 ];
  print_newline ();

  print_endline
    "(recomputation is the recovery mechanism: lost sub-CDAGs are re-derived\n\
    \ rather than checkpointed, and only the re-fetched operands cost words —\n\
    \ the same trade the paper prices for sequential I/O)"
