(* obs_demo: the experiment/observability subsystem in miniature.

   Defines a two-experiment registry from scratch (measured LRU I/O of
   Strassen vs the Theorem 1.1 bound, and a Belady-vs-LRU comparison),
   runs it, renders the outcomes as ASCII tables, emits the same data as
   a schema-v1 JSON report, and finally diffs the run against itself
   with one ratio tampered — exactly what `fmmlab bench --baseline` does
   in CI.

       dune exec examples/obs_demo.exe *)

module S = Fmm_bilinear.Strassen
module Cd = Fmm_cdag.Cdag
module W = Fmm_machine.Workload
module Ord = Fmm_machine.Orders
module Sch = Fmm_machine.Schedulers
module Tr = Fmm_machine.Trace
module B = Fmm_bounds.Bounds
module Obs = Fmm_obs.Metrics
module Exp = Fmm_obs.Experiment
module Sink = Fmm_obs.Sink
module Json = Fmm_obs.Json

let () =
  let registry = Exp.Registry.create () in
  let define = Exp.Registry.define registry in

  let _io =
    define ~id:"IO" ~title:"measured I/O vs the Theorem 1.1 bound" (fun m ->
        let cdag = Cd.build S.strassen ~n:16 in
        let w = W.of_cdag cdag in
        let order = Ord.recursive_dfs cdag in
        List.iter
          (fun cache ->
            let io =
              Obs.time m "simulate" (fun () ->
                  Tr.io (Sch.run_lru w ~cache_size:cache order).Sch.counters)
            in
            let bound = B.fast_sequential ~n:16 ~m:cache () in
            Obs.incr m "runs";
            Obs.rowf m ~section:"LRU on the recursive order (n=16)"
              ~params:[ ("M", Obs.Int cache) ]
              [
                ("measured", Obs.Int io);
                ("bound", Obs.Float bound);
                ("ratio", Obs.Float (float_of_int io /. bound));
              ])
          [ 16; 64; 256 ];
        Obs.note m "(ratio >= 1 everywhere: no schedule beat the bound)")
  in
  let _policies =
    define ~id:"POL" ~title:"replacement policies head to head" (fun m ->
        let cdag = Cd.build S.strassen ~n:8 in
        let w = W.of_cdag cdag in
        let order = Ord.recursive_dfs cdag in
        List.iter
          (fun cache ->
            let io run = Tr.io (run w ~cache_size:cache order).Sch.counters in
            Obs.rowf m ~section:"LRU vs Belady (n=8)"
              ~params:[ ("M", Obs.Int cache) ]
              [
                ("lru", Obs.Int (io Sch.run_lru));
                ("belady", Obs.Int (io Sch.run_belady));
              ])
          [ 16; 64 ])
  in

  (* run everything, print the tables *)
  let outcomes = List.map Exp.run (Exp.Registry.all registry) in
  List.iter (Sink.print_outcome ~wall:true) outcomes;

  (* the same data as a machine-readable report *)
  let report = Sink.report_to_json ~generator:"obs_demo" ~created:0. outcomes in
  print_endline "\n--- the same outcomes as a schema-v1 JSON report ---\n";
  print_endline (Json.to_string report);

  (* and the regression gate: reload the report, tamper one baseline
     ratio, diff *)
  let baseline =
    match Sink.outcomes_of_json (Json.of_string (Json.to_string report)) with
    | Ok o -> o
    | Error e -> failwith e
  in
  let tampered =
    List.map
      (fun (o : Exp.outcome) ->
        {
          o with
          Exp.rows =
            List.map
              (fun (r : Obs.row) ->
                {
                  r with
                  Obs.metrics =
                    List.map
                      (function
                        | "ratio", Obs.Float x -> ("ratio", Obs.Float (x /. 2.))
                        | kv -> kv)
                      r.Obs.metrics;
                })
              o.Exp.rows;
        })
      baseline
  in
  let d = Sink.diff ~tolerance:0.1 ~baseline:tampered ~current:outcomes () in
  Printf.printf
    "\n--- diff vs a baseline with halved ratios: %d compared, %d regressions ---\n"
    d.Sink.n_compared d.Sink.n_regressions;
  List.iter print_endline d.Sink.lines
