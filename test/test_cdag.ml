(* Tests for fmm_cdag: structure of H^{n x n} (vertex censuses, Lemma
   2.2 counts, DAG-ness), semantic evaluation of the CDAG as a circuit
   against the matrix product, and encoder-graph extraction. *)

module Cd = Fmm_cdag.Cdag
module Enc = Fmm_cdag.Encoder
module A = Fmm_bilinear.Algorithm
module S = Fmm_bilinear.Strassen
module D = Fmm_graph.Digraph
module M = Fmm_graph.Matching
module MQ = Fmm_matrix.Matrix.Q
module Q = Fmm_ring.Rat
module P = Fmm_util.Prng
module C = Fmm_util.Combinat

let assoc name l = List.assoc name l

(* --- structural censuses --- *)

let test_base_cdag_census () =
  (* H^{2x2} for Strassen: 8 inputs, 7 encA, 7 encB, 7 mult, 4 dec. *)
  let cd = Cd.build S.strassen ~n:2 in
  let s = Cd.stats cd in
  Alcotest.(check int) "inputs" 8 (assoc "inputs" s);
  Alcotest.(check int) "enc_a" 7 (assoc "enc_a" s);
  Alcotest.(check int) "enc_b" 7 (assoc "enc_b" s);
  Alcotest.(check int) "mult" 7 (assoc "mult" s);
  Alcotest.(check int) "dec" 4 (assoc "dec" s);
  Alcotest.(check int) "vertices" 33 (assoc "vertices" s);
  (* edge census: nnz(U)+nnz(V) encoder edges + 2*7 mult edges + nnz(W) *)
  Alcotest.(check int) "edges"
    (A.nnz_u S.strassen + A.nnz_v S.strassen + 14 + A.nnz_w S.strassen)
    (assoc "edges" s)

let test_cdag_is_dag () =
  List.iter
    (fun n ->
      let cd = Cd.build S.strassen ~n in
      Alcotest.(check bool) (Printf.sprintf "H^%d DAG" n) true
        (D.is_dag (Cd.graph cd)))
    [ 2; 4; 8 ]

let test_lemma_2_2_counts () =
  (* |V_out(SUB_H^{r x r})| = (n/r)^{log2 7} * r^2 for every r. *)
  List.iter
    (fun n ->
      let cd = Cd.build S.strassen ~n in
      let l = C.log2_exact n in
      for j = 0 to l do
        let r = C.pow_int 2 j in
        let expected = C.pow_int 7 (l - j) * r * r in
        Alcotest.(check int)
          (Printf.sprintf "n=%d r=%d outputs" n r)
          expected
          (List.length (Cd.sub_outputs cd ~r));
        (* inputs of sub problems: 2 * r^2 per sub problem *)
        Alcotest.(check int)
          (Printf.sprintf "n=%d r=%d inputs" n r)
          (C.pow_int 7 (l - j) * 2 * r * r)
          (List.length (Cd.sub_inputs cd ~r))
      done)
    [ 2; 4; 8 ]

let test_vertex_counts_grow_as_expected () =
  (* multiplication vertices: exactly 7^{log2 n} *)
  List.iter
    (fun n ->
      let cd = Cd.build S.strassen ~n in
      let s = Cd.stats cd in
      Alcotest.(check int)
        (Printf.sprintf "mults at n=%d" n)
        (C.pow_int 7 (C.log2_exact n))
        (assoc "mult" s))
    [ 2; 4; 8; 16 ]

let test_outputs_are_sinks_inputs_are_sources () =
  let cd = Cd.build S.winograd ~n:4 in
  let g = Cd.graph cd in
  Array.iter
    (fun v -> Alcotest.(check int) "input in-degree 0" 0 (D.in_degree g v))
    (Cd.inputs cd);
  Array.iter
    (fun v -> Alcotest.(check int) "output out-degree 0" 0 (D.out_degree g v))
    (Cd.outputs cd)

let test_build_rejects_bad_sizes () =
  Alcotest.check_raises "n not power"
    (Invalid_argument "Cdag.build: n must be a power of the base dimension")
    (fun () -> ignore (Cd.build S.strassen ~n:6));
  Alcotest.check_raises "rectangular base"
    (Invalid_argument "Cdag.build: base case must be square") (fun () ->
      ignore (Cd.build (A.classical ~n:2 ~m:2 ~k:3) ~n:4))

(* --- semantic evaluation --- *)

let eval_matches_product alg n seed =
  let rng = P.create ~seed in
  let a = MQ.random ~rng ~rows:n ~cols:n ~range:9 in
  let b = MQ.random ~rng ~rows:n ~cols:n ~range:9 in
  let cd = Cd.build alg ~n in
  let got = Cd.Eval_q.run cd (MQ.vec_of a) (MQ.vec_of b) in
  let expected = MQ.vec_of (MQ.mul a b) in
  Alcotest.(check bool)
    (Printf.sprintf "%s CDAG evaluates to A.B at n=%d" (A.name alg) n)
    true
    (Array.for_all2 Q.equal expected got)

let test_eval_strassen () =
  List.iter (fun n -> eval_matches_product S.strassen n (10 + n)) [ 2; 4; 8 ]

let test_eval_winograd () =
  List.iter (fun n -> eval_matches_product S.winograd n (20 + n)) [ 2; 4; 8 ]

let test_eval_classical () =
  List.iter (fun n -> eval_matches_product S.classical_2x2 n (30 + n)) [ 2; 4 ]

let test_eval_ks_core () =
  (* The KS core in its own bases is not a standard-basis MM algorithm,
     but its flattened form is. *)
  let flat = Fmm_bilinear.Alt_basis.flatten Fmm_bilinear.Alt_basis.ks_winograd in
  List.iter (fun n -> eval_matches_product flat n (40 + n)) [ 2; 4 ]

let prop_eval_random_sizes =
  QCheck2.Test.make ~name:"CDAG evaluation matches product" ~count:20
    (QCheck2.Gen.int_range 0 1_000) (fun seed ->
      let rng = P.create ~seed in
      let n = C.pow_int 2 (P.int_range rng 1 3) in
      let alg = P.choose rng [ S.strassen; S.winograd; S.winograd_transposed ] in
      let a = MQ.random ~rng ~rows:n ~cols:n ~range:5 in
      let b = MQ.random ~rng ~rows:n ~cols:n ~range:5 in
      let cd = Cd.build alg ~n in
      let got = Cd.Eval_q.run cd (MQ.vec_of a) (MQ.vec_of b) in
      Array.for_all2 Q.equal (MQ.vec_of (MQ.mul a b)) got)

(* --- encoder graphs --- *)

let test_encoder_shapes () =
  let g = Enc.encoder_bipartite S.strassen Enc.A_side in
  Alcotest.(check int) "X size" 4 g.M.nx;
  Alcotest.(check int) "Y size" 7 g.M.ny;
  let d = Enc.decoder_bipartite S.strassen in
  Alcotest.(check int) "decoder X (products)" 7 d.M.nx;
  Alcotest.(check int) "decoder Y (outputs)" 4 d.M.ny

let test_encoder_edges_match_nnz () =
  List.iter
    (fun alg ->
      let count_edges g = Array.fold_left (fun acc l -> acc + List.length l) 0 g.M.adj in
      Alcotest.(check int)
        (A.name alg ^ " A-side edges = nnz(U)")
        (A.nnz_u alg)
        (count_edges (Enc.encoder_bipartite alg Enc.A_side));
      Alcotest.(check int)
        (A.name alg ^ " B-side edges = nnz(V)")
        (A.nnz_v alg)
        (count_edges (Enc.encoder_bipartite alg Enc.B_side)))
    [ S.strassen; S.winograd; S.classical_2x2 ]

let test_neighbors_of_y () =
  let g = Enc.encoder_bipartite S.strassen Enc.A_side in
  (* M1 = A11 + A22: neighbors of y=0 are {0, 3} *)
  Alcotest.(check (list int)) "M1 neighbors" [ 0; 3 ] (Enc.neighbors_of_y g 0);
  (* M3 = A11: singleton *)
  Alcotest.(check (list int)) "M3 neighbors" [ 0 ] (Enc.neighbors_of_y g 2);
  Alcotest.(check (list int)) "union" [ 0; 3 ] (Enc.neighbors_of_ys g [ 0; 2 ])

(* Regression for the quadratic inverse-adjacency scan: the rewritten
   [neighbors_of_y] must return exactly what the per-x [List.mem] probe
   returned, for every y of every encoder/decoder bipartite graph of
   every registered base. *)
let test_neighbors_regression () =
  let reference g y =
    let acc = ref [] in
    Array.iteri
      (fun x ys -> if List.mem y ys then acc := x :: !acc)
      g.M.adj;
    List.sort_uniq compare !acc
  in
  let check_graph name g =
    for y = 0 to g.M.ny - 1 do
      Alcotest.(check (list int))
        (Printf.sprintf "%s y=%d" name y)
        (reference g y) (Enc.neighbors_of_y g y)
    done;
    (* union queries against the same reference *)
    let all = List.init g.M.ny (fun y -> y) in
    Alcotest.(check (list int))
      (name ^ " union")
      (List.sort_uniq compare (List.concat_map (reference g) all))
      (Enc.neighbors_of_ys g all)
  in
  List.iter
    (fun alg ->
      let name = A.name alg in
      check_graph (name ^ " encA") (Enc.encoder_bipartite alg Enc.A_side);
      check_graph (name ^ " encB") (Enc.encoder_bipartite alg Enc.B_side);
      check_graph (name ^ " dec") (Enc.decoder_bipartite alg))
    S.registry

(* The sorted interval index behind [sub_nodes] / [nodes_at_depth] /
   [enclosing_node] must agree with plain list scans over [Cd.nodes]. *)
let test_node_index () =
  List.iter
    (fun (alg, n) ->
      let cd = Cd.build alg ~n in
      let nodes = Cd.nodes cd in
      let rs = List.sort_uniq compare (List.map (fun nd -> nd.Cd.r) nodes) in
      List.iter
        (fun r ->
          let reference =
            List.sort
              (fun a b -> compare a.Cd.subtree_lo b.Cd.subtree_lo)
              (List.filter (fun nd -> nd.Cd.r = r) nodes)
          in
          if Cd.sub_nodes cd ~r <> reference then
            Alcotest.failf "sub_nodes r=%d differs from list scan" r)
        rs;
      Alcotest.(check (list int)) "bogus r" []
        (List.map (fun nd -> nd.Cd.subtree_lo) (Cd.sub_nodes cd ~r:(n + 1)));
      let depths = List.sort_uniq compare (List.map (fun nd -> nd.Cd.depth) nodes) in
      List.iter
        (fun depth ->
          let reference =
            List.sort
              (fun a b -> compare a.Cd.subtree_lo b.Cd.subtree_lo)
              (List.filter (fun nd -> nd.Cd.depth = depth) nodes)
          in
          if Cd.nodes_at_depth cd ~depth <> reference then
            Alcotest.failf "nodes_at_depth %d differs from list scan" depth)
        depths;
      for v = 0 to Cd.n_vertices cd - 1 do
        let reference =
          List.fold_left
            (fun acc nd ->
              if nd.Cd.subtree_lo <= v && v <= nd.Cd.subtree_hi then
                match acc with
                | Some best when best.Cd.subtree_lo >= nd.Cd.subtree_lo -> acc
                | _ -> Some nd
              else acc)
            None nodes
        in
        if Cd.enclosing_node cd v <> reference then
          Alcotest.failf "enclosing_node %d differs from list scan" v
      done)
    [
      (S.strassen, 16);
      (S.winograd, 8);
      (Option.get (S.find "classical <3,3,3;27>"), 9);
    ]

let test_encoder_digraph () =
  let g = Enc.encoder_digraph S.strassen Enc.A_side in
  Alcotest.(check int) "vertices" 11 (D.n_vertices g);
  Alcotest.(check int) "edges = nnz" (A.nnz_u S.strassen) (D.n_edges g);
  Alcotest.(check bool) "bipartite layering: all edges X->Y" true
    (List.for_all
       (fun x -> List.for_all (fun y -> y >= 4) (D.out_neighbors g x))
       [ 0; 1; 2; 3 ])


let test_to_dot_and_roles () =
  let cd = Cd.build S.strassen ~n:2 in
  let dot = Cd.to_dot cd in
  Alcotest.(check bool) "dot nonempty" true (String.length dot > 100);
  Alcotest.(check string) "mult role" "mult" (Cd.role_to_string Cd.Mult);
  Alcotest.(check string) "input role" "A[3]" (Cd.role_to_string (Cd.Input_a 3));
  (* subtree ranges: the 8 inputs are allocated first, then the root's
     recursion occupies everything after them *)
  let root = List.find (fun nd -> nd.Cd.depth = 0) (Cd.nodes cd) in
  Alcotest.(check int) "root subtree lo" 8 root.Cd.subtree_lo;
  Alcotest.(check int) "root subtree hi" (Cd.n_vertices cd - 1) root.Cd.subtree_hi

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "fmm_cdag"
    [
      ( "structure",
        [
          Alcotest.test_case "base census" `Quick test_base_cdag_census;
          Alcotest.test_case "is DAG" `Quick test_cdag_is_dag;
          Alcotest.test_case "Lemma 2.2 counts" `Quick test_lemma_2_2_counts;
          Alcotest.test_case "mult counts" `Quick test_vertex_counts_grow_as_expected;
          Alcotest.test_case "sources/sinks" `Quick
            test_outputs_are_sinks_inputs_are_sources;
          Alcotest.test_case "rejects bad sizes" `Quick test_build_rejects_bad_sizes;
          Alcotest.test_case "dot/roles/subtrees" `Quick test_to_dot_and_roles;
        ] );
      ( "evaluation",
        [
          Alcotest.test_case "strassen" `Quick test_eval_strassen;
          Alcotest.test_case "winograd" `Quick test_eval_winograd;
          Alcotest.test_case "classical" `Quick test_eval_classical;
          Alcotest.test_case "ks flattened" `Quick test_eval_ks_core;
          qc prop_eval_random_sizes;
        ] );
      ( "encoder",
        [
          Alcotest.test_case "shapes" `Quick test_encoder_shapes;
          Alcotest.test_case "edges = nnz" `Quick test_encoder_edges_match_nnz;
          Alcotest.test_case "neighbors" `Quick test_neighbors_of_y;
          Alcotest.test_case "neighbors regression" `Quick
            test_neighbors_regression;
          Alcotest.test_case "node index" `Quick test_node_index;
          Alcotest.test_case "digraph" `Quick test_encoder_digraph;
        ] );
    ]
