(* Tests for the dataflow/abstract-interpretation framework and the
   certifier analyses built on it:

   - Bitset / Fixpoint substrate sanity (vs naive reference sweeps);
   - order_liveness MAXLIVE exactness on hand-built DAGs with known
     register requirements (chains, Ershov/Sethi-Ullman reduction
     trees) and vs an independent O(n^2) reference on random DAGs;
   - static/dynamic agreement: trace_profile.min_cache equals
     Trace_check's dynamic peak_occupancy on every scheduler trace,
     and Belady at M = MAXLIVE achieves exactly the static I/O lower
     bound (the sandwich closes);
   - the incremental oracle: check_cached reproduces check field for
     field, and check_delta agrees with a from-scratch check_cached on
     seeded mutants (drop a load, drop an evict, swap a window,
     duplicate an event, shrink the cache) — and both agree with the
     dynamic Cache_machine on the legality verdict;
   - the fmm-analyze/v1 JSON schema: byte-identical round-trips and
     strict-parse rejections. *)

module D = Fmm_graph.Digraph
module Cd = Fmm_cdag.Cdag
module S = Fmm_bilinear.Strassen
module W = Fmm_machine.Workload
module Tr = Fmm_machine.Trace
module Ord = Fmm_machine.Orders
module Sch = Fmm_machine.Schedulers
module CM = Fmm_machine.Cache_machine
module Dg = Fmm_analysis.Diagnostic
module Df = Fmm_analysis.Dataflow
module Tc = Fmm_analysis.Trace_check
module Ct = Fmm_analysis.Certify
module Aj = Fmm_analysis.Analyze_json
module Pd = Fmm_pebble.Pebble_dags
module Prng = Fmm_util.Prng
module J = Fmm_obs.Json

let cdag4 = Cd.build S.strassen ~n:4
let cdag8 = Cd.build S.strassen ~n:8
let w4 = W.of_cdag cdag4
let w8 = W.of_cdag cdag8
let dfs4 = Ord.recursive_dfs cdag4
let dfs8 = Ord.recursive_dfs cdag8

let non_input_topo w =
  match D.topo_sort w.W.graph with
  | Some o -> List.filter (fun v -> not (W.is_input w v)) o
  | None -> Alcotest.fail "cyclic workload"

(* --- Bitset --- *)

let test_bitset () =
  let b = Df.Bitset.create 100 in
  Alcotest.(check int) "capacity" 100 (Df.Bitset.capacity b);
  Alcotest.(check int) "empty" 0 (Df.Bitset.cardinal b);
  List.iter (Df.Bitset.add b) [ 0; 31; 32; 33; 63; 64; 99 ];
  Alcotest.(check int) "cardinal" 7 (Df.Bitset.cardinal b);
  Alcotest.(check bool) "mem 32" true (Df.Bitset.mem b 32);
  Alcotest.(check bool) "not mem 1" false (Df.Bitset.mem b 1);
  Df.Bitset.add b 32;
  Alcotest.(check int) "add idempotent" 7 (Df.Bitset.cardinal b);
  Df.Bitset.remove b 32;
  Alcotest.(check bool) "removed" false (Df.Bitset.mem b 32);
  Df.Bitset.remove b 32;
  Alcotest.(check int) "remove idempotent" 6 (Df.Bitset.cardinal b);
  Alcotest.(check (list int)) "ascending to_list" [ 0; 31; 33; 63; 64; 99 ]
    (Df.Bitset.to_list b);
  let c = Df.Bitset.copy b in
  Alcotest.(check bool) "copy equal" true (Df.Bitset.equal b c);
  Df.Bitset.add c 50;
  Alcotest.(check bool) "copy independent" false (Df.Bitset.equal b c);
  Df.Bitset.blit ~src:b ~dst:c;
  Alcotest.(check bool) "blit restores" true (Df.Bitset.equal b c)

(* --- Fixpoint: reachability vs a naive DFS reference --- *)

let naive_reachable g seeds =
  let n = D.n_vertices g in
  let seen = Array.make n false in
  let rec go v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter go (D.out_neighbors g v)
    end
  in
  List.iter go seeds;
  seen

let naive_coreachable g seeds =
  let n = D.n_vertices g in
  let seen = Array.make n false in
  let rec go v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter go (D.in_neighbors g v)
    end
  in
  List.iter go seeds;
  seen

let test_fixpoint_reachability () =
  let rg, rins, routs = Pd.random_dag ~seed:7 ~layers:5 ~width:6 ~density:0.4 in
  List.iter
    (fun (name, g, ins, outs) ->
      let r = Df.reachable g ins and nd = Df.needed g outs in
      let nr = naive_reachable g ins and nc = naive_coreachable g outs in
      for v = 0 to D.n_vertices g - 1 do
        Alcotest.(check bool)
          (Printf.sprintf "%s reachable %d" name v)
          nr.(v) (Df.Bitset.mem r v);
        Alcotest.(check bool)
          (Printf.sprintf "%s needed %d" name v)
          nc.(v) (Df.Bitset.mem nd v)
      done)
    [
      ( "strassen4",
        Cd.graph cdag4,
        Array.to_list (Cd.inputs cdag4),
        Array.to_list (Cd.outputs cdag4) );
      ("random", rg, rins, routs);
      (* partial seed sets exercise the non-source case *)
      ("random partial", rg, [ List.hd rins ], [ List.hd routs ]);
    ]

(* A longest-path instance of the generic solver: forward, fact = max
   distance from any source. Checks the solver against the obvious
   topological-order recurrence. *)
let test_fixpoint_longest_path () =
  let g = Cd.graph cdag4 in
  let module LP = Df.Fixpoint (struct
    type fact = int

    let equal = Int.equal
    let join = max
  end) in
  let dist =
    LP.solve g ~direction:`Forward
      ~init:(fun _ -> 0)
      ~transfer:(fun v acc -> if D.in_neighbors g v = [] then 0 else acc + 1)
  in
  let expect = Array.make (D.n_vertices g) 0 in
  (match D.topo_sort g with
  | None -> Alcotest.fail "cycle"
  | Some o ->
    List.iter
      (fun v ->
        List.iter
          (fun u -> if expect.(u) + 1 > expect.(v) then expect.(v) <- expect.(u) + 1)
          (D.in_neighbors g v))
      o);
  Array.iteri
    (fun v e ->
      Alcotest.(check int) (Printf.sprintf "longest path to %d" v) e dist.(v))
    expect

(* --- MAXLIVE exactness on hand-built DAGs --- *)

(* chain: in -> v1 -> ... -> vk. Two values live at every step. *)
let test_maxlive_chain () =
  let k = 9 in
  let g = D.create () in
  let ids = D.add_vertices g (k + 1) in
  for i = 0 to k - 1 do
    D.add_edge g ids.(i) ids.(i + 1)
  done;
  let w =
    W.make ~graph:g ~inputs:[| ids.(0) |] ~outputs:[| ids.(k) |] ()
  in
  let order = Array.init k (fun i -> ids.(i + 1)) in
  let lv = Df.order_liveness w order in
  Alcotest.(check int) "chain maxlive" 2 lv.Df.maxlive;
  Alcotest.(check int) "chain inputs" 1 lv.Df.inputs_used;
  Alcotest.(check int) "chain outputs" 1 lv.Df.outputs_stored;
  Alcotest.(check int) "chain spill-free lb" 2
    (Df.io_lower_bound lv ~cache_size:2);
  Alcotest.(check int) "chain lb below maxlive" 3
    (Df.io_lower_bound lv ~cache_size:1)

(* Complete binary reduction tree with [h] internal levels, postorder:
   the classic Sethi-Ullman requirement is h+1 registers when results
   may overwrite operands; in our model operands and the result are
   simultaneously resident, so MAXLIVE = h + 2 exactly. *)
let reduction_tree h =
  let leaves = 1 lsl h in
  let g = D.create () in
  let ids = D.add_vertices g (2 * leaves - 1) in
  (* heap layout: node i has children 2i+1, 2i+2; leaves at the end *)
  let internal = leaves - 1 in
  for i = 0 to internal - 1 do
    D.add_edge g ids.(2 * i + 1) ids.(i);
    D.add_edge g ids.(2 * i + 2) ids.(i)
  done;
  let inputs = Array.init leaves (fun i -> ids.(internal + i)) in
  let w = W.make ~graph:g ~inputs ~outputs:[| ids.(0) |] () in
  (* postorder over internal nodes *)
  let order = ref [] in
  let rec post i =
    if i < internal then begin
      post (2 * i + 1);
      post (2 * i + 2);
      order := ids.(i) :: !order
    end
  in
  post 0;
  (w, Array.of_list (List.rev !order))

let test_maxlive_tree () =
  List.iter
    (fun h ->
      let w, order = reduction_tree h in
      let lv = Df.order_liveness w order in
      Alcotest.(check int)
        (Printf.sprintf "tree h=%d maxlive" h)
        (h + 2) lv.Df.maxlive)
    [ 1; 2; 3; 4 ]

(* Independent O(n^2) interval-liveness reference. *)
let naive_maxlive w order =
  let n = W.n_vertices w in
  let len = Array.length order in
  let pos = Array.make n (-1) in
  Array.iteri (fun i v -> pos.(v) <- i) order;
  let first_use = Array.make n max_int and last_use = Array.make n (-1) in
  for v = 0 to n - 1 do
    List.iter
      (fun c ->
        if pos.(c) >= 0 then begin
          if pos.(c) < first_use.(v) then first_use.(v) <- pos.(c);
          if pos.(c) > last_use.(v) then last_use.(v) <- pos.(c)
        end)
      (D.out_neighbors w.W.graph v)
  done;
  let best = ref 0 in
  for i = 0 to len - 1 do
    let live = ref 0 in
    for v = 0 to n - 1 do
      let s =
        if W.is_input w v then first_use.(v)
        else if pos.(v) >= 0 then pos.(v)
        else max_int
      and e = max last_use.(v) (if W.is_input w v then -1 else pos.(v)) in
      if s <> max_int && s <= i && i <= e then incr live
    done;
    if !live > !best then best := !live
  done;
  !best

let random_workload seed =
  let g, ins, outs = Pd.random_dag ~seed ~layers:6 ~width:5 ~density:0.5 in
  (* random_dag outputs are its sinks; everything else mirrors a CDAG *)
  W.make ~graph:g ~inputs:(Array.of_list ins) ~outputs:(Array.of_list outs) ()

let test_maxlive_random_dags () =
  List.iter
    (fun seed ->
      let w = random_workload seed in
      let order = Array.of_list (non_input_topo w) in
      let lv = Df.order_liveness w order in
      Alcotest.(check int)
        (Printf.sprintf "seed %d maxlive = naive" seed)
        (naive_maxlive w order) lv.Df.maxlive)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_order_liveness_validates () =
  let rejects name order =
    Alcotest.(check bool) name true
      (try
         ignore (Df.order_liveness w4 order);
         false
       with Invalid_argument _ -> true)
  in
  let dup = Array.of_list dfs4 in
  dup.(0) <- dup.(1);
  rejects "duplicate rejected" dup;
  let oob = Array.of_list dfs4 in
  oob.(0) <- W.n_vertices w4;
  rejects "out-of-range rejected" oob

(* --- static min-cache = dynamic peak on every scheduler trace --- *)

let scheduler_runs =
  [
    ("lru n=4 M=24", w4, 24, fun () -> Sch.run_lru w4 ~cache_size:24 dfs4);
    ("lru n=8 M=64", w8, 64, fun () -> Sch.run_lru w8 ~cache_size:64 dfs8);
    ("belady n=8 M=32", w8, 32, fun () -> Sch.run_belady w8 ~cache_size:32 dfs8);
    ( "remat n=4 M=24",
      w4,
      24,
      fun () -> Sch.run_rematerialize w4 ~cache_size:24 dfs4 );
    ( "remat n=8 M=80",
      w8,
      80,
      fun () -> Sch.run_rematerialize w8 ~cache_size:80 dfs8 );
  ]

let test_profile_matches_dynamic_peak () =
  List.iter
    (fun (name, w, m, run) ->
      let trace = (run ()).Sch.trace in
      let prof = Df.trace_profile w trace in
      let chk = Tc.check ~cache_size:m w trace in
      Alcotest.(check int)
        (name ^ " min_cache = dynamic peak")
        chk.Tc.peak_occupancy prof.Df.min_cache;
      Alcotest.(check int)
        (name ^ " peak = min_cache")
        prof.Df.peak_occupancy prof.Df.min_cache;
      Alcotest.(check bool) (name ^ " peak within M") true
        (prof.Df.peak_occupancy <= m);
      (* the trace replays at exactly min_cache and not below *)
      ignore
        (CM.replay
           { CM.cache_size = prof.Df.min_cache; allow_recompute = true }
           w trace);
      Alcotest.(check bool) (name ^ " illegal below min_cache") true
        (try
           ignore
             (CM.replay
                { CM.cache_size = prof.Df.min_cache - 1; allow_recompute = true }
                w trace);
           false
         with CM.Illegal _ -> true))
    scheduler_runs

(* Belady at M = MAXLIVE is spill-free: measured I/O equals the static
   lower bound exactly — the sandwich lb <= belady <= lru closes. *)
let test_spill_free_at_maxlive () =
  List.iter
    (fun (name, w, order) ->
      let lv = Df.order_liveness w (Array.of_list order) in
      let m = lv.Df.maxlive in
      let res = Sch.run_belady w ~cache_size:m order in
      let io = Tr.io res.Sch.counters in
      let lb = Df.io_lower_bound lv ~cache_size:m in
      Alcotest.(check int)
        (name ^ " spill-free lb = inputs + outputs")
        (lv.Df.inputs_used + lv.Df.outputs_stored)
        lb;
      Alcotest.(check int) (name ^ " belady meets the bound") lb io;
      (* and below MAXLIVE the bound still holds for belady and lru *)
      let m' = max 3 (m / 2) in
      let lb' = Df.io_lower_bound lv ~cache_size:m' in
      List.iter
        (fun (pname, run) ->
          match run () with
          | (res' : Sch.result) ->
            Alcotest.(check bool)
              (Printf.sprintf "%s %s at M=%d above lb" name pname m')
              true
              (Tr.io res'.Sch.counters >= lb')
          | exception Failure _ -> ())
        [
          ("belady", fun () -> Sch.run_belady w ~cache_size:m' order);
          ("lru", fun () -> Sch.run_lru w ~cache_size:m' order);
        ])
    (let tw, torder = reduction_tree 4 in
     let rw = random_workload 5 in
     [
       ("strassen4", w4, dfs4);
       ("tree h=4", tw, Array.to_list torder);
       ("random dag", rw, non_input_topo rw);
     ])

(* LRU at M = MAXLIVE must be spill-free too, now that dead residents
   (unstored outputs past their last use) are preferred victims: io is
   exactly compulsory inputs + outputs, with zero reloads and zero
   non-output stores. One word less and a spill is forced — io strictly
   grows. Checked for both the explicit-graph scheduler and the
   streaming implicit executor (identical traces by contract). *)
let test_lru_spill_free_boundary () =
  List.iter
    (fun (name, w, order) ->
      let lv = Df.order_liveness w (Array.of_list order) in
      let m = lv.Df.maxlive in
      let compulsory = lv.Df.inputs_used + lv.Df.outputs_stored in
      let at = Sch.run_lru w ~cache_size:m order in
      Alcotest.(check int)
        (name ^ " lru at MAXLIVE: io = inputs + outputs")
        compulsory
        (Tr.io at.Sch.counters);
      Alcotest.(check int)
        (name ^ " lru at MAXLIVE: loads = used inputs")
        lv.Df.inputs_used at.Sch.counters.Tr.loads;
      Alcotest.(check int)
        (name ^ " lru at MAXLIVE: stores = outputs")
        lv.Df.outputs_stored at.Sch.counters.Tr.stores;
      (* one word below the boundary a spill is forced *)
      match Sch.run_lru w ~cache_size:(m - 1) order with
      | below ->
        Alcotest.(check bool)
          (name ^ " lru at MAXLIVE-1: io strictly above compulsory")
          true
          (Tr.io below.Sch.counters > compulsory)
      | exception Failure _ -> (* cache below max in-degree: vacuous *) ())
    (let tw, torder = reduction_tree 4 in
     let rw = random_workload 5 in
     [
       ("strassen4", w4, dfs4);
       ("strassen8", w8, dfs8);
       ("tree h=4", tw, Array.to_list torder);
       ("random dag", rw, non_input_topo rw);
     ]);
  (* same boundary for the streaming implicit executor *)
  let module Im = Fmm_cdag.Implicit in
  let module Se = Fmm_machine.Stream_exec in
  let imp = Im.create S.strassen ~n:8 in
  let s = Df.implicit_order_liveness imp in
  let m = s.Df.Streamed.maxlive in
  let compulsory = s.Df.Streamed.inputs_used + s.Df.Streamed.outputs_stored in
  let at = Se.run_lru imp ~cache_size:m () in
  Alcotest.(check int) "stream lru at MAXLIVE: io = inputs + outputs" compulsory
    (Tr.io at);
  let below = Se.run_lru imp ~cache_size:(m - 1) () in
  Alcotest.(check bool) "stream lru at MAXLIVE-1: io strictly above" true
    (Tr.io below > compulsory)

(* --- the certifier end to end --- *)

let test_certify_clean () =
  let c = Ct.run ~cdag:cdag8 ~cache_size:32 w8 ~order:dfs8 in
  Alcotest.(check bool) "certified" true (Ct.certified c);
  Alcotest.(check int) "three policies" 3 (List.length c.Ct.rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) (r.Ct.policy ^ " feasible") true r.Ct.feasible;
      Alcotest.(check bool) (r.Ct.policy ^ " agrees") true r.Ct.agree)
    c.Ct.rows;
  (* jobs must not change the result *)
  let c4 = Ct.run ~jobs:4 ~cdag:cdag8 ~cache_size:32 w8 ~order:dfs8 in
  Alcotest.(check bool) "jobs-invariant" true
    (List.map (fun r -> (r.Ct.policy, r.Ct.io, r.Ct.min_cache)) c.Ct.rows
    = List.map (fun r -> (r.Ct.policy, r.Ct.io, r.Ct.min_cache)) c4.Ct.rows)

(* --- check_cached reproduces check; check_delta reproduces both --- *)

let fields_of_result (r : Tc.result) =
  ( r.Tc.counters,
    Dg.n_errors r.Tc.report,
    r.Tc.dead_loads,
    r.Tc.redundant_stores,
    r.Tc.peak_occupancy )

let fields_of_verdict (v : Tc.verdict) =
  ( v.Tc.v_counters,
    v.Tc.v_errors,
    v.Tc.v_dead_loads,
    v.Tc.v_redundant_stores,
    v.Tc.v_peak_occupancy )

let test_check_cached_matches_check () =
  List.iter
    (fun (name, w, m, run) ->
      let trace = (run ()).Sch.trace in
      let r = Tc.check ~cache_size:m w trace in
      let v, cache = Tc.check_cached ~cache_size:m w trace in
      Alcotest.(check bool) (name ^ " verdict = check") true
        (fields_of_verdict v = fields_of_result r);
      Alcotest.(check int)
        (name ^ " accounting covers the trace")
        (List.length trace)
        (v.Tc.reused_prefix + v.Tc.replayed + v.Tc.reused_suffix);
      Alcotest.(check int)
        (name ^ " cache length")
        (List.length trace)
        (Tc.cache_trace_length cache);
      Alcotest.(check bool) (name ^ " cache_verdict") true
        (fields_of_verdict (Tc.cache_verdict cache) = fields_of_verdict v))
    scheduler_runs

(* identical trace: the delta replays at most the residue after the
   last bitset checkpoint, never a constant fraction of the trace *)
let test_check_delta_identity () =
  let trace = (Sch.run_lru w8 ~cache_size:64 dfs8).Sch.trace in
  let len = List.length trace in
  let v0, base = Tc.check_cached ~cache_size:64 w8 trace in
  let v = Tc.check_delta ~base w8 trace in
  Alcotest.(check bool) "same verdict" true
    (fields_of_verdict v = fields_of_verdict v0);
  Alcotest.(check int) "accounting sums" len
    (v.Tc.reused_prefix + v.Tc.replayed + v.Tc.reused_suffix);
  let k_every = max 32 (len / 64) in
  Alcotest.(check bool)
    (Printf.sprintf "replayed %d within checkpoint residue %d" v.Tc.replayed
       k_every)
    true
    (v.Tc.replayed <= k_every)

(* --- seeded differential fuzz: Tc.check, check_delta and the dynamic
   machine must agree on every mutant --- *)

type mutation = Drop_load | Drop_evict | Swap_window | Dup_event | Drop_tail

let mutate rng trace =
  let arr = Array.of_list trace in
  let n = Array.length arr in
  if n < 8 then (trace, "tiny")
  else
    match List.nth [ Drop_load; Drop_evict; Swap_window; Dup_event; Drop_tail ]
            (Prng.int rng 5)
    with
    | Drop_load ->
      let loads =
        List.filteri (fun _ e -> match e with Tr.Load _ -> true | _ -> false)
          trace
        |> List.length
      in
      if loads = 0 then (trace, "noop")
      else begin
        let k = Prng.int rng loads in
        let seen = ref (-1) in
        ( List.filter
            (fun e ->
              match e with
              | Tr.Load _ ->
                incr seen;
                !seen <> k
              | _ -> true)
            trace,
          "drop-load" )
      end
    | Drop_evict ->
      let evicts =
        List.filteri (fun _ e -> match e with Tr.Evict _ -> true | _ -> false)
          trace
        |> List.length
      in
      if evicts = 0 then (trace, "noop")
      else begin
        let k = Prng.int rng evicts in
        let seen = ref (-1) in
        ( List.filter
            (fun e ->
              match e with
              | Tr.Evict _ ->
                incr seen;
                !seen <> k
              | _ -> true)
            trace,
          "drop-evict" )
      end
    | Swap_window ->
      let i = Prng.int rng (n - 2) in
      let j = i + 1 + Prng.int rng (min 16 (n - i - 1)) in
      let tmp = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- tmp;
      (Array.to_list arr, "swap-window")
    | Dup_event ->
      let i = Prng.int rng n in
      ( Array.to_list (Array.concat [ Array.sub arr 0 i; [| arr.(i) |];
                                      Array.sub arr i (n - i) ]),
        "dup-event" )
    | Drop_tail ->
      let k = 1 + Prng.int rng (n / 4) in
      (Array.to_list (Array.sub arr 0 (n - k)), "drop-tail")

let agree_on_mutant ~name w m base mutant =
  let r = Tc.check ~cache_size:m w mutant in
  let vc, _ = Tc.check_cached ~cache_size:m w mutant in
  let vd = Tc.check_delta ~base w mutant in
  Alcotest.(check bool) (name ^ " check_cached = check") true
    (fields_of_verdict vc = fields_of_result r);
  Alcotest.(check bool) (name ^ " check_delta = check_cached") true
    (fields_of_verdict vd = fields_of_verdict vc);
  Alcotest.(check int)
    (name ^ " delta accounting")
    (List.length mutant)
    (vd.Tc.reused_prefix + vd.Tc.replayed + vd.Tc.reused_suffix);
  (* legality verdict agreement with the dynamic machine *)
  let dynamic_ok =
    try
      ignore (CM.replay { CM.cache_size = m; allow_recompute = true } w mutant);
      true
    with CM.Illegal _ -> false
  in
  Alcotest.(check bool)
    (name ^ " static errors iff dynamic Illegal")
    dynamic_ok (vd.Tc.v_errors = 0)

let test_fuzz_differential () =
  let configs =
    [
      ("strassen4/lru16", w4, 16, (Sch.run_lru w4 ~cache_size:16 dfs4).Sch.trace);
      ( "strassen4/belady16",
        w4,
        16,
        (Sch.run_belady w4 ~cache_size:16 dfs4).Sch.trace );
      ( "strassen4/remat24",
        w4,
        24,
        (Sch.run_rematerialize w4 ~cache_size:24 dfs4).Sch.trace );
      (let w = random_workload 5 in
       ( "random5/lru",
         w,
         8,
         (Sch.run_lru w ~cache_size:8 (non_input_topo w)).Sch.trace ));
    ]
  in
  List.iter
    (fun (cname, w, m, trace) ->
      let _, base = Tc.check_cached ~cache_size:m w trace in
      for k = 1 to 25 do
        let rng = Prng.create ~seed:(Prng.derive ~seed:0xf077 [ k ]) in
        let mutant, kind = mutate rng trace in
        agree_on_mutant
          ~name:(Printf.sprintf "%s #%d %s" cname k kind)
          w m base mutant
      done)
    configs

(* shrink-cache mutants: same trace checked at a smaller M — the base
   must be rebuilt at that M (a cache is (workload, M, trace)-specific) *)
let test_fuzz_shrink_cache () =
  let trace = (Sch.run_lru w4 ~cache_size:16 dfs4).Sch.trace in
  List.iter
    (fun m' ->
      let _, base = Tc.check_cached ~cache_size:m' w4 trace in
      (* identity delta at the shrunk size *)
      agree_on_mutant
        ~name:(Printf.sprintf "shrink M=%d identity" m')
        w4 m' base trace;
      (* plus a seeded mutant at the shrunk size *)
      let rng = Prng.create ~seed:(Prng.derive ~seed:0xf077 [ 0x5c; m' ]) in
      let mutant, kind = mutate rng trace in
      agree_on_mutant
        ~name:(Printf.sprintf "shrink M=%d %s" m' kind)
        w4 m' base mutant)
    [ 15; 12; 9; 6 ]

let test_delta_rejects_wrong_workload () =
  let trace = (Sch.run_lru w4 ~cache_size:16 dfs4).Sch.trace in
  let _, base = Tc.check_cached ~cache_size:16 w4 trace in
  Alcotest.(check bool) "vertex-count mismatch raises" true
    (try
       ignore (Tc.check_delta ~base w8 trace);
       false
     with Invalid_argument _ -> true)

(* --- fmm-analyze/v1 round-trip and strict parsing --- *)

let sample_report () =
  let cert = Ct.run ~cdag:cdag4 ~cache_size:24 w4 ~order:dfs4 in
  let lint = Fmm_analysis.Cdag_lint.lint cdag4 in
  let chk =
    Tc.check ~cache_size:24 w4 (Sch.run_lru w4 ~cache_size:24 dfs4).Sch.trace
  in
  {
    Aj.algorithm = "Strassen";
    n = 4;
    cache_size = 24;
    order = "dfs";
    depth = 1;
    procs = 7;
    corrupt = "none";
    passes =
      [
        { Aj.title = "CDAG lint"; diags = lint.Dg.diags };
        { Aj.title = "trace check"; diags = chk.Tc.report.Dg.diags };
        { Aj.title = "certifier"; diags = cert.Ct.report.Dg.diags };
      ];
    certify = Some (Aj.certify_of_result cert);
  }

let test_analyze_json_roundtrip () =
  let t = sample_report () in
  let j = Aj.to_json t in
  (* schema is the first field *)
  (match j with
  | J.Obj ((k, J.Str v) :: _) ->
    Alcotest.(check string) "schema field first" "schema" k;
    Alcotest.(check string) "schema value" Aj.schema v
  | _ -> Alcotest.fail "expected object with leading schema");
  let s = J.to_string ~indent:2 j in
  (match Aj.of_json (J.of_string s) with
  | Error e -> Alcotest.fail ("round-trip rejected: " ^ e)
  | Ok t' ->
    Alcotest.(check bool) "value round-trips" true (t = t');
    Alcotest.(check string) "byte-identical re-serialization" s
      (J.to_string ~indent:2 (Aj.to_json t')))

(* include a diagnostics-bearing pass: a corrupted trace *)
let test_analyze_json_roundtrip_with_errors () =
  let trace = (Sch.run_lru w4 ~cache_size:16 dfs4).Sch.trace in
  let corrupted = List.filter (function Tr.Evict _ -> false | _ -> true) trace in
  let chk = Tc.check ~cache_size:16 w4 corrupted in
  Alcotest.(check bool) "has errors" true (Dg.n_errors chk.Tc.report > 0);
  let t =
    {
      (sample_report ()) with
      Aj.corrupt = "overflow";
      passes = [ { Aj.title = "trace check"; diags = chk.Tc.report.Dg.diags } ];
      certify = None;
    }
  in
  let s = J.to_string (Aj.to_json t) in
  match Aj.of_json (J.of_string s) with
  | Error e -> Alcotest.fail ("rejected: " ^ e)
  | Ok t' -> Alcotest.(check bool) "round-trips" true (t = t')

let expect_reject name j =
  match Aj.of_json j with
  | Ok _ -> Alcotest.fail (name ^ ": strict parser accepted bad input")
  | Error _ -> ()

let test_analyze_json_strict () =
  let t = sample_report () in
  let j = Aj.to_json t in
  let fields = match j with J.Obj f -> f | _ -> Alcotest.fail "obj" in
  (* unknown top-level field *)
  expect_reject "unknown field" (J.Obj (fields @ [ ("bogus", J.Int 1) ]));
  (* missing required field *)
  expect_reject "missing field"
    (J.Obj (List.filter (fun (k, _) -> k <> "n") fields));
  (* type mismatch *)
  expect_reject "type mismatch"
    (J.Obj
       (List.map (fun (k, v) -> if k = "n" then (k, J.Str "4") else (k, v)) fields));
  (* wrong schema string *)
  expect_reject "wrong schema"
    (J.Obj
       (List.map
          (fun (k, v) -> if k = "schema" then (k, J.Str "fmm-analyze/v0") else (k, v))
          fields));
  (* tampered summary count *)
  let tampered =
    List.map
      (fun (k, v) ->
        if k <> "summary" then (k, v)
        else
          match v with
          | J.Obj sf ->
            ( k,
              J.Obj
                (List.map
                   (fun (sk, sv) -> if sk = "errors" then (sk, J.Int 99) else (sk, sv))
                   sf) )
          | _ -> (k, v))
      fields
  in
  expect_reject "count mismatch" (J.Obj tampered);
  (* not an object at all *)
  expect_reject "not an object" (J.List [])

let () =
  Alcotest.run "fmm_dataflow"
    [
      ( "substrate",
        [
          Alcotest.test_case "bitset" `Quick test_bitset;
          Alcotest.test_case "reachability vs naive" `Quick
            test_fixpoint_reachability;
          Alcotest.test_case "longest path" `Quick test_fixpoint_longest_path;
        ] );
      ( "maxlive",
        [
          Alcotest.test_case "chain" `Quick test_maxlive_chain;
          Alcotest.test_case "reduction trees (Ershov)" `Quick
            test_maxlive_tree;
          Alcotest.test_case "random DAGs vs naive" `Quick
            test_maxlive_random_dags;
          Alcotest.test_case "order validation" `Quick
            test_order_liveness_validates;
        ] );
      ( "static-vs-dynamic",
        [
          Alcotest.test_case "min_cache = dynamic peak" `Quick
            test_profile_matches_dynamic_peak;
          Alcotest.test_case "spill-free at MAXLIVE" `Quick
            test_spill_free_at_maxlive;
          Alcotest.test_case "lru spill-free boundary (MAXLIVE vs -1)" `Quick
            test_lru_spill_free_boundary;
          Alcotest.test_case "certifier clean + jobs-invariant" `Quick
            test_certify_clean;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "check_cached = check" `Quick
            test_check_cached_matches_check;
          Alcotest.test_case "identity delta" `Quick test_check_delta_identity;
          Alcotest.test_case "workload mismatch" `Quick
            test_delta_rejects_wrong_workload;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "differential mutants" `Quick
            test_fuzz_differential;
          Alcotest.test_case "shrink cache" `Quick test_fuzz_shrink_cache;
        ] );
      ( "analyze-json",
        [
          Alcotest.test_case "round-trip" `Quick test_analyze_json_roundtrip;
          Alcotest.test_case "round-trip with errors" `Quick
            test_analyze_json_roundtrip_with_errors;
          Alcotest.test_case "strict parse rejections" `Quick
            test_analyze_json_strict;
        ] );
    ]
