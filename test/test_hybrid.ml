(* Tests for the hybrid (cutoff-parameterized) Strassen/classical CDAG
   family: cutoff = 1 is node-for-node the uniform fast CDAG, cutoff = n
   the pure classical one; every hybrid CDAG evaluates to A.B, lints
   clean, yields a valid recursive DFS order, and its schedules replay
   cleanly through the cache machine, the static trace checker and the
   numeric executor. *)

module Cd = Fmm_cdag.Cdag
module A = Fmm_bilinear.Algorithm
module S = Fmm_bilinear.Strassen
module D = Fmm_graph.Digraph
module W = Fmm_machine.Workload
module Ord = Fmm_machine.Orders
module Cm = Fmm_machine.Cache_machine
module Tc = Fmm_analysis.Trace_check
module Lint = Fmm_analysis.Cdag_lint
module Diag = Fmm_analysis.Diagnostic
module Ex = Fmm_exec.Executor
module MQ = Fmm_matrix.Matrix.Q
module Q = Fmm_ring.Rat
module P = Fmm_util.Prng
module C = Fmm_util.Combinat

let assoc name l = List.assoc name l

(* the (algorithm, n) grid most tests sweep; cutoffs are all powers of
   the base dimension up to n *)
let grid =
  [
    (S.strassen, 8);
    (S.winograd, 4);
    (Option.get (S.find "classical <3,3,3;27>"), 9);
  ]

let all_cutoffs alg n =
  let n0, _, _ = A.dims alg in
  let rec up c acc = if c > n then List.rev acc else up (c * n0) (c :: acc) in
  up 1 []

(* --- n0-limit structure --- *)

let test_cutoff_1_is_fast_builder () =
  (* node-for-node identity with the uniform builder: same vertex
     count, same role at every id, same in-neighbors, same edge
     coefficients, same recursion-node list. *)
  List.iter
    (fun (alg, n) ->
      let fast = Cd.build alg ~n in
      let hy = Cd.build ~cutoff:1 alg ~n in
      Alcotest.(check int) "vertices" (Cd.n_vertices fast) (Cd.n_vertices hy);
      Alcotest.(check int) "edges" (Cd.n_edges fast) (Cd.n_edges hy);
      Alcotest.(check int) "cutoff recorded" 1 (Cd.cutoff hy);
      for v = 0 to Cd.n_vertices fast - 1 do
        if Cd.role fast v <> Cd.role hy v then
          Alcotest.failf "role mismatch at vertex %d" v;
        let ins g = List.sort compare (D.in_neighbors (Cd.graph g) v) in
        Alcotest.(check (list int))
          (Printf.sprintf "in-neighbors of %d" v)
          (ins fast) (ins hy);
        List.iter
          (fun u ->
            if Cd.edge_coeff fast u v <> Cd.edge_coeff hy u v then
              Alcotest.failf "coefficient mismatch on edge %d -> %d" u v)
          (ins fast)
      done;
      if Cd.nodes fast <> Cd.nodes hy then
        Alcotest.failf "%s n=%d: recursion-node lists differ" (A.name alg) n)
    grid

let test_cutoff_n_is_classical_census () =
  (* cutoff = n: no encoders, n^3 Mults, n^2 single-level decoders. *)
  List.iter
    (fun (alg, n) ->
      let cd = Cd.build ~cutoff:n alg ~n in
      let s = Cd.stats cd in
      Alcotest.(check int) "enc_a" 0 (assoc "enc_a" s);
      Alcotest.(check int) "enc_b" 0 (assoc "enc_b" s);
      Alcotest.(check int) "mult" (n * n * n) (assoc "mult" s);
      Alcotest.(check int) "dec" (n * n) (assoc "dec" s);
      Alcotest.(check int) "inputs" (2 * n * n) (assoc "inputs" s);
      (* 2 operand edges per Mult + n products into each of n^2 Decs *)
      Alcotest.(check int) "edges" (3 * n * n * n) (assoc "edges" s);
      Alcotest.(check int) "cutoff recorded" n (Cd.cutoff cd))
    grid

let test_lemma_2_2_truncated () =
  (* recursion nodes exist only for r in [cutoff, n]; where they exist
     the Lemma 2.2 censuses are those of the uniform CDAG. *)
  let n = 16 in
  List.iter
    (fun cutoff ->
      let cd = Cd.build ~cutoff S.strassen ~n in
      let l = C.log2_exact n in
      for j = 0 to l do
        let r = C.pow_int 2 j in
        let expected_nodes =
          if r >= cutoff then C.pow_int 7 (l - j) else 0
        in
        Alcotest.(check int)
          (Printf.sprintf "cutoff=%d r=%d nodes" cutoff r)
          expected_nodes
          (List.length (Cd.sub_nodes cd ~r));
        if r >= cutoff then
          Alcotest.(check int)
            (Printf.sprintf "cutoff=%d r=%d outputs" cutoff r)
            (C.pow_int 7 (l - j) * r * r)
            (List.length (Cd.sub_outputs cd ~r))
      done)
    [ 1; 2; 4; 8; 16 ]

let test_build_rejects_bad_cutoffs () =
  Alcotest.check_raises "cutoff 0"
    (Invalid_argument "Cdag.build: cutoff must be >= 1") (fun () ->
      ignore (Cd.build ~cutoff:0 S.strassen ~n:8));
  Alcotest.check_raises "cutoff > n"
    (Invalid_argument "Cdag.build: cutoff must be <= n") (fun () ->
      ignore (Cd.build ~cutoff:16 S.strassen ~n:8));
  Alcotest.check_raises "cutoff not a power"
    (Invalid_argument
       "Cdag.build: cutoff must be a power of the base dimension") (fun () ->
      ignore (Cd.build ~cutoff:3 S.strassen ~n:8))

(* --- semantics: every hybrid CDAG still computes A.B --- *)

let test_eval_all_cutoffs () =
  List.iter
    (fun (alg, n) ->
      List.iter
        (fun cutoff ->
          let rng = P.create ~seed:(100 * n + cutoff) in
          let a = MQ.random ~rng ~rows:n ~cols:n ~range:9 in
          let b = MQ.random ~rng ~rows:n ~cols:n ~range:9 in
          let cd = Cd.build ~cutoff alg ~n in
          let got = Cd.Eval_q.run cd (MQ.vec_of a) (MQ.vec_of b) in
          let expected = MQ.vec_of (MQ.mul a b) in
          Alcotest.(check bool)
            (Printf.sprintf "%s n=%d cutoff=%d evaluates to A.B" (A.name alg)
               n cutoff)
            true
            (Array.for_all2 Q.equal expected got))
        (all_cutoffs alg n))
    grid

(* --- analyses: lint, DFS order, replay --- *)

let test_hybrid_lints_clean () =
  List.iter
    (fun (alg, n) ->
      List.iter
        (fun cutoff ->
          let cd = Cd.build ~cutoff alg ~n in
          let rep = Lint.lint cd in
          if not (Diag.is_clean rep) then
            Alcotest.failf "%s n=%d cutoff=%d lint: %d errors, %d warnings"
              (A.name alg) n cutoff (Diag.n_errors rep) (Diag.n_warnings rep))
        (all_cutoffs alg n))
    grid

let test_recursive_dfs_valid () =
  List.iter
    (fun (alg, n) ->
      List.iter
        (fun cutoff ->
          let cd = Cd.build ~cutoff alg ~n in
          let w = W.of_cdag cd in
          let order = Ord.recursive_dfs cd in
          Alcotest.(check int)
            (Printf.sprintf "order covers all non-input vertices (cutoff %d)"
               cutoff)
            (Cd.n_vertices cd - (2 * n * n))
            (List.length order);
          Alcotest.(check bool)
            (Printf.sprintf "%s n=%d cutoff=%d DFS order valid" (A.name alg)
               n cutoff)
            true (W.is_valid_order w order))
        (all_cutoffs alg n))
    grid

let test_schedules_replay_clean () =
  (* every policy's trace on a hybrid CDAG replays through the dynamic
     cache machine with identical counters and passes the static trace
     checker with zero violations *)
  let n = 8 in
  List.iter
    (fun cutoff ->
      let cd = Cd.build ~cutoff S.strassen ~n in
      let w = W.of_cdag cd in
      let m = 2 * n * n in
      List.iter
        (fun policy ->
          let sched = Ex.schedule cd ~cache_size:m policy in
          let name =
            Printf.sprintf "cutoff=%d policy=%s" cutoff
              (Ex.policy_to_string policy)
          in
          let replayed =
            Cm.replay
              { Cm.cache_size = m; allow_recompute = true }
              w sched.Fmm_machine.Schedulers.trace
          in
          if replayed <> sched.Fmm_machine.Schedulers.counters then
            Alcotest.failf "%s: replay counters differ from scheduler's" name;
          let res =
            Tc.check ~cache_size:m w sched.Fmm_machine.Schedulers.trace
          in
          if not (Diag.is_clean res.Tc.report) then
            Alcotest.failf "%s: static checker found %d errors" name
              (Diag.n_errors res.Tc.report))
        Ex.all_policies)
    [ 1; 2; 4; 8 ]

(* --- numeric execution --- *)

let test_verify_hybrid_strassen_16 () =
  (* the acceptance case: hybrid Strassen at n = 16, float64 plus one
     exact ring, all policies via verify's default Lru *)
  let v =
    Ex.verify ~seed:7 ~backends:[ `F64; `Zp ] ~cutoff:4 S.strassen ~n:16
      ~cache_size:512 ~policy:Ex.Lru
  in
  Alcotest.(check bool) "hybrid Strassen 16 verification" true
    (Ex.verification_ok v);
  List.iter
    (fun (r : Ex.backend_report) ->
      Alcotest.(check bool) (r.Ex.backend ^ " result") true r.Ex.result_ok;
      Alcotest.(check bool) (r.Ex.backend ^ " counters") true r.Ex.counters_ok)
    v.Ex.reports

let test_verify_sched_all_cutoffs () =
  (* verify_sched consumes hybrid CDAGs unchanged: executed counters
     equal the scheduler's prediction at every cutoff *)
  let n = 8 in
  List.iter
    (fun cutoff ->
      let cd = Cd.build ~cutoff S.strassen ~n in
      let m = 2 * n * n in
      let sched = Ex.schedule cd ~cache_size:m Ex.Lru in
      let v =
        Ex.verify_sched ~seed:11 ~backends:[ `F64; `Zp ] cd ~cache_size:m
          ~policy_name:"lru" sched
      in
      Alcotest.(check bool)
        (Printf.sprintf "verify_sched cutoff=%d" cutoff)
        true (Ex.verification_ok v))
    [ 1; 2; 4; 8 ]

let () =
  Alcotest.run "fmm_hybrid"
    [
      ( "structure",
        [
          Alcotest.test_case "cutoff=1 = fast builder" `Quick
            test_cutoff_1_is_fast_builder;
          Alcotest.test_case "cutoff=n classical census" `Quick
            test_cutoff_n_is_classical_census;
          Alcotest.test_case "Lemma 2.2 truncated" `Quick
            test_lemma_2_2_truncated;
          Alcotest.test_case "rejects bad cutoffs" `Quick
            test_build_rejects_bad_cutoffs;
        ] );
      ( "semantics",
        [ Alcotest.test_case "A.B at every cutoff" `Quick test_eval_all_cutoffs ] );
      ( "analyses",
        [
          Alcotest.test_case "lint clean" `Quick test_hybrid_lints_clean;
          Alcotest.test_case "recursive DFS valid" `Quick
            test_recursive_dfs_valid;
          Alcotest.test_case "schedules replay clean" `Quick
            test_schedules_replay_clean;
        ] );
      ( "execution",
        [
          Alcotest.test_case "verify hybrid Strassen 16" `Quick
            test_verify_hybrid_strassen_16;
          Alcotest.test_case "verify_sched all cutoffs" `Quick
            test_verify_sched_all_cutoffs;
        ] );
    ]
