(* Tests for fmm_machine: the cache machine's legality rules, order
   validity, the LRU and rematerializing schedulers (every produced
   trace is replayed through the legality oracle), measured-I/O vs
   lower-bound inequalities, the Lemma 3.6 segment analyzer, and the
   parallel cost models. *)

module Cd = Fmm_cdag.Cdag
module CM = Fmm_machine.Cache_machine
module Tr = Fmm_machine.Trace
module Ord = Fmm_machine.Orders
module Sch = Fmm_machine.Schedulers
module Seg = Fmm_machine.Segments
module Par = Fmm_machine.Par_model
module B = Fmm_bounds.Bounds
module S = Fmm_bilinear.Strassen

module W = Fmm_machine.Workload
module Tc = Fmm_analysis.Trace_check
module Apc = Fmm_analysis.Par_check

let cdag2 = Cd.build S.strassen ~n:2
let cdag4 = Cd.build S.strassen ~n:4
let cdag8 = Cd.build S.strassen ~n:8
let w2 = W.of_cdag cdag2
let w4 = W.of_cdag cdag4
let w8 = W.of_cdag cdag8
let wof = W.of_cdag

(* --- cache machine legality --- *)

let cfg m = { CM.cache_size = m; allow_recompute = true }

let test_machine_rejects_illegal () =
  let a0 = (Cd.a_inputs cdag2).(0) in
  let check_illegal name events =
    Alcotest.(check bool) name true
      (try
         ignore (CM.replay (cfg 8) w2 events);
         false
       with CM.Illegal _ -> true)
  in
  (* load of something not in slow memory *)
  let non_input =
    (Cd.outputs cdag2).(0)
  in
  check_illegal "load not-in-slow" [ Tr.Load non_input ];
  check_illegal "double load" [ Tr.Load a0; Tr.Load a0 ];
  check_illegal "store not in cache" [ Tr.Store a0 ];
  check_illegal "evict not in cache" [ Tr.Evict a0 ];
  check_illegal "compute without operands" [ Tr.Compute non_input ];
  check_illegal "compute an input" [ Tr.Load a0; Tr.Compute a0 ];
  (* cache overflow *)
  let inputs = Array.to_list (Cd.inputs cdag2) in
  let too_many = List.map (fun v -> Tr.Load v) inputs in
  Alcotest.(check bool) "cache overflow" true
    (try
       ignore (CM.replay (cfg 4) w2 too_many);
       false
     with CM.Illegal _ -> true);
  (* empty trace: outputs never computed *)
  check_illegal "missing outputs" []

let test_machine_rejects_recompute_when_disabled () =
  (* compute one encoder vertex (whose operands are inputs) twice *)
  let g = Cd.graph cdag2 in
  let enc =
    List.find
      (fun v -> Cd.role cdag2 v = Cd.Enc_a)
      (List.init (Cd.n_vertices cdag2) (fun i -> i))
  in
  let preds = Fmm_graph.Digraph.in_neighbors g enc in
  let prefix = List.map (fun p -> Tr.Load p) preds in
  let twice = prefix @ [ Tr.Compute enc; Tr.Compute enc ] in
  (* legal with recomputation (up to the final-state check) *)
  let st = CM.init (cfg 8) w2 in
  List.iter (CM.apply st) twice;
  Alcotest.(check int) "one recompute counted" 1 (CM.counters st).Tr.recomputes;
  (* illegal without *)
  let st2 = CM.init { CM.cache_size = 8; allow_recompute = false } w2 in
  Alcotest.(check bool) "rejected without recompute" true
    (try
       List.iter (CM.apply st2) twice;
       false
     with CM.Illegal _ -> true)

(* --- orders --- *)

let test_orders_valid () =
  List.iter
    (fun (name, order) ->
      Alcotest.(check bool) (name ^ " valid") true (Ord.is_valid_order cdag4 order))
    [
      ("naive", Ord.naive_topo cdag4);
      ("dfs", Ord.recursive_dfs cdag4);
      ("random", Ord.random_topo ~seed:3 cdag4);
    ]

let test_orders_cover_all_vertices () =
  let expected = Cd.n_vertices cdag8 - Array.length (Cd.inputs cdag8) in
  Alcotest.(check int) "naive count" expected (List.length (Ord.naive_topo cdag8));
  Alcotest.(check int) "dfs count" expected (List.length (Ord.recursive_dfs cdag8));
  Alcotest.(check int) "random count" expected
    (List.length (Ord.random_topo ~seed:1 cdag8))

let test_invalid_order_detected () =
  let order = Ord.naive_topo cdag2 in
  Alcotest.(check bool) "reversed order invalid" false
    (Ord.is_valid_order cdag2 (List.rev order));
  Alcotest.(check bool) "truncated order invalid" false
    (Ord.is_valid_order cdag2 (List.tl order))

(* --- schedulers: every trace must replay legally --- *)

let replayable ?(allow_recompute = true) cdag m (res : Sch.result) =
  let c = CM.replay { CM.cache_size = m; allow_recompute } (wof cdag) res.Sch.trace in
  Alcotest.(check int) "replay loads agree" res.Sch.counters.Tr.loads c.Tr.loads;
  Alcotest.(check int) "replay stores agree" res.Sch.counters.Tr.stores c.Tr.stores;
  (* cross-check: the static analyzer agrees the trace is clean *)
  Alcotest.(check bool) "static checker clean" true
    (Tc.clean ~cache_size:m ~allow_recompute (wof cdag) res.Sch.trace);
  c

let test_lru_legal_and_counts () =
  List.iter
    (fun (cdag, m) ->
      let res = Sch.run_lru (wof cdag) ~cache_size:m (Ord.recursive_dfs cdag) in
      let c = replayable ~allow_recompute:false cdag m res in
      Alcotest.(check int) "no recomputation in LRU run" 0 c.Tr.recomputes;
      (* every non-input vertex computed exactly once *)
      Alcotest.(check int) "computes = vertices"
        (Cd.n_vertices cdag - Array.length (Cd.inputs cdag))
        c.Tr.computes)
    [ (cdag2, 8); (cdag4, 12); (cdag4, 24); (cdag8, 16); (cdag8, 64) ]

let test_lru_io_decreases_with_memory () =
  let io m =
    (Sch.run_lru w8 ~cache_size:m (Ord.recursive_dfs cdag8)).Sch.counters
    |> Tr.io
  in
  let io16 = io 16 and io64 = io 64 and io256 = io 256 in
  Alcotest.(check bool) "io(16) >= io(64)" true (io16 >= io64);
  Alcotest.(check bool) "io(64) >= io(256)" true (io64 >= io256);
  (* with the whole problem in cache: just load inputs + store outputs *)
  let io_big = io 4096 in
  Alcotest.(check int) "compulsory I/O only" (128 + 64) io_big

let test_dfs_beats_naive_locality () =
  let io order = Tr.io (Sch.run_lru w8 ~cache_size:24 order).Sch.counters in
  Alcotest.(check bool) "dfs <= naive" true
    (io (Ord.recursive_dfs cdag8) <= io (Ord.naive_topo cdag8))

let test_lru_respects_lower_bound () =
  (* measured I/O of any legal schedule >= (a constant times) the
     bound; we check measured >= bound with the Omega constant 1/8,
     comfortably below the true constant, and also >= compulsory I/O. *)
  List.iter
    (fun m ->
      let res = Sch.run_lru w8 ~cache_size:m (Ord.recursive_dfs cdag8) in
      let measured = float_of_int (Tr.io res.Sch.counters) in
      let bound = B.fast_sequential ~n:8 ~m () in
      Alcotest.(check bool)
        (Printf.sprintf "M=%d measured %.0f vs bound %.0f" m measured bound)
        true
        (measured >= bound /. 8.))
    [ 12; 16; 32 ]

let test_rematerialize_legal () =
  List.iter
    (fun (cdag, m) ->
      let res = Sch.run_rematerialize (wof cdag) ~cache_size:m (Ord.recursive_dfs cdag) in
      let c = replayable cdag m res in
      ignore c;
      (* intermediates are never stored: stores = number of outputs *)
      Alcotest.(check int) "stores = outputs"
        (Array.length (Cd.outputs cdag))
        res.Sch.counters.Tr.stores)
    [ (cdag2, 10); (cdag4, 24); (cdag8, 80) ]

let test_rematerialize_trades_flops_for_stores () =
  let m = 24 in
  let lru = Sch.run_lru w4 ~cache_size:m (Ord.recursive_dfs cdag4) in
  let rem = Sch.run_rematerialize w4 ~cache_size:m (Ord.recursive_dfs cdag4) in
  (* rematerializing performs at least as many computes... *)
  Alcotest.(check bool) "more computes" true
    (rem.Sch.counters.Tr.computes >= lru.Sch.counters.Tr.computes);
  (* ...and fewer stores (only outputs) *)
  Alcotest.(check bool) "fewer stores" true
    (rem.Sch.counters.Tr.stores <= lru.Sch.counters.Tr.stores)

let test_rematerialize_still_respects_bound () =
  (* the headline: even the aggressive recomputation schedule cannot
     beat the Theorem 1.1 bound (checked with constant 1/8). *)
  List.iter
    (fun m ->
      let res = Sch.run_rematerialize w8 ~cache_size:m (Ord.recursive_dfs cdag8) in
      let measured = float_of_int (Tr.io res.Sch.counters) in
      let bound = B.fast_sequential ~n:8 ~m () in
      Alcotest.(check bool)
        (Printf.sprintf "M=%d: remat %.0f >= bound/8 %.1f" m measured (bound /. 8.))
        true
        (measured >= bound /. 8.))
    [ 16; 32; 80 ]

let test_lru_raises_on_tiny_cache () =
  Alcotest.(check bool) "cache too small" true
    (try
       ignore (Sch.run_lru w2 ~cache_size:2 (Ord.naive_topo cdag2));
       false
     with Failure _ -> true)


let test_belady_legal_and_beats_lru () =
  List.iter
    (fun (cdag, w, m) ->
      let order = Ord.recursive_dfs cdag in
      let bel = Sch.run_belady w ~cache_size:m order in
      let c = CM.replay { CM.cache_size = m; allow_recompute = false } w bel.Sch.trace in
      Alcotest.(check int) "belady replay agrees" (Tr.io bel.Sch.counters) (Tr.io c);
      Alcotest.(check bool) "belady statically clean" true
        (Tc.clean ~cache_size:m ~allow_recompute:false w bel.Sch.trace);
      let lru = Sch.run_lru w ~cache_size:m order in
      Alcotest.(check bool)
        (Printf.sprintf "belady (%d) <= lru (%d) at M=%d" (Tr.io bel.Sch.counters)
           (Tr.io lru.Sch.counters) m)
        true
        (Tr.io bel.Sch.counters <= Tr.io lru.Sch.counters))
    [ (cdag4, w4, 12); (cdag4, w4, 24); (cdag8, w8, 16); (cdag8, w8, 64) ]

let test_belady_still_respects_bound () =
  List.iter
    (fun m ->
      let res = Sch.run_belady w8 ~cache_size:m (Ord.recursive_dfs cdag8) in
      let bound = B.fast_sequential ~n:8 ~m () in
      Alcotest.(check bool)
        (Printf.sprintf "belady M=%d >= bound/8" m)
        true
        (float_of_int (Tr.io res.Sch.counters) >= bound /. 8.))
    [ 16; 32 ]

let test_schedulers_on_random_workloads () =
  (* the Workload abstraction: all three schedulers run legally on
     arbitrary layered DAGs, not just bilinear CDAGs *)
  let module Pd = Fmm_pebble.Pebble_dags in
  List.iter
    (fun seed ->
      let g, inputs, outputs = Pd.random_dag ~seed ~layers:4 ~width:5 ~density:0.4 in
      let w =
        W.make ~graph:g
          ~inputs:(Array.of_list inputs)
          ~outputs:(Array.of_list outputs)
          ()
      in
      let order =
        match Fmm_graph.Digraph.topo_sort g with
        | Some o -> List.filter (fun v -> not (W.is_input w v)) o
        | None -> Alcotest.fail "cycle"
      in
      Alcotest.(check bool) "order valid" true (W.is_valid_order w order);
      List.iter
        (fun (name, run) ->
          let res = run () in
          let c =
            CM.replay { CM.cache_size = 8; allow_recompute = true } w res.Sch.trace
          in
          Alcotest.(check int) (name ^ " replay") (Tr.io res.Sch.counters) (Tr.io c);
          Alcotest.(check bool) (name ^ " statically clean") true
            (Tc.clean ~cache_size:8 w res.Sch.trace))
        [
          ("lru", fun () -> Sch.run_lru w ~cache_size:8 order);
          ("belady", fun () -> Sch.run_belady w ~cache_size:8 order);
          ("remat", fun () -> Sch.run_rematerialize w ~cache_size:8 order);
        ])
    [ 1; 2; 3; 4; 5 ]



let prop_segments_partition_io =
  QCheck2.Test.make ~name:"segment io always partitions total io" ~count:25
    (QCheck2.Gen.int_range 0 1_000) (fun seed ->
      let rng = Fmm_util.Prng.create ~seed in
      let m = 8 + Fmm_util.Prng.int rng 56 in
      let r = [| 2; 4; 8 |].(Fmm_util.Prng.int rng 3) in
      let quota = 4 + Fmm_util.Prng.int rng 60 in
      let res = Sch.run_lru w8 ~cache_size:m (Ord.recursive_dfs cdag8) in
      let a = Seg.analyze cdag8 ~cache_size:m ~r ~quota res.Sch.trace in
      let total = List.fold_left (fun acc s -> acc + s.Seg.io) 0 a.Seg.segments in
      total = Tr.io res.Sch.counters)

let prop_lru_io_monotone_in_cache =
  QCheck2.Test.make ~name:"lru io monotone in cache size" ~count:15
    (QCheck2.Gen.int_range 0 1_000) (fun seed ->
      let order = Ord.random_topo ~seed cdag4 in
      let io m = Tr.io (Sch.run_lru w4 ~cache_size:m order).Sch.counters in
      let m1 = 8 + (seed mod 5) in
      io m1 >= io (2 * m1))

let qc = QCheck_alcotest.to_alcotest

(* --- parallel executor --- *)

module PE = Fmm_machine.Par_exec

let test_par_exec_sequential_is_free () =
  let r = PE.run w4 ~procs:1 ~assignment:(PE.sequential_assignment w4) in
  Alcotest.(check int) "no communication on 1 proc" 0 r.PE.total_words;
  Alcotest.(check int) "max zero" 0 r.PE.max_words

let test_par_exec_conservation () =
  (* sum sent = sum received = total *)
  let cdag = cdag8 in
  let r = PE.strassen_bfs_experiment cdag ~depth:1 in
  Alcotest.(check int) "sent sums" r.PE.total_words
    (Array.fold_left ( + ) 0 r.PE.sent);
  Alcotest.(check int) "received sums" r.PE.total_words
    (Array.fold_left ( + ) 0 r.PE.received);
  Alcotest.(check int) "seven processors" 7 r.PE.procs

let test_par_exec_caching () =
  (* a value consumed twice by the same remote processor moves once:
     x owned by p0, two consumers on p1 *)
  let g = Fmm_graph.Digraph.create () in
  let ids = Fmm_graph.Digraph.add_vertices g 3 in
  Fmm_graph.Digraph.add_edge g ids.(0) ids.(1);
  Fmm_graph.Digraph.add_edge g ids.(0) ids.(2);
  let work =
    W.make ~graph:g ~inputs:[| ids.(0) |] ~outputs:[| ids.(1); ids.(2) |] ()
  in
  let r = PE.run work ~procs:2 ~assignment:[| 0; 1; 1 |] in
  Alcotest.(check int) "one transfer despite two uses" 1 r.PE.total_words

let test_par_exec_vs_memind_bound () =
  (* measured max words/proc >= the memory-independent bound (modest
     Omega constant absorbed: check >= bound itself, ratios are ~9-17) *)
  List.iter
    (fun (n, depth) ->
      let c = Cd.build S.strassen ~n in
      let r = PE.strassen_bfs_experiment c ~depth in
      let bound = B.fast_memind ~n ~p:r.PE.procs () in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d P=%d: %d >= %.1f" n r.PE.procs r.PE.max_words bound)
        true
        (float_of_int r.PE.max_words >= bound))
    [ (8, 1); (16, 1); (16, 2) ]

let test_par_exec_strong_scaling () =
  (* more processors: less per-processor communication, more total *)
  let c = Cd.build S.strassen ~n:16 in
  let r1 = PE.strassen_bfs_experiment c ~depth:1 in
  let r2 = PE.strassen_bfs_experiment c ~depth:2 in
  Alcotest.(check bool) "per-proc falls" true (r2.PE.max_words <= r1.PE.max_words);
  Alcotest.(check bool) "total rises" true (r2.PE.total_words >= r1.PE.total_words)

let test_par_exec_validation () =
  Alcotest.check_raises "bad assignment length"
    (Invalid_argument "Par_exec.run: assignment length mismatch") (fun () ->
      ignore (PE.run w4 ~procs:2 ~assignment:[| 0 |]));
  Alcotest.check_raises "bad processor id"
    (Invalid_argument "Par_exec.run: bad processor id") (fun () ->
      ignore
        (PE.run w4 ~procs:2
           ~assignment:(Array.make (W.n_vertices w4) 7)))


let test_par_exec_limited_memory () =
  let c = Cd.build S.strassen ~n:16 in
  let w = W.of_cdag c in
  let assignment = PE.bfs_assignment c ~depth:1 ~procs:7 in
  let unlimited = PE.run w ~procs:7 ~assignment in
  let tight = PE.run_limited w ~procs:7 ~assignment ~local_memory:8 in
  let roomy = PE.run_limited w ~procs:7 ~assignment ~local_memory:1_000_000 in
  (* unlimited memory reproduces the basic executor *)
  Alcotest.(check int) "roomy = unlimited" unlimited.PE.total_words
    roomy.PE.total_words;
  (* tight memory can only increase traffic *)
  Alcotest.(check bool)
    (Printf.sprintf "tight (%d) >= unlimited (%d)" tight.PE.total_words
       unlimited.PE.total_words)
    true
    (tight.PE.total_words >= unlimited.PE.total_words);
  Alcotest.check_raises "memory < 2"
    (Invalid_argument "Par_exec.run_limited: memory < 2") (fun () ->
      ignore (PE.run_limited w ~procs:7 ~assignment ~local_memory:1))

let test_par_exec_static_cross_check () =
  (* every BFS partition we execute is also clean under the static race
     detector, and the two word censuses agree exactly *)
  List.iter
    (fun (cdag, w, depth, procs) ->
      let assignment = PE.bfs_assignment cdag ~depth ~procs in
      let dyn = PE.run w ~procs ~assignment in
      let sta = Apc.check w ~procs ~assignment in
      Alcotest.(check int) "no static errors" 0
        (Fmm_analysis.Diagnostic.n_errors sta.Apc.report);
      Alcotest.(check int) "no races" 0 sta.Apc.races;
      Alcotest.(check int) "word census agrees" dyn.PE.total_words
        sta.Apc.total_words)
    [ (cdag4, w4, 1, 7); (cdag8, w8, 1, 7); (cdag8, w8, 2, 49) ]

let test_par_exec_limited_monotone () =
  let c = Cd.build S.strassen ~n:16 in
  let w = W.of_cdag c in
  let assignment = PE.bfs_assignment c ~depth:1 ~procs:7 in
  let words m = (PE.run_limited w ~procs:7 ~assignment ~local_memory:m).PE.total_words in
  Alcotest.(check bool) "words(4) >= words(16)" true (words 4 >= words 16);
  Alcotest.(check bool) "words(16) >= words(64)" true (words 16 >= words 64)

let test_par_exec_limited_counters_exact () =
  (* with memory to spare, run_limited must reproduce run's FULL
     per-processor census, not just the total — the invariant that
     pinned the occupancy-tracking rewrite of the LRU fetch path *)
  List.iter
    (fun (cdag, depth, procs) ->
      let w = W.of_cdag cdag in
      let assignment = PE.bfs_assignment cdag ~depth ~procs in
      let a = PE.run w ~procs ~assignment in
      let b = PE.run_limited w ~procs ~assignment ~local_memory:max_int in
      Alcotest.(check (array int)) "sent agrees" a.PE.sent b.PE.sent;
      Alcotest.(check (array int)) "received agrees" a.PE.received b.PE.received;
      Alcotest.(check int) "total agrees" a.PE.total_words b.PE.total_words;
      Alcotest.(check int) "max words agrees" a.PE.max_words b.PE.max_words)
    [ (cdag4, 1, 7); (cdag8, 1, 7); (cdag8, 2, 49); (cdag8, 2, 5) ]

let test_par_exec_census_reference () =
  (* regression for the bitset rewrite of the transfer-dedup check: an
     independent census that remembers (value, consumer) pairs in plain
     lists — the shape of the code the bitsets replaced — must agree
     with run's counters exactly on BFS Strassen n=16 depth 2 *)
  let c = Cd.build S.strassen ~n:16 in
  let w = W.of_cdag c in
  let procs = 49 in
  let assignment = PE.bfs_assignment c ~depth:2 ~procs in
  let r = PE.run w ~procs ~assignment in
  let g = w.W.graph in
  let n = W.n_vertices w in
  let sent = Array.make procs 0 and received = Array.make procs 0 in
  let transferred = Array.make n [] in
  let total = ref 0 in
  let is_input = W.is_input w in
  let order =
    match Fmm_graph.Digraph.topo_sort g with
    | Some o -> o
    | None -> Alcotest.fail "not a DAG"
  in
  List.iter
    (fun v ->
      if not (is_input v) then
        let p = assignment.(v) in
        List.iter
          (fun u ->
            let owner = assignment.(u) in
            if owner <> p && not (List.mem p transferred.(u)) then begin
              transferred.(u) <- p :: transferred.(u);
              sent.(owner) <- sent.(owner) + 1;
              received.(p) <- received.(p) + 1;
              incr total
            end)
          (Fmm_graph.Digraph.in_neighbors g v))
    order;
  Alcotest.(check (array int)) "sent" sent r.PE.sent;
  Alcotest.(check (array int)) "received" received r.PE.received;
  Alcotest.(check int) "total" !total r.PE.total_words

let test_bfs_assignment_first_claim () =
  (* independent spec of the documented ownership rule: a vertex claimed
     by several depth-d subtrees (via id range, a_in or b_in) belongs to
     the one with the smallest subtree_lo; unclaimed vertices keep the
     round-robin-by-id default *)
  List.iter
    (fun (cdag, depth, procs) ->
      let n = Cd.n_vertices cdag in
      let assignment = PE.bfs_assignment cdag ~depth ~procs in
      let subtrees =
        List.filter (fun nd -> nd.Cd.depth = depth) (Cd.nodes cdag)
        |> List.sort (fun a b -> compare a.Cd.subtree_lo b.Cd.subtree_lo)
      in
      let claimants = Array.make n [] in
      List.iteri
        (fun idx nd ->
          let note v = claimants.(v) <- idx :: claimants.(v) in
          for v = nd.Cd.subtree_lo to nd.Cd.subtree_hi do note v done;
          Array.iter note nd.Cd.a_in;
          Array.iter note nd.Cd.b_in)
        subtrees;
      for v = 0 to n - 1 do
        let expected =
          match List.rev claimants.(v) with
          | [] -> v mod procs (* unclaimed: round-robin default *)
          | first :: _ -> first mod procs
        in
        Alcotest.(check int) (Printf.sprintf "vertex %d owner" v) expected
          assignment.(v)
      done;
      (* determinism + the static analyzer blesses the partition *)
      Alcotest.(check bool) "deterministic" true
        (PE.bfs_assignment cdag ~depth ~procs = assignment);
      let sta = Apc.check (W.of_cdag cdag) ~procs ~assignment in
      Alcotest.(check int) "no static errors" 0
        (Fmm_analysis.Diagnostic.n_errors sta.Apc.report);
      Alcotest.(check int) "no races" 0 sta.Apc.races)
    [ (cdag4, 1, 7); (cdag4, 1, 3); (cdag8, 1, 7); (cdag8, 2, 49) ]

let test_bfs_assignment_properties () =
  (* property sweep at depths 1-3 with processor counts that do NOT
     divide the 7^d subtree count, so the round-robin deal wraps
     unevenly *)
  List.iter
    (fun depth ->
      List.iter
        (fun procs ->
          let label fmt =
            Printf.ksprintf
              (fun s -> Printf.sprintf "d=%d P=%d: %s" depth procs s)
              fmt
          in
          let assignment = PE.bfs_assignment cdag8 ~depth ~procs in
          let subtrees =
            List.filter (fun nd -> nd.Cd.depth = depth) (Cd.nodes cdag8)
            |> List.sort (fun a b -> compare a.Cd.subtree_lo b.Cd.subtree_lo)
          in
          Alcotest.(check int) (label "7^d subtrees")
            (Fmm_util.Combinat.pow_int 7 depth)
            (List.length subtrees);
          (* claimed ranges are contiguous intervals, pairwise disjoint *)
          let _ =
            List.fold_left
              (fun prev_hi nd ->
                Alcotest.(check bool) (label "range is an interval") true
                  (nd.Cd.subtree_lo <= nd.Cd.subtree_hi);
                Alcotest.(check bool) (label "ranges disjoint, sorted") true
                  (prev_hi < nd.Cd.subtree_lo);
                nd.Cd.subtree_hi)
              (-1) subtrees
          in
          (* order-independence: dealing from a shuffled node list gives
             the identical partition, because the claim order is fixed
             by the subtree_lo sort, not by list position *)
          List.iter
            (fun seed ->
              let arr = Array.of_list subtrees in
              let rng = Fmm_util.Prng.create ~seed in
              Fmm_util.Prng.shuffle rng arr;
              let shuffled =
                List.sort
                  (fun a b -> compare a.Cd.subtree_lo b.Cd.subtree_lo)
                  (Array.to_list arr)
              in
              let n = Cd.n_vertices cdag8 in
              let reference = Array.init n (fun v -> v mod procs) in
              let claimed = Array.make n false in
              let claim p v =
                if not claimed.(v) then begin
                  claimed.(v) <- true;
                  reference.(v) <- p
                end
              in
              List.iteri
                (fun idx nd ->
                  let p = idx mod procs in
                  for v = nd.Cd.subtree_lo to nd.Cd.subtree_hi do
                    claim p v
                  done;
                  Array.iter (claim p) nd.Cd.a_in;
                  Array.iter (claim p) nd.Cd.b_in)
                shuffled;
              Alcotest.(check (array int))
                (label "shuffled deal agrees (seed %d)" seed)
                reference assignment;
              (* unclaimed vertices keep the round-robin-by-id default *)
              Array.iteri
                (fun v c ->
                  if not c then
                    Alcotest.(check int) (label "unclaimed %d round-robin" v)
                      (v mod procs) assignment.(v))
                claimed)
            [ 1; 2; 3 ])
        [ 2; 3; 5 ])
    [ 1; 2; 3 ]

(* --- differential: seeded random workloads through all three
   schedulers; every trace replays clean through both the dynamic
   machine and the static analyzer, and the scheduler hierarchy
   (belady <= lru, remat stores only outputs) holds on DAGs with no
   recursive structure at all --- *)

let random_workload ~seed =
  let rng = Fmm_util.Prng.create ~seed in
  let g = Fmm_graph.Digraph.create () in
  let n_inputs = 6 + Fmm_util.Prng.int rng 6 in
  let n_internal = 30 + Fmm_util.Prng.int rng 30 in
  let inputs = Fmm_graph.Digraph.add_vertices g n_inputs in
  let internal = Fmm_graph.Digraph.add_vertices g n_internal in
  (* edges run strictly low id -> high id, so the DAG property and a
     topological order (ascending ids) come for free *)
  Array.iter
    (fun v ->
      let arity = 1 + Fmm_util.Prng.int rng 3 in
      List.iter
        (fun p -> Fmm_graph.Digraph.add_edge g p v)
        (Fmm_util.Prng.sample rng (min arity v) v))
    internal;
  let outputs =
    Fmm_graph.Digraph.sinks g
    |> List.filter (fun v -> v >= n_inputs)
    |> Array.of_list
  in
  let w =
    W.make ~name:(Printf.sprintf "random-%d" seed) ~graph:g ~inputs ~outputs ()
  in
  (w, Array.to_list internal)

let test_schedulers_differential_random () =
  List.iter
    (fun seed ->
      let w, order = random_workload ~seed in
      let max_indeg =
        List.fold_left
          (fun acc v -> max acc (Fmm_graph.Digraph.in_degree w.W.graph v))
          0 order
      in
      List.iter
        (fun m ->
          let ctx = Printf.sprintf "seed %d M=%d" seed m in
          let lru = Sch.run_lru w ~cache_size:m order in
          let bel = Sch.run_belady w ~cache_size:m order in
          (* rematerialization pins whole recompute chains, so tight
             caches can legitimately refuse; at M=64 it must succeed *)
          let rem =
            try Some (Sch.run_rematerialize w ~cache_size:m order)
            with Failure _ when m < 64 -> None
          in
          let runs =
            [ ("lru", false, Some lru); ("belady", false, Some bel);
              ("remat", true, rem) ]
          in
          (* every trace replays clean, dynamically and statically *)
          List.iter
            (fun (name, allow_recompute, res) ->
              match res with
              | None -> ()
              | Some (res : Sch.result) ->
                let c =
                  CM.replay { CM.cache_size = m; allow_recompute } w res.Sch.trace
                in
                Alcotest.(check int)
                  (Printf.sprintf "%s %s replay io" ctx name)
                  (Tr.io res.Sch.counters) (Tr.io c);
                Alcotest.(check bool)
                  (Printf.sprintf "%s %s statically clean" ctx name)
                  true
                  (Tc.clean ~cache_size:m ~allow_recompute w res.Sch.trace))
            runs;
          (* the hierarchy *)
          Alcotest.(check bool)
            (Printf.sprintf "%s belady <= lru" ctx)
            true
            (Tr.io bel.Sch.counters <= Tr.io lru.Sch.counters);
          match rem with
          | None -> ()
          | Some rem ->
            Alcotest.(check int)
              (Printf.sprintf "%s remat stores only outputs" ctx)
              (Array.length w.W.outputs)
              rem.Sch.counters.Tr.stores)
        [ max_indeg + 2; max_indeg + 8; 64 ])
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

(* --- bugfix regressions: flop cap, Belady tie-break, hybrid --- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_remat_flop_cap_never_overshoots () =
  let order = Ord.recursive_dfs cdag8 in
  let m = 48 in
  let unrestricted = Sch.run_rematerialize w8 ~cache_size:m order in
  let flops = unrestricted.Sch.counters.Tr.computes in
  (* the exact budget is feasible: the run spends all of it, no more *)
  let exact = Sch.run_rematerialize ~max_flops:flops w8 ~cache_size:m order in
  Alcotest.(check int) "cap = F runs exactly F computes" flops
    exact.Sch.counters.Tr.computes;
  (* one flop less — or much less — must abort mid-descent, never
     finish over budget (the cap is charged before each compute) *)
  List.iter
    (fun cap ->
      match Sch.run_rematerialize ~max_flops:cap w8 ~cache_size:m order with
      | _ -> Alcotest.failf "cap %d should have raised" cap
      | exception Failure msg ->
        Alcotest.(check bool)
          (Printf.sprintf "cap %d raises the budget error" cap)
          true
          (contains msg "flop budget"))
    [ flops - 1; flops / 2; 1 ]

(* A hand-built DAG where Belady faces a tie: a computed-but-unstored
   value [a] (dirty) and an input [b] (clean) are both next used by the
   final output compute. Evicting [a] costs a Store + a reload; [b]
   reloads for free. The ids are arranged so a naive
   first-maximum-wins scan would pick the dirty one. *)
let test_belady_tie_prefers_clean () =
  let g = Fmm_graph.Digraph.create () in
  (match Fmm_graph.Digraph.add_vertices g 6 with
  | [| 0; 1; 2; 3; 4; 5 |] -> ()
  | _ -> Alcotest.fail "unexpected vertex ids");
  (* 0 = a (internal, dirty at the tie), 1 = b (input, clean),
     2 = i0 (input), 3 = d1, 4 = d2 (pressure), 5 = z (output) *)
  List.iter
    (fun (p, v) -> Fmm_graph.Digraph.add_edge g p v)
    [ (2, 0); (1, 3); (3, 4); (0, 5); (1, 5) ];
  let w =
    W.make ~name:"belady-tie" ~graph:g ~inputs:[| 1; 2 |] ~outputs:[| 5 |] ()
  in
  let order = [ 0; 3; 4; 5 ] in
  Alcotest.(check bool) "order valid" true (W.is_valid_order w order);
  let bel = Sch.run_belady w ~cache_size:3 order in
  (* clean victim: the only Store in the whole run is the output flush;
     evicting dirty [a] at the tie would make it two *)
  Alcotest.(check int) "stores" 1 bel.Sch.counters.Tr.stores;
  Alcotest.(check int) "loads" 3 bel.Sch.counters.Tr.loads;
  let c = CM.replay (cfg 3) w bel.Sch.trace in
  Alcotest.(check int) "replay io" (Tr.io bel.Sch.counters) (Tr.io c);
  let lru = Sch.run_lru w ~cache_size:3 order in
  Alcotest.(check bool) "belady <= lru" true
    (Tr.io bel.Sch.counters <= Tr.io lru.Sch.counters)

let test_hybrid_all_false_is_lru () =
  (* recompute = never: run_hybrid must reproduce run_lru event for
     event, on the recursive CDAG and on unstructured random DAGs *)
  let check name w order m =
    let lru = Sch.run_lru w ~cache_size:m order in
    let hyb = Sch.run_hybrid w ~cache_size:m ~recompute:(fun _ -> false) order in
    Alcotest.(check bool)
      (Printf.sprintf "%s M=%d traces equal" name m)
      true
      (lru.Sch.trace = hyb.Sch.trace);
    Alcotest.(check int)
      (Printf.sprintf "%s M=%d io equal" name m)
      (Tr.io lru.Sch.counters) (Tr.io hyb.Sch.counters)
  in
  let order8 = Ord.recursive_dfs cdag8 in
  List.iter (fun m -> check "strassen-8" w8 order8 m) [ 16; 32; 64; 256 ];
  List.iter
    (fun seed ->
      let w, order = random_workload ~seed in
      List.iter (fun m -> check (Printf.sprintf "random-%d" seed) w order m)
        [ 8; 16; 64 ])
    [ 1; 2; 3 ]

let test_hybrid_differential_random () =
  (* arbitrary recompute flags: every trace must replay clean through
     both oracles, and flagged non-outputs must never be stored *)
  List.iter
    (fun seed ->
      let w, order = random_workload ~seed in
      let is_input = W.is_input w and is_output = W.is_output w in
      let flags =
        [
          ("remat-like", fun v -> (not (is_input v)) && not (is_output v));
          ("even", fun v -> v mod 2 = 0);
          ("thirds", fun v -> v mod 3 = 0);
        ]
      in
      List.iter
        (fun (fname, recompute) ->
          let ctx = Printf.sprintf "seed %d %s" seed fname in
          match Sch.run_hybrid w ~cache_size:64 ~recompute order with
          | exception Failure _ -> Alcotest.failf "%s: M=64 refused" ctx
          | res ->
            let c =
              CM.replay
                { CM.cache_size = 64; allow_recompute = true }
                w res.Sch.trace
            in
            Alcotest.(check int)
              (Printf.sprintf "%s replay io" ctx)
              (Tr.io res.Sch.counters) (Tr.io c);
            Alcotest.(check bool)
              (Printf.sprintf "%s statically clean" ctx)
              true
              (Tc.clean ~cache_size:64 w res.Sch.trace);
            List.iter
              (function
                | Tr.Store v ->
                  Alcotest.(check bool)
                    (Printf.sprintf "%s stores only spill-or-output %d" ctx v)
                    true
                    (is_output v || not (recompute v))
                | _ -> ())
              res.Sch.trace)
        flags)
    [ 1; 2; 3; 4; 5 ]

(* --- segment analysis (Lemma 3.6) --- *)

let test_segments_partition_io () =
  let m = 16 in
  let res = Sch.run_lru w8 ~cache_size:m (Ord.recursive_dfs cdag8) in
  let a = Seg.analyze cdag8 ~cache_size:m ~r:4 ~quota:16 res.Sch.trace in
  (* segment I/O sums to the trace's total I/O *)
  let total = List.fold_left (fun acc s -> acc + s.Seg.io) 0 a.Seg.segments in
  Alcotest.(check int) "io partitions" (Tr.io res.Sch.counters) total;
  (* all but the last segment hit the quota *)
  let rec check_full = function
    | [] | [ _ ] -> ()
    | s :: rest ->
      Alcotest.(check int) "full quota" a.Seg.quota s.Seg.output_computations;
      check_full rest
  in
  check_full a.Seg.segments

let test_segments_lemma_3_6 () =
  (* Lemma 3.6 with r = 2 sqrt(M): M = 4, r = 4, quota 4M = 16.
     Every full segment must do >= r^2/2 - M = 4 I/O. *)
  let m = 4 in
  (* M = 4 is too small to execute (max in-degree + 1 exceeds it), so
     use the schedule from a slightly larger cache and analyze with the
     theorem's parameters — the bound must hold a fortiori for any
     schedule of a machine with cache <= 4. Instead we run at M = 8 and
     use the r matching 2 sqrt 8 ~ 5 -> 4. *)
  ignore m;
  let cache = 8 in
  let res = Sch.run_lru w8 ~cache_size:cache (Ord.recursive_dfs cdag8) in
  let a = Seg.analyze cdag8 ~cache_size:cache ~r:4 res.Sch.trace in
  Alcotest.(check bool) "Lemma 3.6 holds" true (Seg.lemma_3_6_holds a);
  match Seg.min_io_full_segments a with
  | None -> () (* fewer outputs than one quota: vacuous *)
  | Some min_io -> Alcotest.(check bool) "bound nontrivial" true (min_io >= a.Seg.bound)

let test_segments_on_rematerialized_trace () =
  (* The lemma is recomputation-proof: it must hold on the
     rematerializing schedule too, and the analyzer must count only
     FIRST-time computations of sub-outputs even though the trace
     recomputes some of them. *)
  let cache = 32 in
  let res = Sch.run_rematerialize w8 ~cache_size:cache (Ord.recursive_dfs cdag8) in
  let a = Seg.analyze cdag8 ~cache_size:cache ~r:4 ~quota:16 res.Sch.trace in
  Alcotest.(check bool) "Lemma 3.6 on recomputing schedule" true
    (Seg.lemma_3_6_holds a);
  let counted =
    List.fold_left (fun acc s -> acc + s.Seg.output_computations) 0 a.Seg.segments
  in
  Alcotest.(check int) "first-time computations only"
    (List.length (Cd.sub_outputs cdag8 ~r:4))
    counted

let test_segments_odd_r_ceiling () =
  (* Regression: the Lemma 3.6 bound is ceil(r^2/2) - M. Truncating
     division made it r^2/2 - M — one too weak whenever r is odd. With
     r = 3 and M = 4 the bound is ceil(9/2) - 4 = 1, not 0 (vacuous). *)
  let alg = Fmm_bilinear.Algorithm.classical ~n:3 ~m:3 ~k:3 in
  let cdag = Cd.build alg ~n:3 in
  let w = W.of_cdag cdag in
  let res = Sch.run_lru w ~cache_size:8 (Ord.recursive_dfs cdag) in
  let a = Seg.analyze cdag ~cache_size:4 ~r:3 ~quota:4 res.Sch.trace in
  Alcotest.(check int) "ceil(9/2) - 4" 1 a.Seg.bound;
  Alcotest.(check bool) "Lemma 3.6 holds at odd r" true (Seg.lemma_3_6_holds a);
  (* even r is unaffected by the ceiling: r = 4, M = 4 -> 8 - 4 = 4 *)
  let res8 = Sch.run_lru w8 ~cache_size:16 (Ord.recursive_dfs cdag8) in
  let a8 = Seg.analyze cdag8 ~cache_size:4 ~r:4 res8.Sch.trace in
  Alcotest.(check int) "even r bound unchanged" 4 a8.Seg.bound

(* --- parallel models --- *)

let test_cannon () =
  let c = Par.cannon_2d ~n:64 ~p:16 in
  (* words = 2 * n^2/sqrt(P) = 2 * 4096 / 4 = 2048 *)
  Alcotest.(check bool) "cannon words" true (c.Par.words_per_proc = 2048.);
  Alcotest.check_raises "non-square P"
    (Invalid_argument "Par_model.cannon_2d: P must be a perfect square")
    (fun () -> ignore (Par.cannon_2d ~n:64 ~p:3))

let test_3d () =
  let c = Par.classical_3d ~n:64 ~p:64 in
  (* 3 * n^2 / P^{2/3} = 3 * 4096 / 16 = 768 *)
  Alcotest.(check bool) "3d words" true (c.Par.words_per_proc = 768.);
  (* 3D beats 2D at the same P (when both apply) *)
  let c2 = Par.cannon_2d ~n:64 ~p:64 in
  Alcotest.(check bool) "3d < 2d" true (c2.Par.words_per_proc > c.Par.words_per_proc)

let test_parallel_grid_boundaries () =
  (* the grid checks use exact integer roots: P one off a perfect
     square / cube must be rejected, the exact powers accepted. The
     float-rounding path this replaced could mis-tile near the
     boundary. *)
  List.iter
    (fun p ->
      Alcotest.check_raises (Printf.sprintf "cannon p=%d" p)
        (Invalid_argument "Par_model.cannon_2d: P must be a perfect square")
        (fun () -> ignore (Par.cannon_2d ~n:64 ~p)))
    [ 15; 17; 35; 37 ];
  Alcotest.(check int) "cannon p=16 accepted" 16 (Par.cannon_2d ~n:64 ~p:16).Par.p;
  Alcotest.(check int) "cannon p=36 accepted" 36 (Par.cannon_2d ~n:36 ~p:36).Par.p;
  List.iter
    (fun p ->
      Alcotest.check_raises (Printf.sprintf "3d p=%d" p)
        (Invalid_argument "Par_model.classical_3d: P must be a perfect cube")
        (fun () -> ignore (Par.classical_3d ~n:36 ~p)))
    [ 26; 28 ];
  Alcotest.(check int) "3d p=27 accepted" 27 (Par.classical_3d ~n:36 ~p:27).Par.p

let test_grid_3d () =
  (* exact brick footprints, ceil-divided — never float-rounded *)
  let c = Par.grid_3d ~n:64 ~p:8 (2, 2, 2) in
  (* bricks 32x32 everywhere; C partial counted twice (p3 > 1) *)
  Alcotest.(check bool) "cubic grid words" true (c.Par.words_per_proc = 4096.);
  let c1 = Par.grid_3d ~n:64 ~p:4 (2, 2, 1) in
  (* p3 = 1: no reduction round, C counted once: 2048 + 2048 + 1024 *)
  Alcotest.(check bool) "flat grid words" true (c1.Par.words_per_proc = 5120.);
  Alcotest.(check int) "flat grid rounds" 2 c1.Par.rounds;
  (* non-dividing n: tiles are ceilings, 4*5 + 5*5 + 2*4*5 = 85 *)
  let cc = Par.grid_3d ~n:10 ~p:12 (3, 2, 2) in
  Alcotest.(check bool) "ceil tiles" true (cc.Par.words_per_proc = 85.)

let test_grid_3d_rejects_degenerate () =
  Alcotest.check_raises "product mismatch"
    (Invalid_argument
       "Par_model.grid_3d: degenerate grid (2, 2, 3): product 12 <> P = 8")
    (fun () -> ignore (Par.grid_3d ~n:64 ~p:8 (2, 2, 3)));
  Alcotest.check_raises "zero factor"
    (Invalid_argument "Par_model.grid_3d: grid (0, 4, 2) has a factor < 1")
    (fun () -> ignore (Par.grid_3d ~n:64 ~p:8 (0, 4, 2)))

let test_caps_schedule_boundaries () =
  (* pin the exact (BFS, DFS) counts at the decision boundaries of the
     caps recursion — the memory threshold for a BFS step at size n on
     p procs is exactly 21 (n/2)^2 / p words *)
  let sched n p m = Par.caps_schedule ~n ~p ~m in
  Alcotest.(check (pair int int)) "p=1: no parallel steps" (0, 0)
    (sched 64 1 max_int);
  Alcotest.(check (pair int int)) "p=8 never divisible by 7" (0, 6)
    (sched 64 8 max_int);
  Alcotest.(check (pair int int)) "ample memory, p=49: all BFS" (2, 0)
    (sched 64 49 max_int);
  (* n=64, p=7: threshold is 21 * 32^2 / 7 = 3072 words exactly *)
  Alcotest.(check (pair int int)) "at threshold: BFS" (1, 0) (sched 64 7 3072);
  Alcotest.(check (pair int int)) "one word under: DFS then BFS" (1, 1)
    (sched 64 7 3071);
  (* next threshold down: 21 * 16^2 / 7 = 768 *)
  Alcotest.(check (pair int int)) "two thresholds under" (1, 2)
    (sched 64 7 767);
  (* odd n falls back to the 2D-style exchange: no steps recorded *)
  Alcotest.(check (pair int int)) "odd n fallback" (0, 0)
    (sched 63 49 max_int)

let test_caps_regimes () =
  let n = 1 lsl 10 in
  (* plentiful memory: all-BFS *)
  let bfs, dfs = Par.caps_schedule ~n ~p:(7 * 7 * 7) ~m:max_int in
  Alcotest.(check int) "all BFS" 3 bfs;
  Alcotest.(check int) "no DFS" 0 dfs;
  (* scarce memory: DFS steps appear first *)
  let _, dfs_tight = Par.caps_schedule ~n ~p:(7 * 7 * 7) ~m:(n * n / 2000) in
  Alcotest.(check bool) "tight memory forces DFS" true (dfs_tight > 0);
  (* words grow as memory shrinks *)
  let w_rich = Par.caps_words ~n ~p:343 ~m:max_int in
  let w_poor = Par.caps_words ~n ~p:343 ~m:(n * n / 2000) in
  Alcotest.(check bool) "less memory, more comm" true (w_poor >= w_rich)

let test_caps_tracks_bounds () =
  (* With ample memory, CAPS words/proc should scale like the
     memory-independent bound: ratio roughly constant across P. *)
  let n = 1 lsl 9 in
  let ratio p =
    Par.caps_words ~n ~p ~m:max_int /. B.fast_memind ~n ~p ()
  in
  let r1 = ratio 7 and r2 = ratio 49 and r3 = ratio 343 in
  Alcotest.(check bool) "ratios bounded" true
    (let lo = min r1 (min r2 r3) and hi = max r1 (max r2 r3) in
     hi /. lo < 4.)

let test_caps_strong_scaling_monotone () =
  let n = 1 lsl 9 in
  let w p = Par.caps_words ~n ~p ~m:max_int in
  (* total communication volume P * w grows with P, per-proc falls *)
  Alcotest.(check bool) "per-proc falls" true (w 49 <= w 7);
  Alcotest.(check bool) "total rises" true (49. *. w 49 >= 7. *. w 7)

let () =
  Alcotest.run "fmm_machine"
    [
      ( "cache_machine",
        [
          Alcotest.test_case "rejects illegal" `Quick test_machine_rejects_illegal;
          Alcotest.test_case "recompute switch" `Quick
            test_machine_rejects_recompute_when_disabled;
        ] );
      ( "orders",
        [
          Alcotest.test_case "valid" `Quick test_orders_valid;
          Alcotest.test_case "cover all" `Quick test_orders_cover_all_vertices;
          Alcotest.test_case "invalid detected" `Quick test_invalid_order_detected;
        ] );
      ( "schedulers",
        [
          Alcotest.test_case "lru legal" `Quick test_lru_legal_and_counts;
          Alcotest.test_case "io vs memory" `Quick test_lru_io_decreases_with_memory;
          Alcotest.test_case "dfs locality" `Quick test_dfs_beats_naive_locality;
          Alcotest.test_case "lru >= bound" `Quick test_lru_respects_lower_bound;
          Alcotest.test_case "rematerialize legal" `Quick test_rematerialize_legal;
          Alcotest.test_case "flops for stores" `Quick
            test_rematerialize_trades_flops_for_stores;
          Alcotest.test_case "rematerialize >= bound" `Quick
            test_rematerialize_still_respects_bound;
          Alcotest.test_case "tiny cache" `Quick test_lru_raises_on_tiny_cache;
          Alcotest.test_case "belady" `Quick test_belady_legal_and_beats_lru;
          Alcotest.test_case "belady >= bound" `Quick test_belady_still_respects_bound;
          Alcotest.test_case "random workloads" `Quick
            test_schedulers_on_random_workloads;
        ] );
      ( "segments",
        [
          qc prop_segments_partition_io;
          qc prop_lru_io_monotone_in_cache;
          Alcotest.test_case "partition" `Quick test_segments_partition_io;
          Alcotest.test_case "lemma 3.6" `Quick test_segments_lemma_3_6;
          Alcotest.test_case "recomputing trace" `Quick
            test_segments_on_rematerialized_trace;
          Alcotest.test_case "odd r ceiling" `Quick test_segments_odd_r_ceiling;
        ] );
      ( "par_exec",
        [
          Alcotest.test_case "sequential free" `Quick test_par_exec_sequential_is_free;
          Alcotest.test_case "conservation" `Quick test_par_exec_conservation;
          Alcotest.test_case "caching" `Quick test_par_exec_caching;
          Alcotest.test_case "vs memind bound" `Quick test_par_exec_vs_memind_bound;
          Alcotest.test_case "strong scaling" `Quick test_par_exec_strong_scaling;
          Alcotest.test_case "validation" `Quick test_par_exec_validation;
          Alcotest.test_case "limited memory" `Quick test_par_exec_limited_memory;
          Alcotest.test_case "memory monotone" `Quick test_par_exec_limited_monotone;
          Alcotest.test_case "limited counters exact" `Quick
            test_par_exec_limited_counters_exact;
          Alcotest.test_case "census vs list reference" `Quick
            test_par_exec_census_reference;
          Alcotest.test_case "bfs first-claim" `Quick test_bfs_assignment_first_claim;
          Alcotest.test_case "bfs properties" `Quick
            test_bfs_assignment_properties;
          Alcotest.test_case "static cross-check" `Quick
            test_par_exec_static_cross_check;
        ] );
      ( "differential",
        [
          Alcotest.test_case "random workloads" `Quick
            test_schedulers_differential_random;
        ] );
      ( "bugfixes",
        [
          Alcotest.test_case "remat flop cap" `Quick
            test_remat_flop_cap_never_overshoots;
          Alcotest.test_case "belady clean tie-break" `Quick
            test_belady_tie_prefers_clean;
          Alcotest.test_case "hybrid all-false = lru" `Quick
            test_hybrid_all_false_is_lru;
          Alcotest.test_case "hybrid differential" `Quick
            test_hybrid_differential_random;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "cannon" `Quick test_cannon;
          Alcotest.test_case "3d" `Quick test_3d;
          Alcotest.test_case "grid 3d" `Quick test_grid_3d;
          Alcotest.test_case "grid 3d degenerate" `Quick
            test_grid_3d_rejects_degenerate;
          Alcotest.test_case "caps schedule boundaries" `Quick
            test_caps_schedule_boundaries;
          Alcotest.test_case "grid boundaries" `Quick
            test_parallel_grid_boundaries;
          Alcotest.test_case "caps regimes" `Quick test_caps_regimes;
          Alcotest.test_case "caps vs bounds" `Quick test_caps_tracks_bounds;
          Alcotest.test_case "strong scaling" `Quick test_caps_strong_scaling_monotone;
        ] );
    ]
